// soifft — command-line front end for the SOI-FFT library.
//
//   soifft design    [--accuracy A] [--mu M --nu N] [--eps E --kappa K]
//   soifft transform --n N --p P [--accuracy A] [--inverse] [--check]
//                    [--input FILE] [--output FILE] [--segments-per-rank G]
//   soifft segment   --n N --p P --s S [--accuracy A] [--input FILE]
//   soifft bench     --n N --p P [--accuracy A] [--reps R]
//
// Files are raw little-endian complex128 (interleaved re/im); without
// --input a deterministic Gaussian test signal is used. --check compares
// against the exact FFT engine and prints the SNR.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "common/timer.hpp"
#include "soi/soi.hpp"

namespace {

using namespace soi;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count(name) > 0; }
  std::string get(const std::string& name, const std::string& dflt) const {
    auto it = kv.find(name);
    return it == kv.end() ? dflt : it->second;
  }
  std::int64_t geti(const std::string& name, std::int64_t dflt) const {
    auto it = kv.find(name);
    return it == kv.end() ? dflt : std::stoll(it->second);
  }
  double getf(const std::string& name, double dflt) const {
    auto it = kv.find(name);
    return it == kv.end() ? dflt : std::stod(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

win::SoiProfile profile_from(const Args& a) {
  if (a.flag("profile")) {
    // "Wisdom" file produced by `soifft design --save-profile`: skips the
    // design search entirely.
    std::ifstream f(a.get("profile", ""));
    SOI_CHECK(f.good(), "cannot open profile file " << a.get("profile", ""));
    std::string line;
    std::getline(f, line);
    return win::parse_profile(line);
  }
  if (a.flag("eps") || a.flag("mu")) {
    return win::design_gauss_rect(a.geti("mu", 5), a.geti("nu", 4),
                                  a.getf("eps", 3.16e-15),
                                  a.getf("kappa", 16.0), "custom");
  }
  const std::string acc = a.get("accuracy", "full");
  if (acc == "full") return win::make_profile(win::Accuracy::kFull);
  if (acc == "high") return win::make_profile(win::Accuracy::kHigh);
  if (acc == "medium") return win::make_profile(win::Accuracy::kMedium);
  if (acc == "low") return win::make_profile(win::Accuracy::kLow);
  throw Error("unknown --accuracy '" + acc +
              "' (full|high|medium|low)");
}

cvec load_or_generate(const Args& a, std::int64_t n) {
  cvec x(static_cast<std::size_t>(n));
  const std::string path = a.get("input", "");
  if (path.empty()) {
    fill_gaussian(x, static_cast<std::uint64_t>(a.geti("seed", 1)));
    return x;
  }
  std::ifstream f(path, std::ios::binary);
  SOI_CHECK(f.good(), "cannot open input file " << path);
  f.read(reinterpret_cast<char*>(x.data()),
         static_cast<std::streamsize>(x.size() * sizeof(cplx)));
  SOI_CHECK(f.gcount() ==
                static_cast<std::streamsize>(x.size() * sizeof(cplx)),
            "input file " << path << " holds fewer than " << n
                          << " complex values");
  return x;
}

void maybe_save(const Args& a, const cvec& y) {
  const std::string path = a.get("output", "");
  if (path.empty()) return;
  std::ofstream f(path, std::ios::binary);
  SOI_CHECK(f.good(), "cannot open output file " << path);
  f.write(reinterpret_cast<const char*>(y.data()),
          static_cast<std::streamsize>(y.size() * sizeof(cplx)));
  std::printf("wrote %zu complex values to %s\n", y.size(), path.c_str());
}

int cmd_design(const Args& a) {
  const win::SoiProfile p = profile_from(a);
  std::printf("profile    : %s\n", p.name.c_str());
  std::printf("window     : %s\n", p.window->name().c_str());
  std::printf("oversample : %lld/%lld (beta = %.4f)\n",
              static_cast<long long>(p.mu), static_cast<long long>(p.nu),
              p.beta());
  std::printf("taps B     : %lld (+%lld group slack when planned)\n",
              static_cast<long long>(p.taps),
              static_cast<long long>(2 * p.nu));
  std::printf("kappa      : %.3f\n", p.kappa);
  std::printf("eps_alias  : %.3e\n", p.eps_alias);
  std::printf("eps_trunc  : %.3e\n", p.eps_trunc);
  std::printf("target SNR : %.0f dB (~%.1f digits)\n", p.target_snr,
              p.target_snr / 20.0);
  if (a.flag("save-profile")) {
    const std::string path = a.get("save-profile", "");
    std::ofstream f(path);
    SOI_CHECK(f.good(), "cannot open " << path);
    f << win::serialize_profile(p) << "\n";
    std::printf("saved to   : %s (reuse with --profile %s)\n", path.c_str(),
                path.c_str());
  }
  return 0;
}

int cmd_transform(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 16);
  const std::int64_t p = a.geti("p", 8);
  const win::SoiProfile prof = profile_from(a);
  core::SoiFftSerial plan(n, p, prof);
  const cvec x = load_or_generate(a, n);
  cvec y(x.size());
  Timer t;
  if (a.flag("inverse")) {
    plan.inverse(x, y);
  } else {
    plan.forward(x, y);
  }
  const double sec = t.seconds();
  std::printf("%s SOI transform: N=%lld P=%lld in %.3f ms (%.2f GFLOPS)\n",
              a.flag("inverse") ? "inverse" : "forward",
              static_cast<long long>(n), static_cast<long long>(p),
              sec * 1e3, fft_gflops(static_cast<std::size_t>(n), sec));
  if (a.flag("check")) {
    fft::FftPlan exact(n);
    cvec want(x.size());
    if (a.flag("inverse")) {
      exact.inverse(x, want);
    } else {
      exact.forward(x, want);
    }
    const double snr = snr_db(y, want);
    std::printf("SNR vs exact engine: %.1f dB (%.1f digits)\n", snr,
                snr_digits(snr));
  }
  maybe_save(a, y);
  return 0;
}

int cmd_segment(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 18);
  const std::int64_t p = a.geti("p", 64);
  const std::int64_t s = a.geti("s", 0);
  const win::SoiProfile prof = profile_from(a);
  core::SegmentPlan plan(n, p, prof);
  const cvec x = load_or_generate(a, n);
  cvec seg(static_cast<std::size_t>(plan.segment_length()));
  Timer t;
  plan.compute(x, s, seg);
  std::printf("segment %lld of %lld (bins [%lld, %lld)) in %.3f ms\n",
              static_cast<long long>(s), static_cast<long long>(p),
              static_cast<long long>(s * plan.segment_length()),
              static_cast<long long>((s + 1) * plan.segment_length()),
              t.millis());
  if (a.flag("check")) {
    fft::FftPlan exact(n);
    cvec want(x.size());
    exact.forward(x, want);
    const cspan want_seg{want.data() + s * plan.segment_length(),
                         seg.size()};
    std::printf("SNR vs exact engine: %.1f dB\n", snr_db(seg, want_seg));
  }
  maybe_save(a, seg);
  return 0;
}

int cmd_bench(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 18);
  const std::int64_t p = a.geti("p", 8);
  const int reps = static_cast<int>(a.geti("reps", 5));
  const win::SoiProfile prof = profile_from(a);
  core::SoiFftSerial soi(n, p, prof);
  fft::FftPlan exact(n);
  const cvec x = load_or_generate(a, n);
  cvec y(x.size());
  double best_soi = 1e300, best_fft = 1e300;
  core::SoiPhaseTimes phases;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    soi.forward_timed(x, y, phases);
    best_soi = std::min(best_soi, t.seconds());
    t.reset();
    exact.forward(x, y);
    best_fft = std::min(best_fft, t.seconds());
  }
  std::printf("N=%lld P=%lld reps=%d\n", static_cast<long long>(n),
              static_cast<long long>(p), reps);
  std::printf("SOI     : %.3f ms (%.2f GFLOPS)\n", best_soi * 1e3,
              fft_gflops(static_cast<std::size_t>(n), best_soi));
  std::printf("plain FFT: %.3f ms (%.2f GFLOPS)\n", best_fft * 1e3,
              fft_gflops(static_cast<std::size_t>(n), best_fft));
  std::printf("phase split: conv %.2f / F_P %.2f / pack %.2f / F_M' %.2f / "
              "demod %.2f ms\n",
              phases.conv * 1e3, phases.fp * 1e3, phases.pack * 1e3,
              phases.fm * 1e3, phases.demod * 1e3);
  return 0;
}

int usage() {
  std::fputs(
      "usage: soifft <design|transform|segment|bench> [--options]\n"
      "  design    --accuracy full|high|medium|low | --mu --nu --eps --kappa\n"
      "  transform --n N --p P [--accuracy A] [--inverse] [--check]\n"
      "            [--input F] [--output F] [--seed S]\n"
      "  segment   --n N --p P --s S [--accuracy A] [--check]\n"
      "  bench     --n N --p P [--accuracy A] [--reps R]\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "design") return cmd_design(a);
    if (a.command == "transform") return cmd_transform(a);
    if (a.command == "segment") return cmd_segment(a);
    if (a.command == "bench") return cmd_bench(a);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soifft: %s\n", e.what());
    return 1;
  }
}
