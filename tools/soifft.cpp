// soifft — command-line front end for the SOI-FFT library.
//
//   soifft design    [--accuracy A] [--mu M --nu N] [--eps E --kappa K]
//   soifft transform --n N --p P [--accuracy A] [--inverse] [--check]
//                    [--input FILE] [--output FILE] [--wisdom FILE]
//   soifft segment   --n N --p P --s S [--accuracy A] [--input FILE]
//   soifft bench     --n N --p P [--accuracy A] [--reps R]
//   soifft tune      --n N --p P [--accuracy A] [--wisdom FILE]
//                    [--mode modeled|measured] [--reps R] [--seed S]
//   soifft dist      --n N --p P [--accuracy A] [--wisdom FILE] [--check]
//
// Files are raw little-endian complex128 (interleaved re/im); without
// --input a deterministic Gaussian test signal is used. --check compares
// against the exact FFT engine and prints the SNR.
//
// Wisdom (`--wisdom FILE`) persists autotuned plan decisions keyed by
// (N, ranks, accuracy): `tune` writes them, every other subcommand reuses
// them — a hit skips both the tuning sweep and the window design search.
// Unknown flags are rejected with the list of valid options; a typo never
// silently falls back to a default.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "serve/service.hpp"
#include "soi/soi.hpp"

namespace {

using namespace soi;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count(name) > 0; }
  std::string get(const std::string& name, const std::string& dflt) const {
    auto it = kv.find(name);
    return it == kv.end() ? dflt : it->second;
  }
  std::int64_t geti(const std::string& name, std::int64_t dflt) const {
    auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    try {
      return std::stoll(it->second);
    } catch (const std::exception&) {
      throw Error("flag '--" + name + "': expected an integer, got '" +
                  it->second + "'");
    }
  }
  double getf(const std::string& name, double dflt) const {
    auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw Error("flag '--" + name + "': expected a number, got '" +
                  it->second + "'");
    }
  }
};

/// Valid flags per subcommand; parse() rejects anything else.
const std::map<std::string, std::set<std::string>>& valid_flags() {
  static const std::map<std::string, std::set<std::string>> kFlags = {
      {"design", {"accuracy", "mu", "nu", "eps", "kappa", "help"}},
      {"transform",
       {"n", "p", "accuracy", "mu", "nu", "eps", "kappa", "inverse", "check",
        "input", "output", "seed", "wisdom", "trace", "engine", "help"}},
      {"segment",
       {"n", "p", "s", "accuracy", "mu", "nu", "eps", "kappa", "check",
        "input", "output", "seed", "help"}},
      {"bench",
       {"n", "p", "accuracy", "mu", "nu", "eps", "kappa", "reps", "input",
        "seed", "trace", "engine", "help"}},
      {"tune",
       {"n", "p", "accuracy", "wisdom", "mode", "reps", "seed", "gflops",
        "max-spr", "transport", "engine", "help"}},
      {"dist",
       {"n", "p", "accuracy", "wisdom", "check", "seed", "trace",
        "fault-spec", "timeout-ms", "retries", "topology", "coding",
        "transport", "engine", "help"}},
      {"serve",
       {"n", "p", "accuracy", "lanes", "requests", "concurrency", "queue",
        "rate", "workers", "wire-latency-us", "linger-us", "seed",
        "transport", "priority", "deadline-ms", "coding", "help"}},
  };
  return kFlags;
}

int usage(std::FILE* out) {
  std::fputs(
      "usage: soifft <design|transform|segment|bench|tune|dist|serve> "
      "[--options]\n"
      "  design    --accuracy full|high|medium|low | --mu --nu --eps --kappa\n"
      "  transform --n N --p P [--accuracy A] [--inverse] [--check]\n"
      "            [--input F] [--output F] [--seed S] [--wisdom F] [--trace]\n"
      "  segment   --n N --p P --s S [--accuracy A] [--check]\n"
      "  bench     --n N --p P [--accuracy A] [--reps R] [--trace]\n"
      "  tune      --n N --p P [--accuracy A] [--wisdom F]\n"
      "            [--mode modeled|measured] [--reps R] [--seed S]\n"
      "            [--gflops G] [--max-spr G]\n"
      "  dist      --n N --p P [--accuracy A] [--wisdom F] [--check]\n"
      "            [--trace] [--fault-spec SEED:KIND:RATE[,...]]\n"
      "            [--timeout-ms T] [--retries R] [--topology T]\n"
      "            [--coding K+R]\n"
      "  serve     --n N [--p P] [--accuracy A] [--lanes L] [--requests R]\n"
      "            [--concurrency K] [--queue Q] [--rate RPS] [--workers W]\n"
      "            [--wire-latency-us U] [--linger-us U] [--seed S]\n"
      "            [--priority interactive|batch|background]\n"
      "            [--deadline-ms D] [--coding K+R]\n"
      "            multi-tenant serving demo: L lanes (N, 2N, ...) behind\n"
      "            one TransformService (--p 0 = serial worker backend,\n"
      "            default co-scheduled rank team), open-loop Poisson\n"
      "            arrivals at RPS (0 = burst), queueing metrics summary.\n"
      "            --priority sets the submission tier (default batch);\n"
      "            --deadline-ms a per-request deadline (0 = none) —\n"
      "            infeasible requests are shed with DeadlineExceeded\n"
      "            before execution. A cross-process --transport falls\n"
      "            back to the serial worker backend with a note\n"
      "  --help    print this message (exit 0)\n"
      "  --trace   per-stage table (name, seconds, bytes, flops, retries)\n"
      "            of the last pipeline execution (rank 0 for dist)\n"
      "  --fault-spec  deterministic chaos scenario for dist: seed plus\n"
      "            kind:rate rules (drop, corrupt, truncate, duplicate,\n"
      "            delay, straggler) and optional stall:RANK:MS, e.g.\n"
      "            42:drop:0.02,corrupt:0.01 — strictly validated\n"
      "  --timeout-ms  base deadline of one comm wait attempt (dist);\n"
      "            exponential backoff, typed CommTimeout after --retries\n"
      "  --retries chunk-granularity retry budget (dist, default 8;\n"
      "            0 = first detected fault is fatal)\n"
      "  --topology  exchange schedule for dist: flat (default, direct\n"
      "            all-to-all), two-level[:G] (intra-group gather then\n"
      "            inter-group fused exchange), torus[:AxBxC] (dimension-\n"
      "            staged neighbour forwarding); overrides the tuned\n"
      "            topo= knob from --wisdom; results are bit-identical\n"
      "            across schedules\n"
      "  --coding  erasure-code the exchange (dist/serve): K data + R\n"
      "            parity shards per message, e.g. 4+1 (systematic XOR\n"
      "            for R=1, Reed-Solomon GF(2^8) for R>=2). Receivers\n"
      "            rebuild up to R lost/late/corrupt shards from parity\n"
      "            instead of retransmitting; outputs stay bit-identical.\n"
      "            Overrides the tuned code= knob from --wisdom\n"
      "  --transport  rank fabric (tune/dist/serve): a registered\n"
      "            net::TransportRegistry backend — sim (in-process\n"
      "            threads, default), shm (forked processes over shared\n"
      "            memory), mpi (builds with -DSOI_WITH_MPI=ON). Default\n"
      "            from $SOI_TRANSPORT; unknown names are rejected with\n"
      "            the registered list. serve and measured tune need an\n"
      "            in-process (threaded) transport\n"
      "  --engine  FFT executor (transform/bench/tune/dist): a registered\n"
      "            fft::EngineRegistry backend — batch (SIMD SoA,\n"
      "            default), scalar (one transform at a time), fftw\n"
      "            (builds with -DSOI_WITH_FFTW=ON). Default from\n"
      "            $SOI_FFT_ENGINE; unknown names are rejected with the\n"
      "            registered list\n"
      "\n"
      "wisdom: `tune` persists the fastest (profile tier, segments/rank,\n"
      "all-to-all schedule, overlap) per shape; other subcommands reuse it\n"
      "via --wisdom FILE instead of re-tuning or re-running the design\n"
      "search.\n",
      out);
  return out == stdout ? 0 : 2;
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  const auto cmd_it = valid_flags().find(a.command);
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw Error("unexpected argument '" + key + "' (flags start with --)");
    }
    key = key.substr(2);
    if (key != "help" && cmd_it != valid_flags().end() &&
        cmd_it->second.count(key) == 0) {
      std::string valid;
      for (const auto& f : cmd_it->second) {
        if (f == "help") continue;
        valid += (valid.empty() ? "--" : ", --") + f;
      }
      throw Error("unknown flag '--" + key + "' for '" + a.command +
                  "' (valid: " + valid + ", --help)");
    }
    static const std::set<std::string> kBoolean = {"check", "inverse", "trace",
                                                   "help"};
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[key] = argv[++i];
    } else if (kBoolean.count(key) > 0) {
      a.kv[key] = "1";
    } else {
      throw Error("flag '--" + key + "' requires a value");
    }
  }
  return a;
}

win::SoiProfile profile_from(const Args& a) {
  if (a.flag("eps") || a.flag("mu")) {
    return win::design_gauss_rect(a.geti("mu", 5), a.geti("nu", 4),
                                  a.getf("eps", 3.16e-15),
                                  a.getf("kappa", 16.0), "custom");
  }
  // Registry-cached: repeated profile requests skip the design search.
  return *tune::PlanRegistry::global().profile(
      tune::accuracy_from_name(a.get("accuracy", "full")));
}

/// --transport, strictly validated: a named backend must exist in the
/// registry (unknown names throw the registry's soi::InvalidArgumentError
/// listing every registered backend). "" = the session default
/// ($SOI_TRANSPORT, else "sim") — resolved by the callee.
std::string transport_from(const Args& a) {
  const std::string name = a.get("transport", "");
  if (!name.empty()) net::TransportRegistry::instance().caps(name);
  return name;
}

/// --engine, strictly validated against fft::EngineRegistry ("" = the
/// session default: $SOI_FFT_ENGINE, else "batch").
std::string engine_from(const Args& a) {
  const std::string name = a.get("engine", "");
  if (!name.empty()) fft::EngineRegistry::instance().info(name);
  return name;
}

tune::TuneKey key_from(const Args& a, std::int64_t n, std::int64_t p) {
  tune::TuneKey key;
  key.n = n;
  key.ranks = static_cast<int>(p);
  key.accuracy = tune::accuracy_from_name(a.get("accuracy", "full"));
  return key;
}

/// Wisdom lookup shared by transform/dist: returns the tuned config on a
/// hit (logged), nullopt when no --wisdom was given or the key is absent.
std::optional<tune::TunedConfig> wisdom_lookup(const Args& a,
                                               const tune::TuneKey& key) {
  if (!a.flag("wisdom")) return std::nullopt;
  const std::string path = a.get("wisdom", "");
  const tune::WisdomStore store = tune::WisdomStore::load(path);
  if (auto hit = store.find(key)) {
    std::printf("wisdom: cache hit for [%s] -> %s (no re-tuning)\n",
                key.str().c_str(), hit->candidate.describe().c_str());
    return hit;
  }
  std::printf("wisdom: miss for [%s] in %s (run `soifft tune`); using "
              "defaults\n",
              key.str().c_str(), path.c_str());
  return std::nullopt;
}

/// `--trace` output: one row per stage record of the last execution.
/// Communication stages report bytes MEASURED from the SimMPI counters
/// (tagged "meas"); compute stages carry plan-time estimates ("est").
/// wait_ms is the subset of a stage's time blocked in comm waits; the
/// overlap line is exec::overlap_efficiency over the same records.
void print_trace(const exec::TraceLog& trace) {
  const auto records = trace.records();
  std::printf("%-14s %6s %12s %10s %8s %19s %14s\n", "stage", "chunks", "ms",
              "wait_ms", "retries", "bytes", "flops");
  double total = 0.0;
  for (const auto& r : records) {
    std::printf("%-14s %6lld %12.4f %10.4f %8lld %14lld %-4s %14lld\n",
                r.name.c_str(), static_cast<long long>(r.chunks),
                r.seconds * 1e3, r.wait_seconds * 1e3,
                static_cast<long long>(r.retries),
                static_cast<long long>(r.bytes_moved),
                r.bytes_measured ? "meas" : "est",
                static_cast<long long>(r.flops));
    total += r.seconds;
  }
  std::printf("%-14s %6s %12.4f\n", "total", "", total * 1e3);
  std::printf("overlap efficiency: %.3f\n", exec::overlap_efficiency(trace));
}

cvec load_or_generate(const Args& a, std::int64_t n) {
  cvec x(static_cast<std::size_t>(n));
  const std::string path = a.get("input", "");
  if (path.empty()) {
    fill_gaussian(x, static_cast<std::uint64_t>(a.geti("seed", 1)));
    return x;
  }
  std::ifstream f(path, std::ios::binary);
  SOI_CHECK(f.good(), "cannot open input file " << path);
  f.read(reinterpret_cast<char*>(x.data()),
         static_cast<std::streamsize>(x.size() * sizeof(cplx)));
  SOI_CHECK(f.gcount() ==
                static_cast<std::streamsize>(x.size() * sizeof(cplx)),
            "input file " << path << " holds fewer than " << n
                          << " complex values");
  return x;
}

void maybe_save(const Args& a, const cvec& y) {
  const std::string path = a.get("output", "");
  if (path.empty()) return;
  std::ofstream f(path, std::ios::binary);
  SOI_CHECK(f.good(), "cannot open output file " << path);
  f.write(reinterpret_cast<const char*>(y.data()),
          static_cast<std::streamsize>(y.size() * sizeof(cplx)));
  std::printf("wrote %zu complex values to %s\n", y.size(), path.c_str());
}

int cmd_design(const Args& a) {
  const win::SoiProfile p = profile_from(a);
  std::printf("profile    : %s\n", p.name.c_str());
  std::printf("window     : %s\n", p.window->name().c_str());
  std::printf("oversample : %lld/%lld (beta = %.4f)\n",
              static_cast<long long>(p.mu), static_cast<long long>(p.nu),
              p.beta());
  std::printf("taps B     : %lld (+%lld group slack when planned)\n",
              static_cast<long long>(p.taps),
              static_cast<long long>(2 * p.nu));
  std::printf("kappa      : %.3f\n", p.kappa);
  std::printf("eps_alias  : %.3e\n", p.eps_alias);
  std::printf("eps_trunc  : %.3e\n", p.eps_trunc);
  std::printf("target SNR : %.0f dB (~%.1f digits)\n", p.target_snr,
              p.target_snr / 20.0);
  return 0;
}

int cmd_transform(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 16);
  const std::int64_t p = a.geti("p", 8);
  win::SoiProfile prof;
  std::int64_t segments = p;
  std::string engine = engine_from(a);
  if (const auto tuned = wisdom_lookup(a, key_from(a, n, p))) {
    // Serial execution maps the tuned (ranks, segments/rank) granularity
    // onto P = ranks * spr total segments and reuses the tuned profile.
    // An explicit --engine overrides the wisdom line's engine pin.
    prof = tuned->profile;
    segments = p * tuned->candidate.segments_per_rank;
    if (engine.empty()) engine = tuned->candidate.engine;
  } else {
    prof = profile_from(a);
  }
  const auto plan =
      tune::PlanRegistry::global().serial_plan(n, segments, prof, engine);
  const cvec x = load_or_generate(a, n);
  cvec y(x.size());
  Timer t;
  if (a.flag("inverse")) {
    plan->inverse(x, y);
  } else {
    plan->forward(x, y);
  }
  const double sec = t.seconds();
  std::printf("%s SOI transform: N=%lld P=%lld in %.3f ms (%.2f GFLOPS)\n",
              a.flag("inverse") ? "inverse" : "forward",
              static_cast<long long>(n), static_cast<long long>(segments),
              sec * 1e3, fft_gflops(static_cast<std::size_t>(n), sec));
  if (a.flag("trace")) print_trace(plan->last_trace());
  if (a.flag("check")) {
    fft::FftPlan exact(n);
    cvec want(x.size());
    if (a.flag("inverse")) {
      exact.inverse(x, want);
    } else {
      exact.forward(x, want);
    }
    const double snr = snr_db(y, want);
    std::printf("SNR vs exact engine: %.1f dB (%.1f digits)\n", snr,
                snr_digits(snr));
  }
  maybe_save(a, y);
  return 0;
}

int cmd_segment(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 18);
  const std::int64_t p = a.geti("p", 64);
  const std::int64_t s = a.geti("s", 0);
  const win::SoiProfile prof = profile_from(a);
  core::SegmentPlan plan(n, p, prof);
  const cvec x = load_or_generate(a, n);
  cvec seg(static_cast<std::size_t>(plan.segment_length()));
  Timer t;
  plan.compute(x, s, seg);
  std::printf("segment %lld of %lld (bins [%lld, %lld)) in %.3f ms\n",
              static_cast<long long>(s), static_cast<long long>(p),
              static_cast<long long>(s * plan.segment_length()),
              static_cast<long long>((s + 1) * plan.segment_length()),
              t.millis());
  if (a.flag("check")) {
    fft::FftPlan exact(n);
    cvec want(x.size());
    exact.forward(x, want);
    const cspan want_seg{want.data() + s * plan.segment_length(),
                         seg.size()};
    std::printf("SNR vs exact engine: %.1f dB\n", snr_db(seg, want_seg));
  }
  maybe_save(a, seg);
  return 0;
}

int cmd_bench(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 18);
  const std::int64_t p = a.geti("p", 8);
  const int reps = static_cast<int>(a.geti("reps", 5));
  const win::SoiProfile prof = profile_from(a);
  core::SoiFftSerial soi(n, p, prof, engine_from(a));
  fft::FftPlan exact(n);
  const cvec x = load_or_generate(a, n);
  cvec y(x.size());
  double best_soi = 1e300, best_fft = 1e300;
  core::SoiPhaseTimes phases;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    soi.forward_timed(x, y, phases);
    best_soi = std::min(best_soi, t.seconds());
    t.reset();
    exact.forward(x, y);
    best_fft = std::min(best_fft, t.seconds());
  }
  std::printf("N=%lld P=%lld reps=%d\n", static_cast<long long>(n),
              static_cast<long long>(p), reps);
  std::printf("SOI     : %.3f ms (%.2f GFLOPS)\n", best_soi * 1e3,
              fft_gflops(static_cast<std::size_t>(n), best_soi));
  std::printf("plain FFT: %.3f ms (%.2f GFLOPS)\n", best_fft * 1e3,
              fft_gflops(static_cast<std::size_t>(n), best_fft));
  std::printf("phase split: conv %.2f / F_P %.2f / pack %.2f / F_M' %.2f / "
              "demod %.2f ms\n",
              phases.conv * 1e3, phases.fp * 1e3, phases.pack * 1e3,
              phases.fm * 1e3, phases.demod * 1e3);
  if (a.flag("trace")) print_trace(soi.last_trace());
  return 0;
}

int cmd_tune(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 16);
  const std::int64_t p = a.geti("p", 4);
  const tune::TuneKey key = key_from(a, n, p);

  tune::TuneOptions opts;
  const std::string mode = a.get("mode", "modeled");
  if (mode == "modeled") {
    opts.mode = tune::TuneMode::kModeled;
  } else if (mode == "measured") {
    opts.mode = tune::TuneMode::kMeasured;
  } else {
    throw Error("unknown --mode '" + mode + "' (modeled|measured)");
  }
  opts.reps = static_cast<int>(a.geti("reps", 3));
  opts.seed = static_cast<std::uint64_t>(a.geti("seed", 1));
  opts.node_gflops = a.getf("gflops", 4.0);
  opts.max_segments_per_rank = a.geti("max-spr", 8);
  opts.transport = transport_from(a);
  opts.engine = engine_from(a);

  std::printf("tuning [%s], mode=%s\n", key.str().c_str(), mode.c_str());
  const Timer t;
  const tune::TuneResult result = tune::autotune(key, opts);
  std::printf("%-44s %12s %12s %12s\n", "candidate", "compute ms", "comm ms",
              "total ms");
  for (const auto& s : result.scores) {
    const bool winner = s.candidate == result.best.candidate;
    std::printf("%c %-42s %12.4f %12.4f %12.4f\n", winner ? '*' : ' ',
                s.candidate.describe().c_str(), s.compute_seconds * 1e3,
                s.comm_seconds * 1e3, s.total_seconds() * 1e3);
  }
  std::printf("winner: %s (%.4f ms, %zu candidates, tuned in %.2f s)\n",
              result.best.candidate.describe().c_str(),
              result.best.total_seconds() * 1e3, result.scores.size(),
              t.seconds());

  if (a.flag("wisdom")) {
    const std::string path = a.get("wisdom", "");
    tune::WisdomStore store = tune::WisdomStore::load_or_empty(path);
    store.put(key, result.config());
    store.save(path);
    std::printf("wisdom: saved [%s] to %s (%zu entr%s)\n", key.str().c_str(),
                path.c_str(), store.size(), store.size() == 1 ? "y" : "ies");
  }
  return 0;
}

int cmd_dist(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 16);
  const int ranks = static_cast<int>(a.geti("p", 4));
  const tune::TuneKey key = key_from(a, n, ranks);

  tune::Candidate cand;  // seed defaults: spr=1, pairwise, no overlap
  cand.accuracy = key.accuracy;
  win::SoiProfile prof;
  if (const auto tuned = wisdom_lookup(a, key)) {
    cand = tuned->candidate;
    prof = tuned->profile;
  } else {
    prof = profile_from(a);
  }
  // Explicit flags override the wisdom line's backend pins; the resolved
  // names (wisdom pins included — they may come from a foreign build) are
  // validated against the registries before any ranks launch.
  std::string transport = transport_from(a);
  if (transport.empty()) transport = cand.transport;
  if (!transport.empty()) net::TransportRegistry::instance().caps(transport);
  std::string engine = engine_from(a);
  if (engine.empty()) engine = cand.engine;
  if (!engine.empty()) fft::EngineRegistry::instance().info(engine);

  // Resilience knobs: --fault-spec is strictly validated (a malformed
  // spec is rejected with a precise message before any ranks launch).
  net::NetOptions nopts;
  nopts.faults = net::FaultSpec::parse(a.get("fault-spec", ""));
  nopts.timeout_ms = a.getf("timeout-ms", 0.0);
  nopts.max_retries = static_cast<int>(a.geti("retries", 8));
  SOI_CHECK(nopts.timeout_ms >= 0, "--timeout-ms must be >= 0");
  SOI_CHECK(nopts.max_retries >= 0, "--retries must be >= 0");

  // --coding overrides the tuned code= knob from --wisdom (explicit flag
  // wins, like --topology); strictly validated before any ranks launch.
  net::Coding coding;
  const std::string coding_text = a.get("coding", cand.coding);
  SOI_CHECK(coding_text.empty() || net::Coding::parse(coding_text, &coding),
            "--coding '" << coding_text
                         << "' invalid — want K+R with 1 <= R <= K and "
                            "K + R <= "
                         << net::kMaxCodedSubs
                         << " (e.g. 2+1, 4+1, 4+2)");

  cvec x = load_or_generate(a, n);
  const bool want_check = a.flag("check");
  const bool want_trace = a.flag("trace");
  auto& registry = tune::PlanRegistry::global();
  Timer t;
  // Every result is assembled and printed INSIDE the world body, by rank
  // 0: with a cross-process transport (shm) the rank bodies run in child
  // processes, where writes to captured host memory never propagate back
  // to this caller — the full spectrum travels through the transport's
  // own gather instead, and stdout (a shared descriptor) carries the
  // report. The same path serves in-process transports unchanged.
  net::run_world(transport, ranks, nopts, [&](net::Transport& comm) {
    core::DistOptions dopts;
    dopts.segments_per_rank = cand.segments_per_rank;
    dopts.alltoall_algo = cand.alltoall_algo;
    dopts.overlap = cand.overlap;
    dopts.batch_width = cand.batch_width;
    dopts.chunk_depth = cand.chunk_depth;
    dopts.engine = engine;
    // --topology overrides the wisdom candidate's topo= knob (explicit
    // flag wins over tuned default; "flat" forces the flat schedule).
    dopts.topology = a.get("topology", cand.topology);
    dopts.coding = coding;
    dopts.faults = nopts.faults;
    dopts.timeout_ms = nopts.timeout_ms;
    dopts.max_retries = nopts.max_retries;
    // One conv table per address space, built by whichever rank gets
    // there first (cross-process worlds build one per rank process).
    dopts.table =
        registry.conv_table(n, ranks * cand.segments_per_rank, prof);
    core::SoiFftDist plan(comm, n, prof, dopts);
    const std::int64_t m_rank = plan.local_size();
    cvec y_local(static_cast<std::size_t>(m_rank));
    plan.forward(cspan{x.data() + comm.rank() * m_rank,
                       static_cast<std::size_t>(m_rank)},
                 y_local);
    // All traffic (and fault recovery) has quiesced once every rank
    // reaches this barrier, so rank 0's stats snapshot is complete.
    comm.barrier();
    cvec y(x.size());
    if (want_check) comm.gather(y_local, y, 0);
    if (comm.rank() != 0) return;
    if (comm.caps().threaded_world) {
      // Only meaningful when the ranks share this registry instance.
      const auto stats = registry.stats();
      std::printf("plan registry: %lld hits / %lld misses (conv table "
                  "built once, shared by %d ranks)\n",
                  static_cast<long long>(stats.hits),
                  static_cast<long long>(stats.misses), ranks);
    }
    const core::SoiDistBreakdown bd0 = plan.last_breakdown();
    std::printf("rank-0 breakdown: halo %.2e conv %.2e F_P %.2e pack %.2e "
                "a2a %.2e F_M' %.2e demod %.2e s\n",
                bd0.halo, bd0.conv, bd0.fp, bd0.pack, bd0.alltoall, bd0.fm,
                bd0.demod);
    if (nopts.faults.any()) {
      const net::FaultStats fstats = comm.fault_stats();
      std::printf("faults [%s]: injected %lld (drop %lld corrupt %lld "
                  "truncate %lld duplicate %lld delay %lld straggle %lld), "
                  "checksum failures %lld, retransmits %lld, timeouts "
                  "%lld\n",
                  nopts.faults.str().c_str(),
                  static_cast<long long>(fstats.faults_injected),
                  static_cast<long long>(fstats.drops),
                  static_cast<long long>(fstats.corruptions),
                  static_cast<long long>(fstats.truncations),
                  static_cast<long long>(fstats.duplicates),
                  static_cast<long long>(fstats.delays),
                  static_cast<long long>(fstats.stragglers),
                  static_cast<long long>(fstats.checksum_failures),
                  static_cast<long long>(fstats.retransmits),
                  static_cast<long long>(fstats.timeouts));
    }
    if (coding.enabled()) {
      // Rank 0's receive-side view; every rank does the same work.
      const net::CodedStats cstats = plan.coded_stats();
      std::printf("coded exchange [%s]: codewords %lld, shards rebuilt "
                  "from parity %lld, parity bytes sent %lld, retransmit "
                  "fallbacks %lld\n",
                  coding.str().c_str(),
                  static_cast<long long>(cstats.codewords),
                  static_cast<long long>(cstats.recovered_chunks),
                  static_cast<long long>(cstats.parity_bytes),
                  static_cast<long long>(cstats.coded_fallbacks));
    }
    if (want_trace) print_trace(plan.last_trace());
    if (want_check) {
      fft::FftPlan exact(n);
      cvec want(x.size());
      exact.forward(x, want);
      const double snr = snr_db(y, want);
      std::printf("SNR vs exact engine: %.1f dB (%.1f digits)\n", snr,
                  snr_digits(snr));
    }
  });
  const double sec = t.seconds();
  std::printf("distributed SOI transform: N=%lld ranks=%d (%s) over "
              "transport=%s engine=%s in %.3f ms\n",
              static_cast<long long>(n), ranks, cand.describe().c_str(),
              (transport.empty() ? net::default_transport() : transport)
                  .c_str(),
              (engine.empty() ? fft::default_engine() : engine).c_str(),
              sec * 1e3);
  return 0;
}

int cmd_serve(const Args& a) {
  const std::int64_t n = a.geti("n", 1 << 13);
  const int ranks = static_cast<int>(a.geti("p", 4));
  const int lanes = static_cast<int>(a.geti("lanes", 2));
  const int requests = static_cast<int>(a.geti("requests", 64));
  SOI_CHECK(lanes >= 1 && lanes <= serve::kMaxLanes,
            "--lanes must be in [1, " << serve::kMaxLanes << "]");
  SOI_CHECK(requests >= 1, "--requests must be >= 1");

  // Per-request scheduling knobs, strictly validated before any setup:
  // an unknown tier is rejected listing the valid ones (same style as
  // --transport / --engine).
  serve::SubmitOptions sopt;
  sopt.priority = serve::priority_from_name(a.get("priority", "batch"));
  sopt.deadline_ms = a.getf("deadline-ms", 0.0);
  SOI_CHECK(sopt.deadline_ms >= 0.0, "--deadline-ms must be >= 0");

  serve::ServeOptions so;
  so.ranks = ranks;
  so.transport = transport_from(a);
  so.workers = static_cast<int>(a.geti("workers", 1));
  so.max_concurrency = static_cast<int>(a.geti("concurrency", 4));
  so.queue_capacity = static_cast<int>(a.geti("queue", 64));
  so.wire_latency_us = a.getf("wire-latency-us", 0.0);
  so.batch_linger_us = a.getf("linger-us", 0.0);
  // Erasure-code the rank team's exchange; same strict grammar as dist.
  const std::string coding_text = a.get("coding", "");
  SOI_CHECK(coding_text.empty() ||
                net::Coding::parse(coding_text, &so.coding),
            "--coding '" << coding_text
                         << "' invalid — want K+R with 1 <= R <= K and "
                            "K + R <= "
                         << net::kMaxCodedSubs
                         << " (e.g. 2+1, 4+1, 4+2)");
  if (so.ranks >= 2 && !so.transport.empty() &&
      !net::TransportRegistry::instance().caps(so.transport)
           .threaded_world) {
    // The rank team needs every rank in this address space; a
    // cross-process fabric (e.g. shm) can still serve — through the
    // serial worker backend — so the demo degrades instead of failing.
    std::fprintf(stderr,
                 "note: transport '%s' runs ranks in separate processes; "
                 "serving falls back to the serial worker backend\n",
                 so.transport.c_str());
    so.ranks = 0;
    so.transport.clear();
    if (so.workers < 1) so.workers = 1;
  }
  serve::TransformService svc(so);

  const auto accuracy =
      tune::accuracy_from_name(a.get("accuracy", "high"));
  std::vector<int> lane_ids;
  std::vector<cvec> inputs;
  for (int l = 0; l < lanes; ++l) {
    serve::LaneSpec spec;
    spec.n = n << l;
    spec.accuracy = accuracy;
    spec.segments_per_rank = 2;
    lane_ids.push_back(svc.create_lane(spec));
    cvec x(static_cast<std::size_t>(spec.n));
    fill_gaussian(x, static_cast<std::uint64_t>(a.geti("seed", 1) + l));
    inputs.push_back(std::move(x));
  }
  svc.warmup();
  svc.reset_metrics();

  // One tenant per (lane, parity) pair, round-robin over the trace; each
  // request reuses its tenant's input and a preallocated output.
  const int tenants = 2 * lanes;
  std::vector<cvec> youts;
  for (int i = 0; i < requests; ++i) {
    youts.emplace_back(
        static_cast<std::size_t>(n << ((i % tenants) % lanes)));
  }
  const double rate = a.getf("rate", 0.0);
  std::mt19937_64 rng(static_cast<std::uint64_t>(a.geti("seed", 1)));
  std::exponential_distribution<double> gap(rate > 0 ? rate : 1.0);
  std::vector<serve::Ticket> tickets(static_cast<std::size_t>(requests));
  std::vector<signed char> ok(static_cast<std::size_t>(requests), 0);
  Timer wall;
  double due = 0.0;
  for (int i = 0; i < requests; ++i) {
    if (rate > 0) {
      due += gap(rng);
      const double now = wall.seconds();
      if (due > now) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due - now));
      }
    }
    const int tenant = i % tenants;
    const auto t = svc.try_submit(lane_ids[static_cast<std::size_t>(
                                      tenant % lanes)],
                                  tenant,
                                  inputs[static_cast<std::size_t>(
                                      tenant % lanes)],
                                  youts[static_cast<std::size_t>(i)], sopt);
    if (t) {
      tickets[static_cast<std::size_t>(i)] = *t;
      ok[static_cast<std::size_t>(i)] = 1;
    }
    // Burst mode keeps the queue saturated: harvest the oldest ticket
    // whenever admission rejects, then retry once.
    if (!t && rate <= 0) {
      for (int j = 0; j < i; ++j) {
        if (ok[static_cast<std::size_t>(j)] == 1) {
          svc.wait(tickets[static_cast<std::size_t>(j)]);
          ok[static_cast<std::size_t>(j)] = 2;
          break;
        }
      }
      if (const auto t2 = svc.try_submit(
              lane_ids[static_cast<std::size_t>(tenant % lanes)], tenant,
              inputs[static_cast<std::size_t>(tenant % lanes)],
              youts[static_cast<std::size_t>(i)], sopt)) {
        tickets[static_cast<std::size_t>(i)] = *t2;
        ok[static_cast<std::size_t>(i)] = 1;
      }
    }
  }
  int failed = 0;
  int shed = 0;
  for (int i = 0; i < requests; ++i) {
    if (ok[static_cast<std::size_t>(i)] != 1) continue;
    try {
      svc.wait(tickets[static_cast<std::size_t>(i)]);
    } catch (const DeadlineExceededError&) {
      ++shed;  // deadline shedding is a policy outcome, not a failure
    } catch (const std::exception& e) {
      ++failed;
      std::fprintf(stderr, "request %d failed: %s\n", i, e.what());
    }
  }
  const auto m = svc.metrics();
  svc.stop();

  std::printf("serving %d lanes (N=%lld..%lld) on %s, %d tenants, "
              "tier %s\n",
              lanes, static_cast<long long>(n),
              static_cast<long long>(n << (lanes - 1)),
              so.ranks > 0 ? "rank team" : "worker pool", tenants,
              serve::priority_name(sopt.priority));
  std::printf("admitted %lld  rejected %lld  completed %lld  failed %lld  "
              "shed %lld\n",
              static_cast<long long>(m.admitted),
              static_cast<long long>(m.rejected),
              static_cast<long long>(m.completed),
              static_cast<long long>(m.failed),
              static_cast<long long>(m.shed));
  std::printf("throughput %.1f transforms/s  p50 %.3f ms  p99 %.3f ms  "
              "queue peak %lld  occupancy %.2f\n",
              m.transforms_per_sec, m.p50_ms, m.p99_ms,
              static_cast<long long>(m.queue_peak), m.arena_occupancy);
  for (const auto& t : m.tenants) {
    std::printf("tenant %d: completed %lld  overlap efficiency %.3f\n",
                t.tenant, static_cast<long long>(t.completed),
                t.overlap_efficiency);
  }
  static const char* kTierNames[serve::kTiers] = {"interactive", "batch",
                                                  "background"};
  for (int t = 0; t < serve::kTiers; ++t) {
    const auto& tier = m.tiers[static_cast<std::size_t>(t)];
    if (tier.admitted == 0 && tier.shed == 0) continue;
    std::printf("tier %-11s admitted %lld  completed %lld  shed %lld  "
                "p50 %.3f ms  p99 %.3f ms",
                kTierNames[t], static_cast<long long>(tier.admitted),
                static_cast<long long>(tier.completed),
                static_cast<long long>(tier.shed), tier.p50_ms, tier.p99_ms);
    if (so.coding.enabled() || tier.recovered_chunks > 0 ||
        tier.parity_bytes > 0 || tier.retries > 0) {
      std::printf("  recovered %lld  parity %lld B  retries %lld",
                  static_cast<long long>(tier.recovered_chunks),
                  static_cast<long long>(tier.parity_bytes),
                  static_cast<long long>(tier.retries));
    }
    std::printf("\n");
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0 ||
                      std::strcmp(argv[1], "help") == 0)) {
      return usage(stdout);
    }
    const Args a = parse(argc, argv);
    if (a.flag("help")) return usage(stdout);
    if (a.command == "design") return cmd_design(a);
    if (a.command == "transform") return cmd_transform(a);
    if (a.command == "segment") return cmd_segment(a);
    if (a.command == "bench") return cmd_bench(a);
    if (a.command == "tune") return cmd_tune(a);
    if (a.command == "dist") return cmd_dist(a);
    if (a.command == "serve") return cmd_serve(a);
    return usage(stderr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soifft: %s\n", e.what());
    return 1;
  }
}
