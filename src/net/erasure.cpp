#include "net/erasure.hpp"

#include <cstring>

#include "common/error.hpp"
#include "net/transport.hpp"

namespace soi::net {

static_assert(kMaxChannelsForCodedTags == kMaxChannels,
              "coded tag space sized for a different channel ceiling");
// Largest coded tag must stay well inside positive int range.
static_assert(static_cast<long long>(kTagCodedBase) +
                  static_cast<long long>(kCodedEpochCycle) *
                      kMaxChannelsForCodedTags * kMaxCodedPhases *
                      kMaxCodedGroups * kMaxCodedSubs <
              (1LL << 31));

namespace {

// GF(2^8) with the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d). exp table is doubled so mul never reduces mod 255.
struct Gf256Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};
  Gf256Tables() {
    std::uint32_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100U) x ^= 0x11dU;
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
  }
};

const Gf256Tables& tables() {
  static const Gf256Tables t;
  return t;
}

inline std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

inline std::uint8_t inv(std::uint8_t a) {
  SOI_CHECK(a != 0, "GF(2^8): inverse of zero");
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

// dst ^= src * c over shard_bytes (c == 1 folds to plain XOR).
void mul_acc(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
             std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = tables();
  const std::size_t lc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp[lc + t.log[s]];
  }
}

// Invert a k x k matrix over GF(2^8) in place via Gauss-Jordan with
// partial pivoting (row swaps). Returns false if singular.
bool invert(std::vector<std::uint8_t>& m, std::vector<std::uint8_t>& out,
            int k) {
  const auto kk = static_cast<std::size_t>(k);
  out.assign(kk * kk, 0);
  for (std::size_t i = 0; i < kk; ++i) out[i * kk + i] = 1;
  for (std::size_t col = 0; col < kk; ++col) {
    std::size_t piv = col;
    while (piv < kk && m[piv * kk + col] == 0) ++piv;
    if (piv == kk) return false;
    if (piv != col) {
      for (std::size_t j = 0; j < kk; ++j) {
        std::swap(m[piv * kk + j], m[col * kk + j]);
        std::swap(out[piv * kk + j], out[col * kk + j]);
      }
    }
    const std::uint8_t pi = inv(m[col * kk + col]);
    for (std::size_t j = 0; j < kk; ++j) {
      m[col * kk + j] = mul(m[col * kk + j], pi);
      out[col * kk + j] = mul(out[col * kk + j], pi);
    }
    for (std::size_t row = 0; row < kk; ++row) {
      if (row == col) continue;
      const std::uint8_t f = m[row * kk + col];
      if (f == 0) continue;
      for (std::size_t j = 0; j < kk; ++j) {
        m[row * kk + j] ^= mul(f, m[col * kk + j]);
        out[row * kk + j] ^= mul(f, out[col * kk + j]);
      }
    }
  }
  return true;
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) { return mul(a, b); }
std::uint8_t gf256_inv(std::uint8_t a) { return inv(a); }

bool Coding::parse(const std::string& text, Coding* out) {
  const std::size_t plus = text.find('+');
  if (plus == std::string::npos || plus == 0 || plus + 1 >= text.size()) {
    return false;
  }
  long k = 0;
  long r = 0;
  for (std::size_t i = 0; i < plus; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    k = k * 10 + (c - '0');
    if (k > kMaxCodedSubs) return false;
  }
  for (std::size_t i = plus + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    r = r * 10 + (c - '0');
    if (r > kMaxCodedSubs) return false;
  }
  if (k < 1 || r < 1 || r > k || k + r > kMaxCodedSubs) return false;
  out->k = static_cast<int>(k);
  out->r = static_cast<int>(r);
  return true;
}

std::string Coding::str() const {
  if (!enabled()) return "";
  return std::to_string(k) + "+" + std::to_string(r);
}

void write_coded_header(std::uint8_t* dst, const CodedFrame& f) {
  store_le32(dst, f.epoch);
  dst[4] = static_cast<std::uint8_t>(f.sub);
  dst[5] = static_cast<std::uint8_t>(f.sub >> 8);
  dst[6] = f.k;
  dst[7] = f.r;
  store_le64(dst + 8, f.cw_bytes);
}

bool read_coded_header(const std::uint8_t* src, std::size_t bytes,
                       CodedFrame* out) {
  if (bytes < kCodedHeaderBytes) return false;
  out->epoch = load_le32(src);
  out->sub = static_cast<std::uint16_t>(src[4] |
                                        (static_cast<unsigned>(src[5]) << 8));
  out->k = src[6];
  out->r = src[7];
  out->cw_bytes = load_le64(src + 8);
  return true;
}

ErasureCode::ErasureCode(int k, int r) : k_(k), r_(r) {
  SOI_CHECK(k >= 1 && r >= 1 && k + r <= kMaxCodedSubs,
            "ErasureCode: invalid k=" << k << " r=" << r);
  parity_.assign(static_cast<std::size_t>(r) * static_cast<std::size_t>(k), 0);
  if (r == 1) {
    // Systematic XOR parity: the all-ones row. Any k x k submatrix of
    // [I ; 1] is nonsingular, so one lost shard is always recoverable.
    for (int j = 0; j < k; ++j) parity_[static_cast<std::size_t>(j)] = 1;
    return;
  }
  // Cauchy parity: P[i][j] = 1 / (x_i ^ y_j) with x_i = k + i (parity
  // rows) and y_j = j (data columns) — all distinct for k + r <= 256, so
  // every square submatrix is nonsingular and the code is MDS.
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < k; ++j) {
      parity_[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
              static_cast<std::size_t>(j)] =
          inv(static_cast<std::uint8_t>((k + i) ^ j));
    }
  }
}

void ErasureCode::encode(const std::uint8_t* const* data,
                         std::uint8_t* const* parity,
                         std::size_t shard_bytes) const {
  for (int i = 0; i < r_; ++i) {
    std::memset(parity[i], 0, shard_bytes);
    const std::uint8_t* row =
        parity_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(k_);
    for (int j = 0; j < k_; ++j) {
      mul_acc(parity[i], data[j], row[j], shard_bytes);
    }
  }
}

bool ErasureCode::reconstruct(const int* present,
                              const std::uint8_t* const* shards,
                              std::uint8_t* const* out_data,
                              std::size_t shard_bytes) const {
  const int n = k_ + r_;
  std::array<bool, kMaxCodedSubs> seen{};
  for (int t = 0; t < k_; ++t) {
    const int idx = present[t];
    if (idx < 0 || idx >= n || seen[static_cast<std::size_t>(idx)]) {
      return false;
    }
    seen[static_cast<std::size_t>(idx)] = true;
  }

  // Fast path: all data shards present — pure copy-through.
  bool all_data = true;
  for (int t = 0; t < k_; ++t) {
    if (present[t] != t) {
      all_data = false;
      break;
    }
  }
  if (all_data) {
    for (int t = 0; t < k_; ++t) {
      if (out_data[t] != shards[t]) {
        std::memcpy(out_data[t], shards[t], shard_bytes);
      }
    }
    return true;
  }

  // Fast path: r == 1 with exactly one missing data shard — XOR of the
  // survivors and the parity shard.
  if (r_ == 1) {
    int missing = -1;
    for (int j = 0; j < k_; ++j) {
      if (!seen[static_cast<std::size_t>(j)]) {
        missing = j;
        break;
      }
    }
    // missing >= 0 here (all-data case handled above).
    for (int t = 0; t < k_; ++t) {
      const int idx = present[t];
      if (idx < k_ && out_data[idx] != shards[t]) {
        std::memcpy(out_data[idx], shards[t], shard_bytes);
      }
    }
    std::uint8_t* dst = out_data[missing];
    std::memset(dst, 0, shard_bytes);
    for (int t = 0; t < k_; ++t) {
      mul_acc(dst, shards[t], 1, shard_bytes);
    }
    return true;
  }

  // General path: invert the k x k submatrix of the generator picked out
  // by the present shard indices, then synthesize only the missing rows.
  const auto kk = static_cast<std::size_t>(k_);
  std::vector<std::uint8_t> m(kk * kk, 0);
  for (int t = 0; t < k_; ++t) {
    const int idx = present[t];
    std::uint8_t* row = m.data() + static_cast<std::size_t>(t) * kk;
    if (idx < k_) {
      row[static_cast<std::size_t>(idx)] = 1;
    } else {
      std::memcpy(row,
                  parity_.data() +
                      static_cast<std::size_t>(idx - k_) * kk,
                  kk);
    }
  }
  std::vector<std::uint8_t> minv;
  if (!invert(m, minv, k_)) return false;  // unreachable for MDS generator

  // Copy through the present data shards first (out_data may alias the
  // matching present shard), then rebuild each missing shard as
  // Minv[row] · present-shards.
  std::array<const std::uint8_t*, kMaxCodedSubs> src{};
  for (int t = 0; t < k_; ++t) src[static_cast<std::size_t>(t)] = shards[t];
  for (int t = 0; t < k_; ++t) {
    const int idx = present[t];
    if (idx < k_ && out_data[idx] != shards[t]) {
      std::memcpy(out_data[idx], shards[t], shard_bytes);
    }
  }
  for (int j = 0; j < k_; ++j) {
    if (seen[static_cast<std::size_t>(j)]) continue;
    std::uint8_t* dst = out_data[j];
    std::memset(dst, 0, shard_bytes);
    const std::uint8_t* row = minv.data() + static_cast<std::size_t>(j) * kk;
    for (int t = 0; t < k_; ++t) {
      mul_acc(dst, src[static_cast<std::size_t>(t)],
              row[static_cast<std::size_t>(t)], shard_bytes);
    }
  }
  return true;
}

}  // namespace soi::net
