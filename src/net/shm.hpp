// Shared-memory multi-process transport — the "shm" backend of the
// net::Transport ABI. Unlike SimMPI's thread-per-rank world, every rank is
// a forked OS PROCESS with its own address space; the only shared state is
// one anonymous MAP_SHARED region created by the parent before the forks:
//
//   * a world header (abort flag, per-rank error slots, barrier and
//     reduction rendezvous state, resilience configuration, fault/timeout
//     counters),
//   * one byte-ring inbox per rank, guarded by a process-shared
//     pthread mutex/cond pair,
//   * a rank-ordered reduction scratch area.
//
// Messages travel as framed fragments through the destination's ring and
// carry the same integrity envelope SimMPI stamps: a CRC32C over the whole
// payload plus a per-(src → dst) sequence number, verified at delivery
// (PayloadCorruptionError on mismatch — shared-memory corruption is
// DETECTED, never silently consumed). The receiver drains its ring into a
// process-local mailbox and matches (src, tag) out of order there, exactly
// like SimMPI's mailbox — so matching semantics, any-source receives,
// request drop rules and collective-channel ordering are bit-compatible
// across the two backends.
//
// Flow control is deadlock-free by construction: a sender blocked on a
// full destination ring drains its OWN inbox while it waits, so two ranks
// streaming into each other always make progress. Every blocking wait in a
// child is a SHORT timed wait that re-checks the world abort flag, so a
// dead peer can never hang the world: the failing rank records a typed
// error in its slot and flips the flag; every blocked peer unwinds with
// WorldAbortedError; the parent rethrows the first primary error by rank
// order (exactly run_ranks' contract).
//
// Capability sheet: no fault injector and no latency emulation (the
// kernel's scheduler is the only source of nondeterminism) — requesting
// either is REPORTED through unsupported_options(), not ignored. Traffic
// events are not recorded (child-side logs cannot reach the parent).
//
// IMPORTANT fork caveat for callers: rank bodies run in child processes.
// They may READ parent memory (copy-on-write), but writes do not propagate
// back — assert results inside the body and let failures surface as child
// exit codes / typed errors.
#pragma once

#include <functional>
#include <vector>

#include "net/traffic.hpp"
#include "net/transport.hpp"

namespace soi::net {

/// Launch `nranks` forked rank processes over the shared-memory transport,
/// run `body` in each, and join. The first primary error (by rank order)
/// recorded by a child is rethrown here with its original Status type;
/// ranks that unwound only because a peer failed surface WorldAbortedError
/// and are rethrown only when no primary exists. Returns no traffic events
/// (the backend records none).
std::vector<CommEvent> run_shm_world(
    int nranks, const NetOptions& opts,
    const std::function<void(Transport&)>& body);

/// Registers the "shm" backend in the TransportRegistry. Called exactly
/// once by the registry's lazy initialiser — not by user code.
void register_shm_transport();

}  // namespace soi::net
