// TransportRegistry: named factories for net::Transport backends, plus
// run_world() — the transport-generic way to launch a rank team. This is
// how code above src/net selects a fabric at runtime:
//
//   net::run_world("shm", 8, opts, [](net::Transport& t) { ... });
//
// Built-in backends ("sim" always; "shm" always; "mpi" only with
// -DSOI_WITH_MPI=ON) are registered lazily, exactly once, on first
// registry use — no static-initialisation-order or dead-TU-stripping
// hazards. Additional backends may be registered before first use via
// register_backend(); duplicate names are an error (exactly-once factory
// registration is part of the contract, and tested).
//
// Name resolution: an empty transport name means "the default", which is
// the SOI_TRANSPORT environment variable when set, else "sim". Unknown
// names throw soi::InvalidArgumentError listing every registered backend.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/traffic.hpp"
#include "net/transport.hpp"

namespace soi::net {

/// Rank body of a transport-generic world: called once per rank with that
/// rank's communicator. With cross-process backends the body runs in a
/// CHILD process — writes to captured host memory do not propagate back to
/// the caller; results must flow through the transport or side effects
/// (files, exit codes).
using WorldBody = std::function<void(Transport&)>;

/// One registered backend: its static capability sheet plus the factory
/// that launches a world.
struct TransportBackend {
  TransportCaps caps;
  /// Launch `nranks` ranks, run `body` on each, join, and return the
  /// world's traffic events (empty unless caps.traffic_events). Rank-body
  /// exceptions are captured; the first primary error (by rank order) is
  /// rethrown after the join, exactly like net::run_ranks.
  std::function<std::vector<CommEvent>(int nranks, const NetOptions& opts,
                                       const WorldBody& body)>
      run;
};

/// Process-wide, thread-safe backend table. Lookups trigger the lazy
/// built-in registration; registration itself is exactly-once per name.
class TransportRegistry {
 public:
  /// The singleton. Never returns null; safe to call concurrently.
  static TransportRegistry& instance();

  /// Register a backend under `name`. Throws soi::InvalidArgumentError if
  /// the name is empty or already registered (factories register once).
  void register_backend(const std::string& name, TransportBackend backend);

  /// Look up a backend; throws soi::InvalidArgumentError naming every
  /// registered backend when `name` is unknown. The reference stays valid
  /// for the process lifetime (backends are never unregistered).
  const TransportBackend& lookup(const std::string& name) const;

  /// Static capability sheet of a registered backend (no world needed).
  const TransportCaps& caps(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registered backend names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  TransportRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// The transport name an empty selection resolves to: $SOI_TRANSPORT when
/// set (and non-empty), else "sim".
std::string default_transport();

/// Launch a world of `nranks` over the named transport ("" = default) and
/// run `body` on every rank. NetOptions fields the backend cannot honour
/// are reported to stderr (one warning line each) before launch — options
/// are never silently ignored. Returns the world's traffic events.
std::vector<CommEvent> run_world(const std::string& transport, int nranks,
                                 const NetOptions& opts, const WorldBody& body);

/// Convenience overload: default options.
std::vector<CommEvent> run_world(const std::string& transport, int nranks,
                                 const WorldBody& body);

}  // namespace soi::net
