#include "net/transport.hpp"

#include <sstream>

namespace soi::net {

std::vector<std::string> unsupported_option_warnings(const TransportCaps& caps,
                                                     const NetOptions& opts) {
  std::vector<std::string> warnings;
  const auto warn = [&](const std::string& what) {
    std::ostringstream os;
    os << "transport '" << caps.name << "' cannot honour " << what
       << " (capability not supported; the option is ignored)";
    warnings.push_back(os.str());
  };
  if (opts.faults.any() && !caps.fault_injection) {
    warn("the fault-injection spec (NetOptions::faults)");
  }
  if (!caps.latency_emulation) {
    if (opts.wire_latency_us > 0) {
      warn("wire-latency emulation (NetOptions::wire_latency_us)");
    }
    if (opts.intra_latency_us > 0 || opts.topo_group_size > 0) {
      warn("the intra-node latency tier (NetOptions::intra_latency_us / "
           "topo_group_size)");
    }
  }
  if (!opts.checksums && !caps.checksums) {
    // Disabling checksums on a backend that never stamps them is a no-op
    // worth flagging: the caller believes they toggled something.
    warn("a checksum toggle (NetOptions::checksums — this backend has no "
         "CRC envelope)");
  }
  return warnings;
}

std::vector<std::string> Transport::unsupported_options(
    const NetOptions& opts) const {
  return unsupported_option_warnings(caps(), opts);
}

}  // namespace soi::net
