// Transport ABI: the abstract message-passing surface the SOI pipeline,
// serving layer and baselines are written against. Everything above
// src/net (src/soi, src/serve, src/baseline, src/tune) includes THIS
// header — never a concrete backend header like net/comm.hpp — so the
// same transform code runs over interchangeable fabrics:
//
//   * "sim"  — SimMPI, thread-per-rank in one process with fault
//              injection and wire-latency emulation (net/comm.hpp),
//   * "shm"  — multi-process shared-memory rings, fork + mmap with the
//              same CRC32C/sequence integrity envelope (net/shm.hpp),
//   * "mpi"  — compile-time-gated skeleton mapping this ABI onto
//              MPI_Comm (net/mpi_transport.hpp, -DSOI_WITH_MPI=ON).
//
// Backends register a factory in net::TransportRegistry (net/registry.hpp)
// and advertise what they can do through TransportCaps. Capabilities are
// NOT silently dropped: a backend that cannot honour a NetOptions field
// (say, wire-latency emulation on a real fabric) must report it through
// unsupported_options() so callers can warn instead of measuring nothing.
//
// The surface is exactly what soi::exec and the serving layer use: tagged
// blocking and nonblocking point-to-point, ialltoall(v) on co-scheduling
// channels, the small collective set (barrier/bcast/gather/allgather/
// allreduce), deadline-bounded waits, and the resilience/introspection
// queries (fault stats, traffic log, monotonic bytes-sent counter).
//
// Request handles are type-erased and move-only. Dropping a live request
// has the semantics the SimMPI layer pioneered: an unfinished collective
// is cancelled (its in-flight pieces purged, future arrivals discarded), a
// pending receive forgets its posting, a completed/send request is a
// no-op. Every backend must preserve these drop semantics — the
// conformance suite in tests/test_backends.cpp checks them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/traffic.hpp"

namespace soi::net {

/// Wildcard source for recv_any-style matching.
inline constexpr int kAnySource = -1;

/// ABI-wide ceiling on collective co-scheduling channels
/// (ialltoall/ialltoallv's `channel` parameter). Channels exist for
/// multi-tenant co-scheduling: all ranks must post the collectives of ONE
/// channel in the same program order, but the relative order of postings
/// on DIFFERENT channels is free to differ per rank. Fixed-size tables
/// (the serving layer's slot arrays, the staged-exchange tag space) are
/// dimensioned by this constant; an individual backend may support fewer
/// — query TransportCaps::max_coll_channels for the live limit.
inline constexpr int kMaxChannels = 16;

/// Secondary error delivered to ranks blocked on communication when a peer
/// rank's body already failed: the world is marked aborted and every
/// sleeping wait unwinds with this instead of deadlocking on a message or
/// rendezvous that can never arrive. run_world() resurfaces the peer's
/// primary error; this one is only rethrown when no primary exists.
class WorldAbortedError : public CommTimeoutError {
 public:
  using CommTimeoutError::CommTimeoutError;
};

/// All-to-all algorithm selection (both give identical results; tests
/// assert so — the choice models different message schedules). Backends
/// without TransportCaps::alltoall_algo_choice run their single native
/// schedule for either value.
enum class AlltoallAlgo {
  kPairwise,  ///< P-1 rounds of sendrecv with partner (rank + step) mod P
  kDirect,    ///< post all sends, then drain all receives
};

/// Per-world resilience configuration. Defaults are the legacy semantics:
/// no injected faults, unbounded waits, checksums stamped and verified.
/// Not every backend honours every field — run the options through
/// Transport::unsupported_options() (run_world() does, and logs a warning
/// per ignored field).
struct NetOptions {
  /// Chaos scenario (empty = none). When set and timeout_ms == 0, a
  /// default deadline is applied so injected drops/delays cannot hang.
  /// Requires TransportCaps::fault_injection.
  FaultSpec faults;
  /// Base deadline of one wait attempt in ms; 0 = wait forever.
  double timeout_ms = 0.0;
  /// Bounded-wait attempts (with doubling backoff) before a wait throws
  /// soi::CommTimeoutError; 0 disables recovery entirely (corruption and
  /// timeouts surface as typed errors on first detection).
  int max_retries = 8;
  /// Stamp CRC32C payload checksums on every send. Off only to measure
  /// the stamping cost.
  bool checksums = true;
  /// Emulated per-message wire latency in microseconds (0 = off). A sent
  /// message only becomes matchable this long after the send posts.
  /// Requires TransportCaps::latency_emulation.
  double wire_latency_us = 0.0;
  /// Second, cheaper latency tier for hierarchical fabrics: messages
  /// between ranks of the same node group (rank / topo_group_size) take
  /// this latency instead of wire_latency_us. Only meaningful with
  /// topo_group_size > 0. Requires TransportCaps::latency_emulation.
  double intra_latency_us = 0.0;
  /// Ranks per node group for the intra/inter latency split (0 = no
  /// grouping, every message pays wire_latency_us).
  int topo_group_size = 0;
};

/// What one registered backend can do. Returned both statically from the
/// registry (so callers can validate options before launching a world) and
/// from a live Transport via caps().
struct TransportCaps {
  /// Registered backend name ("sim", "shm", "mpi").
  const char* name = "?";
  /// Collective channels this backend disambiguates (<= kMaxChannels).
  int max_coll_channels = kMaxChannels;
  /// kDirect runs a genuinely different message schedule from kPairwise
  /// (false: one native schedule serves both values).
  bool alltoall_algo_choice = false;
  /// Payloads carry a CRC32C integrity envelope verified at delivery.
  bool checksums = false;
  /// NetOptions::faults is honoured (deterministic chaos injection).
  bool fault_injection = false;
  /// wire_latency_us / intra_latency_us / topo_group_size are honoured.
  bool latency_emulation = false;
  /// run_world() returns per-message CommEvents (cost-model input).
  bool traffic_events = false;
  /// Ranks are threads of the calling process sharing its address space —
  /// required by in-process hosts like serve::TransformService that hand
  /// pointers across the rank boundary.
  bool threaded_world = false;
  /// Ranks are separate OS processes (address-space isolation; a crashed
  /// rank cannot corrupt its peers).
  bool cross_process = false;
};

/// Backend-owned completion state behind a type-erased Request. Concrete
/// transports subclass this; the destructor runs the backend's
/// cancel-on-drop path for live operations.
class RequestState {
 public:
  virtual ~RequestState() = default;
  /// True once the operation has completed (always true for send
  /// requests — sends are buffered and finish at post time).
  [[nodiscard]] virtual bool done() const = 0;
  /// For completed receives: the matched source rank (useful with
  /// kAnySource). -1 until completion.
  [[nodiscard]] virtual int source() const = 0;
};

/// Handle for an in-flight nonblocking operation. Move-only and passive:
/// no registry, no background progress. Completion is driven by the owning
/// rank's thread through Transport::test/wait/waitall. Constructed
/// inactive (done); obtain live ones from isend/irecv/ialltoall(v).
/// Destroying (or overwriting) a live request runs the backend's
/// cancel-on-drop semantics (see header comment).
class Request {
 public:
  Request() = default;
  explicit Request(std::unique_ptr<RequestState> state)
      : state_(std::move(state)) {}
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request() = default;

  /// True once the operation has completed (inactive handles are done).
  [[nodiscard]] bool done() const { return !state_ || state_->done(); }

  /// True if this handle refers to a posted operation (even a finished one).
  [[nodiscard]] bool active() const { return state_ != nullptr; }

  /// Matched source rank of a completed receive; -1 until completion.
  [[nodiscard]] int source() const {
    return state_ ? state_->source() : kAnySource;
  }

  /// Backend access to the concrete state (downcast point). Null for
  /// inactive handles.
  [[nodiscard]] RequestState* state() const { return state_.get(); }

 private:
  std::unique_ptr<RequestState> state_;
};

/// The abstract per-rank communicator. One instance per rank per world;
/// obtained inside a run_world() body (net/registry.hpp). All operations
/// are blocking unless named i*; everything is safe to call only from the
/// owning rank's thread of control.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual const TransportCaps& caps() const = 0;

  // -- point to point (byte payloads) --
  virtual void send_bytes(int dst, int tag, const void* data,
                          std::size_t bytes) = 0;
  virtual void recv_bytes(int src, int tag, void* data, std::size_t bytes) = 0;

  // -- typed convenience (complex doubles, the library's working type) --
  void send(int dst, int tag, cspan data) {
    send_bytes(dst, tag, data.data(), data.size() * sizeof(cplx));
  }
  void recv(int src, int tag, mspan data) {
    recv_bytes(src, tag, data.data(), data.size() * sizeof(cplx));
  }

  /// Simultaneous exchange (deadlock-free even for self/neighbour cycles).
  virtual void sendrecv(int dst, cspan send_data, int src, mspan recv_data,
                        int tag) = 0;

  /// Non-blocking receive attempt: if a matching message is already
  /// queued, consume it into `data` and return true; otherwise return
  /// false immediately.
  virtual bool try_recv(int src, int tag, mspan data) = 0;

  // -- nonblocking point to point --

  /// Post a buffered send. Completes immediately (the returned request is
  /// already done); it exists so send/recv pairs read symmetrically and so
  /// waitall can cover both directions.
  virtual Request isend(int dst, int tag, cspan data) = 0;
  virtual Request isend_bytes(int dst, int tag, const void* data,
                              std::size_t bytes) = 0;

  /// Post a receive. No data moves until test()/wait() matches a message;
  /// `data` must stay valid until then.
  virtual Request irecv(int src, int tag, mspan data) = 0;
  virtual Request irecv_bytes(int src, int tag, void* data,
                              std::size_t bytes) = 0;

  // -- nonblocking collectives --

  /// Nonblocking alltoall. All ranks must post the nonblocking collectives
  /// of one `channel` in the same program order (a per-rank, per-channel
  /// sequence number disambiguates concurrent in-flight collectives);
  /// postings on different channels may interleave differently per rank.
  /// `channel` must be < caps().max_coll_channels.
  virtual Request ialltoall(cspan send_data, mspan recv_data,
                            std::int64_t count,
                            AlltoallAlgo algo = AlltoallAlgo::kPairwise,
                            int channel = 0) = 0;

  /// Nonblocking alltoallv. `recv_counts`/`recv_displs` are captured by
  /// pointer and must outlive the request. Same per-channel ordering
  /// contract as ialltoall.
  virtual Request ialltoallv(cspan send_data,
                             std::span<const std::int64_t> send_counts,
                             std::span<const std::int64_t> send_displs,
                             mspan recv_data,
                             std::span<const std::int64_t> recv_counts,
                             std::span<const std::int64_t> recv_displs,
                             int channel = 0) = 0;

  /// One progress attempt on the calling rank's mailbox; true when the
  /// request has completed. Never blocks.
  virtual bool test(Request& req) = 0;

  /// Block until the request completes. Under the world's resilience
  /// configuration (timeout_ms() > 0) this is a bounded wait that throws
  /// soi::CommTimeoutError after max_retries() expired deadlines.
  virtual void wait(Request& req) = 0;

  /// One deadline-bounded completion attempt: progress, sleep until the
  /// deadline, run the backend's recovery at expiry, and report whether
  /// the request finished. timeout_ms <= 0 blocks until completion.
  /// Throws soi::PayloadCorruptionError when a payload fails verification
  /// and recovery is disabled or impossible; never throws on timeout
  /// (callers own the retry policy).
  virtual bool wait_for(Request& req, double timeout_ms) = 0;

  /// wait() over a span, in order.
  virtual void waitall(std::span<Request> reqs) {
    for (auto& r : reqs) wait(r);
  }

  // -- collectives --
  virtual void barrier() = 0;
  virtual void bcast(mspan data, int root) = 0;
  /// Root gathers size-per-rank blocks in rank order.
  virtual void gather(cspan send_data, mspan recv_data, int root) = 0;
  virtual void allgather(cspan send_data, mspan recv_data) = 0;
  virtual double allreduce_sum(double value) = 0;
  virtual double allreduce_max(double value) = 0;
  /// Element-wise sum over all ranks, in place — one rendezvous for the
  /// whole vector. Every backend must hand BIT-IDENTICAL result vectors to
  /// every rank (a single accumulation broadcast to all, or a rank-ordered
  /// reduction — never an order-varying tree per rank), so collective
  /// guards above the ABI stay consistent across the world.
  virtual void allreduce_sum(std::span<double> values) = 0;

  /// Exchange `count` complex values with every rank: block d of
  /// `send_data` goes to rank d; block s of `recv_data` arrives from rank
  /// s. This is the single global transpose of the SOI algorithm.
  virtual void alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                        AlltoallAlgo algo = AlltoallAlgo::kPairwise) = 0;

  /// Variable-size all-to-all: counts/displacements per destination/source,
  /// in complex elements.
  virtual void alltoallv(cspan send_data,
                         std::span<const std::int64_t> send_counts,
                         std::span<const std::int64_t> send_displs,
                         mspan recv_data,
                         std::span<const std::int64_t> recv_counts,
                         std::span<const std::int64_t> recv_displs) = 0;

  // -- resilience & introspection --

  /// Install the world's resilience configuration (fault injector,
  /// deadlines, retry budget). First caller wins; later calls are no-ops,
  /// so every rank may call it with the same options. Worlds from
  /// run_world(n, opts, body) are pre-configured.
  virtual void configure_resilience(const NetOptions& opts) = 0;

  /// True when this world can experience or recover from faults: a fault
  /// injector is installed or a wait deadline is configured. World-global
  /// (every rank sees the same answer), so callers may condition
  /// collective call patterns on it.
  [[nodiscard]] virtual bool resilience_active() const = 0;

  /// Base deadline of one wait attempt in ms (0 = unbounded waits).
  [[nodiscard]] virtual double timeout_ms() const = 0;
  /// Bounded-wait retry budget (0 = recovery disabled).
  [[nodiscard]] virtual int max_retries() const = 0;
  /// Snapshot of the world-wide fault/recovery counters.
  [[nodiscard]] virtual FaultStats fault_stats() const = 0;

  /// Shared traffic recorder for the whole world (same object on all
  /// ranks; empty and inert on backends without caps().traffic_events).
  [[nodiscard]] virtual TrafficLog& traffic() = 0;

  /// Monotonic payload bytes THIS rank has sent (p2p and collectives;
  /// own-block copies inside collectives are not sends). Pipeline stages
  /// read the delta around a communication call to trace measured
  /// per-stage byte volumes.
  [[nodiscard]] virtual std::int64_t bytes_sent() const = 0;

  /// Human-readable warnings, one per NetOptions field this backend cannot
  /// honour (capability mismatches are reported, never silently ignored).
  /// Empty when every requested option is supported. The default derives
  /// the answer from caps() via unsupported_option_warnings().
  [[nodiscard]] virtual std::vector<std::string> unsupported_options(
      const NetOptions& opts) const;
};

/// Caps-driven capability check shared by every backend (and usable
/// statically, before a world exists, from the registry's caps table):
/// one warning string per NetOptions field `caps` cannot honour.
std::vector<std::string> unsupported_option_warnings(const TransportCaps& caps,
                                                     const NetOptions& opts);

}  // namespace soi::net
