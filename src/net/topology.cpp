#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "net/transport.hpp"

namespace soi::net {

namespace {

/// Divisor of n nearest to `target` (ties toward the larger divisor),
/// restricted to proper divisors when possible.
int nearest_divisor(int n, double target) {
  int best = 1;
  double best_d = std::abs(1.0 - target);
  for (int d = 2; d <= n; ++d) {
    if (n % d != 0) continue;
    if (d == n && best > 1) continue;  // prefer a proper divisor
    const double dist = std::abs(static_cast<double>(d) - target);
    if (dist < best_d || (dist == best_d && d > best)) {
      best = d;
      best_d = dist;
    }
  }
  return best;
}

}  // namespace

Topology Topology::flat(int ranks) {
  SOI_CHECK(ranks >= 1, "topology: ranks must be >= 1, got " << ranks);
  Topology t;
  t.kind_ = TopologyKind::kFlat;
  t.ranks_ = ranks;
  t.group_size_ = ranks;
  t.dims_ = {ranks, 1, 1};
  return t;
}

Topology Topology::two_level(int ranks, int group_size) {
  SOI_CHECK(ranks >= 1, "topology: ranks must be >= 1, got " << ranks);
  if (group_size == 0) {
    group_size = nearest_divisor(ranks, std::sqrt(static_cast<double>(ranks)));
  }
  SOI_CHECK(group_size >= 1 && ranks % group_size == 0,
            "two-level topology: group size " << group_size
                                              << " must divide ranks "
                                              << ranks);
  Topology t;
  t.kind_ = TopologyKind::kTwoLevel;
  t.ranks_ = ranks;
  t.group_size_ = group_size;
  t.dims_ = {ranks, 1, 1};
  return t;
}

Topology Topology::torus(int ranks, int k0, int k1, int k2) {
  SOI_CHECK(ranks >= 1, "topology: ranks must be >= 1, got " << ranks);
  if (k0 == 0 && k1 == 0 && k2 == 0) {
    // Near-cube factorization, k0 >= k1 >= k2.
    k2 = nearest_divisor(ranks, std::cbrt(static_cast<double>(ranks)));
    const int rem = ranks / k2;
    k1 = nearest_divisor(rem, std::sqrt(static_cast<double>(rem)));
    k0 = rem / k1;
    if (k1 < k2) std::swap(k1, k2);
    if (k0 < k1) std::swap(k0, k1);
  }
  SOI_CHECK(k0 >= 1 && k1 >= 1 && k2 >= 1 && k0 * k1 * k2 == ranks,
            "torus topology: dims " << k0 << "x" << k1 << "x" << k2
                                    << " do not factor ranks " << ranks);
  Topology t;
  t.kind_ = TopologyKind::kTorus;
  t.ranks_ = ranks;
  t.group_size_ = ranks;
  t.dims_ = {k0, k1, k2};
  for (int d = 0; d < 3; ++d) {
    if (t.dims_[static_cast<std::size_t>(d)] > 1) t.phase_dims_.push_back(d);
  }
  return t;
}

Topology Topology::parse(const std::string& text, int ranks) {
  if (text.empty() || text == "flat") return flat(ranks);
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);
  if (head == "two-level") {
    int g = 0;
    if (!arg.empty()) {
      try {
        g = std::stoi(arg);
      } catch (const std::exception&) {
        throw Error("topology: bad group size '" + arg + "' in '" + text +
                    "'");
      }
    }
    return two_level(ranks, g);
  }
  if (head == "torus") {
    int k[3] = {0, 0, 0};
    if (!arg.empty()) {
      std::istringstream in(arg);
      char x1 = 0, x2 = 0;
      if (!(in >> k[0] >> x1 >> k[1] >> x2 >> k[2]) || x1 != 'x' ||
          x2 != 'x' || !in.eof()) {
        throw Error("topology: bad torus dims '" + arg + "' in '" + text +
                    "' (want k0xk1xk2)");
      }
    }
    return torus(ranks, k[0], k[1], k[2]);
  }
  throw Error("topology: unknown spec '" + text +
              "' (want flat | two-level[:G] | torus[:k0xk1xk2])");
}

std::string Topology::str() const {
  switch (kind_) {
    case TopologyKind::kFlat:
      return "flat";
    case TopologyKind::kTwoLevel:
      return "two-level:" + std::to_string(group_size_);
    case TopologyKind::kTorus: {
      std::string s = "torus:";
      s += std::to_string(dims_[0]);
      s += 'x';
      s += std::to_string(dims_[1]);
      s += 'x';
      s += std::to_string(dims_[2]);
      return s;
    }
  }
  return "flat";
}

std::array<int, 3> Topology::coords(int rank) const {
  return {rank % dims_[0], (rank / dims_[0]) % dims_[1],
          rank / (dims_[0] * dims_[1])};
}

int Topology::rank_of(const std::array<int, 3>& c) const {
  return c[0] + dims_[0] * (c[1] + dims_[1] * c[2]);
}

int Topology::phases() const {
  switch (kind_) {
    case TopologyKind::kFlat:
      return 1;
    case TopologyKind::kTwoLevel:
      return 2;
    case TopologyKind::kTorus:
      return phase_dims_.empty() ? 1
                                 : static_cast<int>(phase_dims_.size());
  }
  return 1;
}

int Topology::route(int phase, int holder, int dst) const {
  switch (kind_) {
    case TopologyKind::kFlat:
      return dst;
    case TopologyKind::kTwoLevel:
      if (phase == 0) {
        return group_of(holder) * group_size_ + local_of(dst);
      }
      return dst;
    case TopologyKind::kTorus: {
      if (phase_dims_.empty()) return dst;
      const int d = phase_dims_[static_cast<std::size_t>(phase)];
      auto c = coords(holder);
      c[static_cast<std::size_t>(d)] =
          coords(dst)[static_cast<std::size_t>(d)];
      return rank_of(c);
    }
  }
  return dst;
}

StagedPlan build_staged_plan(const Topology& topo, int my_rank) {
  const int R = topo.ranks();
  SOI_CHECK(R >= 1 && my_rank >= 0 && my_rank < R,
            "staged plan: rank " << my_rank << " outside world of " << R);
  struct Block {
    int src;
    int dst;
  };
  // Simulate every rank's holdings so sender pack order and receiver slot
  // assignment agree globally. R is thread-count scale, so O(R^2) state
  // and O(phases * R^2) time are negligible next to one exchange.
  std::vector<std::vector<Block>> hold(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    hold[static_cast<std::size_t>(r)].reserve(static_cast<std::size_t>(R));
    for (int d = 0; d < R; ++d) {
      hold[static_cast<std::size_t>(r)].push_back({r, d});
    }
  }
  StagedPlan plan;
  plan.ranks = R;
  const int half = R / 2;
  for (int ph = 0; ph < topo.phases(); ++ph) {
    // out[r][k-1]: holdings slots rank r sends to peer (r+k) % R.
    std::vector<std::vector<std::vector<int>>> out(
        static_cast<std::size_t>(R),
        std::vector<std::vector<int>>(static_cast<std::size_t>(R - 1)));
    std::vector<std::vector<int>> kept(static_cast<std::size_t>(R));
    bool any = false;
    for (int r = 0; r < R; ++r) {
      const auto& h = hold[static_cast<std::size_t>(r)];
      for (int i = 0; i < static_cast<int>(h.size()); ++i) {
        const int t = topo.route(ph, r, h[static_cast<std::size_t>(i)].dst);
        if (t == r) {
          kept[static_cast<std::size_t>(r)].push_back(i);
        } else {
          const int k = (t - r + R) % R;
          out[static_cast<std::size_t>(r)][static_cast<std::size_t>(k - 1)]
              .push_back(i);
          any = true;
        }
      }
    }
    if (!any) continue;  // phase moves nothing anywhere: drop it
    // New holdings: kept blocks first (in prior order), then received
    // blocks peer by peer in the receiver's ring order, each message in
    // the sender's pack order.
    std::vector<std::vector<Block>> next(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      auto& nh = next[static_cast<std::size_t>(r)];
      nh.reserve(static_cast<std::size_t>(R));
      for (const int i : kept[static_cast<std::size_t>(r)]) {
        nh.push_back(hold[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(i)]);
      }
      for (int k = 1; k < R; ++k) {
        const int p = (r + k) % R;
        const int back = (r - p + R) % R;
        for (const int slot :
             out[static_cast<std::size_t>(p)]
                [static_cast<std::size_t>(back - 1)]) {
          nh.push_back(hold[static_cast<std::size_t>(p)]
                           [static_cast<std::size_t>(slot)]);
        }
      }
      SOI_CHECK(static_cast<int>(nh.size()) == R,
                "staged plan: rank " << r << " holds " << nh.size()
                                     << " blocks after phase " << ph
                                     << " (want " << R << ")");
    }
    // Traffic statistics over all ranks.
    for (int r = 0; r < R; ++r) {
      for (int k = 1; k < R; ++k) {
        const auto& blocks =
            out[static_cast<std::size_t>(r)][static_cast<std::size_t>(k - 1)];
        if (blocks.empty()) continue;
        const int peer = (r + k) % R;
        plan.total_messages += 1;
        plan.total_blocks_sent += static_cast<std::int64_t>(blocks.size());
        if ((r < half) != (peer < half)) {
          plan.bisection_blocks += static_cast<std::int64_t>(blocks.size());
        }
      }
    }
    // This rank's schedule for the phase.
    StagedPlan::Phase phase;
    int nsend = 0;
    for (int k = 1; k < R; ++k) {
      const int peer = (my_rank + k) % R;
      const auto& blocks = out[static_cast<std::size_t>(my_rank)]
                              [static_cast<std::size_t>(k - 1)];
      if (blocks.empty()) continue;
      phase.sends.push_back({peer, blocks});
      ++nsend;
    }
    int nrecv = 0;
    int slot = static_cast<int>(kept[static_cast<std::size_t>(my_rank)]
                                    .size());
    for (int k = 1; k < R; ++k) {
      const int p = (my_rank + k) % R;
      const int back = (my_rank - p + R) % R;
      const auto& blocks = out[static_cast<std::size_t>(p)]
                              [static_cast<std::size_t>(back - 1)];
      if (blocks.empty()) continue;
      phase.recvs.push_back({p, static_cast<int>(blocks.size()), slot});
      slot += static_cast<int>(blocks.size());
      ++nrecv;
    }
    const auto& mine = kept[static_cast<std::size_t>(my_rank)];
    for (int i = 0; i < static_cast<int>(mine.size()); ++i) {
      phase.keeps.push_back({mine[static_cast<std::size_t>(i)], i});
    }
    plan.max_peers = std::max({plan.max_peers, nsend, nrecv});
    plan.phases.push_back(std::move(phase));
    hold = std::move(next);
  }
  plan.final_src.resize(static_cast<std::size_t>(R));
  for (int i = 0; i < R; ++i) {
    const Block& b =
        hold[static_cast<std::size_t>(my_rank)][static_cast<std::size_t>(i)];
    SOI_CHECK(b.dst == my_rank, "staged plan: block ("
                                    << b.src << "->" << b.dst
                                    << ") stranded at rank " << my_rank);
    plan.final_src[static_cast<std::size_t>(i)] = b.src;
  }
  return plan;
}

std::int64_t flat_bisection_blocks(int ranks) {
  const std::int64_t lo = ranks / 2;
  const std::int64_t hi = ranks - lo;
  return 2 * lo * hi;
}

void staged_alltoall(Transport& comm, const StagedPlan& plan, const void* send,
                     void* recv, std::int64_t block_bytes, void* scratch,
                     int tag_base) {
  const int R = plan.ranks;
  SOI_CHECK(comm.size() == R, "staged_alltoall: plan built for "
                                  << R << " ranks, comm has " << comm.size());
  const auto bb = static_cast<std::size_t>(block_bytes);
  if (bb == 0) return;
  auto* base = static_cast<unsigned char*>(scratch);
  unsigned char* pack = base;
  unsigned char* ping = base + static_cast<std::size_t>(R) * bb;
  unsigned char* pong = base + 2 * static_cast<std::size_t>(R) * bb;
  const auto* prev = static_cast<const unsigned char*>(send);
  unsigned char* cur = ping;
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(plan.max_peers));
  for (std::size_t ph = 0; ph < plan.phases.size(); ++ph) {
    const auto& phase = plan.phases[ph];
    const int tag = tag_base + static_cast<int>(ph);
    reqs.clear();
    for (const auto& rv : phase.recvs) {
      reqs.push_back(comm.irecv_bytes(
          rv.peer, tag, cur + static_cast<std::size_t>(rv.first_slot) * bb,
          static_cast<std::size_t>(rv.nblocks) * bb));
    }
    std::size_t off = 0;
    for (const auto& sd : phase.sends) {
      unsigned char* msg = pack + off;
      for (const int slot : sd.gather) {
        std::memcpy(pack + off, prev + static_cast<std::size_t>(slot) * bb,
                    bb);
        off += bb;
      }
      // Sends are buffered: the request completes at post time and the
      // pack region is free for reuse immediately.
      comm.isend_bytes(sd.peer, tag, msg, sd.gather.size() * bb);
    }
    for (const auto& kp : phase.keeps) {
      std::memcpy(cur + static_cast<std::size_t>(kp.to) * bb,
                  prev + static_cast<std::size_t>(kp.from) * bb, bb);
    }
    comm.waitall(reqs);
    prev = cur;
    cur = (cur == ping) ? pong : ping;
  }
  auto* out = static_cast<unsigned char*>(recv);
  for (int s = 0; s < R; ++s) {
    std::memcpy(out + static_cast<std::size_t>(
                          plan.final_src[static_cast<std::size_t>(s)]) *
                          bb,
                prev + static_cast<std::size_t>(s) * bb, bb);
  }
}

}  // namespace soi::net
