#include "net/traffic.hpp"

namespace soi::net {

TrafficTotals summarize_events(const std::vector<CommEvent>& events) {
  TrafficTotals t;
  for (const auto& ev : events) {
    switch (ev.kind) {
      case CommEvent::Kind::kP2P:
        ++t.p2p_messages;
        t.p2p_bytes += ev.bytes;
        break;
      case CommEvent::Kind::kAlltoall:
        ++t.alltoall_calls;
        t.alltoall_bytes_per_rank += ev.bytes;
        break;
      default:
        ++t.collective_calls;
        break;
    }
  }
  return t;
}

void TrafficLog::record(const CommEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(ev);
}

void TrafficLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  marks_.clear();
}

std::vector<CommEvent> TrafficLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

TrafficTotals TrafficLog::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  TrafficTotals t;
  for (const auto& ev : events_) {
    switch (ev.kind) {
      case CommEvent::Kind::kP2P:
        ++t.p2p_messages;
        t.p2p_bytes += ev.bytes;
        break;
      case CommEvent::Kind::kAlltoall:
        ++t.alltoall_calls;
        t.alltoall_bytes_per_rank += ev.bytes;
        break;
      default:
        ++t.collective_calls;
        break;
    }
  }
  return t;
}

void TrafficLog::mark(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  marks_.emplace_back(events_.size(), label);
}

std::vector<std::pair<std::size_t, std::string>> TrafficLog::marks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return marks_;
}

}  // namespace soi::net
