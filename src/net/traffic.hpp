// Traffic recording: every SimMPI operation logs what a real fabric would
// have to move. The cost models turn this log into modeled cluster time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace soi::net {

/// One recorded communication event (already aggregated per collective:
/// a P-rank all-to-all is one event, not P^2).
struct CommEvent {
  enum class Kind : std::uint8_t {
    kP2P,        ///< one point-to-point message
    kAlltoall,   ///< full exchange; bytes = payload each rank sends in total
    kBarrier,
    kBcast,
    kAllgather,
    kAllreduce,
  };
  Kind kind = Kind::kP2P;
  int nodes = 0;            ///< participating ranks
  std::int64_t bytes = 0;   ///< per-rank outgoing payload bytes (kP2P: msg size)
  std::int64_t messages = 0;///< messages injected per rank
};

/// Aggregate counters (cheap to read at any time).
struct TrafficTotals {
  std::int64_t p2p_messages = 0;
  std::int64_t p2p_bytes = 0;
  std::int64_t alltoall_calls = 0;
  std::int64_t alltoall_bytes_per_rank = 0;  ///< summed over calls
  std::int64_t collective_calls = 0;
};

/// Aggregate a snapshot of events (as returned by run_ranks).
TrafficTotals summarize_events(const std::vector<CommEvent>& events);

/// Thread-safe event log shared by all ranks of a world.
class TrafficLog {
 public:
  void record(const CommEvent& ev);
  void clear();

  /// Snapshot of the event list.
  [[nodiscard]] std::vector<CommEvent> events() const;

  /// Aggregate totals.
  [[nodiscard]] TrafficTotals totals() const;

  /// Marks a named phase boundary; phases() lets benches attribute events
  /// (e.g. "halo" vs "global transpose").
  void mark(const std::string& label);
  [[nodiscard]] std::vector<std::pair<std::size_t, std::string>> marks() const;

 private:
  mutable std::mutex mu_;
  std::vector<CommEvent> events_;
  std::vector<std::pair<std::size_t, std::string>> marks_;
};

}  // namespace soi::net
