#ifdef SOI_WITH_MPI

#include "net/mpi_transport.hpp"

#include <mpi.h>

#include <iostream>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "net/registry.hpp"

namespace soi::net {

namespace {

constexpr TransportCaps kMpiCaps{
    /*name=*/"mpi",
    /*max_coll_channels=*/kMaxChannels,
    /*alltoall_algo_choice=*/false,
    /*checksums=*/false,
    /*fault_injection=*/false,
    /*latency_emulation=*/false,
    /*traffic_events=*/false,
    /*threaded_world=*/false,
    /*cross_process=*/true,
};

/// A real MPI_Request behind the ABI's type-erased handle.
class MpiRequest final : public RequestState {
 public:
  explicit MpiRequest(MPI_Request req) : req_(req) {}
  ~MpiRequest() override {
    if (!done_ && req_ != MPI_REQUEST_NULL) {
      MPI_Cancel(&req_);
      MPI_Request_free(&req_);
    }
  }
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] int source() const override { return src_matched_; }

 private:
  friend class MpiComm;
  MPI_Request req_;
  bool done_ = false;
  int src_matched_ = -1;
};

class MpiComm final : public Transport {
 public:
  explicit MpiComm(MPI_Comm comm) : comm_(comm) {
    MPI_Comm_rank(comm_, &rank_);
    MPI_Comm_size(comm_, &size_);
    // One duplicated communicator per collective channel: the ABI's
    // "same program order per channel" contract becomes plain MPI
    // nonblocking-collective ordering on that comm.
    for (int c = 0; c < kMaxChannels; ++c) {
      MPI_Comm_dup(comm_, &chan_[c]);
    }
  }
  ~MpiComm() override {
    for (int c = 0; c < kMaxChannels; ++c) MPI_Comm_free(&chan_[c]);
  }

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }
  [[nodiscard]] const TransportCaps& caps() const override { return kMpiCaps; }

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override {
    bytes_sent_ += static_cast<std::int64_t>(bytes);
    MPI_Send(data, static_cast<int>(bytes), MPI_BYTE, dst, tag, comm_);
  }

  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override {
    MPI_Recv(data, static_cast<int>(bytes), MPI_BYTE,
             src == kAnySource ? MPI_ANY_SOURCE : src, tag, comm_,
             MPI_STATUS_IGNORE);
  }

  void sendrecv(int dst, cspan send_data, int src, mspan recv_data,
                int tag) override {
    bytes_sent_ += static_cast<std::int64_t>(send_data.size_bytes());
    MPI_Sendrecv(send_data.data(), static_cast<int>(send_data.size_bytes()),
                 MPI_BYTE, dst, tag, recv_data.data(),
                 static_cast<int>(recv_data.size_bytes()), MPI_BYTE, src, tag,
                 comm_, MPI_STATUS_IGNORE);
  }

  bool try_recv(int src, int tag, mspan data) override {
    int flag = 0;
    MPI_Status st;
    MPI_Iprobe(src == kAnySource ? MPI_ANY_SOURCE : src, tag, comm_, &flag,
               &st);
    if (flag == 0) return false;
    MPI_Recv(data.data(), static_cast<int>(data.size_bytes()), MPI_BYTE,
             st.MPI_SOURCE, tag, comm_, MPI_STATUS_IGNORE);
    return true;
  }

  Request isend(int dst, int tag, cspan data) override {
    return isend_bytes(dst, tag, data.data(), data.size_bytes());
  }

  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override {
    bytes_sent_ += static_cast<std::int64_t>(bytes);
    MPI_Request r;
    MPI_Isend(data, static_cast<int>(bytes), MPI_BYTE, dst, tag, comm_, &r);
    return Request(std::make_unique<MpiRequest>(r));
  }

  Request irecv(int src, int tag, mspan data) override {
    return irecv_bytes(src, tag, data.data(), data.size_bytes());
  }

  Request irecv_bytes(int src, int tag, void* data,
                      std::size_t bytes) override {
    MPI_Request r;
    MPI_Irecv(data, static_cast<int>(bytes), MPI_BYTE,
              src == kAnySource ? MPI_ANY_SOURCE : src, tag, comm_, &r);
    return Request(std::make_unique<MpiRequest>(r));
  }

  Request ialltoall(cspan send_data, mspan recv_data, std::int64_t count,
                    AlltoallAlgo algo, int channel) override {
    (void)algo;
    SOI_CHECK(channel >= 0 && channel < kMaxChannels,
              "ialltoall: channel " << channel << " out of range");
    MPI_Request r;
    MPI_Ialltoall(send_data.data(), static_cast<int>(count),
                  MPI_C_DOUBLE_COMPLEX, recv_data.data(),
                  static_cast<int>(count), MPI_C_DOUBLE_COMPLEX,
                  chan_[channel], &r);
    return Request(std::make_unique<MpiRequest>(r));
  }

  Request ialltoallv(cspan send_data,
                     std::span<const std::int64_t> send_counts,
                     std::span<const std::int64_t> send_displs, mspan recv_data,
                     std::span<const std::int64_t> recv_counts,
                     std::span<const std::int64_t> recv_displs,
                     int channel) override {
    SOI_CHECK(channel >= 0 && channel < kMaxChannels,
              "ialltoallv: channel " << channel << " out of range");
    // MPI takes int arrays; the ABI carries int64 — narrow with a copy.
    std::vector<int> sc(send_counts.begin(), send_counts.end());
    std::vector<int> sd(send_displs.begin(), send_displs.end());
    std::vector<int> rc(recv_counts.begin(), recv_counts.end());
    std::vector<int> rd(recv_displs.begin(), recv_displs.end());
    MPI_Request r;
    MPI_Ialltoallv(send_data.data(), sc.data(), sd.data(),
                   MPI_C_DOUBLE_COMPLEX, recv_data.data(), rc.data(),
                   rd.data(), MPI_C_DOUBLE_COMPLEX, chan_[channel], &r);
    return Request(std::make_unique<MpiRequest>(r));
  }

  bool test(Request& req) override {
    auto* st = static_cast<MpiRequest*>(req.state());
    if (st == nullptr || st->done_) return true;
    int flag = 0;
    MPI_Status status;
    MPI_Test(&st->req_, &flag, &status);
    if (flag != 0) {
      st->done_ = true;
      st->src_matched_ = status.MPI_SOURCE;
    }
    return flag != 0;
  }

  void wait(Request& req) override {
    auto* st = static_cast<MpiRequest*>(req.state());
    if (st == nullptr || st->done_) return;
    MPI_Status status;
    MPI_Wait(&st->req_, &status);
    st->done_ = true;
    st->src_matched_ = status.MPI_SOURCE;
  }

  bool wait_for(Request& req, double timeout_ms) override {
    // MPI has no native deadline wait; poll MPI_Test until the deadline.
    if (timeout_ms <= 0) {
      wait(req);
      return true;
    }
    const double t0 = MPI_Wtime();
    while (!test(req)) {
      if ((MPI_Wtime() - t0) * 1e3 >= timeout_ms) return test(req);
    }
    return true;
  }

  void barrier() override { MPI_Barrier(comm_); }

  void bcast(mspan data, int root) override {
    MPI_Bcast(data.data(), static_cast<int>(data.size()),
              MPI_C_DOUBLE_COMPLEX, root, comm_);
  }

  void gather(cspan send_data, mspan recv_data, int root) override {
    MPI_Gather(send_data.data(), static_cast<int>(send_data.size()),
               MPI_C_DOUBLE_COMPLEX, recv_data.data(),
               static_cast<int>(send_data.size()), MPI_C_DOUBLE_COMPLEX, root,
               comm_);
  }

  void allgather(cspan send_data, mspan recv_data) override {
    MPI_Allgather(send_data.data(), static_cast<int>(send_data.size()),
                  MPI_C_DOUBLE_COMPLEX, recv_data.data(),
                  static_cast<int>(send_data.size()), MPI_C_DOUBLE_COMPLEX,
                  comm_);
  }

  double allreduce_sum(double value) override {
    double out = 0;
    MPI_Allreduce(&value, &out, 1, MPI_DOUBLE, MPI_SUM, comm_);
    return out;
  }

  double allreduce_max(double value) override {
    double out = 0;
    MPI_Allreduce(&value, &out, 1, MPI_DOUBLE, MPI_MAX, comm_);
    return out;
  }

  void allreduce_sum(std::span<double> values) override {
    MPI_Allreduce(MPI_IN_PLACE, values.data(), static_cast<int>(values.size()),
                  MPI_DOUBLE, MPI_SUM, comm_);
  }

  void alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                AlltoallAlgo algo) override {
    (void)algo;
    MPI_Alltoall(send_data.data(), static_cast<int>(count),
                 MPI_C_DOUBLE_COMPLEX, recv_data.data(),
                 static_cast<int>(count), MPI_C_DOUBLE_COMPLEX, comm_);
  }

  void alltoallv(cspan send_data, std::span<const std::int64_t> send_counts,
                 std::span<const std::int64_t> send_displs, mspan recv_data,
                 std::span<const std::int64_t> recv_counts,
                 std::span<const std::int64_t> recv_displs) override {
    std::vector<int> sc(send_counts.begin(), send_counts.end());
    std::vector<int> sd(send_displs.begin(), send_displs.end());
    std::vector<int> rc(recv_counts.begin(), recv_counts.end());
    std::vector<int> rd(recv_displs.begin(), recv_displs.end());
    MPI_Alltoallv(send_data.data(), sc.data(), sd.data(), MPI_C_DOUBLE_COMPLEX,
                  recv_data.data(), rc.data(), rd.data(), MPI_C_DOUBLE_COMPLEX,
                  comm_);
  }

  void configure_resilience(const NetOptions& opts) override {
    if (!configured_) {
      configured_ = true;
      timeout_ms_ = opts.timeout_ms;
      max_retries_ = opts.max_retries;
      for (const auto& w : unsupported_options(opts)) {
        if (rank_ == 0) std::cerr << "soifft: warning: " << w << "\n";
      }
    }
  }

  [[nodiscard]] bool resilience_active() const override {
    return timeout_ms_ > 0;
  }
  [[nodiscard]] double timeout_ms() const override { return timeout_ms_; }
  [[nodiscard]] int max_retries() const override { return max_retries_; }
  [[nodiscard]] FaultStats fault_stats() const override { return {}; }
  [[nodiscard]] TrafficLog& traffic() override { return traffic_; }
  [[nodiscard]] std::int64_t bytes_sent() const override {
    return bytes_sent_;
  }

 private:
  MPI_Comm comm_;
  MPI_Comm chan_[kMaxChannels];
  int rank_ = 0;
  int size_ = 0;
  bool configured_ = false;
  double timeout_ms_ = 0;
  int max_retries_ = 8;
  std::int64_t bytes_sent_ = 0;
  TrafficLog traffic_;  ///< inert
};

}  // namespace

std::vector<CommEvent> run_mpi_world(
    int nranks, const NetOptions& opts,
    const std::function<void(Transport&)>& body) {
  int initialized = 0;
  MPI_Initialized(&initialized);
  if (initialized == 0) {
    MPI_Init(nullptr, nullptr);
  }
  int world_size = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &world_size);
  if (world_size != nranks) {
    std::ostringstream os;
    os << "run_mpi_world: requested " << nranks
       << " ranks but this mpirun world has " << world_size
       << " — launch with `mpirun -n " << nranks << "`";
    throw InvalidArgumentError(os.str());
  }
  MpiComm comm(MPI_COMM_WORLD);
  comm.configure_resilience(opts);
  body(comm);
  comm.barrier();
  return {};
}

void register_mpi_transport() {
  TransportRegistry::instance().register_backend(
      "mpi", TransportBackend{kMpiCaps, run_mpi_world});
}

}  // namespace soi::net

#endif  // SOI_WITH_MPI
