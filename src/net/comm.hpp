// SimMPI: an MPI-like message-passing layer whose ranks are threads inside
// one process. This is the build's substitute for MPI on a real cluster
// (none is available here): the data movement, matching semantics and
// collective algorithms are executed for real, while communication *time*
// on cluster fabrics is produced by the cost models in costmodel.hpp.
//
// Supported surface (mirrors the MPI subset the paper's implementation
// needs, Fig. 2/3): blocking tagged send/recv, sendrecv, barrier, bcast,
// gather/allgather, allreduce, alltoall and alltoallv, plus a nonblocking
// layer (isend/irecv/ialltoall/ialltoallv with test/wait/waitall).
//
// Nonblocking model: Request handles are fully PASSIVE. Nothing runs in the
// background — sends complete at post time (buffered), and all receive-side
// progress happens on the waiting thread inside test()/wait(), which drain
// the caller's own mailbox. A Request that is dropped without being waited
// on has no lingering side effects beyond its already-posted sends.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "net/traffic.hpp"

namespace soi::net {

/// Wildcard source for recv_any-style matching.
inline constexpr int kAnySource = -1;

/// All-to-all algorithm selection (both give identical results; tests
/// assert so — the choice models different message schedules).
enum class AlltoallAlgo {
  kPairwise,  ///< P-1 rounds of sendrecv with partner (rank + step) mod P
  kDirect,    ///< post all sends, then drain all receives
};

namespace detail {
struct World;
}

/// Handle for an in-flight nonblocking operation. Value-semantic and
/// passive: no registry, no background progress. Completion is driven by
/// the owning rank's thread through Comm::test/wait/waitall. Constructed
/// inactive (done); obtain live ones from isend/irecv/ialltoall(v).
class Request {
 public:
  Request() = default;

  /// True once the operation has completed (always true for inactive and
  /// send requests — sends are buffered and finish at post time).
  [[nodiscard]] bool done() const { return done_; }

  /// True if this handle refers to a posted operation (even a finished one).
  [[nodiscard]] bool active() const { return kind_ != Kind::kNone; }

  /// For completed receives: the matched source rank (useful with
  /// kAnySource). -1 until completion.
  [[nodiscard]] int source() const { return src_matched_; }

 private:
  friend class Comm;
  enum class Kind : std::uint8_t {
    kNone,  ///< default-constructed, nothing to do
    kSend,  ///< completed at post time
    kRecv,  ///< completes when a matching message is drained
    kColl,  ///< alltoall(v): completes when all P-1 blocks have landed
  };

  Kind kind_ = Kind::kNone;
  bool done_ = true;
  int peer_ = kAnySource;  ///< recv: source filter (or kAnySource)
  int tag_ = 0;
  int src_matched_ = -1;
  void* data_ = nullptr;  ///< recv payload destination
  std::size_t bytes_ = 0;

  // Collective state: remaining receives drain in ring order (step k reads
  // from (rank - k) mod P) during test/wait. count_ >= 0 selects the
  // uniform-block layout; otherwise the v-variant views apply. The
  // counts/displs spans are caller-owned and must outlive the request.
  int next_step_ = 1;
  cplx* recv_base_ = nullptr;
  std::int64_t count_ = -1;
  const std::int64_t* recv_counts_ = nullptr;
  const std::int64_t* recv_displs_ = nullptr;
};

/// Per-rank communicator handle. Obtained from run_ranks(); value-semantic
/// view onto the shared world. All operations are blocking.
class Comm {
 public:
  Comm(std::shared_ptr<detail::World> world, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // -- point to point (byte payloads) --
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes);
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);

  // -- typed convenience (complex doubles, the library's working type) --
  void send(int dst, int tag, cspan data);
  void recv(int src, int tag, mspan data);

  /// Simultaneous exchange (deadlock-free even for self/neighbour cycles).
  void sendrecv(int dst, cspan send_data, int src, mspan recv_data, int tag);

  /// Non-blocking receive attempt: if a matching message is already
  /// queued, consume it into `data` and return true; otherwise return
  /// false immediately. Implemented as irecv + a single test; the
  /// incomplete request is simply dropped (requests are passive).
  bool try_recv(int src, int tag, mspan data);

  // -- nonblocking point to point --

  /// Post a buffered send. Completes immediately (the returned request is
  /// already done); it exists so send/recv pairs read symmetrically and so
  /// waitall can cover both directions.
  Request isend(int dst, int tag, cspan data);
  Request isend_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Post a receive. No data moves until test()/wait() matches a message;
  /// `data` must stay valid until then.
  Request irecv(int src, int tag, mspan data);
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes);

  // -- nonblocking collectives --

  /// Nonblocking alltoall: the own-block copy and every send happen at
  /// post time; the P-1 receive blocks land during test()/wait(). All
  /// ranks must post their nonblocking collectives in the same program
  /// order (an internal per-rank sequence number disambiguates concurrent
  /// in-flight collectives).
  Request ialltoall(cspan send_data, mspan recv_data, std::int64_t count,
                    AlltoallAlgo algo = AlltoallAlgo::kPairwise);

  /// Nonblocking alltoallv. `recv_counts`/`recv_displs` are captured by
  /// pointer and must outlive the request.
  Request ialltoallv(cspan send_data,
                     std::span<const std::int64_t> send_counts,
                     std::span<const std::int64_t> send_displs,
                     mspan recv_data,
                     std::span<const std::int64_t> recv_counts,
                     std::span<const std::int64_t> recv_displs);

  /// One progress attempt on the calling rank's mailbox; true when the
  /// request has completed. Never blocks.
  bool test(Request& req);

  /// Block until the request completes, sleeping on the mailbox condition
  /// variable between progress attempts.
  void wait(Request& req);

  /// wait() over a span, in order.
  void waitall(std::span<Request> reqs);

  // -- collectives --
  void barrier();
  void bcast(mspan data, int root);
  /// Root gathers size-per-rank blocks in rank order.
  void gather(cspan send_data, mspan recv_data, int root);
  void allgather(cspan send_data, mspan recv_data);
  double allreduce_sum(double value);
  double allreduce_max(double value);

  /// Exchange `count` complex values with every rank: block d of `send_data`
  /// goes to rank d; block s of `recv_data` arrives from rank s.
  /// This is the single global transpose of the SOI algorithm (and each of
  /// the three in the baseline).
  void alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                AlltoallAlgo algo = AlltoallAlgo::kPairwise);

  /// Variable-size all-to-all: counts/displacements per destination/source,
  /// in complex elements.
  void alltoallv(cspan send_data, std::span<const std::int64_t> send_counts,
                 std::span<const std::int64_t> send_displs, mspan recv_data,
                 std::span<const std::int64_t> recv_counts,
                 std::span<const std::int64_t> recv_displs);

  /// Shared traffic recorder for the whole world (same object on all ranks).
  [[nodiscard]] TrafficLog& traffic();

  /// Monotonic payload bytes THIS rank has sent (p2p and collectives; own-
  /// block copies inside collectives are not sends). Pipeline stages read
  /// the delta around a communication call to trace measured, per-stage
  /// byte volumes instead of estimates.
  [[nodiscard]] std::int64_t bytes_sent() const;

 private:
  /// One completion attempt for `req`. Caller holds this rank's mailbox
  /// mutex; all receive-side data movement happens here, on the waiter's
  /// thread.
  bool progress_locked(Request& req);

  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Launch `nranks` rank bodies on dedicated threads and wait for all to
/// finish. Exceptions thrown by rank bodies are captured; the first one (by
/// rank order) is rethrown here after every thread has joined.
/// Returns a snapshot of the world's traffic events (cost-model input).
std::vector<CommEvent> run_ranks(int nranks,
                                 const std::function<void(Comm&)>& body);

}  // namespace soi::net
