// SimMPI: an MPI-like message-passing layer whose ranks are threads inside
// one process. This is the build's substitute for MPI on a real cluster
// (none is available here): the data movement, matching semantics and
// collective algorithms are executed for real, while communication *time*
// on cluster fabrics is produced by the cost models in costmodel.hpp.
//
// Supported surface (mirrors the MPI subset the paper's implementation
// needs, Fig. 2/3): blocking tagged send/recv, sendrecv, barrier, bcast,
// gather/allgather, allreduce, alltoall and alltoallv.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "net/traffic.hpp"

namespace soi::net {

/// Wildcard source for recv_any-style matching.
inline constexpr int kAnySource = -1;

/// All-to-all algorithm selection (both give identical results; tests
/// assert so — the choice models different message schedules).
enum class AlltoallAlgo {
  kPairwise,  ///< P-1 rounds of sendrecv with partner (rank + step) mod P
  kDirect,    ///< post all sends, then drain all receives
};

namespace detail {
struct World;
}

/// Per-rank communicator handle. Obtained from run_ranks(); value-semantic
/// view onto the shared world. All operations are blocking.
class Comm {
 public:
  Comm(std::shared_ptr<detail::World> world, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // -- point to point (byte payloads) --
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes);
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);

  // -- typed convenience (complex doubles, the library's working type) --
  void send(int dst, int tag, cspan data);
  void recv(int src, int tag, mspan data);

  /// Simultaneous exchange (deadlock-free even for self/neighbour cycles).
  void sendrecv(int dst, cspan send_data, int src, mspan recv_data, int tag);

  /// Non-blocking receive attempt: if a matching message is already
  /// queued, consume it into `data` and return true; otherwise return
  /// false immediately. Enables communication/computation overlap
  /// (the optimisation of the paper's reference [11]).
  bool try_recv(int src, int tag, mspan data);

  // -- collectives --
  void barrier();
  void bcast(mspan data, int root);
  /// Root gathers size-per-rank blocks in rank order.
  void gather(cspan send_data, mspan recv_data, int root);
  void allgather(cspan send_data, mspan recv_data);
  double allreduce_sum(double value);
  double allreduce_max(double value);

  /// Exchange `count` complex values with every rank: block d of `send_data`
  /// goes to rank d; block s of `recv_data` arrives from rank s.
  /// This is the single global transpose of the SOI algorithm (and each of
  /// the three in the baseline).
  void alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                AlltoallAlgo algo = AlltoallAlgo::kPairwise);

  /// Variable-size all-to-all: counts/displacements per destination/source,
  /// in complex elements.
  void alltoallv(cspan send_data, std::span<const std::int64_t> send_counts,
                 std::span<const std::int64_t> send_displs, mspan recv_data,
                 std::span<const std::int64_t> recv_counts,
                 std::span<const std::int64_t> recv_displs);

  /// Shared traffic recorder for the whole world (same object on all ranks).
  [[nodiscard]] TrafficLog& traffic();

  /// Monotonic payload bytes THIS rank has sent (p2p and collectives; own-
  /// block copies inside collectives are not sends). Pipeline stages read
  /// the delta around a communication call to trace measured, per-stage
  /// byte volumes instead of estimates.
  [[nodiscard]] std::int64_t bytes_sent() const;

 private:
  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Launch `nranks` rank bodies on dedicated threads and wait for all to
/// finish. Exceptions thrown by rank bodies are captured; the first one (by
/// rank order) is rethrown here after every thread has joined.
/// Returns a snapshot of the world's traffic events (cost-model input).
std::vector<CommEvent> run_ranks(int nranks,
                                 const std::function<void(Comm&)>& body);

}  // namespace soi::net
