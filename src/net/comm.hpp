// SimMPI: an MPI-like message-passing layer whose ranks are threads inside
// one process. This is the build's substitute for MPI on a real cluster
// (none is available here): the data movement, matching semantics and
// collective algorithms are executed for real, while communication *time*
// on cluster fabrics is produced by the cost models in costmodel.hpp.
//
// Supported surface (mirrors the MPI subset the paper's implementation
// needs, Fig. 2/3): blocking tagged send/recv, sendrecv, barrier, bcast,
// gather/allgather, allreduce, alltoall and alltoallv, plus a nonblocking
// layer (isend/irecv/ialltoall/ialltoallv with test/wait/waitall).
//
// Nonblocking model: Request handles are fully PASSIVE. Nothing runs in the
// background — sends complete at post time (buffered), and all receive-side
// progress happens on the waiting thread inside test()/wait(), which drain
// the caller's own mailbox. Requests are move-only; a Request dropped
// without being waited on has well-defined semantics: an unfinished
// collective is CANCELLED on destruction (its in-flight blocks are purged
// and future arrivals for its tag discarded), a pending receive simply
// forgets its posting (the message stays in the mailbox for a later
// blocking recv), and completed/send requests have nothing left to do.
//
// Resilience layer (NetOptions): every payload is CRC32-checksummed at
// send and verified at match, so corruption and truncation are DETECTED.
// With a FaultSpec installed (env SOI_FAULTS, run_ranks options, or
// DistOptions::faults) messages additionally carry per-channel sequence
// numbers and a clean retained copy: verification failures and
// deadline-expired waits re-queue the retained copy (an idempotent,
// receiver-driven retransmit), duplicates are absorbed by sequence-number
// dedup, and waits become deadline-bounded with exponential backoff,
// surfacing soi::CommTimeoutError / soi::PayloadCorruptionError after
// max_retries.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/traffic.hpp"

namespace soi::net {

/// Wildcard source for recv_any-style matching.
inline constexpr int kAnySource = -1;

/// Number of independent collective channels (ialltoall/ialltoallv's
/// `channel` parameter). Channels exist for multi-tenant co-scheduling:
/// all ranks must post the collectives of ONE channel in the same program
/// order, but the relative order of postings on DIFFERENT channels is free
/// to differ per rank — each channel keeps its own per-rank sequence
/// numbers, so concurrent tenants' pieces can never cross-match.
inline constexpr int kMaxCollChannels = 16;

/// Secondary error delivered to ranks blocked on communication when a peer
/// rank's body already failed: the world is marked aborted and every
/// sleeping wait unwinds with this instead of deadlocking on a message or
/// rendezvous that can never arrive. run_ranks() resurfaces the peer's
/// primary error; this one is only rethrown when no primary exists.
class WorldAbortedError : public CommTimeoutError {
 public:
  using CommTimeoutError::CommTimeoutError;
};

/// All-to-all algorithm selection (both give identical results; tests
/// assert so — the choice models different message schedules).
enum class AlltoallAlgo {
  kPairwise,  ///< P-1 rounds of sendrecv with partner (rank + step) mod P
  kDirect,    ///< post all sends, then drain all receives
};

/// Per-world resilience configuration. Defaults are the legacy semantics:
/// no injected faults, unbounded waits, checksums stamped and verified.
struct NetOptions {
  /// Chaos scenario (empty = none). When set and timeout_ms == 0, a
  /// default deadline is applied so injected drops/delays cannot hang.
  FaultSpec faults;
  /// Base deadline of one wait attempt in ms; 0 = wait forever.
  double timeout_ms = 0.0;
  /// Bounded-wait attempts (with doubling backoff) before a wait throws
  /// soi::CommTimeoutError; 0 disables recovery entirely (corruption and
  /// timeouts surface as typed errors on first detection).
  int max_retries = 8;
  /// Stamp CRC32C payload checksums on every send. Deliveries that
  /// crossed the fault injector's simulated wire are always verified
  /// against the stamp; plain in-process queue moves cannot corrupt, so
  /// their stamp is carried but not re-hashed. Off only to measure the
  /// stamping cost.
  bool checksums = true;
  /// Emulated per-message wire latency in microseconds (0 = off). A sent
  /// message only becomes matchable this long after the send posts; the
  /// sender never blocks (buffered), and a receiver that reaches the wait
  /// early sleeps out the residual flight time. Models the expensive
  /// interconnect the SOI decomposition targets, so communication/compute
  /// overlap strategies are measurable on the in-process transport.
  /// Applies to point-to-point and alltoall traffic; barrier/allreduce
  /// rendezvous are not delayed.
  double wire_latency_us = 0.0;
  /// Second, cheaper latency tier for hierarchical fabrics: messages
  /// between ranks of the same node group (rank / topo_group_size) take
  /// this latency instead of wire_latency_us. Only meaningful with
  /// topo_group_size > 0; models the intra-node links a two-level
  /// topology schedule stages its traffic through.
  double intra_latency_us = 0.0;
  /// Ranks per node group for the intra/inter latency split (0 = no
  /// grouping, every message pays wire_latency_us).
  int topo_group_size = 0;
};

namespace detail {
struct World;
}

/// Handle for an in-flight nonblocking operation. Move-only and passive:
/// no registry, no background progress. Completion is driven by the owning
/// rank's thread through Comm::test/wait/waitall. Constructed inactive
/// (done); obtain live ones from isend/irecv/ialltoall(v). Destroying (or
/// overwriting) a live collective request cancels it — see the header
/// comment for the exact drop semantics per kind.
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { steal(other); }
  Request& operator=(Request&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request() { release(); }

  /// True once the operation has completed (always true for inactive and
  /// send requests — sends are buffered and finish at post time).
  [[nodiscard]] bool done() const { return done_; }

  /// True if this handle refers to a posted operation (even a finished one).
  [[nodiscard]] bool active() const { return kind_ != Kind::kNone; }

  /// For completed receives: the matched source rank (useful with
  /// kAnySource). -1 until completion.
  [[nodiscard]] int source() const { return src_matched_; }

 private:
  friend class Comm;
  enum class Kind : std::uint8_t {
    kNone,  ///< default-constructed, nothing to do
    kSend,  ///< completed at post time
    kRecv,  ///< completes when a matching message is drained
    kColl,  ///< alltoall(v): completes when all P-1 blocks have landed
  };

  void steal(Request& other) noexcept;
  /// Cancel a live collective (purge its blocks, discard future arrivals);
  /// no-op for every other state. Defined out of line (needs World).
  void release() noexcept;

  Kind kind_ = Kind::kNone;
  bool done_ = true;
  int peer_ = kAnySource;  ///< recv: source filter (or kAnySource)
  int tag_ = 0;
  int src_matched_ = -1;
  void* data_ = nullptr;  ///< recv payload destination
  std::size_t bytes_ = 0;

  // Collective state: remaining receives drain in ring order (step k reads
  // from (rank - k) mod P) during test/wait. count_ >= 0 selects the
  // uniform-block layout; otherwise the v-variant views apply. The
  // counts/displs spans are caller-owned and must outlive the request.
  int next_step_ = 1;
  cplx* recv_base_ = nullptr;
  std::int64_t count_ = -1;
  const std::int64_t* recv_counts_ = nullptr;
  const std::int64_t* recv_displs_ = nullptr;

  // Cancellation route for live collectives dropped without a wait.
  detail::World* world_ = nullptr;
  int owner_ = -1;
};

/// Per-rank communicator handle. Obtained from run_ranks(); value-semantic
/// view onto the shared world. All operations are blocking.
class Comm {
 public:
  Comm(std::shared_ptr<detail::World> world, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // -- point to point (byte payloads) --
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes);
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);

  // -- typed convenience (complex doubles, the library's working type) --
  void send(int dst, int tag, cspan data);
  void recv(int src, int tag, mspan data);

  /// Simultaneous exchange (deadlock-free even for self/neighbour cycles).
  void sendrecv(int dst, cspan send_data, int src, mspan recv_data, int tag);

  /// Non-blocking receive attempt: if a matching message is already
  /// queued, consume it into `data` and return true; otherwise return
  /// false immediately. Implemented as irecv + a single test; the
  /// incomplete request is simply dropped (requests are passive).
  bool try_recv(int src, int tag, mspan data);

  // -- nonblocking point to point --

  /// Post a buffered send. Completes immediately (the returned request is
  /// already done); it exists so send/recv pairs read symmetrically and so
  /// waitall can cover both directions.
  Request isend(int dst, int tag, cspan data);
  Request isend_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Post a receive. No data moves until test()/wait() matches a message;
  /// `data` must stay valid until then.
  Request irecv(int src, int tag, mspan data);
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes);

  // -- nonblocking collectives --

  /// Nonblocking alltoall: the own-block copy and every send happen at
  /// post time; the P-1 receive blocks land during test()/wait(). All
  /// ranks must post the nonblocking collectives of one `channel` in the
  /// same program order (a per-rank, per-channel sequence number
  /// disambiguates concurrent in-flight collectives); postings on
  /// different channels may interleave differently per rank — that is
  /// what channels are for (one per co-scheduled tenant).
  Request ialltoall(cspan send_data, mspan recv_data, std::int64_t count,
                    AlltoallAlgo algo = AlltoallAlgo::kPairwise,
                    int channel = 0);

  /// Nonblocking alltoallv. `recv_counts`/`recv_displs` are captured by
  /// pointer and must outlive the request. Same per-channel ordering
  /// contract as ialltoall.
  Request ialltoallv(cspan send_data,
                     std::span<const std::int64_t> send_counts,
                     std::span<const std::int64_t> send_displs,
                     mspan recv_data,
                     std::span<const std::int64_t> recv_counts,
                     std::span<const std::int64_t> recv_displs,
                     int channel = 0);

  /// One progress attempt on the calling rank's mailbox; true when the
  /// request has completed. Never blocks.
  bool test(Request& req);

  /// Block until the request completes. Under the world's resilience
  /// configuration (timeout_ms() > 0) this is a bounded wait: each expired
  /// deadline promotes injector-delayed messages, re-queues retained clean
  /// copies of the request's pending pieces, doubles the deadline, and
  /// after max_retries() attempts throws soi::CommTimeoutError.
  void wait(Request& req);

  /// One deadline-bounded completion attempt: progress, sleep until the
  /// deadline, recover (promote delayed + re-queue retained) at expiry,
  /// and report whether the request finished. timeout_ms <= 0 blocks
  /// until completion. Throws soi::PayloadCorruptionError when a payload
  /// fails verification and recovery is disabled or impossible; never
  /// throws on timeout (callers own the retry policy).
  bool wait_for(Request& req, double timeout_ms);

  /// wait() over a span, in order.
  void waitall(std::span<Request> reqs);

  // -- collectives --
  void barrier();
  void bcast(mspan data, int root);
  /// Root gathers size-per-rank blocks in rank order.
  void gather(cspan send_data, mspan recv_data, int root);
  void allgather(cspan send_data, mspan recv_data);
  double allreduce_sum(double value);
  double allreduce_max(double value);
  /// Element-wise sum over all ranks, in place — one rendezvous for the
  /// whole vector (callers with several scalars to reduce should batch
  /// them here rather than pay one synchronization each).
  void allreduce_sum(std::span<double> values);

  /// True when this world can experience or recover from faults: a fault
  /// injector is installed or a wait deadline is configured. World-global
  /// (every rank sees the same answer), so callers may condition
  /// collective call patterns on it.
  [[nodiscard]] bool resilience_active() const;

  /// Exchange `count` complex values with every rank: block d of `send_data`
  /// goes to rank d; block s of `recv_data` arrives from rank s.
  /// This is the single global transpose of the SOI algorithm (and each of
  /// the three in the baseline).
  void alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                AlltoallAlgo algo = AlltoallAlgo::kPairwise);

  /// Variable-size all-to-all: counts/displacements per destination/source,
  /// in complex elements.
  void alltoallv(cspan send_data, std::span<const std::int64_t> send_counts,
                 std::span<const std::int64_t> send_displs, mspan recv_data,
                 std::span<const std::int64_t> recv_counts,
                 std::span<const std::int64_t> recv_displs);

  // -- resilience --

  /// Install the world's resilience configuration (fault injector,
  /// deadlines, retry budget). First caller wins; later calls are no-ops,
  /// so every rank may call it with the same options (DistOptions plumbing
  /// does). Worlds from run_ranks(n, opts, body) are pre-configured.
  void configure_resilience(const NetOptions& opts);

  /// Base deadline of one wait attempt in ms (0 = unbounded waits).
  [[nodiscard]] double timeout_ms() const;
  /// Bounded-wait retry budget (0 = recovery disabled).
  [[nodiscard]] int max_retries() const;
  /// Snapshot of the world-wide fault/recovery counters.
  [[nodiscard]] FaultStats fault_stats() const;

  /// Shared traffic recorder for the whole world (same object on all ranks).
  [[nodiscard]] TrafficLog& traffic();

  /// Monotonic payload bytes THIS rank has sent (p2p and collectives; own-
  /// block copies inside collectives are not sends). Pipeline stages read
  /// the delta around a communication call to trace measured, per-stage
  /// byte volumes instead of estimates.
  [[nodiscard]] std::int64_t bytes_sent() const;

 private:
  /// One completion attempt for `req`. Caller holds this rank's mailbox
  /// mutex; all receive-side data movement happens here, on the waiter's
  /// thread.
  bool progress_locked(Request& req);

  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Launch `nranks` rank bodies on dedicated threads and wait for all to
/// finish. Exceptions thrown by rank bodies are captured; the first one (by
/// rank order) is rethrown here after every thread has joined.
/// Returns a snapshot of the world's traffic events (cost-model input).
///
/// The two-argument form reads the resilience environment knobs
/// (SOI_FAULTS spec string, SOI_TIMEOUT_MS, SOI_MAX_RETRIES,
/// SOI_CHECKSUMS=0); the NetOptions overload configures the world
/// explicitly (environment fills only the fields left at their defaults).
std::vector<CommEvent> run_ranks(int nranks,
                                 const std::function<void(Comm&)>& body);
std::vector<CommEvent> run_ranks(int nranks, const NetOptions& opts,
                                 const std::function<void(Comm&)>& body);

}  // namespace soi::net
