// SimMPI: an MPI-like message-passing layer whose ranks are threads inside
// one process — the "sim" backend of the net::Transport ABI
// (net/transport.hpp). This is the build's substitute for MPI on a real
// cluster (none is available here): the data movement, matching semantics
// and collective algorithms are executed for real, while communication
// *time* on cluster fabrics is produced by the cost models in
// costmodel.hpp.
//
// Supported surface (mirrors the MPI subset the paper's implementation
// needs, Fig. 2/3): blocking tagged send/recv, sendrecv, barrier, bcast,
// gather/allgather, allreduce, alltoall and alltoallv, plus a nonblocking
// layer (isend/irecv/ialltoall/ialltoallv with test/wait/waitall).
//
// Nonblocking model: Request handles are fully PASSIVE. Nothing runs in the
// background — sends complete at post time (buffered), and all receive-side
// progress happens on the waiting thread inside test()/wait(), which drain
// the caller's own mailbox. Requests are move-only; a Request dropped
// without being waited on has well-defined semantics: an unfinished
// collective is CANCELLED on destruction (its in-flight blocks are purged
// and future arrivals for its tag discarded), a pending receive simply
// forgets its posting (the message stays in the mailbox for a later
// blocking recv), and completed/send requests have nothing left to do.
//
// Resilience layer (NetOptions): every payload is CRC32-checksummed at
// send and verified at match, so corruption and truncation are DETECTED.
// With a FaultSpec installed (env SOI_FAULTS, run_ranks options, or
// DistOptions::faults) messages additionally carry per-channel sequence
// numbers and a clean retained copy: verification failures and
// deadline-expired waits re-queue the retained copy (an idempotent,
// receiver-driven retransmit), duplicates are absorbed by sequence-number
// dedup, and waits become deadline-bounded with exponential backoff,
// surfacing soi::CommTimeoutError / soi::PayloadCorruptionError after
// max_retries.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/traffic.hpp"
#include "net/transport.hpp"

namespace soi::net {

/// Back-compat alias for the ABI-wide channel ceiling — SimMPI supports
/// the full complement (see net/transport.hpp).
inline constexpr int kMaxCollChannels = kMaxChannels;

namespace detail {
struct World;
}

/// SimMPI's concrete request state behind the type-erased net::Request.
/// Fully passive: no registry, no background progress — completion is
/// driven by the owning rank's thread through Comm::test/wait/waitall.
/// Destruction cancels a live collective (see header comment).
class SimRequest final : public RequestState {
 public:
  SimRequest() = default;
  SimRequest(const SimRequest&) = delete;
  SimRequest& operator=(const SimRequest&) = delete;
  ~SimRequest() override { release(); }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] int source() const override { return src_matched_; }

 private:
  friend class Comm;
  enum class Kind : std::uint8_t {
    kNone,  ///< default-constructed, nothing to do
    kSend,  ///< completed at post time
    kRecv,  ///< completes when a matching message is drained
    kColl,  ///< alltoall(v): completes when all P-1 blocks have landed
  };

  /// Cancel a live collective (purge its blocks, discard future arrivals);
  /// no-op for every other state. Defined out of line (needs World).
  void release() noexcept;

  Kind kind_ = Kind::kNone;
  bool done_ = true;
  int peer_ = kAnySource;  ///< recv: source filter (or kAnySource)
  int tag_ = 0;
  int src_matched_ = -1;
  void* data_ = nullptr;  ///< recv payload destination
  std::size_t bytes_ = 0;

  // Collective state: remaining receives drain in ring order (step k reads
  // from (rank - k) mod P) during test/wait. count_ >= 0 selects the
  // uniform-block layout; otherwise the v-variant views apply. The
  // counts/displs spans are caller-owned and must outlive the request.
  int next_step_ = 1;
  cplx* recv_base_ = nullptr;
  std::int64_t count_ = -1;
  const std::int64_t* recv_counts_ = nullptr;
  const std::int64_t* recv_displs_ = nullptr;

  // Cancellation route for live collectives dropped without a wait.
  detail::World* world_ = nullptr;
  int owner_ = -1;
};

/// Per-rank communicator handle of the "sim" backend. Obtained from
/// run_ranks() (or net::run_world("sim", ...)); value-semantic view onto
/// the shared world. All operations are blocking.
class Comm final : public Transport {
 public:
  Comm(std::shared_ptr<detail::World> world, int rank);

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override;
  [[nodiscard]] const TransportCaps& caps() const override;

  // -- point to point (byte payloads) --
  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override;
  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override;

  /// Simultaneous exchange (deadlock-free even for self/neighbour cycles).
  void sendrecv(int dst, cspan send_data, int src, mspan recv_data,
                int tag) override;

  /// Non-blocking receive attempt: if a matching message is already
  /// queued, consume it into `data` and return true; otherwise return
  /// false immediately. Implemented as irecv + a single test; the
  /// incomplete request is simply dropped (requests are passive).
  bool try_recv(int src, int tag, mspan data) override;

  // -- nonblocking point to point --
  Request isend(int dst, int tag, cspan data) override;
  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override;
  Request irecv(int src, int tag, mspan data) override;
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes) override;

  // -- nonblocking collectives --

  /// Nonblocking alltoall: the own-block copy and every send happen at
  /// post time; the P-1 receive blocks land during test()/wait().
  Request ialltoall(cspan send_data, mspan recv_data, std::int64_t count,
                    AlltoallAlgo algo = AlltoallAlgo::kPairwise,
                    int channel = 0) override;

  /// Nonblocking alltoallv. `recv_counts`/`recv_displs` are captured by
  /// pointer and must outlive the request.
  Request ialltoallv(cspan send_data,
                     std::span<const std::int64_t> send_counts,
                     std::span<const std::int64_t> send_displs,
                     mspan recv_data,
                     std::span<const std::int64_t> recv_counts,
                     std::span<const std::int64_t> recv_displs,
                     int channel = 0) override;

  /// One progress attempt on the calling rank's mailbox; true when the
  /// request has completed. Never blocks.
  bool test(Request& req) override;

  /// Block until the request completes. Under the world's resilience
  /// configuration (timeout_ms() > 0) this is a bounded wait: each expired
  /// deadline promotes injector-delayed messages, re-queues retained clean
  /// copies of the request's pending pieces, doubles the deadline, and
  /// after max_retries() attempts throws soi::CommTimeoutError.
  void wait(Request& req) override;

  /// One deadline-bounded completion attempt: progress, sleep until the
  /// deadline, recover (promote delayed + re-queue retained) at expiry,
  /// and report whether the request finished. timeout_ms <= 0 blocks
  /// until completion.
  bool wait_for(Request& req, double timeout_ms) override;

  /// wait() over a span, in order.
  void waitall(std::span<Request> reqs) override;

  // -- collectives --
  void barrier() override;
  void bcast(mspan data, int root) override;
  void gather(cspan send_data, mspan recv_data, int root) override;
  void allgather(cspan send_data, mspan recv_data) override;
  double allreduce_sum(double value) override;
  double allreduce_max(double value) override;
  void allreduce_sum(std::span<double> values) override;

  [[nodiscard]] bool resilience_active() const override;

  void alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                AlltoallAlgo algo = AlltoallAlgo::kPairwise) override;

  void alltoallv(cspan send_data, std::span<const std::int64_t> send_counts,
                 std::span<const std::int64_t> send_displs, mspan recv_data,
                 std::span<const std::int64_t> recv_counts,
                 std::span<const std::int64_t> recv_displs) override;

  // -- resilience --

  /// Install the world's resilience configuration (fault injector,
  /// deadlines, retry budget). First caller wins; later calls are no-ops,
  /// so every rank may call it with the same options (DistOptions plumbing
  /// does). Worlds from run_ranks(n, opts, body) are pre-configured.
  void configure_resilience(const NetOptions& opts) override;

  [[nodiscard]] double timeout_ms() const override;
  [[nodiscard]] int max_retries() const override;
  [[nodiscard]] FaultStats fault_stats() const override;

  /// Shared traffic recorder for the whole world (same object on all ranks).
  [[nodiscard]] TrafficLog& traffic() override;

  /// Monotonic payload bytes THIS rank has sent (p2p and collectives; own-
  /// block copies inside collectives are not sends).
  [[nodiscard]] std::int64_t bytes_sent() const override;

 private:
  /// One completion attempt for `req`. Caller holds this rank's mailbox
  /// mutex; all receive-side data movement happens here, on the waiter's
  /// thread.
  bool progress_locked(SimRequest& req);

  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Launch `nranks` rank bodies on dedicated threads and wait for all to
/// finish. Exceptions thrown by rank bodies are captured; the first one (by
/// rank order) is rethrown here after every thread has joined.
/// Returns a snapshot of the world's traffic events (cost-model input).
///
/// The two-argument form reads the resilience environment knobs
/// (SOI_FAULTS spec string, SOI_TIMEOUT_MS, SOI_MAX_RETRIES,
/// SOI_CHECKSUMS=0); the NetOptions overload configures the world
/// explicitly (environment fills only the fields left at their defaults).
///
/// This is the sim-pinned entry point (the body receives the concrete
/// Comm); transport-generic callers go through net::run_world()
/// (net/registry.hpp), which dispatches here for the "sim" backend.
std::vector<CommEvent> run_ranks(int nranks,
                                 const std::function<void(Comm&)>& body);
std::vector<CommEvent> run_ranks(int nranks, const NetOptions& opts,
                                 const std::function<void(Comm&)>& body);

/// Registers the "sim" backend in the TransportRegistry. Called exactly
/// once by the registry's lazy initialiser — not by user code.
void register_sim_transport();

}  // namespace soi::net
