// Deterministic fault injection for the SimMPI transport.
//
// A FaultSpec describes a reproducible chaos scenario: a seed plus a list
// of (kind, rate) rules. The injector decides the fate of every message
// from a counter-based hash of (seed, kind, src, dst, channel sequence
// number) — NOT from a shared RNG stream — so decisions are identical
// regardless of thread interleaving: the same seed and traffic pattern
// always injects the same faults, which is what makes the chaos suite's
// "retried run is bit-identical to the fault-free run" assertion testable.
//
// Spec string grammar (CLI --fault-spec, env SOI_FAULTS,
// DistOptions::faults):
//   seed:kind:rate[,kind:rate...][,stall:RANK:MS]
// e.g. "42:drop:0.02,corrupt:0.01" or "7:delay:0.05,stall:1:20".
// Kinds: drop, corrupt (single bit-flip), truncate (payload halved),
// duplicate, delay (held until a waiter's deadline expires), straggler
// (heavy-tailed per-message latency: the wire copy arrives late but
// intact — distinct from delay's parked-until-deadline and from stall's
// whole-rank freeze). stall pauses the named rank MS milliseconds before
// each of its sends.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace soi::net {

enum class FaultKind : std::uint8_t {
  kDrop,       ///< message never enqueued (clean copy stays retained)
  kCorrupt,    ///< one bit of the payload flipped after the CRC was taken
  kTruncate,   ///< payload cut to half its length
  kDuplicate,  ///< delivered twice (dedup by sequence number must absorb it)
  kDelay,      ///< parked until a waiter's deadline promotes it
  kStraggler,  ///< delivered intact but late (heavy-tailed extra latency)
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  double rate = 0.0;  ///< per-message probability in [0, 1]
};

/// A reproducible chaos scenario. Empty (no rules, no stall) = faultless.
struct FaultSpec {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
  int stall_rank = -1;      ///< rank whose sends are slowed; -1 = none
  double stall_ms = 0.0;    ///< pause before each of that rank's sends

  [[nodiscard]] bool any() const {
    return !rules.empty() || stall_rank >= 0;
  }
  /// Parse the spec grammar above; throws soi::Error with a precise
  /// message on malformed input (strict: unknown kinds, rates outside
  /// [0,1], and trailing garbage are all rejected).
  static FaultSpec parse(const std::string& text);
  /// Round-trip back to the spec grammar ("" for an empty spec).
  [[nodiscard]] std::string str() const;
};

/// Monotonic counters of everything the resilience layer saw and did.
/// Shared by all ranks of one world; snapshot with Comm::fault_stats().
struct FaultStats {
  std::int64_t faults_injected = 0;  ///< total messages a rule fired on
  std::int64_t drops = 0;
  std::int64_t corruptions = 0;
  std::int64_t truncations = 0;
  std::int64_t duplicates = 0;
  std::int64_t delays = 0;
  std::int64_t stragglers = 0;
  std::int64_t checksum_failures = 0;  ///< CRC/size verification rejections
  std::int64_t retransmits = 0;  ///< retained clean copies re-queued
  std::int64_t timeouts = 0;     ///< bounded waits that expired at least once
};

namespace detail {
/// Atomic backing store for FaultStats (relaxed counters; the snapshot is
/// only read after the traffic that bumped it has quiesced).
struct FaultStatsAtomic {
  std::atomic<std::int64_t> faults_injected{0};
  std::atomic<std::int64_t> drops{0};
  std::atomic<std::int64_t> corruptions{0};
  std::atomic<std::int64_t> truncations{0};
  std::atomic<std::int64_t> duplicates{0};
  std::atomic<std::int64_t> delays{0};
  std::atomic<std::int64_t> stragglers{0};
  std::atomic<std::int64_t> checksum_failures{0};
  std::atomic<std::int64_t> retransmits{0};
  std::atomic<std::int64_t> timeouts{0};

  [[nodiscard]] FaultStats snapshot() const {
    FaultStats s;
    s.faults_injected = faults_injected.load(std::memory_order_relaxed);
    s.drops = drops.load(std::memory_order_relaxed);
    s.corruptions = corruptions.load(std::memory_order_relaxed);
    s.truncations = truncations.load(std::memory_order_relaxed);
    s.duplicates = duplicates.load(std::memory_order_relaxed);
    s.delays = delays.load(std::memory_order_relaxed);
    s.stragglers = stragglers.load(std::memory_order_relaxed);
    s.checksum_failures = checksum_failures.load(std::memory_order_relaxed);
    s.retransmits = retransmits.load(std::memory_order_relaxed);
    s.timeouts = timeouts.load(std::memory_order_relaxed);
    return s;
  }
};
}  // namespace detail

/// Per-world injector: pure function of (spec, message coordinates).
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

  /// The injected fate of one message. corrupt_bit is the absolute bit
  /// index to flip (-1 = none); independent rules may combine (e.g. a
  /// delayed message can also be corrupted).
  struct Action {
    bool drop = false;
    bool truncate = false;
    bool duplicate = false;
    bool delay = false;
    std::int64_t corrupt_bit = -1;
    /// Extra one-way latency (heavy-tailed Pareto draw) for a straggling
    /// message; 0 = not straggling.
    double straggle_ms = 0.0;
    [[nodiscard]] bool fired() const {
      return drop || truncate || duplicate || delay || corrupt_bit >= 0 ||
             straggle_ms > 0.0;
    }
  };

  /// Deterministic decision for message number `seq` on channel src->dst.
  /// `payload_bytes` sizes the corrupt-bit draw.
  [[nodiscard]] Action decide(int src, int dst, int tag, std::uint64_t seq,
                              std::size_t payload_bytes) const;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
};

/// CRC32C (Castagnoli polynomial) of a byte buffer — the integrity
/// checksum stamped on every SimMPI payload. Uses the SSE4.2 CRC32
/// instruction when the host supports it (runtime-dispatched) and a
/// table-based software path computing the identical polynomial otherwise.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t bytes);

}  // namespace soi::net
