#include "net/comm.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <thread>

namespace soi::net {

namespace detail {

namespace {
// Internal tags (user tags must be >= 0).
constexpr int kTagBcast = -2;
constexpr int kTagGather = -3;
constexpr int kTagAllgather = -4;
constexpr int kTagAlltoall = -5;
constexpr int kTagAlltoallv = -6;
// Nonblocking collectives get a unique tag per posting: kTagICollBase minus
// the rank's collective sequence number. All ranks post their nonblocking
// collectives in the same program order, so the per-rank counters agree
// world-wide and concurrent in-flight collectives cannot cross-match.
constexpr int kTagICollBase = -16;
}  // namespace

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> msgs;
};

struct World {
  explicit World(int n)
      : nranks(n),
        boxes(static_cast<std::size_t>(n)),
        sent_bytes(static_cast<std::size_t>(n), 0),
        coll_seq(static_cast<std::size_t>(n), 0) {}

  int nranks;
  std::deque<Mailbox> boxes;  // deque: Mailbox is not movable
  // Per-rank sent-payload counters; each slot is only ever written by its
  // own rank's thread (senders update their own entry).
  std::vector<std::int64_t> sent_bytes;
  // Per-rank nonblocking-collective sequence numbers (same ownership rule).
  std::vector<int> coll_seq;

  // Generation-counted barrier.
  std::mutex bar_mu;
  std::condition_variable bar_cv;
  int bar_waiting = 0;
  std::uint64_t bar_gen = 0;

  // Generation-counted reduction rendezvous.
  std::mutex red_mu;
  std::condition_variable red_cv;
  int red_count = 0;
  std::uint64_t red_gen = 0;
  double red_acc = 0.0;
  double red_result = 0.0;

  TrafficLog traffic;

  void push(int dst, Message msg) {
    auto& box = boxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.msgs.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  /// Remove and return the oldest queued message matching (src, tag).
  /// Caller must hold the mailbox mutex.
  static std::optional<Message> match_locked(Mailbox& box, int src, int tag) {
    for (auto it = box.msgs.begin(); it != box.msgs.end(); ++it) {
      if ((src == kAnySource || it->src == src) && it->tag == tag) {
        Message m = std::move(*it);
        box.msgs.erase(it);
        return m;
      }
    }
    return std::nullopt;
  }

  Message pop(int me, int src, int tag) {
    auto& box = boxes[static_cast<std::size_t>(me)];
    std::unique_lock<std::mutex> lock(box.mu);
    for (;;) {
      if (auto m = match_locked(box, src, tag)) return std::move(*m);
      box.cv.wait(lock);
    }
  }
};

}  // namespace detail

Comm::Comm(std::shared_ptr<detail::World> world, int rank)
    : world_(std::move(world)), rank_(rank) {}

int Comm::size() const { return world_->nranks; }

TrafficLog& Comm::traffic() { return world_->traffic; }

std::int64_t Comm::bytes_sent() const {
  return world_->sent_bytes[static_cast<std::size_t>(rank_)];
}

namespace {
void send_impl(detail::World& w, int src, int dst, int tag, const void* data,
               std::size_t bytes, bool record) {
  SOI_CHECK(dst >= 0 && dst < w.nranks,
            "send: destination rank " << dst << " out of range");
  detail::Message m;
  m.src = src;
  m.tag = tag;
  m.payload.resize(bytes);
  if (bytes > 0) std::memcpy(m.payload.data(), data, bytes);
  w.sent_bytes[static_cast<std::size_t>(src)] +=
      static_cast<std::int64_t>(bytes);
  if (record) {
    w.traffic.record({CommEvent::Kind::kP2P, 2,
                      static_cast<std::int64_t>(bytes), 1});
  }
  w.push(dst, std::move(m));
}

void recv_impl(detail::World& w, int me, int src, int tag, void* data,
               std::size_t bytes) {
  SOI_CHECK(src == kAnySource || (src >= 0 && src < w.nranks),
            "recv: source rank " << src << " out of range");
  detail::Message m = w.pop(me, src, tag);
  SOI_CHECK(m.payload.size() == bytes,
            "recv: expected " << bytes << " bytes from rank " << m.src
                              << " tag " << tag << ", got "
                              << m.payload.size());
  if (bytes > 0) std::memcpy(data, m.payload.data(), bytes);
}
}  // namespace

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  send_impl(*world_, rank_, dst, tag, data, bytes, /*record=*/true);
}

void Comm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  recv_impl(*world_, rank_, src, tag, data, bytes);
}

void Comm::send(int dst, int tag, cspan data) {
  send_bytes(dst, tag, data.data(), data.size_bytes());
}

void Comm::recv(int src, int tag, mspan data) {
  recv_bytes(src, tag, data.data(), data.size_bytes());
}

bool Comm::try_recv(int src, int tag, mspan data) {
  Request req = irecv(src, tag, data);
  return test(req);
}

Request Comm::isend_bytes(int dst, int tag, const void* data,
                          std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  send_impl(*world_, rank_, dst, tag, data, bytes, /*record=*/true);
  Request req;
  req.kind_ = Request::Kind::kSend;
  req.done_ = true;  // buffered: complete at post time
  req.peer_ = dst;
  req.tag_ = tag;
  req.bytes_ = bytes;
  return req;
}

Request Comm::isend(int dst, int tag, cspan data) {
  return isend_bytes(dst, tag, data.data(), data.size_bytes());
}

Request Comm::irecv_bytes(int src, int tag, void* data, std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  SOI_CHECK(src == kAnySource || (src >= 0 && src < world_->nranks),
            "irecv: source rank " << src << " out of range");
  Request req;
  req.kind_ = Request::Kind::kRecv;
  req.done_ = false;
  req.peer_ = src;
  req.tag_ = tag;
  req.data_ = data;
  req.bytes_ = bytes;
  return req;
}

Request Comm::irecv(int src, int tag, mspan data) {
  return irecv_bytes(src, tag, data.data(), data.size_bytes());
}

Request Comm::ialltoall(cspan send_data, mspan recv_data, std::int64_t count,
                        AlltoallAlgo algo) {
  auto& w = *world_;
  const int p = w.nranks;
  const auto block = static_cast<std::size_t>(count);
  SOI_CHECK(count >= 0, "ialltoall: negative count");
  SOI_CHECK(send_data.size() >= block * static_cast<std::size_t>(p),
            "ialltoall: send buffer too small");
  SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(p),
            "ialltoall: recv buffer too small");
  const int tag =
      detail::kTagICollBase - w.coll_seq[static_cast<std::size_t>(rank_)]++;

  // Own block: straight copy at post time.
  std::copy(send_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_,
            send_data.begin() + static_cast<std::ptrdiff_t>(block) * (rank_ + 1),
            recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);

  // Every send is posted here (buffered); only the receive side is
  // deferred. The algo picks the posting order, mirroring the blocking
  // schedules.
  if (algo == AlltoallAlgo::kPairwise) {
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      send_impl(w, rank_, to, tag,
                send_data.data() + block * static_cast<std::size_t>(to),
                block * sizeof(cplx), /*record=*/false);
    }
  } else {
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      send_impl(w, rank_, r, tag,
                send_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx), /*record=*/false);
    }
  }
  if (rank_ == 0) {
    w.traffic.record(
        {CommEvent::Kind::kAlltoall, p,
         static_cast<std::int64_t>(block * sizeof(cplx)) * (p - 1), p - 1});
  }

  Request req;
  req.kind_ = Request::Kind::kColl;
  req.done_ = (p == 1);
  req.tag_ = tag;
  req.recv_base_ = recv_data.data();
  req.count_ = count;
  req.next_step_ = 1;
  return req;
}

Request Comm::ialltoallv(cspan send_data,
                         std::span<const std::int64_t> send_counts,
                         std::span<const std::int64_t> send_displs,
                         mspan recv_data,
                         std::span<const std::int64_t> recv_counts,
                         std::span<const std::int64_t> recv_displs) {
  auto& w = *world_;
  const int p = w.nranks;
  SOI_CHECK(send_counts.size() == static_cast<std::size_t>(p) &&
                send_displs.size() == static_cast<std::size_t>(p) &&
                recv_counts.size() == static_cast<std::size_t>(p) &&
                recv_displs.size() == static_cast<std::size_t>(p),
            "ialltoallv: counts/displs must have one entry per rank");
  const int tag =
      detail::kTagICollBase - w.coll_seq[static_cast<std::size_t>(rank_)]++;

  // Own block.
  {
    const auto sc = static_cast<std::size_t>(
        send_counts[static_cast<std::size_t>(rank_)]);
    const auto rc = static_cast<std::size_t>(
        recv_counts[static_cast<std::size_t>(rank_)]);
    SOI_CHECK(sc == rc, "ialltoallv: self send/recv count mismatch");
    std::copy_n(send_data.begin() +
                    send_displs[static_cast<std::size_t>(rank_)],
                sc,
                recv_data.begin() +
                    recv_displs[static_cast<std::size_t>(rank_)]);
  }
  std::int64_t bytes_out = 0;
  for (int step = 1; step < p; ++step) {
    const int to = (rank_ + step) % p;
    const auto sc =
        static_cast<std::size_t>(send_counts[static_cast<std::size_t>(to)]);
    send_impl(w, rank_, to, tag,
              send_data.data() + send_displs[static_cast<std::size_t>(to)],
              sc * sizeof(cplx), /*record=*/false);
    bytes_out += static_cast<std::int64_t>(sc * sizeof(cplx));
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kAlltoall, p, bytes_out, p - 1});
  }

  Request req;
  req.kind_ = Request::Kind::kColl;
  req.done_ = (p == 1);
  req.tag_ = tag;
  req.recv_base_ = recv_data.data();
  req.count_ = -1;  // v-variant: per-source counts/displs below
  req.recv_counts_ = recv_counts.data();
  req.recv_displs_ = recv_displs.data();
  req.next_step_ = 1;
  return req;
}

bool Comm::progress_locked(Request& req) {
  auto& w = *world_;
  auto& box = w.boxes[static_cast<std::size_t>(rank_)];
  switch (req.kind_) {
    case Request::Kind::kNone:
    case Request::Kind::kSend:
      return true;
    case Request::Kind::kRecv: {
      auto m = detail::World::match_locked(box, req.peer_, req.tag_);
      if (!m.has_value()) return false;
      SOI_CHECK(m->payload.size() == req.bytes_,
                "irecv: expected " << req.bytes_ << " bytes from rank "
                                   << m->src << " tag " << req.tag_
                                   << ", got " << m->payload.size());
      if (!m->payload.empty()) {
        std::memcpy(req.data_, m->payload.data(), m->payload.size());
      }
      req.src_matched_ = m->src;
      req.done_ = true;
      return true;
    }
    case Request::Kind::kColl: {
      // Drain the remaining blocks in ring order: step k reads from
      // (rank - k) mod P. Ring order keeps the scan deterministic and
      // bounded; every block lands eventually because all sends were
      // posted when the collective was.
      const int p = w.nranks;
      while (req.next_step_ < p) {
        const int from = (rank_ - req.next_step_ + p) % p;
        std::int64_t rc = req.count_;
        std::int64_t rd = req.count_ * from;
        if (req.count_ < 0) {
          rc = req.recv_counts_[static_cast<std::size_t>(from)];
          rd = req.recv_displs_[static_cast<std::size_t>(from)];
        }
        auto m = detail::World::match_locked(box, from, req.tag_);
        if (!m.has_value()) return false;
        SOI_CHECK(m->payload.size() ==
                      static_cast<std::size_t>(rc) * sizeof(cplx),
                  "ialltoall(v): expected "
                      << static_cast<std::size_t>(rc) * sizeof(cplx)
                      << " bytes from rank " << from << ", got "
                      << m->payload.size());
        if (!m->payload.empty()) {
          std::memcpy(req.recv_base_ + rd, m->payload.data(),
                      m->payload.size());
        }
        ++req.next_step_;
      }
      req.done_ = true;
      return true;
    }
  }
  return false;
}

bool Comm::test(Request& req) {
  if (req.done_) return true;
  auto& box = world_->boxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> lock(box.mu);
  return progress_locked(req);
}

void Comm::wait(Request& req) {
  if (req.done_) return;
  auto& box = world_->boxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(box.mu);
  while (!progress_locked(req)) box.cv.wait(lock);
}

void Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Comm::sendrecv(int dst, cspan send_data, int src, mspan recv_data,
                    int tag) {
  // Sends never block (buffered), so send-then-recv cannot deadlock even in
  // a fully cyclic exchange pattern.
  send(dst, tag, send_data);
  recv(src, tag, recv_data);
}

void Comm::barrier() {
  auto& w = *world_;
  std::unique_lock<std::mutex> lock(w.bar_mu);
  const std::uint64_t gen = w.bar_gen;
  if (++w.bar_waiting == w.nranks) {
    w.bar_waiting = 0;
    ++w.bar_gen;
    w.bar_cv.notify_all();
  } else {
    w.bar_cv.wait(lock, [&w, gen] { return w.bar_gen != gen; });
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kBarrier, w.nranks, 0, 1});
  }
}

void Comm::bcast(mspan data, int root) {
  auto& w = *world_;
  SOI_CHECK(root >= 0 && root < w.nranks, "bcast: bad root " << root);
  if (rank_ == root) {
    for (int r = 0; r < w.nranks; ++r) {
      if (r == root) continue;
      send_impl(w, rank_, r, detail::kTagBcast, data.data(),
                data.size_bytes(), /*record=*/false);
    }
    w.traffic.record({CommEvent::Kind::kBcast, w.nranks,
                      static_cast<std::int64_t>(data.size_bytes()),
                      w.nranks - 1});
  } else {
    recv_impl(w, rank_, root, detail::kTagBcast, data.data(),
              data.size_bytes());
  }
}

void Comm::gather(cspan send_data, mspan recv_data, int root) {
  auto& w = *world_;
  const std::size_t block = send_data.size();
  if (rank_ == root) {
    SOI_CHECK(recv_data.size() >=
                  block * static_cast<std::size_t>(w.nranks),
              "gather: receive buffer too small");
    std::copy(send_data.begin(), send_data.end(),
              recv_data.begin() +
                  static_cast<std::ptrdiff_t>(block) * root);
    for (int r = 0; r < w.nranks; ++r) {
      if (r == root) continue;
      recv_impl(w, rank_, r, detail::kTagGather,
                recv_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx));
    }
    w.traffic.record({CommEvent::Kind::kAllgather, w.nranks,
                      static_cast<std::int64_t>(block * sizeof(cplx)), 1});
  } else {
    send_impl(w, rank_, root, detail::kTagGather, send_data.data(),
              send_data.size_bytes(), /*record=*/false);
  }
}

void Comm::allgather(cspan send_data, mspan recv_data) {
  auto& w = *world_;
  const std::size_t block = send_data.size();
  SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(w.nranks),
            "allgather: receive buffer too small");
  for (int r = 0; r < w.nranks; ++r) {
    if (r == rank_) continue;
    send_impl(w, rank_, r, detail::kTagAllgather, send_data.data(),
              send_data.size_bytes(), /*record=*/false);
  }
  std::copy(send_data.begin(), send_data.end(),
            recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);
  for (int r = 0; r < w.nranks; ++r) {
    if (r == rank_) continue;
    recv_impl(w, rank_, r, detail::kTagAllgather,
              recv_data.data() + block * static_cast<std::size_t>(r),
              block * sizeof(cplx));
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kAllgather, w.nranks,
                      static_cast<std::int64_t>(block * sizeof(cplx) *
                                                static_cast<std::size_t>(
                                                    w.nranks - 1)),
                      w.nranks - 1});
  }
}

namespace {
double reduce_rendezvous(detail::World& w, double value, bool is_sum) {
  std::unique_lock<std::mutex> lock(w.red_mu);
  const std::uint64_t gen = w.red_gen;
  if (w.red_count == 0) {
    w.red_acc = value;
  } else {
    w.red_acc = is_sum ? w.red_acc + value : std::max(w.red_acc, value);
  }
  if (++w.red_count == w.nranks) {
    w.red_result = w.red_acc;
    w.red_count = 0;
    ++w.red_gen;
    w.red_cv.notify_all();
    w.traffic.record({CommEvent::Kind::kAllreduce, w.nranks,
                      static_cast<std::int64_t>(sizeof(double)), 1});
    return w.red_result;
  }
  w.red_cv.wait(lock, [&w, gen] { return w.red_gen != gen; });
  return w.red_result;
}
}  // namespace

double Comm::allreduce_sum(double value) {
  return reduce_rendezvous(*world_, value, /*is_sum=*/true);
}

double Comm::allreduce_max(double value) {
  return reduce_rendezvous(*world_, value, /*is_sum=*/false);
}

void Comm::alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                    AlltoallAlgo algo) {
  auto& w = *world_;
  const int p = w.nranks;
  const auto block = static_cast<std::size_t>(count);
  SOI_CHECK(send_data.size() >= block * static_cast<std::size_t>(p),
            "alltoall: send buffer too small");
  SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(p),
            "alltoall: recv buffer too small");

  // Own block: straight copy.
  std::copy(send_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_,
            send_data.begin() + static_cast<std::ptrdiff_t>(block) * (rank_ + 1),
            recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);

  if (algo == AlltoallAlgo::kPairwise) {
    // Ring schedule: step k exchanges with (rank+k) / (rank-k).
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      const int from = (rank_ - step + p) % p;
      send_impl(w, rank_, to, detail::kTagAlltoall,
                send_data.data() + block * static_cast<std::size_t>(to),
                block * sizeof(cplx), /*record=*/false);
      recv_impl(w, rank_, from, detail::kTagAlltoall,
                recv_data.data() + block * static_cast<std::size_t>(from),
                block * sizeof(cplx));
    }
  } else {
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      send_impl(w, rank_, r, detail::kTagAlltoall,
                send_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx), /*record=*/false);
    }
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      recv_impl(w, rank_, r, detail::kTagAlltoall,
                recv_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx));
    }
  }
  if (rank_ == 0) {
    w.traffic.record(
        {CommEvent::Kind::kAlltoall, p,
         static_cast<std::int64_t>(block * sizeof(cplx)) * (p - 1), p - 1});
  }
}

void Comm::alltoallv(cspan send_data,
                     std::span<const std::int64_t> send_counts,
                     std::span<const std::int64_t> send_displs,
                     mspan recv_data,
                     std::span<const std::int64_t> recv_counts,
                     std::span<const std::int64_t> recv_displs) {
  auto& w = *world_;
  const int p = w.nranks;
  SOI_CHECK(send_counts.size() == static_cast<std::size_t>(p) &&
                send_displs.size() == static_cast<std::size_t>(p) &&
                recv_counts.size() == static_cast<std::size_t>(p) &&
                recv_displs.size() == static_cast<std::size_t>(p),
            "alltoallv: counts/displs must have one entry per rank");

  // Own block.
  {
    const auto sc = static_cast<std::size_t>(send_counts[static_cast<std::size_t>(rank_)]);
    const auto rc = static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(rank_)]);
    SOI_CHECK(sc == rc, "alltoallv: self send/recv count mismatch");
    std::copy_n(send_data.begin() +
                    send_displs[static_cast<std::size_t>(rank_)],
                sc,
                recv_data.begin() +
                    recv_displs[static_cast<std::size_t>(rank_)]);
  }
  std::int64_t bytes_out = 0;
  for (int step = 1; step < p; ++step) {
    const int to = (rank_ + step) % p;
    const int from = (rank_ - step + p) % p;
    const auto sc = static_cast<std::size_t>(send_counts[static_cast<std::size_t>(to)]);
    const auto rc = static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(from)]);
    send_impl(w, rank_, to, detail::kTagAlltoallv,
              send_data.data() + send_displs[static_cast<std::size_t>(to)],
              sc * sizeof(cplx), /*record=*/false);
    recv_impl(w, rank_, from, detail::kTagAlltoallv,
              recv_data.data() + recv_displs[static_cast<std::size_t>(from)],
              rc * sizeof(cplx));
    bytes_out += static_cast<std::int64_t>(sc * sizeof(cplx));
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kAlltoall, p, bytes_out, p - 1});
  }
}

std::vector<CommEvent> run_ranks(int nranks,
                                 const std::function<void(Comm&)>& body) {
  SOI_CHECK(nranks >= 1, "run_ranks: need at least one rank");
  auto world = std::make_shared<detail::World>(nranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      try {
        Comm comm(world, r);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return world->traffic.events();
}

}  // namespace soi::net
