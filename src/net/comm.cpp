#include "net/comm.hpp"

#include "net/erasure.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "common/env.hpp"
#include "net/registry.hpp"

namespace soi::net {

namespace detail {

namespace {
// Internal tags (user tags must be >= 0).
constexpr int kTagBcast = -2;
constexpr int kTagGather = -3;
constexpr int kTagAllgather = -4;
constexpr int kTagAlltoall = -5;
constexpr int kTagAlltoallv = -6;
// Nonblocking collectives get a unique tag per posting: kTagICollBase
// minus (sequence * kMaxCollChannels + channel), where the sequence number
// is per (rank, channel). All ranks post the collectives of one channel in
// the same program order, so the counters agree world-wide and concurrent
// in-flight collectives of one channel cannot cross-match; different
// channels occupy disjoint tag residues, so their postings may interleave
// in any per-rank order (the multi-tenant co-scheduling contract).
constexpr int kTagICollBase = -16;

// When faults are active but no deadline was configured, waits must still
// be bounded or an injected drop would hang the world.
constexpr double kDefaultFaultTimeoutMs = 50.0;

std::chrono::steady_clock::duration to_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}
}  // namespace

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  /// Emulated wire latency: the message exists in the mailbox from push
  /// time (so ordering and recovery metadata behave normally) but only
  /// becomes matchable once the clock passes this stamp. Default-epoch
  /// means immediately visible (latency emulation off).
  std::chrono::steady_clock::time_point visible_at{};
  // Integrity + recovery metadata. `crc` covers the payload as sent;
  // `seq` numbers the src->dst channel; `reliable` marks messages sent
  // while the injector was engaged (only those carry a retained clean
  // copy and participate in sequence-number dedup, so mixed-mode worlds
  // stay well-defined).
  std::uint32_t crc = 0;
  std::uint64_t seq = 0;
  bool has_crc = false;
  bool reliable = false;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> msgs;
  // Resilience state (only populated in reliable mode; the fault-free
  // path never touches these):
  std::deque<Message> delayed;   ///< injector-parked, promoted on deadline
  std::deque<Message> retained;  ///< clean copies pending delivery
  std::unordered_set<std::uint64_t> delivered;  ///< (src, seq) dedup keys
  std::unordered_set<int> cancelled;  ///< tags of dropped collectives
};

struct World {
  explicit World(int n)
      : nranks(n),
        boxes(static_cast<std::size_t>(n)),
        sent_bytes(static_cast<std::size_t>(n), 0),
        coll_seq(static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(kMaxCollChannels),
                 0),
        chan_seq(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                 0) {}

  int nranks;
  std::deque<Mailbox> boxes;  // deque: Mailbox is not movable
  // Per-rank sent-payload counters; each slot is only ever written by its
  // own rank's thread (senders update their own entry).
  std::vector<std::int64_t> sent_bytes;
  // Per-rank, per-channel nonblocking-collective sequence numbers (slot
  // rank * kMaxCollChannels + channel; same ownership rule).
  std::vector<int> coll_seq;

  /// Tag of this rank's next collective posting on `channel`.
  int next_coll_tag(int rank, int channel) {
    const int seq = coll_seq[static_cast<std::size_t>(rank) *
                                 static_cast<std::size_t>(kMaxCollChannels) +
                             static_cast<std::size_t>(channel)]++;
    return kTagICollBase - (seq * kMaxCollChannels + channel);
  }
  // Per-channel (src*nranks+dst) message sequence numbers; slot src*n+dst
  // is only ever touched by rank src's thread.
  std::vector<std::uint64_t> chan_seq;

  // Resilience configuration. Installed once (configure(), first caller
  // wins) and read lock-free on the send/wait hot paths; the raw injector
  // pointer is published with release ordering and owned by the world.
  std::mutex cfg_mu;
  bool configured = false;
  std::unique_ptr<const FaultInjector> injector_owned;
  std::atomic<const FaultInjector*> injector{nullptr};
  std::atomic<double> timeout_ms{0.0};
  std::atomic<int> max_retries{8};
  std::atomic<bool> checksums{true};
  /// Emulated per-message wire latency in seconds (0 = off). Read on the
  /// send and match hot paths; the zero value keeps both byte-identical
  /// to the latency-free transport.
  std::atomic<double> wire_latency_s{0.0};
  /// Cheap intra-group latency tier (seconds) and the node-group size
  /// that selects it: a message whose source and destination share
  /// rank / latency_group pays intra_latency_s instead of
  /// wire_latency_s. latency_group == 0 disables the split.
  std::atomic<double> intra_latency_s{0.0};
  std::atomic<int> latency_group{0};
  /// Set when the injector spec contains a straggler rule: stragglers are
  /// expressed purely through Message::visible_at, so matching must honor
  /// the stamps even when no latency tier is configured.
  std::atomic<bool> straggle_active{false};
  FaultStatsAtomic stats;

  /// True when any latency tier is emulated — matching must then honor
  /// Message::visible_at stamps (even intra-only configurations stamp).
  bool latency_emulated() const {
    return wire_latency_s.load(std::memory_order_relaxed) > 0 ||
           intra_latency_s.load(std::memory_order_relaxed) > 0 ||
           straggle_active.load(std::memory_order_relaxed);
  }

  /// Emulated latency of one src -> dst message, in seconds.
  double message_latency_s(int src, int dst) const {
    const int g = latency_group.load(std::memory_order_relaxed);
    if (g > 0 && src / g == dst / g) {
      return intra_latency_s.load(std::memory_order_relaxed);
    }
    return wire_latency_s.load(std::memory_order_relaxed);
  }

  // Generation-counted barrier.
  std::mutex bar_mu;
  std::condition_variable bar_cv;
  int bar_waiting = 0;
  std::uint64_t bar_gen = 0;

  // Generation-counted reduction rendezvous.
  std::mutex red_mu;
  std::condition_variable red_cv;
  int red_count = 0;
  std::uint64_t red_gen = 0;
  double red_acc = 0.0;
  double red_result = 0.0;
  std::vector<double> red_vec_acc;
  std::vector<double> red_vec_result;

  // Set when a rank's body failed: every blocked wait unwinds with
  // WorldAbortedError instead of deadlocking on a peer that will never
  // arrive (run_ranks resurfaces the primary error, not these).
  std::atomic<bool> aborted{false};

  TrafficLog traffic;

  void configure(const NetOptions& opts);

  /// Mark the world dead and wake every sleeper (mailboxes, barrier,
  /// reduction rendezvous) so they observe `aborted` and throw.
  void abort_world() {
    aborted.store(true, std::memory_order_release);
    for (auto& b : boxes) {
      std::lock_guard<std::mutex> lock(b.mu);  // guarantee no missed wakeup
      b.cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(bar_mu);
      bar_cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(red_mu);
      red_cv.notify_all();
    }
  }

  void check_alive() const {
    if (aborted.load(std::memory_order_acquire)) {
      throw WorldAbortedError(
          "comm: world aborted after a failure on a peer rank");
    }
  }

  void push(int dst, Message msg) {
    auto& box = boxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      if (box.cancelled.count(msg.tag) == 0) {
        box.msgs.push_back(std::move(msg));
      }
    }
    box.cv.notify_all();
  }

  Message pop(int me, int src, int tag, std::size_t expected_bytes);
};

void World::configure(const NetOptions& opts) {
  std::lock_guard<std::mutex> lock(cfg_mu);
  if (configured) return;
  configured = true;
  double t = opts.timeout_ms;
  if (opts.faults.any() && t <= 0) t = kDefaultFaultTimeoutMs;
  checksums.store(opts.checksums, std::memory_order_relaxed);
  max_retries.store(opts.max_retries, std::memory_order_relaxed);
  timeout_ms.store(t, std::memory_order_relaxed);
  wire_latency_s.store(std::max(opts.wire_latency_us, 0.0) * 1e-6,
                       std::memory_order_relaxed);
  intra_latency_s.store(std::max(opts.intra_latency_us, 0.0) * 1e-6,
                        std::memory_order_relaxed);
  latency_group.store(std::max(opts.topo_group_size, 0),
                      std::memory_order_relaxed);
  if (opts.faults.any()) {
    for (const FaultRule& r : opts.faults.rules) {
      if (r.kind == FaultKind::kStraggler) {
        straggle_active.store(true, std::memory_order_relaxed);
      }
    }
    injector_owned = std::make_unique<FaultInjector>(opts.faults);
    injector.store(injector_owned.get(), std::memory_order_release);
  }
}

namespace {

std::uint64_t dedup_key(int src, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 48) |
         seq;
}

/// Move every injector-parked message into the deliverable queue.
/// Caller holds the mailbox mutex.
int promote_delayed_locked(Mailbox& box) {
  int moved = 0;
  while (!box.delayed.empty()) {
    box.msgs.push_back(std::move(box.delayed.front()));
    box.delayed.pop_front();
    ++moved;
  }
  return moved;
}

/// Drop the retained clean copy of a delivered message.
/// Caller holds the mailbox mutex.
void erase_retained_locked(Mailbox& box, int src, int tag, std::uint64_t seq) {
  for (auto it = box.retained.begin(); it != box.retained.end(); ++it) {
    if (it->src == src && it->tag == tag && it->seq == seq) {
      box.retained.erase(it);
      return;
    }
  }
}

/// Re-queue the retained clean copies of every undelivered (src, tag)
/// message — the receiver-driven, idempotent retransmit. Returns how many
/// were moved. Caller holds the mailbox mutex.
int requeue_retained_locked(World& w, Mailbox& box, int src, int tag) {
  int moved = 0;
  for (auto it = box.retained.begin(); it != box.retained.end();) {
    const bool pending =
        (src == kAnySource || it->src == src) && it->tag == tag &&
        box.delivered.count(dedup_key(it->src, it->seq)) == 0;
    if (pending) {
      box.msgs.push_back(std::move(*it));
      it = box.retained.erase(it);
      ++moved;
    } else {
      ++it;
    }
  }
  if (moved > 0) {
    w.stats.retransmits.fetch_add(moved, std::memory_order_relaxed);
  }
  return moved;
}

/// Coded tags are reused only every kCodedEpochCycle exchanges, and the
/// coded receive path may abandon shards it no longer needs (a parity
/// shard arriving after its codeword already reconstructed, or a shard
/// whose wire copy was dropped and recovered from parity instead). Any
/// queued or retained copy with a lower sequence number than a freshly
/// delivered shard on the same (src, tag) channel belongs to a previous
/// epoch and can never be wanted again — purge it so abandoned shards do
/// not accumulate across epochs. Caller holds the mailbox mutex.
void gc_stale_coded_locked(Mailbox& box, int src, int tag, std::uint64_t seq) {
  const auto stale = [&](const Message& p) {
    return p.src == src && p.tag == tag && p.reliable && p.seq < seq;
  };
  for (std::deque<Message>* q : {&box.msgs, &box.delayed, &box.retained}) {
    for (auto it = q->begin(); it != q->end();) {
      if (stale(*it)) {
        it = q->erase(it);
      } else {
        ++it;
      }
    }
  }
}

/// Ordered match for reliable traffic. An engaged injector can scramble
/// the queue order of one (src, tag) channel — a dropped or delayed
/// message leaves the queue while a LATER same-tag send (e.g. the next
/// blocking alltoall's block, which reuses the collective tag) arrives
/// first, and positional matching would deliver it into the earlier
/// receive. Restore the FIFO contract by sequence number: deliver the
/// lowest undelivered seq, and refuse to deliver while an earlier
/// undelivered copy of the channel is still parked in the delayed or
/// retained queues (the bounded wait + retransmit recovery surfaces it).
/// Unreliable messages (sent before the injector engaged) cannot be
/// reordered and keep plain queue-position matching.
/// Caller holds the mailbox mutex.
std::optional<Message> match_ordered_locked(
    Mailbox& box, int src, int tag,
    std::chrono::steady_clock::time_point now) {
  auto chosen = box.msgs.end();
  for (auto it = box.msgs.begin(); it != box.msgs.end(); ++it) {
    if ((src != kAnySource && it->src != src) || it->tag != tag ||
        it->visible_at > now) {
      continue;
    }
    if (!it->reliable) {  // pre-injector traffic precedes all reliable sends
      chosen = it;
      break;
    }
    if (chosen == box.msgs.end() || it->seq < chosen->seq) chosen = it;
  }
  if (chosen == box.msgs.end()) return std::nullopt;
  // Coded shards opt out of the parked-copy refusal: each shard travels on
  // its own tag, a missing shard is an ERASURE the codec absorbs, and a
  // lower-seq parked copy on the same tag is a previous epoch's leftover —
  // blocking on it would turn every erasure back into a retransmit wait.
  if (chosen->reliable && !is_coded_tag(tag)) {
    const int csrc = chosen->src;
    const std::uint64_t cseq = chosen->seq;
    const auto earlier_parked = [&](const std::deque<Message>& q) {
      for (const auto& p : q) {
        if (p.src == csrc && p.tag == tag && p.reliable && p.seq < cseq &&
            box.delivered.count(dedup_key(p.src, p.seq)) == 0) {
          return true;
        }
      }
      return false;
    };
    if (earlier_parked(box.delayed) || earlier_parked(box.retained)) {
      return std::nullopt;
    }
  }
  Message m = std::move(*chosen);
  box.msgs.erase(chosen);
  return m;
}


/// Match + verify loop: dedup stale duplicates/retransmits, check size and
/// CRC, and on a verification failure either recover (re-queue the retained
/// clean copy and match again) or throw soi::PayloadCorruptionError.
/// Caller holds the mailbox mutex.
std::optional<Message> take_verified_locked(World& w, Mailbox& box, int src,
                                            int tag,
                                            std::size_t expected_bytes) {
  const auto now = w.latency_emulated()
                       ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point::max();
  for (;;) {
    auto m = match_ordered_locked(box, src, tag, now);
    if (!m.has_value()) return std::nullopt;
    std::uint64_t key = 0;
    if (m->reliable) {
      key = dedup_key(m->src, m->seq);
      if (box.delivered.count(key) != 0) continue;  // stale duplicate
    }
    const bool size_ok = m->payload.size() == expected_bytes;
    // Verify the checksum only for messages that crossed the simulated
    // unreliable wire (`reliable` = an injector was engaged at send). A
    // plain in-process queue move cannot corrupt the payload, so
    // re-hashing every fault-free delivery would be dead work on the
    // critical path; the stamp is still computed unconditionally so any
    // consumer (or a future real-network backend) can verify.
    const bool crc_ok =
        !m->has_crc || !m->reliable ||
        crc32(m->payload.data(), m->payload.size()) == m->crc;
    if (size_ok && crc_ok) {
      if (m->reliable) {
        box.delivered.insert(key);
        erase_retained_locked(box, m->src, tag, m->seq);
        if (is_coded_tag(tag)) {
          gc_stale_coded_locked(box, m->src, tag, m->seq);
        }
      }
      return m;
    }
    w.stats.checksum_failures.fetch_add(1, std::memory_order_relaxed);
    if (m->reliable && is_coded_tag(tag)) {
      // A corrupt or truncated coded shard is an ERASURE, not a
      // retransmit trigger: discard the bad wire copy and let the codec
      // reconstruct from parity. The retained clean copy stays put — the
      // > r-losses fallback path can still surface it via the bounded
      // wait's requeue.
      continue;
    }
    if (m->reliable && w.max_retries.load(std::memory_order_relaxed) > 0) {
      // Recovery on: re-queue the retained clean copy (if still held) and
      // keep scanning. A failed requeue must NOT be fatal — when a message
      // is both duplicated and corrupted, both wire copies are corrupt and
      // the clean copy may already sit in the queue BEHIND the second bad
      // one (the first failure consumed the retained slot). Each loop
      // iteration removes one matching message, so this terminates; if the
      // queue drains without a verified match the caller's bounded wait
      // takes over.
      requeue_retained_locked(w, box, m->src, tag);
      continue;
    }
    std::ostringstream os;
    os << "recv: expected " << expected_bytes << " bytes from rank "
       << m->src << " tag " << tag << ", got " << m->payload.size();
    if (!crc_ok) os << " (CRC mismatch)";
    throw PayloadCorruptionError(os.str());
  }
}

/// Earliest visibility stamp among queued (src, tag) matches, if any.
/// After a failed take_verified_locked, every remaining match is still in
/// wire flight — a blocking wait must wake at this stamp (no further
/// notify is coming for an already-pushed message). Caller holds the
/// mailbox mutex.
std::optional<std::chrono::steady_clock::time_point> earliest_match_locked(
    const Mailbox& box, int src, int tag) {
  std::optional<std::chrono::steady_clock::time_point> best;
  for (const auto& m : box.msgs) {
    if ((src == kAnySource || m.src == src) && m.tag == tag &&
        (!best.has_value() || m.visible_at < *best)) {
      best = m.visible_at;
    }
  }
  return best;
}

/// Discard a collective a receiver gave up on: purge its queued blocks and
/// make push() drop future arrivals for its (never reused) tag.
void cancel_collective(World& w, int owner, int tag) {
  auto& box = w.boxes[static_cast<std::size_t>(owner)];
  std::lock_guard<std::mutex> lock(box.mu);
  box.cancelled.insert(tag);
  const auto has_tag = [tag](const Message& m) { return m.tag == tag; };
  std::erase_if(box.msgs, has_tag);
  std::erase_if(box.delayed, has_tag);
  std::erase_if(box.retained, has_tag);
}

}  // namespace

Message World::pop(int me, int src, int tag, std::size_t expected_bytes) {
  auto& box = boxes[static_cast<std::size_t>(me)];
  std::unique_lock<std::mutex> lock(box.mu);
  const double base = timeout_ms.load(std::memory_order_relaxed);
  const bool emulate_wire = latency_emulated();
  if (base <= 0) {
    for (;;) {
      check_alive();
      if (auto m = take_verified_locked(*this, box, src, tag, expected_bytes))
        return std::move(*m);
      // A match still in emulated wire flight will not be re-announced;
      // wake exactly when it lands. Otherwise sleep until a push.
      if (emulate_wire) {
        if (auto at = earliest_match_locked(box, src, tag)) {
          box.cv.wait_until(lock, *at);
          continue;
        }
      }
      box.cv.wait(lock);
    }
  }
  double t = base;
  int attempt = 0;
  auto deadline = std::chrono::steady_clock::now() + to_duration(t);
  for (;;) {
    check_alive();
    if (auto m = take_verified_locked(*this, box, src, tag, expected_bytes))
      return std::move(*m);
    auto wake = deadline;
    if (emulate_wire) {
      if (auto at = earliest_match_locked(box, src, tag)) {
        wake = std::min(wake, *at);
      }
    }
    if (box.cv.wait_until(lock, wake) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= deadline) {
      // The bounded wait expired: count it whether or not the recovery
      // attempt below succeeds (FaultStats::timeouts documents "expired
      // at least once", not "expired unrecoverably").
      stats.timeouts.fetch_add(1, std::memory_order_relaxed);
      promote_delayed_locked(box);
      const int maxr = max_retries.load(std::memory_order_relaxed);
      if (injector.load(std::memory_order_acquire) != nullptr && maxr > 0) {
        requeue_retained_locked(*this, box, src, tag);
      }
      if (auto m = take_verified_locked(*this, box, src, tag, expected_bytes))
        return std::move(*m);
      if (++attempt > maxr) {
        std::ostringstream os;
        os << "recv: timed out waiting for rank " << src << " tag " << tag
           << " after " << attempt << " attempt(s), base deadline " << base
           << " ms";
        throw CommTimeoutError(os.str());
      }
      t *= 2;  // exponential backoff
      deadline = std::chrono::steady_clock::now() + to_duration(t);
    }
  }
}

}  // namespace detail

void SimRequest::release() noexcept {
  if (kind_ == Kind::kColl && !done_ && world_ != nullptr) {
    detail::cancel_collective(*world_, owner_, tag_);
  }
  kind_ = Kind::kNone;
  done_ = true;
  world_ = nullptr;
}

Comm::Comm(std::shared_ptr<detail::World> world, int rank)
    : world_(std::move(world)), rank_(rank) {}

int Comm::size() const { return world_->nranks; }

namespace {
constexpr TransportCaps kSimCaps{
    /*name=*/"sim",
    /*max_coll_channels=*/kMaxCollChannels,
    /*alltoall_algo_choice=*/true,
    /*checksums=*/true,
    /*fault_injection=*/true,
    /*latency_emulation=*/true,
    /*traffic_events=*/true,
    /*threaded_world=*/true,
    /*cross_process=*/false,
};
}  // namespace

const TransportCaps& Comm::caps() const { return kSimCaps; }

TrafficLog& Comm::traffic() { return world_->traffic; }

std::int64_t Comm::bytes_sent() const {
  return world_->sent_bytes[static_cast<std::size_t>(rank_)];
}

void Comm::configure_resilience(const NetOptions& opts) {
  world_->configure(opts);
}

double Comm::timeout_ms() const {
  return world_->timeout_ms.load(std::memory_order_relaxed);
}

int Comm::max_retries() const {
  return world_->max_retries.load(std::memory_order_relaxed);
}

FaultStats Comm::fault_stats() const { return world_->stats.snapshot(); }

namespace {
void send_impl(detail::World& w, int src, int dst, int tag, const void* data,
               std::size_t bytes, bool record) {
  SOI_CHECK(dst >= 0 && dst < w.nranks,
            "send: destination rank " << dst << " out of range");
  const FaultInjector* inj =
      w.injector.load(std::memory_order_acquire);
  if (inj != nullptr && inj->spec().stall_rank == src &&
      inj->spec().stall_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(inj->spec().stall_ms));
  }
  detail::Message m;
  m.src = src;
  m.tag = tag;
  const double lat_s = w.message_latency_s(src, dst);
  if (lat_s > 0) {
    m.visible_at = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(lat_s));
  }
  m.payload.resize(bytes);
  if (bytes > 0) std::memcpy(m.payload.data(), data, bytes);
  if (w.checksums.load(std::memory_order_relaxed)) {
    m.crc = crc32(data, bytes);
    m.has_crc = true;
  }
  w.sent_bytes[static_cast<std::size_t>(src)] +=
      static_cast<std::int64_t>(bytes);
  if (record) {
    w.traffic.record({CommEvent::Kind::kP2P, 2,
                      static_cast<std::int64_t>(bytes), 1});
  }
  if (inj == nullptr) {
    w.push(dst, std::move(m));
    return;
  }

  // Reliable mode: stamp the channel sequence number, retain a clean copy
  // in the destination mailbox (the recovery source for drops and
  // corruption), then deliver whatever the injector decides the wire copy
  // looks like.
  m.reliable = true;
  m.seq = ++w.chan_seq[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(w.nranks) +
                       static_cast<std::size_t>(dst)];
  const FaultInjector::Action act = inj->decide(src, dst, tag, m.seq, bytes);
  auto& st = w.stats;
  auto& box = w.boxes[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    if (box.cancelled.count(tag) != 0) return;  // receiver gave this up
    box.retained.push_back(m);
    if (act.fired()) st.faults_injected.fetch_add(1, std::memory_order_relaxed);
    if (act.drop) {
      st.drops.fetch_add(1, std::memory_order_relaxed);
    } else {
      detail::Message wire = std::move(m);
      if (act.truncate && !wire.payload.empty()) {
        wire.payload.resize(wire.payload.size() / 2);
        st.truncations.fetch_add(1, std::memory_order_relaxed);
      }
      if (act.corrupt_bit >= 0 && !wire.payload.empty()) {
        const auto bit = static_cast<std::size_t>(act.corrupt_bit) %
                         (wire.payload.size() * 8);
        wire.payload[bit / 8] ^=
            static_cast<std::byte>(1u << (bit % 8));
        st.corruptions.fetch_add(1, std::memory_order_relaxed);
      }
      if (act.duplicate) {
        box.msgs.push_back(wire);  // second, independently matchable copy
        st.duplicates.fetch_add(1, std::memory_order_relaxed);
      }
      if (act.straggle_ms > 0.0) {
        // The wire copy arrives intact but late; the retained clean copy
        // keeps the original stamp so a retransmit is never slower than
        // the straggler it replaces.
        const auto base =
            wire.visible_at == std::chrono::steady_clock::time_point{}
                ? std::chrono::steady_clock::now()
                : wire.visible_at;  // stack on top of emulated wire latency
        wire.visible_at =
            base +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(act.straggle_ms));
        st.stragglers.fetch_add(1, std::memory_order_relaxed);
      }
      if (act.delay) {
        box.delayed.push_back(std::move(wire));
        st.delays.fetch_add(1, std::memory_order_relaxed);
      } else {
        box.msgs.push_back(std::move(wire));
      }
    }
  }
  box.cv.notify_all();
}

void recv_impl(detail::World& w, int me, int src, int tag, void* data,
               std::size_t bytes) {
  SOI_CHECK(src == kAnySource || (src >= 0 && src < w.nranks),
            "recv: source rank " << src << " out of range");
  detail::Message m = w.pop(me, src, tag, bytes);
  if (bytes > 0) std::memcpy(data, m.payload.data(), bytes);
}
}  // namespace

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  send_impl(*world_, rank_, dst, tag, data, bytes, /*record=*/true);
}

void Comm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  recv_impl(*world_, rank_, src, tag, data, bytes);
}

bool Comm::try_recv(int src, int tag, mspan data) {
  Request req = irecv(src, tag, data);
  return test(req);
}

Request Comm::isend_bytes(int dst, int tag, const void* data,
                          std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  send_impl(*world_, rank_, dst, tag, data, bytes, /*record=*/true);
  auto req = std::make_unique<SimRequest>();
  req->kind_ = SimRequest::Kind::kSend;
  req->done_ = true;  // buffered: complete at post time
  req->peer_ = dst;
  req->tag_ = tag;
  req->bytes_ = bytes;
  return Request(std::move(req));
}

Request Comm::isend(int dst, int tag, cspan data) {
  return isend_bytes(dst, tag, data.data(), data.size_bytes());
}

Request Comm::irecv_bytes(int src, int tag, void* data, std::size_t bytes) {
  SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
  SOI_CHECK(src == kAnySource || (src >= 0 && src < world_->nranks),
            "irecv: source rank " << src << " out of range");
  auto req = std::make_unique<SimRequest>();
  req->kind_ = SimRequest::Kind::kRecv;
  req->done_ = false;
  req->peer_ = src;
  req->tag_ = tag;
  req->data_ = data;
  req->bytes_ = bytes;
  return Request(std::move(req));
}

Request Comm::irecv(int src, int tag, mspan data) {
  return irecv_bytes(src, tag, data.data(), data.size_bytes());
}

Request Comm::ialltoall(cspan send_data, mspan recv_data, std::int64_t count,
                        AlltoallAlgo algo, int channel) {
  auto& w = *world_;
  const int p = w.nranks;
  const auto block = static_cast<std::size_t>(count);
  SOI_CHECK(count >= 0, "ialltoall: negative count");
  SOI_CHECK(channel >= 0 && channel < kMaxCollChannels,
            "ialltoall: channel " << channel << " out of range [0, "
                                  << kMaxCollChannels << ")");
  SOI_CHECK(send_data.size() >= block * static_cast<std::size_t>(p),
            "ialltoall: send buffer too small");
  SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(p),
            "ialltoall: recv buffer too small");
  const int tag = w.next_coll_tag(rank_, channel);

  // Own block: straight copy at post time.
  std::copy(send_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_,
            send_data.begin() + static_cast<std::ptrdiff_t>(block) * (rank_ + 1),
            recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);

  // Every send is posted here (buffered); only the receive side is
  // deferred. The algo picks the posting order, mirroring the blocking
  // schedules.
  if (algo == AlltoallAlgo::kPairwise) {
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      send_impl(w, rank_, to, tag,
                send_data.data() + block * static_cast<std::size_t>(to),
                block * sizeof(cplx), /*record=*/false);
    }
  } else {
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      send_impl(w, rank_, r, tag,
                send_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx), /*record=*/false);
    }
  }
  if (rank_ == 0) {
    w.traffic.record(
        {CommEvent::Kind::kAlltoall, p,
         static_cast<std::int64_t>(block * sizeof(cplx)) * (p - 1), p - 1});
  }

  auto req = std::make_unique<SimRequest>();
  req->kind_ = SimRequest::Kind::kColl;
  req->done_ = (p == 1);
  req->tag_ = tag;
  req->recv_base_ = recv_data.data();
  req->count_ = count;
  req->next_step_ = 1;
  req->world_ = world_.get();
  req->owner_ = rank_;
  return Request(std::move(req));
}

Request Comm::ialltoallv(cspan send_data,
                         std::span<const std::int64_t> send_counts,
                         std::span<const std::int64_t> send_displs,
                         mspan recv_data,
                         std::span<const std::int64_t> recv_counts,
                         std::span<const std::int64_t> recv_displs,
                         int channel) {
  auto& w = *world_;
  const int p = w.nranks;
  SOI_CHECK(send_counts.size() == static_cast<std::size_t>(p) &&
                send_displs.size() == static_cast<std::size_t>(p) &&
                recv_counts.size() == static_cast<std::size_t>(p) &&
                recv_displs.size() == static_cast<std::size_t>(p),
            "ialltoallv: counts/displs must have one entry per rank");
  SOI_CHECK(channel >= 0 && channel < kMaxCollChannels,
            "ialltoallv: channel " << channel << " out of range [0, "
                                   << kMaxCollChannels << ")");
  const int tag = w.next_coll_tag(rank_, channel);

  // Own block.
  {
    const auto sc = static_cast<std::size_t>(
        send_counts[static_cast<std::size_t>(rank_)]);
    const auto rc = static_cast<std::size_t>(
        recv_counts[static_cast<std::size_t>(rank_)]);
    SOI_CHECK(sc == rc, "ialltoallv: self send/recv count mismatch");
    std::copy_n(send_data.begin() +
                    send_displs[static_cast<std::size_t>(rank_)],
                sc,
                recv_data.begin() +
                    recv_displs[static_cast<std::size_t>(rank_)]);
  }
  std::int64_t bytes_out = 0;
  for (int step = 1; step < p; ++step) {
    const int to = (rank_ + step) % p;
    const auto sc =
        static_cast<std::size_t>(send_counts[static_cast<std::size_t>(to)]);
    send_impl(w, rank_, to, tag,
              send_data.data() + send_displs[static_cast<std::size_t>(to)],
              sc * sizeof(cplx), /*record=*/false);
    bytes_out += static_cast<std::int64_t>(sc * sizeof(cplx));
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kAlltoall, p, bytes_out, p - 1});
  }

  auto req = std::make_unique<SimRequest>();
  req->kind_ = SimRequest::Kind::kColl;
  req->done_ = (p == 1);
  req->tag_ = tag;
  req->recv_base_ = recv_data.data();
  req->count_ = -1;  // v-variant: per-source counts/displs below
  req->recv_counts_ = recv_counts.data();
  req->recv_displs_ = recv_displs.data();
  req->next_step_ = 1;
  req->world_ = world_.get();
  req->owner_ = rank_;
  return Request(std::move(req));
}

bool Comm::progress_locked(SimRequest& req) {
  auto& w = *world_;
  auto& box = w.boxes[static_cast<std::size_t>(rank_)];
  switch (req.kind_) {
    case SimRequest::Kind::kNone:
    case SimRequest::Kind::kSend:
      return true;
    case SimRequest::Kind::kRecv: {
      auto m = detail::take_verified_locked(w, box, req.peer_, req.tag_,
                                            req.bytes_);
      if (!m.has_value()) return false;
      if (!m->payload.empty()) {
        std::memcpy(req.data_, m->payload.data(), m->payload.size());
      }
      req.src_matched_ = m->src;
      req.done_ = true;
      return true;
    }
    case SimRequest::Kind::kColl: {
      // Drain the remaining blocks in ring order: step k reads from
      // (rank - k) mod P. Ring order keeps the scan deterministic and
      // bounded; every block lands eventually because all sends were
      // posted when the collective was.
      const int p = w.nranks;
      while (req.next_step_ < p) {
        const int from = (rank_ - req.next_step_ + p) % p;
        std::int64_t rc = req.count_;
        std::int64_t rd = req.count_ * from;
        if (req.count_ < 0) {
          rc = req.recv_counts_[static_cast<std::size_t>(from)];
          rd = req.recv_displs_[static_cast<std::size_t>(from)];
        }
        auto m = detail::take_verified_locked(
            w, box, from, req.tag_,
            static_cast<std::size_t>(rc) * sizeof(cplx));
        if (!m.has_value()) return false;
        if (!m->payload.empty()) {
          std::memcpy(req.recv_base_ + rd, m->payload.data(),
                      m->payload.size());
        }
        ++req.next_step_;
      }
      req.done_ = true;
      return true;
    }
  }
  return false;
}

bool Comm::test(Request& req) {
  auto* st = static_cast<SimRequest*>(req.state());
  if (st == nullptr || st->done_) return true;
  auto& box = world_->boxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> lock(box.mu);
  return progress_locked(*st);
}

bool Comm::wait_for(Request& handle, double timeout_ms) {
  auto* st = static_cast<SimRequest*>(handle.state());
  if (st == nullptr || st->done_) return true;
  SimRequest& req = *st;
  auto& w = *world_;
  auto& box = w.boxes[static_cast<std::size_t>(rank_)];
  // The (src, tag) piece this request blocks on next: the posted source
  // for a recv, the current ring step for a collective. Used to wake a
  // blocked wait exactly when an emulated-wire match becomes visible.
  const auto pending_earliest =
      [&]() -> std::optional<std::chrono::steady_clock::time_point> {
    if (!w.latency_emulated()) {
      return std::nullopt;
    }
    if (req.kind_ == SimRequest::Kind::kRecv) {
      return detail::earliest_match_locked(box, req.peer_, req.tag_);
    }
    if (req.kind_ == SimRequest::Kind::kColl) {
      const int p = w.nranks;
      const int from = (rank_ - req.next_step_ + p) % p;
      return detail::earliest_match_locked(box, from, req.tag_);
    }
    return std::nullopt;
  };
  std::unique_lock<std::mutex> lock(box.mu);
  if (progress_locked(req)) return true;
  if (timeout_ms <= 0) {
    while (!progress_locked(req)) {
      w.check_alive();
      if (auto at = pending_earliest()) {
        box.cv.wait_until(lock, *at);
      } else {
        box.cv.wait(lock);
      }
    }
    return true;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + detail::to_duration(timeout_ms);
  for (;;) {
    w.check_alive();
    if (progress_locked(req)) return true;
    auto wake = deadline;
    if (auto at = pending_earliest()) wake = std::min(wake, *at);
    if (box.cv.wait_until(lock, wake) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= deadline) {
      // Deadline expired: promote injector-parked messages, re-queue the
      // retained clean copies of this request's pending pieces, and give
      // progress one final attempt before reporting back.
      detail::promote_delayed_locked(box);
      if (w.injector.load(std::memory_order_acquire) != nullptr &&
          w.max_retries.load(std::memory_order_relaxed) > 0) {
        if (req.kind_ == SimRequest::Kind::kRecv) {
          detail::requeue_retained_locked(w, box, req.peer_, req.tag_);
        } else if (req.kind_ == SimRequest::Kind::kColl) {
          const int p = w.nranks;
          for (int k = req.next_step_; k < p; ++k) {
            detail::requeue_retained_locked(w, box, (rank_ - k + p) % p,
                                            req.tag_);
          }
        }
      }
      const bool ok = progress_locked(req);
      if (!ok) w.stats.timeouts.fetch_add(1, std::memory_order_relaxed);
      return ok;
    }
  }
}

void Comm::wait(Request& req) {
  auto* st = static_cast<SimRequest*>(req.state());
  if (st == nullptr || st->done_) return;
  const double base = world_->timeout_ms.load(std::memory_order_relaxed);
  if (base <= 0) {
    wait_for(req, 0);  // blocks forever, wire-latency aware
    return;
  }
  double t = base;
  const int maxr = world_->max_retries.load(std::memory_order_relaxed);
  for (int attempt = 0;; ++attempt) {
    if (wait_for(req, t)) return;
    if (attempt >= maxr) {
      std::ostringstream os;
      os << "wait: request (tag " << st->tag_ << ") timed out after "
         << (attempt + 1) << " attempt(s), base deadline " << base << " ms";
      throw CommTimeoutError(os.str());
    }
    t *= 2;  // exponential backoff
  }
}

void Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Comm::sendrecv(int dst, cspan send_data, int src, mspan recv_data,
                    int tag) {
  // Sends never block (buffered), so send-then-recv cannot deadlock even in
  // a fully cyclic exchange pattern.
  send(dst, tag, send_data);
  recv(src, tag, recv_data);
}

void Comm::barrier() {
  auto& w = *world_;
  std::unique_lock<std::mutex> lock(w.bar_mu);
  w.check_alive();
  const std::uint64_t gen = w.bar_gen;
  if (++w.bar_waiting == w.nranks) {
    w.bar_waiting = 0;
    ++w.bar_gen;
    w.bar_cv.notify_all();
  } else {
    w.bar_cv.wait(lock, [&w, gen] {
      return w.bar_gen != gen ||
             w.aborted.load(std::memory_order_acquire);
    });
    if (w.bar_gen == gen) w.check_alive();  // woken by abort, not release
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kBarrier, w.nranks, 0, 1});
  }
}

void Comm::bcast(mspan data, int root) {
  auto& w = *world_;
  SOI_CHECK(root >= 0 && root < w.nranks, "bcast: bad root " << root);
  if (rank_ == root) {
    for (int r = 0; r < w.nranks; ++r) {
      if (r == root) continue;
      send_impl(w, rank_, r, detail::kTagBcast, data.data(),
                data.size_bytes(), /*record=*/false);
    }
    w.traffic.record({CommEvent::Kind::kBcast, w.nranks,
                      static_cast<std::int64_t>(data.size_bytes()),
                      w.nranks - 1});
  } else {
    recv_impl(w, rank_, root, detail::kTagBcast, data.data(),
              data.size_bytes());
  }
}

void Comm::gather(cspan send_data, mspan recv_data, int root) {
  auto& w = *world_;
  const std::size_t block = send_data.size();
  if (rank_ == root) {
    SOI_CHECK(recv_data.size() >=
                  block * static_cast<std::size_t>(w.nranks),
              "gather: receive buffer too small");
    std::copy(send_data.begin(), send_data.end(),
              recv_data.begin() +
                  static_cast<std::ptrdiff_t>(block) * root);
    for (int r = 0; r < w.nranks; ++r) {
      if (r == root) continue;
      recv_impl(w, rank_, r, detail::kTagGather,
                recv_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx));
    }
    w.traffic.record({CommEvent::Kind::kAllgather, w.nranks,
                      static_cast<std::int64_t>(block * sizeof(cplx)), 1});
  } else {
    send_impl(w, rank_, root, detail::kTagGather, send_data.data(),
              send_data.size_bytes(), /*record=*/false);
  }
}

void Comm::allgather(cspan send_data, mspan recv_data) {
  auto& w = *world_;
  const std::size_t block = send_data.size();
  SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(w.nranks),
            "allgather: receive buffer too small");
  for (int r = 0; r < w.nranks; ++r) {
    if (r == rank_) continue;
    send_impl(w, rank_, r, detail::kTagAllgather, send_data.data(),
              send_data.size_bytes(), /*record=*/false);
  }
  std::copy(send_data.begin(), send_data.end(),
            recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);
  for (int r = 0; r < w.nranks; ++r) {
    if (r == rank_) continue;
    recv_impl(w, rank_, r, detail::kTagAllgather,
              recv_data.data() + block * static_cast<std::size_t>(r),
              block * sizeof(cplx));
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kAllgather, w.nranks,
                      static_cast<std::int64_t>(block * sizeof(cplx) *
                                                static_cast<std::size_t>(
                                                    w.nranks - 1)),
                      w.nranks - 1});
  }
}

namespace {
double reduce_rendezvous(detail::World& w, double value, bool is_sum) {
  std::unique_lock<std::mutex> lock(w.red_mu);
  w.check_alive();
  const std::uint64_t gen = w.red_gen;
  if (w.red_count == 0) {
    w.red_acc = value;
  } else {
    w.red_acc = is_sum ? w.red_acc + value : std::max(w.red_acc, value);
  }
  if (++w.red_count == w.nranks) {
    w.red_result = w.red_acc;
    w.red_count = 0;
    ++w.red_gen;
    w.red_cv.notify_all();
    w.traffic.record({CommEvent::Kind::kAllreduce, w.nranks,
                      static_cast<std::int64_t>(sizeof(double)), 1});
    return w.red_result;
  }
  w.red_cv.wait(lock, [&w, gen] {
    return w.red_gen != gen || w.aborted.load(std::memory_order_acquire);
  });
  if (w.red_gen == gen) w.check_alive();  // woken by abort, not completion
  return w.red_result;
}

void reduce_vec_rendezvous(detail::World& w, std::span<double> values) {
  std::unique_lock<std::mutex> lock(w.red_mu);
  w.check_alive();
  const std::uint64_t gen = w.red_gen;
  if (w.red_count == 0) {
    w.red_vec_acc.assign(values.begin(), values.end());
  } else {
    SOI_CHECK(w.red_vec_acc.size() == values.size(),
              "allreduce: vector length mismatch across ranks");
    for (std::size_t i = 0; i < values.size(); ++i) {
      w.red_vec_acc[i] += values[i];
    }
  }
  if (++w.red_count == w.nranks) {
    w.red_vec_result = w.red_vec_acc;
    w.red_count = 0;
    ++w.red_gen;
    w.red_cv.notify_all();
    w.traffic.record({CommEvent::Kind::kAllreduce, w.nranks,
                      static_cast<std::int64_t>(values.size_bytes()), 1});
  } else {
    w.red_cv.wait(lock, [&w, gen] {
      return w.red_gen != gen || w.aborted.load(std::memory_order_acquire);
    });
    if (w.red_gen == gen) w.check_alive();  // woken by abort, not completion
  }
  std::copy(w.red_vec_result.begin(), w.red_vec_result.end(), values.begin());
}
}  // namespace

double Comm::allreduce_sum(double value) {
  return reduce_rendezvous(*world_, value, /*is_sum=*/true);
}

double Comm::allreduce_max(double value) {
  return reduce_rendezvous(*world_, value, /*is_sum=*/false);
}

void Comm::allreduce_sum(std::span<double> values) {
  reduce_vec_rendezvous(*world_, values);
}

bool Comm::resilience_active() const {
  return world_->injector.load(std::memory_order_acquire) != nullptr ||
         world_->timeout_ms.load(std::memory_order_relaxed) > 0;
}

void Comm::alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                    AlltoallAlgo algo) {
  auto& w = *world_;
  const int p = w.nranks;
  const auto block = static_cast<std::size_t>(count);
  SOI_CHECK(send_data.size() >= block * static_cast<std::size_t>(p),
            "alltoall: send buffer too small");
  SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(p),
            "alltoall: recv buffer too small");

  // Own block: straight copy.
  std::copy(send_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_,
            send_data.begin() + static_cast<std::ptrdiff_t>(block) * (rank_ + 1),
            recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);

  if (algo == AlltoallAlgo::kPairwise) {
    // Ring schedule: step k exchanges with (rank+k) / (rank-k).
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      const int from = (rank_ - step + p) % p;
      send_impl(w, rank_, to, detail::kTagAlltoall,
                send_data.data() + block * static_cast<std::size_t>(to),
                block * sizeof(cplx), /*record=*/false);
      recv_impl(w, rank_, from, detail::kTagAlltoall,
                recv_data.data() + block * static_cast<std::size_t>(from),
                block * sizeof(cplx));
    }
  } else {
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      send_impl(w, rank_, r, detail::kTagAlltoall,
                send_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx), /*record=*/false);
    }
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      recv_impl(w, rank_, r, detail::kTagAlltoall,
                recv_data.data() + block * static_cast<std::size_t>(r),
                block * sizeof(cplx));
    }
  }
  if (rank_ == 0) {
    w.traffic.record(
        {CommEvent::Kind::kAlltoall, p,
         static_cast<std::int64_t>(block * sizeof(cplx)) * (p - 1), p - 1});
  }
}

void Comm::alltoallv(cspan send_data,
                     std::span<const std::int64_t> send_counts,
                     std::span<const std::int64_t> send_displs,
                     mspan recv_data,
                     std::span<const std::int64_t> recv_counts,
                     std::span<const std::int64_t> recv_displs) {
  auto& w = *world_;
  const int p = w.nranks;
  SOI_CHECK(send_counts.size() == static_cast<std::size_t>(p) &&
                send_displs.size() == static_cast<std::size_t>(p) &&
                recv_counts.size() == static_cast<std::size_t>(p) &&
                recv_displs.size() == static_cast<std::size_t>(p),
            "alltoallv: counts/displs must have one entry per rank");

  // Own block.
  {
    const auto sc = static_cast<std::size_t>(send_counts[static_cast<std::size_t>(rank_)]);
    const auto rc = static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(rank_)]);
    SOI_CHECK(sc == rc, "alltoallv: self send/recv count mismatch");
    std::copy_n(send_data.begin() +
                    send_displs[static_cast<std::size_t>(rank_)],
                sc,
                recv_data.begin() +
                    recv_displs[static_cast<std::size_t>(rank_)]);
  }
  std::int64_t bytes_out = 0;
  for (int step = 1; step < p; ++step) {
    const int to = (rank_ + step) % p;
    const int from = (rank_ - step + p) % p;
    const auto sc = static_cast<std::size_t>(send_counts[static_cast<std::size_t>(to)]);
    const auto rc = static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(from)]);
    send_impl(w, rank_, to, detail::kTagAlltoallv,
              send_data.data() + send_displs[static_cast<std::size_t>(to)],
              sc * sizeof(cplx), /*record=*/false);
    recv_impl(w, rank_, from, detail::kTagAlltoallv,
              recv_data.data() + recv_displs[static_cast<std::size_t>(from)],
              rc * sizeof(cplx));
    bytes_out += static_cast<std::int64_t>(sc * sizeof(cplx));
  }
  if (rank_ == 0) {
    w.traffic.record({CommEvent::Kind::kAlltoall, p, bytes_out, p - 1});
  }
}

namespace {
/// Environment knobs fill any NetOptions field left at its default:
/// SOI_FAULTS (spec string), SOI_TIMEOUT_MS, SOI_MAX_RETRIES,
/// SOI_CHECKSUMS=0.
NetOptions resolve_env_options(NetOptions opts) {
  if (!opts.faults.any()) {
    const std::string spec = env_str("SOI_FAULTS", "");
    if (!spec.empty()) opts.faults = FaultSpec::parse(spec);
  }
  if (opts.timeout_ms <= 0) opts.timeout_ms = env_f64("SOI_TIMEOUT_MS", 0.0);
  opts.max_retries =
      static_cast<int>(env_i64("SOI_MAX_RETRIES", opts.max_retries));
  if (env_i64("SOI_CHECKSUMS", opts.checksums ? 1 : 0) == 0) {
    opts.checksums = false;
  }
  return opts;
}
}  // namespace

std::vector<CommEvent> run_ranks(int nranks,
                                 const std::function<void(Comm&)>& body) {
  return run_ranks(nranks, NetOptions{}, body);
}

std::vector<CommEvent> run_ranks(int nranks, const NetOptions& opts,
                                 const std::function<void(Comm&)>& body) {
  SOI_CHECK(nranks >= 1, "run_ranks: need at least one rank");
  const NetOptions resolved = resolve_env_options(opts);
  auto world = std::make_shared<detail::World>(nranks);
  // Only a non-default configuration claims the configure slot; otherwise
  // it stays open for DistOptions-level plumbing to install one later.
  if (resolved.faults.any() || resolved.timeout_ms > 0 ||
      !resolved.checksums || resolved.wire_latency_us > 0 ||
      resolved.intra_latency_us > 0) {
    world->configure(resolved);
  }
  // Primary errors (a rank body failed on its own) are kept separate from
  // induced WorldAbortedErrors (a rank unwound only because a peer already
  // failed) so the root cause is what callers see. Any failure aborts the
  // world: peers blocked on messages or rendezvous that can now never
  // arrive wake up and unwind instead of deadlocking the join below.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> aborts(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &body, &errors, &aborts, r] {
      try {
        Comm comm(world, r);
        body(comm);
      } catch (const WorldAbortedError&) {
        aborts[static_cast<std::size_t>(r)] = std::current_exception();
        world->abort_world();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        world->abort_world();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (const auto& e : aborts) {
    if (e) std::rethrow_exception(e);
  }
  return world->traffic.events();
}

void register_sim_transport() {
  TransportRegistry::instance().register_backend(
      "sim",
      TransportBackend{
          kSimCaps,
          [](int nranks, const NetOptions& opts, const WorldBody& body) {
            return run_ranks(nranks, opts, [&body](Comm& comm) { body(comm); });
          },
      });
}

}  // namespace soi::net
