#include "net/shm.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <new>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "net/registry.hpp"

namespace soi::net {

namespace {

// ---------------------------------------------------------------------------
// Shared-region layout
// ---------------------------------------------------------------------------

constexpr std::size_t kRingCapacity = std::size_t{1} << 20;  ///< per-rank inbox
constexpr std::size_t kMaxFragPayload = std::size_t{60} << 10;
constexpr std::size_t kMaxReduceLen = 1024;  ///< doubles per reduction
constexpr int kMaxShmRanks = 64;
constexpr std::size_t kMaxErrWhat = 480;
/// Cap on any single condition wait: the staleness bound of the abort
/// flag — a dead peer is observed within this many milliseconds even if
/// its wakeup broadcast was lost with it.
constexpr double kAbortPollMs = 25.0;

// Internal tags mirror SimMPI's (user tags must be >= 0).
constexpr int kTagBcast = -2;
constexpr int kTagGather = -3;
constexpr int kTagAllgather = -4;
constexpr int kTagAlltoall = -5;
constexpr int kTagAlltoallv = -6;
/// Nonblocking collectives get a unique tag per posting — the same
/// kTagICollBase - (seq * kMaxChannels + channel) encoding as SimMPI, with
/// the per-(rank, channel) counters living in child-private memory (every
/// rank advances its own counters identically because all ranks post one
/// channel's collectives in the same program order).
constexpr int kTagICollBase = -16;

/// One on-wire fragment. A message larger than kMaxFragPayload travels as
/// several frames sharing (src, seq); the CRC covers the REASSEMBLED
/// payload and is carried redundantly in every fragment.
struct FrameHeader {
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint64_t seq = 0;         ///< per (src -> dst) message sequence
  std::uint64_t msg_bytes = 0;   ///< total payload of the whole message
  std::uint64_t frag_offset = 0; ///< where this fragment lands
  std::uint32_t frag_bytes = 0;  ///< payload bytes in this frame
  std::uint32_t crc = 0;
  std::uint32_t has_crc = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(FrameHeader) == 48, "frame header layout is part of the wire format");

/// Ring-buffer control block; the data area follows at a fixed offset.
/// head/tail are monotonic byte counters (offset = counter % capacity).
struct RingHdr {
  pthread_mutex_t mu;
  pthread_cond_t cv;  ///< signalled on push (data) and on drain (space)
  std::uint64_t head;
  std::uint64_t tail;
};

/// Typed error a failing rank records for the parent to rethrow.
struct ErrSlot {
  std::int32_t valid;   ///< 0 = none, 1 = primary, 2 = induced world-abort
  std::int32_t status;  ///< soi::Status of the primary error
  char what[kMaxErrWhat];
};

struct WorldHdr {
  std::int32_t nranks;
  std::atomic<int> aborted;

  // Resilience configuration (first configure_resilience caller wins).
  std::atomic<int> configured;
  std::atomic<double> timeout_ms;
  std::atomic<int> max_retries;
  std::atomic<int> checksums;

  // World-wide counters surfaced through fault_stats().
  std::atomic<std::int64_t> checksum_failures;
  std::atomic<std::int64_t> timeouts;

  // Generation-counted barrier.
  pthread_mutex_t bar_mu;
  pthread_cond_t bar_cv;
  std::int32_t bar_waiting;
  std::uint64_t bar_gen;

  // Generation-counted reduction rendezvous. Contributions land in
  // per-rank slots; the LAST arrival reduces them in RANK ORDER, so the
  // result bits are identical on every rank and independent of arrival
  // order.
  pthread_mutex_t red_mu;
  pthread_cond_t red_cv;
  std::int32_t red_count;
  std::uint64_t red_gen;
  std::uint64_t red_len;
  std::int32_t red_op;  ///< 0 = sum, 1 = max
};

constexpr std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

struct Layout {
  std::size_t hdr_off;
  std::size_t err_off;
  std::size_t rings_off;
  std::size_t ring_stride;  ///< RingHdr + data area, per rank
  std::size_t red_off;      ///< (nranks + 1) * kMaxReduceLen doubles
  std::size_t total;
};

Layout compute_layout(int nranks) {
  Layout l{};
  l.hdr_off = 0;
  l.err_off = align_up(sizeof(WorldHdr), 64);
  l.rings_off = align_up(
      l.err_off + sizeof(ErrSlot) * static_cast<std::size_t>(nranks), 64);
  l.ring_stride = align_up(sizeof(RingHdr), 64) + kRingCapacity;
  l.red_off = align_up(
      l.rings_off + l.ring_stride * static_cast<std::size_t>(nranks), 64);
  l.total = align_up(l.red_off + sizeof(double) * kMaxReduceLen *
                                     static_cast<std::size_t>(nranks + 1),
                     4096);
  return l;
}

// ---------------------------------------------------------------------------
// pthread helpers (process-shared, monotonic-clock timed waits)
// ---------------------------------------------------------------------------

void init_shared_mutex(pthread_mutex_t* mu) {
  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  pthread_mutex_init(mu, &attr);
  pthread_mutexattr_destroy(&attr);
}

void init_shared_cond(pthread_cond_t* cv) {
  pthread_condattr_t attr;
  pthread_condattr_init(&attr);
  pthread_condattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  pthread_condattr_setclock(&attr, CLOCK_MONOTONIC);
  pthread_cond_init(cv, &attr);
  pthread_condattr_destroy(&attr);
}

class MutexLock {
 public:
  explicit MutexLock(pthread_mutex_t* mu) : mu_(mu) { pthread_mutex_lock(mu_); }
  ~MutexLock() { pthread_mutex_unlock(mu_); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  pthread_mutex_t* mu_;
};

/// Bounded condition wait (caller holds `mu`); never longer than `ms`.
void timed_wait_ms(pthread_cond_t* cv, pthread_mutex_t* mu, double ms) {
  if (ms <= 0) ms = 0.1;
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const auto ns = static_cast<long>(ms * 1e6);
  ts.tv_nsec += ns % 1000000000L;
  ts.tv_sec += ns / 1000000000L + ts.tv_nsec / 1000000000L;
  ts.tv_nsec %= 1000000000L;
  pthread_cond_timedwait(cv, mu, &ts);
}

// ---------------------------------------------------------------------------
// The per-rank communicator (lives in the CHILD process)
// ---------------------------------------------------------------------------

/// A message reassembled out of the ring, waiting in the process-local
/// mailbox for a matching receive.
struct LocalMsg {
  int src = 0;
  int tag = 0;
  std::uint64_t seq = 0;
  std::uint32_t crc = 0;
  bool has_crc = false;
  std::vector<std::byte> payload;
};

class ShmComm;

/// shm's concrete request state. Passive, like SimRequest: completion is
/// driven by the owning rank through test/wait. Destruction of a live
/// collective cancels it via the owning communicator.
class ShmRequest final : public RequestState {
 public:
  ShmRequest() = default;
  ~ShmRequest() override;

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] int source() const override { return src_matched_; }

 private:
  friend class ShmComm;
  enum class Kind : std::uint8_t { kNone, kSend, kRecv, kColl };

  Kind kind_ = Kind::kNone;
  bool done_ = true;
  int peer_ = kAnySource;
  int tag_ = 0;
  int src_matched_ = -1;
  void* data_ = nullptr;
  std::size_t bytes_ = 0;

  int next_step_ = 1;
  cplx* recv_base_ = nullptr;
  std::int64_t count_ = -1;
  const std::int64_t* recv_counts_ = nullptr;
  const std::int64_t* recv_displs_ = nullptr;

  ShmComm* owner_ = nullptr;  ///< cancellation route for dropped collectives
};

constexpr TransportCaps kShmCaps{
    /*name=*/"shm",
    /*max_coll_channels=*/kMaxChannels,
    /*alltoall_algo_choice=*/false,
    /*checksums=*/true,
    /*fault_injection=*/false,
    /*latency_emulation=*/false,
    /*traffic_events=*/false,
    /*threaded_world=*/false,
    /*cross_process=*/true,
};

class ShmComm final : public Transport {
 public:
  ShmComm(std::byte* base, const Layout& lay, int rank, int nranks)
      : base_(base),
        lay_(lay),
        hdr_(reinterpret_cast<WorldHdr*>(base)),
        rank_(rank),
        nranks_(nranks),
        send_seq_(static_cast<std::size_t>(nranks), 0),
        last_seq_from_(static_cast<std::size_t>(nranks), 0),
        coll_seq_(static_cast<std::size_t>(kMaxChannels), 0) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return nranks_; }
  [[nodiscard]] const TransportCaps& caps() const override { return kShmCaps; }

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override {
    SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
    send_message(dst, tag, data, bytes);
  }

  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override {
    SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
    recv_message(src, tag, data, bytes);
  }

  void sendrecv(int dst, cspan send_data, int src, mspan recv_data,
                int tag) override {
    // Sends never need a matching receive to complete (a full ring is
    // drained by its owner or by us below), so send-then-recv cannot
    // deadlock even in a fully cyclic exchange.
    send(dst, tag, send_data);
    recv(src, tag, recv_data);
  }

  bool try_recv(int src, int tag, mspan data) override {
    Request req = irecv(src, tag, data);
    return test(req);
  }

  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override {
    SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
    send_message(dst, tag, data, bytes);
    auto req = std::make_unique<ShmRequest>();
    req->kind_ = ShmRequest::Kind::kSend;
    req->done_ = true;  // buffered: complete at post time
    req->peer_ = dst;
    req->tag_ = tag;
    req->bytes_ = bytes;
    return Request(std::move(req));
  }

  Request isend(int dst, int tag, cspan data) override {
    return isend_bytes(dst, tag, data.data(), data.size_bytes());
  }

  Request irecv_bytes(int src, int tag, void* data,
                      std::size_t bytes) override {
    SOI_CHECK(tag >= 0, "user tags must be non-negative (got " << tag << ")");
    return make_recv(src, tag, data, bytes);
  }

  Request irecv(int src, int tag, mspan data) override {
    return irecv_bytes(src, tag, data.data(), data.size_bytes());
  }

  Request ialltoall(cspan send_data, mspan recv_data, std::int64_t count,
                    AlltoallAlgo algo, int channel) override {
    (void)algo;  // one native schedule (caps().alltoall_algo_choice == false)
    const int p = nranks_;
    const auto block = static_cast<std::size_t>(count);
    SOI_CHECK(count >= 0, "ialltoall: negative count");
    SOI_CHECK(channel >= 0 && channel < kMaxChannels,
              "ialltoall: channel " << channel << " out of range [0, "
                                    << kMaxChannels << ")");
    SOI_CHECK(send_data.size() >= block * static_cast<std::size_t>(p),
              "ialltoall: send buffer too small");
    SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(p),
              "ialltoall: recv buffer too small");
    const int tag = next_coll_tag(channel);

    std::copy(send_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_,
              send_data.begin() +
                  static_cast<std::ptrdiff_t>(block) * (rank_ + 1),
              recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      send_message(to, tag,
                   send_data.data() + block * static_cast<std::size_t>(to),
                   block * sizeof(cplx));
    }

    auto req = std::make_unique<ShmRequest>();
    req->kind_ = ShmRequest::Kind::kColl;
    req->done_ = (p == 1);
    req->tag_ = tag;
    req->recv_base_ = recv_data.data();
    req->count_ = count;
    req->next_step_ = 1;
    req->owner_ = this;
    return Request(std::move(req));
  }

  Request ialltoallv(cspan send_data,
                     std::span<const std::int64_t> send_counts,
                     std::span<const std::int64_t> send_displs,
                     mspan recv_data,
                     std::span<const std::int64_t> recv_counts,
                     std::span<const std::int64_t> recv_displs,
                     int channel) override {
    const int p = nranks_;
    SOI_CHECK(send_counts.size() == static_cast<std::size_t>(p) &&
                  send_displs.size() == static_cast<std::size_t>(p) &&
                  recv_counts.size() == static_cast<std::size_t>(p) &&
                  recv_displs.size() == static_cast<std::size_t>(p),
              "ialltoallv: counts/displs must have one entry per rank");
    SOI_CHECK(channel >= 0 && channel < kMaxChannels,
              "ialltoallv: channel " << channel << " out of range [0, "
                                     << kMaxChannels << ")");
    const int tag = next_coll_tag(channel);

    {
      const auto sc = static_cast<std::size_t>(
          send_counts[static_cast<std::size_t>(rank_)]);
      const auto rc = static_cast<std::size_t>(
          recv_counts[static_cast<std::size_t>(rank_)]);
      SOI_CHECK(sc == rc, "ialltoallv: self send/recv count mismatch");
      std::copy_n(send_data.begin() +
                      send_displs[static_cast<std::size_t>(rank_)],
                  sc,
                  recv_data.begin() +
                      recv_displs[static_cast<std::size_t>(rank_)]);
    }
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      const auto sc =
          static_cast<std::size_t>(send_counts[static_cast<std::size_t>(to)]);
      send_message(to, tag,
                   send_data.data() + send_displs[static_cast<std::size_t>(to)],
                   sc * sizeof(cplx));
    }

    auto req = std::make_unique<ShmRequest>();
    req->kind_ = ShmRequest::Kind::kColl;
    req->done_ = (p == 1);
    req->tag_ = tag;
    req->recv_base_ = recv_data.data();
    req->count_ = -1;  // v-variant
    req->recv_counts_ = recv_counts.data();
    req->recv_displs_ = recv_displs.data();
    req->next_step_ = 1;
    req->owner_ = this;
    return Request(std::move(req));
  }

  bool test(Request& req) override {
    auto* st = static_cast<ShmRequest*>(req.state());
    if (st == nullptr || st->done_) return true;
    drain_ring();
    return progress(*st);
  }

  void wait(Request& req) override {
    auto* st = static_cast<ShmRequest*>(req.state());
    if (st == nullptr || st->done_) return;
    const double base = hdr_->timeout_ms.load(std::memory_order_relaxed);
    if (base <= 0) {
      wait_for(req, 0);
      return;
    }
    double t = base;
    const int maxr = hdr_->max_retries.load(std::memory_order_relaxed);
    for (int attempt = 0;; ++attempt) {
      if (wait_for(req, t)) return;
      if (attempt >= maxr) {
        std::ostringstream os;
        os << "shm wait: request (tag " << st->tag_ << ") timed out after "
           << (attempt + 1) << " attempt(s), base deadline " << base << " ms";
        throw CommTimeoutError(os.str());
      }
      t *= 2;  // exponential backoff
    }
  }

  bool wait_for(Request& req, double timeout_ms) override {
    auto* st = static_cast<ShmRequest*>(req.state());
    if (st == nullptr || st->done_) return true;
    const bool bounded = timeout_ms > 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(bounded ? timeout_ms : 0.0);
    for (;;) {
      drain_ring();
      if (progress(*st)) return true;
      check_alive();
      double wait_ms = kAbortPollMs;
      if (bounded) {
        const double remaining =
            std::chrono::duration<double, std::milli>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0) {
          drain_ring();
          const bool ok = progress(*st);
          if (!ok) {
            hdr_->timeouts.fetch_add(1, std::memory_order_relaxed);
          }
          return ok;
        }
        wait_ms = std::min(wait_ms, remaining);
      }
      wait_for_inbox(wait_ms);
    }
  }

  void waitall(std::span<Request> reqs) override {
    for (auto& r : reqs) wait(r);
  }

  void barrier() override {
    auto& h = *hdr_;
    MutexLock lock(&h.bar_mu);
    check_alive();
    const std::uint64_t gen = h.bar_gen;
    if (++h.bar_waiting == nranks_) {
      h.bar_waiting = 0;
      ++h.bar_gen;
      pthread_cond_broadcast(&h.bar_cv);
    } else {
      while (h.bar_gen == gen) {
        check_alive();
        timed_wait_ms(&h.bar_cv, &h.bar_mu, kAbortPollMs);
      }
    }
  }

  void bcast(mspan data, int root) override {
    SOI_CHECK(root >= 0 && root < nranks_, "bcast: bad root " << root);
    if (rank_ == root) {
      for (int r = 0; r < nranks_; ++r) {
        if (r == root) continue;
        send_message(r, kTagBcast, data.data(), data.size_bytes());
      }
    } else {
      recv_message(root, kTagBcast, data.data(), data.size_bytes());
    }
  }

  void gather(cspan send_data, mspan recv_data, int root) override {
    const std::size_t block = send_data.size();
    if (rank_ == root) {
      SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(nranks_),
                "gather: receive buffer too small");
      std::copy(send_data.begin(), send_data.end(),
                recv_data.begin() + static_cast<std::ptrdiff_t>(block) * root);
      for (int r = 0; r < nranks_; ++r) {
        if (r == root) continue;
        recv_message(r, kTagGather,
                     recv_data.data() + block * static_cast<std::size_t>(r),
                     block * sizeof(cplx));
      }
    } else {
      send_message(root, kTagGather, send_data.data(), send_data.size_bytes());
    }
  }

  void allgather(cspan send_data, mspan recv_data) override {
    const std::size_t block = send_data.size();
    SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(nranks_),
              "allgather: receive buffer too small");
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_) continue;
      send_message(r, kTagAllgather, send_data.data(), send_data.size_bytes());
    }
    std::copy(send_data.begin(), send_data.end(),
              recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_) continue;
      recv_message(r, kTagAllgather,
                   recv_data.data() + block * static_cast<std::size_t>(r),
                   block * sizeof(cplx));
    }
  }

  double allreduce_sum(double value) override {
    double v[1] = {value};
    reduce(std::span<double>(v, 1), /*op=*/0);
    return v[0];
  }

  double allreduce_max(double value) override {
    double v[1] = {value};
    reduce(std::span<double>(v, 1), /*op=*/1);
    return v[0];
  }

  void allreduce_sum(std::span<double> values) override {
    reduce(values, /*op=*/0);
  }

  void alltoall(cspan send_data, mspan recv_data, std::int64_t count,
                AlltoallAlgo algo) override {
    (void)algo;
    const int p = nranks_;
    const auto block = static_cast<std::size_t>(count);
    SOI_CHECK(send_data.size() >= block * static_cast<std::size_t>(p),
              "alltoall: send buffer too small");
    SOI_CHECK(recv_data.size() >= block * static_cast<std::size_t>(p),
              "alltoall: recv buffer too small");
    std::copy(send_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_,
              send_data.begin() +
                  static_cast<std::ptrdiff_t>(block) * (rank_ + 1),
              recv_data.begin() + static_cast<std::ptrdiff_t>(block) * rank_);
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      const int from = (rank_ - step + p) % p;
      send_message(to, kTagAlltoall,
                   send_data.data() + block * static_cast<std::size_t>(to),
                   block * sizeof(cplx));
      recv_message(from, kTagAlltoall,
                   recv_data.data() + block * static_cast<std::size_t>(from),
                   block * sizeof(cplx));
    }
  }

  void alltoallv(cspan send_data, std::span<const std::int64_t> send_counts,
                 std::span<const std::int64_t> send_displs, mspan recv_data,
                 std::span<const std::int64_t> recv_counts,
                 std::span<const std::int64_t> recv_displs) override {
    const int p = nranks_;
    SOI_CHECK(send_counts.size() == static_cast<std::size_t>(p) &&
                  send_displs.size() == static_cast<std::size_t>(p) &&
                  recv_counts.size() == static_cast<std::size_t>(p) &&
                  recv_displs.size() == static_cast<std::size_t>(p),
              "alltoallv: counts/displs must have one entry per rank");
    {
      const auto sc = static_cast<std::size_t>(
          send_counts[static_cast<std::size_t>(rank_)]);
      const auto rc = static_cast<std::size_t>(
          recv_counts[static_cast<std::size_t>(rank_)]);
      SOI_CHECK(sc == rc, "alltoallv: self send/recv count mismatch");
      std::copy_n(send_data.begin() +
                      send_displs[static_cast<std::size_t>(rank_)],
                  sc,
                  recv_data.begin() +
                      recv_displs[static_cast<std::size_t>(rank_)]);
    }
    for (int step = 1; step < p; ++step) {
      const int to = (rank_ + step) % p;
      const int from = (rank_ - step + p) % p;
      const auto sc =
          static_cast<std::size_t>(send_counts[static_cast<std::size_t>(to)]);
      const auto rc =
          static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(from)]);
      send_message(to, kTagAlltoallv,
                   send_data.data() + send_displs[static_cast<std::size_t>(to)],
                   sc * sizeof(cplx));
      recv_message(
          from, kTagAlltoallv,
          recv_data.data() + recv_displs[static_cast<std::size_t>(from)],
          rc * sizeof(cplx));
    }
  }

  void configure_resilience(const NetOptions& opts) override {
    int expected = 0;
    if (hdr_->configured.compare_exchange_strong(expected, 1)) {
      hdr_->timeout_ms.store(opts.timeout_ms, std::memory_order_relaxed);
      hdr_->max_retries.store(opts.max_retries, std::memory_order_relaxed);
      hdr_->checksums.store(opts.checksums ? 1 : 0, std::memory_order_relaxed);
      // Capability mismatches are reported, never silently ignored.
      for (const auto& w : unsupported_options(opts)) {
        std::cerr << "soifft: warning: " << w << "\n";
      }
    }
  }

  [[nodiscard]] bool resilience_active() const override {
    return hdr_->timeout_ms.load(std::memory_order_relaxed) > 0;
  }

  [[nodiscard]] double timeout_ms() const override {
    return hdr_->timeout_ms.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int max_retries() const override {
    return hdr_->max_retries.load(std::memory_order_relaxed);
  }

  [[nodiscard]] FaultStats fault_stats() const override {
    FaultStats s;
    s.checksum_failures =
        hdr_->checksum_failures.load(std::memory_order_relaxed);
    s.timeouts = hdr_->timeouts.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] TrafficLog& traffic() override { return traffic_; }

  [[nodiscard]] std::int64_t bytes_sent() const override {
    return bytes_sent_;
  }

 private:
  friend class ShmRequest;  // cancel-on-drop route

  // -- shared-region accessors --

  RingHdr& ring(int r) {
    return *reinterpret_cast<RingHdr*>(
        base_ + lay_.rings_off + lay_.ring_stride * static_cast<std::size_t>(r));
  }

  std::byte* ring_data(int r) {
    return base_ + lay_.rings_off +
           lay_.ring_stride * static_cast<std::size_t>(r) +
           align_up(sizeof(RingHdr), 64);
  }

  double* red_slot(int r) {
    return reinterpret_cast<double*>(base_ + lay_.red_off) +
           kMaxReduceLen * static_cast<std::size_t>(r);
  }

  double* red_result() { return red_slot(nranks_); }

  void check_alive() const {
    if (hdr_->aborted.load(std::memory_order_acquire) != 0) {
      throw WorldAbortedError(
          "shm: world aborted after a failure on a peer rank");
    }
  }

  [[nodiscard]] bool checksums_on() const {
    return hdr_->checksums.load(std::memory_order_relaxed) != 0;
  }

  int next_coll_tag(int channel) {
    const int seq = coll_seq_[static_cast<std::size_t>(channel)]++;
    return kTagICollBase - (seq * kMaxChannels + channel);
  }

  // -- ring I/O (wrap-aware) --

  static void ring_write(std::byte* data, std::uint64_t pos, const void* src,
                         std::size_t n) {
    const std::size_t off = static_cast<std::size_t>(pos % kRingCapacity);
    const std::size_t first = std::min(n, kRingCapacity - off);
    std::memcpy(data + off, src, first);
    if (n > first) {
      std::memcpy(data, static_cast<const std::byte*>(src) + first, n - first);
    }
  }

  static void ring_read(const std::byte* data, std::uint64_t pos, void* dst,
                        std::size_t n) {
    const std::size_t off = static_cast<std::size_t>(pos % kRingCapacity);
    const std::size_t first = std::min(n, kRingCapacity - off);
    std::memcpy(dst, data + off, first);
    if (n > first) {
      std::memcpy(static_cast<std::byte*>(dst) + first, data, n - first);
    }
  }

  /// Append one frame to `dst`'s ring, blocking while it is full. A
  /// blocked sender drains its OWN inbox between attempts, so two ranks
  /// streaming into each other always make progress (no send-ring
  /// deadlock), and polls the abort flag so a dead receiver cannot hang
  /// the world.
  void push_frame(int dst, const FrameHeader& h, const void* payload) {
    SOI_CHECK(dst >= 0 && dst < nranks_,
              "send: destination rank " << dst << " out of range");
    RingHdr& r = ring(dst);
    std::byte* data = ring_data(dst);
    const std::size_t need =
        align_up(sizeof(FrameHeader) + h.frag_bytes, 8);
    SOI_CHECK(need <= kRingCapacity, "shm: frame exceeds ring capacity");
    for (;;) {
      {
        MutexLock lock(&r.mu);
        if (kRingCapacity - static_cast<std::size_t>(r.tail - r.head) >=
            need) {
          ring_write(data, r.tail, &h, sizeof(FrameHeader));
          if (h.frag_bytes > 0) {
            ring_write(data, r.tail + sizeof(FrameHeader), payload,
                       h.frag_bytes);
          }
          r.tail += need;
          pthread_cond_broadcast(&r.cv);
          return;
        }
        timed_wait_ms(&r.cv, &r.mu, kAbortPollMs);
      }
      check_alive();
      drain_ring();  // free OUR ring so peers blocked on it progress
    }
  }

  /// Send one whole message (fragmenting as needed) with the CRC32C + seq
  /// integrity envelope.
  void send_message(int dst, int tag, const void* data, std::size_t bytes) {
    const std::uint64_t seq =
        ++send_seq_[static_cast<std::size_t>(dst)];
    const bool has_crc = checksums_on();
    const std::uint32_t crc = has_crc ? crc32(data, bytes) : 0;
    std::size_t off = 0;
    do {
      const std::size_t frag = std::min(bytes - off, kMaxFragPayload);
      FrameHeader h;
      h.src = rank_;
      h.tag = tag;
      h.seq = seq;
      h.msg_bytes = bytes;
      h.frag_offset = off;
      h.frag_bytes = static_cast<std::uint32_t>(frag);
      h.crc = crc;
      h.has_crc = has_crc ? 1 : 0;
      push_frame(dst, h, static_cast<const std::byte*>(data) + off);
      off += frag;
    } while (off < bytes);
    bytes_sent_ += static_cast<std::int64_t>(bytes);
  }

  /// Pull every complete frame out of our own ring into the local mailbox
  /// (reassembling fragments), waking senders blocked on ring space.
  void drain_ring() {
    RingHdr& r = ring(rank_);
    const std::byte* data = ring_data(rank_);
    std::vector<std::pair<FrameHeader, std::vector<std::byte>>> frames;
    {
      MutexLock lock(&r.mu);
      while (r.head < r.tail) {
        FrameHeader h;
        ring_read(data, r.head, &h, sizeof(FrameHeader));
        std::vector<std::byte> pay(h.frag_bytes);
        if (h.frag_bytes > 0) {
          ring_read(data, r.head + sizeof(FrameHeader), pay.data(),
                    h.frag_bytes);
        }
        r.head += align_up(sizeof(FrameHeader) + h.frag_bytes, 8);
        frames.emplace_back(h, std::move(pay));
      }
      if (!frames.empty()) pthread_cond_broadcast(&r.cv);
    }
    for (auto& [h, pay] : frames) accept_frame(h, std::move(pay));
  }

  void accept_frame(const FrameHeader& h, std::vector<std::byte> pay) {
    LocalMsg* msg = nullptr;
    LocalMsg whole;
    if (h.frag_offset == 0 && h.frag_bytes == h.msg_bytes) {
      whole.payload = std::move(pay);
      msg = &whole;
    } else {
      auto& part = partial_[{h.src, h.seq}];
      if (part.payload.size() != h.msg_bytes) {
        part.payload.resize(h.msg_bytes);
        part.received = 0;
      }
      std::copy(pay.begin(), pay.end(),
                part.payload.begin() +
                    static_cast<std::ptrdiff_t>(h.frag_offset));
      part.received += h.frag_bytes;
      if (part.received < h.msg_bytes) return;
      whole.payload = std::move(part.payload);
      partial_.erase({h.src, h.seq});
      msg = &whole;
    }
    // Per-source sequence numbers are strictly increasing (each sender
    // stamps its own counter and the ring preserves its order): a
    // violation means shared-memory corruption, not reordering.
    auto& last = last_seq_from_[static_cast<std::size_t>(h.src)];
    if (h.seq <= last) {
      hdr_->checksum_failures.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream os;
      os << "shm: out-of-order sequence " << h.seq << " from rank " << h.src
         << " (last " << last << ") — shared region corrupted";
      throw PayloadCorruptionError(os.str());
    }
    last = h.seq;
    if (cancelled_.count(h.tag) != 0) return;  // dropped collective
    msg->src = h.src;
    msg->tag = h.tag;
    msg->seq = h.seq;
    msg->crc = h.crc;
    msg->has_crc = h.has_crc != 0;
    mailbox_.push_back(std::move(*msg));
  }

  /// First mailbox entry matching (src, tag), verified against the
  /// integrity envelope. Size or CRC mismatches throw — there is no
  /// retransmit source on this backend, so corruption is fatal (and loud).
  std::optional<LocalMsg> take_match(int src, int tag,
                                     std::size_t expected_bytes) {
    for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
      if (it->tag != tag) continue;
      if (src != kAnySource && it->src != src) continue;
      LocalMsg m = std::move(*it);
      mailbox_.erase(it);
      if (m.payload.size() != expected_bytes) {
        hdr_->checksum_failures.fetch_add(1, std::memory_order_relaxed);
        std::ostringstream os;
        os << "shm: size mismatch from rank " << m.src << " tag " << tag
           << ": got " << m.payload.size() << " bytes, expected "
           << expected_bytes;
        throw PayloadCorruptionError(os.str());
      }
      if (m.has_crc && checksums_on() &&
          crc32(m.payload.data(), m.payload.size()) != m.crc) {
        hdr_->checksum_failures.fetch_add(1, std::memory_order_relaxed);
        std::ostringstream os;
        os << "shm: CRC mismatch from rank " << m.src << " tag " << tag
           << " (" << m.payload.size() << " bytes)";
        throw PayloadCorruptionError(os.str());
      }
      return m;
    }
    return std::nullopt;
  }

  /// Sleep (bounded) until our inbox plausibly has new data.
  void wait_for_inbox(double ms) {
    RingHdr& r = ring(rank_);
    MutexLock lock(&r.mu);
    if (r.head == r.tail) {
      timed_wait_ms(&r.cv, &r.mu, std::min(ms, kAbortPollMs));
    }
  }

  Request make_recv(int src, int tag, void* data, std::size_t bytes) {
    SOI_CHECK(src == kAnySource || (src >= 0 && src < nranks_),
              "irecv: source rank " << src << " out of range");
    auto req = std::make_unique<ShmRequest>();
    req->kind_ = ShmRequest::Kind::kRecv;
    req->done_ = false;
    req->peer_ = src;
    req->tag_ = tag;
    req->data_ = data;
    req->bytes_ = bytes;
    req->owner_ = this;
    return Request(std::move(req));
  }

  /// Blocking matched receive with the world's deadline policy (mirrors
  /// SimMPI's bounded pop: attempts with doubling backoff, then
  /// CommTimeoutError). Used by recv_bytes and the blocking collectives.
  void recv_message(int src, int tag, void* data, std::size_t bytes) {
    Request req = make_recv(src, tag, data, bytes);
    const double base = hdr_->timeout_ms.load(std::memory_order_relaxed);
    if (base <= 0) {
      wait_for(req, 0);
      return;
    }
    double t = base;
    const int maxr = hdr_->max_retries.load(std::memory_order_relaxed);
    for (int attempt = 0;; ++attempt) {
      if (wait_for(req, t)) return;
      if (attempt >= maxr) {
        std::ostringstream os;
        os << "shm recv: timed out waiting for rank " << src << " tag " << tag
           << " after " << (attempt + 1) << " attempt(s), base deadline "
           << base << " ms";
        throw CommTimeoutError(os.str());
      }
      t *= 2;
    }
  }

  /// One completion attempt (mailbox already drained by the caller).
  bool progress(ShmRequest& req) {
    switch (req.kind_) {
      case ShmRequest::Kind::kNone:
      case ShmRequest::Kind::kSend:
        return true;
      case ShmRequest::Kind::kRecv: {
        auto m = take_match(req.peer_, req.tag_, req.bytes_);
        if (!m.has_value()) return false;
        if (!m->payload.empty()) {
          std::memcpy(req.data_, m->payload.data(), m->payload.size());
        }
        req.src_matched_ = m->src;
        req.done_ = true;
        return true;
      }
      case ShmRequest::Kind::kColl: {
        const int p = nranks_;
        while (req.next_step_ < p) {
          const int from = (rank_ - req.next_step_ + p) % p;
          std::int64_t rc = req.count_;
          std::int64_t rd = req.count_ * from;
          if (req.count_ < 0) {
            rc = req.recv_counts_[static_cast<std::size_t>(from)];
            rd = req.recv_displs_[static_cast<std::size_t>(from)];
          }
          auto m = take_match(from, req.tag_,
                              static_cast<std::size_t>(rc) * sizeof(cplx));
          if (!m.has_value()) return false;
          if (!m->payload.empty()) {
            std::memcpy(req.recv_base_ + rd, m->payload.data(),
                        m->payload.size());
          }
          ++req.next_step_;
        }
        req.done_ = true;
        return true;
      }
    }
    return false;
  }

  /// Cancel a live collective dropped without a wait: purge its landed
  /// blocks and discard future arrivals for its (unique) tag.
  void cancel_tag(int tag) {
    cancelled_.insert(tag);
    mailbox_.erase(
        std::remove_if(mailbox_.begin(), mailbox_.end(),
                       [tag](const LocalMsg& m) { return m.tag == tag; }),
        mailbox_.end());
    // Half-assembled fragments of that collective are dropped too; keyed
    // by (src, seq) so scan for the tag via the mailbox path is not
    // possible — fragments carry the tag in their header, which we no
    // longer have. Completion of such a partial will be discarded by the
    // cancelled_ check in accept_frame.
  }

  /// Deterministic reduction: contributions land in per-rank slots, the
  /// last arrival reduces them in rank order (op 0 = sum, 1 = max), every
  /// rank reads back identical bits.
  void reduce(std::span<double> values, int op) {
    SOI_CHECK(values.size() <= kMaxReduceLen,
              "shm allreduce: vector longer than " << kMaxReduceLen);
    auto& h = *hdr_;
    MutexLock lock(&h.red_mu);
    check_alive();
    const std::uint64_t gen = h.red_gen;
    std::copy(values.begin(), values.end(), red_slot(rank_));
    if (h.red_count == 0) {
      h.red_len = values.size();
      h.red_op = op;
    } else {
      SOI_CHECK(h.red_len == values.size(),
                "allreduce: vector length mismatch across ranks");
      SOI_CHECK(h.red_op == op, "allreduce: operation mismatch across ranks");
    }
    if (++h.red_count == nranks_) {
      double* out = red_result();
      for (std::size_t i = 0; i < values.size(); ++i) {
        double acc = red_slot(0)[i];
        for (int r = 1; r < nranks_; ++r) {
          acc = (op == 0) ? acc + red_slot(r)[i]
                          : std::max(acc, red_slot(r)[i]);
        }
        out[i] = acc;
      }
      h.red_count = 0;
      ++h.red_gen;
      pthread_cond_broadcast(&h.red_cv);
    } else {
      while (h.red_gen == gen) {
        check_alive();
        timed_wait_ms(&h.red_cv, &h.red_mu, kAbortPollMs);
      }
    }
    std::copy_n(red_result(), values.size(), values.begin());
  }

  std::byte* base_;
  Layout lay_;
  WorldHdr* hdr_;
  int rank_;
  int nranks_;

  // Child-private state.
  struct Partial {
    std::uint64_t received = 0;
    std::vector<std::byte> payload;
  };
  std::deque<LocalMsg> mailbox_;
  std::map<std::pair<int, std::uint64_t>, Partial> partial_;
  std::set<int> cancelled_;
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::uint64_t> last_seq_from_;
  std::vector<int> coll_seq_;
  std::int64_t bytes_sent_ = 0;
  TrafficLog traffic_;  ///< inert (caps().traffic_events == false)
};

ShmRequest::~ShmRequest() {
  if (kind_ == Kind::kColl && !done_ && owner_ != nullptr) {
    owner_->cancel_tag(tag_);
  }
}

// ---------------------------------------------------------------------------
// World launch (parent side)
// ---------------------------------------------------------------------------

/// Environment knobs fill any NetOptions field left at its default
/// (mirrors run_ranks' resolution).
NetOptions resolve_env_options(NetOptions opts) {
  if (!opts.faults.any()) {
    const std::string spec = env_str("SOI_FAULTS", "");
    if (!spec.empty()) opts.faults = FaultSpec::parse(spec);
  }
  if (opts.timeout_ms <= 0) opts.timeout_ms = env_f64("SOI_TIMEOUT_MS", 0.0);
  opts.max_retries =
      static_cast<int>(env_i64("SOI_MAX_RETRIES", opts.max_retries));
  if (env_i64("SOI_CHECKSUMS", opts.checksums ? 1 : 0) == 0) {
    opts.checksums = false;
  }
  return opts;
}

void record_error(ErrSlot& slot, int valid, Status status, const char* what) {
  std::snprintf(slot.what, kMaxErrWhat, "%s", what);
  slot.status = static_cast<std::int32_t>(status);
  // `valid` is written LAST (the parent only reads slots after waitpid, so
  // ordering is belt-and-braces, not load-bearing).
  slot.valid = valid;
}

[[noreturn]] void rethrow_slot(const ErrSlot& slot) {
  const std::string what(slot.what);
  switch (static_cast<Status>(slot.status)) {
    case Status::kCommTimeout:
      throw CommTimeoutError(what);
    case Status::kPayloadCorruption:
      throw PayloadCorruptionError(what);
    case Status::kAccuracyFault:
      throw AccuracyFaultError(what);
    case Status::kResourceExhausted:
      throw AdmissionRejectedError(what);
    default:
      throw Error(what, static_cast<Status>(slot.status));
  }
}

/// RAII holder for the mapped region (parent side).
struct Mapping {
  void* mem = MAP_FAILED;
  std::size_t size = 0;
  ~Mapping() {
    if (mem != MAP_FAILED) ::munmap(mem, size);
  }
};

[[noreturn]] void child_main(std::byte* base, const Layout& lay, int rank,
                             int nranks,
                             const std::function<void(Transport&)>& body) {
  auto* hdr = reinterpret_cast<WorldHdr*>(base);
  auto* err = reinterpret_cast<ErrSlot*>(base + lay.err_off);
  int code = 0;
  try {
    ShmComm comm(base, lay, rank, nranks);
    body(comm);
  } catch (const WorldAbortedError& e) {
    record_error(err[rank], /*valid=*/2, Status::kCommTimeout, e.what());
    hdr->aborted.store(1, std::memory_order_release);
    code = 3;
  } catch (const Error& e) {
    record_error(err[rank], /*valid=*/1, e.status(), e.what());
    hdr->aborted.store(1, std::memory_order_release);
    code = 2;
  } catch (const std::exception& e) {
    record_error(err[rank], /*valid=*/1, Status::kInvalidArgument, e.what());
    hdr->aborted.store(1, std::memory_order_release);
    code = 2;
  } catch (...) {
    record_error(err[rank], /*valid=*/1, Status::kInvalidArgument,
                 "shm rank body failed with a non-standard exception");
    hdr->aborted.store(1, std::memory_order_release);
    code = 2;
  }
  // Skip static destructors (we forked from an arbitrary host process) but
  // push out anything the body printed.
  std::fflush(stdout);
  std::fflush(stderr);
  ::_exit(code);
}

}  // namespace

std::vector<CommEvent> run_shm_world(
    int nranks, const NetOptions& opts,
    const std::function<void(Transport&)>& body) {
  SOI_CHECK(nranks >= 1, "run_shm_world: need at least one rank");
  SOI_CHECK(nranks <= kMaxShmRanks,
            "run_shm_world: at most " << kMaxShmRanks << " ranks (got "
                                      << nranks << ")");
  const NetOptions resolved = resolve_env_options(opts);
  // Capability mismatches are reported, never silently ignored.
  for (const auto& w : unsupported_option_warnings(kShmCaps, resolved)) {
    std::cerr << "soifft: warning: " << w << "\n";
  }

  const Layout lay = compute_layout(nranks);
  Mapping map;
  map.size = lay.total;
  map.mem = ::mmap(nullptr, lay.total, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  SOI_CHECK(map.mem != MAP_FAILED, "run_shm_world: mmap failed");
  auto* base = static_cast<std::byte*>(map.mem);
  std::memset(base, 0, lay.total);

  auto* hdr = new (base) WorldHdr{};
  hdr->nranks = nranks;
  init_shared_mutex(&hdr->bar_mu);
  init_shared_cond(&hdr->bar_cv);
  init_shared_mutex(&hdr->red_mu);
  init_shared_cond(&hdr->red_cv);
  hdr->max_retries.store(resolved.max_retries, std::memory_order_relaxed);
  hdr->checksums.store(resolved.checksums ? 1 : 0, std::memory_order_relaxed);
  // Only a non-default configuration claims the configure slot; otherwise
  // it stays open for DistOptions-level plumbing to install one later.
  if (resolved.timeout_ms > 0 || !resolved.checksums) {
    hdr->configured.store(1, std::memory_order_relaxed);
    hdr->timeout_ms.store(resolved.timeout_ms, std::memory_order_relaxed);
  }
  for (int r = 0; r < nranks; ++r) {
    auto* ring = reinterpret_cast<RingHdr*>(
        base + lay.rings_off + lay.ring_stride * static_cast<std::size_t>(r));
    init_shared_mutex(&ring->mu);
    init_shared_cond(&ring->cv);
    ring->head = 0;
    ring->tail = 0;
  }

  // Buffered stdio must be flushed before forking or every child re-flushes
  // the parent's pending output.
  std::fflush(stdout);
  std::fflush(stderr);

  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      child_main(base, lay, r, nranks, body);  // never returns
    }
    if (pid < 0) {
      // Fork failed: abort the world so already-launched children unwind,
      // then reap them before reporting.
      hdr->aborted.store(1, std::memory_order_release);
      for (int k = 0; k < r; ++k) {
        int st = 0;
        while (::waitpid(pids[static_cast<std::size_t>(k)], &st, 0) < 0 &&
               errno == EINTR) {
        }
      }
      throw Error("run_shm_world: fork failed", Status::kResourceExhausted);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  std::vector<int> statuses(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r) {
    int st = 0;
    while (::waitpid(pids[static_cast<std::size_t>(r)], &st, 0) < 0 &&
           errno == EINTR) {
    }
    statuses[static_cast<std::size_t>(r)] = st;
  }

  // Primary errors first (by rank order), induced world-aborts only when
  // no primary exists — exactly run_ranks' rethrow contract.
  auto* err = reinterpret_cast<ErrSlot*>(base + lay.err_off);
  for (int r = 0; r < nranks; ++r) {
    if (err[r].valid == 1) rethrow_slot(err[r]);
  }
  for (int r = 0; r < nranks; ++r) {
    const int st = statuses[static_cast<std::size_t>(r)];
    const bool clean_exit =
        WIFEXITED(st) && (WEXITSTATUS(st) == 0 || WEXITSTATUS(st) == 2 ||
                          WEXITSTATUS(st) == 3);
    if (!clean_exit) {
      std::ostringstream os;
      os << "run_shm_world: rank " << r << " terminated abnormally (";
      if (WIFSIGNALED(st)) {
        os << "signal " << WTERMSIG(st);
      } else {
        os << "exit status " << (WIFEXITED(st) ? WEXITSTATUS(st) : -1);
      }
      os << ")";
      throw Error(os.str(), Status::kCommTimeout);
    }
  }
  for (int r = 0; r < nranks; ++r) {
    if (err[r].valid == 2) {
      throw WorldAbortedError(std::string(err[r].what));
    }
  }
  return {};  // no traffic events on this backend (caps.traffic_events)
}

void register_shm_transport() {
  TransportRegistry::instance().register_backend(
      "shm", TransportBackend{kShmCaps, run_shm_world});
}

}  // namespace soi::net
