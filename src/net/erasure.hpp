// Systematic erasure coding for the exchange: net::ErasureCode.
//
// A codeword is one peer's exchange payload split into k equal data
// shards plus r parity shards (k+r <= 32). r = 1 uses plain XOR parity
// (the all-ones generator row); r >= 2 uses a Reed–Solomon code over
// GF(2^8) (polynomial 0x11d) with a Cauchy parity matrix, which is MDS:
// ANY k of the k+r shards reconstruct the original bytes exactly, so a
// receiver that saw at most r shards dropped, corrupted or straggling
// recovers the payload locally — bit-identically — without a retransmit
// round trip. Shards travel as ordinary tagged messages on the existing
// transport ABI; each carries a 16-byte header (epoch, shard index, k, r,
// codeword bytes) so stale arrivals from a previous exchange epoch are
// recognised and discarded instead of mis-assembled.
//
// The sister type Coding is the user-facing knob ("k+r", e.g. "4+1"):
// DistOptions::coding, soifft --coding, the tuner's code= candidate token
// and wisdom v6 all speak it.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace soi::net {

/// Ceilings for the coded tag space. One coded sub-message tag encodes
/// (epoch mod 128, channel, phase, group, shard): keep products small
/// enough that the largest tag stays far below INT_MAX.
inline constexpr int kMaxCodedSubs = 32;    ///< k + r <= this
inline constexpr int kMaxCodedGroups = 64;  ///< chunk groups per exchange
inline constexpr int kMaxCodedPhases = 4;   ///< staged-schedule phases
inline constexpr int kCodedEpochCycle = 128;
/// Mirror of net::kMaxChannels (transport.hpp); kept as its own constant
/// so this header stays self-contained. Static-asserted equal in
/// erasure.cpp.
inline constexpr int kMaxChannelsForCodedTags = 16;

/// Base of the coded tag range. Everything at or above this is a coded
/// shard; the SimMPI mailbox applies erasure semantics (discard bad
/// arrivals instead of requeueing the retained copy) to these tags.
inline constexpr int kTagCodedBase = 1 << 20;

[[nodiscard]] inline constexpr bool is_coded_tag(int tag) {
  return tag >= kTagCodedBase;
}

/// Tag for one coded shard. Distinct shards get distinct tags so one
/// lost shard never blocks ordered matching of its siblings.
[[nodiscard]] inline constexpr int coded_tag(std::uint32_t epoch, int channel,
                                             int phase, int group, int sub) {
  const int slot =
      ((channel * kMaxCodedPhases + phase) * kMaxCodedGroups + group) *
          kMaxCodedSubs +
      sub;
  return kTagCodedBase +
         static_cast<int>(epoch % kCodedEpochCycle) *
             (kMaxChannelsForCodedTags * kMaxCodedPhases * kMaxCodedGroups *
              kMaxCodedSubs) +
         slot;
}

/// The redundancy knob: split each peer payload into k data shards and
/// add r parity shards. r == 0 (the default) means coding is off and the
/// exchange uses the CRC32C + retransmit path alone.
struct Coding {
  int k = 0;
  int r = 0;

  [[nodiscard]] bool enabled() const { return k > 0 && r > 0; }
  [[nodiscard]] int total() const { return k + r; }

  /// Strict "k+r" parse (e.g. "4+1"). Returns false (and leaves *out
  /// untouched) unless the string is exactly two positive integers
  /// joined by '+' with 1 <= k, 1 <= r <= k and k + r <= kMaxCodedSubs.
  static bool parse(const std::string& text, Coding* out);

  /// Inverse of parse: "k+r", or "" when disabled.
  [[nodiscard]] std::string str() const;
};

/// Per-shard wire header (16 bytes, little-endian fields). Receivers
/// validate every field before accepting a shard; any mismatch makes the
/// arrival an erasure, never a retransmit.
struct CodedFrame {
  std::uint32_t epoch = 0;    ///< exchange epoch the shard belongs to
  std::uint16_t sub = 0;      ///< shard index in [0, k + r)
  std::uint8_t k = 0;         ///< data shards in this codeword
  std::uint8_t r = 0;         ///< parity shards in this codeword
  std::uint64_t cw_bytes = 0; ///< original (unpadded) codeword payload bytes
};

inline constexpr std::size_t kCodedHeaderBytes = 16;

void write_coded_header(std::uint8_t* dst, const CodedFrame& f);
/// Returns false if bytes < kCodedHeaderBytes (truncated frame).
bool read_coded_header(const std::uint8_t* src, std::size_t bytes,
                       CodedFrame* out);

/// Bytes per data shard for a codeword of `payload` bytes under k-way
/// splitting (last shard zero-padded up to this).
[[nodiscard]] inline constexpr std::size_t coded_shard_bytes(
    std::size_t payload, int k) {
  return (payload + static_cast<std::size_t>(k) - 1) /
         static_cast<std::size_t>(k);
}

/// Systematic MDS erasure codec over GF(2^8).
///
/// encode() turns k data shards into r parity shards; reconstruct()
/// rebuilds the k data shards from ANY k of the k+r shards. All shards
/// are shard_bytes long. The codec itself is stateless after
/// construction and safe to share across threads.
class ErasureCode {
 public:
  ErasureCode(int k, int r);
  explicit ErasureCode(Coding c) : ErasureCode(c.k, c.r) {}

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int r() const { return r_; }

  /// parity[j] (j < r) := generator row j applied to data[0..k).
  void encode(const std::uint8_t* const* data, std::uint8_t* const* parity,
              std::size_t shard_bytes) const;

  /// Rebuild the original k data shards from k present shards.
  /// `present` lists k shard indices (ascending, in [0, k+r)), `shards`
  /// the matching payload pointers. Data shards are written to
  /// out_data[0..k); entries whose index is listed in `present` are
  /// copied through, missing ones are reconstructed. out_data pointers
  /// may alias the corresponding present data shards (copy is skipped
  /// when src == dst). Returns false only on malformed input (duplicate
  /// or out-of-range indices) — with valid input any k shards decode.
  bool reconstruct(const int* present, const std::uint8_t* const* shards,
                   std::uint8_t* const* out_data,
                   std::size_t shard_bytes) const;

 private:
  int k_;
  int r_;
  /// r x k parity part of the systematic generator [I | P^T].
  std::vector<std::uint8_t> parity_;
};

/// GF(2^8) primitives (exposed for the codec unit tests).
[[nodiscard]] std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b);
[[nodiscard]] std::uint8_t gf256_inv(std::uint8_t a);

/// Coded-exchange counters, mirrored into bench JSON
/// (recovered_chunks / parity_bytes / coding_overhead) and the serve
/// per-tier resilience summary.
struct CodedStats {
  std::uint64_t codewords = 0;         ///< coded exchanges completed
  std::uint64_t recovered_chunks = 0;  ///< shards rebuilt from parity
  std::uint64_t parity_bytes = 0;      ///< parity payload bytes sent
  std::uint64_t coded_fallbacks = 0;   ///< codewords with > r losses
};

struct CodedStatsAtomic {
  std::atomic<std::uint64_t> codewords{0};
  std::atomic<std::uint64_t> recovered_chunks{0};
  std::atomic<std::uint64_t> parity_bytes{0};
  std::atomic<std::uint64_t> coded_fallbacks{0};

  [[nodiscard]] CodedStats snapshot() const {
    CodedStats s;
    s.codewords = codewords.load(std::memory_order_relaxed);
    s.recovered_chunks = recovered_chunks.load(std::memory_order_relaxed);
    s.parity_bytes = parity_bytes.load(std::memory_order_relaxed);
    s.coded_fallbacks = coded_fallbacks.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace soi::net
