// Network topology abstraction for topology-aware exchange schedules.
//
// The flat SOI exchange sends one message per (source, destination) pair.
// On hierarchical fabrics that is the wrong shape: a two-level node-group
// machine offers cheap intra-group links and expensive inter-group links,
// and a k-ary 3-D torus rewards dimension-ordered neighbor staging. A
// `Topology` describes the fabric shape; `build_staged_plan` turns it into
// a deterministic multi-phase store-and-forward schedule whose *final block
// placement is bit-identical to the flat all-to-all* — only the routing of
// blocks through intermediate ranks changes:
//
//   * two-level (Q groups of G ranks, rank = q*G + l): phase 0 exchanges
//     fused messages inside each group so that rank (q, l) ends up holding
//     every block destined for local index l of *any* group; phase 1
//     exchanges between same-local-index ranks of different groups. Each
//     rank sends G-1 intra-group messages then Q-1 inter-group messages
//     instead of R-1 flat ones — fewer, larger transfers on the slow tier.
//   * torus (k0 x k1 x k2): phase d forwards every held block to the rank
//     whose dimension-d coordinate matches the block's destination. At
//     most sum(kd - 1) messages per rank, all between torus neighbors in
//     one dimension.
//
// Plans are built once per (topology, rank) by simulating every rank's
// block holdings phase by phase, so sender pack order and receiver slot
// assignment agree globally without any runtime negotiation.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace soi::net {

enum class TopologyKind { kFlat, kTwoLevel, kTorus };

/// Shape of the fabric the exchange schedule is built for. Immutable;
/// ranks() is fixed at construction and validated against the comm size
/// at use. The canonical text forms are "flat", "two-level:G" and
/// "torus:k0xk1xk2" (see parse / str).
class Topology {
 public:
  Topology() = default;  ///< flat over 0 ranks; assign before use

  static Topology flat(int ranks);
  /// Two-level node groups. group_size = 0 picks the divisor of `ranks`
  /// nearest sqrt(ranks) (ties toward the larger divisor).
  static Topology two_level(int ranks, int group_size = 0);
  /// k-ary 3-D torus. Zero dims pick the near-cube factorization of
  /// `ranks` (k0 >= k1 >= k2). k0*k1*k2 must equal ranks.
  static Topology torus(int ranks, int k0 = 0, int k1 = 0, int k2 = 0);
  /// Accepts "" / "flat", "two-level[:G]", "torus[:k0xk1xk2]". Throws
  /// soi::Error with the offending text otherwise.
  static Topology parse(const std::string& text, int ranks);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] int ranks() const { return ranks_; }
  /// Canonical text form (round-trips through parse).
  [[nodiscard]] std::string str() const;

  /// Two-level accessors (group_size() == ranks() for flat/torus: one
  /// big group, so same_group is then always true).
  [[nodiscard]] int group_size() const { return group_size_; }
  [[nodiscard]] int groups() const {
    return group_size_ > 0 ? ranks_ / group_size_ : 1;
  }
  [[nodiscard]] int group_of(int rank) const { return rank / group_size_; }
  [[nodiscard]] int local_of(int rank) const { return rank % group_size_; }
  [[nodiscard]] bool same_group(int a, int b) const {
    return group_of(a) == group_of(b);
  }

  /// Torus accessors. dims() is {ranks, 1, 1} for non-torus kinds.
  [[nodiscard]] const std::array<int, 3>& dims() const { return dims_; }
  [[nodiscard]] std::array<int, 3> coords(int rank) const;
  [[nodiscard]] int rank_of(const std::array<int, 3>& c) const;

  /// Number of exchange phases: 1 (flat), 2 (two-level), or the number
  /// of torus dimensions larger than 1.
  [[nodiscard]] int phases() const;

  /// Where rank `holder` forwards a block whose final destination is
  /// `dst` during `phase`. route(phases()-1, ...) always returns dst.
  [[nodiscard]] int route(int phase, int holder, int dst) const;

 private:
  TopologyKind kind_ = TopologyKind::kFlat;
  int ranks_ = 0;
  int group_size_ = 0;                 // two-level; ranks_ otherwise
  std::array<int, 3> dims_{0, 1, 1};   // torus; {ranks,1,1} otherwise
  std::vector<int> phase_dims_;        // torus dims > 1, in routing order
};

/// Deterministic multi-phase exchange schedule for one rank, plus global
/// traffic statistics over all ranks. Block = the unit payload one rank
/// sends one destination in the flat all-to-all; every rank holds exactly
/// ranks() blocks before, between and after phases.
///
/// Executor contract per phase: gather `sends[i].gather` blocks (slot
/// indices into the previous holdings; phase 0 slots double as destination
/// ranks, so the caller maps them through its send displacements) into a
/// pack buffer, isend per peer; irecv `recvs[i].nblocks` blocks from each
/// peer into the new holdings at `recvs[i].first_slot`; copy `keeps` from
/// old to new holdings. After the last phase, the block in slot s
/// originated at rank `final_src[s]` and belongs at the flat all-to-all
/// receive offset of that source.
struct StagedPlan {
  struct Send {
    int peer = -1;
    std::vector<int> gather;  ///< prev-holdings slots (phase 0: dst ranks)
  };
  struct Recv {
    int peer = -1;
    int nblocks = 0;
    int first_slot = 0;  ///< into the new holdings, blocks are contiguous
  };
  struct Keep {
    int from = 0;  ///< prev-holdings slot (phase 0: dst rank)
    int to = 0;    ///< new-holdings slot
  };
  struct Phase {
    std::vector<Send> sends;  ///< ring order (rank+1, rank+2, ...)
    std::vector<Recv> recvs;  ///< ring order, empty peers omitted
    std::vector<Keep> keeps;
  };

  std::vector<Phase> phases;   ///< no-op phases are dropped
  std::vector<int> final_src;  ///< origin rank of each final holdings slot
  int ranks = 0;
  int max_peers = 0;  ///< max sends (== max recvs) in any one phase

  // Global traffic over all ranks and phases, in block units. The caller
  // multiplies by its block byte size. bisection counts blocks crossing
  // the rank_id < ranks/2 cut, the same cut for every schedule, so flat,
  // two-level and torus numbers are directly comparable.
  std::int64_t total_messages = 0;
  std::int64_t total_blocks_sent = 0;
  std::int64_t bisection_blocks = 0;
};

/// Builds the staged schedule of `topo` from rank `my_rank`'s point of
/// view by simulating all ranks' holdings. For flat topologies the plan
/// has one phase that is exactly the flat all-to-all (useful for the
/// traffic statistics; the executors keep their native flat paths).
[[nodiscard]] StagedPlan build_staged_plan(const Topology& topo, int my_rank);

/// Blocks a flat all-to-all would push across the ranks/2 bisection:
/// one block per (src, dst) pair on opposite sides.
[[nodiscard]] std::int64_t flat_bisection_blocks(int ranks);

class Transport;  // transport.hpp

/// Blocking staged all-to-all over `comm` following `plan`: block d of
/// `send` (at d*block_bytes) lands at s*block_bytes of `recv` on the rank
/// it addresses, bit-identically to Transport::alltoall. `scratch` must
/// hold 3 * ranks * block_bytes (pack + ping-pong holdings) and may be
/// null only when block_bytes == 0. Tags used: [tag_base, tag_base +
/// phases).
void staged_alltoall(Transport& comm, const StagedPlan& plan,
                     const void* send, void* recv, std::int64_t block_bytes,
                     void* scratch, int tag_base);

}  // namespace soi::net
