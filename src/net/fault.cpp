#include "net/fault.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace soi::net {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kStraggler: return "straggler";
  }
  return "?";
}

namespace {

bool kind_from_name(const std::string& name, FaultKind& out) {
  for (const FaultKind k :
       {FaultKind::kDrop, FaultKind::kCorrupt, FaultKind::kTruncate,
        FaultKind::kDuplicate, FaultKind::kDelay, FaultKind::kStraggler}) {
    if (name == fault_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_number(const std::string& text, const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SOI_CHECK(used == text.size() && !text.empty(),
            "fault spec: " << what << " '" << text << "' is not a number");
  return v;
}

// splitmix64: one well-mixed 64-bit draw per message coordinate tuple.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t draw(std::uint64_t seed, std::uint64_t salt, int src, int dst,
                   int tag, std::uint64_t seq) {
  std::uint64_t h = mix64(seed ^ (salt * 0xd1342543de82ef95ULL));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) |
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
                  << 32)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  h = mix64(h ^ seq);
  return h;
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  const auto parts = split(text, ',');
  bool have_seed = false;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    auto fields = split(parts[i], ':');
    if (i == 0) {
      // Leading field of the first entry is the seed: seed:kind:rate
      // (or seed:stall:rank:ms).
      SOI_CHECK(fields.size() >= 3,
                "fault spec: first entry must be seed:kind:rate, got '"
                    << parts[i] << "'");
      const double seed = parse_number(fields[0], "seed");
      SOI_CHECK(seed >= 0 && seed == static_cast<double>(
                                         static_cast<std::uint64_t>(seed)),
                "fault spec: seed '" << fields[0]
                                     << "' must be a non-negative integer");
      spec.seed = static_cast<std::uint64_t>(seed);
      have_seed = true;
      fields.erase(fields.begin());
    }
    if (fields.size() == 3 && fields[0] == "stall") {
      const double rank = parse_number(fields[1], "stall rank");
      const double ms = parse_number(fields[2], "stall ms");
      SOI_CHECK(rank >= 0 && rank == static_cast<double>(
                                         static_cast<int>(rank)),
                "fault spec: stall rank '" << fields[1]
                                           << "' must be a rank index");
      SOI_CHECK(ms >= 0.0, "fault spec: stall ms must be >= 0");
      spec.stall_rank = static_cast<int>(rank);
      spec.stall_ms = ms;
      continue;
    }
    SOI_CHECK(fields.size() == 2, "fault spec: entry '"
                                      << parts[i]
                                      << "' must be kind:rate (or "
                                         "stall:rank:ms)");
    FaultRule rule;
    SOI_CHECK(kind_from_name(fields[0], rule.kind),
              "fault spec: unknown kind '"
                  << fields[0]
                  << "' (drop, corrupt, truncate, duplicate, delay, "
                     "straggler, stall)");
    rule.rate = parse_number(fields[1], "rate");
    SOI_CHECK(rule.rate >= 0.0 && rule.rate <= 1.0,
              "fault spec: rate " << rule.rate << " outside [0, 1]");
    spec.rules.push_back(rule);
  }
  SOI_CHECK(have_seed, "fault spec: missing seed");
  return spec;
}

std::string FaultSpec::str() const {
  if (!any()) return "";
  std::ostringstream os;
  os << seed;
  // The seed shares the first entry's colon group; later entries are
  // comma-separated per the grammar.
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << (i == 0 ? ':' : ',') << fault_kind_name(rules[i].kind) << ':'
       << rules[i].rate;
  }
  if (stall_rank >= 0) {
    os << (rules.empty() ? ':' : ',') << "stall:" << stall_rank << ':'
       << stall_ms;
  }
  return os.str();
}

FaultInjector::Action FaultInjector::decide(int src, int dst, int tag,
                                            std::uint64_t seq,
                                            std::size_t payload_bytes) const {
  Action a;
  for (std::size_t i = 0; i < spec_.rules.size(); ++i) {
    const FaultRule& r = spec_.rules[i];
    const std::uint64_t h = draw(spec_.seed, i + 1, src, dst, tag, seq);
    if (to_unit(h) >= r.rate) continue;
    switch (r.kind) {
      case FaultKind::kDrop:
        a.drop = true;
        break;
      case FaultKind::kCorrupt:
        if (payload_bytes > 0) {
          a.corrupt_bit = static_cast<std::int64_t>(
              mix64(h) % (payload_bytes * 8));
        }
        break;
      case FaultKind::kTruncate:
        a.truncate = true;
        break;
      case FaultKind::kDuplicate:
        a.duplicate = true;
        break;
      case FaultKind::kDelay:
        a.delay = true;
        break;
      case FaultKind::kStraggler: {
        // Heavy-tailed (Pareto, alpha = 1.5) extra one-way latency: scale
        // ~1 ms, capped at 200 ms so a single straggler can never outlive
        // the bounded-deadline retransmit machinery entirely. The draw is
        // a pure function of the message coordinates, like every rule.
        const double u = to_unit(mix64(h ^ 0x5354524147ULL));
        const double pareto =
            1.0 / std::pow(1.0 - u * 0.999999, 1.0 / 1.5) - 1.0;
        a.straggle_ms = std::clamp(1.0 * pareto, 0.05, 200.0);
        break;
      }
    }
  }
  return a;
}

// CRC32C (Castagnoli, poly 0x1edc6f41 reflected 0x82f63b78): the payload
// checksum sits on the critical path of every SimMPI message, which moves
// at memcpy speed — a byte-at-a-time loop would cost more than the
// transport itself. On SSE4.2 hosts the hardware CRC32 instruction folds
// 8 bytes/cycle; the table fallback computes the identical polynomial so
// wire checksums agree across dispatch tiers.
namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t crc32c_table(const void* data, std::size_t bytes) {
  static const std::array<std::uint32_t, 256> kTable = make_crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c = 0xffffffffu;
  while (bytes >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    bytes -= 8;
  }
  while (bytes > 0) {
    c = __builtin_ia32_crc32qi(static_cast<std::uint32_t>(c), *p);
    ++p;
    --bytes;
  }
  return static_cast<std::uint32_t>(c) ^ 0xffffffffu;
}

bool have_sse42() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#endif

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
#if defined(__x86_64__) || defined(__i386__)
  if (have_sse42()) return crc32c_hw(data, bytes);
#endif
  return crc32c_table(data, bytes);
}

}  // namespace soi::net
