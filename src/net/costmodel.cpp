#include "net/costmodel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace soi::net {

namespace {
double bits(std::int64_t bytes) { return 8.0 * static_cast<double>(bytes); }
}  // namespace

double NetworkModel::control_seconds(int nodes) const {
  // Latency-bound tree exchange.
  const double rounds = std::ceil(std::log2(std::max(nodes, 2)));
  return 2.0 * rounds * link_.latency_s;
}

double NetworkModel::events_seconds(
    const std::vector<CommEvent>& events) const {
  double total = 0.0;
  for (const auto& ev : events) {
    switch (ev.kind) {
      case CommEvent::Kind::kP2P:
        total += p2p_seconds(ev.bytes);
        break;
      case CommEvent::Kind::kAlltoall:
        total += alltoall_seconds(ev.nodes, ev.bytes);
        break;
      case CommEvent::Kind::kBcast:
      case CommEvent::Kind::kAllgather: {
        // Tree-structured: log2(n) rounds of the payload on the local link.
        const double rounds = std::ceil(std::log2(std::max(ev.nodes, 2)));
        total += rounds * p2p_seconds(ev.bytes);
        break;
      }
      case CommEvent::Kind::kBarrier:
      case CommEvent::Kind::kAllreduce:
        total += control_seconds(ev.nodes);
        break;
    }
  }
  return total;
}

// --- fat tree ---------------------------------------------------------------

FatTreeModel::FatTreeModel(LinkSpec link, int full_bisection_nodes,
                           double oversub_exponent,
                           double alltoall_efficiency)
    : NetworkModel(link),
      full_bisection_nodes_(full_bisection_nodes),
      oversub_exponent_(oversub_exponent),
      alltoall_efficiency_(alltoall_efficiency) {
  SOI_CHECK(full_bisection_nodes >= 1, "fat tree: bad full-bisection size");
  SOI_CHECK(alltoall_efficiency > 0.0 && alltoall_efficiency <= 1.0,
            "fat tree: efficiency must be in (0, 1]");
}

std::string FatTreeModel::name() const {
  return "fat-tree(QDR-IB " + std::to_string(link().local_gbps) + " Gbit/s)";
}

double FatTreeModel::alltoall_seconds(int nodes,
                                      std::int64_t bytes_out_per_node) const {
  SOI_CHECK(nodes >= 1, "alltoall_seconds: bad node count");
  if (nodes == 1) return 0.0;
  const double inject = bits(bytes_out_per_node) /
                        (link().local_gbps * 1e9 * alltoall_efficiency_);
  double penalty = 1.0;
  if (nodes > full_bisection_nodes_) {
    penalty = std::pow(static_cast<double>(nodes) /
                           static_cast<double>(full_bisection_nodes_),
                       oversub_exponent_);
  }
  return inject * penalty + link().latency_s * (nodes - 1);
}

double FatTreeModel::p2p_seconds(std::int64_t bytes) const {
  return link().latency_s + bits(bytes) / (link().local_gbps * 1e9);
}

// --- 3-D torus ---------------------------------------------------------------

Torus3DModel::Torus3DModel(LinkSpec link, double global_gbps,
                           int concentration, double alltoall_efficiency)
    : NetworkModel(link),
      global_gbps_(global_gbps),
      concentration_(concentration),
      alltoall_efficiency_(alltoall_efficiency) {
  SOI_CHECK(concentration >= 1, "torus: bad concentration");
  SOI_CHECK(global_gbps > 0, "torus: bad global channel bandwidth");
  SOI_CHECK(alltoall_efficiency > 0.0 && alltoall_efficiency <= 1.0,
            "torus: efficiency must be in (0, 1]");
}

std::string Torus3DModel::name() const {
  return "3-D torus(conc " + std::to_string(concentration_) + ", global " +
         std::to_string(global_gbps_) + " Gbit/s)";
}

int Torus3DModel::radix_for(int nodes) const {
  int k = 1;
  while (static_cast<std::int64_t>(concentration_) * k * k * k < nodes) ++k;
  return k;
}

double Torus3DModel::alltoall_seconds(int nodes,
                                      std::int64_t bytes_out_per_node) const {
  SOI_CHECK(nodes >= 1, "alltoall_seconds: bad node count");
  if (nodes == 1) return 0.0;
  // Local-link injection bound.
  const double t_local = bits(bytes_out_per_node) / (link().local_gbps * 1e9);
  // Bisection bound (paper, footnote 7, after Dally & Towles): a k-ary
  // 3-cube of k^3 switches has 4*k^3/k = 4k^2 bisection channels; half the
  // total payload crosses it. (The footnote's "4n/k" counts switches.)
  const int k = radix_for(nodes);
  const double total_bits =
      bits(bytes_out_per_node) * static_cast<double>(nodes);
  const double bisection_bw =
      4.0 * static_cast<double>(k) * static_cast<double>(k) * global_gbps_ *
      1e9;
  const double t_bisect = (total_bits / 2.0) / bisection_bw;
  return std::max(t_local, t_bisect) / alltoall_efficiency_ +
         link().latency_s * (nodes - 1);
}

double Torus3DModel::p2p_seconds(std::int64_t bytes) const {
  return link().latency_s + bits(bytes) / (link().local_gbps * 1e9);
}

// --- Ethernet -----------------------------------------------------------------

EthernetModel::EthernetModel(LinkSpec link, double alltoall_efficiency)
    : NetworkModel(link), alltoall_efficiency_(alltoall_efficiency) {
  SOI_CHECK(alltoall_efficiency > 0.0 && alltoall_efficiency <= 1.0,
            "ethernet: efficiency must be in (0, 1]");
}

std::string EthernetModel::name() const {
  return "ethernet(" + std::to_string(link().local_gbps) + " Gbit/s)";
}

double EthernetModel::alltoall_seconds(int nodes,
                                       std::int64_t bytes_out_per_node) const {
  if (nodes == 1) return 0.0;
  return bits(bytes_out_per_node) /
             (link().local_gbps * 1e9 * alltoall_efficiency_) +
         link().latency_s * (nodes - 1);
}

double EthernetModel::p2p_seconds(std::int64_t bytes) const {
  return link().latency_s + bits(bytes) / (link().local_gbps * 1e9);
}

// --- factory presets ---------------------------------------------------------

std::unique_ptr<NetworkModel> make_endeavor_fat_tree() {
  // 50% effective all-to-all throughput: what production MPI full
  // exchanges typically reach on QDR IB fat trees (the Section 7.4 model
  // assumes theoretical peak; the *measured* Figs. 5/6 speedups are only
  // reproduced once this real-world derating is applied).
  return std::make_unique<FatTreeModel>(LinkSpec{40.0, 1.5e-6}, 32, 0.35,
                                        0.5);
}

std::unique_ptr<NetworkModel> make_gordon_torus() {
  // Same 50% full-exchange derating as the fat tree preset; torus routing
  // under uniform traffic typically fares no better.
  return std::make_unique<Torus3DModel>(LinkSpec{40.0, 1.5e-6}, 120.0, 16,
                                        0.5);
}

std::unique_ptr<NetworkModel> make_endeavor_ethernet() {
  // 30% effective all-to-all throughput: commodity 10 GbE under the full
  // exchange's congestion (calibrated so the composed model reproduces the
  // paper's measured 2.3-2.4x in Fig. 8).
  return std::make_unique<EthernetModel>(LinkSpec{10.0, 10e-6}, 0.30);
}

}  // namespace soi::net
