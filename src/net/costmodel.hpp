// Cluster fabric cost models (Table 1 + Section 7.4 of the paper).
//
// The paper evaluates on: Endeavor (two-level 14-ary fat tree, QDR IB 4x),
// Gordon (4-ary 3-D torus, concentration 16, QDR IB), and a 10 GbE variant
// of Endeavor (Fig. 8). None of those fabrics exist in this build
// environment, so these models translate recorded traffic into fabric time,
// exactly the way the paper's own Section 7.4 model does:
//   * all-to-all time = max(local-link bound, bisection-bandwidth bound)
//   * torus bisection = 4n/k channels (n = 16 k^3 nodes, concentration 16)
//   * QDR IB 4x local link = 40 Gbit/s; torus global channel = 3 links
//     = 120 Gbit/s; 10 GbE = 10 Gbit/s.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/traffic.hpp"

namespace soi::net {

/// Link characteristics shared by the models.
struct LinkSpec {
  double local_gbps = 40.0;    ///< node-to-switch bandwidth, Gbit/s
  double latency_s = 1.5e-6;   ///< per-message injection latency, seconds
};

/// Turns communication events into modeled seconds on a specific fabric.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Modeled time of one all-to-all among `nodes` nodes where each node
  /// sends `bytes_out_per_node` in total (its outgoing payload).
  [[nodiscard]] virtual double alltoall_seconds(
      int nodes, std::int64_t bytes_out_per_node) const = 0;

  /// Modeled time of one point-to-point message.
  [[nodiscard]] virtual double p2p_seconds(std::int64_t bytes) const = 0;

  /// Modeled time of a small-control collective (barrier/allreduce).
  [[nodiscard]] virtual double control_seconds(int nodes) const;

  /// Sum the model over a full traffic log.
  [[nodiscard]] double events_seconds(
      const std::vector<CommEvent>& events) const;

 protected:
  explicit NetworkModel(LinkSpec link) : link_(link) {}
  [[nodiscard]] const LinkSpec& link() const { return link_; }

 private:
  LinkSpec link_;
};

/// Two-level fat tree (Endeavor). Full bisection up to `full_bisection_nodes`
/// (the paper: "aggregated peak bandwidth ... scales linearly up to 32
/// nodes"); beyond that an oversubscription penalty (n/32)^exponent models
/// the gradually tightening upper tiers.
class FatTreeModel final : public NetworkModel {
 public:
  /// `alltoall_efficiency`: achievable fraction of line rate for a full
  /// exchange (real MPI all-to-alls over IB typically reach ~half of the
  /// theoretical peak; 1.0 keeps the Section 7.4 theoretical assumption).
  explicit FatTreeModel(LinkSpec link = {40.0, 1.5e-6},
                        int full_bisection_nodes = 32,
                        double oversub_exponent = 0.35,
                        double alltoall_efficiency = 1.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alltoall_seconds(
      int nodes, std::int64_t bytes_out_per_node) const override;
  [[nodiscard]] double p2p_seconds(std::int64_t bytes) const override;

 private:
  int full_bisection_nodes_;
  double oversub_exponent_;
  double alltoall_efficiency_;
};

/// k-ary 3-D torus with a concentration factor (Gordon: 4-ary, 16 nodes per
/// switch). Implements the paper's Section 7.4 model verbatim: local links
/// of link.local_gbps, switch-to-switch channels of global_gbps, bisection
/// of 4n/k channels carrying half the total payload.
class Torus3DModel final : public NetworkModel {
 public:
  explicit Torus3DModel(LinkSpec link = {40.0, 1.5e-6},
                        double global_gbps = 120.0, int concentration = 16,
                        double alltoall_efficiency = 1.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alltoall_seconds(
      int nodes, std::int64_t bytes_out_per_node) const override;
  [[nodiscard]] double p2p_seconds(std::int64_t bytes) const override;

  /// Torus radix for a node count: smallest k with concentration*k^3 >= n.
  [[nodiscard]] int radix_for(int nodes) const;

 private:
  double global_gbps_;
  int concentration_;
  double alltoall_efficiency_;
};

/// Flat switched Ethernet (Fig. 8's 10 GbE): bandwidth-bound on the node
/// uplink, no bisection limit modeled (single switch domain).
class EthernetModel final : public NetworkModel {
 public:
  /// `alltoall_efficiency` models the achievable fraction of line rate for
  /// a congested full exchange over commodity Ethernet/TCP (Fig. 8 ran in
  /// this regime; IB models keep the paper's theoretical-peak assumption).
  explicit EthernetModel(LinkSpec link = {10.0, 10e-6},
                         double alltoall_efficiency = 1.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double alltoall_seconds(
      int nodes, std::int64_t bytes_out_per_node) const override;
  [[nodiscard]] double p2p_seconds(std::int64_t bytes) const override;

 private:
  double alltoall_efficiency_;
};

/// The three paper configurations, ready made.
std::unique_ptr<NetworkModel> make_endeavor_fat_tree();
std::unique_ptr<NetworkModel> make_gordon_torus();
std::unique_ptr<NetworkModel> make_endeavor_ethernet();

}  // namespace soi::net
