#include "net/registry.hpp"

#include <iostream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/env.hpp"
#include "common/error.hpp"
#include "net/comm.hpp"
#include "net/shm.hpp"
#ifdef SOI_WITH_MPI
#include "net/mpi_transport.hpp"
#endif

namespace soi::net {

namespace {
/// Built-in backends land lazily, exactly once, on first registry USE (not
/// on registration — register_backend must stay callable from inside the
/// factories below without recursing).
void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_sim_transport();
    register_shm_transport();
#ifdef SOI_WITH_MPI
    register_mpi_transport();
#endif
  });
}
}  // namespace

struct TransportRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, TransportBackend> backends;
};

TransportRegistry& TransportRegistry::instance() {
  static TransportRegistry registry;
  return registry;
}

TransportRegistry::Impl& TransportRegistry::impl() const {
  static Impl impl;
  return impl;
}

void TransportRegistry::register_backend(const std::string& name,
                                         TransportBackend backend) {
  if (name.empty()) {
    throw InvalidArgumentError(
        "transport registration: backend name must be non-empty");
  }
  if (!backend.run) {
    throw InvalidArgumentError("transport registration: backend '" + name +
                               "' has no run factory");
  }
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.backends.emplace(name, std::move(backend)).second) {
    throw InvalidArgumentError(
        "transport backend '" + name +
        "' is already registered (factories register exactly once)");
  }
}

const TransportBackend& TransportRegistry::lookup(
    const std::string& name) const {
  ensure_builtins();
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.backends.find(name);
  if (it == im.backends.end()) {
    std::ostringstream os;
    os << "unknown transport backend '" << name << "'; registered backends:";
    for (const auto& [n, b] : im.backends) os << " " << n;
    throw InvalidArgumentError(os.str());
  }
  return it->second;
}

const TransportCaps& TransportRegistry::caps(const std::string& name) const {
  return lookup(name).caps;
}

bool TransportRegistry::contains(const std::string& name) const {
  ensure_builtins();
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.backends.count(name) != 0;
}

std::vector<std::string> TransportRegistry::names() const {
  ensure_builtins();
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::string> out;
  out.reserve(im.backends.size());
  for (const auto& [n, b] : im.backends) out.push_back(n);
  return out;  // std::map iteration is already sorted
}

std::string default_transport() {
  const std::string name = env_str("SOI_TRANSPORT", "sim");
  return name.empty() ? std::string("sim") : name;
}

std::vector<CommEvent> run_world(const std::string& transport, int nranks,
                                 const NetOptions& opts,
                                 const WorldBody& body) {
  const std::string name = transport.empty() ? default_transport() : transport;
  const TransportBackend& backend = TransportRegistry::instance().lookup(name);
  // Capability mismatches are reported, never silently ignored.
  for (const auto& w : unsupported_option_warnings(backend.caps, opts)) {
    std::cerr << "soifft: warning: " << w << "\n";
  }
  return backend.run(nranks, opts, body);
}

std::vector<CommEvent> run_world(const std::string& transport, int nranks,
                                 const WorldBody& body) {
  return run_world(transport, nranks, NetOptions{}, body);
}

}  // namespace soi::net
