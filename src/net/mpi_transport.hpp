// Compile-time-gated MPI backend skeleton: maps the net::Transport ABI
// onto an MPI_Comm. Built ONLY with -DSOI_WITH_MPI=ON (which requires a
// real MPI toolchain via find_package(MPI)); in default builds this header
// is never included and the "mpi" backend simply does not appear in the
// registry — asking for it yields the registry's unknown-backend error
// naming the backends that DO exist.
//
// The mapping is intentionally direct:
//
//   send_bytes/recv_bytes      -> MPI_Send/MPI_Recv (MPI_BYTE)
//   isend/irecv                -> MPI_Isend/MPI_Irecv behind RequestState
//   ialltoall(v)               -> MPI_Ialltoall(v) on duplicated
//                                 per-channel communicators (the channel
//                                 ordering contract maps onto comm
//                                 ordering, one MPI_Comm_dup per channel)
//   barrier/bcast/gather/...   -> the eponymous MPI collectives
//   allreduce_sum(span)        -> MPI_Allreduce(MPI_SUM) — NOTE: bitwise
//                                 cross-rank identity then relies on the
//                                 MPI library's reduction order; the
//                                 conformance suite flags libraries that
//                                 break it
//
// Capability sheet: no fault injection, no latency emulation, no traffic
// events, no checksums (the fabric's own integrity is trusted), and
// cross_process (ranks are mpirun processes). run_world() on this backend
// cannot FORK a world: it requires the process was launched under mpirun
// and the requested nranks matches MPI_Comm_size, else it throws
// soi::InvalidArgumentError.
#pragma once

#ifdef SOI_WITH_MPI

#include <functional>
#include <vector>

#include "net/traffic.hpp"
#include "net/transport.hpp"

namespace soi::net {

/// Run `body` on this mpirun-launched process' rank of MPI_COMM_WORLD.
/// Requires nranks == MPI_Comm_size(MPI_COMM_WORLD); initialises MPI if
/// the host did not. Returns no traffic events.
std::vector<CommEvent> run_mpi_world(
    int nranks, const NetOptions& opts,
    const std::function<void(Transport&)>& body);

/// Registers the "mpi" backend. Called exactly once by the registry's lazy
/// initialiser when compiled in.
void register_mpi_transport();

}  // namespace soi::net

#endif  // SOI_WITH_MPI
