// Multi-tenant transform serving: admission control + co-scheduled
// execution of many independent SOI transforms in one process.
//
// A TransformService owns a fixed pool of request slots and a bounded
// FIFO admission queue. submit() binds caller-owned input/output buffers
// to a free slot and enqueues it — or rejects with the typed
// soi::AdmissionRejectedError (Status::kResourceExhausted) when the
// queue is full, which is backpressure, not failure. wait() blocks until
// the request finishes, rethrows its typed error if it failed, and
// returns the slot to the pool. All steady-state paths (submit, execute,
// complete, wait) are allocation-free; plans, execution states and queue
// storage are built at create_lane()/warmup() time.
//
// Two execution backends share that front end:
//
//   * ranks == 0 (serial): a pool of worker threads drains the queue,
//     each executing requests through its own exec::ExecState of the
//     lane's shared SoiFftSerial plan (init_state()/forward_on() — the
//     plan is built once per shape via tune::PlanRegistry and never
//     copied). Mixed-shape tenants run concurrently without contention.
//
//   * ranks >= 2 (distributed): the service hosts an in-process rank
//     team (any registered transport whose caps report threaded_world —
//     the rank bodies share the service's address space) and a scheduler
//     thread. The scheduler packs EPOCHS of up to max_concurrency
//     requests in (priority tier, FIFO) order — mixed shapes are
//     composed into one merged chunk graph via exec::run_epoch, each
//     member's exchange pieces posting on its own tagged collective
//     channel before any member blocks. When every packed request
//     happens to share one lane the scheduler emits the same-lane fast
//     path (SoiFftDist::forward_many) instead — identical schedule,
//     no composition overhead. Requests carry the FULL N-point signal;
//     rank r transforms the block subspan [r*N/R, (r+1)*N/R).
//
// Priority and deadlines: every request carries a tier (interactive <
// batch < background) and an optional absolute deadline. The scheduler
// admits lower tiers first within an epoch, and sheds any request whose
// modeled execution cost (tune::score_candidate, kModeled) can no
// longer fit before its deadline — the waiter sees the typed
// soi::DeadlineExceededError BEFORE any of its segment FFTs ran, so an
// infeasible background request never steals arena slots or exchange
// bandwidth from co-admitted interactive work. epoch_budget_ms caps the
// summed modeled cost packed into one epoch.
//
// Outputs are bit-identical to solo execution of the same request in
// both backends (the dataflow executor runs each instance's nodes in a
// topological order of its own edges). Queueing metrics — admitted /
// rejected / queued, p50/p99 latency, transforms/sec, slot occupancy,
// per-tenant overlap efficiency, per-tier completions and sheds —
// accumulate in serve::ServeMetrics.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "net/erasure.hpp"
#include "net/registry.hpp"
#include "net/transport.hpp"
#include "serve/metrics.hpp"
#include "soi/dist.hpp"
#include "soi/serial.hpp"
#include "window/design.hpp"

namespace soi::serve {

/// Transform shapes one service instance can hold concurrently.
inline constexpr int kMaxLanes = 8;

/// Scheduling tier of a request. Lower values pack into an epoch first;
/// maps 1:1 onto the serve::kTiers metric buckets.
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBackground = 2,
};

/// Canonical tier name ("interactive" / "batch" / "background").
[[nodiscard]] const char* priority_name(Priority p);

/// Parse a tier name; throws soi::InvalidArgumentError listing the
/// valid tiers on anything else (mirrors the transport/engine registry
/// error style).
[[nodiscard]] Priority priority_from_name(const std::string& name);

/// Per-request scheduling knobs carried alongside the buffers.
struct SubmitOptions {
  Priority priority = Priority::kBatch;
  /// Relative deadline in milliseconds from submit(); 0 = none. A
  /// request whose modeled cost no longer fits before the deadline is
  /// shed with soi::DeadlineExceededError before any execution.
  double deadline_ms = 0.0;
};

/// One transform shape ("lane") requests are admitted against. Requests
/// on the same lane share one plan (and, distributed, one co-scheduled
/// batch); different lanes are independent tenant shapes.
struct LaneSpec {
  std::int64_t n = 0;  ///< transform length
  win::Accuracy accuracy = win::Accuracy::kHigh;
  /// Factorisation granularity: total segments P = max(ranks, 1) *
  /// segments_per_rank.
  std::int64_t segments_per_rank = 8;
  /// Distributed backend: chunk groups of the pipelined exchange
  /// (DistOptions::chunk_depth). Ignored by the serial backend.
  std::int64_t chunk_depth = 1;
};

struct ServeOptions {
  /// 0 = in-process serial backend (worker pool); >= 2 = in-process rank
  /// team co-scheduling batches through forward_many.
  int ranks = 0;
  /// Distributed backend: registered transport name hosting the rank
  /// team ("" = net::default_transport()). The rank bodies read the
  /// service's request slots directly, so the backend must report
  /// TransportCaps::threaded_world; selecting a cross-process transport
  /// (e.g. "shm") throws soi::InvalidArgumentError at construction.
  std::string transport;
  /// Serial backend worker threads. 0 is allowed (nothing executes until
  /// stop(); admission/rejection stays fully deterministic for tests).
  int workers = 1;
  /// Max requests per co-scheduled batch (distributed backend); bounded
  /// by net::kMaxChannels. Also the occupancy normaliser.
  int max_concurrency = 4;
  /// Bounded admission queue == request slot pool size. A request holds
  /// its slot from submit() until wait() returns, so this caps total
  /// in-flight work (queued + running + finished-unclaimed).
  int queue_capacity = 64;
  /// Distributed backend: run the pipelined (overlapped) schedule.
  bool overlap = true;
  /// Distributed backend: emulated per-message wire latency in
  /// microseconds for the rank world (net::NetOptions::wire_latency_us).
  /// 0 = the raw in-process transport.
  double wire_latency_us = 0.0;
  /// Distributed backend: batching delay in microseconds. A batch that
  /// would dispatch below max_concurrency lingers this long for more
  /// same-lane arrivals first (a partial batch amortises the exchange
  /// flight time over fewer transforms). 0 = dispatch immediately;
  /// bounded per batch, so worst-case added latency is exactly this.
  double batch_linger_us = 0.0;
  /// Distributed backend: cap on the summed modeled execution cost
  /// (tune::score_candidate, kModeled) packed into one epoch, in
  /// milliseconds. The first packed request always fits (no livelock);
  /// 0 = unlimited (pack to max_concurrency).
  double epoch_budget_ms = 0.0;
  /// Distributed backend: erasure-code the rank team's exchange
  /// (DistOptions::coding, "k+r"). Recoveries and parity volume surface
  /// in the per-tier resilience counters of the metrics snapshot.
  /// Default-constructed = coding off. Ignored by the serial backend.
  net::Coding coding;
};

/// Handle of one submitted request. Value type; becomes stale after
/// wait() returns (the slot generation advances).
struct Ticket {
  std::int32_t slot = -1;
  std::uint32_t gen = 0;
  [[nodiscard]] bool valid() const { return slot >= 0; }
};

class TransformService {
 public:
  explicit TransformService(ServeOptions opts);
  ~TransformService();
  TransformService(const TransformService&) = delete;
  TransformService& operator=(const TransformService&) = delete;

  /// Register a transform shape. Builds the lane's plan (through
  /// tune::PlanRegistry, so same-shape lanes across services share the
  /// expensive artifacts) and, distributed, constructs every rank's plan
  /// before returning. Not allocation-free; call during setup.
  int create_lane(const LaneSpec& spec);

  /// Drive every execution slot of every lane through one transform so
  /// all thread-local FFT scratch and per-instance states are touched;
  /// after warmup the submit/execute/wait cycle allocates nothing.
  void warmup();

  /// Admit a request: transform lane `lane` of `x` (length n) into `y`
  /// (length >= n), attributed to `tenant`. Buffers are caller-owned and
  /// must stay valid until wait() returns. Throws AdmissionRejectedError
  /// when the queue is full.
  Ticket submit(int lane, int tenant, cspan x, mspan y);
  Ticket submit(int lane, int tenant, cspan x, mspan y,
                const SubmitOptions& so);

  /// submit() that reports a full queue as std::nullopt instead of
  /// throwing (the open-loop load generator's path; still counts into
  /// metrics().rejected).
  std::optional<Ticket> try_submit(int lane, int tenant, cspan x, mspan y);
  std::optional<Ticket> try_submit(int lane, int tenant, cspan x, mspan y,
                                   const SubmitOptions& so);

  /// Modeled solo execution cost of one request on `lane`, in seconds
  /// (the deadline-shedding and epoch-budget price; priced once at
  /// create_lane via the modeled autotuner scorer).
  [[nodiscard]] double lane_cost_seconds(int lane) const;

  /// Block until the request finishes; rethrows its typed soi::Error if
  /// it failed, then frees the slot (the ticket becomes stale).
  void wait(const Ticket& t);

  /// Fail everything still queued (waiters see Status::kResourceExhausted),
  /// finish everything running, join all threads. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Counter snapshot over the current metrics epoch.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Zero the counters and restart the epoch clock (call while idle,
  /// e.g. right after warmup, so in-flight latencies don't straddle it).
  void reset_metrics();

  [[nodiscard]] int lane_count() const;
  [[nodiscard]] const ServeOptions& options() const { return opts_; }
  /// Execution slots occupancy is normalised by (workers or instances).
  [[nodiscard]] int slot_count() const;

 private:
  enum class SlotState : std::uint8_t {
    kFree,
    kQueued,
    kRunning,
    kDone,
    kFailed,
  };

  struct RequestSlot {
    SlotState state = SlotState::kFree;
    std::uint32_t gen = 0;
    std::int32_t lane = -1;
    std::int32_t tenant = 0;
    cspan in;
    mspan out;
    double submit_seconds = 0.0;  ///< epoch clock at admission
    Priority priority = Priority::kBatch;
    /// Absolute epoch-clock deadline in seconds; 0 = none.
    double deadline_seconds = 0.0;
    std::exception_ptr error;
  };

  struct Lane {
    LaneSpec spec;
    std::shared_ptr<const core::SoiFftSerial> plan;  // serial backend only
    cvec warm_in;
    cvec warm_out;
    /// Modeled solo execution cost (tune::score_candidate, kModeled) —
    /// the deadline-shedding / epoch-budget price of one request.
    double cost_seconds = 0.0;
  };

  enum class CmdType : std::uint8_t { kLane, kWarm, kBatch, kEpoch, kStop };

  /// One entry of the rank team's command log (distributed backend).
  /// Plain copyable value: rank bodies copy it out under the service
  /// mutex, so log growth never invalidates a reader.
  struct Command {
    CmdType type = CmdType::kBatch;
    std::int32_t lane = -1;  ///< kBatch/kLane/kWarm: the single lane
    std::int32_t count = 0;
    std::array<std::int32_t, net::kMaxChannels> slots{};
    /// kEpoch: per-member lane ids (mixed shapes; member i rides
    /// collective channel i).
    std::array<std::int32_t, net::kMaxChannels> lanes{};
  };

  [[nodiscard]] bool dist_mode() const { return opts_.ranks >= 2; }
  std::optional<Ticket> admit(int lane, int tenant, cspan x, mspan y,
                              const SubmitOptions& so, bool throw_on_full);
  void finish_slot_locked(std::int32_t idx, std::exception_ptr err,
                          double trace_seconds, double trace_wait_seconds);
  /// Fail a queued slot with DeadlineExceededError (counts into the
  /// shed metrics, not failed); caller already removed it from the ring.
  void shed_slot_locked(std::int32_t idx, double now);
  std::size_t append_command_locked(const Command& cmd);
  void await_acks(std::size_t cmd_idx, std::unique_lock<std::mutex>& lock);
  void worker_main(int w);
  void scheduler_main();
  void rank_main(net::Transport& comm);

  ServeOptions opts_;
  Timer epoch_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< queue work for workers/scheduler
  std::condition_variable cv_done_;  ///< completions, acks, warmup
  std::condition_variable cv_cmd_;   ///< new command-log entries (ranks)

  // Request slots + FIFO admission ring + free-slot stack, all sized
  // queue_capacity at construction.
  std::vector<RequestSlot> slots_;
  std::vector<std::int32_t> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::vector<std::int32_t> free_;

  std::array<Lane, kMaxLanes> lanes_;
  int nlanes_ = 0;

  // Serial backend: per-(worker, lane) execution states and the warmup
  // handshake flags (warmup must run ON the worker threads — BatchFft
  // scratch is thread-local).
  std::vector<std::unique_ptr<exec::ExecState>> states_;
  std::vector<std::thread> workers_;
  std::vector<char> warm_pending_;

  // Distributed backend: rank team + scheduler + command log. The
  // scheduler keeps at most kMaxBatchesInFlight batches issued ahead of
  // execution — one executing, one staged — so the admission backlog
  // accumulates in the ring and batches fill toward max_concurrency
  // instead of forming at arrival granularity.
  static constexpr std::int64_t kMaxBatchesInFlight = 2;
  std::thread world_thread_;
  std::thread scheduler_;
  std::vector<Command> commands_;
  // Per-command completion countdowns: kLane/kWarm acks gate await_acks;
  // a kBatch entry reaching `ranks` means every rank wrote its output
  // block and the last rank retires the batch (no inter-batch barrier).
  std::vector<int> cmd_acks_;
  std::vector<std::exception_ptr> cmd_errors_;
  std::int64_t batches_issued_ = 0;
  std::int64_t batches_done_ = 0;
  std::exception_ptr world_error_;
  bool world_failed_ = false;

  bool stopping_ = false;
  bool stopped_ = false;

  ServeMetrics metrics_;
};

}  // namespace soi::serve
