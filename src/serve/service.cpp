#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "tune/autotuner.hpp"
#include "tune/registry.hpp"

namespace soi::serve {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
    case Priority::kBackground: return "background";
  }
  return "batch";
}

Priority priority_from_name(const std::string& name) {
  if (name == "interactive") return Priority::kInteractive;
  if (name == "batch") return Priority::kBatch;
  if (name == "background") return Priority::kBackground;
  std::ostringstream os;
  os << "unknown priority tier '" << name
     << "'; valid tiers: interactive, batch, background";
  throw InvalidArgumentError(os.str());
}

namespace {

/// Modeled solo execution price of one request on a lane — the currency
/// of deadline shedding and the epoch budget. Deliberately the SAME
/// scorer the autotuner prices candidates with (kModeled), so the
/// scheduler and the tuner agree on what "expensive" means.
double modeled_lane_cost(const LaneSpec& spec, int ranks, bool overlap) {
  tune::TuneKey key;
  key.n = spec.n;
  key.ranks = std::max(ranks, 1);
  key.accuracy = spec.accuracy;
  tune::Candidate cand;
  cand.accuracy = spec.accuracy;
  cand.segments_per_rank = spec.segments_per_rank;
  cand.overlap = overlap;
  cand.chunk_depth = overlap ? spec.chunk_depth : 1;
  return tune::score_candidate(key, cand, tune::TuneOptions{})
      .total_seconds();
}

}  // namespace

TransformService::TransformService(ServeOptions opts) : opts_(opts) {
  SOI_CHECK(opts_.ranks == 0 || opts_.ranks >= 2,
            "TransformService: ranks must be 0 (serial) or >= 2, got "
                << opts_.ranks);
  SOI_CHECK(opts_.workers >= 0,
            "TransformService: workers must be >= 0");
  SOI_CHECK(opts_.max_concurrency >= 1 &&
                opts_.max_concurrency <= net::kMaxChannels,
            "TransformService: max_concurrency " << opts_.max_concurrency
                                                 << " not in [1, "
                                                 << net::kMaxChannels
                                                 << "]");
  SOI_CHECK(opts_.queue_capacity >= 1,
            "TransformService: queue_capacity must be >= 1");
  const auto cap = static_cast<std::size_t>(opts_.queue_capacity);
  slots_.resize(cap);
  ring_.resize(cap);
  free_.reserve(cap);
  for (std::size_t i = cap; i > 0; --i) {
    free_.push_back(static_cast<std::int32_t>(i - 1));
  }
  commands_.reserve(256);
  cmd_acks_.reserve(256);
  cmd_errors_.reserve(256);
  if (dist_mode()) {
    // Resolve + validate the transport up front, in the caller's thread:
    // unknown names throw the registry's typed error (listing every
    // registered backend), and cross-process fabrics are rejected here —
    // the rank bodies read the service's request slots directly, which
    // only works when every rank shares this address space.
    const std::string tname = opts_.transport.empty()
                                  ? net::default_transport()
                                  : opts_.transport;
    const net::TransportCaps& tcaps =
        net::TransportRegistry::instance().caps(tname);
    if (!tcaps.threaded_world) {
      std::ostringstream os;
      os << "TransformService: transport '" << tname
         << "' runs ranks in separate processes; the serving rank team "
            "needs a threaded_world transport (e.g. \"sim\")";
      throw InvalidArgumentError(os.str());
    }
    world_thread_ = std::thread([this, tname] {
      try {
        net::NetOptions nopts;
        nopts.wire_latency_us = opts_.wire_latency_us;
        net::run_world(tname, opts_.ranks, nopts,
                       [this](net::Transport& c) { rank_main(c); });
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!world_failed_) {
          world_failed_ = true;
          world_error_ = std::current_exception();
        }
        cv_done_.notify_all();
      }
    });
    scheduler_ = std::thread(&TransformService::scheduler_main, this);
  } else {
    states_.resize(static_cast<std::size_t>(opts_.workers) * kMaxLanes);
    warm_pending_.assign(static_cast<std::size_t>(opts_.workers), 0);
    workers_.reserve(static_cast<std::size_t>(opts_.workers));
    for (int w = 0; w < opts_.workers; ++w) {
      workers_.emplace_back(&TransformService::worker_main, this, w);
    }
  }
}

TransformService::~TransformService() {
  try {
    stop();
  } catch (...) {
    // Destructor must not throw; stop() failures are unrecoverable here.
  }
}

int TransformService::lane_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return nlanes_;
}

int TransformService::slot_count() const {
  return dist_mode() ? opts_.max_concurrency : std::max(opts_.workers, 1);
}

int TransformService::create_lane(const LaneSpec& spec) {
  SOI_CHECK(spec.n > 0, "TransformService: lane n must be > 0");
  SOI_CHECK(spec.segments_per_rank >= 1,
            "TransformService: segments_per_rank must be >= 1");
  auto& reg = tune::PlanRegistry::global();
  const auto prof = reg.profile(spec.accuracy);
  const auto n = static_cast<std::size_t>(spec.n);

  if (!dist_mode()) {
    // The shared plan and the per-worker execution states are the
    // expensive part; build them before taking the service lock.
    const auto plan = reg.serial_plan(spec.n, spec.segments_per_rank, *prof);
    std::vector<std::unique_ptr<exec::ExecState>> sts;
    sts.reserve(static_cast<std::size_t>(opts_.workers));
    for (int w = 0; w < opts_.workers; ++w) {
      auto st = std::make_unique<exec::ExecState>();
      plan->init_state(*st);
      sts.push_back(std::move(st));
    }
    std::lock_guard<std::mutex> lk(mu_);
    SOI_CHECK(!stopping_, "TransformService: create_lane after stop()");
    SOI_CHECK(nlanes_ < kMaxLanes,
              "TransformService: lane limit " << kMaxLanes << " reached");
    const int id = nlanes_;
    Lane& lane = lanes_[static_cast<std::size_t>(id)];
    lane.spec = spec;
    lane.plan = plan;
    lane.cost_seconds = modeled_lane_cost(spec, /*ranks=*/1, opts_.overlap);
    lane.warm_in.assign(n, cplx{1.0, 0.0});
    // One warm-out slice per worker: all workers warm every lane
    // concurrently, so a shared output buffer would be a data race.
    lane.warm_out.assign(
        std::max<std::size_t>(1, static_cast<std::size_t>(opts_.workers)) * n,
        cplx{});
    for (int w = 0; w < opts_.workers; ++w) {
      states_[static_cast<std::size_t>(w) * kMaxLanes +
              static_cast<std::size_t>(id)] =
          std::move(sts[static_cast<std::size_t>(w)]);
    }
    nlanes_ = id + 1;
    return id;
  }

  std::unique_lock<std::mutex> lk(mu_);
  SOI_CHECK(!stopping_, "TransformService: create_lane after stop()");
  SOI_CHECK(nlanes_ < kMaxLanes,
            "TransformService: lane limit " << kMaxLanes << " reached");
  const int id = nlanes_;
  Lane& lane = lanes_[static_cast<std::size_t>(id)];
  lane.spec = spec;
  lane.cost_seconds = modeled_lane_cost(spec, opts_.ranks, opts_.overlap);
  lane.warm_in.assign(n, cplx{1.0, 0.0});
  lane.warm_out.assign(
      static_cast<std::size_t>(opts_.max_concurrency) * n, cplx{});
  nlanes_ = id + 1;
  Command cmd;
  cmd.type = CmdType::kLane;
  cmd.lane = id;
  const std::size_t cidx = append_command_locked(cmd);
  await_acks(cidx, lk);
  return id;
}

void TransformService::warmup() {
  std::unique_lock<std::mutex> lk(mu_);
  if (nlanes_ == 0) return;
  if (!dist_mode()) {
    if (opts_.workers == 0) return;
    for (auto& f : warm_pending_) f = 1;
    cv_work_.notify_all();
    cv_done_.wait(lk, [&] {
      return stopping_ ||
             std::all_of(warm_pending_.begin(), warm_pending_.end(),
                         [](char f) { return f == 0; });
    });
    return;
  }
  for (int l = 0; l < nlanes_; ++l) {
    Command cmd;
    cmd.type = CmdType::kWarm;
    cmd.lane = l;
    const std::size_t cidx = append_command_locked(cmd);
    await_acks(cidx, lk);
  }
}

Ticket TransformService::submit(int lane, int tenant, cspan x, mspan y) {
  return *admit(lane, tenant, x, y, SubmitOptions{}, /*throw_on_full=*/true);
}

Ticket TransformService::submit(int lane, int tenant, cspan x, mspan y,
                                const SubmitOptions& so) {
  return *admit(lane, tenant, x, y, so, /*throw_on_full=*/true);
}

std::optional<Ticket> TransformService::try_submit(int lane, int tenant,
                                                   cspan x, mspan y) {
  return admit(lane, tenant, x, y, SubmitOptions{}, /*throw_on_full=*/false);
}

std::optional<Ticket> TransformService::try_submit(int lane, int tenant,
                                                   cspan x, mspan y,
                                                   const SubmitOptions& so) {
  return admit(lane, tenant, x, y, so, /*throw_on_full=*/false);
}

double TransformService::lane_cost_seconds(int lane) const {
  std::lock_guard<std::mutex> lk(mu_);
  SOI_CHECK(lane >= 0 && lane < nlanes_,
            "TransformService: unknown lane " << lane);
  return lanes_[static_cast<std::size_t>(lane)].cost_seconds;
}

std::optional<Ticket> TransformService::admit(int lane, int tenant, cspan x,
                                              mspan y, const SubmitOptions& so,
                                              bool throw_on_full) {
  std::lock_guard<std::mutex> lk(mu_);
  SOI_CHECK(!stopping_, "TransformService: submit after stop()");
  SOI_CHECK(lane >= 0 && lane < nlanes_,
            "TransformService: unknown lane " << lane);
  SOI_CHECK(tenant >= 0, "TransformService: tenant must be >= 0");
  SOI_CHECK(so.deadline_ms >= 0.0,
            "TransformService: deadline_ms must be >= 0, got "
                << so.deadline_ms);
  const auto n = static_cast<std::size_t>(
      lanes_[static_cast<std::size_t>(lane)].spec.n);
  SOI_CHECK(x.size() == n, "TransformService: lane " << lane << " expects "
                                                     << n << " points, got "
                                                     << x.size());
  SOI_CHECK(y.size() >= n, "TransformService: output too small for lane "
                               << lane);
  if (free_.empty()) {
    metrics_.note_rejected();
    if (throw_on_full) {
      std::ostringstream os;
      os << "TransformService: admission queue full ("
         << opts_.queue_capacity << " slots occupied)";
      throw AdmissionRejectedError(os.str());
    }
    return std::nullopt;
  }
  const std::int32_t idx = free_.back();
  free_.pop_back();
  RequestSlot& s = slots_[static_cast<std::size_t>(idx)];
  s.state = SlotState::kQueued;
  s.lane = lane;
  s.tenant = tenant;
  s.in = x;
  s.out = y;
  s.submit_seconds = epoch_.seconds();
  s.priority = so.priority;
  s.deadline_seconds =
      so.deadline_ms > 0 ? s.submit_seconds + so.deadline_ms * 1e-3 : 0.0;
  s.error = nullptr;
  ring_[(ring_head_ + ring_size_) % ring_.size()] = idx;
  ++ring_size_;
  metrics_.note_admitted(static_cast<std::int64_t>(ring_size_),
                         static_cast<int>(so.priority));
  cv_work_.notify_one();
  return Ticket{idx, s.gen};
}

void TransformService::wait(const Ticket& t) {
  std::unique_lock<std::mutex> lk(mu_);
  SOI_CHECK(t.valid() &&
                static_cast<std::size_t>(t.slot) < slots_.size(),
            "TransformService::wait: invalid ticket");
  RequestSlot& s = slots_[static_cast<std::size_t>(t.slot)];
  SOI_CHECK(s.gen == t.gen && s.state != SlotState::kFree,
            "TransformService::wait: stale ticket (already waited?)");
  cv_done_.wait(lk, [&] {
    return s.state == SlotState::kDone || s.state == SlotState::kFailed;
  });
  const std::exception_ptr err = s.error;
  s.error = nullptr;
  s.state = SlotState::kFree;
  ++s.gen;
  s.in = {};
  s.out = {};
  s.lane = -1;
  free_.push_back(t.slot);
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

MetricsSnapshot TransformService::metrics() const {
  return metrics_.snapshot(epoch_.seconds(), slot_count());
}

void TransformService::reset_metrics() {
  metrics_.reset();
  epoch_.reset();
}

void TransformService::finish_slot_locked(std::int32_t idx,
                                          std::exception_ptr err,
                                          double trace_seconds,
                                          double trace_wait_seconds) {
  RequestSlot& s = slots_[static_cast<std::size_t>(idx)];
  s.state = err ? SlotState::kFailed : SlotState::kDone;
  s.error = err;
  if (err) {
    metrics_.note_failed();
  } else {
    metrics_.note_completed(epoch_.seconds() - s.submit_seconds,
                            static_cast<int>(s.priority));
    metrics_.note_tenant(s.tenant, trace_seconds, trace_wait_seconds);
  }
}

void TransformService::shed_slot_locked(std::int32_t idx, double now) {
  RequestSlot& s = slots_[static_cast<std::size_t>(idx)];
  const Lane& lane = lanes_[static_cast<std::size_t>(s.lane)];
  std::exception_ptr err;
  try {
    std::ostringstream os;
    os << "TransformService: request on lane " << s.lane << " ("
       << priority_name(s.priority) << ") shed before execution: "
       << (now >= s.deadline_seconds
               ? "deadline already passed"
               : "modeled cost exceeds the remaining deadline budget")
       << " (deadline in " << (s.deadline_seconds - now) * 1e3
       << " ms, modeled cost " << lane.cost_seconds * 1e3 << " ms)";
    throw DeadlineExceededError(os.str());
  } catch (...) {
    err = std::current_exception();
  }
  s.state = SlotState::kFailed;
  s.error = err;
  metrics_.note_shed(static_cast<int>(s.priority));
}

std::size_t TransformService::append_command_locked(const Command& cmd) {
  commands_.push_back(cmd);
  cmd_acks_.push_back(0);
  cmd_errors_.push_back(nullptr);
  cv_cmd_.notify_all();
  return commands_.size() - 1;
}

void TransformService::await_acks(std::size_t cmd_idx,
                                  std::unique_lock<std::mutex>& lock) {
  cv_done_.wait(lock, [&] {
    return world_failed_ || cmd_acks_[cmd_idx] >= opts_.ranks;
  });
  if (world_failed_) std::rethrow_exception(world_error_);
}

void TransformService::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopping_ = true;
    if (ring_size_ > 0) {
      std::exception_ptr err;
      try {
        throw AdmissionRejectedError(
            "TransformService stopped before the request was executed");
      } catch (...) {
        err = std::current_exception();
      }
      for (std::size_t i = 0; i < ring_size_; ++i) {
        const std::int32_t idx = ring_[(ring_head_ + i) % ring_.size()];
        metrics_.note_dequeued();
        finish_slot_locked(idx, err, 0.0, 0.0);
      }
      ring_size_ = 0;
    }
    for (auto& f : warm_pending_) f = 0;
    cv_work_.notify_all();
    cv_done_.notify_all();
  }
  for (auto& th : workers_) th.join();
  workers_.clear();
  if (dist_mode()) {
    if (scheduler_.joinable()) scheduler_.join();
    {
      std::lock_guard<std::mutex> lk(mu_);
      Command cmd;
      cmd.type = CmdType::kStop;
      append_command_locked(cmd);
    }
    if (world_thread_.joinable()) world_thread_.join();
  }
  std::lock_guard<std::mutex> lk(mu_);
  stopped_ = true;
}

// --- serial backend ---------------------------------------------------------

void TransformService::worker_main(int w) {
  const auto wi = static_cast<std::size_t>(w);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stopping_ || warm_pending_[wi] != 0 || ring_size_ > 0;
    });
    if (stopping_) return;
    if (warm_pending_[wi] != 0) {
      // Warmup runs HERE, on the worker thread: the batched FFT scratch
      // is thread-local, so only an execution on this thread can touch
      // the buffers this thread's steady-state requests will reuse.
      const int nl = nlanes_;
      lk.unlock();
      for (int l = 0; l < nl; ++l) {
        Lane& lane = lanes_[static_cast<std::size_t>(l)];
        exec::ExecState& st =
            *states_[wi * kMaxLanes + static_cast<std::size_t>(l)];
        const auto ln = static_cast<std::size_t>(lane.spec.n);
        lane.plan->forward_on(st, lane.warm_in,
                              mspan{lane.warm_out.data() + wi * ln, ln});
      }
      lk.lock();
      warm_pending_[wi] = 0;
      cv_done_.notify_all();
      continue;
    }
    // Tier-aware pick: the lowest tier present wins; within a tier the
    // scan order IS admission order, so FIFO fairness is preserved.
    const auto cap = ring_.size();
    std::size_t pick = 0;
    int best = static_cast<int>(
        slots_[static_cast<std::size_t>(ring_[ring_head_])].priority);
    for (std::size_t i = 1; i < ring_size_ && best > 0; ++i) {
      const auto cidx =
          static_cast<std::size_t>(ring_[(ring_head_ + i) % cap]);
      const int tier = static_cast<int>(slots_[cidx].priority);
      if (tier < best) {
        best = tier;
        pick = i;
      }
    }
    const std::int32_t idx = ring_[(ring_head_ + pick) % cap];
    for (std::size_t i = pick; i + 1 < ring_size_; ++i) {
      ring_[(ring_head_ + i) % cap] = ring_[(ring_head_ + i + 1) % cap];
    }
    --ring_size_;
    RequestSlot& s = slots_[static_cast<std::size_t>(idx)];
    metrics_.note_dequeued();
    // Deadline-aware shedding at dispatch: if the modeled cost no longer
    // fits before the deadline, fail the request NOW — before any of its
    // segment FFTs run — instead of wasting the worker on a result the
    // caller will discard.
    const Lane& lane = lanes_[static_cast<std::size_t>(s.lane)];
    const double now = epoch_.seconds();
    if (s.deadline_seconds > 0 &&
        now + lane.cost_seconds > s.deadline_seconds) {
      shed_slot_locked(idx, now);
      cv_done_.notify_all();
      continue;
    }
    s.state = SlotState::kRunning;
    exec::ExecState& st =
        *states_[wi * kMaxLanes + static_cast<std::size_t>(s.lane)];
    const cspan in = s.in;
    const mspan out = s.out;
    lk.unlock();

    Timer t;
    std::exception_ptr err;
    try {
      lane.plan->forward_on(st, in, out);
    } catch (...) {
      err = std::current_exception();
    }
    metrics_.note_busy(t.seconds());
    double secs = 0.0;
    double wait = 0.0;
    if (!err) {
      for (const auto& r : st.trace.records()) {
        secs += r.seconds;
        wait += r.wait_seconds;
      }
    }

    lk.lock();
    finish_slot_locked(idx, err, secs, wait);
    cv_done_.notify_all();
  }
}

// --- distributed backend ----------------------------------------------------

void TransformService::scheduler_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stopping_ ||
             (ring_size_ > 0 &&
              batches_issued_ - batches_done_ < kMaxBatchesInFlight);
    });
    if (stopping_) return;
    // Epoch linger: a below-capacity epoch waits (bounded) for more
    // arrivals of ANY shape — a partial epoch amortises the exchange
    // flight time over fewer transforms. Only the scheduler dequeues, so
    // queued requests cannot disappear while lingering.
    if (opts_.batch_linger_us > 0 &&
        ring_size_ < static_cast<std::size_t>(opts_.max_concurrency)) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::micro>(
                  opts_.batch_linger_us));
      cv_work_.wait_until(lk, deadline, [&] {
        return stopping_ ||
               ring_size_ >= static_cast<std::size_t>(opts_.max_concurrency);
      });
      if (stopping_) return;
    }
    const auto cap = ring_.size();
    // Pass 1 — deadline-aware shedding. A request whose modeled cost no
    // longer fits before its deadline fails HERE, before any of its
    // segment FFTs run, so it never occupies an epoch slot a feasible
    // request could use.
    {
      const double now = epoch_.seconds();
      std::size_t kept = 0;
      bool any_shed = false;
      for (std::size_t i = 0; i < ring_size_; ++i) {
        const std::int32_t idx = ring_[(ring_head_ + i) % cap];
        const RequestSlot& s = slots_[static_cast<std::size_t>(idx)];
        const Lane& lane = lanes_[static_cast<std::size_t>(s.lane)];
        if (s.deadline_seconds > 0 &&
            now + lane.cost_seconds > s.deadline_seconds) {
          metrics_.note_dequeued();
          shed_slot_locked(idx, now);
          any_shed = true;
        } else {
          ring_[(ring_head_ + kept++) % cap] = idx;
        }
      }
      ring_size_ = kept;
      if (any_shed) cv_done_.notify_all();
      if (ring_size_ == 0) continue;
    }
    // Pass 2 — epoch packing in (tier, FIFO) order: interactive members
    // first, then batch, then background; within a tier the scan order
    // IS admission order. Mixed shapes are welcome — the rank bodies
    // compose them into one merged chunk graph (exec::run_epoch).
    Command cmd;
    const double budget = opts_.epoch_budget_ms > 0
                              ? opts_.epoch_budget_ms * 1e-3
                              : std::numeric_limits<double>::infinity();
    double packed = 0.0;
    int taken = 0;
    for (int tier = 0; tier < kTiers && taken < opts_.max_concurrency;
         ++tier) {
      for (std::size_t i = 0;
           i < ring_size_ && taken < opts_.max_concurrency; ++i) {
        const std::int32_t idx = ring_[(ring_head_ + i) % cap];
        RequestSlot& s = slots_[static_cast<std::size_t>(idx)];
        if (s.state != SlotState::kQueued ||
            static_cast<int>(s.priority) != tier) {
          continue;
        }
        const double cost =
            lanes_[static_cast<std::size_t>(s.lane)].cost_seconds;
        // The first member always fits (no livelock); after that only
        // what the summed modeled price still allows.
        if (taken > 0 && packed + cost > budget) continue;
        cmd.slots[static_cast<std::size_t>(taken)] = idx;
        cmd.lanes[static_cast<std::size_t>(taken)] = s.lane;
        ++taken;
        packed += cost;
        s.state = SlotState::kRunning;
        metrics_.note_dequeued();
      }
    }
    // Compact: everything still queued keeps admission order.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < ring_size_; ++i) {
      const std::int32_t idx = ring_[(ring_head_ + i) % cap];
      if (slots_[static_cast<std::size_t>(idx)].state == SlotState::kQueued) {
        ring_[(ring_head_ + kept++) % cap] = idx;
      }
    }
    ring_size_ = kept;
    cmd.count = taken;
    // Same-lane fast path: a uniform epoch needs no cross-plan graph
    // composition — forward_many IS its merged schedule.
    bool uniform = true;
    for (int i = 1; i < taken; ++i) {
      uniform = uniform && cmd.lanes[static_cast<std::size_t>(i)] ==
                               cmd.lanes[0];
    }
    if (uniform) {
      cmd.type = CmdType::kBatch;
      cmd.lane = cmd.lanes[0];
    } else {
      cmd.type = CmdType::kEpoch;
      cmd.lane = -1;
    }
    ++batches_issued_;
    if (std::getenv("SOI_SERVE_DEBUG") != nullptr) {
      std::fprintf(stderr, "%s lane=%d count=%d ring=%zu cost=%.3fms\n",
                   cmd.type == CmdType::kEpoch ? "epoch" : "batch", cmd.lane,
                   cmd.count, ring_size_, packed * 1e3);
    }
    append_command_locked(cmd);
  }
}

void TransformService::rank_main(net::Transport& comm) {
  const int rank = comm.rank();
  std::array<std::unique_ptr<core::SoiFftDist>, kMaxLanes> plans;
  std::array<cspan, net::kMaxChannels> xs;
  std::array<mspan, net::kMaxChannels> ys;
  // Rank-local composition scratch of the mixed-shape (kEpoch) path,
  // (re)sized at kLane time so steady-state epochs never allocate.
  exec::RunScratch escratch;
  // Rank-local coded-exchange snapshots (per lane): the plan's counters
  // are cumulative, so per-batch resilience attribution is the delta
  // against the previous retirement.
  std::array<net::CodedStats, kMaxLanes> prev_coded{};
  std::size_t cursor = 0;
  try {
    for (;;) {
      Command cmd;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_cmd_.wait(lk,
                     [&] { return world_failed_ || commands_.size() > cursor; });
        if (world_failed_) return;
        cmd = commands_[cursor];
      }
      const std::size_t cmd_idx = cursor++;
      switch (cmd.type) {
        case CmdType::kStop:
          return;
        case CmdType::kLane: {
          // Every rank constructs its own plan; the registry memoises the
          // expensive shared artifacts (profile design, conv table), so R
          // concurrent constructions build each exactly once.
          const Lane& lane = lanes_[static_cast<std::size_t>(cmd.lane)];
          auto& reg = tune::PlanRegistry::global();
          const auto prof = reg.profile(lane.spec.accuracy);
          core::DistOptions dopts;
          dopts.segments_per_rank = lane.spec.segments_per_rank;
          dopts.chunk_depth = lane.spec.chunk_depth;
          dopts.overlap = opts_.overlap;
          dopts.max_concurrency = opts_.max_concurrency;
          dopts.coding = opts_.coding;
          dopts.validate_input = 0;  // service-level contract: no pre-scan
          dopts.table = reg.conv_table(
              lane.spec.n, comm.size() * lane.spec.segments_per_rank, *prof);
          plans[static_cast<std::size_t>(cmd.lane)] =
              std::make_unique<core::SoiFftDist>(comm, lane.spec.n, *prof,
                                                 dopts);
          // Worst-case epoch: max_concurrency members all running the
          // largest lane's graph.
          std::size_t max_nodes = 0;
          for (const auto& p : plans) {
            if (p) max_nodes = std::max(max_nodes, p->node_count());
          }
          exec::bind_epoch_scratch(
              escratch,
              static_cast<std::size_t>(opts_.max_concurrency) * max_nodes,
              opts_.max_concurrency);
          std::lock_guard<std::mutex> lk(mu_);
          ++cmd_acks_[cmd_idx];
          cv_done_.notify_all();
          break;
        }
        case CmdType::kWarm: {
          Lane& lane = lanes_[static_cast<std::size_t>(cmd.lane)];
          auto& plan = *plans[static_cast<std::size_t>(cmd.lane)];
          const std::int64_t local = plan.local_size();
          const int k = opts_.max_concurrency;
          for (int i = 0; i < k; ++i) {
            xs[static_cast<std::size_t>(i)] =
                cspan{lane.warm_in.data() + rank * local,
                      static_cast<std::size_t>(local)};
            ys[static_cast<std::size_t>(i)] =
                mspan{lane.warm_out.data() +
                          static_cast<std::int64_t>(i) * lane.spec.n +
                          rank * local,
                      static_cast<std::size_t>(local)};
          }
          plan.forward_many(std::span<const cspan>(xs.data(),
                                                   static_cast<std::size_t>(k)),
                            std::span<const mspan>(
                                ys.data(), static_cast<std::size_t>(k)));
          comm.barrier();
          std::lock_guard<std::mutex> lk(mu_);
          ++cmd_acks_[cmd_idx];
          cv_done_.notify_all();
          break;
        }
        case CmdType::kBatch: {
          auto& plan = *plans[static_cast<std::size_t>(cmd.lane)];
          const std::int64_t local = plan.local_size();
          const auto cnt = static_cast<std::size_t>(cmd.count);
          for (std::size_t i = 0; i < cnt; ++i) {
            const RequestSlot& s =
                slots_[static_cast<std::size_t>(cmd.slots[i])];
            xs[i] = cspan{s.in.data() + rank * local,
                          static_cast<std::size_t>(local)};
            ys[i] = mspan{s.out.data() + rank * local,
                          static_cast<std::size_t>(local)};
          }
          Timer bt;
          std::exception_ptr err;
          try {
            plan.forward_many(std::span<const cspan>(xs.data(), cnt),
                              std::span<const mspan>(ys.data(), cnt));
          } catch (...) {
            err = std::current_exception();
          }
          // No inter-batch barrier: a rendezvous between every batch
          // convoys the ranks and costs O(ranks x scheduler latency) on
          // an oversubscribed host. The transport matches messages FIFO
          // per (src, dst, tag), so a fast rank may run ahead into the next
          // batch while a slow rank drains this one — its sends queue
          // behind the current batch's and match in order. Completion is
          // a countdown instead: the LAST rank to finish observes that
          // every rank has written its output block and retires the
          // requests.
          std::lock_guard<std::mutex> lk(mu_);
          if (err && !cmd_errors_[cmd_idx]) cmd_errors_[cmd_idx] = err;
          {
            // Each rank folds its OWN resilience deltas (parity
            // recoveries are receive-side, per-rank work) into the
            // batch's tier: the tier of the batch's first request.
            auto& pc = prev_coded[static_cast<std::size_t>(cmd.lane)];
            const net::CodedStats cs = plan.coded_stats();
            metrics_.note_resilience(
                static_cast<int>(
                    slots_[static_cast<std::size_t>(cmd.slots[0])].priority),
                cs.recovered_chunks - pc.recovered_chunks,
                cs.parity_bytes - pc.parity_bytes, plan.last_retries());
            pc = cs;
          }
          if (++cmd_acks_[cmd_idx] == opts_.ranks) {
            metrics_.note_busy(bt.seconds() * static_cast<double>(cnt));
            ++batches_done_;
            cv_work_.notify_all();  // unblocks the scheduler's flow control
            const std::exception_ptr berr = cmd_errors_[cmd_idx];
            for (std::size_t i = 0; i < cnt; ++i) {
              double secs = 0.0;
              double wait = 0.0;
              if (!berr) {
                for (const auto& r :
                     plan.instance_trace(static_cast<int>(i)).records()) {
                  secs += r.seconds;
                  wait += r.wait_seconds;
                }
              }
              finish_slot_locked(cmd.slots[i], berr, secs, wait);
            }
            cv_done_.notify_all();
          }
          break;
        }
        case CmdType::kEpoch: {
          // Mixed-shape epoch: compose every member's chunk graph into
          // one merged schedule (exec::run_epoch). Member i rides
          // collective channel i; instances of each plan are numbered in
          // epoch order, identically on every rank.
          const auto cnt = static_cast<std::size_t>(cmd.count);
          std::array<exec::EpochMemberT<double>, net::kMaxChannels>
              members{};
          std::array<int, net::kMaxChannels> inst_of{};
          std::array<int, kMaxLanes> per_lane{};
          Timer bt;
          std::exception_ptr err;
          try {
            for (std::size_t i = 0; i < cnt; ++i) {
              const auto l = static_cast<std::size_t>(cmd.lanes[i]);
              auto& plan = *plans[l];
              const std::int64_t local = plan.local_size();
              const RequestSlot& s =
                  slots_[static_cast<std::size_t>(cmd.slots[i])];
              xs[i] = cspan{s.in.data() + rank * local,
                            static_cast<std::size_t>(local)};
              ys[i] = mspan{s.out.data() + rank * local,
                            static_cast<std::size_t>(local)};
              inst_of[i] = per_lane[l]++;
              plan.bind_epoch_member(members[i], inst_of[i],
                                     static_cast<int>(i), xs[i], ys[i]);
              members[i].tier = static_cast<int>(s.priority);
            }
            exec::run_epoch(std::span<const exec::EpochMemberT<double>>(
                                members.data(), cnt),
                            escratch);
            // Per plan, ascending lane order — identical on every rank,
            // because finish_epoch's residual guard may issue a
            // collective.
            for (std::size_t l = 0; l < kMaxLanes; ++l) {
              if (per_lane[l] > 0) plans[l]->finish_epoch(per_lane[l]);
            }
          } catch (...) {
            err = std::current_exception();
          }
          // Countdown retirement, exactly as kBatch: the LAST rank to
          // finish retires every member.
          std::lock_guard<std::mutex> lk(mu_);
          if (err && !cmd_errors_[cmd_idx]) cmd_errors_[cmd_idx] = err;
          {
            // Epoch-granularity attribution, same as kBatch: each rank's
            // deltas, credited to the epoch's first request's tier.
            const int tier0 = static_cast<int>(
                slots_[static_cast<std::size_t>(cmd.slots[0])].priority);
            for (std::size_t l = 0; l < kMaxLanes; ++l) {
              if (per_lane[l] == 0) continue;
              auto& pc = prev_coded[l];
              const net::CodedStats cs = plans[l]->coded_stats();
              metrics_.note_resilience(
                  tier0, cs.recovered_chunks - pc.recovered_chunks,
                  cs.parity_bytes - pc.parity_bytes, plans[l]->last_retries());
              pc = cs;
            }
          }
          if (++cmd_acks_[cmd_idx] == opts_.ranks) {
            metrics_.note_busy(bt.seconds() * static_cast<double>(cnt));
            ++batches_done_;
            cv_work_.notify_all();
            const std::exception_ptr berr = cmd_errors_[cmd_idx];
            for (std::size_t i = 0; i < cnt; ++i) {
              double secs = 0.0;
              double wait = 0.0;
              if (!berr) {
                const auto& plan =
                    *plans[static_cast<std::size_t>(cmd.lanes[i])];
                for (const auto& r :
                     plan.instance_trace(inst_of[i]).records()) {
                  secs += r.seconds;
                  wait += r.wait_seconds;
                }
              }
              finish_slot_locked(cmd.slots[i], berr, secs, wait);
            }
            cv_done_.notify_all();
          }
          break;
        }
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!world_failed_) {
      world_failed_ = true;
      world_error_ = std::current_exception();
    }
    cv_cmd_.notify_all();
    cv_done_.notify_all();
  }
}

}  // namespace soi::serve
