// Queueing and occupancy metrics of the serving layer.
//
// Everything on the request hot path is a relaxed atomic update — no
// locks, no allocation — so recording a completion costs a handful of
// fetch_adds. snapshot() folds the counters into plain values for the
// bench JSON schema: admitted/rejected/queued counts, p50/p99 latency
// from a fixed-bucket log-scale histogram, sustained transforms/sec, the
// time-integrated execution-slot occupancy, and per-tenant overlap
// efficiency (1 - wait/total over the tenant's stage traces).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

namespace soi::serve {

/// Tenants the per-tenant counters distinguish; ids >= kMaxTenants fold
/// into the last bucket.
inline constexpr int kMaxTenants = 32;

/// Priority tiers the queue/latency counters split by: 0 = interactive,
/// 1 = batch, 2 = background (serve::Priority maps onto these).
inline constexpr int kTiers = 3;

/// Lock-free fixed-bucket latency histogram: 128 quarter-octave buckets
/// starting at 1 us (bucket b covers [2^(b/4), 2^((b+1)/4)) us), so the
/// range spans 1 us .. ~4.3 ks with <= 19% bucket-width error — plenty
/// for p50/p99 reporting without per-request allocation.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 128;

  void record(double seconds) {
    int b = 0;
    if (seconds > 1e-6) {
      b = std::clamp(
          static_cast<int>(std::floor(std::log2(seconds / 1e-6) * 4.0)), 0,
          kBuckets - 1);
    }
    buckets_[static_cast<std::size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Latency quantile q in [0, 1], in seconds (bucket midpoint); -1 when
  /// nothing was recorded.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::int64_t count() const;

  void reset();

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// Plain-value snapshot for reporting (bench JSON, `soifft serve`).
struct MetricsSnapshot {
  std::int64_t admitted = 0;   ///< requests accepted onto the queue
  std::int64_t rejected = 0;   ///< typed-rejected at admission (queue full)
  std::int64_t completed = 0;  ///< requests finished successfully
  std::int64_t failed = 0;     ///< requests finished with an error
  std::int64_t queued = 0;     ///< waiting in the admission queue right now
  std::int64_t queue_peak = 0; ///< high-water mark of the admission queue
  double p50_ms = -1.0;
  double p99_ms = -1.0;
  double elapsed_seconds = 0.0;
  double transforms_per_sec = 0.0;  ///< completed / elapsed
  /// Time-integrated busy fraction of the execution slots (worker lanes
  /// or co-scheduled instances): busy-slot-seconds / (elapsed * slots).
  double arena_occupancy = 0.0;

  /// Requests shed by the deadline-aware scheduler BEFORE execution
  /// (DeadlineExceededError); disjoint from `failed` (execution errors)
  /// and `rejected` (queue-full backpressure).
  std::int64_t shed = 0;

  struct Tenant {
    int tenant = 0;
    std::int64_t completed = 0;
    /// 1 - wait/total over the tenant's per-execution stage traces
    /// (1.0 when nothing ever blocked — e.g. the serial backend).
    double overlap_efficiency = 1.0;
  };
  std::vector<Tenant> tenants;

  /// Per-priority-tier queue statistics (index = tier). The resilience
  /// counters attribute the rank team's recovery work at batch
  /// granularity (whole batch -> the tier of its first request):
  /// recovered_chunks / parity_bytes come from the coded exchange
  /// (core::SoiFftDist::coded_stats deltas), retries from the bounded-
  /// wait retransmit path — so a tier burning parity or retries is
  /// visible per tier, not just in aggregate.
  struct Tier {
    std::int64_t admitted = 0;
    std::int64_t completed = 0;
    std::int64_t shed = 0;
    std::int64_t recovered_chunks = 0;  ///< shards rebuilt from parity
    std::int64_t parity_bytes = 0;      ///< parity payload bytes sent
    std::int64_t retries = 0;           ///< retransmit-path retries
    double p50_ms = -1.0;
    double p99_ms = -1.0;
  };
  std::array<Tier, kTiers> tiers{};
};

/// Shared counter block of one TransformService. Writers are the
/// admission path and the execution backends; reads (snapshot) may race
/// with writes and see a slightly torn but individually-consistent view.
class ServeMetrics {
 public:
  void note_admitted(std::int64_t queue_depth, int tier = 1) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    tiers_[clamp_tier(tier)].admitted.fetch_add(1,
                                                std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t peak = queue_peak_.load(std::memory_order_relaxed);
    while (queue_depth > peak &&
           !queue_peak_.compare_exchange_weak(peak, queue_depth,
                                              std::memory_order_relaxed)) {
    }
  }
  void note_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void note_dequeued() { queued_.fetch_sub(1, std::memory_order_relaxed); }
  void note_completed(double latency_seconds, int tier = 1) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    latency_.record(latency_seconds);
    auto& t = tiers_[clamp_tier(tier)];
    t.completed.fetch_add(1, std::memory_order_relaxed);
    t.latency.record(latency_seconds);
  }
  void note_failed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  /// One request shed by the deadline-aware scheduler before execution.
  void note_shed(int tier) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    tiers_[clamp_tier(tier)].shed.fetch_add(1, std::memory_order_relaxed);
  }
  void note_busy(double slot_seconds) {
    busy_slot_seconds_.fetch_add(slot_seconds, std::memory_order_relaxed);
  }
  /// Fold one batch's resilience work into a tier: shards rebuilt from
  /// parity + parity bytes sent (coded exchange) and retransmit-path
  /// retries. Called by each rank with its own deltas, so the counters
  /// aggregate across the rank team.
  void note_resilience(int tier, std::uint64_t recovered_chunks,
                       std::uint64_t parity_bytes, std::int64_t retries) {
    auto& t = tiers_[clamp_tier(tier)];
    if (recovered_chunks > 0) {
      t.recovered_chunks.fetch_add(
          static_cast<std::int64_t>(recovered_chunks),
          std::memory_order_relaxed);
    }
    if (parity_bytes > 0) {
      t.parity_bytes.fetch_add(static_cast<std::int64_t>(parity_bytes),
                               std::memory_order_relaxed);
    }
    if (retries > 0) {
      t.retries.fetch_add(retries, std::memory_order_relaxed);
    }
  }

  /// Fold one execution trace into the tenant's overlap accounting.
  void note_tenant(int tenant, double seconds, double wait_seconds) {
    auto& t = tenants_[static_cast<std::size_t>(
        std::clamp(tenant, 0, kMaxTenants - 1))];
    t.completed.fetch_add(1, std::memory_order_relaxed);
    t.seconds.fetch_add(seconds, std::memory_order_relaxed);
    t.wait_seconds.fetch_add(wait_seconds, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Fold everything into plain values. `slots` is the number of
  /// execution slots occupancy is normalised by.
  [[nodiscard]] MetricsSnapshot snapshot(double elapsed_seconds,
                                         int slots) const;

  /// Zero every counter (new measurement epoch, e.g. after warmup).
  void reset();

 private:
  struct TenantCounters {
    std::atomic<std::int64_t> completed{0};
    std::atomic<double> seconds{0.0};
    std::atomic<double> wait_seconds{0.0};
  };

  struct TierCounters {
    std::atomic<std::int64_t> admitted{0};
    std::atomic<std::int64_t> completed{0};
    std::atomic<std::int64_t> shed{0};
    std::atomic<std::int64_t> recovered_chunks{0};
    std::atomic<std::int64_t> parity_bytes{0};
    std::atomic<std::int64_t> retries{0};
    LatencyHistogram latency;
  };

  static std::size_t clamp_tier(int tier) {
    return static_cast<std::size_t>(std::clamp(tier, 0, kTiers - 1));
  }

  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> queued_{0};
  std::atomic<std::int64_t> queue_peak_{0};
  std::atomic<double> busy_slot_seconds_{0.0};
  LatencyHistogram latency_;
  std::array<TenantCounters, kMaxTenants> tenants_{};
  std::array<TierCounters, kTiers> tiers_{};
};

}  // namespace soi::serve
