#include "serve/metrics.hpp"

namespace soi::serve {

double LatencyHistogram::quantile(double q) const {
  std::int64_t total = 0;
  std::array<std::int64_t, kBuckets> counts{};
  for (int b = 0; b < kBuckets; ++b) {
    counts[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    total += counts[static_cast<std::size_t>(b)];
  }
  if (total == 0) return -1.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[static_cast<std::size_t>(b)];
    if (static_cast<double>(seen) >= target) {
      // Bucket midpoint on the log scale.
      return 1e-6 * std::exp2((static_cast<double>(b) + 0.5) / 4.0);
    }
  }
  return 1e-6 * std::exp2(static_cast<double>(kBuckets) / 4.0);
}

std::int64_t LatencyHistogram::count() const {
  std::int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsSnapshot ServeMetrics::snapshot(double elapsed_seconds,
                                       int slots) const {
  MetricsSnapshot s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.queued = queued_.load(std::memory_order_relaxed);
  s.queue_peak = queue_peak_.load(std::memory_order_relaxed);
  const double p50 = latency_.quantile(0.50);
  const double p99 = latency_.quantile(0.99);
  s.p50_ms = p50 < 0 ? -1.0 : p50 * 1e3;
  s.p99_ms = p99 < 0 ? -1.0 : p99 * 1e3;
  s.elapsed_seconds = elapsed_seconds;
  s.transforms_per_sec =
      elapsed_seconds > 0 ? static_cast<double>(s.completed) / elapsed_seconds
                          : 0.0;
  const double denom = elapsed_seconds * static_cast<double>(slots);
  s.arena_occupancy =
      denom > 0 ? std::clamp(busy_slot_seconds_.load(
                                 std::memory_order_relaxed) / denom,
                             0.0, 1.0)
                : 0.0;
  for (int t = 0; t < kMaxTenants; ++t) {
    const auto& c = tenants_[static_cast<std::size_t>(t)];
    const std::int64_t done = c.completed.load(std::memory_order_relaxed);
    if (done == 0) continue;
    MetricsSnapshot::Tenant out;
    out.tenant = t;
    out.completed = done;
    const double secs = c.seconds.load(std::memory_order_relaxed);
    const double wait = c.wait_seconds.load(std::memory_order_relaxed);
    out.overlap_efficiency =
        secs > 0 ? std::clamp(1.0 - wait / secs, 0.0, 1.0) : 1.0;
    s.tenants.push_back(out);
  }
  for (int t = 0; t < kTiers; ++t) {
    const auto& c = tiers_[static_cast<std::size_t>(t)];
    auto& out = s.tiers[static_cast<std::size_t>(t)];
    out.admitted = c.admitted.load(std::memory_order_relaxed);
    out.completed = c.completed.load(std::memory_order_relaxed);
    out.shed = c.shed.load(std::memory_order_relaxed);
    out.recovered_chunks =
        c.recovered_chunks.load(std::memory_order_relaxed);
    out.parity_bytes = c.parity_bytes.load(std::memory_order_relaxed);
    out.retries = c.retries.load(std::memory_order_relaxed);
    const double tp50 = c.latency.quantile(0.50);
    const double tp99 = c.latency.quantile(0.99);
    out.p50_ms = tp50 < 0 ? -1.0 : tp50 * 1e3;
    out.p99_ms = tp99 < 0 ? -1.0 : tp99 * 1e3;
  }
  return s;
}

void ServeMetrics::reset() {
  admitted_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  queued_.store(0, std::memory_order_relaxed);
  queue_peak_.store(0, std::memory_order_relaxed);
  busy_slot_seconds_.store(0.0, std::memory_order_relaxed);
  latency_.reset();
  shed_.store(0, std::memory_order_relaxed);
  for (auto& t : tenants_) {
    t.completed.store(0, std::memory_order_relaxed);
    t.seconds.store(0.0, std::memory_order_relaxed);
    t.wait_seconds.store(0.0, std::memory_order_relaxed);
  }
  for (auto& t : tiers_) {
    t.admitted.store(0, std::memory_order_relaxed);
    t.completed.store(0, std::memory_order_relaxed);
    t.shed.store(0, std::memory_order_relaxed);
    t.recovered_chunks.store(0, std::memory_order_relaxed);
    t.parity_bytes.store(0, std::memory_order_relaxed);
    t.retries.store(0, std::memory_order_relaxed);
    t.latency.reset();
  }
}

}  // namespace soi::serve
