// Nonuniform FFT, derived from the same hybrid convolution machinery as the
// SOI transform (paper, Section 8: "Using that general convolution theorem,
// a large body of the work generally known as nonuniform FFTs can be
// rederived").
//
// Conventions (modes are centred, points live on the unit circle [0, 1)):
//   type 1 (nonuniform -> uniform, "adjoint"):
//       f[k] = sum_j c[j] exp(-i 2 pi k t_j),   k = -M/2 .. M/2-1
//   type 2 (uniform -> nonuniform, "evaluation"):
//       c[j] = sum_k f[k] exp(+i 2 pi k t_j)
//
// Algorithm: spread/interpolate through a truncated (tau, sigma)
// Gauss-smoothed-rect window on a 2x oversampled grid, one FFT of length
// 2M, and a diagonal deconvolution by Hhat — the exact analogue of the SOI
// pipeline's convolution + F_M' + demodulation, with the band geometry
// (band 1/4 of the oversampled grid, aliases from 3/4) instead of SOI's
// (1/2, 1/2 + beta).
#pragma once

#include <memory>

#include "common/types.hpp"
#include "fft/plan.hpp"
#include "window/window.hpp"

namespace soi::nufft {

/// Reusable plan for M modes at a given accuracy.
class NufftPlan {
 public:
  /// `modes` must be even. `tol` is the target relative accuracy
  /// (e.g. 1e-12); the plan designs the window and spreading width for it.
  NufftPlan(std::int64_t modes, double tol);

  [[nodiscard]] std::int64_t modes() const { return m_; }
  /// Spreading width in (oversampled) grid points.
  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] double tol() const { return tol_; }

  /// Type 1: points[j] in [0,1), coeffs[j] arbitrary; out has `modes`
  /// entries ordered k = -M/2 .. M/2-1.
  void type1(std::span<const double> points, cspan coeffs, mspan out) const;

  /// Type 2: f has `modes` entries (k = -M/2 .. M/2-1); out[j] receives the
  /// trigonometric sum at points[j].
  void type2(std::span<const double> points, cspan f, mspan out) const;

  /// O(M * n) direct evaluation of the type-1 sum (testing/verification).
  static void type1_direct(std::span<const double> points, cspan coeffs,
                           std::int64_t modes, mspan out);

  /// O(M * n) direct evaluation of the type-2 sum.
  static void type2_direct(std::span<const double> points, cspan f,
                           mspan out);

 private:
  /// Spreading kernel value psi(t - i/Mr) = H(Mr*t - i).
  [[nodiscard]] double kernel(double grid_units) const;

  std::int64_t m_;        // modes M
  std::int64_t mr_;       // oversampled grid, 2M
  std::int64_t width_;    // spreading width (grid points)
  double tol_;
  std::shared_ptr<const win::Window> window_;
  fft::FftPlan plan_;     // size Mr
  dvec deconv_;           // 1 / Hhat(k / Mr), k = -M/2 .. M/2-1
};

}  // namespace soi::nufft
