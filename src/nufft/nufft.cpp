#include "nufft/nufft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "window/design.hpp"

namespace soi::nufft {

namespace {

// NUFFT band geometry at 2x oversampling: the M modes map to
// |xi| <= M/(2*Mr) = 1/4 of the window's normalised axis; periodisation
// images appear from |xi| >= 1 - 1/4 = 3/4, spaced 1 apart.
constexpr double kBandHalf = 0.25;
constexpr double kAliasStart = 0.75;
constexpr double kImagePeriod = 1.0;

/// Smallest-width (tau, sigma) window meeting `tol` in the NUFFT geometry.
std::shared_ptr<const win::Window> design_gridding_window(double tol,
                                                          std::int64_t* taps) {
  SOI_CHECK(tol > 0.0 && tol < 0.1, "NufftPlan: tol out of range (0, 0.1)");
  std::shared_ptr<const win::GaussSmoothedRect> best;
  std::int64_t best_taps = 1 << 30;
  for (double tau = 0.35; tau <= 0.90 + 1e-9; tau += 0.05) {
    // For fixed tau, aliasing falls monotonically with sigma; binary-search
    // the smallest feasible sigma (fewest taps).
    double lo = 0.5, hi = 0.5;
    bool feasible = false;
    for (int it = 0; it < 40; ++it) {
      win::GaussSmoothedRect w(tau, hi);
      if (win::evaluate_window_bands(w, kBandHalf, kAliasStart, kImagePeriod)
              .eps_alias <= tol) {
        feasible = true;
        break;
      }
      lo = hi;
      hi *= 2.0;
    }
    if (!feasible) continue;
    for (int it = 0; it < 30 && hi / lo > 1.01; ++it) {
      const double mid = std::sqrt(lo * hi);
      win::GaussSmoothedRect w(tau, mid);
      if (win::evaluate_window_bands(w, kBandHalf, kAliasStart, kImagePeriod)
              .eps_alias <= tol) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    auto w = std::make_shared<win::GaussSmoothedRect>(tau, hi);
    const auto m =
        win::evaluate_window_bands(*w, kBandHalf, kAliasStart, kImagePeriod);
    if (m.kappa > 1e4) continue;  // keep the deconvolution well conditioned
    const std::int64_t t = win::choose_taps(*w, tol);
    if (t < best_taps) {
      best_taps = t;
      best = std::move(w);
    }
  }
  SOI_CHECK(best != nullptr, "NufftPlan: no feasible window for tol=" << tol);
  *taps = best_taps;
  return best;
}

}  // namespace

NufftPlan::NufftPlan(std::int64_t modes, double tol)
    : m_(modes), mr_(2 * modes), tol_(tol), plan_(2 * modes) {
  SOI_CHECK(modes >= 8 && modes % 2 == 0,
            "NufftPlan: modes must be even and >= 8, got " << modes);
  window_ = design_gridding_window(tol, &width_);
  SOI_CHECK(width_ < mr_, "NufftPlan: spreading width exceeds the grid");
  // Deconvolution table 1 / Hhat(k / Mr) for k = -M/2 .. M/2-1.
  deconv_.resize(static_cast<std::size_t>(m_));
  for (std::int64_t k = -m_ / 2; k < m_ / 2; ++k) {
    const double h = window_->hhat(static_cast<double>(k) /
                                   static_cast<double>(mr_));
    SOI_CHECK(std::abs(h) > 1e-300, "NufftPlan: window vanishes in band");
    deconv_[static_cast<std::size_t>(k + m_ / 2)] = 1.0 / h;
  }
}

double NufftPlan::kernel(double grid_units) const {
  return window_->h(grid_units);
}

void NufftPlan::type1(std::span<const double> points, cspan coeffs,
                      mspan out) const {
  SOI_CHECK(points.size() == coeffs.size(),
            "type1: one coefficient per point required");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(m_),
            "type1: output needs `modes` entries");
  // Spread onto the oversampled grid.
  cvec grid(static_cast<std::size_t>(mr_), cplx{0.0, 0.0});
  const double w2 = 0.5 * static_cast<double>(width_);
  for (std::size_t j = 0; j < points.size(); ++j) {
    double tj = points[j] - std::floor(points[j]);  // wrap into [0,1)
    const double x = tj * static_cast<double>(mr_);
    const auto i0 = static_cast<std::int64_t>(std::ceil(x - w2));
    for (std::int64_t l = 0; l < width_; ++l) {
      const std::int64_t i = i0 + l;
      grid[static_cast<std::size_t>(pmod(i, mr_))] +=
          coeffs[j] * kernel(x - static_cast<double>(i));
    }
  }
  // One FFT of the oversampled grid, then deconvolve the kept band.
  cvec ghat(grid.size());
  plan_.forward(grid, ghat);
  for (std::int64_t k = -m_ / 2; k < m_ / 2; ++k) {
    out[static_cast<std::size_t>(k + m_ / 2)] =
        ghat[static_cast<std::size_t>(pmod(k, mr_))] *
        deconv_[static_cast<std::size_t>(k + m_ / 2)];
  }
}

void NufftPlan::type2(std::span<const double> points, cspan f,
                      mspan out) const {
  SOI_CHECK(f.size() == static_cast<std::size_t>(m_),
            "type2: f needs `modes` entries");
  SOI_CHECK(out.size() >= points.size(), "type2: output too small");
  // Deconvolve and pad into the oversampled spectrum.
  cvec d(static_cast<std::size_t>(mr_), cplx{0.0, 0.0});
  for (std::int64_t k = -m_ / 2; k < m_ / 2; ++k) {
    d[static_cast<std::size_t>(pmod(k, mr_))] =
        f[static_cast<std::size_t>(k + m_ / 2)] *
        deconv_[static_cast<std::size_t>(k + m_ / 2)];
  }
  // G(i/Mr) = sum_k d_k exp(+2 pi i k i / Mr): inverse FFT sans the 1/Mr.
  cvec g(d.size());
  plan_.inverse(d, g);
  for (auto& v : g) v *= static_cast<double>(mr_);
  // Interpolate at each target point.
  const double w2 = 0.5 * static_cast<double>(width_);
  for (std::size_t j = 0; j < points.size(); ++j) {
    double tj = points[j] - std::floor(points[j]);
    const double x = tj * static_cast<double>(mr_);
    const auto i0 = static_cast<std::int64_t>(std::ceil(x - w2));
    cplx acc{0.0, 0.0};
    for (std::int64_t l = 0; l < width_; ++l) {
      const std::int64_t i = i0 + l;
      acc += g[static_cast<std::size_t>(pmod(i, mr_))] *
             kernel(x - static_cast<double>(i));
    }
    out[j] = acc;
  }
}

void NufftPlan::type1_direct(std::span<const double> points, cspan coeffs,
                             std::int64_t modes, mspan out) {
  SOI_CHECK(points.size() == coeffs.size(), "type1_direct: size mismatch");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(modes),
            "type1_direct: output too small");
  for (std::int64_t k = -modes / 2; k < modes / 2; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < points.size(); ++j) {
      const double ang = -kTwoPi * static_cast<double>(k) * points[j];
      acc += coeffs[j] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[static_cast<std::size_t>(k + modes / 2)] = acc;
  }
}

void NufftPlan::type2_direct(std::span<const double> points, cspan f,
                             mspan out) {
  const auto modes = static_cast<std::int64_t>(f.size());
  SOI_CHECK(out.size() >= points.size(), "type2_direct: output too small");
  for (std::size_t j = 0; j < points.size(); ++j) {
    cplx acc{0.0, 0.0};
    for (std::int64_t k = -modes / 2; k < modes / 2; ++k) {
      const double ang = kTwoPi * static_cast<double>(k) * points[j];
      acc += f[static_cast<std::size_t>(k + modes / 2)] *
             cplx{std::cos(ang), std::sin(ang)};
    }
    out[j] = acc;
  }
}

}  // namespace soi::nufft
