// The shared SOI stage chain (Eq. 6), expressed once for every execution
// path: serial (null comm), distributed (any net::Transport) and the
// real-input wrapper all append THESE stages to their pipelines — the
// conv, F_P + permute, exchange, F_M' and demod bodies exist exactly once,
// in stages.cpp.
//
// Chain layout (pipeline positions relative to `base`):
//   base+0  halo+conv   emits records "halo", "conv"
//   base+1  f_p         batched I (x) F_P, stride-P permutation fused
//   base+2  exchange    the single all-to-all (no-op under a null comm)
//   base+3  unpack      post-exchange segment assembly (no-op, null comm)
//   base+4  f_mprime    batched I (x) F_M'
//   base+5  demod       demodulate + project
// Under a null comm the F_P stage stores straight into the x-tilde buffer
// (the exchange would be the identity), so serial pays no extra copies.
//
// Distributed chains are chunk-granular dataflow graphs: the halo travels
// as isend/irecv with the convolution split into halo-independent "safe"
// groups and a tail that waits, and the exchange..demod stages are cut
// into `chunk_depth` segment groups, each moved by its own nonblocking
// ialltoallv into one of two group-sized buffer slots. Under the
// pipelined schedule (ExecContext::overlap) group g+1's exchange is in
// flight while group g's f_mprime/demod computes; the in-order schedule
// runs the same nodes chunk-major. Both are topological orders of the
// same edges, so outputs are bit-identical.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "fft/engine.hpp"
#include "net/erasure.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "soi/conv_table.hpp"
#include "soi/exec.hpp"
#include "soi/params.hpp"

namespace soi::core {

/// Index of the first NaN/Inf sample in `x`, or -1 when every value is
/// finite — the input-validation pre-scan of the forward entry points.
template <class Real>
[[nodiscard]] inline std::int64_t first_nonfinite(
    std::span<const std::complex<Real>> x) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i].real()) || !std::isfinite(x[i].imag())) {
      return static_cast<std::int64_t>(i);
    }
  }
  return -1;
}

/// Plan-time environment of one chain instance on one rank. The plan
/// object owns this (and the pointed-to geometry/table/FFT plans) for the
/// pipeline's lifetime; stages hold a pointer to it.
template <class Real>
struct ChainEnvT {
  const SoiGeometry* geom = nullptr;
  const ConvTableT<Real>* table = nullptr;
  const fft::BatchTransformT<Real>* batch_p = nullptr;
  const fft::BatchTransformT<Real>* batch_mp = nullptr;
  int ranks = 1;          ///< communicator size (1 for serial)
  std::int64_t spr = 1;   ///< segments computed on this rank
  bool has_comm = false;  ///< false = null comm: serial specialisation
  net::AlltoallAlgo algo = net::AlltoallAlgo::kPairwise;
  /// Chunk groups the exchange..demod stages are cut into; must divide
  /// spr. 1 = whole-rank exchange (the classic single all-to-all call).
  std::int64_t chunk_depth = 1;
  /// Fabric shape the exchange schedule targets. Flat keeps the native
  /// ialltoall(v) path; two-level / torus route each chunk group through
  /// the staged store-and-forward schedule of `staged` (set alongside this
  /// by the plan owner, before append_chain_stages). All schedules place
  /// blocks bit-identically.
  net::Topology topo;
  net::StagedPlan staged;
  /// Exchange redundancy (k data + r parity shards per peer message).
  /// Disabled (the default) keeps the pure CRC32C + retransmit path; when
  /// enabled every exchange message — flat AND staged schedules — travels
  /// as k+r coded shards and up to r losses per message are reconstructed
  /// locally with no retransmit round trip.
  net::Coding coding;
  /// Sink for the coded exchange's counters (recovered shards, parity
  /// bytes, fallbacks). Owned by the plan; null = untracked.
  net::CodedStatsAtomic* coded_stats = nullptr;
  /// Executions of this chain that may be in flight at once (co-scheduled
  /// via Pipeline::run_many or racing from worker threads). The stages
  /// size their per-execution mutable state (in-flight requests) from
  /// this at construction, indexed by ExecContext::instance — so it must
  /// be set BEFORE append_chain_stages().
  int max_instances = 1;

  // Arena buffers, filled by reserve_chain_buffers(). With chunk_depth > 1
  // recv/xt/uf are the FIRST of nslots() group-sized slots (slot g mod
  // nslots serves chunk group g; WorkspaceArena::slot() addresses the
  // rest). stg (staged topology schedules only) holds the per-slot
  // pack + ping-pong holdings scratch of the store-and-forward exchange.
  WorkspaceArena::BufferId ext, v, send, recv, xt, uf, stg;
  /// Coded-exchange scratch (coding.enabled() only): cframe holds the
  /// per-slot receive frames + decode scratch, cpack the send-side
  /// staging frames (parity shards, padded tail shard, one wire frame).
  WorkspaceArena::BufferId cpack, cframe;
  /// Optional chain endpoints: invalid = use ctx.in / ctx.out (the real
  /// wrapper brackets the chain with arena-resident z / zf instead).
  WorkspaceArena::BufferId src, dst;

  // Plan-time ialltoallv layout (chunk_depth > 1 only): uniform
  // per-destination counts, per-group send displacements (chunk_depth x
  // ranks, row-major), and slot-relative recv displacements.
  std::vector<std::int64_t> a2a_counts;
  std::vector<std::int64_t> a2a_send_displs;
  std::vector<std::int64_t> a2a_recv_displs;

  [[nodiscard]] std::int64_t chunks() const {
    return spr * geom->chunks_per_rank();
  }
  [[nodiscard]] std::int64_t m_rank() const { return spr * geom->m(); }
  /// Segments per chunk group.
  [[nodiscard]] std::int64_t gseg() const { return spr / chunk_depth; }
  /// Buffer slots backing the chunked stages: one per chunk group up to
  /// four, so the pipelined schedule can keep up to nslots() exchanges in
  /// flight (slot g mod nslots serves chunk group g).
  [[nodiscard]] int nslots() const {
    return chunk_depth > 1
               ? static_cast<int>(std::min<std::int64_t>(chunk_depth, 4))
               : 1;
  }
  /// True when the exchange runs the staged topology schedule instead of
  /// the native flat all-to-all.
  [[nodiscard]] bool staged_exchange() const {
    return has_comm && ranks > 1 &&
           topo.kind() != net::TopologyKind::kFlat;
  }
  /// True when the exchange sends coded shards instead of raw blocks.
  [[nodiscard]] bool coded_exchange() const {
    return has_comm && ranks > 1 && coding.enabled();
  }
};

/// Declare the chain's intermediate buffers in `arena` with live intervals
/// relative to pipeline position `base` (the halo+conv stage's index).
template <class Real>
void reserve_chain_buffers(WorkspaceArena& arena, ChainEnvT<Real>& env,
                           int base);

/// Append the six shared stages to `pl` and declare their dataflow nodes
/// and edges (halo post/wait + safe/tail convolution; per-chunk-group
/// exchange post/wait, unpack, f_mprime, demod with double-buffer
/// write-after-read edges). `env` must outlive the pipeline.
template <class Real>
void append_chain_stages(exec::PipelineT<Real>& pl, const ChainEnvT<Real>& env);

/// r2c wrapper stages (double precision): pack interleaves the real signal
/// into the half-length complex buffer `z` (record "r2c_pack"); untangle
/// splits the half-spectrum buffer `zf` into the h+1 output bins using the
/// caller-owned twiddle table (record "r2c_untangle").
std::unique_ptr<exec::StageT<double>> make_r2c_pack_stage(
    WorkspaceArena::BufferId z, std::int64_t h);
std::unique_ptr<exec::StageT<double>> make_r2c_untangle_stage(
    WorkspaceArena::BufferId zf, const cvec* twiddle, std::int64_t h);

}  // namespace soi::core
