// The shared SOI stage chain (Eq. 6), expressed once for every execution
// path: serial (null comm), distributed (SimMPI comm, blocking or
// halo-overlapped) and the real-input wrapper all append THESE stages to
// their pipelines — the conv, F_P+permute, exchange, F_M' and demod
// bodies exist exactly once, in stages.cpp.
//
// Chain layout (pipeline positions relative to `base`):
//   base+0  halo+conv   emits records "halo", "conv"
//   base+1  f_p         batched I (x) F_P, stride-P permutation fused
//   base+2  exchange    the single all-to-all (no-op under a null comm)
//   base+3  unpack      post-exchange segment assembly (no-op, null comm)
//   base+4  f_mprime    batched I (x) F_M'
//   base+5  demod       demodulate + project
// Under a null comm the F_P stage stores straight into the x-tilde buffer
// (the exchange would be the identity), so serial pays no extra copies.
#pragma once

#include <memory>

#include "common/arena.hpp"
#include "fft/batch.hpp"
#include "net/comm.hpp"
#include "soi/conv_table.hpp"
#include "soi/exec.hpp"
#include "soi/params.hpp"

namespace soi::core {

/// Plan-time environment of one chain instance on one rank. The plan
/// object owns this (and the pointed-to geometry/table/FFT plans) for the
/// pipeline's lifetime; stages hold a pointer to it.
template <class Real>
struct ChainEnvT {
  const SoiGeometry* geom = nullptr;
  const ConvTableT<Real>* table = nullptr;
  const fft::BatchFftT<Real>* batch_p = nullptr;
  const fft::BatchFftT<Real>* batch_mp = nullptr;
  int ranks = 1;          ///< communicator size (1 for serial)
  std::int64_t spr = 1;   ///< segments computed on this rank
  bool has_comm = false;  ///< false = null comm: serial specialisation
  net::AlltoallAlgo algo = net::AlltoallAlgo::kPairwise;

  // Arena buffers, filled by reserve_chain_buffers().
  WorkspaceArena::BufferId ext, v, send, recv, xt, uf;
  /// Optional chain endpoints: invalid = use ctx.in / ctx.out (the real
  /// wrapper brackets the chain with arena-resident z / zf instead).
  WorkspaceArena::BufferId src, dst;

  [[nodiscard]] std::int64_t chunks() const {
    return spr * geom->chunks_per_rank();
  }
  [[nodiscard]] std::int64_t m_rank() const { return spr * geom->m(); }
};

/// Declare the chain's intermediate buffers in `arena` with live intervals
/// relative to pipeline position `base` (the halo+conv stage's index).
template <class Real>
void reserve_chain_buffers(WorkspaceArena& arena, ChainEnvT<Real>& env,
                           int base);

/// Append the six shared stages to `pl`. `env` must outlive the pipeline.
template <class Real>
void append_chain_stages(exec::PipelineT<Real>& pl, const ChainEnvT<Real>& env);

/// r2c wrapper stages (double precision): pack interleaves the real signal
/// into the half-length complex buffer `z` (record "r2c_pack"); untangle
/// splits the half-spectrum buffer `zf` into the h+1 output bins using the
/// caller-owned twiddle table (record "r2c_untangle").
std::unique_ptr<exec::StageT<double>> make_r2c_pack_stage(
    WorkspaceArena::BufferId z, std::int64_t h);
std::unique_ptr<exec::StageT<double>> make_r2c_untangle_stage(
    WorkspaceArena::BufferId zf, const cvec* twiddle, std::int64_t h);

}  // namespace soi::core
