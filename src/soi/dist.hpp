// Distributed SOI FFT (paper, Sections 5-6, Figs. 2-4): the single-
// all-to-all, in-order, O(N log N) 1-D FFT over any net::Transport.
//
// Data distribution: block layout. Rank s holds x[s*M_rank .. (s+1)*M_rank)
// on input and receives the same span of y (its segments of interest) on
// output — natural order is preserved end to end.
//
// Segmentation: the factorisation's segment count P may exceed the rank
// count R ("In general, P can be a multiple of number of processor nodes,
// increasing the granularity of parallelism", Section 6). With
// segments_per_rank = g, P = g*R: each rank computes g consecutive
// segments; the convolution halo still crosses only one rank boundary.
//
// Pipeline per rank (communication in *italics*):
//   1. *halo*: one sendrecv of (B-nu)*P points with the ring neighbours,
//   2. convolution W x (g sub-blocks of chunks),
//   3. I (x) F_P over the local chunks, with the Fig. 3 per-destination
//      transpose pack fused into the batched pass's store phase,
//   5. *one Alltoall*,
//   6. g transforms F_M' on the assembled segment data,
//   7. demodulate + project to the M_rank outputs.
#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "fft/engine.hpp"
#include "net/erasure.hpp"
#include "net/transport.hpp"
#include "soi/breakdown.hpp"
#include "soi/conv_table.hpp"
#include "soi/exec.hpp"
#include "soi/params.hpp"
#include "soi/stages.hpp"
#include "window/design.hpp"

namespace soi::core {

/// Execution knobs of one distributed plan — the tunable point in the
/// candidate space src/tune searches over. Defaults reproduce the seed
/// behaviour (one segment per rank, pairwise exchange, no overlap).
struct DistOptions {
  /// P = comm.size() * segments_per_rank segments in total (Section 6).
  std::int64_t segments_per_rank = 1;
  /// Message schedule of the single global exchange.
  net::AlltoallAlgo alltoall_algo = net::AlltoallAlgo::kPairwise;
  /// When true, forward() uses the halo-overlapped pipeline by default.
  bool overlap = false;
  /// Transforms per SoA pass of the batched FFT stages (fft/batch.hpp);
  /// 0 derives the width from the detected SIMD tier. Autotuner knob.
  std::int64_t batch_width = 0;
  /// FFT-engine backend the local transform stages run on ("" = the
  /// process default: $SOI_FFT_ENGINE, else "batch"). Unknown names throw
  /// soi::InvalidArgumentError listing the registered engines. Wisdom
  /// records carry this, so tuned plans replay on the engine that scored
  /// them.
  std::string engine;
  /// Chunk groups the exchange..demod stages are cut into (the dataflow
  /// executor's double-buffer depth): group g+1's all-to-all piece is in
  /// flight while group g's f_mprime/demod computes under the pipelined
  /// schedule. Clamped to the largest divisor of segments_per_rank not
  /// exceeding it; 1 = the classic whole-rank exchange. Autotuner knob
  /// (cd=).
  std::int64_t chunk_depth = 1;
  /// Fabric shape the exchange schedule targets (net::Topology::parse
  /// syntax): "" / "flat" keeps the native all-to-all; "two-level[:G]"
  /// fuses each chunk group's blocks into an intra-group gather followed
  /// by fewer, larger inter-group messages; "torus[:k0xk1xk2]" forwards
  /// them dimension-by-dimension. All schedules place blocks
  /// bit-identically. Autotuner knob (topo=).
  std::string topology;
  /// Pre-built convolution table for this (N, P, profile) geometry, e.g.
  /// from tune::PlanRegistry so all ranks share one table instead of each
  /// building an identical copy. When null the plan builds its own.
  std::shared_ptr<const ConvTable> table;
  /// Chaos scenario installed into the communicator's world at plan
  /// construction (first configurer wins; every rank passes the same
  /// options). Empty = no injected faults.
  net::FaultSpec faults;
  /// Base deadline of one communication wait attempt in ms; 0 keeps waits
  /// unbounded (a default deadline is applied when faults are active).
  double timeout_ms = 0.0;
  /// Chunk-granularity retry budget before a wait surfaces
  /// soi::CommTimeoutError; 0 disables recovery (first detected fault is
  /// fatal with its typed error).
  int max_retries = 8;
  /// Post-demodulation Parseval/energy check scaled by the window
  /// condition number kappa (the paper's Section-5 error model as an
  /// acceptance gate); throws soi::AccuracyFaultError on violation.
  bool residual_guard = true;
  /// NaN/Inf input pre-scan: -1 = automatic (on in Debug builds, off in
  /// Release), 0 = off, 1 = on. Violations throw
  /// soi::InvalidArgumentError before any communication happens.
  int validate_input = -1;
  /// Independent transforms forward_many() may co-schedule per call (the
  /// serving layer's batch width). Sizes the per-instance execution
  /// states, request slots and transport collective channels at plan
  /// time; must not exceed the transport's caps().max_coll_channels. 1 =
  /// solo execution only.
  int max_concurrency = 1;
  /// Forward-error-correct the exchange ("k+r", the code= knob): each
  /// peer message travels as k data + r parity shards and the receiver
  /// rebuilds up to r lost/late/corrupt shards locally from parity — zero
  /// retransmit round trips, bit-identical output — falling back to the
  /// CRC32C + retransmit path (and the degraded() protocol) only beyond r
  /// losses. Default-constructed = coding off. Autotuner knob (code=).
  net::Coding coding;
};

/// Distributed SOI plan bound to a communicator.
/// Construct once per (N, profile, segmentation) and execute repeatedly.
class SoiFftDist {
 public:
  /// P = comm.size() * segments_per_rank segments in total.
  SoiFftDist(net::Transport& comm, std::int64_t n, win::SoiProfile profile,
             std::int64_t segments_per_rank = 1);

  /// Fully-knobbed constructor (autotuner / registry entry point).
  SoiFftDist(net::Transport& comm, std::int64_t n, win::SoiProfile profile,
             DistOptions options);

  [[nodiscard]] const SoiGeometry& geometry() const { return geom_; }
  [[nodiscard]] std::int64_t segments_per_rank() const { return spr_; }
  [[nodiscard]] const DistOptions& options() const { return opts_; }
  /// Points per rank: N / comm.size().
  [[nodiscard]] std::int64_t local_size() const { return spr_ * geom_.m(); }

  /// Forward transform of the block-distributed signal. `x_local` and
  /// `y_local` are this rank's local_size() input/output points. Runs the
  /// pipelined (overlapping) schedule when options().overlap is set
  /// (bit-identical results either way).
  void forward(cspan x_local, mspan y_local);

  /// Forward transform under the pipelined dataflow schedule: the halo
  /// isend/irecv overlaps the halo-independent convolution groups
  /// (generalising the overlapping technique of the paper's reference
  /// [11]), and with chunk_depth > 1 each chunk group's all-to-all piece
  /// is in flight while the previous group's f_mprime/demod computes.
  /// Same nodes, same dependency edges, different schedule — results are
  /// bit-identical to forward().
  void forward_overlapped(cspan x_local, mspan y_local);

  /// Effective chunk depth after clamping to a divisor of
  /// segments_per_rank.
  [[nodiscard]] std::int64_t chunk_depth() const { return env_.chunk_depth; }

  /// Co-scheduled forward of K <= options().max_concurrency independent
  /// block-distributed transforms in ONE deterministic interleaved
  /// schedule: every instance's exchange pieces post before any instance
  /// blocks, so waits mostly find their data already delivered — the
  /// multi-tenant throughput path. Collective: every rank must call with
  /// the same K, instance i's buffers on every rank belonging to the same
  /// logical transform (instance i travels on collective channel i). Each
  /// instance's output is bit-identical to a solo forward() of the same
  /// input; zero steady-state allocations on the SOI side (the simulated
  /// transport's per-message buffering is outside that guarantee).
  void forward_many(std::span<const cspan> xs_local,
                    std::span<const mspan> ys_local);

  /// Inverse transform (scaled by 1/N) via the conjugation identity —
  /// same block layout, same single all-to-all.
  void inverse(cspan y_local, mspan x_local);

  /// --- cross-plan epoch membership (exec::run_epoch) -------------------
  ///
  /// forward_many co-schedules K instances of ONE shape; an epoch
  /// composes members of SEVERAL SoiFftDist plans (mixed shapes) sharing
  /// one transport into a single merged schedule. Protocol, per epoch and
  /// identical on every rank:
  ///   1. bind_epoch_member() once per member, instances of each plan
  ///      numbered 0..k-1 in epoch order, channels globally unique across
  ///      the whole epoch (< caps().max_coll_channels);
  ///   2. exec::run_epoch() over all members (scratch sized via
  ///      exec::bind_epoch_scratch for the sum of the plans' node
  ///      counts);
  ///   3. finish_epoch() on each participating plan, in the SAME plan
  ///      order on every rank (its residual guard may issue a collective).
  /// Each member's output is bit-identical to a solo forward() of the
  /// same input; all epoch state is preallocated at construction, so the
  /// steady-state path allocates nothing.
  void bind_epoch_member(exec::EpochMemberT<double>& member, int instance,
                         int channel, cspan x_local, mspan y_local);

  /// Fold trace/degradation bookkeeping and run the output acceptance
  /// guard over the `k` members bound since the last finish_epoch().
  void finish_epoch(int k);

  /// Nodes in this plan's finalised chunk graph (sizes epoch scratch).
  [[nodiscard]] std::size_t node_count() const {
    return pipeline_.node_count();
  }

  /// Timing/volume breakdown of the most recent forward() call — a view
  /// over the per-stage trace.
  [[nodiscard]] const SoiDistBreakdown& last_breakdown() const {
    return breakdown_;
  }

  /// Structured per-stage trace of the most recent execution.
  [[nodiscard]] const exec::TraceLog& last_trace() const {
    return state_.trace;
  }
  /// Trace of co-scheduled instance `i` from the most recent
  /// forward_many() (instance 0 is last_trace()). The serving layer reads
  /// per-tenant overlap efficiency from these.
  [[nodiscard]] const exec::TraceLog& instance_trace(int i) const {
    return i == 0 ? state_.trace
                  : slots_[static_cast<std::size_t>(i - 1)]->trace;
  }
  /// The preplanned workspace (peak bytes, growth count — test surface).
  [[nodiscard]] const WorkspaceArena& workspace() const {
    return state_.arena;
  }

  /// True once a run needed communication retries: the plan has degraded
  /// to the in-order (non-overlapped) schedule for subsequent runs —
  /// results stay bit-identical, only the overlap is given up.
  [[nodiscard]] bool degraded() const { return degraded_; }
  /// Bounded-wait retries observed during the most recent run (summed
  /// over all stage records).
  [[nodiscard]] std::int64_t last_retries() const { return last_retries_; }
  /// Cumulative coded-exchange counters (all zero when options().coding
  /// is off): codewords completed, shards rebuilt from parity, parity
  /// payload bytes sent, and codewords that exceeded r losses and fell
  /// back to retransmit.
  [[nodiscard]] net::CodedStats coded_stats() const {
    return coded_stats_.snapshot();
  }

 private:
  void run_pipeline(cspan x_local, mspan y_local, bool overlap);
  void guard_outputs(std::span<const cspan> xs, std::span<const mspan> ys);

  net::Transport& comm_;
  win::SoiProfile profile_;
  DistOptions opts_;
  std::int64_t spr_;
  SoiGeometry geom_;
  std::shared_ptr<const ConvTable> table_;
  std::unique_ptr<const fft::BatchTransform> batch_p_;
  std::unique_ptr<const fft::BatchTransform> batch_mp_;
  ChainEnvT<double> env_;
  exec::PipelineT<double> pipeline_;
  exec::ExecState state_;
  SoiDistBreakdown breakdown_;
  // Co-scheduling state (max_concurrency > 1): instance i > 0 executes on
  // slots_[i-1] (cloned arena layout + trace); instance 0 reuses state_.
  // All preallocated at construction so forward_many allocates nothing.
  std::vector<std::unique_ptr<exec::ExecState>> slots_;
  exec::RunScratch multi_scratch_;
  std::vector<exec::ExecContextT<double>> many_ctx_;
  std::vector<exec::ExecContextT<double>*> many_ptrs_;
  std::vector<double> guard_energies_;  // 2 per instance (in, out)
  // Epoch membership bookkeeping: the buffers bound per instance, so
  // finish_epoch can run the guard without the caller re-passing them.
  std::vector<cspan> epoch_xs_;
  std::vector<mspan> epoch_ys_;
  bool degraded_ = false;
  std::int64_t last_retries_ = 0;
  net::CodedStatsAtomic coded_stats_;  // env_.coded_stats points here
  cvec conj_in_, conj_out_;  // conjugation scratch (inverse)
};

}  // namespace soi::core
