#include "soi/params.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace soi::core {

SoiGeometry::SoiGeometry(std::int64_t n, std::int64_t p,
                         const win::SoiProfile& profile)
    : n_(n), p_(p), mu_(profile.mu), nu_(profile.nu) {
  SOI_CHECK(n >= 1 && p >= 1, "SoiGeometry: need n >= 1, p >= 1");
  SOI_CHECK(mu_ > nu_ && nu_ >= 1, "SoiGeometry: oversampling mu/nu must be > 1");
  SOI_CHECK(gcd64(mu_, nu_) == 1,
            "SoiGeometry: mu/nu must be irreducible, got " << mu_ << "/"
                                                           << nu_);
  SOI_CHECK(n % p == 0, "SoiGeometry: P=" << p << " must divide N=" << n);
  m_ = n / p;
  SOI_CHECK(m_ % nu_ == 0, "SoiGeometry: nu=" << nu_ << " must divide M="
                                              << m_
                                              << " (so M' is an integer)");
  mprime_ = m_ / nu_ * mu_;
  SOI_CHECK(mprime_ % p == 0,
            "SoiGeometry: P=" << p << " must divide M'=" << mprime_
                              << " (chunks split evenly across ranks)");
  SOI_CHECK((mprime_ / p) % mu_ == 0,
            "SoiGeometry: mu=" << mu_ << " must divide M'/P=" << mprime_ / p
                               << " (row groups must not straddle ranks)");
  SOI_CHECK(profile.taps >= 2, "SoiGeometry: profile has no taps");
  // Slack for the shared group input range (see header comment); keep even.
  taps_ = profile.taps + 2 * nu_;
  if (taps_ % 2 != 0) ++taps_;
  // The halo must come from the single right-hand neighbour (Fig. 4):
  // (B - nu) * P <= M, i.e. the problem must be large enough for the window.
  SOI_CHECK(halo() <= m_,
            "SoiGeometry: halo " << halo() << " exceeds M=" << m_
                                 << "; N too small for this window "
                                    "(B*P too large)");
}

}  // namespace soi::core
