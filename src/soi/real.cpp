#include "soi/real.hpp"

#include <cmath>

#include "common/error.hpp"

namespace soi::core {

SoiRealFft::SoiRealFft(std::int64_t n, std::int64_t p,
                       win::SoiProfile profile)
    : n_(n), half_(n / 2, p, std::move(profile)) {
  SOI_CHECK(n >= 4 && n % 2 == 0, "SoiRealFft: n must be even, got " << n);
  const std::int64_t h = n / 2;
  twiddle_.resize(static_cast<std::size_t>(h));
  for (std::int64_t k = 0; k < h; ++k) {
    const double ang = -kPi * static_cast<double>(k) / static_cast<double>(h);
    twiddle_[static_cast<std::size_t>(k)] = {std::cos(ang), std::sin(ang)};
  }
}

void SoiRealFft::forward(std::span<const double> in, mspan out) const {
  const std::int64_t h = n_ / 2;
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_),
            "SoiRealFft::forward: bad input size");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(h + 1),
            "SoiRealFft::forward: output needs n/2+1 bins");
  cvec z(static_cast<std::size_t>(h));
  for (std::int64_t j = 0; j < h; ++j) {
    z[static_cast<std::size_t>(j)] = {in[static_cast<std::size_t>(2 * j)],
                                      in[static_cast<std::size_t>(2 * j + 1)]};
  }
  cvec zf(static_cast<std::size_t>(h));
  half_.forward(z, zf);
  for (std::int64_t k = 0; k <= h; ++k) {
    const std::int64_t km = k % h;
    const std::int64_t kc = (h - k) % h;
    const cplx zk = zf[static_cast<std::size_t>(km)];
    const cplx zc = std::conj(zf[static_cast<std::size_t>(kc)]);
    const cplx even = 0.5 * (zk + zc);
    const cplx odd = cplx{0.0, -0.5} * (zk - zc);
    const cplx tw =
        (k == h) ? cplx{-1.0, 0.0} : twiddle_[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(k)] = even + tw * odd;
  }
}

void SoiRealFft::inverse(cspan in, std::span<double> out) const {
  const std::int64_t h = n_ / 2;
  SOI_CHECK(in.size() >= static_cast<std::size_t>(h + 1),
            "SoiRealFft::inverse: input needs n/2+1 bins");
  SOI_CHECK(out.size() == static_cast<std::size_t>(n_),
            "SoiRealFft::inverse: bad output size");
  cvec zf(static_cast<std::size_t>(h));
  for (std::int64_t k = 0; k < h; ++k) {
    const cplx yk = in[static_cast<std::size_t>(k)];
    const cplx ycc = std::conj(in[static_cast<std::size_t>(h - k)]);
    const cplx even = 0.5 * (yk + ycc);
    const cplx tw = std::conj(twiddle_[static_cast<std::size_t>(k)]);
    const cplx i_odd = cplx{0.0, 0.5} * tw * (yk - ycc);
    zf[static_cast<std::size_t>(k)] = even + i_odd;
  }
  cvec z(static_cast<std::size_t>(h));
  half_.inverse(zf, z);
  for (std::int64_t j = 0; j < h; ++j) {
    out[static_cast<std::size_t>(2 * j)] = z[static_cast<std::size_t>(j)].real();
    out[static_cast<std::size_t>(2 * j + 1)] =
        z[static_cast<std::size_t>(j)].imag();
  }
}

}  // namespace soi::core
