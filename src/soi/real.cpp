#include "soi/real.hpp"

#include <cmath>

#include "common/error.hpp"

namespace soi::core {

SoiRealFft::SoiRealFft(std::int64_t n, std::int64_t p,
                       win::SoiProfile profile)
    : n_(n),
      profile_(std::move(profile)),
      geom_(n / 2, p, profile_),
      table_(geom_, *profile_.window),
      batch_p_(fft::make_batch_plan("", p)),
      batch_mp_(fft::make_batch_plan("", geom_.mprime())) {
  SOI_CHECK(n >= 4 && n % 2 == 0, "SoiRealFft: n must be even, got " << n);
  const std::int64_t h = n / 2;
  twiddle_.resize(static_cast<std::size_t>(h));
  for (std::int64_t k = 0; k < h; ++k) {
    const double ang = -kPi * static_cast<double>(k) / static_cast<double>(h);
    twiddle_[static_cast<std::size_t>(k)] = {std::cos(ang), std::sin(ang)};
  }

  // Forward pipeline: r2c_pack (0), the shared chain (1..6), r2c_untangle
  // (7). The chain runs between arena-resident endpoints: pack writes z,
  // demod writes zf, untangle reads zf into the caller's bins.
  env_.geom = &geom_;
  env_.table = &table_;
  env_.batch_p = batch_p_.get();
  env_.batch_mp = batch_mp_.get();
  env_.ranks = 1;
  env_.spr = p;
  env_.has_comm = false;
  const std::size_t zbytes = sizeof(cplx) * static_cast<std::size_t>(h);
  env_.src = state_.arena.reserve("z", zbytes, 0, 1);
  reserve_chain_buffers(state_.arena, env_, 1);
  env_.dst = state_.arena.reserve("zf", zbytes, 6, 7);
  fwd_.add(make_r2c_pack_stage(env_.src, h));
  append_chain_stages(fwd_, env_);
  fwd_.add(make_r2c_untangle_stage(env_.dst, &twiddle_, h));
  state_.arena.commit();
  fwd_.init_trace(state_.trace);

  // Inverse helper: the bare chain over caller spans (the conjugation
  // identity needs a plain half-length complex forward).
  inv_env_.geom = &geom_;
  inv_env_.table = &table_;
  inv_env_.batch_p = batch_p_.get();
  inv_env_.batch_mp = batch_mp_.get();
  inv_env_.ranks = 1;
  inv_env_.spr = p;
  inv_env_.has_comm = false;
  reserve_chain_buffers(chain_state_.arena, inv_env_, 0);
  append_chain_stages(chain_, inv_env_);
  chain_state_.arena.commit();
  chain_.init_trace(chain_state_.trace);
}

void SoiRealFft::forward(std::span<const double> in, mspan out) const {
  const std::int64_t h = n_ / 2;
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_),
            "SoiRealFft::forward: bad input size");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(h + 1),
            "SoiRealFft::forward: output needs n/2+1 bins");
  exec::ExecContextT<double> ctx;
  ctx.real_in = in;
  ctx.out = out;
  ctx.arena = &state_.arena;
  ctx.trace = &state_.trace;
  fwd_.run(ctx);
}

void SoiRealFft::inverse(cspan in, std::span<double> out) const {
  const std::int64_t h = n_ / 2;
  SOI_CHECK(in.size() >= static_cast<std::size_t>(h + 1),
            "SoiRealFft::inverse: input needs n/2+1 bins");
  SOI_CHECK(out.size() == static_cast<std::size_t>(n_),
            "SoiRealFft::inverse: bad output size");
  inv_in_.resize(static_cast<std::size_t>(h));
  inv_out_.resize(static_cast<std::size_t>(h));
  // Re-tangle the spectrum into the half-length signal's DFT, conjugated
  // so the chain's forward pass computes the inverse (z = conj(F(conj(zf)))
  // / h, the usual identity).
  for (std::int64_t k = 0; k < h; ++k) {
    const cplx yk = in[static_cast<std::size_t>(k)];
    const cplx ycc = std::conj(in[static_cast<std::size_t>(h - k)]);
    const cplx even = 0.5 * (yk + ycc);
    const cplx tw = std::conj(twiddle_[static_cast<std::size_t>(k)]);
    const cplx i_odd = cplx{0.0, 0.5} * tw * (yk - ycc);
    inv_in_[static_cast<std::size_t>(k)] = std::conj(even + i_odd);
  }
  exec::ExecContextT<double> ctx;
  ctx.in = inv_in_;
  ctx.out = inv_out_;
  ctx.arena = &chain_state_.arena;
  ctx.trace = &chain_state_.trace;
  chain_.run(ctx);
  const double scale = 1.0 / static_cast<double>(h);
  for (std::int64_t j = 0; j < h; ++j) {
    const cplx z = inv_out_[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(2 * j)] = z.real() * scale;
    out[static_cast<std::size_t>(2 * j + 1)] = -z.imag() * scale;
  }
}

}  // namespace soi::core
