// Node-local structured convolution kernels (the W x product, Section 6).
//
// One rank computes chunks_per_rank chunks; chunk j_local = mu*q + r is a
// P-vector whose element p is a length-B inner product with stride-P reads:
//
//   out[j_local*P + p] = sum_{b=0}^{B-1} E[r][b*P + p] * in[q*nu*P + b*P + p]
//
// `in` holds the rank's M points followed by the (B-nu)*P halo from the
// right neighbour. Two implementations are provided: a reference triple
// loop matching the paper's pseudo code, and the optimised kernel using the
// paper's loop interchange (contiguous unit-stride inner loop over p,
// vectorisable) with unroll-and-jam over the mu rows of a group.
//
// All kernels are templated on the working precision (double and float
// instantiations are compiled).
#pragma once

#include <type_traits>

#include "common/types.hpp"
#include "soi/conv_table.hpp"
#include "soi/params.hpp"

namespace soi::core {

/// Reference kernel: direct transcription of the loop nest of Section 6
/// (loop_a chunks / loop_b rows / loop_c blocks / loop_d elements).
template <class Real>
void convolve_rank_reference(const SoiGeometry& g,
                             const ConvTableT<Real>& table,
                             std::type_identity_t<cspan_t<Real>> local_in,
                             std::type_identity_t<mspan_t<Real>> out);

/// Optimised kernel: loop interchange + unroll-and-jam + register-resident
/// partial sums (Section 6's "standard optimizations"). Identical results
/// (up to FP associativity) at several times the throughput.
template <class Real>
void convolve_rank(const SoiGeometry& g, const ConvTableT<Real>& table,
                   std::type_identity_t<cspan_t<Real>> local_in,
                   std::type_identity_t<mspan_t<Real>> out);

/// Convolve only row groups [q_begin, q_end) of the rank's block, writing
/// chunks [q_begin*mu, q_end*mu). Used by the halo-overlap execution path:
/// groups whose input range is fully local run while the halo is in
/// flight; the tail groups run after it lands.
template <class Real>
void convolve_rank_groups(const SoiGeometry& g, const ConvTableT<Real>& table,
                          std::type_identity_t<cspan_t<Real>> local_in,
                          std::type_identity_t<mspan_t<Real>> out,
                          std::int64_t q_begin, std::int64_t q_end);

/// Same as convolve_rank but with per-input-element phase factors applied
/// on the fly — used by the segment (zoom) transform where C_s =
/// C_0 (I_M (x) diag(omega^s)) adds the column phases omega^{s * (i mod P)}.
/// `phases` has P entries. Double precision only (zoom path).
void convolve_rank_phased(const SoiGeometry& g, const ConvTable& table,
                          cspan phases, cspan local_in, mspan out);

extern template void convolve_rank_reference<double>(const SoiGeometry&,
                                                     const ConvTableT<double>&,
                                                     cspan_t<double>,
                                                     mspan_t<double>);
extern template void convolve_rank_reference<float>(const SoiGeometry&,
                                                    const ConvTableT<float>&,
                                                    cspan_t<float>,
                                                    mspan_t<float>);
extern template void convolve_rank<double>(const SoiGeometry&,
                                           const ConvTableT<double>&,
                                           cspan_t<double>, mspan_t<double>);
extern template void convolve_rank<float>(const SoiGeometry&,
                                          const ConvTableT<float>&,
                                          cspan_t<float>, mspan_t<float>);
extern template void convolve_rank_groups<double>(const SoiGeometry&,
                                                  const ConvTableT<double>&,
                                                  cspan_t<double>,
                                                  mspan_t<double>,
                                                  std::int64_t, std::int64_t);
extern template void convolve_rank_groups<float>(const SoiGeometry&,
                                                 const ConvTableT<float>&,
                                                 cspan_t<float>,
                                                 mspan_t<float>, std::int64_t,
                                                 std::int64_t);

}  // namespace soi::core
