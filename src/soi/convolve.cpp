#include "soi/convolve.hpp"

#include <type_traits>

#include "common/error.hpp"

namespace soi::core {

namespace {
template <class Real>
void check_buffers(const SoiGeometry& g, cspan_t<Real> local_in,
                   mspan_t<Real> out) {
  SOI_CHECK(local_in.size() >= static_cast<std::size_t>(g.local_input()),
            "convolve: input needs M + halo = " << g.local_input()
                                                << " elements, got "
                                                << local_in.size());
  SOI_CHECK(out.size() >= static_cast<std::size_t>(g.chunks_per_rank() * g.p()),
            "convolve: output needs M'/P * P elements");
}
}  // namespace

template <class Real>
void convolve_rank_reference(const SoiGeometry& g,
                             const ConvTableT<Real>& table,
                             std::type_identity_t<cspan_t<Real>> local_in,
                             std::type_identity_t<mspan_t<Real>> out) {
  check_buffers<Real>(g, local_in, out);
  using C = cplx_t<Real>;
  const std::int64_t p = g.p();
  const std::int64_t b = g.taps();
  const std::int64_t mu = g.mu();
  const std::int64_t nu = g.nu();
  const C* in = local_in.data();

  // loop_a over groups (chunks of mu rows sharing one input range)
  for (std::int64_t q = 0; q < g.groups_per_rank(); ++q) {
    const C* base = in + q * nu * p;
    // loop_b over the mu rows of the group
    for (std::int64_t r = 0; r < mu; ++r) {
      const C* e = table.row(r).data();
      C* dst = out.data() + (q * mu + r) * p;
      for (std::int64_t pp = 0; pp < p; ++pp) {
        C acc{0, 0};
        // loop_c over B blocks; loop_d is the pp loop hoisted outside here
        for (std::int64_t blk = 0; blk < b; ++blk) {
          acc += e[blk * p + pp] * base[blk * p + pp];
        }
        dst[pp] = acc;
      }
    }
  }
}

namespace {

// Register-blocked group kernel, tiled over the chunk dimension: a tile of
// kTile accumulator lanes (re/im of a jammed row pair) lives entirely in
// SIMD registers across the B-block reduction — the paper's Section 6
// "keep partial sums of inner products in registers while exploiting SIMD
// parallelism". Works for any P divisible by kTile.
template <int kTile, class Real>
void conv_group_tiled(const Real* __restrict base_re,
                      const Real* __restrict base_im,
                      const ConvTableT<Real>& table, std::int64_t mu,
                      std::int64_t b, std::int64_t p, cplx_t<Real>* gout) {
  std::int64_t r = 0;
  for (; r + 1 < mu; r += 2) {
    const Real* __restrict t0r_row = table.row_re(r);
    const Real* __restrict t0i_row = table.row_im(r);
    const Real* __restrict t1r_row = table.row_re(r + 1);
    const Real* __restrict t1i_row = table.row_im(r + 1);
    auto* d0 = reinterpret_cast<Real*>(gout + r * p);
    auto* d1 = reinterpret_cast<Real*>(gout + (r + 1) * p);
    for (std::int64_t off = 0; off < p; off += kTile) {
      Real a0r[kTile] = {}, a0i[kTile] = {}, a1r[kTile] = {}, a1i[kTile] = {};
      for (std::int64_t blk = 0; blk < b; ++blk) {
        const Real* __restrict sr = base_re + blk * p + off;
        const Real* __restrict si = base_im + blk * p + off;
        const Real* __restrict t0r = t0r_row + blk * p + off;
        const Real* __restrict t0i = t0i_row + blk * p + off;
        const Real* __restrict t1r = t1r_row + blk * p + off;
        const Real* __restrict t1i = t1i_row + blk * p + off;
        for (int pp = 0; pp < kTile; ++pp) {
          a0r[pp] += t0r[pp] * sr[pp] - t0i[pp] * si[pp];
          a0i[pp] += t0r[pp] * si[pp] + t0i[pp] * sr[pp];
          a1r[pp] += t1r[pp] * sr[pp] - t1i[pp] * si[pp];
          a1i[pp] += t1r[pp] * si[pp] + t1i[pp] * sr[pp];
        }
      }
      for (int pp = 0; pp < kTile; ++pp) {
        d0[2 * (off + pp)] = a0r[pp];
        d0[2 * (off + pp) + 1] = a0i[pp];
        d1[2 * (off + pp)] = a1r[pp];
        d1[2 * (off + pp) + 1] = a1i[pp];
      }
    }
  }
  for (; r < mu; ++r) {
    const Real* __restrict t0r_row = table.row_re(r);
    const Real* __restrict t0i_row = table.row_im(r);
    auto* d0 = reinterpret_cast<Real*>(gout + r * p);
    for (std::int64_t off = 0; off < p; off += kTile) {
      Real a0r[kTile] = {}, a0i[kTile] = {};
      for (std::int64_t blk = 0; blk < b; ++blk) {
        const Real* __restrict sr = base_re + blk * p + off;
        const Real* __restrict si = base_im + blk * p + off;
        const Real* __restrict t0r = t0r_row + blk * p + off;
        const Real* __restrict t0i = t0i_row + blk * p + off;
        for (int pp = 0; pp < kTile; ++pp) {
          a0r[pp] += t0r[pp] * sr[pp] - t0i[pp] * si[pp];
          a0i[pp] += t0r[pp] * si[pp] + t0i[pp] * sr[pp];
        }
      }
      for (int pp = 0; pp < kTile; ++pp) {
        d0[2 * (off + pp)] = a0r[pp];
        d0[2 * (off + pp) + 1] = a0i[pp];
      }
    }
  }
}

// Generic-P group kernel (interleaved complex arithmetic on raw scalars).
template <class Real>
void conv_group_dynamic(const cplx_t<Real>* base, const ConvTableT<Real>& table,
                        std::int64_t mu, std::int64_t b, std::int64_t p,
                        cplx_t<Real>* gout) {
  const auto* src_d = reinterpret_cast<const Real*>(base);
  std::int64_t r = 0;
  for (; r + 1 < mu; r += 2) {
    const auto* e0 = reinterpret_cast<const Real*>(table.row(r).data());
    const auto* e1 = reinterpret_cast<const Real*>(table.row(r + 1).data());
    auto* d0 = reinterpret_cast<Real*>(gout + r * p);
    auto* d1 = reinterpret_cast<Real*>(gout + (r + 1) * p);
    for (std::int64_t i = 0; i < 2 * p; ++i) {
      d0[i] = Real(0);
      d1[i] = Real(0);
    }
    for (std::int64_t blk = 0; blk < b; ++blk) {
      const Real* __restrict s = src_d + 2 * blk * p;
      const Real* __restrict t0 = e0 + 2 * blk * p;
      const Real* __restrict t1 = e1 + 2 * blk * p;
      for (std::int64_t pp = 0; pp < p; ++pp) {
        const Real vr = s[2 * pp];
        const Real vi = s[2 * pp + 1];
        d0[2 * pp] += t0[2 * pp] * vr - t0[2 * pp + 1] * vi;
        d0[2 * pp + 1] += t0[2 * pp] * vi + t0[2 * pp + 1] * vr;
        d1[2 * pp] += t1[2 * pp] * vr - t1[2 * pp + 1] * vi;
        d1[2 * pp + 1] += t1[2 * pp] * vi + t1[2 * pp + 1] * vr;
      }
    }
  }
  for (; r < mu; ++r) {
    const auto* e0 = reinterpret_cast<const Real*>(table.row(r).data());
    auto* d0 = reinterpret_cast<Real*>(gout + r * p);
    for (std::int64_t i = 0; i < 2 * p; ++i) d0[i] = Real(0);
    for (std::int64_t blk = 0; blk < b; ++blk) {
      const Real* __restrict s = src_d + 2 * blk * p;
      const Real* __restrict t0 = e0 + 2 * blk * p;
      for (std::int64_t pp = 0; pp < p; ++pp) {
        const Real vr = s[2 * pp];
        const Real vi = s[2 * pp + 1];
        d0[2 * pp] += t0[2 * pp] * vr - t0[2 * pp + 1] * vi;
        d0[2 * pp + 1] += t0[2 * pp] * vi + t0[2 * pp + 1] * vr;
      }
    }
  }
}

}  // namespace

template <class Real>
void convolve_rank_groups(const SoiGeometry& g, const ConvTableT<Real>& table,
                          std::type_identity_t<cspan_t<Real>> local_in,
                          std::type_identity_t<mspan_t<Real>> out,
                          std::int64_t q_begin, std::int64_t q_end) {
  check_buffers<Real>(g, local_in, out);
  SOI_CHECK(0 <= q_begin && q_begin <= q_end && q_end <= g.groups_per_rank(),
            "convolve_rank_groups: bad group range [" << q_begin << ", "
                                                      << q_end << ")");
  using C = cplx_t<Real>;
  const std::int64_t p = g.p();
  const std::int64_t b = g.taps();
  const std::int64_t mu = g.mu();
  const std::int64_t nu = g.nu();
  const std::int64_t len = g.local_input();

  // Tile width for the register kernel: 16 when P allows (two AVX-512
  // vectors per accumulator lane at double), else the largest power of two
  // dividing P, falling back to the dynamic kernel for odd/unaligned P.
  const std::int64_t tile = (p % 16 == 0) ? 16 : (p % 8 == 0) ? 8
                            : (p % 4 == 0)                    ? 4
                                                              : 0;
  // Deinterleave scratch; thread_local so repeated calls do not reallocate.
  // Pointers are hoisted BEFORE the parallel region below (worker threads
  // must see the caller's buffer, not their own empty thread_local copy).
  thread_local std::vector<Real, AlignedAllocator<Real, 64>> split;
  const Real* split_re = nullptr;
  const Real* split_im = nullptr;
  if (tile != 0) {
    split.resize(static_cast<std::size_t>(2 * len));
    const auto* raw = reinterpret_cast<const Real*>(local_in.data());
    Real* in_re = split.data();
    Real* in_im = split.data() + len;
    for (std::int64_t i = 0; i < len; ++i) {
      in_re[i] = raw[2 * i];
      in_im[i] = raw[2 * i + 1];
    }
    split_re = in_re;
    split_im = in_im;
  }

#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t q = q_begin; q < q_end; ++q) {
    C* gout = out.data() + q * mu * p;
    if (tile != 0) {
      const Real* base_re = split_re + q * nu * p;
      const Real* base_im = split_im + q * nu * p;
      switch (tile) {
        case 16:
          conv_group_tiled<16, Real>(base_re, base_im, table, mu, b, p, gout);
          break;
        case 8:
          conv_group_tiled<8, Real>(base_re, base_im, table, mu, b, p, gout);
          break;
        default:
          conv_group_tiled<4, Real>(base_re, base_im, table, mu, b, p, gout);
          break;
      }
    } else {
      conv_group_dynamic<Real>(local_in.data() + q * nu * p, table, mu, b, p,
                               gout);
    }
  }
}

template <class Real>
void convolve_rank(const SoiGeometry& g, const ConvTableT<Real>& table,
                   std::type_identity_t<cspan_t<Real>> local_in,
                   std::type_identity_t<mspan_t<Real>> out) {
  convolve_rank_groups<Real>(g, table, local_in, out, 0, g.groups_per_rank());
}

void convolve_rank_phased(const SoiGeometry& g, const ConvTable& table,
                          cspan phases, cspan local_in, mspan out) {
  check_buffers<double>(g, local_in, out);
  SOI_CHECK(phases.size() == static_cast<std::size_t>(g.p()),
            "convolve_rank_phased: need P phase factors");
  // The phases depend only on pp = i mod P, so they fold into a phased
  // copy of the tap table and the whole product runs through the tiled,
  // OpenMP-parallel convolve_rank kernel instead of a scalar triple loop.
  // Callers evaluating many ranks against ONE phase vector should hoist
  // table.phased(phases) themselves (see SegmentPlan::compute).
  const ConvTable shifted = table.phased(phases);
  convolve_rank<double>(g, shifted, local_in, out);
}

// Explicit instantiations (double drives the SOI pipeline; float backs the
// single-precision transform).
template void convolve_rank_reference<double>(const SoiGeometry&,
                                              const ConvTableT<double>&,
                                              cspan_t<double>, mspan_t<double>);
template void convolve_rank_reference<float>(const SoiGeometry&,
                                             const ConvTableT<float>&,
                                             cspan_t<float>, mspan_t<float>);
template void convolve_rank_groups<double>(const SoiGeometry&,
                                           const ConvTableT<double>&,
                                           cspan_t<double>, mspan_t<double>,
                                           std::int64_t, std::int64_t);
template void convolve_rank_groups<float>(const SoiGeometry&,
                                          const ConvTableT<float>&,
                                          cspan_t<float>, mspan_t<float>,
                                          std::int64_t, std::int64_t);
template void convolve_rank<double>(const SoiGeometry&,
                                    const ConvTableT<double>&, cspan_t<double>,
                                    mspan_t<double>);
template void convolve_rank<float>(const SoiGeometry&,
                                   const ConvTableT<float>&, cspan_t<float>,
                                   mspan_t<float>);

}  // namespace soi::core
