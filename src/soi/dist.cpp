#include "soi/dist.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soi::core {

SoiFftDist::SoiFftDist(net::Comm& comm, std::int64_t n,
                       win::SoiProfile profile, std::int64_t segments_per_rank)
    : SoiFftDist(comm, n, std::move(profile), [&] {
        DistOptions opts;
        opts.segments_per_rank = segments_per_rank;
        return opts;
      }()) {}

SoiFftDist::SoiFftDist(net::Comm& comm, std::int64_t n,
                       win::SoiProfile profile, DistOptions options)
    : comm_(comm),
      profile_(std::move(profile)),
      opts_(std::move(options)),
      spr_(opts_.segments_per_rank),
      geom_(n, comm.size() * spr_, profile_),
      table_(opts_.table ? opts_.table
                         : std::make_shared<const ConvTable>(
                               geom_, *profile_.window)),
      batch_p_(geom_.p(), opts_.batch_width),
      batch_mp_(geom_.mprime(), opts_.batch_width) {
  SOI_CHECK(spr_ >= 1, "SoiFftDist: segments_per_rank must be >= 1");
  // The halo crosses exactly one rank boundary (Fig. 4); a geometry whose
  // halo exceeds one segment would need points beyond the right neighbour.
  SOI_CHECK(geom_.halo() <= geom_.m(),
            "SoiFftDist: halo " << geom_.halo() << " exceeds segment length "
                                << geom_.m()
                                << " (reduce segments_per_rank or taps)");
  // The plan is the shared stage chain bound to this communicator; all
  // workspace (ext, v, send, recv, xt, uf) is preplanned in the arena so
  // steady-state forward() allocates nothing.
  env_.geom = &geom_;
  env_.table = table_.get();
  env_.batch_p = &batch_p_;
  env_.batch_mp = &batch_mp_;
  env_.ranks = comm.size();
  env_.spr = spr_;
  env_.has_comm = true;
  env_.algo = opts_.alltoall_algo;
  SOI_CHECK(opts_.chunk_depth >= 1,
            "SoiFftDist: chunk_depth must be >= 1");
  // Largest divisor of spr not exceeding the requested depth, so the
  // chunk groups tile the rank's segments exactly.
  std::int64_t depth = std::min(opts_.chunk_depth, spr_);
  while (spr_ % depth != 0) --depth;
  env_.chunk_depth = depth;
  reserve_chain_buffers(state_.arena, env_, 0);
  append_chain_stages(pipeline_, env_);
  state_.arena.commit();
  pipeline_.init_trace(state_.trace);
}

void SoiFftDist::forward(cspan x_local, mspan y_local) {
  run_pipeline(x_local, y_local, opts_.overlap);
}

void SoiFftDist::forward_overlapped(cspan x_local, mspan y_local) {
  run_pipeline(x_local, y_local, /*overlap=*/true);
}

void SoiFftDist::run_pipeline(cspan x_local, mspan y_local, bool overlap) {
  const std::int64_t m_rank = spr_ * geom_.m();  // points per rank
  SOI_CHECK(x_local.size() == static_cast<std::size_t>(m_rank),
            "SoiFftDist::forward: rank " << comm_.rank() << " expects "
                                         << m_rank << " local points, got "
                                         << x_local.size());
  SOI_CHECK(y_local.size() >= static_cast<std::size_t>(m_rank),
            "SoiFftDist::forward: local output too small");
  exec::ExecContextT<double> ctx;
  ctx.in = x_local;
  ctx.out = y_local;
  ctx.comm = &comm_;
  ctx.overlap = overlap;
  ctx.arena = &state_.arena;
  ctx.trace = &state_.trace;
  pipeline_.run(ctx);
  breakdown_ = SoiDistBreakdown::from_trace(state_.trace);
}

void SoiFftDist::inverse(cspan y_local, mspan x_local) {
  const std::int64_t m_rank = local_size();
  SOI_CHECK(y_local.size() == static_cast<std::size_t>(m_rank),
            "SoiFftDist::inverse: local input size mismatch");
  SOI_CHECK(x_local.size() >= static_cast<std::size_t>(m_rank),
            "SoiFftDist::inverse: local output too small");
  // inverse(y) = conj(forward(conj(y))) / N; conjugation is local, the
  // block layout is symmetric, so this costs one extra local pass only.
  conj_in_.resize(static_cast<std::size_t>(m_rank));
  conj_out_.resize(static_cast<std::size_t>(m_rank));
  for (std::int64_t i = 0; i < m_rank; ++i) {
    conj_in_[static_cast<std::size_t>(i)] =
        std::conj(y_local[static_cast<std::size_t>(i)]);
  }
  forward(conj_in_, conj_out_);
  const double scale = 1.0 / static_cast<double>(geom_.n());
  for (std::int64_t i = 0; i < m_rank; ++i) {
    x_local[static_cast<std::size_t>(i)] =
        std::conj(conj_out_[static_cast<std::size_t>(i)]) * scale;
  }
}

}  // namespace soi::core
