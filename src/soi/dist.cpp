#include "soi/dist.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace {
// Residual-guard slack: the paper's Section-5 bound is an order estimate,
// so the acceptance gate leaves generous headroom above
// kappa*(eps_fft + eps_alias + eps_trunc) — injected corruption that slips
// past the checksums perturbs the energy by orders of magnitude more.
constexpr double kGuardSlack = 256.0;
}  // namespace

namespace soi::core {

SoiFftDist::SoiFftDist(net::Transport& comm, std::int64_t n,
                       win::SoiProfile profile, std::int64_t segments_per_rank)
    : SoiFftDist(comm, n, std::move(profile), [&] {
        DistOptions opts;
        opts.segments_per_rank = segments_per_rank;
        return opts;
      }()) {}

SoiFftDist::SoiFftDist(net::Transport& comm, std::int64_t n,
                       win::SoiProfile profile, DistOptions options)
    : comm_(comm),
      profile_(std::move(profile)),
      opts_(std::move(options)),
      spr_(opts_.segments_per_rank),
      geom_(n, comm.size() * spr_, profile_),
      table_(opts_.table ? opts_.table
                         : std::make_shared<const ConvTable>(
                               geom_, *profile_.window)),
      batch_p_(fft::make_batch_plan(opts_.engine, geom_.p(),
                                    opts_.batch_width)),
      batch_mp_(fft::make_batch_plan(opts_.engine, geom_.mprime(),
                                     opts_.batch_width)) {
  SOI_CHECK(spr_ >= 1, "SoiFftDist: segments_per_rank must be >= 1");
  // The halo crosses exactly one rank boundary (Fig. 4); a geometry whose
  // halo exceeds one segment would need points beyond the right neighbour.
  SOI_CHECK(geom_.halo() <= geom_.m(),
            "SoiFftDist: halo " << geom_.halo() << " exceeds segment length "
                                << geom_.m()
                                << " (reduce segments_per_rank or taps)");
  // The plan is the shared stage chain bound to this communicator; all
  // workspace (ext, v, send, recv, xt, uf) is preplanned in the arena so
  // steady-state forward() allocates nothing.
  env_.geom = &geom_;
  env_.table = table_.get();
  env_.batch_p = batch_p_.get();
  env_.batch_mp = batch_mp_.get();
  env_.ranks = comm.size();
  env_.spr = spr_;
  env_.has_comm = true;
  env_.algo = opts_.alltoall_algo;
  SOI_CHECK(opts_.chunk_depth >= 1,
            "SoiFftDist: chunk_depth must be >= 1");
  // Largest divisor of spr not exceeding the requested depth, so the
  // chunk groups tile the rank's segments exactly.
  std::int64_t depth = std::min(opts_.chunk_depth, spr_);
  while (spr_ % depth != 0) --depth;
  env_.chunk_depth = depth;
  // Topology-aware exchange: parse the fabric shape (throws
  // InvalidArgumentError on bad syntax / non-factorable shapes) and build
  // this rank's staged store-and-forward plan once, at plan time.
  env_.topo = net::Topology::parse(opts_.topology, comm.size());
  if (env_.staged_exchange()) {
    env_.staged = net::build_staged_plan(env_.topo, comm.rank());
  }
  SOI_CHECK(opts_.max_concurrency >= 1 &&
                opts_.max_concurrency <= comm.caps().max_coll_channels,
            "SoiFftDist: max_concurrency "
                << opts_.max_concurrency << " not in [1, "
                << comm.caps().max_coll_channels << "] (transport '"
                << comm.caps().name << "')");
  env_.max_instances = opts_.max_concurrency;
  // Coded exchange: validate the redundancy knob against the coded tag
  // space before any scratch is sized off it.
  if (opts_.coding.enabled()) {
    SOI_CHECK(opts_.coding.k >= 1 && opts_.coding.r >= 1 &&
                  opts_.coding.r <= opts_.coding.k &&
                  opts_.coding.total() <= net::kMaxCodedSubs,
              "SoiFftDist: coding " << opts_.coding.str()
                                    << " invalid (need 1 <= r <= k, k + r <= "
                                    << net::kMaxCodedSubs << ")");
    SOI_CHECK(env_.chunk_depth <= net::kMaxCodedGroups,
              "SoiFftDist: coded exchange supports chunk_depth <= "
                  << net::kMaxCodedGroups << ", got " << env_.chunk_depth);
    SOI_CHECK(!env_.staged_exchange() ||
                  static_cast<int>(env_.staged.phases.size()) <=
                      net::kMaxCodedPhases,
              "SoiFftDist: coded staged exchange supports <= "
                  << net::kMaxCodedPhases << " phases, topology '"
                  << opts_.topology << "' needs "
                  << env_.staged.phases.size());
    if (comm.size() > 1) {
      env_.coding = opts_.coding;
      env_.coded_stats = &coded_stats_;
    }
  }
  reserve_chain_buffers(state_.arena, env_, 0);
  append_chain_stages(pipeline_, env_);
  state_.arena.commit();
  pipeline_.init_trace(state_.trace);
  pipeline_.bind_scratch(state_.scratch);
  // Per-instance execution states for co-scheduling: instance i > 0 gets
  // its own cloned-layout arena and trace; one merged-queue scratch sized
  // for all instances. Everything forward_many touches exists now.
  const int kmax = opts_.max_concurrency;
  pipeline_.bind_scratch(multi_scratch_, kmax);
  slots_.reserve(static_cast<std::size_t>(kmax - 1));
  for (int i = 1; i < kmax; ++i) {
    auto st = std::make_unique<exec::ExecState>();
    st->arena.adopt_layout(state_.arena);
    st->trace = state_.trace;
    slots_.push_back(std::move(st));
  }
  many_ctx_.resize(static_cast<std::size_t>(kmax));
  many_ptrs_.resize(static_cast<std::size_t>(kmax));
  guard_energies_.resize(2 * static_cast<std::size_t>(kmax));
  epoch_xs_.resize(static_cast<std::size_t>(kmax));
  epoch_ys_.resize(static_cast<std::size_t>(kmax));
  SOI_CHECK(opts_.max_retries >= 0,
            "SoiFftDist: max_retries must be >= 0");
  SOI_CHECK(opts_.timeout_ms >= 0,
            "SoiFftDist: timeout_ms must be >= 0");
  // Install the plan's resilience configuration into the shared world.
  // Every rank constructs the plan with identical options; the first
  // configure wins and the rest are no-ops.
  if (opts_.faults.any() || opts_.timeout_ms > 0) {
    net::NetOptions nopts;
    nopts.faults = opts_.faults;
    nopts.timeout_ms = opts_.timeout_ms;
    nopts.max_retries = opts_.max_retries;
    comm_.configure_resilience(nopts);
  }
}

void SoiFftDist::forward(cspan x_local, mspan y_local) {
  run_pipeline(x_local, y_local, opts_.overlap);
}

void SoiFftDist::forward_overlapped(cspan x_local, mspan y_local) {
  run_pipeline(x_local, y_local, /*overlap=*/true);
}

void SoiFftDist::run_pipeline(cspan x_local, mspan y_local, bool overlap) {
  const std::int64_t m_rank = spr_ * geom_.m();  // points per rank
  SOI_CHECK(x_local.size() == static_cast<std::size_t>(m_rank),
            "SoiFftDist::forward: rank " << comm_.rank() << " expects "
                                         << m_rank << " local points, got "
                                         << x_local.size());
  SOI_CHECK(y_local.size() >= static_cast<std::size_t>(m_rank),
            "SoiFftDist::forward: local output too small");
  bool validate = opts_.validate_input > 0;
#ifndef NDEBUG
  if (opts_.validate_input < 0) validate = true;
#endif
  if (validate) {
    const std::int64_t bad = first_nonfinite<double>(x_local);
    if (bad >= 0) {
      std::ostringstream os;
      os << "SoiFftDist::forward: rank " << comm_.rank()
         << " input contains a non-finite value (NaN/Inf) at local index "
         << bad;
      throw InvalidArgumentError(os.str());
    }
  }
  exec::ExecContextT<double> ctx;
  ctx.in = x_local;
  ctx.out = y_local;
  ctx.comm = &comm_;
  // Graceful degradation: once a run needed communication retries, give
  // up the overlapped schedule and run in order (same nodes and edges, so
  // results stay bit-identical).
  ctx.overlap = overlap && !degraded_;
  ctx.arena = &state_.arena;
  ctx.trace = &state_.trace;
  ctx.scratch = &state_.scratch;
  pipeline_.run(ctx);
  breakdown_ = SoiDistBreakdown::from_trace(state_.trace);
  last_retries_ = 0;
  for (const auto& r : state_.trace.records()) last_retries_ += r.retries;
  if (last_retries_ > 0) degraded_ = true;

  const cspan xs1[1] = {x_local};
  const mspan ys1[1] = {y_local};
  guard_outputs(std::span<const cspan>(xs1, 1),
                std::span<const mspan>(ys1, 1));
}

void SoiFftDist::forward_many(std::span<const cspan> xs_local,
                              std::span<const mspan> ys_local) {
  const auto k = xs_local.size();
  const std::int64_t m_rank = local_size();
  SOI_CHECK(k >= 1 && k == ys_local.size(),
            "SoiFftDist::forward_many: " << k << " inputs, "
                                         << ys_local.size() << " outputs");
  SOI_CHECK(k <= static_cast<std::size_t>(opts_.max_concurrency),
            "SoiFftDist::forward_many: " << k
                                         << " transforms exceed "
                                            "max_concurrency "
                                         << opts_.max_concurrency);
  bool validate = opts_.validate_input > 0;
#ifndef NDEBUG
  if (opts_.validate_input < 0) validate = true;
#endif
  for (std::size_t i = 0; i < k; ++i) {
    SOI_CHECK(xs_local[i].size() == static_cast<std::size_t>(m_rank),
              "SoiFftDist::forward_many: transform "
                  << i << " expects " << m_rank << " local points, got "
                  << xs_local[i].size());
    SOI_CHECK(ys_local[i].size() >= static_cast<std::size_t>(m_rank),
              "SoiFftDist::forward_many: transform " << i
                                                     << " output too small");
    if (validate) {
      const std::int64_t bad = first_nonfinite<double>(xs_local[i]);
      if (bad >= 0) {
        std::ostringstream os;
        os << "SoiFftDist::forward_many: rank " << comm_.rank()
           << " transform " << i
           << " input contains a non-finite value (NaN/Inf) at local index "
           << bad;
        throw InvalidArgumentError(os.str());
      }
    }
  }

  // Degradation is plan-global: one retry-afflicted run drops EVERY
  // instance to the in-order schedule (same graph, bit-identical output).
  const bool overlap = opts_.overlap && !degraded_;
  for (std::size_t i = 0; i < k; ++i) {
    exec::ExecContextT<double>& ctx = many_ctx_[i];
    ctx = exec::ExecContextT<double>{};
    ctx.in = xs_local[i];
    ctx.out = ys_local[i];
    ctx.comm = &comm_;
    ctx.overlap = overlap;
    ctx.arena = i == 0 ? &state_.arena : &slots_[i - 1]->arena;
    ctx.trace = i == 0 ? &state_.trace : &slots_[i - 1]->trace;
    ctx.instance = static_cast<int>(i);
    ctx.channel = static_cast<int>(i);
    many_ptrs_[i] = &ctx;
  }
  pipeline_.run_many(
      std::span<exec::ExecContextT<double>* const>(many_ptrs_.data(), k),
      multi_scratch_);
  breakdown_ = SoiDistBreakdown::from_trace(state_.trace);
  last_retries_ = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (const auto& r : many_ctx_[i].trace->records()) {
      last_retries_ += r.retries;
    }
  }
  if (last_retries_ > 0) degraded_ = true;

  guard_outputs(xs_local, ys_local);
}

void SoiFftDist::bind_epoch_member(exec::EpochMemberT<double>& member,
                                   int instance, int channel, cspan x_local,
                                   mspan y_local) {
  const std::int64_t m_rank = local_size();
  SOI_CHECK(instance >= 0 && instance < opts_.max_concurrency,
            "SoiFftDist::bind_epoch_member: instance "
                << instance << " not in [0, " << opts_.max_concurrency
                << ") (raise max_concurrency)");
  SOI_CHECK(channel >= 0 && channel < comm_.caps().max_coll_channels,
            "SoiFftDist::bind_epoch_member: channel "
                << channel << " not in [0, "
                << comm_.caps().max_coll_channels << ") (transport '"
                << comm_.caps().name << "')");
  SOI_CHECK(x_local.size() == static_cast<std::size_t>(m_rank),
            "SoiFftDist::bind_epoch_member: instance "
                << instance << " expects " << m_rank
                << " local points, got " << x_local.size());
  SOI_CHECK(y_local.size() >= static_cast<std::size_t>(m_rank),
            "SoiFftDist::bind_epoch_member: instance " << instance
                                                       << " output too small");
  bool validate = opts_.validate_input > 0;
#ifndef NDEBUG
  if (opts_.validate_input < 0) validate = true;
#endif
  if (validate) {
    const std::int64_t bad = first_nonfinite<double>(x_local);
    if (bad >= 0) {
      std::ostringstream os;
      os << "SoiFftDist::bind_epoch_member: rank " << comm_.rank()
         << " instance " << instance
         << " input contains a non-finite value (NaN/Inf) at local index "
         << bad;
      throw InvalidArgumentError(os.str());
    }
  }
  const auto i = static_cast<std::size_t>(instance);
  exec::ExecContextT<double>& ctx = many_ctx_[i];
  ctx = exec::ExecContextT<double>{};
  ctx.in = x_local;
  ctx.out = y_local;
  ctx.comm = &comm_;
  // Degradation is plan-global, exactly as in forward_many: once a run of
  // this plan needed retries, all its epoch memberships run in order.
  ctx.overlap = opts_.overlap && !degraded_;
  ctx.arena = i == 0 ? &state_.arena : &slots_[i - 1]->arena;
  ctx.trace = i == 0 ? &state_.trace : &slots_[i - 1]->trace;
  ctx.instance = instance;
  ctx.channel = channel;
  epoch_xs_[i] = x_local;
  epoch_ys_[i] = y_local;
  member.pipeline = &pipeline_;
  member.ctx = &ctx;
}

void SoiFftDist::finish_epoch(int k) {
  SOI_CHECK(k >= 1 && k <= opts_.max_concurrency,
            "SoiFftDist::finish_epoch: " << k << " members not in [1, "
                                         << opts_.max_concurrency << "]");
  breakdown_ = SoiDistBreakdown::from_trace(state_.trace);
  last_retries_ = 0;
  for (int i = 0; i < k; ++i) {
    for (const auto& r :
         many_ctx_[static_cast<std::size_t>(i)].trace->records()) {
      last_retries_ += r.retries;
    }
  }
  if (last_retries_ > 0) degraded_ = true;
  guard_outputs(
      std::span<const cspan>(epoch_xs_.data(), static_cast<std::size_t>(k)),
      std::span<const mspan>(epoch_ys_.data(), static_cast<std::size_t>(k)));
}

void SoiFftDist::guard_outputs(std::span<const cspan> xs,
                               std::span<const mspan> ys) {
  if (!opts_.residual_guard) return;
  // Output acceptance gate. Two tiers:
  //
  // Local (every run): scan each output segment for non-finite values —
  // poisoned arithmetic shows up as NaN/Inf with no communication.
  //
  // Global (only when the world can actually experience faults, i.e.
  // comm_.resilience_active()): the Parseval check sum|y|^2 ==
  // N*sum|x|^2 up to the window-conditioned error model of Section 5,
  // ||y_hat - y||/||y|| = O(kappa*(eps_fft + eps_alias + eps_trunc)) —
  // an ABFT-style end-to-end gate that catches corruption which slipped
  // past the transport checksums. The global tier needs one allreduce;
  // on the oversubscribed SimMPI host an extra rendezvous costs
  // O(ranks x scheduler latency), so the fault-free fast path must not
  // pay it — and a co-scheduled batch shares ONE allreduce carrying all
  // instances' energies. resilience_active() is world-global, keeping the
  // collective call pattern identical on every rank.
  const std::int64_t m_rank = local_size();
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const std::int64_t bad = core::first_nonfinite<double>(
        cspan{ys[i].data(), static_cast<std::size_t>(m_rank)});
    if (bad >= 0) {
      std::ostringstream os;
      os << "SoiFftDist: residual guard tripped: rank " << comm_.rank()
         << " transform " << i
         << " output contains a non-finite value at local index " << bad;
      throw AccuracyFaultError(os.str());
    }
  }
  if (!comm_.resilience_active()) return;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double ein = 0.0;
    double eout = 0.0;
    for (const auto& v : xs[i]) ein += std::norm(v);
    for (std::int64_t j = 0; j < m_rank; ++j) {
      eout += std::norm(ys[i][static_cast<std::size_t>(j)]);
    }
    guard_energies_[2 * i] = ein;
    guard_energies_[2 * i + 1] = eout;
  }
  const double nd = static_cast<double>(geom_.n());
  comm_.allreduce_sum(
      std::span<double>(guard_energies_.data(), 2 * xs.size()));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double expected = guard_energies_[2 * i] * nd;
    if (expected <= 0.0) continue;
    const double rel =
        std::abs(guard_energies_[2 * i + 1] - expected) / expected;
    const double eps_fft = 1e-15 * std::log2(nd);
    const double eps = profile_.eps_alias + profile_.eps_trunc + eps_fft;
    const double tol = kGuardSlack * std::max(profile_.kappa, 1.0) * eps;
    if (!(rel <= tol)) {
      std::ostringstream os;
      os << "SoiFftDist: residual guard tripped: transform " << i
         << " relative energy residual " << rel
         << " exceeds kappa-scaled bound " << tol
         << " (kappa=" << profile_.kappa << ", eps=" << eps << ")";
      throw AccuracyFaultError(os.str());
    }
  }
}

void SoiFftDist::inverse(cspan y_local, mspan x_local) {
  const std::int64_t m_rank = local_size();
  SOI_CHECK(y_local.size() == static_cast<std::size_t>(m_rank),
            "SoiFftDist::inverse: local input size mismatch");
  SOI_CHECK(x_local.size() >= static_cast<std::size_t>(m_rank),
            "SoiFftDist::inverse: local output too small");
  // inverse(y) = conj(forward(conj(y))) / N; conjugation is local, the
  // block layout is symmetric, so this costs one extra local pass only.
  conj_in_.resize(static_cast<std::size_t>(m_rank));
  conj_out_.resize(static_cast<std::size_t>(m_rank));
  for (std::int64_t i = 0; i < m_rank; ++i) {
    conj_in_[static_cast<std::size_t>(i)] =
        std::conj(y_local[static_cast<std::size_t>(i)]);
  }
  forward(conj_in_, conj_out_);
  const double scale = 1.0 / static_cast<double>(geom_.n());
  for (std::int64_t i = 0; i < m_rank; ++i) {
    x_local[static_cast<std::size_t>(i)] =
        std::conj(conj_out_[static_cast<std::size_t>(i)]) * scale;
  }
}

}  // namespace soi::core
