#include "soi/dist.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "soi/convolve.hpp"

namespace soi::core {

namespace {
constexpr int kTagHalo = 101;
}

SoiFftDist::SoiFftDist(net::Comm& comm, std::int64_t n,
                       win::SoiProfile profile, std::int64_t segments_per_rank)
    : SoiFftDist(comm, n, std::move(profile), [&] {
        DistOptions opts;
        opts.segments_per_rank = segments_per_rank;
        return opts;
      }()) {}

SoiFftDist::SoiFftDist(net::Comm& comm, std::int64_t n,
                       win::SoiProfile profile, DistOptions options)
    : comm_(comm),
      profile_(std::move(profile)),
      opts_(std::move(options)),
      spr_(opts_.segments_per_rank),
      geom_(n, comm.size() * spr_, profile_),
      table_(opts_.table ? opts_.table
                         : std::make_shared<const ConvTable>(
                               geom_, *profile_.window)),
      batch_p_(geom_.p(), opts_.batch_width),
      batch_mp_(geom_.mprime(), opts_.batch_width) {
  SOI_CHECK(spr_ >= 1, "SoiFftDist: segments_per_rank must be >= 1");
  // The halo crosses exactly one rank boundary (Fig. 4); a geometry whose
  // halo exceeds one segment would need points beyond the right neighbour.
  SOI_CHECK(geom_.halo() <= geom_.m(),
            "SoiFftDist: halo " << geom_.halo() << " exceeds segment length "
                                << geom_.m()
                                << " (reduce segments_per_rank or taps)");
  const auto mcg = geom_.chunks_per_rank();  // chunks per geometry sub-rank
  const auto p = geom_.p();                  // total segments
  const auto chunks = spr_ * mcg;            // chunks on this physical rank
  ext_.resize(static_cast<std::size_t>(spr_ * geom_.m() + geom_.halo()));
  v_.resize(static_cast<std::size_t>(chunks * p));
  // Each rank sends, per destination rank, its `chunks` values for each of
  // the destination's spr_ segments.
  sendbuf_.resize(static_cast<std::size_t>(chunks * p));
  recvbuf_.resize(static_cast<std::size_t>(spr_ * geom_.mprime()));
  uf_.resize(recvbuf_.size());
}

void SoiFftDist::forward(cspan x_local, mspan y_local) {
  run_pipeline(x_local, y_local, opts_.overlap);
}

void SoiFftDist::forward_overlapped(cspan x_local, mspan y_local) {
  run_pipeline(x_local, y_local, /*overlap=*/true);
}

void SoiFftDist::run_pipeline(cspan x_local, mspan y_local, bool overlap) {
  const std::int64_t p = geom_.p();           // segments total
  const int ranks = comm_.size();
  const std::int64_t m_seg = geom_.m();       // points per segment
  const std::int64_t m_rank = spr_ * m_seg;   // points per rank
  const std::int64_t mcg = geom_.chunks_per_rank();
  const std::int64_t chunks = spr_ * mcg;     // chunks on this rank
  const std::int64_t mprime = geom_.mprime();
  const std::int64_t halo = geom_.halo();
  const int rank = comm_.rank();
  SOI_CHECK(x_local.size() == static_cast<std::size_t>(m_rank),
            "SoiFftDist::forward: rank " << rank << " expects "
                                         << m_rank << " local points, got "
                                         << x_local.size());
  SOI_CHECK(y_local.size() >= static_cast<std::size_t>(m_rank),
            "SoiFftDist::forward: local output too small");
  breakdown_ = SoiDistBreakdown{};
  Timer t;

  // --- 1+2. halo exchange and convolution ----------------------------------
  std::copy(x_local.begin(), x_local.end(), ext_.begin());
  const int left = (rank - 1 + ranks) % ranks;
  const int right = (rank + 1) % ranks;
  breakdown_.halo_bytes = static_cast<std::int64_t>(sizeof(cplx)) * halo;
  const std::int64_t groups = geom_.groups_per_rank();
  if (ranks == 1) {
    for (std::int64_t i = 0; i < halo; ++i) {
      ext_[static_cast<std::size_t>(m_rank + i)] =
          x_local[static_cast<std::size_t>(i)];
    }
    t.reset();
    for (std::int64_t g = 0; g < spr_; ++g) {
      convolve_rank(geom_, *table_,
                    cspan{ext_.data() + g * m_seg,
                          static_cast<std::size_t>(geom_.local_input())},
                    mspan{v_.data() + g * mcg * p,
                          static_cast<std::size_t>(mcg * p)});
    }
    breakdown_.conv = t.seconds();
  } else if (!overlap) {
    t.reset();
    comm_.sendrecv(left, cspan{x_local.data(), static_cast<std::size_t>(halo)},
                   right,
                   mspan{ext_.data() + m_rank, static_cast<std::size_t>(halo)},
                   kTagHalo);
    breakdown_.halo = t.seconds();
    t.reset();
    for (std::int64_t g = 0; g < spr_; ++g) {
      convolve_rank(geom_, *table_,
                    cspan{ext_.data() + g * m_seg,
                          static_cast<std::size_t>(geom_.local_input())},
                    mspan{v_.data() + g * mcg * p,
                          static_cast<std::size_t>(mcg * p)});
    }
    breakdown_.conv = t.seconds();
  } else {
    // Overlap: eager halo send, convolve every fully-local group while the
    // halo travels, then poll, then finish the tail of the last sub-rank.
    t.reset();
    comm_.send(left, kTagHalo,
               cspan{x_local.data(), static_cast<std::size_t>(halo)});
    breakdown_.halo = t.seconds();
    // Groups of the LAST sub-rank whose window fits in local data; all
    // groups of earlier sub-ranks are always fully local (halo <= M_seg).
    const std::int64_t q_safe = std::clamp<std::int64_t>(
        (m_seg - geom_.taps() * p) / (geom_.nu() * p) + 1, 0, groups);
    t.reset();
    for (std::int64_t g = 0; g < spr_; ++g) {
      const std::int64_t q_end = (g == spr_ - 1) ? q_safe : groups;
      convolve_rank_groups(geom_, *table_,
                           cspan{ext_.data() + g * m_seg,
                                 static_cast<std::size_t>(geom_.local_input())},
                           mspan{v_.data() + g * mcg * p,
                                 static_cast<std::size_t>(mcg * p)},
                           0, q_end);
    }
    breakdown_.conv = t.seconds();
    t.reset();
    while (!comm_.try_recv(right, kTagHalo,
                           mspan{ext_.data() + m_rank,
                                 static_cast<std::size_t>(halo)})) {
      // Busy poll; on a real fabric this slot absorbs message latency.
    }
    breakdown_.halo += t.seconds();
    t.reset();
    convolve_rank_groups(geom_, *table_,
                         cspan{ext_.data() + (spr_ - 1) * m_seg,
                               static_cast<std::size_t>(geom_.local_input())},
                         mspan{v_.data() + (spr_ - 1) * mcg * p,
                               static_cast<std::size_t>(mcg * p)},
                         q_safe, groups);
    breakdown_.conv += t.seconds();
  }

  // --- 3+4. F_P fused with the per-destination transpose pack (Fig. 3) ----
  // Destination rank d gets, for each of its segments sigma = d*spr + sl,
  // element sigma of every local chunk, laid out [sl][chunk]:
  // sendbuf[sigma*chunks + c] = F_P(v_c)[sigma] — exactly the interleaved
  // store layout of the batched pass, so no separate pack sweep runs.
  t.reset();
  batch_p_.forward_strided(v_, fft::contiguous_layout(p), sendbuf_,
                           fft::interleaved_layout(chunks), chunks);
  breakdown_.fp = t.seconds();
  breakdown_.pack = 0.0;

  // --- 5. the single all-to-all --------------------------------------------
  t.reset();
  comm_.alltoall(sendbuf_, recvbuf_, spr_ * chunks, opts_.alltoall_algo);
  breakdown_.alltoall = t.seconds();
  breakdown_.alltoall_bytes =
      static_cast<std::int64_t>(sizeof(cplx)) * spr_ * chunks * (ranks - 1);

  // recvbuf_ block from rank s: [sl][that rank's chunks]. Rank s computed
  // the global chunks [s*chunks, (s+1)*chunks), so for segment sl the M'
  // values x-tilde[sl][m] live at recv[s*spr*chunks + sl*chunks + (m mod
  // chunks)] with s = m / chunks. Assemble into uf_'s input order.
  t.reset();
  // Reuse v_ as the assembly buffer (x-tilde per local segment).
  for (std::int64_t sl = 0; sl < spr_; ++sl) {
    cplx* xt = v_.data() + sl * mprime;
    for (int s = 0; s < ranks; ++s) {
      const cplx* blk = recvbuf_.data() + (s * spr_ + sl) * chunks;
      std::copy_n(blk, chunks, xt + s * chunks);
    }
  }
  breakdown_.pack += t.seconds();

  // --- 6. F_M' per local segment --------------------------------------------
  t.reset();
  batch_mp_.forward(cspan{v_.data(), static_cast<std::size_t>(spr_ * mprime)},
                    mspan{uf_.data(), static_cast<std::size_t>(spr_ * mprime)},
                    spr_);
  breakdown_.fm = t.seconds();

  // --- 7. demodulate + project ------------------------------------------------
  t.reset();
  const cspan demod = table_->demod();
  for (std::int64_t sl = 0; sl < spr_; ++sl) {
    const cplx* seg = uf_.data() + sl * mprime;
    cplx* dst = y_local.data() + sl * m_seg;
    for (std::int64_t k = 0; k < m_seg; ++k) {
      dst[k] = seg[k] * demod[static_cast<std::size_t>(k)];
    }
  }
  breakdown_.demod = t.seconds();
}

void SoiFftDist::inverse(cspan y_local, mspan x_local) {
  const std::int64_t m_rank = local_size();
  SOI_CHECK(y_local.size() == static_cast<std::size_t>(m_rank),
            "SoiFftDist::inverse: local input size mismatch");
  SOI_CHECK(x_local.size() >= static_cast<std::size_t>(m_rank),
            "SoiFftDist::inverse: local output too small");
  // inverse(y) = conj(forward(conj(y))) / N; conjugation is local, the
  // block layout is symmetric, so this costs one extra local pass only.
  conj_in_.resize(static_cast<std::size_t>(m_rank));
  conj_out_.resize(static_cast<std::size_t>(m_rank));
  for (std::int64_t i = 0; i < m_rank; ++i) {
    conj_in_[static_cast<std::size_t>(i)] =
        std::conj(y_local[static_cast<std::size_t>(i)]);
  }
  forward(conj_in_, conj_out_);
  const double scale = 1.0 / static_cast<double>(geom_.n());
  for (std::int64_t i = 0; i < m_rank; ++i) {
    x_local[static_cast<std::size_t>(i)] =
        std::conj(conj_out_[static_cast<std::size_t>(i)]) * scale;
  }
}

}  // namespace soi::core
