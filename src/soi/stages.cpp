#include "soi/stages.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "soi/breakdown.hpp"
#include "soi/convolve.hpp"

namespace soi::core {

namespace {

constexpr int kTagHalo = 101;
// Staged topology exchange: each store-and-forward phase travels on its
// own tag, offset by the execution channel so co-scheduled instances
// never cross-match (phases <= 3, channels < kMaxChannels, so the
// range [160, 160 + 3*16) stays clear of every other user tag).
constexpr int kTagStaged = 160;

template <class Real>
std::int64_t cbytes(std::int64_t count) {
  return static_cast<std::int64_t>(sizeof(cplx_t<Real>)) * count;
}

std::int64_t fft_flops(std::int64_t batch, std::int64_t n) {
  return static_cast<std::int64_t>(
      static_cast<double>(batch) * 5.0 * static_cast<double>(n) *
      std::log2(static_cast<double>(n)));
}

// Node phases (NodeSpec::phase) shared by the chunked stages.
constexpr int kPhasePost = 0;  ///< stage input + nonblocking comm posts
constexpr int kPhaseWait = 1;  ///< complete a posted operation
constexpr int kPhaseWork = 2;  ///< compute kernel

/// Deadline-bounded completion of one posted operation at chunk
/// granularity: each expired attempt re-queues the retained clean copies
/// of the pending pieces (idempotent retransmit), bumps the stage's retry
/// counter, and doubles the deadline; soi::CommTimeoutError after the
/// world's retry budget. Falls back to a plain blocking wait when the
/// world has no deadline configured (the fault-free default).
void wait_resilient(net::Transport& comm, net::Request& req,
                    exec::StageRecord& rec, const char* what) {
  const double base = comm.timeout_ms();
  if (base <= 0) {
    comm.wait(req);
    return;
  }
  double t = base;
  const int maxr = comm.max_retries();
  for (int attempt = 0;; ++attempt) {
    if (comm.wait_for(req, t)) return;
    rec.retries += 1;
    if (attempt >= maxr) {
      std::ostringstream os;
      os << "SOI pipeline: " << what << " wait timed out after "
         << (attempt + 1) << " attempt(s), base deadline " << base << " ms";
      throw CommTimeoutError(os.str());
    }
    t *= 2;  // exponential backoff
  }
}

/// Stages 1+2 of the per-rank pipeline: halo materialisation and the
/// convolution W x. Emits "halo" and "conv". Node-driven: a post node
/// stages the input (and isend/irecvs the halo when remote), a wait node
/// completes the receive, and the convolution is split into a
/// halo-independent "safe" node (chunk 0) plus the last sub-rank's tail
/// (chunk 1) that depends on the wait — the pipelined schedule runs the
/// safe groups while the halo travels.
template <class Real>
class HaloConvStageT final : public exec::StageT<Real> {
 public:
  explicit HaloConvStageT(const ChainEnvT<Real>* env)
      : env_(env),
        hsend_(static_cast<std::size_t>(env->max_instances)),
        hrecv_(static_cast<std::size_t>(env->max_instances)) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const SoiGeometry& g = *env_->geom;
    exec::StageRecord halo;
    halo.name = "halo";
    halo.bytes_moved = remote() ? cbytes<Real>(g.halo()) : 0;
    halo.bytes_measured = remote();
    out.push_back(std::move(halo));
    exec::StageRecord conv;
    conv.name = "conv";
    conv.flops = 8 * env_->spr * g.conv_madds_per_rank();
    conv.bytes_moved = cbytes<Real>(env_->spr * g.local_input() +
                                    env_->chunks() * g.p());
    conv.chunks = remote() ? 2 : 1;
    out.push_back(std::move(conv));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    (void)ctx;
    (void)rec;
    SOI_CHECK(false, "halo+conv is node-driven (append_chain_stages "
                     "declares its nodes)");
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    switch (node.phase) {
      case kPhasePost:
        post(ctx, rec);
        return;
      case kPhaseWait:
        wait_halo(ctx, rec);
        return;
      default:
        conv(ctx, rec, node.chunk);
        return;
    }
  }

 private:
  [[nodiscard]] bool remote() const {
    return env_->has_comm && env_->ranks > 1;
  }

  void post(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const SoiGeometry& g = *env.geom;
    const std::int64_t m_rank = env.m_rank();
    const std::int64_t halo = g.halo();
    exec::StageRecord& rhalo = rec[0];
    exec::StageRecord& rconv = rec[1];
    const std::span<C> ext = ctx.arena->template span<C>(env.ext);
    const cspan_t<Real> x =
        env.src.valid()
            ? cspan_t<Real>(ctx.arena->template span<C>(env.src))
            : ctx.in;

    {
      // Staging the owned block is part of materialising the conv input.
      exec::StageTimer st(rconv);
      std::copy(x.begin(), x.end(), ext.begin());
    }

    if (!remote()) {
      exec::StageTimer st(rhalo);
      for (std::int64_t i = 0; i < halo; ++i) {
        ext[static_cast<std::size_t>(m_rank + i)] =
            x[static_cast<std::size_t>(i)];
      }
      return;
    }
    SOI_CHECK(ctx.comm != nullptr,
              "SOI pipeline: distributed chain run without a communicator");
    if constexpr (std::is_same_v<Real, double>) {
      const int ranks = env.ranks;
      const int rank = ctx.comm->rank();
      const int left = (rank - 1 + ranks) % ranks;
      const int right = (rank + 1) % ranks;
      const cspan halo_out{x.data(), static_cast<std::size_t>(halo)};
      const mspan halo_in{ext.data() + m_rank,
                          static_cast<std::size_t>(halo)};
      const auto inst = static_cast<std::size_t>(ctx.instance);
      // Each concurrent execution's halo travels on its own tag so two
      // co-scheduled transforms' halos never cross-match. Channels must
      // be unique across EVERY execution sharing this transport — other
      // instances of this plan (forward_many) and members of co-scheduled
      // cross-plan epochs (exec::run_epoch) alike — and bounded so the
      // staged-exchange tag blocks (kTagStaged + phase*kMaxChannels +
      // channel) stay disjoint.
      SOI_CHECK(ctx.channel >= 0 && ctx.channel < net::kMaxChannels,
                "SOI pipeline: channel " << ctx.channel << " not in [0, "
                                         << net::kMaxChannels << ")");
      const int tag = kTagHalo + ctx.channel;
      exec::StageTimer st(rhalo);
      const std::int64_t before = ctx.comm->bytes_sent();
      hsend_[inst] = ctx.comm->isend(left, tag, halo_out);
      hrecv_[inst] = ctx.comm->irecv(right, tag, halo_in);
      rhalo.bytes_moved += ctx.comm->bytes_sent() - before;
    } else {
      SOI_CHECK(false, "SOI pipeline: communicator paths are double-only");
    }
  }

  void wait_halo(exec::ExecContextT<Real>& ctx,
                 exec::StageRecord* rec) const {
    const auto inst = static_cast<std::size_t>(ctx.instance);
    exec::WaitTimer wt(rec[0]);
    wait_resilient(*ctx.comm, hrecv_[inst], rec[0], "halo");
    wait_resilient(*ctx.comm, hsend_[inst], rec[0], "halo");
  }

  void conv(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
            int chunk) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const SoiGeometry& g = *env.geom;
    const std::int64_t m_seg = g.m();
    const std::int64_t mcg = g.chunks_per_rank();
    const std::int64_t p = g.p();
    const std::span<C> ext = ctx.arena->template span<C>(env.ext);
    const std::span<C> v = ctx.arena->template span<C>(env.v);

    const auto convolve_range = [&](std::int64_t seg_begin,
                                    std::int64_t seg_end) {
      for (std::int64_t s = seg_begin; s < seg_end; ++s) {
        convolve_rank<Real>(
            g, *env.table,
            cspan_t<Real>{ext.data() + s * m_seg,
                          static_cast<std::size_t>(g.local_input())},
            mspan_t<Real>{v.data() + s * mcg * p,
                          static_cast<std::size_t>(mcg * p)});
      }
    };
    const auto convolve_last_groups = [&](std::int64_t q_begin,
                                          std::int64_t q_end) {
      convolve_rank_groups<Real>(
          g, *env.table,
          cspan_t<Real>{ext.data() + (env.spr - 1) * m_seg,
                        static_cast<std::size_t>(g.local_input())},
          mspan_t<Real>{v.data() + (env.spr - 1) * mcg * p,
                        static_cast<std::size_t>(mcg * p)},
          q_begin, q_end);
    };

    exec::StageTimer st(rec[1]);
    if (!remote()) {
      convolve_range(0, env.spr);
      return;
    }
    // Groups of the LAST sub-rank whose window fits in local data; all
    // groups of earlier sub-ranks are always fully local (halo <= M_seg).
    const std::int64_t groups = g.groups_per_rank();
    const std::int64_t q_safe = std::clamp<std::int64_t>(
        (m_seg - g.taps() * p) / (g.nu() * p) + 1, 0, groups);
    if (chunk == 0) {
      convolve_range(0, env.spr - 1);
      convolve_last_groups(0, q_safe);
    } else {
      convolve_last_groups(q_safe, groups);
    }
  }

  const ChainEnvT<Real>* env_;
  // In-flight halo requests, one pair per concurrent execution
  // (ExecContext::instance); sized from env->max_instances.
  mutable std::vector<net::Request> hsend_, hrecv_;
};

/// Stage "f_p": I (x) F_P over the local chunks, with the Fig. 3
/// per-destination transpose fused into the batched pass's interleaved
/// store. Under a null comm it stores straight into x-tilde.
template <class Real>
class FpStageT final : public exec::StageT<Real> {
 public:
  explicit FpStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t p = env_->geom->p();
    exec::StageRecord r;
    r.name = "f_p";
    r.bytes_moved = 2 * cbytes<Real>(env_->chunks() * p);
    r.flops = fft_flops(env_->chunks(), p);
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t p = env.geom->p();
    const std::int64_t chunks = env.chunks();
    const std::span<C> v = ctx.arena->template span<C>(env.v);
    const std::span<C> dst =
        ctx.arena->template span<C>(env.has_comm ? env.send : env.xt);
    exec::StageTimer st(*rec);
    // Destination rank d gets, for each of its segments sigma, element
    // sigma of every local chunk, laid out [sigma][chunk]: exactly the
    // interleaved store layout, so no separate pack sweep runs.
    env.batch_p->forward_strided(v, fft::contiguous_layout(p), dst,
                                 fft::interleaved_layout(chunks), chunks);
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "exchange": the single global all-to-all, cut into chunk_depth
/// nonblocking pieces. A post node (per chunk group) fires ialltoall /
/// ialltoallv into that group's buffer slot; a wait node completes it.
/// bytes_moved accumulates the measured per-rank send volume (the transport
/// counters); a null comm declares no nodes and run() is a no-op.
template <class Real>
class ExchangeStageT final : public exec::StageT<Real> {
 public:
  explicit ExchangeStageT(const ChainEnvT<Real>* env)
      : env_(env),
        reqs_(static_cast<std::size_t>(env->max_instances) *
              static_cast<std::size_t>(env->chunk_depth)),
        sreqs_(env->staged_exchange()
                   ? static_cast<std::size_t>(env->max_instances) *
                         static_cast<std::size_t>(env->chunk_depth) *
                         static_cast<std::size_t>(env->staged.max_peers)
                   : 0),
        wreqs_(env->staged_exchange()
                   ? static_cast<std::size_t>(env->max_instances) *
                         static_cast<std::size_t>(env->staged.max_peers)
                   : 0) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "exchange";
    r.bytes_moved = env_->has_comm
                        ? cbytes<Real>(env_->spr * env_->chunks() *
                                       (env_->ranks - 1))
                        : 0;
    r.bytes_measured = remote();
    r.chunks = remote() ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    (void)ctx;
    (void)rec;
    // Null-comm auto node: F_P already stored into x-tilde.
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    SOI_CHECK(ctx.comm != nullptr,
              "SOI pipeline: distributed chain run without a communicator");
    if constexpr (std::is_same_v<Real, double>) {
      if (env.staged_exchange()) {
        if (node.phase == kPhaseWait) {
          wait_staged(ctx, rec, node);
        } else {
          post_staged(ctx, rec, node);
        }
        return;
      }
      const auto g = static_cast<std::size_t>(node.chunk);
      const auto slot0 = static_cast<std::size_t>(ctx.instance) *
                         static_cast<std::size_t>(env.chunk_depth);
      if (node.phase == kPhaseWait) {
        exec::WaitTimer wt(*rec);
        wait_resilient(*ctx.comm, reqs_[slot0 + g], *rec, "exchange");
        return;
      }
      const std::span<C> send = ctx.arena->template span<C>(env.send);
      const std::int64_t before = ctx.comm->bytes_sent();
      {
        exec::StageTimer st(*rec);
        if (env.chunk_depth == 1) {
          const std::span<C> recv = ctx.arena->template span<C>(env.recv);
          reqs_[slot0] = ctx.comm->ialltoall(send, recv,
                                             env.spr * env.chunks(),
                                             env.algo, ctx.channel);
        } else {
          const std::span<C> recv = ctx.arena->template span<C>(
              WorkspaceArena::slot(env.recv,
                                   node.chunk % env.nslots()));
          const auto ranks = static_cast<std::size_t>(env.ranks);
          const std::span<const std::int64_t> counts{env.a2a_counts.data(),
                                                     ranks};
          const std::span<const std::int64_t> sdispls{
              env.a2a_send_displs.data() + g * ranks, ranks};
          const std::span<const std::int64_t> rdispls{
              env.a2a_recv_displs.data(), ranks};
          reqs_[slot0 + g] = ctx.comm->ialltoallv(send, counts, sdispls,
                                                  recv, counts, rdispls,
                                                  ctx.channel);
        }
      }
      rec->bytes_moved += ctx.comm->bytes_sent() - before;
    } else {
      SOI_CHECK(false, "SOI pipeline: communicator paths are double-only");
    }
  }

 private:
  [[nodiscard]] bool remote() const {
    return env_->has_comm && env_->ranks > 1;
  }

  /// Element count of one (source, destination) block of a chunk group.
  [[nodiscard]] std::int64_t block_elems() const {
    return env_->gseg() * env_->chunks();
  }

  [[nodiscard]] int staged_tag(int phase, int channel) const {
    return kTagStaged + phase * net::kMaxChannels + channel;
  }

  /// Staged post node: pack + fire phase 0 of the store-and-forward
  /// schedule. Fuses this group's blocks for each first-hop peer out of
  /// the send buffer (phase-0 gather indices ARE destination ranks, so
  /// they map through the group's send displacements), posts the phase-0
  /// receives into the slot's first holdings half, and copies the kept
  /// blocks across. SimMPI sends are buffered-complete at post, so the
  /// pack region is reusable as soon as isend_bytes returns.
  void post_staged(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                   const exec::NodeSpec& node) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const net::StagedPlan& plan = env.staged;
    const auto g = static_cast<std::size_t>(node.chunk);
    const std::int64_t B = block_elems();
    const std::int64_t RB = static_cast<std::int64_t>(plan.ranks) * B;
    const std::span<C> send = ctx.arena->template span<C>(env.send);
    const std::span<C> stg = ctx.arena->template span<C>(
        WorkspaceArena::slot(env.stg, node.chunk % env.nslots()));
    C* pack = stg.data();
    C* hold = stg.data() + RB;  // first ping-pong half: phase-0 holdings
    const auto ranks = static_cast<std::size_t>(env.ranks);
    const std::int64_t* displs = env.a2a_send_displs.data() + g * ranks;
    const net::StagedPlan::Phase& ph0 = plan.phases.front();
    const int tag = staged_tag(0, ctx.channel);
    net::Request* rq =
        sreqs_.data() +
        (static_cast<std::size_t>(ctx.instance) *
             static_cast<std::size_t>(env.chunk_depth) +
         g) *
            static_cast<std::size_t>(plan.max_peers);
    const std::int64_t before = ctx.comm->bytes_sent();
    {
      exec::StageTimer st(*rec);
      std::size_t ri = 0;
      for (const net::StagedPlan::Recv& rv : ph0.recvs) {
        rq[ri++] = ctx.comm->irecv_bytes(
            rv.peer, tag, hold + static_cast<std::int64_t>(rv.first_slot) * B,
            static_cast<std::size_t>(rv.nblocks) *
                static_cast<std::size_t>(B) * sizeof(C));
      }
      std::int64_t off = 0;
      for (const net::StagedPlan::Send& sd : ph0.sends) {
        C* msg = pack + off;
        for (const int d : sd.gather) {
          std::copy_n(send.data() + displs[d], B, pack + off);
          off += B;
        }
        ctx.comm->isend_bytes(sd.peer, tag, msg,
                              sd.gather.size() *
                                  static_cast<std::size_t>(B) * sizeof(C));
      }
      for (const net::StagedPlan::Keep& kp : ph0.keeps) {
        std::copy_n(send.data() + displs[kp.from], B,
                    hold + static_cast<std::int64_t>(kp.to) * B);
      }
    }
    rec->bytes_moved += ctx.comm->bytes_sent() - before;
  }

  /// Staged wait node: complete phase 0, run the remaining forwarding
  /// phases inline (gather from the previous holdings, isend, irecv into
  /// the other ping-pong half, copy keeps, wait), then scatter the final
  /// holdings into source-rank order in the recv slot — the exact layout
  /// the flat ialltoallv produces, so unpack and everything downstream is
  /// schedule-oblivious and the output stays bit-identical.
  void wait_staged(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                   const exec::NodeSpec& node) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const net::StagedPlan& plan = env.staged;
    const auto g = static_cast<std::size_t>(node.chunk);
    const std::int64_t B = block_elems();
    const std::int64_t RB = static_cast<std::int64_t>(plan.ranks) * B;
    const int slot = node.chunk % env.nslots();
    const std::span<C> stg =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.stg, slot));
    C* pack = stg.data();
    C* prev = stg.data() + RB;      // phase-0 receives landed here
    C* cur = stg.data() + 2 * RB;   // next phase's holdings
    net::Request* rq =
        sreqs_.data() +
        (static_cast<std::size_t>(ctx.instance) *
             static_cast<std::size_t>(env.chunk_depth) +
         g) *
            static_cast<std::size_t>(plan.max_peers);
    {
      exec::WaitTimer wt(*rec);
      for (std::size_t i = 0; i < plan.phases.front().recvs.size(); ++i) {
        wait_resilient(*ctx.comm, rq[i], *rec, "exchange");
      }
    }
    const std::int64_t before = ctx.comm->bytes_sent();
    net::Request* wq = wreqs_.data() +
                       static_cast<std::size_t>(ctx.instance) *
                           static_cast<std::size_t>(plan.max_peers);
    for (std::size_t p = 1; p < plan.phases.size(); ++p) {
      const net::StagedPlan::Phase& ph = plan.phases[p];
      const int tag = staged_tag(static_cast<int>(p), ctx.channel);
      std::size_t nr = 0;
      {
        exec::StageTimer st(*rec);
        for (const net::StagedPlan::Recv& rv : ph.recvs) {
          wq[nr++] = ctx.comm->irecv_bytes(
              rv.peer, tag,
              cur + static_cast<std::int64_t>(rv.first_slot) * B,
              static_cast<std::size_t>(rv.nblocks) *
                  static_cast<std::size_t>(B) * sizeof(C));
        }
        std::int64_t off = 0;
        for (const net::StagedPlan::Send& sd : ph.sends) {
          C* msg = pack + off;
          for (const int from : sd.gather) {
            std::copy_n(prev + static_cast<std::int64_t>(from) * B, B,
                        pack + off);
            off += B;
          }
          ctx.comm->isend_bytes(sd.peer, tag, msg,
                                sd.gather.size() *
                                    static_cast<std::size_t>(B) * sizeof(C));
        }
        for (const net::StagedPlan::Keep& kp : ph.keeps) {
          std::copy_n(prev + static_cast<std::int64_t>(kp.from) * B, B,
                      cur + static_cast<std::int64_t>(kp.to) * B);
        }
      }
      {
        exec::WaitTimer wt(*rec);
        for (std::size_t i = 0; i < nr; ++i) {
          wait_resilient(*ctx.comm, wq[i], *rec, "exchange");
        }
      }
      std::swap(prev, cur);
    }
    rec->bytes_moved += ctx.comm->bytes_sent() - before;
    const std::span<C> recv = ctx.arena->template span<C>(
        WorkspaceArena::slot(env.recv, slot));
    exec::StageTimer st(*rec);
    for (int s = 0; s < plan.ranks; ++s) {
      std::copy_n(prev + static_cast<std::int64_t>(s) * B, B,
                  recv.data() +
                      static_cast<std::int64_t>(plan.final_src[
                          static_cast<std::size_t>(s)]) *
                          B);
    }
  }

  const ChainEnvT<Real>* env_;
  // One in-flight request per (execution instance, chunk group), laid out
  // instance-major; reassigned every run (requests are passive value
  // types, so steady-state reuse allocates nothing).
  mutable std::vector<net::Request> reqs_;
  // Staged schedules only: phase-0 receive requests, laid out
  // [instance][chunk group][peer], plus the in-wait forwarding-phase
  // requests [instance][peer] (later phases run inline inside the wait
  // node, so one group per instance uses them at a time).
  mutable std::vector<net::Request> sreqs_, wreqs_;
};

/// Stage "unpack": assemble the received per-source blocks into segment
/// order, one chunk group (gseg segments, buffer slot chunk mod 2) at a
/// time. Source rank s computed the global chunks [s*chunks, (s+1)*chunks);
/// its group-g block is laid out [sl][chunk], so segment sl's M' values
/// are gathered as xt[sl*M' + s*chunks + j] = recv[(s*gseg + sl)*chunks + j].
template <class Real>
class UnpackStageT final : public exec::StageT<Real> {
 public:
  explicit UnpackStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "unpack";
    r.bytes_moved = env_->has_comm
                        ? 2 * cbytes<Real>(env_->spr * env_->geom->mprime())
                        : 0;
    r.chunks = (env_->has_comm && env_->ranks > 1) ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    (void)ctx;
    (void)rec;
    // Null-comm auto node: nothing to assemble.
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t chunks = env.chunks();
    const std::int64_t gseg = env.gseg();
    const std::int64_t mprime = env.geom->mprime();
    const int slot = node.chunk % env.nslots();
    const std::span<C> recv =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.recv, slot));
    const std::span<C> xt =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.xt, slot));
    exec::StageTimer st(*rec);
    for (std::int64_t sl = 0; sl < gseg; ++sl) {
      C* seg = xt.data() + sl * mprime;
      for (int s = 0; s < env.ranks; ++s) {
        const C* blk = recv.data() + (s * gseg + sl) * chunks;
        std::copy_n(blk, chunks, seg + s * chunks);
      }
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "f_mprime": I (x) F_M' over the assembled local segments — the
/// whole rank under a null comm, one chunk group per node when remote.
template <class Real>
class FmStageT final : public exec::StageT<Real> {
 public:
  explicit FmStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t mprime = env_->geom->mprime();
    exec::StageRecord r;
    r.name = "f_mprime";
    r.bytes_moved = 2 * cbytes<Real>(env_->spr * mprime);
    r.flops = fft_flops(env_->spr, mprime);
    r.chunks = (env_->has_comm && env_->ranks > 1) ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::size_t count =
        static_cast<std::size_t>(env.spr * env.geom->mprime());
    const std::span<C> xt = ctx.arena->template span<C>(env.xt);
    const std::span<C> uf = ctx.arena->template span<C>(env.uf);
    exec::StageTimer st(*rec);
    env.batch_mp->forward(cspan_t<Real>{xt.data(), count},
                          mspan_t<Real>{uf.data(), count}, env.spr);
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t gseg = env.gseg();
    const std::size_t count =
        static_cast<std::size_t>(gseg * env.geom->mprime());
    const int slot = node.chunk % env.nslots();
    const std::span<C> xt =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.xt, slot));
    const std::span<C> uf =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.uf, slot));
    exec::StageTimer st(*rec);
    env.batch_mp->forward(cspan_t<Real>{xt.data(), count},
                          mspan_t<Real>{uf.data(), count}, gseg);
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "demod": demodulate + project each segment's first M bins (per
/// chunk group when remote; group g covers segments [g*gseg, (g+1)*gseg)).
template <class Real>
class DemodStageT final : public exec::StageT<Real> {
 public:
  explicit DemodStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t m = env_->geom->m();
    exec::StageRecord r;
    r.name = "demod";
    r.bytes_moved = cbytes<Real>(2 * env_->spr * m + m);
    r.flops = 6 * env_->spr * m;
    r.chunks = (env_->has_comm && env_->ranks > 1) ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t m = env.geom->m();
    const std::int64_t mprime = env.geom->mprime();
    const std::span<C> uf = ctx.arena->template span<C>(env.uf);
    const mspan_t<Real> y =
        env.dst.valid() ? mspan_t<Real>(ctx.arena->template span<C>(env.dst))
                        : ctx.out;
    const cspan_t<Real> demod = env.table->demod();
    exec::StageTimer st(*rec);
    for (std::int64_t s = 0; s < env.spr; ++s) {
      const C* seg = uf.data() + s * mprime;
      C* dst = y.data() + s * m;
      for (std::int64_t k = 0; k < m; ++k) {
        dst[k] = seg[k] * demod[static_cast<std::size_t>(k)];
      }
    }
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t m = env.geom->m();
    const std::int64_t mprime = env.geom->mprime();
    const std::int64_t gseg = env.gseg();
    const int slot = node.chunk % env.nslots();
    const std::span<C> uf =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.uf, slot));
    const mspan_t<Real> y =
        env.dst.valid() ? mspan_t<Real>(ctx.arena->template span<C>(env.dst))
                        : ctx.out;
    const cspan_t<Real> demod = env.table->demod();
    exec::StageTimer st(*rec);
    for (std::int64_t sl = 0; sl < gseg; ++sl) {
      const C* seg = uf.data() + sl * mprime;
      C* dst = y.data() + (node.chunk * gseg + sl) * m;
      for (std::int64_t k = 0; k < m; ++k) {
        dst[k] = seg[k] * demod[static_cast<std::size_t>(k)];
      }
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// "r2c_pack": z[j] = in[2j] + i*in[2j+1] from ctx.real_in.
class R2cPackStage final : public exec::StageT<double> {
 public:
  R2cPackStage(WorkspaceArena::BufferId z, std::int64_t h) : z_(z), h_(h) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "r2c_pack";
    r.bytes_moved = cbytes<double>(2 * h_);
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<double>& ctx,
           exec::StageRecord* rec) const override {
    const std::span<cplx> z = ctx.arena->span<cplx>(z_);
    const std::span<const double> in = ctx.real_in;
    exec::StageTimer st(*rec);
    for (std::int64_t j = 0; j < h_; ++j) {
      z[static_cast<std::size_t>(j)] = {in[static_cast<std::size_t>(2 * j)],
                                        in[static_cast<std::size_t>(2 * j + 1)]};
    }
  }

 private:
  WorkspaceArena::BufferId z_;
  std::int64_t h_;
};

/// "r2c_untangle": split the half-length spectrum zf into the h+1 bins of
/// the real signal's DFT (even/odd untangling with the twiddle table).
class R2cUntangleStage final : public exec::StageT<double> {
 public:
  R2cUntangleStage(WorkspaceArena::BufferId zf, const cvec* twiddle,
                   std::int64_t h)
      : zf_(zf), twiddle_(twiddle), h_(h) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "r2c_untangle";
    r.bytes_moved = cbytes<double>(2 * h_);
    r.flops = 14 * h_;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<double>& ctx,
           exec::StageRecord* rec) const override {
    const std::span<const cplx> zf = ctx.arena->span<cplx>(zf_);
    const cvec& tw = *twiddle_;
    exec::StageTimer st(*rec);
    for (std::int64_t k = 0; k <= h_; ++k) {
      const std::int64_t km = k % h_;
      const std::int64_t kc = (h_ - k) % h_;
      const cplx zk = zf[static_cast<std::size_t>(km)];
      const cplx zc = std::conj(zf[static_cast<std::size_t>(kc)]);
      const cplx even = 0.5 * (zk + zc);
      const cplx odd = cplx{0.0, -0.5} * (zk - zc);
      const cplx t =
          (k == h_) ? cplx{-1.0, 0.0} : tw[static_cast<std::size_t>(k)];
      ctx.out[static_cast<std::size_t>(k)] = even + t * odd;
    }
  }

 private:
  WorkspaceArena::BufferId zf_;
  const cvec* twiddle_;
  std::int64_t h_;
};

}  // namespace

template <class Real>
void reserve_chain_buffers(WorkspaceArena& arena, ChainEnvT<Real>& env,
                           int base) {
  if constexpr (!std::is_same_v<Real, double>) {
    SOI_CHECK(!env.has_comm,
              "SOI pipeline: communicator paths are double-only");
  }
  SOI_CHECK(env.chunk_depth >= 1 && env.spr % env.chunk_depth == 0,
            "SOI pipeline: chunk_depth " << env.chunk_depth
                                         << " must divide spr " << env.spr);
  const SoiGeometry& g = *env.geom;
  const auto cb = [](std::int64_t count) {
    return static_cast<std::size_t>(cbytes<Real>(count));
  };
  const std::int64_t chunks = env.chunks();
  const std::int64_t seg_total = env.spr * g.mprime();  // == chunks * P
  env.ext = arena.reserve("ext", cb(env.m_rank() + g.halo()), base, base);
  env.v = arena.reserve("v", cb(chunks * g.p()), base, base + 1);
  if (env.has_comm && (env.chunk_depth > 1 || env.staged_exchange())) {
    // Chunked exchange: the pipelined schedule interleaves positions
    // base+2..base+5, so every buffer those nodes touch must be live over
    // the whole span (no aliasing between the chain's own stages), and
    // recv/x-tilde/uf become nslots() group-sized slots each. A staged
    // topology schedule additionally gets a per-slot scratch holding the
    // fused-message pack region plus the ping-pong holdings halves.
    const std::int64_t gtotal = env.gseg() * g.mprime();
    const int ns = env.nslots();
    env.send = arena.reserve("send", cb(chunks * g.p()), base + 1, base + 5);
    env.recv = arena.reserve_slots("recv", cb(gtotal), ns, base + 2, base + 5);
    env.xt = arena.reserve_slots("xt", cb(gtotal), ns, base + 2, base + 5);
    env.uf = arena.reserve_slots("uf", cb(gtotal), ns, base + 2, base + 5);
    if (env.staged_exchange()) {
      SOI_CHECK(env.topo.ranks() == env.ranks,
                "SOI pipeline: topology built for " << env.topo.ranks()
                                                    << " ranks, communicator has "
                                                    << env.ranks);
      env.stg =
          arena.reserve_slots("stg", cb(3 * gtotal), ns, base + 2, base + 5);
    }

    // ialltoallv layout: destination d's block for group g starts at
    // segment d*spr + g*gseg of the [sigma][chunk] send buffer; source s's
    // block lands slot-relative at s*gseg*chunks.
    const auto ranks = static_cast<std::size_t>(env.ranks);
    const auto depth = static_cast<std::size_t>(env.chunk_depth);
    env.a2a_counts.assign(ranks, env.gseg() * chunks);
    env.a2a_send_displs.resize(depth * ranks);
    env.a2a_recv_displs.resize(ranks);
    for (std::size_t gi = 0; gi < depth; ++gi) {
      for (std::size_t d = 0; d < ranks; ++d) {
        env.a2a_send_displs[gi * ranks + d] =
            (static_cast<std::int64_t>(d) * env.spr +
             static_cast<std::int64_t>(gi) * env.gseg()) *
            chunks;
      }
    }
    for (std::size_t s = 0; s < ranks; ++s) {
      env.a2a_recv_displs[s] =
          static_cast<std::int64_t>(s) * env.gseg() * chunks;
    }
  } else if (env.has_comm) {
    env.send = arena.reserve("send", cb(chunks * g.p()), base + 1, base + 2);
    env.recv = arena.reserve("recv", cb(seg_total), base + 2, base + 3);
    env.xt = arena.reserve("xt", cb(seg_total), base + 3, base + 4);
    env.uf = arena.reserve("uf", cb(seg_total), base + 4, base + 5);
  } else {
    // F_P stores straight into x-tilde; no exchange staging needed.
    env.xt = arena.reserve("xt", cb(seg_total), base + 1, base + 4);
    env.uf = arena.reserve("uf", cb(seg_total), base + 4, base + 5);
  }
}

template <class Real>
void append_chain_stages(exec::PipelineT<Real>& pl,
                         const ChainEnvT<Real>& env) {
  using exec::NodeSpec;
  using exec::StageClass;
  const int s_halo = pl.next_index();
  pl.add(std::make_unique<HaloConvStageT<Real>>(&env));
  pl.add(std::make_unique<FpStageT<Real>>(&env));
  const int s_exch = s_halo + 2;
  pl.add(std::make_unique<ExchangeStageT<Real>>(&env));
  pl.add(std::make_unique<UnpackStageT<Real>>(&env));
  pl.add(std::make_unique<FmStageT<Real>>(&env));
  pl.add(std::make_unique<DemodStageT<Real>>(&env));

  const auto node = [&pl](int stage, int chunk, int phase, StageClass cls,
                          int seq_key, int ovl_key, int many_phase = 1) {
    NodeSpec n;
    n.stage = stage;
    n.chunk = chunk;
    n.phase = phase;
    n.cls = cls;
    n.seq_key = seq_key;
    n.ovl_key = ovl_key;
    n.many_phase = many_phase;
    return pl.add_node(n);
  };

  const bool remote = env.has_comm && env.ranks > 1;
  if (!remote) {
    // Serial wrap: stage the input + fill the wrap halo, then one whole-
    // rank convolution. Everything downstream stays an atomic auto node.
    const int hpost = node(s_halo, 0, kPhasePost, StageClass::kCompute, 0, 0);
    const int conv = node(s_halo, 0, kPhaseWork, StageClass::kCompute, 1, 1);
    pl.add_edge(hpost, conv);
    return;
  }

  // Halo + split convolution. In-order keys run wait before the safe
  // groups (the classic blocking order); pipelined keys convolve the safe
  // groups while the halo travels.
  const int hpost =
      node(s_halo, 0, kPhasePost, StageClass::kCommPost, 0, 0, 0);
  const int hwait = node(s_halo, 0, kPhaseWait, StageClass::kCommWait, 1, 2);
  const int csafe = node(s_halo, 0, kPhaseWork, StageClass::kCompute, 2, 1);
  const int ctail = node(s_halo, 1, kPhaseWork, StageClass::kCompute, 3, 3);
  pl.add_edge(hpost, hwait);
  pl.add_edge(hpost, csafe);
  pl.add_edge(hpost, ctail);
  pl.add_edge(hwait, ctail);

  // Per-chunk-group exchange..demod. seq keys are chunk-major (the
  // in-order executor); ovl keys realise the software pipeline
  //   post(0), post(1), wait(0), unpack(0), fm(0), demod(0), post(2), ...
  // f_p (no declared nodes) is an auto barrier between conv and the posts.
  const int depth = static_cast<int>(env.chunk_depth);
  const int ns = env.nslots();
  std::vector<int> post(static_cast<std::size_t>(depth));
  std::vector<int> wait(static_cast<std::size_t>(depth));
  std::vector<int> unp(static_cast<std::size_t>(depth));
  std::vector<int> fm(static_cast<std::size_t>(depth));
  std::vector<int> dem(static_cast<std::size_t>(depth));
  std::vector<int> post_ovl(static_cast<std::size_t>(depth));
  // Pipelined key layout: a prologue posts the first nslots() groups (the
  // pipeline keeps up to nslots() exchanges in flight), then each group's
  // wait..demod runs with group g+ns's post interleaved after it — at
  // ns == 2 this reduces to post(0), post(1), wait(0), ..., post(2), ...
  int ko = 200;
  for (int g = 0; g < std::min(ns, depth); ++g) {
    post_ovl[static_cast<std::size_t>(g)] = ko++;
  }
  std::vector<std::array<int, 4>> rest_ovl(static_cast<std::size_t>(depth));
  for (int g = 0; g < depth; ++g) {
    for (int i = 0; i < 4; ++i) rest_ovl[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)] = ko++;
    if (g + ns < depth) post_ovl[static_cast<std::size_t>(g + ns)] = ko++;
  }
  for (int g = 0; g < depth; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    const int ks = 100 + 5 * g;
    post[gi] = node(s_exch, g, kPhasePost, StageClass::kCommPost, ks,
                    post_ovl[gi], 0);
    wait[gi] = node(s_exch, g, kPhaseWait, StageClass::kCommWait, ks + 1,
                    rest_ovl[gi][0], 2);
    unp[gi] = node(s_exch + 1, g, kPhaseWork, StageClass::kCompute, ks + 2,
                   rest_ovl[gi][1], 2);
    fm[gi] = node(s_exch + 2, g, kPhaseWork, StageClass::kCompute, ks + 3,
                  rest_ovl[gi][2], 2);
    dem[gi] = node(s_exch + 3, g, kPhaseWork, StageClass::kCompute, ks + 4,
                   rest_ovl[gi][3], 2);
    pl.add_edge(post[gi], wait[gi]);
    pl.add_edge(wait[gi], unp[gi]);
    pl.add_edge(unp[gi], fm[gi]);
    pl.add_edge(fm[gi], dem[gi]);
    // Slot-cycle write-after-read edges: group g+ns reuses group g's
    // slots, so its writers wait for g's readers. (The unp[g-ns] ->
    // post[g] edge also orders post[g] after wait[g-ns] transitively,
    // which guards the staged schedule's stg scratch reuse.)
    if (g >= ns) {
      const auto gp = static_cast<std::size_t>(g - ns);
      pl.add_edge(unp[gp], post[gi]);  // recv + stg slots
      pl.add_edge(fm[gp], unp[gi]);    // xt slot
      pl.add_edge(dem[gp], fm[gi]);    // uf slot
    }
  }
}

std::unique_ptr<exec::StageT<double>> make_r2c_pack_stage(
    WorkspaceArena::BufferId z, std::int64_t h) {
  return std::make_unique<R2cPackStage>(z, h);
}

std::unique_ptr<exec::StageT<double>> make_r2c_untangle_stage(
    WorkspaceArena::BufferId zf, const cvec* twiddle, std::int64_t h) {
  return std::make_unique<R2cUntangleStage>(zf, twiddle, h);
}

SoiStageBreakdown SoiStageBreakdown::from_trace(const exec::TraceLog& trace) {
  SoiStageBreakdown bd;
  for (const auto& r : trace.records()) {
    if (r.name == "halo") {
      bd.halo += r.seconds;
      bd.halo_bytes += r.bytes_moved;
    } else if (r.name == "conv") {
      bd.conv += r.seconds;
    } else if (r.name == "f_p") {
      bd.fp += r.seconds;
    } else if (r.name == "exchange") {
      bd.alltoall += r.seconds;
      bd.alltoall_bytes += r.bytes_moved;
    } else if (r.name == "unpack") {
      bd.pack += r.seconds;
    } else if (r.name == "f_mprime") {
      bd.fm += r.seconds;
    } else if (r.name == "demod") {
      bd.demod += r.seconds;
    }
  }
  return bd;
}

template void reserve_chain_buffers<double>(WorkspaceArena&,
                                            ChainEnvT<double>&, int);
template void reserve_chain_buffers<float>(WorkspaceArena&, ChainEnvT<float>&,
                                           int);
template void append_chain_stages<double>(exec::PipelineT<double>&,
                                          const ChainEnvT<double>&);
template void append_chain_stages<float>(exec::PipelineT<float>&,
                                         const ChainEnvT<float>&);

}  // namespace soi::core
