#include "soi/stages.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <thread>
#include <type_traits>

#include "common/error.hpp"
#include "soi/breakdown.hpp"
#include "soi/convolve.hpp"

namespace soi::core {

namespace {

constexpr int kTagHalo = 101;
// Staged topology exchange: each store-and-forward phase travels on its
// own tag, offset by the execution channel so co-scheduled instances
// never cross-match (phases <= 3, channels < kMaxChannels, so the
// range [160, 160 + 3*16) stays clear of every other user tag).
constexpr int kTagStaged = 160;

template <class Real>
std::int64_t cbytes(std::int64_t count) {
  return static_cast<std::int64_t>(sizeof(cplx_t<Real>)) * count;
}

std::int64_t fft_flops(std::int64_t batch, std::int64_t n) {
  return static_cast<std::int64_t>(
      static_cast<double>(batch) * 5.0 * static_cast<double>(n) *
      std::log2(static_cast<double>(n)));
}

// Node phases (NodeSpec::phase) shared by the chunked stages.
constexpr int kPhasePost = 0;  ///< stage input + nonblocking comm posts
constexpr int kPhaseWait = 1;  ///< complete a posted operation
constexpr int kPhaseWork = 2;  ///< compute kernel

/// Deadline-bounded completion of one posted operation at chunk
/// granularity: each expired attempt re-queues the retained clean copies
/// of the pending pieces (idempotent retransmit), bumps the stage's retry
/// counter, and doubles the deadline; soi::CommTimeoutError after the
/// world's retry budget. Falls back to a plain blocking wait when the
/// world has no deadline configured (the fault-free default).
void wait_resilient(net::Transport& comm, net::Request& req,
                    exec::StageRecord& rec, const char* what) {
  const double base = comm.timeout_ms();
  if (base <= 0) {
    comm.wait(req);
    return;
  }
  double t = base;
  const int maxr = comm.max_retries();
  for (int attempt = 0;; ++attempt) {
    if (comm.wait_for(req, t)) return;
    rec.retries += 1;
    if (attempt >= maxr) {
      std::ostringstream os;
      os << "SOI pipeline: " << what << " wait timed out after "
         << (attempt + 1) << " attempt(s), base deadline " << base << " ms";
      throw CommTimeoutError(os.str());
    }
    t *= 2;  // exponential backoff
  }
}

/// Stages 1+2 of the per-rank pipeline: halo materialisation and the
/// convolution W x. Emits "halo" and "conv". Node-driven: a post node
/// stages the input (and isend/irecvs the halo when remote), a wait node
/// completes the receive, and the convolution is split into a
/// halo-independent "safe" node (chunk 0) plus the last sub-rank's tail
/// (chunk 1) that depends on the wait — the pipelined schedule runs the
/// safe groups while the halo travels.
template <class Real>
class HaloConvStageT final : public exec::StageT<Real> {
 public:
  explicit HaloConvStageT(const ChainEnvT<Real>* env)
      : env_(env),
        hsend_(static_cast<std::size_t>(env->max_instances)),
        hrecv_(static_cast<std::size_t>(env->max_instances)) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const SoiGeometry& g = *env_->geom;
    exec::StageRecord halo;
    halo.name = "halo";
    halo.bytes_moved = remote() ? cbytes<Real>(g.halo()) : 0;
    halo.bytes_measured = remote();
    out.push_back(std::move(halo));
    exec::StageRecord conv;
    conv.name = "conv";
    conv.flops = 8 * env_->spr * g.conv_madds_per_rank();
    conv.bytes_moved = cbytes<Real>(env_->spr * g.local_input() +
                                    env_->chunks() * g.p());
    conv.chunks = remote() ? 2 : 1;
    out.push_back(std::move(conv));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    (void)ctx;
    (void)rec;
    SOI_CHECK(false, "halo+conv is node-driven (append_chain_stages "
                     "declares its nodes)");
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    switch (node.phase) {
      case kPhasePost:
        post(ctx, rec);
        return;
      case kPhaseWait:
        wait_halo(ctx, rec);
        return;
      default:
        conv(ctx, rec, node.chunk);
        return;
    }
  }

 private:
  [[nodiscard]] bool remote() const {
    return env_->has_comm && env_->ranks > 1;
  }

  void post(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const SoiGeometry& g = *env.geom;
    const std::int64_t m_rank = env.m_rank();
    const std::int64_t halo = g.halo();
    exec::StageRecord& rhalo = rec[0];
    exec::StageRecord& rconv = rec[1];
    const std::span<C> ext = ctx.arena->template span<C>(env.ext);
    const cspan_t<Real> x =
        env.src.valid()
            ? cspan_t<Real>(ctx.arena->template span<C>(env.src))
            : ctx.in;

    {
      // Staging the owned block is part of materialising the conv input.
      exec::StageTimer st(rconv);
      std::copy(x.begin(), x.end(), ext.begin());
    }

    if (!remote()) {
      exec::StageTimer st(rhalo);
      for (std::int64_t i = 0; i < halo; ++i) {
        ext[static_cast<std::size_t>(m_rank + i)] =
            x[static_cast<std::size_t>(i)];
      }
      return;
    }
    SOI_CHECK(ctx.comm != nullptr,
              "SOI pipeline: distributed chain run without a communicator");
    if constexpr (std::is_same_v<Real, double>) {
      const int ranks = env.ranks;
      const int rank = ctx.comm->rank();
      const int left = (rank - 1 + ranks) % ranks;
      const int right = (rank + 1) % ranks;
      const cspan halo_out{x.data(), static_cast<std::size_t>(halo)};
      const mspan halo_in{ext.data() + m_rank,
                          static_cast<std::size_t>(halo)};
      const auto inst = static_cast<std::size_t>(ctx.instance);
      // Each concurrent execution's halo travels on its own tag so two
      // co-scheduled transforms' halos never cross-match. Channels must
      // be unique across EVERY execution sharing this transport — other
      // instances of this plan (forward_many) and members of co-scheduled
      // cross-plan epochs (exec::run_epoch) alike — and bounded so the
      // staged-exchange tag blocks (kTagStaged + phase*kMaxChannels +
      // channel) stay disjoint.
      SOI_CHECK(ctx.channel >= 0 && ctx.channel < net::kMaxChannels,
                "SOI pipeline: channel " << ctx.channel << " not in [0, "
                                         << net::kMaxChannels << ")");
      const int tag = kTagHalo + ctx.channel;
      exec::StageTimer st(rhalo);
      const std::int64_t before = ctx.comm->bytes_sent();
      hsend_[inst] = ctx.comm->isend(left, tag, halo_out);
      hrecv_[inst] = ctx.comm->irecv(right, tag, halo_in);
      rhalo.bytes_moved += ctx.comm->bytes_sent() - before;
    } else {
      SOI_CHECK(false, "SOI pipeline: communicator paths are double-only");
    }
  }

  void wait_halo(exec::ExecContextT<Real>& ctx,
                 exec::StageRecord* rec) const {
    const auto inst = static_cast<std::size_t>(ctx.instance);
    exec::WaitTimer wt(rec[0]);
    wait_resilient(*ctx.comm, hrecv_[inst], rec[0], "halo");
    wait_resilient(*ctx.comm, hsend_[inst], rec[0], "halo");
  }

  void conv(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
            int chunk) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const SoiGeometry& g = *env.geom;
    const std::int64_t m_seg = g.m();
    const std::int64_t mcg = g.chunks_per_rank();
    const std::int64_t p = g.p();
    const std::span<C> ext = ctx.arena->template span<C>(env.ext);
    const std::span<C> v = ctx.arena->template span<C>(env.v);

    const auto convolve_range = [&](std::int64_t seg_begin,
                                    std::int64_t seg_end) {
      for (std::int64_t s = seg_begin; s < seg_end; ++s) {
        convolve_rank<Real>(
            g, *env.table,
            cspan_t<Real>{ext.data() + s * m_seg,
                          static_cast<std::size_t>(g.local_input())},
            mspan_t<Real>{v.data() + s * mcg * p,
                          static_cast<std::size_t>(mcg * p)});
      }
    };
    const auto convolve_last_groups = [&](std::int64_t q_begin,
                                          std::int64_t q_end) {
      convolve_rank_groups<Real>(
          g, *env.table,
          cspan_t<Real>{ext.data() + (env.spr - 1) * m_seg,
                        static_cast<std::size_t>(g.local_input())},
          mspan_t<Real>{v.data() + (env.spr - 1) * mcg * p,
                        static_cast<std::size_t>(mcg * p)},
          q_begin, q_end);
    };

    exec::StageTimer st(rec[1]);
    if (!remote()) {
      convolve_range(0, env.spr);
      return;
    }
    // Groups of the LAST sub-rank whose window fits in local data; all
    // groups of earlier sub-ranks are always fully local (halo <= M_seg).
    const std::int64_t groups = g.groups_per_rank();
    const std::int64_t q_safe = std::clamp<std::int64_t>(
        (m_seg - g.taps() * p) / (g.nu() * p) + 1, 0, groups);
    if (chunk == 0) {
      convolve_range(0, env.spr - 1);
      convolve_last_groups(0, q_safe);
    } else {
      convolve_last_groups(q_safe, groups);
    }
  }

  const ChainEnvT<Real>* env_;
  // In-flight halo requests, one pair per concurrent execution
  // (ExecContext::instance); sized from env->max_instances.
  mutable std::vector<net::Request> hsend_, hrecv_;
};

/// Stage "f_p": I (x) F_P over the local chunks, with the Fig. 3
/// per-destination transpose fused into the batched pass's interleaved
/// store. Under a null comm it stores straight into x-tilde.
template <class Real>
class FpStageT final : public exec::StageT<Real> {
 public:
  explicit FpStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t p = env_->geom->p();
    exec::StageRecord r;
    r.name = "f_p";
    r.bytes_moved = 2 * cbytes<Real>(env_->chunks() * p);
    r.flops = fft_flops(env_->chunks(), p);
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t p = env.geom->p();
    const std::int64_t chunks = env.chunks();
    const std::span<C> v = ctx.arena->template span<C>(env.v);
    const std::span<C> dst =
        ctx.arena->template span<C>(env.has_comm ? env.send : env.xt);
    exec::StageTimer st(*rec);
    // Destination rank d gets, for each of its segments sigma, element
    // sigma of every local chunk, laid out [sigma][chunk]: exactly the
    // interleaved store layout, so no separate pack sweep runs.
    env.batch_p->forward_strided(v, fft::contiguous_layout(p), dst,
                                 fft::interleaved_layout(chunks), chunks);
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "exchange": the single global all-to-all, cut into chunk_depth
/// nonblocking pieces. A post node (per chunk group) fires ialltoall /
/// ialltoallv into that group's buffer slot; a wait node completes it.
/// bytes_moved accumulates the measured per-rank send volume (the transport
/// counters); a null comm declares no nodes and run() is a no-op.
template <class Real>
class ExchangeStageT final : public exec::StageT<Real> {
 public:
  explicit ExchangeStageT(const ChainEnvT<Real>* env)
      : env_(env),
        reqs_(static_cast<std::size_t>(env->max_instances) *
              static_cast<std::size_t>(env->chunk_depth)),
        sreqs_(env->staged_exchange()
                   ? static_cast<std::size_t>(env->max_instances) *
                         static_cast<std::size_t>(env->chunk_depth) *
                         static_cast<std::size_t>(env->staged.max_peers)
                   : 0),
        wreqs_(env->staged_exchange()
                   ? static_cast<std::size_t>(env->max_instances) *
                         static_cast<std::size_t>(env->staged.max_peers)
                   : 0) {
    if (env->coded_exchange()) {
      const auto inst = static_cast<std::size_t>(env->max_instances);
      const auto depth = static_cast<std::size_t>(env->chunk_depth);
      const std::size_t mpg = msgs_per_group();
      const auto subs = static_cast<std::size_t>(env->coding.total());
      cstate_.resize(inst * depth * mpg);
      creqs_.resize(inst * depth * mpg * subs);
      if (env->staged_exchange()) {
        cwstate_.resize(inst * mpg);
        cwreqs_.resize(inst * mpg * subs);
      }
      epochs_.assign(inst * depth, 0);
      codec_.emplace(env->coding);
    }
  }

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "exchange";
    r.bytes_moved = env_->has_comm
                        ? cbytes<Real>(env_->spr * env_->chunks() *
                                       (env_->ranks - 1))
                        : 0;
    r.bytes_measured = remote();
    r.chunks = remote() ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
    if (env_->coded_exchange()) {
      // Codec share of the exchange, broken out for --trace: encode/decode
      // seconds are subsets of the exchange record's wall time (the
      // breakdown folds only "exchange", so totals stay comparable with
      // uncoded runs); parity_encode's bytes_moved counts parity payload.
      exec::StageRecord enc;
      enc.name = "parity_encode";
      enc.chunks = env_->chunk_depth;
      out.push_back(std::move(enc));
      exec::StageRecord dec;
      dec.name = "parity_decode";
      dec.chunks = env_->chunk_depth;
      out.push_back(std::move(dec));
    }
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    (void)ctx;
    (void)rec;
    // Null-comm auto node: F_P already stored into x-tilde.
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    SOI_CHECK(ctx.comm != nullptr,
              "SOI pipeline: distributed chain run without a communicator");
    if constexpr (std::is_same_v<Real, double>) {
      if (env.staged_exchange()) {
        if (node.phase == kPhaseWait) {
          wait_staged(ctx, rec, node);
        } else {
          post_staged(ctx, rec, node);
        }
        return;
      }
      if (env.coded_exchange()) {
        if (node.phase == kPhaseWait) {
          wait_coded_flat(ctx, rec, node);
        } else {
          post_coded_flat(ctx, rec, node);
        }
        return;
      }
      const auto g = static_cast<std::size_t>(node.chunk);
      const auto slot0 = static_cast<std::size_t>(ctx.instance) *
                         static_cast<std::size_t>(env.chunk_depth);
      if (node.phase == kPhaseWait) {
        exec::WaitTimer wt(*rec);
        wait_resilient(*ctx.comm, reqs_[slot0 + g], *rec, "exchange");
        return;
      }
      const std::span<C> send = ctx.arena->template span<C>(env.send);
      const std::int64_t before = ctx.comm->bytes_sent();
      {
        exec::StageTimer st(*rec);
        if (env.chunk_depth == 1) {
          const std::span<C> recv = ctx.arena->template span<C>(env.recv);
          reqs_[slot0] = ctx.comm->ialltoall(send, recv,
                                             env.spr * env.chunks(),
                                             env.algo, ctx.channel);
        } else {
          const std::span<C> recv = ctx.arena->template span<C>(
              WorkspaceArena::slot(env.recv,
                                   node.chunk % env.nslots()));
          const auto ranks = static_cast<std::size_t>(env.ranks);
          const std::span<const std::int64_t> counts{env.a2a_counts.data(),
                                                     ranks};
          const std::span<const std::int64_t> sdispls{
              env.a2a_send_displs.data() + g * ranks, ranks};
          const std::span<const std::int64_t> rdispls{
              env.a2a_recv_displs.data(), ranks};
          reqs_[slot0 + g] = ctx.comm->ialltoallv(send, counts, sdispls,
                                                  recv, counts, rdispls,
                                                  ctx.channel);
        }
      }
      rec->bytes_moved += ctx.comm->bytes_sent() - before;
    } else {
      SOI_CHECK(false, "SOI pipeline: communicator paths are double-only");
    }
  }

 private:
  [[nodiscard]] bool remote() const {
    return env_->has_comm && env_->ranks > 1;
  }

  /// Element count of one (source, destination) block of a chunk group.
  [[nodiscard]] std::int64_t block_elems() const {
    return env_->gseg() * env_->chunks();
  }

  [[nodiscard]] int staged_tag(int phase, int channel) const {
    return kTagStaged + phase * net::kMaxChannels + channel;
  }


  // ---- coded exchange -------------------------------------------------
  //
  // Every peer message of the exchange (flat per-destination block, staged
  // fused phase message) becomes one CODEWORD: k data shards + r parity
  // shards, each framed with a 16-byte header and sent on its own tag
  // (net::coded_tag over epoch/channel/phase/group/shard). The receiver
  // reconstructs the payload as soon as ANY k shards land — a dropped,
  // corrupted, truncated or straggling shard is an erasure the codec
  // absorbs with no retransmit round trip. Only when more than r shards of
  // one codeword are missing at the bounded deadline does the receiver
  // fall back to the CRC32C + retained-copy retransmit path (data shards
  // only; abandoned parity costs nothing), which bumps the record's retry
  // counter and degrades the plan exactly like an uncoded retry.

  /// One expected incoming codeword.
  struct CodedMsg {
    int peer = -1;
    std::uint8_t* dst = nullptr;     ///< payload destination
    std::size_t pb = 0;              ///< payload bytes
    std::uint8_t* frames = nullptr;  ///< k+r receive frames
    std::size_t sb = 0;              ///< shard bytes
    std::size_t fb = 0;              ///< frame stride (header+shard, aligned)
    std::uint8_t* dec = nullptr;     ///< r * sb decode scratch
    std::uint32_t mask = 0;          ///< accepted-shard bitmask
    bool done = false;
  };

  /// Expected codewords per chunk group (receive-state sizing).
  [[nodiscard]] std::size_t msgs_per_group() const {
    if (!env_->coded_exchange()) return 0;
    return env_->staged_exchange()
               ? static_cast<std::size_t>(env_->staged.max_peers)
               : static_cast<std::size_t>(env_->ranks);
  }

  [[nodiscard]] static std::size_t frame_stride(std::size_t sb) {
    return (net::kCodedHeaderBytes + sb + 7) & ~std::size_t{7};
  }

  /// Initialise one expected codeword at frame offset `off` of the slot's
  /// frame scratch and post its k+r shard receives. Returns the offset
  /// past this codeword's frames + decode scratch.
  std::size_t coded_post_msg(exec::ExecContextT<Real>& ctx, CodedMsg& m,
                             net::Request* rq, int peer, std::uint8_t* dst,
                             std::size_t pb, std::span<std::uint8_t> frames,
                             std::size_t off, std::uint32_t epoch, int phase,
                             int group) const {
    const net::Coding c = env_->coding;
    const int subs = c.total();
    m = CodedMsg{};
    m.peer = peer;
    m.dst = dst;
    m.pb = pb;
    m.sb = net::coded_shard_bytes(pb, c.k);
    m.fb = frame_stride(m.sb);
    m.frames = frames.data() + off;
    m.dec = m.frames + static_cast<std::size_t>(subs) * m.fb;
    const std::size_t need = off +
                             static_cast<std::size_t>(subs) * m.fb +
                             static_cast<std::size_t>(c.r) * m.sb;
    SOI_CHECK(need <= frames.size(),
              "coded exchange: frame scratch overflow (" << need << " > "
                                                         << frames.size()
                                                         << " bytes)");
    for (int sub = 0; sub < subs; ++sub) {
      rq[sub] = ctx.comm->irecv_bytes(
          peer, net::coded_tag(epoch, ctx.channel, phase, group, sub),
          m.frames + static_cast<std::size_t>(sub) * m.fb,
          net::kCodedHeaderBytes + m.sb);
    }
    return need;
  }

  /// Split one outgoing message into k data + r parity framed shards and
  /// post them (SimMPI/shm sends are buffered-complete at post, so the
  /// single staging frame in `pack` is reusable between isend calls).
  /// Encode time folds into `enc_rec` ("parity_encode").
  void coded_send(exec::ExecContextT<Real>& ctx, const std::uint8_t* payload,
                  std::size_t pb, int peer, std::uint32_t epoch, int phase,
                  int group, std::span<std::uint8_t> pack,
                  exec::StageRecord* enc_rec) const {
    const net::Coding c = env_->coding;
    const int subs = c.total();
    const std::size_t sb = net::coded_shard_bytes(pb, c.k);
    const std::size_t fb = frame_stride(sb);
    SOI_CHECK((static_cast<std::size_t>(c.r) + 1) * sb + fb <= pack.size(),
              "coded exchange: send staging scratch overflow");
    std::uint8_t* parity0 = pack.data();
    std::uint8_t* pad = parity0 + static_cast<std::size_t>(c.r) * sb;
    std::uint8_t* frame = pad + sb;
    std::array<const std::uint8_t*, net::kMaxCodedSubs> data{};
    for (int j = 0; j < c.k; ++j) {
      data[static_cast<std::size_t>(j)] =
          payload + static_cast<std::size_t>(j) * sb;
    }
    if (static_cast<std::size_t>(c.k) * sb != pb) {
      // Zero-pad the tail shard so every shard is exactly sb bytes.
      const std::size_t tail = pb - static_cast<std::size_t>(c.k - 1) * sb;
      std::memset(pad, 0, sb);
      std::memcpy(pad, payload + static_cast<std::size_t>(c.k - 1) * sb, tail);
      data[static_cast<std::size_t>(c.k - 1)] = pad;
    }
    std::array<std::uint8_t*, net::kMaxCodedSubs> par{};
    for (int i = 0; i < c.r; ++i) {
      par[static_cast<std::size_t>(i)] =
          parity0 + static_cast<std::size_t>(i) * sb;
    }
    {
      exec::StageTimer et(*enc_rec);
      codec_->encode(data.data(), par.data(), sb);
    }
    enc_rec->bytes_moved += static_cast<std::int64_t>(c.r) *
                            static_cast<std::int64_t>(sb);
    net::CodedFrame f;
    f.epoch = epoch;
    f.k = static_cast<std::uint8_t>(c.k);
    f.r = static_cast<std::uint8_t>(c.r);
    f.cw_bytes = pb;
    for (int sub = 0; sub < subs; ++sub) {
      f.sub = static_cast<std::uint16_t>(sub);
      net::write_coded_header(frame, f);
      std::memcpy(frame + net::kCodedHeaderBytes,
                  sub < c.k ? data[static_cast<std::size_t>(sub)]
                            : par[static_cast<std::size_t>(sub - c.k)],
                  sb);
      ctx.comm->isend_bytes(
          peer, net::coded_tag(epoch, ctx.channel, phase, group, sub), frame,
          net::kCodedHeaderBytes + sb);
    }
    if (env_->coded_stats != nullptr) {
      env_->coded_stats->parity_bytes.fetch_add(
          static_cast<std::uint64_t>(c.r) * sb, std::memory_order_relaxed);
    }
  }

  /// Validate a completed frame: a shard is accepted only when every
  /// header field matches the expectation; anything else is a stale
  /// arrival from a previous epoch (tag reuse) and becomes an erasure.
  [[nodiscard]] bool coded_accept(const CodedMsg& m, int sub,
                                  std::uint32_t epoch) const {
    net::CodedFrame f;
    if (!net::read_coded_header(
            m.frames + static_cast<std::size_t>(sub) * m.fb,
            net::kCodedHeaderBytes, &f)) {
      return false;
    }
    const net::Coding c = env_->coding;
    return f.epoch == epoch && f.sub == static_cast<std::uint16_t>(sub) &&
           f.k == static_cast<std::uint8_t>(c.k) &&
           f.r == static_cast<std::uint8_t>(c.r) && f.cw_bytes == m.pb;
  }

  void coded_repost(exec::ExecContextT<Real>& ctx, CodedMsg& m,
                    net::Request& rq, std::uint32_t epoch, int phase,
                    int group, int sub) const {
    rq = ctx.comm->irecv_bytes(
        m.peer, net::coded_tag(epoch, ctx.channel, phase, group, sub),
        m.frames + static_cast<std::size_t>(sub) * m.fb,
        net::kCodedHeaderBytes + m.sb);
  }

  /// Rebuild the codeword payload from the k accepted shards (any mix of
  /// data and parity) into m.dst, byte-exact.
  void coded_reconstruct(CodedMsg& m) const {
    const net::Coding c = env_->coding;
    std::array<int, net::kMaxCodedSubs> present{};
    std::array<const std::uint8_t*, net::kMaxCodedSubs> shards{};
    int np = 0;
    for (int sub = 0; sub < c.total() && np < c.k; ++sub) {
      if ((m.mask & (1u << sub)) != 0) {
        present[static_cast<std::size_t>(np)] = sub;
        shards[static_cast<std::size_t>(np)] =
            m.frames + static_cast<std::size_t>(sub) * m.fb +
            net::kCodedHeaderBytes;
        ++np;
      }
    }
    std::array<std::uint8_t*, net::kMaxCodedSubs> out{};
    int nrec = 0;
    for (int j = 0; j < c.k; ++j) {
      if ((m.mask & (1u << j)) != 0) {
        out[static_cast<std::size_t>(j)] = const_cast<std::uint8_t*>(
            m.frames + static_cast<std::size_t>(j) * m.fb +
            net::kCodedHeaderBytes);
      } else {
        out[static_cast<std::size_t>(j)] =
            m.dec + static_cast<std::size_t>(nrec++) * m.sb;
      }
    }
    SOI_CHECK(codec_->reconstruct(present.data(), shards.data(), out.data(),
                                  m.sb),
              "coded exchange: reconstruction failed");
    for (int j = 0; j < c.k; ++j) {
      const std::size_t at = static_cast<std::size_t>(j) * m.sb;
      std::memcpy(m.dst + at, out[static_cast<std::size_t>(j)],
                  std::min(m.sb, m.pb - at));
    }
    if (env_->coded_stats != nullptr && nrec > 0) {
      env_->coded_stats->recovered_chunks.fetch_add(
          static_cast<std::uint64_t>(nrec), std::memory_order_relaxed);
    }
  }

  /// > r shards of one codeword lost: surface the retained clean copies of
  /// the missing DATA shards through the bounded-deadline retransmit path,
  /// then assemble without decoding. Abandoned parity receives cost
  /// nothing. Counts as one retry on the stage record regardless of how
  /// fast the retained copies land — exceeding the parity budget means the
  /// coding choice failed and the plan must degrade (like an uncoded
  /// retry), even though the requeued copy may satisfy the very wait that
  /// expired.
  void coded_fallback(exec::ExecContextT<Real>& ctx, CodedMsg& m,
                      net::Request* rq, std::uint32_t epoch, int phase,
                      int group, exec::StageRecord* rec) const {
    const net::Coding c = env_->coding;
    rec->retries += 1;
    for (int j = 0; j < c.k; ++j) {
      const std::uint32_t bit = 1u << j;
      while ((m.mask & bit) == 0) {
        wait_resilient(*ctx.comm, rq[j], *rec, "coded exchange");
        if (coded_accept(m, j, epoch)) {
          m.mask |= bit;
        } else {
          coded_repost(ctx, m, rq[j], epoch, phase, group, j);
        }
      }
    }
    for (int j = 0; j < c.k; ++j) {
      const std::size_t at = static_cast<std::size_t>(j) * m.sb;
      std::memcpy(m.dst + at,
                  m.frames + static_cast<std::size_t>(j) * m.fb +
                      net::kCodedHeaderBytes,
                  std::min(m.sb, m.pb - at));
    }
    m.done = true;
    if (env_->coded_stats != nullptr) {
      env_->coded_stats->coded_fallbacks.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
  }

  /// Complete `n` expected codewords: poll the shard receives, reconstruct
  /// each codeword as soon as ANY k shards are accepted, and fall back to
  /// retransmit for codewords still short of k at the bounded deadline.
  /// Decode time folds into `dec_rec` ("parity_decode"). Never calls a
  /// blocking wait on the happy path, so erasures cost zero round trips.
  void coded_complete(exec::ExecContextT<Real>& ctx, CodedMsg* msgs,
                      std::size_t n, net::Request* rq, std::uint32_t epoch,
                      int phase, int group, exec::StageRecord* rec,
                      exec::StageRecord* dec_rec) const {
    const net::Coding c = env_->coding;
    const int subs = c.total();
    std::size_t remaining = n;
    const double tmo = ctx.comm->timeout_ms();
    const auto t0 = std::chrono::steady_clock::now();
    bool expired = false;
    while (remaining > 0 && !expired) {
      bool progress = false;
      for (std::size_t i = 0; i < n; ++i) {
        CodedMsg& m = msgs[i];
        if (m.done) continue;
        for (int sub = 0; sub < subs && !m.done; ++sub) {
          const std::uint32_t bit = 1u << sub;
          if ((m.mask & bit) != 0) continue;
          net::Request& r_ = rq[i * static_cast<std::size_t>(subs) +
                                static_cast<std::size_t>(sub)];
          if (!ctx.comm->test(r_)) continue;
          progress = true;
          if (coded_accept(m, sub, epoch)) {
            m.mask |= bit;
            if (std::popcount(m.mask) >= c.k) {
              exec::StageTimer dt(*dec_rec);
              coded_reconstruct(m);
              m.done = true;
              --remaining;
            }
          } else {
            coded_repost(ctx, m, r_, epoch, phase, group, sub);
          }
        }
      }
      if (remaining == 0) break;
      if (!progress) {
        if (tmo > 0 &&
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                    .count() > tmo) {
          expired = true;
          break;
        }
        // Faultless worlds (tmo == 0) only reach here while shards are
        // genuinely in wire flight, so a short sleep-poll is safe.
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
    if (expired) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!msgs[i].done) {
          coded_fallback(ctx, msgs[i],
                         rq + i * static_cast<std::size_t>(subs), epoch,
                         phase, group, rec);
        }
      }
    }
    // Opportunistic drain: consume shards that already arrived but were
    // not needed, then drop the rest of the receives (stale-arrival GC at
    // tag reuse reclaims whatever still lands later).
    for (std::size_t i = 0; i < n; ++i) {
      for (int sub = 0; sub < subs; ++sub) {
        if ((msgs[i].mask & (1u << sub)) == 0) {
          (void)ctx.comm->test(rq[i * static_cast<std::size_t>(subs) +
                                  static_cast<std::size_t>(sub)]);
        }
      }
    }
    if (env_->coded_stats != nullptr) {
      env_->coded_stats->codewords.fetch_add(static_cast<std::uint64_t>(n),
                                             std::memory_order_relaxed);
    }
  }

  /// Flat coded post: post the k+r shard receives for every source's
  /// block of this chunk group, copy the self block, and shard + send each
  /// destination block. Replaces ialltoall(v) with point-to-point coded
  /// messages in the same block layout, so unpack is schedule-oblivious.
  void post_coded_flat(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                       const exec::NodeSpec& node) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const auto g = static_cast<std::size_t>(node.chunk);
    const auto gi = static_cast<std::size_t>(ctx.instance) *
                        static_cast<std::size_t>(env.chunk_depth) +
                    g;
    const std::uint32_t epoch = ++epochs_[gi];
    const std::int64_t B =
        env.chunk_depth == 1 ? env.spr * env.chunks() : block_elems();
    const std::size_t pb = static_cast<std::size_t>(B) * sizeof(C);
    const std::span<C> send = ctx.arena->template span<C>(env.send);
    const std::span<C> recv = ctx.arena->template span<C>(
        WorkspaceArena::slot(env.recv, node.chunk % env.nslots()));
    const std::span<std::uint8_t> frames =
        ctx.arena->template span<std::uint8_t>(
            WorkspaceArena::slot(env.cframe, node.chunk % env.nslots()));
    const std::span<std::uint8_t> pk =
        ctx.arena->template span<std::uint8_t>(env.cpack);
    const auto ranks = static_cast<std::size_t>(env.ranks);
    const std::int64_t* sdispls =
        env.chunk_depth == 1 ? nullptr
                             : env.a2a_send_displs.data() + g * ranks;
    const auto sdispl = [&](int d) {
      return env.chunk_depth == 1 ? static_cast<std::int64_t>(d) * B
                                  : sdispls[d];
    };
    const int me = ctx.comm->rank();
    const std::size_t mpg = msgs_per_group();
    const auto subs = static_cast<std::size_t>(env.coding.total());
    CodedMsg* msgs = cstate_.data() + gi * mpg;
    net::Request* rq = creqs_.data() + gi * mpg * subs;
    const std::int64_t before = ctx.comm->bytes_sent();
    {
      exec::StageTimer st(*rec);
      std::size_t off = 0;
      std::size_t mi = 0;
      for (int src = 0; src < env.ranks; ++src) {
        if (src == me) continue;
        off = coded_post_msg(
            ctx, msgs[mi], rq + mi * subs, src,
            reinterpret_cast<std::uint8_t*>(recv.data() +
                                            static_cast<std::int64_t>(src) *
                                                B),
            pb, frames, off, epoch, 0, node.chunk);
        ++mi;
      }
      std::copy_n(send.data() + sdispl(me), B,
                  recv.data() + static_cast<std::int64_t>(me) * B);
      for (int dst = 0; dst < env.ranks; ++dst) {
        if (dst == me) continue;
        coded_send(ctx,
                   reinterpret_cast<const std::uint8_t*>(send.data() +
                                                         sdispl(dst)),
                   pb, dst, epoch, 0, node.chunk, pk, rec + 1);
      }
    }
    rec->bytes_moved += ctx.comm->bytes_sent() - before;
  }

  /// Flat coded wait: complete the group's ranks-1 codewords.
  void wait_coded_flat(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                       const exec::NodeSpec& node) const {
    const ChainEnvT<Real>& env = *env_;
    const auto gi = static_cast<std::size_t>(ctx.instance) *
                        static_cast<std::size_t>(env.chunk_depth) +
                    static_cast<std::size_t>(node.chunk);
    const std::size_t mpg = msgs_per_group();
    const auto subs = static_cast<std::size_t>(env.coding.total());
    exec::WaitTimer wt(*rec);
    coded_complete(ctx, cstate_.data() + gi * mpg,
                   static_cast<std::size_t>(env.ranks - 1),
                   creqs_.data() + gi * mpg * subs, epochs_[gi], 0,
                   node.chunk, rec, rec + 2);
  }

  /// Staged post node: pack + fire phase 0 of the store-and-forward
  /// schedule. Fuses this group's blocks for each first-hop peer out of
  /// the send buffer (phase-0 gather indices ARE destination ranks, so
  /// they map through the group's send displacements), posts the phase-0
  /// receives into the slot's first holdings half, and copies the kept
  /// blocks across. SimMPI sends are buffered-complete at post, so the
  /// pack region is reusable as soon as isend_bytes returns.
  void post_staged(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                   const exec::NodeSpec& node) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const net::StagedPlan& plan = env.staged;
    const auto g = static_cast<std::size_t>(node.chunk);
    const std::int64_t B = block_elems();
    const std::int64_t RB = static_cast<std::int64_t>(plan.ranks) * B;
    const std::span<C> send = ctx.arena->template span<C>(env.send);
    const std::span<C> stg = ctx.arena->template span<C>(
        WorkspaceArena::slot(env.stg, node.chunk % env.nslots()));
    C* pack = stg.data();
    C* hold = stg.data() + RB;  // first ping-pong half: phase-0 holdings
    const auto ranks = static_cast<std::size_t>(env.ranks);
    const std::int64_t* displs = env.a2a_send_displs.data() + g * ranks;
    const net::StagedPlan::Phase& ph0 = plan.phases.front();
    const int tag = staged_tag(0, ctx.channel);
    net::Request* rq =
        sreqs_.data() +
        (static_cast<std::size_t>(ctx.instance) *
             static_cast<std::size_t>(env.chunk_depth) +
         g) *
            static_cast<std::size_t>(plan.max_peers);
    const bool coded = env.coded_exchange();
    const auto gi = static_cast<std::size_t>(ctx.instance) *
                        static_cast<std::size_t>(env.chunk_depth) +
                    g;
    const auto subs = static_cast<std::size_t>(env.coding.total());
    std::uint32_t epoch = 0;
    CodedMsg* cmsgs = nullptr;
    net::Request* crq = nullptr;
    std::span<std::uint8_t> frames, cpk;
    if (coded) {
      epoch = ++epochs_[gi];
      const std::size_t mpg = msgs_per_group();
      cmsgs = cstate_.data() + gi * mpg;
      crq = creqs_.data() + gi * mpg * subs;
      frames = ctx.arena->template span<std::uint8_t>(
          WorkspaceArena::slot(env.cframe, node.chunk % env.nslots()));
      cpk = ctx.arena->template span<std::uint8_t>(env.cpack);
    }
    const std::int64_t before = ctx.comm->bytes_sent();
    {
      exec::StageTimer st(*rec);
      std::size_t ri = 0;
      std::size_t coff = 0;
      for (const net::StagedPlan::Recv& rv : ph0.recvs) {
        std::uint8_t* dst = reinterpret_cast<std::uint8_t*>(
            hold + static_cast<std::int64_t>(rv.first_slot) * B);
        const std::size_t rb = static_cast<std::size_t>(rv.nblocks) *
                               static_cast<std::size_t>(B) * sizeof(C);
        if (coded) {
          coff = coded_post_msg(ctx, cmsgs[ri], crq + subs * ri, rv.peer,
                                dst, rb, frames, coff, epoch, 0, node.chunk);
          ++ri;
        } else {
          rq[ri++] = ctx.comm->irecv_bytes(rv.peer, tag, dst, rb);
        }
      }
      std::int64_t off = 0;
      for (const net::StagedPlan::Send& sd : ph0.sends) {
        C* msg = pack + off;
        for (const int d : sd.gather) {
          std::copy_n(send.data() + displs[d], B, pack + off);
          off += B;
        }
        const std::size_t mb = sd.gather.size() *
                               static_cast<std::size_t>(B) * sizeof(C);
        if (coded) {
          coded_send(ctx, reinterpret_cast<const std::uint8_t*>(msg), mb,
                     sd.peer, epoch, 0, node.chunk, cpk, rec + 1);
        } else {
          ctx.comm->isend_bytes(sd.peer, tag, msg, mb);
        }
      }
      for (const net::StagedPlan::Keep& kp : ph0.keeps) {
        std::copy_n(send.data() + displs[kp.from], B,
                    hold + static_cast<std::int64_t>(kp.to) * B);
      }
    }
    rec->bytes_moved += ctx.comm->bytes_sent() - before;
  }

  /// Staged wait node: complete phase 0, run the remaining forwarding
  /// phases inline (gather from the previous holdings, isend, irecv into
  /// the other ping-pong half, copy keeps, wait), then scatter the final
  /// holdings into source-rank order in the recv slot — the exact layout
  /// the flat ialltoallv produces, so unpack and everything downstream is
  /// schedule-oblivious and the output stays bit-identical.
  void wait_staged(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                   const exec::NodeSpec& node) const {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const net::StagedPlan& plan = env.staged;
    const auto g = static_cast<std::size_t>(node.chunk);
    const std::int64_t B = block_elems();
    const std::int64_t RB = static_cast<std::int64_t>(plan.ranks) * B;
    const int slot = node.chunk % env.nslots();
    const std::span<C> stg =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.stg, slot));
    C* pack = stg.data();
    C* prev = stg.data() + RB;      // phase-0 receives landed here
    C* cur = stg.data() + 2 * RB;   // next phase's holdings
    net::Request* rq =
        sreqs_.data() +
        (static_cast<std::size_t>(ctx.instance) *
             static_cast<std::size_t>(env.chunk_depth) +
         g) *
            static_cast<std::size_t>(plan.max_peers);
    const bool coded = env.coded_exchange();
    const auto gi = static_cast<std::size_t>(ctx.instance) *
                        static_cast<std::size_t>(env.chunk_depth) +
                    g;
    const auto subs = static_cast<std::size_t>(env.coding.total());
    const std::size_t mpg = coded ? msgs_per_group() : 0;
    const std::uint32_t epoch = coded ? epochs_[gi] : 0;
    CodedMsg* cwmsgs = nullptr;
    net::Request* cwrq = nullptr;
    std::span<std::uint8_t> frames, cpk;
    if (coded) {
      cwmsgs = cwstate_.data() +
               static_cast<std::size_t>(ctx.instance) * mpg;
      cwrq = cwreqs_.data() +
             static_cast<std::size_t>(ctx.instance) * mpg * subs;
      frames = ctx.arena->template span<std::uint8_t>(
          WorkspaceArena::slot(env.cframe, slot));
      cpk = ctx.arena->template span<std::uint8_t>(env.cpack);
    }
    {
      exec::WaitTimer wt(*rec);
      if (coded) {
        coded_complete(ctx, cstate_.data() + gi * mpg,
                       plan.phases.front().recvs.size(),
                       creqs_.data() + gi * mpg * subs, epoch, 0, node.chunk,
                       rec, rec + 2);
      } else {
        for (std::size_t i = 0; i < plan.phases.front().recvs.size(); ++i) {
          wait_resilient(*ctx.comm, rq[i], *rec, "exchange");
        }
      }
    }
    const std::int64_t before = ctx.comm->bytes_sent();
    net::Request* wq = wreqs_.data() +
                       static_cast<std::size_t>(ctx.instance) *
                           static_cast<std::size_t>(plan.max_peers);
    for (std::size_t p = 1; p < plan.phases.size(); ++p) {
      const net::StagedPlan::Phase& ph = plan.phases[p];
      const int tag = staged_tag(static_cast<int>(p), ctx.channel);
      std::size_t nr = 0;
      {
        exec::StageTimer st(*rec);
        std::size_t coff = 0;
        for (const net::StagedPlan::Recv& rv : ph.recvs) {
          std::uint8_t* dst = reinterpret_cast<std::uint8_t*>(
              cur + static_cast<std::int64_t>(rv.first_slot) * B);
          const std::size_t rb = static_cast<std::size_t>(rv.nblocks) *
                                 static_cast<std::size_t>(B) * sizeof(C);
          if (coded) {
            coff = coded_post_msg(ctx, cwmsgs[nr], cwrq + subs * nr,
                                  rv.peer, dst, rb, frames, coff, epoch,
                                  static_cast<int>(p), node.chunk);
            ++nr;
          } else {
            wq[nr++] = ctx.comm->irecv_bytes(rv.peer, tag, dst, rb);
          }
        }
        std::int64_t off = 0;
        for (const net::StagedPlan::Send& sd : ph.sends) {
          C* msg = pack + off;
          for (const int from : sd.gather) {
            std::copy_n(prev + static_cast<std::int64_t>(from) * B, B,
                        pack + off);
            off += B;
          }
          const std::size_t mb = sd.gather.size() *
                                 static_cast<std::size_t>(B) * sizeof(C);
          if (coded) {
            coded_send(ctx, reinterpret_cast<const std::uint8_t*>(msg), mb,
                       sd.peer, epoch, static_cast<int>(p), node.chunk, cpk,
                       rec + 1);
          } else {
            ctx.comm->isend_bytes(sd.peer, tag, msg, mb);
          }
        }
        for (const net::StagedPlan::Keep& kp : ph.keeps) {
          std::copy_n(prev + static_cast<std::int64_t>(kp.from) * B, B,
                      cur + static_cast<std::int64_t>(kp.to) * B);
        }
      }
      {
        exec::WaitTimer wt(*rec);
        if (coded) {
          coded_complete(ctx, cwmsgs, nr, cwrq, epoch, static_cast<int>(p),
                         node.chunk, rec, rec + 2);
        } else {
          for (std::size_t i = 0; i < nr; ++i) {
            wait_resilient(*ctx.comm, wq[i], *rec, "exchange");
          }
        }
      }
      std::swap(prev, cur);
    }
    rec->bytes_moved += ctx.comm->bytes_sent() - before;
    const std::span<C> recv = ctx.arena->template span<C>(
        WorkspaceArena::slot(env.recv, slot));
    exec::StageTimer st(*rec);
    for (int s = 0; s < plan.ranks; ++s) {
      std::copy_n(prev + static_cast<std::int64_t>(s) * B, B,
                  recv.data() +
                      static_cast<std::int64_t>(plan.final_src[
                          static_cast<std::size_t>(s)]) *
                          B);
    }
  }

  const ChainEnvT<Real>* env_;
  // One in-flight request per (execution instance, chunk group), laid out
  // instance-major; reassigned every run (requests are passive value
  // types, so steady-state reuse allocates nothing).
  mutable std::vector<net::Request> reqs_;
  // Staged schedules only: phase-0 receive requests, laid out
  // [instance][chunk group][peer], plus the in-wait forwarding-phase
  // requests [instance][peer] (later phases run inline inside the wait
  // node, so one group per instance uses them at a time).
  mutable std::vector<net::Request> sreqs_, wreqs_;
  // Coded exchange only: per-(instance, group) expected codewords with
  // their shard receive requests ([instance][group][message][sub]), the
  // staged forwarding phases' equivalents ([instance][message][sub] — one
  // group per instance forwards at a time), and the per-(instance, group)
  // exchange epoch counters that keep shard tags from colliding across
  // calls (stale arrivals are recognised by header and reposted over).
  mutable std::vector<CodedMsg> cstate_, cwstate_;
  mutable std::vector<net::Request> creqs_, cwreqs_;
  mutable std::vector<std::uint32_t> epochs_;
  std::optional<net::ErasureCode> codec_;
};

/// Stage "unpack": assemble the received per-source blocks into segment
/// order, one chunk group (gseg segments, buffer slot chunk mod 2) at a
/// time. Source rank s computed the global chunks [s*chunks, (s+1)*chunks);
/// its group-g block is laid out [sl][chunk], so segment sl's M' values
/// are gathered as xt[sl*M' + s*chunks + j] = recv[(s*gseg + sl)*chunks + j].
template <class Real>
class UnpackStageT final : public exec::StageT<Real> {
 public:
  explicit UnpackStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "unpack";
    r.bytes_moved = env_->has_comm
                        ? 2 * cbytes<Real>(env_->spr * env_->geom->mprime())
                        : 0;
    r.chunks = (env_->has_comm && env_->ranks > 1) ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    (void)ctx;
    (void)rec;
    // Null-comm auto node: nothing to assemble.
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t chunks = env.chunks();
    const std::int64_t gseg = env.gseg();
    const std::int64_t mprime = env.geom->mprime();
    const int slot = node.chunk % env.nslots();
    const std::span<C> recv =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.recv, slot));
    const std::span<C> xt =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.xt, slot));
    exec::StageTimer st(*rec);
    for (std::int64_t sl = 0; sl < gseg; ++sl) {
      C* seg = xt.data() + sl * mprime;
      for (int s = 0; s < env.ranks; ++s) {
        const C* blk = recv.data() + (s * gseg + sl) * chunks;
        std::copy_n(blk, chunks, seg + s * chunks);
      }
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "f_mprime": I (x) F_M' over the assembled local segments — the
/// whole rank under a null comm, one chunk group per node when remote.
template <class Real>
class FmStageT final : public exec::StageT<Real> {
 public:
  explicit FmStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t mprime = env_->geom->mprime();
    exec::StageRecord r;
    r.name = "f_mprime";
    r.bytes_moved = 2 * cbytes<Real>(env_->spr * mprime);
    r.flops = fft_flops(env_->spr, mprime);
    r.chunks = (env_->has_comm && env_->ranks > 1) ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::size_t count =
        static_cast<std::size_t>(env.spr * env.geom->mprime());
    const std::span<C> xt = ctx.arena->template span<C>(env.xt);
    const std::span<C> uf = ctx.arena->template span<C>(env.uf);
    exec::StageTimer st(*rec);
    env.batch_mp->forward(cspan_t<Real>{xt.data(), count},
                          mspan_t<Real>{uf.data(), count}, env.spr);
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t gseg = env.gseg();
    const std::size_t count =
        static_cast<std::size_t>(gseg * env.geom->mprime());
    const int slot = node.chunk % env.nslots();
    const std::span<C> xt =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.xt, slot));
    const std::span<C> uf =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.uf, slot));
    exec::StageTimer st(*rec);
    env.batch_mp->forward(cspan_t<Real>{xt.data(), count},
                          mspan_t<Real>{uf.data(), count}, gseg);
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "demod": demodulate + project each segment's first M bins (per
/// chunk group when remote; group g covers segments [g*gseg, (g+1)*gseg)).
template <class Real>
class DemodStageT final : public exec::StageT<Real> {
 public:
  explicit DemodStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t m = env_->geom->m();
    exec::StageRecord r;
    r.name = "demod";
    r.bytes_moved = cbytes<Real>(2 * env_->spr * m + m);
    r.flops = 6 * env_->spr * m;
    r.chunks = (env_->has_comm && env_->ranks > 1) ? env_->chunk_depth : 1;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t m = env.geom->m();
    const std::int64_t mprime = env.geom->mprime();
    const std::span<C> uf = ctx.arena->template span<C>(env.uf);
    const mspan_t<Real> y =
        env.dst.valid() ? mspan_t<Real>(ctx.arena->template span<C>(env.dst))
                        : ctx.out;
    const cspan_t<Real> demod = env.table->demod();
    exec::StageTimer st(*rec);
    for (std::int64_t s = 0; s < env.spr; ++s) {
      const C* seg = uf.data() + s * mprime;
      C* dst = y.data() + s * m;
      for (std::int64_t k = 0; k < m; ++k) {
        dst[k] = seg[k] * demod[static_cast<std::size_t>(k)];
      }
    }
  }

  void run_node(exec::ExecContextT<Real>& ctx, exec::StageRecord* rec,
                const exec::NodeSpec& node) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t m = env.geom->m();
    const std::int64_t mprime = env.geom->mprime();
    const std::int64_t gseg = env.gseg();
    const int slot = node.chunk % env.nslots();
    const std::span<C> uf =
        ctx.arena->template span<C>(WorkspaceArena::slot(env.uf, slot));
    const mspan_t<Real> y =
        env.dst.valid() ? mspan_t<Real>(ctx.arena->template span<C>(env.dst))
                        : ctx.out;
    const cspan_t<Real> demod = env.table->demod();
    exec::StageTimer st(*rec);
    for (std::int64_t sl = 0; sl < gseg; ++sl) {
      const C* seg = uf.data() + sl * mprime;
      C* dst = y.data() + (node.chunk * gseg + sl) * m;
      for (std::int64_t k = 0; k < m; ++k) {
        dst[k] = seg[k] * demod[static_cast<std::size_t>(k)];
      }
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// "r2c_pack": z[j] = in[2j] + i*in[2j+1] from ctx.real_in.
class R2cPackStage final : public exec::StageT<double> {
 public:
  R2cPackStage(WorkspaceArena::BufferId z, std::int64_t h) : z_(z), h_(h) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "r2c_pack";
    r.bytes_moved = cbytes<double>(2 * h_);
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<double>& ctx,
           exec::StageRecord* rec) const override {
    const std::span<cplx> z = ctx.arena->span<cplx>(z_);
    const std::span<const double> in = ctx.real_in;
    exec::StageTimer st(*rec);
    for (std::int64_t j = 0; j < h_; ++j) {
      z[static_cast<std::size_t>(j)] = {in[static_cast<std::size_t>(2 * j)],
                                        in[static_cast<std::size_t>(2 * j + 1)]};
    }
  }

 private:
  WorkspaceArena::BufferId z_;
  std::int64_t h_;
};

/// "r2c_untangle": split the half-length spectrum zf into the h+1 bins of
/// the real signal's DFT (even/odd untangling with the twiddle table).
class R2cUntangleStage final : public exec::StageT<double> {
 public:
  R2cUntangleStage(WorkspaceArena::BufferId zf, const cvec* twiddle,
                   std::int64_t h)
      : zf_(zf), twiddle_(twiddle), h_(h) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "r2c_untangle";
    r.bytes_moved = cbytes<double>(2 * h_);
    r.flops = 14 * h_;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<double>& ctx,
           exec::StageRecord* rec) const override {
    const std::span<const cplx> zf = ctx.arena->span<cplx>(zf_);
    const cvec& tw = *twiddle_;
    exec::StageTimer st(*rec);
    for (std::int64_t k = 0; k <= h_; ++k) {
      const std::int64_t km = k % h_;
      const std::int64_t kc = (h_ - k) % h_;
      const cplx zk = zf[static_cast<std::size_t>(km)];
      const cplx zc = std::conj(zf[static_cast<std::size_t>(kc)]);
      const cplx even = 0.5 * (zk + zc);
      const cplx odd = cplx{0.0, -0.5} * (zk - zc);
      const cplx t =
          (k == h_) ? cplx{-1.0, 0.0} : tw[static_cast<std::size_t>(k)];
      ctx.out[static_cast<std::size_t>(k)] = even + t * odd;
    }
  }

 private:
  WorkspaceArena::BufferId zf_;
  const cvec* twiddle_;
  std::int64_t h_;
};

}  // namespace

template <class Real>
void reserve_chain_buffers(WorkspaceArena& arena, ChainEnvT<Real>& env,
                           int base) {
  if constexpr (!std::is_same_v<Real, double>) {
    SOI_CHECK(!env.has_comm,
              "SOI pipeline: communicator paths are double-only");
  }
  SOI_CHECK(env.chunk_depth >= 1 && env.spr % env.chunk_depth == 0,
            "SOI pipeline: chunk_depth " << env.chunk_depth
                                         << " must divide spr " << env.spr);
  const SoiGeometry& g = *env.geom;
  const auto cb = [](std::int64_t count) {
    return static_cast<std::size_t>(cbytes<Real>(count));
  };
  const std::int64_t chunks = env.chunks();
  const std::int64_t seg_total = env.spr * g.mprime();  // == chunks * P
  env.ext = arena.reserve("ext", cb(env.m_rank() + g.halo()), base, base);
  env.v = arena.reserve("v", cb(chunks * g.p()), base, base + 1);
  if (env.has_comm && (env.chunk_depth > 1 || env.staged_exchange())) {
    // Chunked exchange: the pipelined schedule interleaves positions
    // base+2..base+5, so every buffer those nodes touch must be live over
    // the whole span (no aliasing between the chain's own stages), and
    // recv/x-tilde/uf become nslots() group-sized slots each. A staged
    // topology schedule additionally gets a per-slot scratch holding the
    // fused-message pack region plus the ping-pong holdings halves.
    const std::int64_t gtotal = env.gseg() * g.mprime();
    const int ns = env.nslots();
    env.send = arena.reserve("send", cb(chunks * g.p()), base + 1, base + 5);
    env.recv = arena.reserve_slots("recv", cb(gtotal), ns, base + 2, base + 5);
    env.xt = arena.reserve_slots("xt", cb(gtotal), ns, base + 2, base + 5);
    env.uf = arena.reserve_slots("uf", cb(gtotal), ns, base + 2, base + 5);
    if (env.staged_exchange()) {
      SOI_CHECK(env.topo.ranks() == env.ranks,
                "SOI pipeline: topology built for " << env.topo.ranks()
                                                    << " ranks, communicator has "
                                                    << env.ranks);
      env.stg =
          arena.reserve_slots("stg", cb(3 * gtotal), ns, base + 2, base + 5);
    }
    if (env.coded_exchange()) {
      // Frame scratch per slot: the worst case over (a) flat — ranks-1
      // codewords of one block each, (b) staged — max_peers codewords
      // whose payloads sum to at most the whole slot. Sum of per-shard
      // sizes is bounded by total/k + nmsg (one ceil per message), each
      // frame adds a <= 24-byte aligned header, plus r decode shards per
      // message. The send pack needs r parity shards + 1 pad shard + 1
      // frame of the largest single message.
      const int k = env.coding.k;
      const int r = env.coding.r;
      const int subs = env.coding.total();
      const std::size_t total = cb(static_cast<std::int64_t>(env.ranks) *
                                   env.gseg() * chunks);
      const std::size_t nmsg =
          env.staged_exchange()
              ? static_cast<std::size_t>(env.staged.max_peers)
              : static_cast<std::size_t>(env.ranks - 1);
      const std::size_t max_msg =
          env.staged_exchange() ? total : cb(env.gseg() * chunks);
      const std::size_t sb_sum =
          total / static_cast<std::size_t>(k) + nmsg + 1;
      const std::size_t slot_bytes =
          static_cast<std::size_t>(subs) * (sb_sum + 24 * nmsg) +
          static_cast<std::size_t>(r) * sb_sum + 64;
      const std::size_t sb_max = net::coded_shard_bytes(max_msg, k);
      const std::size_t pack_bytes =
          static_cast<std::size_t>(r + 2) * sb_max + 32;
      env.cframe =
          arena.reserve_slots("cframe", slot_bytes, ns, base + 2, base + 5);
      env.cpack = arena.reserve("cpack", pack_bytes, base + 2, base + 5);
    }

    // ialltoallv layout: destination d's block for group g starts at
    // segment d*spr + g*gseg of the [sigma][chunk] send buffer; source s's
    // block lands slot-relative at s*gseg*chunks.
    const auto ranks = static_cast<std::size_t>(env.ranks);
    const auto depth = static_cast<std::size_t>(env.chunk_depth);
    env.a2a_counts.assign(ranks, env.gseg() * chunks);
    env.a2a_send_displs.resize(depth * ranks);
    env.a2a_recv_displs.resize(ranks);
    for (std::size_t gi = 0; gi < depth; ++gi) {
      for (std::size_t d = 0; d < ranks; ++d) {
        env.a2a_send_displs[gi * ranks + d] =
            (static_cast<std::int64_t>(d) * env.spr +
             static_cast<std::int64_t>(gi) * env.gseg()) *
            chunks;
      }
    }
    for (std::size_t s = 0; s < ranks; ++s) {
      env.a2a_recv_displs[s] =
          static_cast<std::int64_t>(s) * env.gseg() * chunks;
    }
  } else if (env.has_comm) {
    env.send = arena.reserve("send", cb(chunks * g.p()), base + 1, base + 2);
    env.recv = arena.reserve("recv", cb(seg_total), base + 2, base + 3);
    env.xt = arena.reserve("xt", cb(seg_total), base + 3, base + 4);
    env.uf = arena.reserve("uf", cb(seg_total), base + 4, base + 5);
    if (env.coded_exchange()) {
      const int k = env.coding.k;
      const int r = env.coding.r;
      const int subs = env.coding.total();
      const std::size_t block = cb(env.spr * chunks);
      const auto nmsg = static_cast<std::size_t>(env.ranks - 1);
      const std::size_t sb_sum =
          block * nmsg / static_cast<std::size_t>(k) + nmsg + 1;
      const std::size_t slot_bytes =
          static_cast<std::size_t>(subs) * (sb_sum + 24 * nmsg) +
          static_cast<std::size_t>(r) * sb_sum + 64;
      const std::size_t pack_bytes =
          static_cast<std::size_t>(r + 2) * net::coded_shard_bytes(block, k) +
          32;
      env.cframe = arena.reserve("cframe", slot_bytes, base + 2, base + 2);
      env.cpack = arena.reserve("cpack", pack_bytes, base + 2, base + 2);
    }
  } else {
    // F_P stores straight into x-tilde; no exchange staging needed.
    env.xt = arena.reserve("xt", cb(seg_total), base + 1, base + 4);
    env.uf = arena.reserve("uf", cb(seg_total), base + 4, base + 5);
  }
}

template <class Real>
void append_chain_stages(exec::PipelineT<Real>& pl,
                         const ChainEnvT<Real>& env) {
  using exec::NodeSpec;
  using exec::StageClass;
  const int s_halo = pl.next_index();
  pl.add(std::make_unique<HaloConvStageT<Real>>(&env));
  pl.add(std::make_unique<FpStageT<Real>>(&env));
  const int s_exch = s_halo + 2;
  pl.add(std::make_unique<ExchangeStageT<Real>>(&env));
  pl.add(std::make_unique<UnpackStageT<Real>>(&env));
  pl.add(std::make_unique<FmStageT<Real>>(&env));
  pl.add(std::make_unique<DemodStageT<Real>>(&env));

  const auto node = [&pl](int stage, int chunk, int phase, StageClass cls,
                          int seq_key, int ovl_key, int many_phase = 1) {
    NodeSpec n;
    n.stage = stage;
    n.chunk = chunk;
    n.phase = phase;
    n.cls = cls;
    n.seq_key = seq_key;
    n.ovl_key = ovl_key;
    n.many_phase = many_phase;
    return pl.add_node(n);
  };

  const bool remote = env.has_comm && env.ranks > 1;
  if (!remote) {
    // Serial wrap: stage the input + fill the wrap halo, then one whole-
    // rank convolution. Everything downstream stays an atomic auto node.
    const int hpost = node(s_halo, 0, kPhasePost, StageClass::kCompute, 0, 0);
    const int conv = node(s_halo, 0, kPhaseWork, StageClass::kCompute, 1, 1);
    pl.add_edge(hpost, conv);
    return;
  }

  // Halo + split convolution. In-order keys run wait before the safe
  // groups (the classic blocking order); pipelined keys convolve the safe
  // groups while the halo travels.
  const int hpost =
      node(s_halo, 0, kPhasePost, StageClass::kCommPost, 0, 0, 0);
  const int hwait = node(s_halo, 0, kPhaseWait, StageClass::kCommWait, 1, 2);
  const int csafe = node(s_halo, 0, kPhaseWork, StageClass::kCompute, 2, 1);
  const int ctail = node(s_halo, 1, kPhaseWork, StageClass::kCompute, 3, 3);
  pl.add_edge(hpost, hwait);
  pl.add_edge(hpost, csafe);
  pl.add_edge(hpost, ctail);
  pl.add_edge(hwait, ctail);

  // Per-chunk-group exchange..demod. seq keys are chunk-major (the
  // in-order executor); ovl keys realise the software pipeline
  //   post(0), post(1), wait(0), unpack(0), fm(0), demod(0), post(2), ...
  // f_p (no declared nodes) is an auto barrier between conv and the posts.
  const int depth = static_cast<int>(env.chunk_depth);
  const int ns = env.nslots();
  std::vector<int> post(static_cast<std::size_t>(depth));
  std::vector<int> wait(static_cast<std::size_t>(depth));
  std::vector<int> unp(static_cast<std::size_t>(depth));
  std::vector<int> fm(static_cast<std::size_t>(depth));
  std::vector<int> dem(static_cast<std::size_t>(depth));
  std::vector<int> post_ovl(static_cast<std::size_t>(depth));
  // Pipelined key layout: a prologue posts the first nslots() groups (the
  // pipeline keeps up to nslots() exchanges in flight), then each group's
  // wait..demod runs with group g+ns's post interleaved after it — at
  // ns == 2 this reduces to post(0), post(1), wait(0), ..., post(2), ...
  int ko = 200;
  for (int g = 0; g < std::min(ns, depth); ++g) {
    post_ovl[static_cast<std::size_t>(g)] = ko++;
  }
  std::vector<std::array<int, 4>> rest_ovl(static_cast<std::size_t>(depth));
  for (int g = 0; g < depth; ++g) {
    for (int i = 0; i < 4; ++i) rest_ovl[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)] = ko++;
    if (g + ns < depth) post_ovl[static_cast<std::size_t>(g + ns)] = ko++;
  }
  for (int g = 0; g < depth; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    const int ks = 100 + 5 * g;
    post[gi] = node(s_exch, g, kPhasePost, StageClass::kCommPost, ks,
                    post_ovl[gi], 0);
    wait[gi] = node(s_exch, g, kPhaseWait, StageClass::kCommWait, ks + 1,
                    rest_ovl[gi][0], 2);
    unp[gi] = node(s_exch + 1, g, kPhaseWork, StageClass::kCompute, ks + 2,
                   rest_ovl[gi][1], 2);
    fm[gi] = node(s_exch + 2, g, kPhaseWork, StageClass::kCompute, ks + 3,
                  rest_ovl[gi][2], 2);
    dem[gi] = node(s_exch + 3, g, kPhaseWork, StageClass::kCompute, ks + 4,
                   rest_ovl[gi][3], 2);
    pl.add_edge(post[gi], wait[gi]);
    pl.add_edge(wait[gi], unp[gi]);
    pl.add_edge(unp[gi], fm[gi]);
    pl.add_edge(fm[gi], dem[gi]);
    // Slot-cycle write-after-read edges: group g+ns reuses group g's
    // slots, so its writers wait for g's readers. (The unp[g-ns] ->
    // post[g] edge also orders post[g] after wait[g-ns] transitively,
    // which guards the staged schedule's stg scratch reuse.)
    if (g >= ns) {
      const auto gp = static_cast<std::size_t>(g - ns);
      pl.add_edge(unp[gp], post[gi]);  // recv + stg slots
      pl.add_edge(fm[gp], unp[gi]);    // xt slot
      pl.add_edge(dem[gp], fm[gi]);    // uf slot
    }
  }
}

std::unique_ptr<exec::StageT<double>> make_r2c_pack_stage(
    WorkspaceArena::BufferId z, std::int64_t h) {
  return std::make_unique<R2cPackStage>(z, h);
}

std::unique_ptr<exec::StageT<double>> make_r2c_untangle_stage(
    WorkspaceArena::BufferId zf, const cvec* twiddle, std::int64_t h) {
  return std::make_unique<R2cUntangleStage>(zf, twiddle, h);
}

SoiStageBreakdown SoiStageBreakdown::from_trace(const exec::TraceLog& trace) {
  SoiStageBreakdown bd;
  for (const auto& r : trace.records()) {
    if (r.name == "halo") {
      bd.halo += r.seconds;
      bd.halo_bytes += r.bytes_moved;
    } else if (r.name == "conv") {
      bd.conv += r.seconds;
    } else if (r.name == "f_p") {
      bd.fp += r.seconds;
    } else if (r.name == "exchange") {
      bd.alltoall += r.seconds;
      bd.alltoall_bytes += r.bytes_moved;
    } else if (r.name == "unpack") {
      bd.pack += r.seconds;
    } else if (r.name == "f_mprime") {
      bd.fm += r.seconds;
    } else if (r.name == "demod") {
      bd.demod += r.seconds;
    }
  }
  return bd;
}

template void reserve_chain_buffers<double>(WorkspaceArena&,
                                            ChainEnvT<double>&, int);
template void reserve_chain_buffers<float>(WorkspaceArena&, ChainEnvT<float>&,
                                           int);
template void append_chain_stages<double>(exec::PipelineT<double>&,
                                          const ChainEnvT<double>&);
template void append_chain_stages<float>(exec::PipelineT<float>&,
                                         const ChainEnvT<float>&);

}  // namespace soi::core
