#include "soi/stages.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "soi/breakdown.hpp"
#include "soi/convolve.hpp"

namespace soi::core {

namespace {

constexpr int kTagHalo = 101;

template <class Real>
std::int64_t cbytes(std::int64_t count) {
  return static_cast<std::int64_t>(sizeof(cplx_t<Real>)) * count;
}

std::int64_t fft_flops(std::int64_t batch, std::int64_t n) {
  return static_cast<std::int64_t>(
      static_cast<double>(batch) * 5.0 * static_cast<double>(n) *
      std::log2(static_cast<double>(n)));
}

/// Stages 1+2 of the per-rank pipeline: halo materialisation (wrap fill,
/// blocking sendrecv, or eager-send + convolve-safe-groups + poll when
/// ctx.overlap is set) and the convolution W x. Emits "halo" and "conv".
template <class Real>
class HaloConvStageT final : public exec::StageT<Real> {
 public:
  explicit HaloConvStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const SoiGeometry& g = *env_->geom;
    exec::StageRecord halo;
    halo.name = "halo";
    halo.bytes_moved =
        (env_->has_comm && env_->ranks > 1) ? cbytes<Real>(g.halo()) : 0;
    out.push_back(std::move(halo));
    exec::StageRecord conv;
    conv.name = "conv";
    conv.flops = 8 * env_->spr * g.conv_madds_per_rank();
    conv.bytes_moved = cbytes<Real>(env_->spr * g.local_input() +
                                    env_->chunks() * g.p());
    out.push_back(std::move(conv));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const SoiGeometry& g = *env.geom;
    const std::int64_t m_seg = g.m();
    const std::int64_t m_rank = env.m_rank();
    const std::int64_t halo = g.halo();
    const std::int64_t mcg = g.chunks_per_rank();
    const std::int64_t p = g.p();
    exec::StageRecord& rhalo = rec[0];
    exec::StageRecord& rconv = rec[1];
    const std::span<C> ext = ctx.arena->template span<C>(env.ext);
    const std::span<C> v = ctx.arena->template span<C>(env.v);
    const cspan_t<Real> x =
        env.src.valid()
            ? cspan_t<Real>(ctx.arena->template span<C>(env.src))
            : ctx.in;

    const auto convolve_range = [&](std::int64_t seg_begin,
                                    std::int64_t seg_end) {
      for (std::int64_t s = seg_begin; s < seg_end; ++s) {
        convolve_rank<Real>(
            g, *env.table,
            cspan_t<Real>{ext.data() + s * m_seg,
                          static_cast<std::size_t>(g.local_input())},
            mspan_t<Real>{v.data() + s * mcg * p,
                          static_cast<std::size_t>(mcg * p)});
      }
    };

    {
      // Staging the owned block is part of materialising the conv input.
      exec::StageTimer st(rconv);
      std::copy(x.begin(), x.end(), ext.begin());
    }

    const bool remote = env.has_comm && env.ranks > 1 && ctx.comm != nullptr;
    if (!remote) {
      {
        exec::StageTimer st(rhalo);
        for (std::int64_t i = 0; i < halo; ++i) {
          ext[static_cast<std::size_t>(m_rank + i)] =
              x[static_cast<std::size_t>(i)];
        }
      }
      exec::StageTimer st(rconv);
      convolve_range(0, env.spr);
      return;
    }

    if constexpr (std::is_same_v<Real, double>) {
      const int ranks = env.ranks;
      const int rank = ctx.comm->rank();
      const int left = (rank - 1 + ranks) % ranks;
      const int right = (rank + 1) % ranks;
      const cspan halo_out{x.data(), static_cast<std::size_t>(halo)};
      const mspan halo_in{ext.data() + m_rank, static_cast<std::size_t>(halo)};
      if (!ctx.overlap) {
        {
          exec::StageTimer st(rhalo);
          ctx.comm->sendrecv(left, halo_out, right, halo_in, kTagHalo);
        }
        exec::StageTimer st(rconv);
        convolve_range(0, env.spr);
      } else {
        // Overlap: eager halo send, convolve every fully-local group while
        // the halo travels, poll, then finish the last sub-rank's tail.
        {
          exec::StageTimer st(rhalo);
          ctx.comm->send(left, kTagHalo, halo_out);
        }
        // Groups of the LAST sub-rank whose window fits in local data; all
        // groups of earlier sub-ranks are always fully local (halo <= M_seg).
        const std::int64_t groups = g.groups_per_rank();
        const std::int64_t q_safe = std::clamp<std::int64_t>(
            (m_seg - g.taps() * p) / (g.nu() * p) + 1, 0, groups);
        {
          exec::StageTimer st(rconv);
          convolve_range(0, env.spr - 1);
          convolve_rank_groups<Real>(
              g, *env.table,
              cspan_t<Real>{ext.data() + (env.spr - 1) * m_seg,
                            static_cast<std::size_t>(g.local_input())},
              mspan_t<Real>{v.data() + (env.spr - 1) * mcg * p,
                            static_cast<std::size_t>(mcg * p)},
              0, q_safe);
        }
        {
          exec::StageTimer st(rhalo);
          while (!ctx.comm->try_recv(right, kTagHalo, halo_in)) {
            // Busy poll; on a real fabric this slot absorbs message latency.
          }
        }
        exec::StageTimer st(rconv);
        convolve_rank_groups<Real>(
            g, *env.table,
            cspan_t<Real>{ext.data() + (env.spr - 1) * m_seg,
                          static_cast<std::size_t>(g.local_input())},
            mspan_t<Real>{v.data() + (env.spr - 1) * mcg * p,
                          static_cast<std::size_t>(mcg * p)},
            q_safe, groups);
      }
    } else {
      SOI_CHECK(false, "SOI pipeline: communicator paths are double-only");
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "f_p": I (x) F_P over the local chunks, with the Fig. 3
/// per-destination transpose fused into the batched pass's interleaved
/// store. Under a null comm it stores straight into x-tilde.
template <class Real>
class FpStageT final : public exec::StageT<Real> {
 public:
  explicit FpStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t p = env_->geom->p();
    exec::StageRecord r;
    r.name = "f_p";
    r.bytes_moved = 2 * cbytes<Real>(env_->chunks() * p);
    r.flops = fft_flops(env_->chunks(), p);
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t p = env.geom->p();
    const std::int64_t chunks = env.chunks();
    const std::span<C> v = ctx.arena->template span<C>(env.v);
    const std::span<C> dst =
        ctx.arena->template span<C>(env.has_comm ? env.send : env.xt);
    exec::StageTimer st(*rec);
    // Destination rank d gets, for each of its segments sigma, element
    // sigma of every local chunk, laid out [sigma][chunk]: exactly the
    // interleaved store layout, so no separate pack sweep runs.
    env.batch_p->forward_strided(v, fft::contiguous_layout(p), dst,
                                 fft::interleaved_layout(chunks), chunks);
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "exchange": the single global all-to-all. bytes_moved is the
/// measured per-rank send volume (net::Comm counters); a null comm makes
/// this a no-op (F_P already stored into x-tilde).
template <class Real>
class ExchangeStageT final : public exec::StageT<Real> {
 public:
  explicit ExchangeStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "exchange";
    r.bytes_moved = env_->has_comm
                        ? cbytes<Real>(env_->spr * env_->chunks() *
                                       (env_->ranks - 1))
                        : 0;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    if (!env.has_comm || ctx.comm == nullptr) return;
    if constexpr (std::is_same_v<Real, double>) {
      const std::span<C> send = ctx.arena->template span<C>(env.send);
      const std::span<C> recv = ctx.arena->template span<C>(env.recv);
      const std::int64_t before = ctx.comm->bytes_sent();
      {
        exec::StageTimer st(*rec);
        ctx.comm->alltoall(send, recv, env.spr * env.chunks(), env.algo);
      }
      rec->bytes_moved = ctx.comm->bytes_sent() - before;
    } else {
      SOI_CHECK(false, "SOI pipeline: communicator paths are double-only");
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "unpack": assemble the received per-source blocks into segment
/// order. Source rank s computed the global chunks [s*chunks, (s+1)*chunks);
/// its block is laid out [sl][chunk], so segment sl's M' values are
/// gathered as xt[sl*M' + s*chunks + j] = recv[(s*spr + sl)*chunks + j].
template <class Real>
class UnpackStageT final : public exec::StageT<Real> {
 public:
  explicit UnpackStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "unpack";
    r.bytes_moved = env_->has_comm
                        ? 2 * cbytes<Real>(env_->spr * env_->geom->mprime())
                        : 0;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    if (!env.has_comm || ctx.comm == nullptr) return;
    const std::int64_t chunks = env.chunks();
    const std::int64_t mprime = env.geom->mprime();
    const std::span<C> recv = ctx.arena->template span<C>(env.recv);
    const std::span<C> xt = ctx.arena->template span<C>(env.xt);
    exec::StageTimer st(*rec);
    for (std::int64_t sl = 0; sl < env.spr; ++sl) {
      C* seg = xt.data() + sl * mprime;
      for (int s = 0; s < env.ranks; ++s) {
        const C* blk = recv.data() + (s * env.spr + sl) * chunks;
        std::copy_n(blk, chunks, seg + s * chunks);
      }
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "f_mprime": I (x) F_M' over the assembled local segments.
template <class Real>
class FmStageT final : public exec::StageT<Real> {
 public:
  explicit FmStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t mprime = env_->geom->mprime();
    exec::StageRecord r;
    r.name = "f_mprime";
    r.bytes_moved = 2 * cbytes<Real>(env_->spr * mprime);
    r.flops = fft_flops(env_->spr, mprime);
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::size_t count =
        static_cast<std::size_t>(env.spr * env.geom->mprime());
    const std::span<C> xt = ctx.arena->template span<C>(env.xt);
    const std::span<C> uf = ctx.arena->template span<C>(env.uf);
    exec::StageTimer st(*rec);
    env.batch_mp->forward(cspan_t<Real>{xt.data(), count},
                          mspan_t<Real>{uf.data(), count}, env.spr);
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// Stage "demod": demodulate + project each segment's first M bins.
template <class Real>
class DemodStageT final : public exec::StageT<Real> {
 public:
  explicit DemodStageT(const ChainEnvT<Real>* env) : env_(env) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    const std::int64_t m = env_->geom->m();
    exec::StageRecord r;
    r.name = "demod";
    r.bytes_moved = cbytes<Real>(2 * env_->spr * m + m);
    r.flops = 6 * env_->spr * m;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<Real>& ctx,
           exec::StageRecord* rec) const override {
    using C = cplx_t<Real>;
    const ChainEnvT<Real>& env = *env_;
    const std::int64_t m = env.geom->m();
    const std::int64_t mprime = env.geom->mprime();
    const std::span<C> uf = ctx.arena->template span<C>(env.uf);
    const mspan_t<Real> y =
        env.dst.valid() ? mspan_t<Real>(ctx.arena->template span<C>(env.dst))
                        : ctx.out;
    const cspan_t<Real> demod = env.table->demod();
    exec::StageTimer st(*rec);
    for (std::int64_t s = 0; s < env.spr; ++s) {
      const C* seg = uf.data() + s * mprime;
      C* dst = y.data() + s * m;
      for (std::int64_t k = 0; k < m; ++k) {
        dst[k] = seg[k] * demod[static_cast<std::size_t>(k)];
      }
    }
  }

 private:
  const ChainEnvT<Real>* env_;
};

/// "r2c_pack": z[j] = in[2j] + i*in[2j+1] from ctx.real_in.
class R2cPackStage final : public exec::StageT<double> {
 public:
  R2cPackStage(WorkspaceArena::BufferId z, std::int64_t h) : z_(z), h_(h) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "r2c_pack";
    r.bytes_moved = cbytes<double>(2 * h_);
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<double>& ctx,
           exec::StageRecord* rec) const override {
    const std::span<cplx> z = ctx.arena->span<cplx>(z_);
    const std::span<const double> in = ctx.real_in;
    exec::StageTimer st(*rec);
    for (std::int64_t j = 0; j < h_; ++j) {
      z[static_cast<std::size_t>(j)] = {in[static_cast<std::size_t>(2 * j)],
                                        in[static_cast<std::size_t>(2 * j + 1)]};
    }
  }

 private:
  WorkspaceArena::BufferId z_;
  std::int64_t h_;
};

/// "r2c_untangle": split the half-length spectrum zf into the h+1 bins of
/// the real signal's DFT (even/odd untangling with the twiddle table).
class R2cUntangleStage final : public exec::StageT<double> {
 public:
  R2cUntangleStage(WorkspaceArena::BufferId zf, const cvec* twiddle,
                   std::int64_t h)
      : zf_(zf), twiddle_(twiddle), h_(h) {}

  void plan_records(std::vector<exec::StageRecord>& out) const override {
    exec::StageRecord r;
    r.name = "r2c_untangle";
    r.bytes_moved = cbytes<double>(2 * h_);
    r.flops = 14 * h_;
    out.push_back(std::move(r));
  }

  void run(exec::ExecContextT<double>& ctx,
           exec::StageRecord* rec) const override {
    const std::span<const cplx> zf = ctx.arena->span<cplx>(zf_);
    const cvec& tw = *twiddle_;
    exec::StageTimer st(*rec);
    for (std::int64_t k = 0; k <= h_; ++k) {
      const std::int64_t km = k % h_;
      const std::int64_t kc = (h_ - k) % h_;
      const cplx zk = zf[static_cast<std::size_t>(km)];
      const cplx zc = std::conj(zf[static_cast<std::size_t>(kc)]);
      const cplx even = 0.5 * (zk + zc);
      const cplx odd = cplx{0.0, -0.5} * (zk - zc);
      const cplx t =
          (k == h_) ? cplx{-1.0, 0.0} : tw[static_cast<std::size_t>(k)];
      ctx.out[static_cast<std::size_t>(k)] = even + t * odd;
    }
  }

 private:
  WorkspaceArena::BufferId zf_;
  const cvec* twiddle_;
  std::int64_t h_;
};

}  // namespace

template <class Real>
void reserve_chain_buffers(WorkspaceArena& arena, ChainEnvT<Real>& env,
                           int base) {
  if constexpr (!std::is_same_v<Real, double>) {
    SOI_CHECK(!env.has_comm,
              "SOI pipeline: communicator paths are double-only");
  }
  const SoiGeometry& g = *env.geom;
  const auto cb = [](std::int64_t count) {
    return static_cast<std::size_t>(cbytes<Real>(count));
  };
  const std::int64_t chunks = env.chunks();
  const std::int64_t seg_total = env.spr * g.mprime();  // == chunks * P
  env.ext = arena.reserve("ext", cb(env.m_rank() + g.halo()), base, base);
  env.v = arena.reserve("v", cb(chunks * g.p()), base, base + 1);
  if (env.has_comm) {
    env.send = arena.reserve("send", cb(chunks * g.p()), base + 1, base + 2);
    env.recv = arena.reserve("recv", cb(seg_total), base + 2, base + 3);
    env.xt = arena.reserve("xt", cb(seg_total), base + 3, base + 4);
  } else {
    // F_P stores straight into x-tilde; no exchange staging needed.
    env.xt = arena.reserve("xt", cb(seg_total), base + 1, base + 4);
  }
  env.uf = arena.reserve("uf", cb(seg_total), base + 4, base + 5);
}

template <class Real>
void append_chain_stages(exec::PipelineT<Real>& pl,
                         const ChainEnvT<Real>& env) {
  pl.add(std::make_unique<HaloConvStageT<Real>>(&env));
  pl.add(std::make_unique<FpStageT<Real>>(&env));
  pl.add(std::make_unique<ExchangeStageT<Real>>(&env));
  pl.add(std::make_unique<UnpackStageT<Real>>(&env));
  pl.add(std::make_unique<FmStageT<Real>>(&env));
  pl.add(std::make_unique<DemodStageT<Real>>(&env));
}

std::unique_ptr<exec::StageT<double>> make_r2c_pack_stage(
    WorkspaceArena::BufferId z, std::int64_t h) {
  return std::make_unique<R2cPackStage>(z, h);
}

std::unique_ptr<exec::StageT<double>> make_r2c_untangle_stage(
    WorkspaceArena::BufferId zf, const cvec* twiddle, std::int64_t h) {
  return std::make_unique<R2cUntangleStage>(zf, twiddle, h);
}

SoiStageBreakdown SoiStageBreakdown::from_trace(const exec::TraceLog& trace) {
  SoiStageBreakdown bd;
  for (const auto& r : trace.records()) {
    if (r.name == "halo") {
      bd.halo += r.seconds;
      bd.halo_bytes += r.bytes_moved;
    } else if (r.name == "conv") {
      bd.conv += r.seconds;
    } else if (r.name == "f_p") {
      bd.fp += r.seconds;
    } else if (r.name == "exchange") {
      bd.alltoall += r.seconds;
      bd.alltoall_bytes += r.bytes_moved;
    } else if (r.name == "unpack") {
      bd.pack += r.seconds;
    } else if (r.name == "f_mprime") {
      bd.fm += r.seconds;
    } else if (r.name == "demod") {
      bd.demod += r.seconds;
    }
  }
  return bd;
}

template void reserve_chain_buffers<double>(WorkspaceArena&,
                                            ChainEnvT<double>&, int);
template void reserve_chain_buffers<float>(WorkspaceArena&, ChainEnvT<float>&,
                                           int);
template void append_chain_stages<double>(exec::PipelineT<double>&,
                                          const ChainEnvT<double>&);
template void append_chain_stages<float>(exec::PipelineT<float>&,
                                         const ChainEnvT<float>&);

}  // namespace soi::core
