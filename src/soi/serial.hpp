// Single-process SOI FFT: executes the complete factorisation (Eq. 6)
//
//   y ~= (I_P (x) W-hat^{-1} P_proj F_M') P_perm (I_M' (x) F_P) W x
//
// with all P segments computed in-process. This is both the reference
// implementation the distributed version is tested against and a useful
// shared-memory transform in its own right (P plays the role of the
// "number of segments", paper Section 6: P may exceed the node count).
//
// Execution is a soi::exec pipeline over the shared stage chain
// (soi/stages.hpp) with a null comm: the same stage bodies the
// distributed plan runs, minus the communication. All workspace lives in
// a preplanned arena, so steady-state forward() allocates nothing.
#pragma once

#include <memory>

#include <string>

#include "common/types.hpp"
#include "fft/engine.hpp"
#include "fft/plan.hpp"
#include "soi/breakdown.hpp"
#include "soi/conv_table.hpp"
#include "soi/exec.hpp"
#include "soi/params.hpp"
#include "soi/stages.hpp"
#include "window/design.hpp"

namespace soi::core {

/// Reusable serial SOI plan for fixed (N, P, profile), templated on the
/// working precision: SoiFftSerial (double, the paper's regime) and
/// SoiFftSerialF (float — the "6-digit" single-precision regime Section
/// 7.3 alludes to; window tables are designed in double, stored at float).
///
/// Plans may be shared across threads. forward()/inverse() reuse the
/// plan's own preplanned workspace, so concurrent calls to THOSE on one
/// plan object are not supported — but the stage chain itself is
/// stateless under a null comm, so K threads may run one shared plan
/// concurrently by giving each its own exec::ExecState (init_state once,
/// then forward_on per call; both allocation-free after init_state).
/// This is the serving layer's execution primitive.
template <class Real>
class SoiFftSerialT {
 public:
  /// `engine` names the FFT-engine backend the batched stages run on
  /// ("" = the process default: $SOI_FFT_ENGINE, else "batch"); unknown
  /// names throw soi::InvalidArgumentError listing the registered engines.
  SoiFftSerialT(std::int64_t n, std::int64_t p, win::SoiProfile profile,
                const std::string& engine = "");

  [[nodiscard]] const SoiGeometry& geometry() const { return geom_; }
  [[nodiscard]] const win::SoiProfile& profile() const { return profile_; }
  [[nodiscard]] std::int64_t size() const { return geom_.n(); }

  /// Forward transform: y[k] ~= sum_j x[j] exp(-2 pi i jk / N), in order.
  void forward(cspan_t<Real> x, mspan_t<Real> y) const;

  /// NaN/Inf input pre-scan before forward()/inverse(): on by default in
  /// Debug builds, off in Release; this setter overrides either way.
  /// Violations throw soi::InvalidArgumentError instead of producing
  /// silent garbage.
  void set_validate_input(bool on) { validate_input_ = on ? 1 : 0; }

  /// Forward with a per-phase timing breakdown.
  void forward_timed(cspan_t<Real> x, mspan_t<Real> y,
                     SoiPhaseTimes& times) const;

  /// Prepare `st` as an independent execution state of this plan: its own
  /// committed workspace (cloned layout), trace and scheduler scratch.
  /// Allocates; call once per concurrent lane, then forward_on() freely.
  void init_state(exec::ExecState& st) const;

  /// forward() on a caller-owned state — thread-safe w.r.t. other
  /// forward_on() calls on DIFFERENT states of the same plan, and
  /// allocation-free in steady state. `st` must come from init_state().
  void forward_on(exec::ExecState& st, cspan_t<Real> x,
                  mspan_t<Real> y) const;

  /// Inverse transform (scaled by 1/N) via the conjugation identity.
  void inverse(cspan_t<Real> y, mspan_t<Real> x) const;

  /// Structured per-stage trace of the most recent execution.
  [[nodiscard]] const exec::TraceLog& last_trace() const {
    return state_.trace;
  }
  /// The preplanned workspace (peak bytes, growth count — test surface).
  [[nodiscard]] const WorkspaceArena& workspace() const {
    return state_.arena;
  }

 private:
  win::SoiProfile profile_;
  SoiGeometry geom_;
  ConvTableT<Real> table_;
  std::unique_ptr<const fft::BatchTransformT<Real>> batch_p_;   // I_M' (x) F_P
  std::unique_ptr<const fft::BatchTransformT<Real>> batch_mp_;  // I_P (x) F_M'
  ChainEnvT<Real> env_;
  exec::PipelineT<Real> pipeline_;
  mutable exec::ExecState state_;
  int validate_input_ = -1;  ///< -1 auto (Debug on), 0 off, 1 on
  mutable cvec_t<Real> inv_in_, inv_out_;  // conjugation scratch (inverse)
};

extern template class SoiFftSerialT<double>;
extern template class SoiFftSerialT<float>;

using SoiFftSerial = SoiFftSerialT<double>;
using SoiFftSerialF = SoiFftSerialT<float>;

/// Segment-of-interest ("zoom") transform: computes only the M = N/P
/// outputs y[s*M .. (s+1)*M) from all N inputs, at cost O(N*B + M' log M')
/// — the Fig. 1 primitive exposed directly. For M << N this is far cheaper
/// than a full FFT when only a band of the spectrum is wanted.
class SegmentPlan {
 public:
  SegmentPlan(std::int64_t n, std::int64_t p, win::SoiProfile profile);

  [[nodiscard]] const SoiGeometry& geometry() const { return geom_; }
  /// Output band length M.
  [[nodiscard]] std::int64_t segment_length() const { return geom_.m(); }

  /// Compute segment s (0 <= s < P): y_seg gets y[s*M .. (s+1)*M).
  void compute(cspan x, std::int64_t s, mspan y_seg) const;

 private:
  win::SoiProfile profile_;
  SoiGeometry geom_;
  ConvTable table_;
  fft::FftPlan plan_mp_;
};

}  // namespace soi::core
