#include "soi/serial.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "soi/convolve.hpp"

namespace soi::core {

template <class Real>
SoiFftSerialT<Real>::SoiFftSerialT(std::int64_t n, std::int64_t p,
                                   win::SoiProfile profile,
                                   const std::string& engine)
    : profile_(std::move(profile)),
      geom_(n, p, profile_),
      table_(geom_, *profile_.window),
      batch_p_(fft::make_batch_plan_t<Real>(engine, p)),
      batch_mp_(fft::make_batch_plan_t<Real>(engine, geom_.mprime())) {
  // Serial = the shared stage chain under a null comm with all P segments
  // on this "rank": identical stage names and arithmetic to the
  // distributed plan, no communication.
  env_.geom = &geom_;
  env_.table = &table_;
  env_.batch_p = batch_p_.get();
  env_.batch_mp = batch_mp_.get();
  env_.ranks = 1;
  env_.spr = p;
  env_.has_comm = false;
  reserve_chain_buffers(state_.arena, env_, 0);
  append_chain_stages(pipeline_, env_);
  state_.arena.commit();
  pipeline_.init_trace(state_.trace);
  pipeline_.bind_scratch(state_.scratch);
}

template <class Real>
void SoiFftSerialT<Real>::init_state(exec::ExecState& st) const {
  SOI_CHECK(&st != &state_, "SoiFftSerial::init_state: plan's own state");
  st.arena.adopt_layout(state_.arena);
  st.trace = state_.trace;  // planned records; timings zeroed per run
  pipeline_.bind_scratch(st.scratch);
}

template <class Real>
void SoiFftSerialT<Real>::forward(cspan_t<Real> x, mspan_t<Real> y) const {
  forward_on(state_, x, y);
}

template <class Real>
void SoiFftSerialT<Real>::forward_on(exec::ExecState& st, cspan_t<Real> x,
                                     mspan_t<Real> y) const {
  const std::int64_t n = geom_.n();
  SOI_CHECK(x.size() == static_cast<std::size_t>(n),
            "SoiFftSerial::forward: input size " << x.size() << " != N "
                                                 << n);
  SOI_CHECK(y.size() >= static_cast<std::size_t>(n),
            "SoiFftSerial::forward: output too small");
  bool validate = validate_input_ > 0;
#ifndef NDEBUG
  if (validate_input_ < 0) validate = true;
#endif
  if (validate) {
    const std::int64_t bad = first_nonfinite<Real>(x);
    if (bad >= 0) {
      std::ostringstream os;
      os << "SoiFftSerial::forward: input contains a non-finite value "
            "(NaN/Inf) at index "
         << bad;
      throw InvalidArgumentError(os.str());
    }
  }
  exec::ExecContextT<Real> ctx;
  ctx.in = x;
  ctx.out = y;
  ctx.arena = &st.arena;
  ctx.trace = &st.trace;
  ctx.scratch = &st.scratch;
  pipeline_.run(ctx);
}

template <class Real>
void SoiFftSerialT<Real>::forward_timed(cspan_t<Real> x, mspan_t<Real> y,
                                        SoiPhaseTimes& times) const {
  forward(x, y);
  times = SoiStageBreakdown::from_trace(state_.trace);
}

template <class Real>
void SoiFftSerialT<Real>::inverse(cspan_t<Real> y, mspan_t<Real> x) const {
  const std::int64_t n = geom_.n();
  SOI_CHECK(y.size() == static_cast<std::size_t>(n),
            "SoiFftSerial::inverse: input size mismatch");
  SOI_CHECK(x.size() >= static_cast<std::size_t>(n),
            "SoiFftSerial::inverse: output too small");
  // inverse(y) = conj(forward(conj(y))) / N.
  inv_in_.resize(static_cast<std::size_t>(n));
  inv_out_.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    inv_in_[static_cast<std::size_t>(i)] =
        std::conj(y[static_cast<std::size_t>(i)]);
  }
  forward(inv_in_, inv_out_);
  const Real scale = Real(1) / static_cast<Real>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        std::conj(inv_out_[static_cast<std::size_t>(i)]) * scale;
  }
}

template class SoiFftSerialT<double>;
template class SoiFftSerialT<float>;

// --- SegmentPlan -------------------------------------------------------------

namespace {
/// Extended copy of x: N elements plus `extra` wrapped-around leading
/// elements, so every virtual rank's convolution reads contiguously.
cvec extend_input(cspan x, std::int64_t extra) {
  cvec ext(x.size() + static_cast<std::size_t>(extra));
  std::copy(x.begin(), x.end(), ext.begin());
  for (std::int64_t i = 0; i < extra; ++i) {
    ext[x.size() + static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(i) % x.size()];
  }
  return ext;
}
}  // namespace

SegmentPlan::SegmentPlan(std::int64_t n, std::int64_t p,
                         win::SoiProfile profile)
    : profile_(std::move(profile)),
      geom_(n, p, profile_),
      table_(geom_, *profile_.window),
      plan_mp_(geom_.mprime()) {}

void SegmentPlan::compute(cspan x, std::int64_t s, mspan y_seg) const {
  const std::int64_t n = geom_.n();
  const std::int64_t p = geom_.p();
  const std::int64_t m = geom_.m();
  const std::int64_t mp = geom_.mprime();
  const std::int64_t mc = geom_.chunks_per_rank();
  SOI_CHECK(x.size() == static_cast<std::size_t>(n),
            "SegmentPlan::compute: input size mismatch");
  SOI_CHECK(s >= 0 && s < p, "SegmentPlan::compute: segment " << s
                                                              << " out of range");
  SOI_CHECK(y_seg.size() >= static_cast<std::size_t>(m),
            "SegmentPlan::compute: output needs M elements");

  // Column phases of C_s = C_0 (I_M (x) diag(omega^s)).
  cvec phases(static_cast<std::size_t>(p));
  for (std::int64_t t = 0; t < p; ++t) {
    phases[static_cast<std::size_t>(t)] = omega(s * t, p);
  }

  // x-tilde = C_s x, evaluated with the same rank kernel over P virtual
  // ranks; chunk j's P elements here are *summed* (a segment needs the
  // full row sum, not the per-residue partials kept by the parallel form).
  // The phases are identical for every virtual rank, so the phased tap
  // table is built ONCE here and the loop runs the plain vectorised
  // kernel on it.
  const ConvTable shifted = table_.phased(phases);
  const cvec ext = extend_input(x, geom_.halo());
  cvec partial(static_cast<std::size_t>(mc * p));
  cvec xt(static_cast<std::size_t>(mp));
  for (std::int64_t vr = 0; vr < p; ++vr) {
    convolve_rank(geom_, shifted,
                  cspan{ext.data() + vr * m,
                        static_cast<std::size_t>(geom_.local_input())},
                  partial);
    for (std::int64_t j = 0; j < mc; ++j) {
      cplx acc{0.0, 0.0};
      const cplx* row = partial.data() + j * p;
      for (std::int64_t t = 0; t < p; ++t) acc += row[t];
      xt[static_cast<std::size_t>(vr * mc + j)] = acc;
    }
  }

  // F_M', then demodulate the first M bins.
  cvec xf(static_cast<std::size_t>(mp));
  plan_mp_.forward(xt, xf);
  const cspan demod = table_.demod();
  for (std::int64_t k = 0; k < m; ++k) {
    y_seg[static_cast<std::size_t>(k)] =
        xf[static_cast<std::size_t>(k)] * demod[static_cast<std::size_t>(k)];
  }
}

}  // namespace soi::core
