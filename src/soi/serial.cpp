#include "soi/serial.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "soi/convolve.hpp"

namespace soi::core {

namespace {
/// Extended copy of x: N elements plus `extra` wrapped-around leading
/// elements, so every virtual rank's convolution reads contiguously.
template <class Real>
cvec_t<Real> extend_input(cspan_t<Real> x, std::int64_t extra) {
  cvec_t<Real> ext(x.size() + static_cast<std::size_t>(extra));
  std::copy(x.begin(), x.end(), ext.begin());
  for (std::int64_t i = 0; i < extra; ++i) {
    ext[x.size() + static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(i) % x.size()];
  }
  return ext;
}
}  // namespace

template <class Real>
SoiFftSerialT<Real>::SoiFftSerialT(std::int64_t n, std::int64_t p,
                                   win::SoiProfile profile)
    : profile_(std::move(profile)),
      geom_(n, p, profile_),
      table_(geom_, *profile_.window),
      batch_p_(p),
      batch_mp_(geom_.mprime()) {}

template <class Real>
void SoiFftSerialT<Real>::forward(cspan_t<Real> x, mspan_t<Real> y) const {
  SoiPhaseTimes unused;
  forward_timed(x, y, unused);
}

template <class Real>
void SoiFftSerialT<Real>::forward_timed(cspan_t<Real> x, mspan_t<Real> y,
                                        SoiPhaseTimes& times) const {
  const std::int64_t n = geom_.n();
  const std::int64_t p = geom_.p();
  const std::int64_t m = geom_.m();
  const std::int64_t mp = geom_.mprime();
  const std::int64_t mc = geom_.chunks_per_rank();
  SOI_CHECK(x.size() == static_cast<std::size_t>(n),
            "SoiFftSerial::forward: input size " << x.size() << " != N "
                                                 << n);
  SOI_CHECK(y.size() >= static_cast<std::size_t>(n),
            "SoiFftSerial::forward: output too small");

  using C = cplx_t<Real>;
  Timer t;

  // --- convolution W x: all M' chunks, virtual rank by virtual rank ------
  const cvec_t<Real> ext = extend_input<Real>(x, geom_.halo());
  cvec_t<Real> v(static_cast<std::size_t>(mp * p));  // chunk-major: v[j*P+p]
  t.reset();
  for (std::int64_t vr = 0; vr < p; ++vr) {
    convolve_rank<Real>(geom_, table_,
                        cspan_t<Real>{ext.data() + vr * m,
                                      static_cast<std::size_t>(
                                          geom_.local_input())},
                        mspan_t<Real>{v.data() + vr * mc * p,
                                      static_cast<std::size_t>(mc * p)});
  }
  times.conv = t.seconds();

  // --- I_M' (x) F_P fused with the global stride-P permutation -----------
  // u[t*M' + j] = F_P(v_j)[t]: the interleaved store layout of the batched
  // pass writes the permuted (all-to-all) order directly, so the former
  // separate pack sweep over memory no longer exists.
  cvec_t<Real> u(v.size());
  t.reset();
  batch_p_.forward_strided(v, fft::contiguous_layout(p), u,
                           fft::interleaved_layout(mp), mp);
  times.fp = t.seconds();
  times.pack = 0.0;

  // --- I_P (x) F_M' --------------------------------------------------------
  cvec_t<Real> uf(u.size());
  t.reset();
  batch_mp_.forward(u, uf, p);
  times.fm = t.seconds();

  // --- demodulation + projection ------------------------------------------
  const cspan_t<Real> demod = table_.demod();
  t.reset();
  for (std::int64_t s = 0; s < p; ++s) {
    const C* seg = uf.data() + s * mp;
    C* dst = y.data() + s * m;
    for (std::int64_t k = 0; k < m; ++k) {
      dst[k] = seg[k] * demod[static_cast<std::size_t>(k)];
    }
  }
  times.demod = t.seconds();
}

template <class Real>
void SoiFftSerialT<Real>::inverse(cspan_t<Real> y, mspan_t<Real> x) const {
  const std::int64_t n = geom_.n();
  SOI_CHECK(y.size() == static_cast<std::size_t>(n),
            "SoiFftSerial::inverse: input size mismatch");
  SOI_CHECK(x.size() >= static_cast<std::size_t>(n),
            "SoiFftSerial::inverse: output too small");
  // inverse(y) = conj(forward(conj(y))) / N.
  cvec_t<Real> tmp(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    tmp[static_cast<std::size_t>(i)] =
        std::conj(y[static_cast<std::size_t>(i)]);
  }
  cvec_t<Real> out(static_cast<std::size_t>(n));
  forward(tmp, out);
  const Real scale = Real(1) / static_cast<Real>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        std::conj(out[static_cast<std::size_t>(i)]) * scale;
  }
}

template class SoiFftSerialT<double>;
template class SoiFftSerialT<float>;

// --- SegmentPlan -------------------------------------------------------------

SegmentPlan::SegmentPlan(std::int64_t n, std::int64_t p,
                         win::SoiProfile profile)
    : profile_(std::move(profile)),
      geom_(n, p, profile_),
      table_(geom_, *profile_.window),
      plan_mp_(geom_.mprime()) {}

void SegmentPlan::compute(cspan x, std::int64_t s, mspan y_seg) const {
  const std::int64_t n = geom_.n();
  const std::int64_t p = geom_.p();
  const std::int64_t m = geom_.m();
  const std::int64_t mp = geom_.mprime();
  const std::int64_t mc = geom_.chunks_per_rank();
  SOI_CHECK(x.size() == static_cast<std::size_t>(n),
            "SegmentPlan::compute: input size mismatch");
  SOI_CHECK(s >= 0 && s < p, "SegmentPlan::compute: segment " << s
                                                              << " out of range");
  SOI_CHECK(y_seg.size() >= static_cast<std::size_t>(m),
            "SegmentPlan::compute: output needs M elements");

  // Column phases of C_s = C_0 (I_M (x) diag(omega^s)).
  cvec phases(static_cast<std::size_t>(p));
  for (std::int64_t t = 0; t < p; ++t) {
    phases[static_cast<std::size_t>(t)] = omega(s * t, p);
  }

  // x-tilde = C_s x, evaluated with the same rank kernel over P virtual
  // ranks; chunk j's P elements here are *summed* (a segment needs the
  // full row sum, not the per-residue partials kept by the parallel form).
  // The phases are identical for every virtual rank, so the phased tap
  // table is built ONCE here and the loop runs the plain vectorised
  // kernel on it.
  const ConvTable shifted = table_.phased(phases);
  const cvec ext = extend_input(x, geom_.halo());
  cvec partial(static_cast<std::size_t>(mc * p));
  cvec xt(static_cast<std::size_t>(mp));
  for (std::int64_t vr = 0; vr < p; ++vr) {
    convolve_rank(geom_, shifted,
                  cspan{ext.data() + vr * m,
                        static_cast<std::size_t>(geom_.local_input())},
                  partial);
    for (std::int64_t j = 0; j < mc; ++j) {
      cplx acc{0.0, 0.0};
      const cplx* row = partial.data() + j * p;
      for (std::int64_t t = 0; t < p; ++t) acc += row[t];
      xt[static_cast<std::size_t>(vr * mc + j)] = acc;
    }
  }

  // F_M', then demodulate the first M bins.
  cvec xf(static_cast<std::size_t>(mp));
  plan_mp_.forward(xt, xf);
  const cspan demod = table_.demod();
  for (std::int64_t k = 0; k < m; ++k) {
    y_seg[static_cast<std::size_t>(k)] =
        xf[static_cast<std::size_t>(k)] * demod[static_cast<std::size_t>(k)];
  }
}

}  // namespace soi::core
