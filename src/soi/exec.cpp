#include "soi/exec.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soi::exec {

const StageRecord* TraceLog::find(std::string_view name) const {
  for (const auto& r : records_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

double TraceLog::total_seconds() const {
  double total = 0.0;
  for (const auto& r : records_) total += r.seconds;
  return total;
}

double overlap_efficiency(const TraceLog& trace) {
  double total = 0.0;
  double wait = 0.0;
  for (const auto& r : trace.records()) {
    total += r.seconds;
    wait += r.wait_seconds;
  }
  if (total <= 0.0) return 1.0;
  return std::clamp(1.0 - wait / total, 0.0, 1.0);
}

template <class Real>
void PipelineT<Real>::add(std::unique_ptr<StageT<Real>> stage) {
  SOI_CHECK(stage != nullptr, "Pipeline::add: null stage");
  stages_.push_back(std::move(stage));
  rec_offset_.clear();  // trace template is stale until init_trace()
  finalized_ = false;
}

template <class Real>
int PipelineT<Real>::add_node(const NodeSpec& spec) {
  SOI_CHECK(spec.stage >= 0 &&
                spec.stage < static_cast<int>(stages_.size()),
            "Pipeline::add_node: stage " << spec.stage << " not added yet");
  finalized_ = false;
  nodes_.resize(declared_nodes_);
  edges_.resize(declared_edges_);
  nodes_.push_back(spec);
  declared_nodes_ = nodes_.size();
  return static_cast<int>(nodes_.size()) - 1;
}

template <class Real>
void PipelineT<Real>::add_edge(int before, int after) {
  finalized_ = false;
  nodes_.resize(declared_nodes_);
  edges_.resize(declared_edges_);
  SOI_CHECK(before >= 0 && before < static_cast<int>(nodes_.size()) &&
                after >= 0 && after < static_cast<int>(nodes_.size()) &&
                before != after,
            "Pipeline::add_edge: bad edge " << before << " -> " << after);
  edges_.emplace_back(before, after);
  declared_edges_ = edges_.size();
}

template <class Real>
void PipelineT<Real>::finalize_graph() {
  const int nstages = static_cast<int>(stages_.size());
  nodes_.resize(declared_nodes_);
  edges_.resize(declared_edges_);

  // Stages that declared no nodes become atomic auto nodes with barrier
  // edges to every node of their neighbouring stages; a pipeline with no
  // declared nodes at all degenerates to the old ordered stage list.
  std::vector<bool> has_nodes(static_cast<std::size_t>(nstages), false);
  for (const auto& n : nodes_) {
    has_nodes[static_cast<std::size_t>(n.stage)] = true;
  }
  for (int s = 0; s < nstages; ++s) {
    if (has_nodes[static_cast<std::size_t>(s)]) continue;
    NodeSpec spec;
    spec.stage = s;
    spec.seq_key = s;
    spec.ovl_key = s;
    spec.is_auto = true;
    nodes_.push_back(spec);
  }
  for (int v = 0; v < static_cast<int>(nodes_.size()); ++v) {
    const int s = nodes_[static_cast<std::size_t>(v)].stage;
    const bool is_auto = !has_nodes[static_cast<std::size_t>(s)];
    if (!is_auto) continue;
    for (int u = 0; u < static_cast<int>(nodes_.size()); ++u) {
      const int us = nodes_[static_cast<std::size_t>(u)].stage;
      if (us == s - 1) edges_.emplace_back(u, v);
      if (us == s + 1 && has_nodes[static_cast<std::size_t>(us)]) {
        edges_.emplace_back(v, u);
      }
    }
  }

  const auto nnodes = nodes_.size();
  succ_off_.assign(nnodes + 1, 0);
  indegree0_.assign(nnodes, 0);
  for (const auto& [b, a] : edges_) {
    ++succ_off_[static_cast<std::size_t>(b) + 1];
    ++indegree0_[static_cast<std::size_t>(a)];
  }
  for (std::size_t i = 1; i <= nnodes; ++i) succ_off_[i] += succ_off_[i - 1];
  succ_.resize(edges_.size());
  {
    std::vector<int> cursor(succ_off_.begin(), succ_off_.end() - 1);
    for (const auto& [b, a] : edges_) {
      succ_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(b)]++)] =
          a;
    }
  }

  // Acyclicity check (Kahn): every node must be reachable from the roots.
  {
    std::vector<int> indeg = indegree0_;
    std::vector<int> queue;
    queue.reserve(nnodes);
    for (std::size_t v = 0; v < nnodes; ++v) {
      if (indeg[v] == 0) queue.push_back(static_cast<int>(v));
    }
    std::size_t head = 0;
    while (head < queue.size()) {
      const int v = queue[head++];
      for (int e = succ_off_[static_cast<std::size_t>(v)];
           e < succ_off_[static_cast<std::size_t>(v) + 1]; ++e) {
        const int u = succ_[static_cast<std::size_t>(e)];
        if (--indeg[static_cast<std::size_t>(u)] == 0) queue.push_back(u);
      }
    }
    SOI_CHECK(queue.size() == nnodes,
              "Pipeline: dataflow graph has a cycle ("
                  << queue.size() << " of " << nnodes
                  << " nodes schedulable)");
  }

  finalized_ = true;
  bind_scratch(scratch_, 1);
}

template <class Real>
void PipelineT<Real>::bind_scratch(RunScratch& s, int instances) const {
  SOI_CHECK(finalized_, "Pipeline::bind_scratch: init_trace() not called");
  SOI_CHECK(instances >= 1, "Pipeline::bind_scratch: need >= 1 instance");
  const std::size_t total =
      static_cast<std::size_t>(instances) * nodes_.size();
  s.indegree.assign(total, 0);
  s.heap.clear();
  s.heap.reserve(total);
  s.capacity = total;
}

template <class Real>
void PipelineT<Real>::init_trace(TraceLog& trace) {
  std::vector<StageRecord> records;
  rec_offset_.clear();
  rec_offset_.reserve(stages_.size());
  for (const auto& s : stages_) {
    rec_offset_.push_back(records.size());
    s->plan_records(records);
  }
  trace.plan(std::move(records));
  finalize_graph();
}

template <class Real>
void PipelineT<Real>::run(ExecContextT<Real>& ctx) const {
  ExecContextT<Real>* one[1] = {&ctx};
  execute(std::span<ExecContextT<Real>* const>(one, 1),
          ctx.scratch != nullptr ? *ctx.scratch : scratch_);
}

template <class Real>
void PipelineT<Real>::run_many(std::span<ExecContextT<Real>* const> ctxs,
                               RunScratch& scratch) const {
  execute(ctxs, scratch);
}

template <class Real>
void PipelineT<Real>::execute(std::span<ExecContextT<Real>* const> ctxs,
                              RunScratch& scratch) const {
  SOI_CHECK(!ctxs.empty(), "Pipeline::run: no execution contexts");
  SOI_CHECK(rec_offset_.size() == stages_.size() && finalized_,
            "Pipeline::run: init_trace() not called after the last "
            "add()/add_node()/add_edge()");
  for (const auto* ctx : ctxs) {
    SOI_CHECK(ctx != nullptr && ctx->arena != nullptr &&
                  ctx->trace != nullptr,
              "Pipeline::run: context missing arena/trace");
  }
  const int k = static_cast<int>(ctxs.size());
  const int nn = static_cast<int>(nodes_.size());
  const std::size_t total = static_cast<std::size_t>(k) * nodes_.size();
  SOI_CHECK(scratch.capacity >= total,
            "Pipeline::run: scratch bound for "
                << scratch.capacity << " node slots, need " << total
                << " (bind_scratch with enough instances)");

  // Reentrancy guard: an execution owns its scratch (and the contexts'
  // arenas/traces) exclusively. Racing on one scratch is corruption, not
  // parallelism — concurrent executions bind their own (ExecState).
  bool expected = false;
  SOI_CHECK(scratch.running.compare_exchange_strong(expected, true),
            "Pipeline::run: concurrent execution on one scratch/state "
            "(share the plan, not the execution state)");
  struct Release {
    std::atomic<bool>& flag;
    ~Release() { flag.store(false); }
  } release{scratch.running};

  for (auto* ctx : ctxs) ctx->trace->zero_seconds();

  // Merged ready-queue over k instances of the graph: global node id
  // gv = instance * nn + v. Each instance's schedule key set follows its
  // own context's overlap flag. Single-instance runs order READY nodes by
  // smallest key (ties by node id). Co-scheduled runs order by the
  // many_phase class first: phase-0 nodes (communication posts) run as
  // soon as they are ready so every instance's traffic is on the wire
  // before any instance blocks, and phase-1/2 nodes run depth-first per
  // instance — (phase, instance, key) — so each instance's working set
  // streams through the cache instead of k instances interleaving
  // stage-major. All orders are pure functions of the node table, so
  // every rank co-scheduling the same instances posts identically.
  auto key = [&](int gv) {
    const auto& n = nodes_[static_cast<std::size_t>(gv % nn)];
    return ctxs[static_cast<std::size_t>(gv / nn)]->overlap ? n.ovl_key
                                                            : n.seq_key;
  };
  auto priority = [&](int gv) -> std::int64_t {
    if (k == 1) return key(gv);
    const auto& n = nodes_[static_cast<std::size_t>(gv % nn)];
    const std::int64_t inst = gv / nn;
    const std::int64_t within =
        n.many_phase == 0
            ? static_cast<std::int64_t>(key(gv)) * k + inst
            : inst * 1000000 + key(gv);
    return (static_cast<std::int64_t>(n.many_phase) << 40) + within;
  };
  auto later = [&](int a, int b) {
    const std::int64_t ra = priority(a);
    const std::int64_t rb = priority(b);
    return ra != rb ? ra > rb : a > b;
  };

  auto& indegree = scratch.indegree;
  auto& heap = scratch.heap;
  for (int i = 0; i < k; ++i) {
    std::copy(indegree0_.begin(), indegree0_.end(),
              indegree.begin() + static_cast<std::ptrdiff_t>(i) * nn);
  }
  heap.clear();
  for (std::size_t gv = 0; gv < total; ++gv) {
    if (indegree[gv] == 0) {
      heap.push_back(static_cast<int>(gv));
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }

  std::size_t executed = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const int gv = heap.back();
    heap.pop_back();
    const int v = gv % nn;
    ExecContextT<Real>& ctx = *ctxs[static_cast<std::size_t>(gv / nn)];
    const auto& node = nodes_[static_cast<std::size_t>(v)];
    StageRecord* rec =
        ctx.trace->at(rec_offset_[static_cast<std::size_t>(node.stage)] +
                      static_cast<std::size_t>(node.rec));
    StageT<Real>& stage = *stages_[static_cast<std::size_t>(node.stage)];
    if (node.is_auto) {
      stage.run(ctx, rec);
    } else {
      stage.run_node(ctx, rec, node);
    }
    ++executed;
    const int base = gv - v;  // this instance's node-id offset
    for (int e = succ_off_[static_cast<std::size_t>(v)];
         e < succ_off_[static_cast<std::size_t>(v) + 1]; ++e) {
      const int gu = base + succ_[static_cast<std::size_t>(e)];
      if (--indegree[static_cast<std::size_t>(gu)] == 0) {
        heap.push_back(gu);
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
  }
  SOI_CHECK(executed == total,
            "Pipeline::run: scheduled " << executed << " of " << total
                                        << " nodes");
}

template class PipelineT<double>;
template class PipelineT<float>;

void bind_epoch_scratch(RunScratch& s, std::size_t total_nodes,
                        int max_members) {
  SOI_CHECK(max_members >= 1 && max_members <= kMaxEpochMembers,
            "bind_epoch_scratch: members " << max_members << " not in [1, "
                                           << kMaxEpochMembers << "]");
  s.indegree.assign(total_nodes, 0);
  s.heap.clear();
  s.heap.reserve(total_nodes);
  s.epoch_base.assign(static_cast<std::size_t>(max_members) + 1, 0);
  s.epoch_member.assign(total_nodes, 0);
  s.capacity = total_nodes;
}

template <class Real>
void run_epoch(std::span<const EpochMemberT<Real>> members,
               RunScratch& scratch) {
  const int m = static_cast<int>(members.size());
  SOI_CHECK(m >= 1 && m <= kMaxEpochMembers,
            "run_epoch: " << m << " members not in [1, " << kMaxEpochMembers
                          << "]");
  std::size_t total = 0;
  for (int i = 0; i < m; ++i) {
    const auto& em = members[static_cast<std::size_t>(i)];
    SOI_CHECK(em.pipeline != nullptr && em.ctx != nullptr,
              "run_epoch: member " << i << " missing pipeline/context");
    const PipelineT<Real>& p = *em.pipeline;
    SOI_CHECK(p.finalized_ && p.rec_offset_.size() == p.stages_.size(),
              "run_epoch: member " << i << "'s pipeline not finalised "
                                      "(init_trace() not called)");
    SOI_CHECK(em.ctx->arena != nullptr && em.ctx->trace != nullptr,
              "run_epoch: member " << i << " context missing arena/trace");
    SOI_CHECK(em.tier >= 0 && em.tier < kMaxEpochMembers,
              "run_epoch: member " << i << " tier " << em.tier
                                   << " out of range");
    total += p.nodes_.size();
  }
  // Concurrent members sharing one communicator must keep their traffic
  // apart: distinct collective channels (the halo/staged tags derive from
  // them too), and distinct instance slots when they share one pipeline.
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const auto& a = members[static_cast<std::size_t>(i)];
      const auto& b = members[static_cast<std::size_t>(j)];
      if (a.ctx->comm != nullptr && a.ctx->comm == b.ctx->comm) {
        SOI_CHECK(a.ctx->channel != b.ctx->channel,
                  "run_epoch: members " << i << " and " << j
                                        << " share channel "
                                        << a.ctx->channel
                                        << " on one transport");
      }
      if (a.pipeline == b.pipeline) {
        SOI_CHECK(a.ctx->instance != b.ctx->instance,
                  "run_epoch: members " << i << " and " << j
                                        << " share instance "
                                        << a.ctx->instance
                                        << " of one pipeline");
      }
    }
  }
  SOI_CHECK(scratch.capacity >= total,
            "run_epoch: scratch bound for "
                << scratch.capacity << " node slots, need " << total
                << " (bind_epoch_scratch with enough nodes)");

  bool expected = false;
  SOI_CHECK(scratch.running.compare_exchange_strong(expected, true),
            "run_epoch: concurrent execution on one scratch");
  struct Release {
    std::atomic<bool>& flag;
    ~Release() { flag.store(false); }
  } release{scratch.running};

  // Member namespaces: member i owns global ids [base[i], base[i+1]).
  auto& base = scratch.epoch_base;
  auto& owner = scratch.epoch_member;
  if (base.size() < static_cast<std::size_t>(m) + 1) {
    base.resize(static_cast<std::size_t>(m) + 1);  // setup-time growth only
  }
  if (owner.size() < total) owner.resize(total);
  base[0] = 0;
  for (int i = 0; i < m; ++i) {
    const auto nn = static_cast<int>(
        members[static_cast<std::size_t>(i)].pipeline->nodes_.size());
    base[static_cast<std::size_t>(i) + 1] =
        base[static_cast<std::size_t>(i)] + nn;
    std::fill(owner.begin() + base[static_cast<std::size_t>(i)],
              owner.begin() + base[static_cast<std::size_t>(i) + 1],
              static_cast<std::int32_t>(i));
  }

  for (int i = 0; i < m; ++i) {
    members[static_cast<std::size_t>(i)].ctx->trace->zero_seconds();
  }

  // Merged ready-queue over the composed graph. Ordering mirrors
  // run_many's (phase << 40) + within scheme, generalised to
  // heterogeneous members: phase-0 nodes (communication posts) order by
  // (key, member) so every member's traffic is on the wire before any
  // member blocks; phase-1/2 nodes run depth-first per member, members
  // ordered by (tier, index) — an interactive member's wait..demod tail
  // preempts a background member's whenever both are ready. All terms are
  // pure functions of the member table, so every rank composing the same
  // epoch posts communication in the same order.
  auto priority = [&](int gv) -> std::int64_t {
    const int mi = owner[static_cast<std::size_t>(gv)];
    const auto& em = members[static_cast<std::size_t>(mi)];
    const auto& n = em.pipeline->nodes_[static_cast<std::size_t>(
        gv - base[static_cast<std::size_t>(mi)])];
    const std::int64_t key = em.ctx->overlap ? n.ovl_key : n.seq_key;
    const std::int64_t within =
        n.many_phase == 0
            ? key * m + mi
            : (static_cast<std::int64_t>(em.tier) * kMaxEpochMembers + mi) *
                      1000000 +
                  key;
    return (static_cast<std::int64_t>(n.many_phase) << 40) + within;
  };
  auto later = [&](int a, int b) {
    const std::int64_t ra = priority(a);
    const std::int64_t rb = priority(b);
    return ra != rb ? ra > rb : a > b;
  };

  auto& indegree = scratch.indegree;
  auto& heap = scratch.heap;
  for (int i = 0; i < m; ++i) {
    const auto& p = *members[static_cast<std::size_t>(i)].pipeline;
    std::copy(p.indegree0_.begin(), p.indegree0_.end(),
              indegree.begin() + base[static_cast<std::size_t>(i)]);
  }
  heap.clear();
  for (std::size_t gv = 0; gv < total; ++gv) {
    if (indegree[gv] == 0) {
      heap.push_back(static_cast<int>(gv));
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }

  std::size_t executed = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const int gv = heap.back();
    heap.pop_back();
    const int mi = owner[static_cast<std::size_t>(gv)];
    const auto& em = members[static_cast<std::size_t>(mi)];
    const PipelineT<Real>& p = *em.pipeline;
    const int mbase = base[static_cast<std::size_t>(mi)];
    const int v = gv - mbase;
    ExecContextT<Real>& ctx = *em.ctx;
    const NodeSpec& node = p.nodes_[static_cast<std::size_t>(v)];
    StageRecord* rec =
        ctx.trace->at(p.rec_offset_[static_cast<std::size_t>(node.stage)] +
                      static_cast<std::size_t>(node.rec));
    StageT<Real>& stage = *p.stages_[static_cast<std::size_t>(node.stage)];
    if (node.is_auto) {
      stage.run(ctx, rec);
    } else {
      stage.run_node(ctx, rec, node);
    }
    ++executed;
    for (int e = p.succ_off_[static_cast<std::size_t>(v)];
         e < p.succ_off_[static_cast<std::size_t>(v) + 1]; ++e) {
      const int gu = mbase + p.succ_[static_cast<std::size_t>(e)];
      if (--indegree[static_cast<std::size_t>(gu)] == 0) {
        heap.push_back(gu);
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
  }
  SOI_CHECK(executed == total, "run_epoch: scheduled "
                                   << executed << " of " << total
                                   << " nodes");
}

template void run_epoch<double>(
    std::span<const EpochMemberT<double>> members, RunScratch& scratch);
template void run_epoch<float>(std::span<const EpochMemberT<float>> members,
                               RunScratch& scratch);

}  // namespace soi::exec
