#include "soi/exec.hpp"

#include "common/error.hpp"

namespace soi::exec {

const StageRecord* TraceLog::find(std::string_view name) const {
  for (const auto& r : records_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

double TraceLog::total_seconds() const {
  double total = 0.0;
  for (const auto& r : records_) total += r.seconds;
  return total;
}

template <class Real>
void PipelineT<Real>::add(std::unique_ptr<StageT<Real>> stage) {
  SOI_CHECK(stage != nullptr, "Pipeline::add: null stage");
  stages_.push_back(std::move(stage));
  rec_offset_.clear();  // trace template is stale until init_trace()
}

template <class Real>
void PipelineT<Real>::init_trace(TraceLog& trace) {
  std::vector<StageRecord> records;
  rec_offset_.clear();
  rec_offset_.reserve(stages_.size());
  for (const auto& s : stages_) {
    rec_offset_.push_back(records.size());
    s->plan_records(records);
  }
  trace.plan(std::move(records));
}

template <class Real>
void PipelineT<Real>::run(ExecContextT<Real>& ctx) const {
  SOI_CHECK(ctx.arena != nullptr && ctx.trace != nullptr,
            "Pipeline::run: context missing arena/trace");
  SOI_CHECK(rec_offset_.size() == stages_.size(),
            "Pipeline::run: init_trace() not called after the last add()");
  ctx.trace->zero_seconds();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stages_[i]->run(ctx, ctx.trace->at(rec_offset_[i]));
  }
}

template class PipelineT<double>;
template class PipelineT<float>;

}  // namespace soi::exec
