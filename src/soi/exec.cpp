#include "soi/exec.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soi::exec {

const StageRecord* TraceLog::find(std::string_view name) const {
  for (const auto& r : records_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

double TraceLog::total_seconds() const {
  double total = 0.0;
  for (const auto& r : records_) total += r.seconds;
  return total;
}

double overlap_efficiency(const TraceLog& trace) {
  double total = 0.0;
  double wait = 0.0;
  for (const auto& r : trace.records()) {
    total += r.seconds;
    wait += r.wait_seconds;
  }
  if (total <= 0.0) return 1.0;
  return std::clamp(1.0 - wait / total, 0.0, 1.0);
}

template <class Real>
void PipelineT<Real>::add(std::unique_ptr<StageT<Real>> stage) {
  SOI_CHECK(stage != nullptr, "Pipeline::add: null stage");
  stages_.push_back(std::move(stage));
  rec_offset_.clear();  // trace template is stale until init_trace()
  finalized_ = false;
}

template <class Real>
int PipelineT<Real>::add_node(const NodeSpec& spec) {
  SOI_CHECK(spec.stage >= 0 &&
                spec.stage < static_cast<int>(stages_.size()),
            "Pipeline::add_node: stage " << spec.stage << " not added yet");
  finalized_ = false;
  nodes_.resize(declared_nodes_);
  edges_.resize(declared_edges_);
  nodes_.push_back(spec);
  declared_nodes_ = nodes_.size();
  return static_cast<int>(nodes_.size()) - 1;
}

template <class Real>
void PipelineT<Real>::add_edge(int before, int after) {
  finalized_ = false;
  nodes_.resize(declared_nodes_);
  edges_.resize(declared_edges_);
  SOI_CHECK(before >= 0 && before < static_cast<int>(nodes_.size()) &&
                after >= 0 && after < static_cast<int>(nodes_.size()) &&
                before != after,
            "Pipeline::add_edge: bad edge " << before << " -> " << after);
  edges_.emplace_back(before, after);
  declared_edges_ = edges_.size();
}

template <class Real>
void PipelineT<Real>::finalize_graph() {
  const int nstages = static_cast<int>(stages_.size());
  nodes_.resize(declared_nodes_);
  edges_.resize(declared_edges_);

  // Stages that declared no nodes become atomic auto nodes with barrier
  // edges to every node of their neighbouring stages; a pipeline with no
  // declared nodes at all degenerates to the old ordered stage list.
  std::vector<bool> has_nodes(static_cast<std::size_t>(nstages), false);
  for (const auto& n : nodes_) {
    has_nodes[static_cast<std::size_t>(n.stage)] = true;
  }
  for (int s = 0; s < nstages; ++s) {
    if (has_nodes[static_cast<std::size_t>(s)]) continue;
    NodeSpec spec;
    spec.stage = s;
    spec.seq_key = s;
    spec.ovl_key = s;
    spec.is_auto = true;
    nodes_.push_back(spec);
  }
  for (int v = 0; v < static_cast<int>(nodes_.size()); ++v) {
    const int s = nodes_[static_cast<std::size_t>(v)].stage;
    const bool is_auto = !has_nodes[static_cast<std::size_t>(s)];
    if (!is_auto) continue;
    for (int u = 0; u < static_cast<int>(nodes_.size()); ++u) {
      const int us = nodes_[static_cast<std::size_t>(u)].stage;
      if (us == s - 1) edges_.emplace_back(u, v);
      if (us == s + 1 && has_nodes[static_cast<std::size_t>(us)]) {
        edges_.emplace_back(v, u);
      }
    }
  }

  const auto nnodes = nodes_.size();
  succ_off_.assign(nnodes + 1, 0);
  indegree0_.assign(nnodes, 0);
  for (const auto& [b, a] : edges_) {
    ++succ_off_[static_cast<std::size_t>(b) + 1];
    ++indegree0_[static_cast<std::size_t>(a)];
  }
  for (std::size_t i = 1; i <= nnodes; ++i) succ_off_[i] += succ_off_[i - 1];
  succ_.resize(edges_.size());
  {
    std::vector<int> cursor(succ_off_.begin(), succ_off_.end() - 1);
    for (const auto& [b, a] : edges_) {
      succ_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(b)]++)] =
          a;
    }
  }

  // Acyclicity check (Kahn): every node must be reachable from the roots.
  {
    std::vector<int> indeg = indegree0_;
    std::vector<int> queue;
    queue.reserve(nnodes);
    for (std::size_t v = 0; v < nnodes; ++v) {
      if (indeg[v] == 0) queue.push_back(static_cast<int>(v));
    }
    std::size_t head = 0;
    while (head < queue.size()) {
      const int v = queue[head++];
      for (int e = succ_off_[static_cast<std::size_t>(v)];
           e < succ_off_[static_cast<std::size_t>(v) + 1]; ++e) {
        const int u = succ_[static_cast<std::size_t>(e)];
        if (--indeg[static_cast<std::size_t>(u)] == 0) queue.push_back(u);
      }
    }
    SOI_CHECK(queue.size() == nnodes,
              "Pipeline: dataflow graph has a cycle ("
                  << queue.size() << " of " << nnodes
                  << " nodes schedulable)");
  }

  indegree_.assign(nnodes, 0);
  heap_.clear();
  heap_.reserve(nnodes);
  finalized_ = true;
}

template <class Real>
void PipelineT<Real>::init_trace(TraceLog& trace) {
  std::vector<StageRecord> records;
  rec_offset_.clear();
  rec_offset_.reserve(stages_.size());
  for (const auto& s : stages_) {
    rec_offset_.push_back(records.size());
    s->plan_records(records);
  }
  trace.plan(std::move(records));
  finalize_graph();
}

template <class Real>
void PipelineT<Real>::run(ExecContextT<Real>& ctx) const {
  SOI_CHECK(ctx.arena != nullptr && ctx.trace != nullptr,
            "Pipeline::run: context missing arena/trace");
  SOI_CHECK(rec_offset_.size() == stages_.size() && finalized_,
            "Pipeline::run: init_trace() not called after the last "
            "add()/add_node()/add_edge()");

  // Reentrancy guard: plan objects keep ExecState mutable so const
  // forward() stays allocation-free, which makes concurrent forward() on
  // ONE plan object corruption, not parallelism. Fail loudly instead.
  bool expected = false;
  SOI_CHECK(running_.compare_exchange_strong(expected, true),
            "Pipeline::run: concurrent execution of one plan object "
            "(share the plan, not the execution)");
  struct Release {
    const std::atomic<bool>& flag;
    ~Release() { const_cast<std::atomic<bool>&>(flag).store(false); }
  } release{running_};

  ctx.trace->zero_seconds();

  const bool pipelined = ctx.overlap;
  auto key = [&](int v) {
    const auto& n = nodes_[static_cast<std::size_t>(v)];
    return pipelined ? n.ovl_key : n.seq_key;
  };
  // Min-heap over (key, node id): among READY nodes the smallest key runs
  // first. Ties broken by id for determinism.
  auto later = [&](int a, int b) {
    const int ka = key(a);
    const int kb = key(b);
    return ka != kb ? ka > kb : a > b;
  };

  std::copy(indegree0_.begin(), indegree0_.end(), indegree_.begin());
  heap_.clear();
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (indegree_[v] == 0) {
      heap_.push_back(static_cast<int>(v));
      std::push_heap(heap_.begin(), heap_.end(), later);
    }
  }

  std::size_t executed = 0;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const int v = heap_.back();
    heap_.pop_back();
    const auto& node = nodes_[static_cast<std::size_t>(v)];
    StageRecord* rec =
        ctx.trace->at(rec_offset_[static_cast<std::size_t>(node.stage)] +
                      static_cast<std::size_t>(node.rec));
    StageT<Real>& stage = *stages_[static_cast<std::size_t>(node.stage)];
    if (node.is_auto) {
      stage.run(ctx, rec);
    } else {
      stage.run_node(ctx, rec, node);
    }
    ++executed;
    for (int e = succ_off_[static_cast<std::size_t>(v)];
         e < succ_off_[static_cast<std::size_t>(v) + 1]; ++e) {
      const int u = succ_[static_cast<std::size_t>(e)];
      if (--indegree_[static_cast<std::size_t>(u)] == 0) {
        heap_.push_back(u);
        std::push_heap(heap_.begin(), heap_.end(), later);
      }
    }
  }
  SOI_CHECK(executed == nodes_.size(),
            "Pipeline::run: scheduled " << executed << " of "
                                        << nodes_.size() << " nodes");
}

template class PipelineT<double>;
template class PipelineT<float>;

}  // namespace soi::exec
