// Problem geometry for the SOI factorisation (paper, Sections 4-6).
//
// For an N-point transform split into P segments with oversampling
// mu/nu = 1 + beta and truncation width B (blocks of P taps):
//   M  = N / P          points per segment / per node
//   M' = M * mu / nu    oversampled segment length
//   N' = M' * P         oversampled total
// The convolution matrix on a node is M'/P rows of chunks; rows come in
// groups of mu sharing one input range of B*P contiguous points starting
// nu*P apart (Fig. 4), so a node reads its own M points plus a halo of
// (B - nu) * P points from its right neighbour.
#pragma once

#include <cstdint>

#include "window/design.hpp"

namespace soi::core {

/// All derived sizes of one (N, P, profile) instance; validates every
/// divisibility requirement at construction.
class SoiGeometry {
 public:
  SoiGeometry(std::int64_t n, std::int64_t p, const win::SoiProfile& profile);

  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] std::int64_t p() const { return p_; }
  [[nodiscard]] std::int64_t m() const { return m_; }
  [[nodiscard]] std::int64_t mprime() const { return mprime_; }
  [[nodiscard]] std::int64_t nprime() const { return mprime_ * p_; }
  [[nodiscard]] std::int64_t mu() const { return mu_; }
  [[nodiscard]] std::int64_t nu() const { return nu_; }

  /// Truncation width actually used by the kernels: the profile's designed
  /// B plus 2*nu slack (rows within a group share the group's input range,
  /// which shifts each row's effective window by up to nu blocks).
  [[nodiscard]] std::int64_t taps() const { return taps_; }

  /// Convolution chunks (rows) per rank: M'/P.
  [[nodiscard]] std::int64_t chunks_per_rank() const { return mprime_ / p_; }

  /// Row groups per rank (mu rows each).
  [[nodiscard]] std::int64_t groups_per_rank() const {
    return chunks_per_rank() / mu_;
  }

  /// Halo elements needed from the right neighbour: (B - nu) * P.
  [[nodiscard]] std::int64_t halo() const { return (taps_ - nu_) * p_; }

  /// Elements a node's convolution reads: M + halo (Fig. 4's matrix width).
  [[nodiscard]] std::int64_t local_input() const { return m_ + halo(); }

  /// Complex multiply-adds of one node's convolution:
  /// chunks_per_rank * P * B = M' * B (Section 7.4's flops accounting).
  [[nodiscard]] std::int64_t conv_madds_per_rank() const {
    return mprime_ * taps_;
  }

 private:
  std::int64_t n_;
  std::int64_t p_;
  std::int64_t m_;
  std::int64_t mu_;
  std::int64_t nu_;
  std::int64_t mprime_;
  std::int64_t taps_;
};

}  // namespace soi::core
