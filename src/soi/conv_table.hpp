// The convolution element table and demodulation factors (Sections 4-5).
//
// The node-local convolution matrix (Fig. 4) has only mu * P * B distinct
// elements: row j = mu*q + r of W reads inputs x[(q*nu*P + i) mod N] with
// coefficient E[r][i] that is independent of q. With the problem-specific
// window  w-hat(u) = exp(i pi B P u / N) * Hhat((u - M/2) / M)  these are
//
//   E[r][i] = (nu/mu) * exp(i pi B/2) * exp(i pi (r nu/mu - i/P))
//             * H(r nu/mu - i/P + B/2) ,   r in [0, mu), i in [0, B*P)
//
// and the demodulation divisors are w-hat(k) = exp(i pi B k / M)
// * Hhat((k - M/2)/M) for k in [0, M).
#pragma once

#include "common/types.hpp"
#include "soi/params.hpp"
#include "window/window.hpp"

namespace soi::core {

/// Precomputed convolution coefficients and demodulation factors for one
/// geometry + reference window. Immutable and shareable across executions.
/// Templated on the working precision (tables are always computed in
/// double, then stored at Real).
template <class Real>
class ConvTableT {
 public:
  ConvTableT(const SoiGeometry& g, const win::Window& window);

  /// Coefficient row r (r in [0, mu)): B*P complex taps.
  [[nodiscard]] cspan_t<Real> row(std::int64_t r) const {
    const auto width = static_cast<std::size_t>(row_width_);
    return cspan_t<Real>{coeff_.data() + static_cast<std::size_t>(r) * width,
                         width};
  }

  /// Taps per row: B * P.
  [[nodiscard]] std::int64_t row_width() const { return row_width_; }

  /// Split (structure-of-arrays) coefficient layout for the vectorised
  /// kernel: real and imaginary parts of row r as separate contiguous
  /// arrays of B*P scalars.
  [[nodiscard]] const Real* row_re(std::int64_t r) const {
    return split_re_.data() + static_cast<std::size_t>(r * row_width_);
  }
  [[nodiscard]] const Real* row_im(std::int64_t r) const {
    return split_im_.data() + static_cast<std::size_t>(r * row_width_);
  }

  /// Demodulation multipliers 1 / w-hat(k), k in [0, M).
  [[nodiscard]] cspan_t<Real> demod() const { return demod_; }

  /// Largest |1/w-hat(k)| (the realised condition-number amplification).
  [[nodiscard]] double max_demod_magnitude() const { return max_demod_; }

  /// Copy of this table with per-column phases folded into the taps:
  /// E'[r][blk*P + pp] = E[r][blk*P + pp] * phases[pp]. The phased table
  /// runs through the same vectorised convolve_rank kernel — how the zoom
  /// transform's C_s = C_0 (I (x) diag(omega^s)) columns are applied
  /// without a per-element multiply in the inner loop. `phases` has P
  /// entries.
  [[nodiscard]] ConvTableT phased(cspan_t<Real> phases) const;

 private:
  ConvTableT() = default;  // for phased()
  using rvec = std::vector<Real, AlignedAllocator<Real, 64>>;
  std::int64_t row_width_;
  cvec_t<Real> coeff_;   // mu rows of B*P taps (interleaved)
  rvec split_re_;        // same coefficients, split layout
  rvec split_im_;
  cvec_t<Real> demod_;   // M entries
  double max_demod_ = 0.0;
};

extern template class ConvTableT<double>;
extern template class ConvTableT<float>;

using ConvTable = ConvTableT<double>;
using ConvTableF = ConvTableT<float>;

}  // namespace soi::core
