// Real-input SOI transform: an even-length real signal packed into a
// half-length complex SOI FFT and untangled — the r2c surface production
// FFT libraries expose, here backed by the low-communication factorisation.
#pragma once

#include <span>

#include "common/types.hpp"
#include "soi/serial.hpp"
#include "window/design.hpp"

namespace soi::core {

/// r2c/c2r SOI plan for even real length n: n/2+1 non-redundant bins.
class SoiRealFft {
 public:
  /// The internal complex SOI transform has length n/2 split into p
  /// segments (the usual divisibility rules apply to n/2 and p).
  SoiRealFft(std::int64_t n, std::int64_t p, win::SoiProfile profile);

  [[nodiscard]] std::int64_t size() const { return n_; }

  /// out[k], k = 0..n/2, of the DFT of the real signal `in` (n values).
  void forward(std::span<const double> in, mspan out) const;

  /// Reconstruct the real signal from its n/2+1 spectrum bins.
  void inverse(cspan in, std::span<double> out) const;

 private:
  std::int64_t n_;
  SoiFftSerial half_;
  cvec twiddle_;  // exp(-i pi k / (n/2)) untangling factors
};

}  // namespace soi::core
