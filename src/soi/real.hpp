// Real-input SOI transform: an even-length real signal packed into a
// half-length complex SOI FFT and untangled — the r2c surface production
// FFT libraries expose, here backed by the low-communication factorisation.
//
// The forward path is ONE soi::exec pipeline: r2c_pack, the shared SOI
// stage chain (soi/stages.hpp, null comm) bracketed between arena-resident
// endpoints z/zf, then r2c_untangle — the conv/F_P/F_M'/demod bodies are
// the very same translation unit the serial and distributed plans run.
#pragma once

#include <memory>
#include <span>

#include "common/types.hpp"
#include "fft/engine.hpp"
#include "soi/breakdown.hpp"
#include "soi/conv_table.hpp"
#include "soi/exec.hpp"
#include "soi/params.hpp"
#include "soi/stages.hpp"
#include "window/design.hpp"

namespace soi::core {

/// r2c/c2r SOI plan for even real length n: n/2+1 non-redundant bins.
/// Workspace is preplanned, so steady-state forward() allocates nothing;
/// concurrent executions of ONE plan object are not supported.
class SoiRealFft {
 public:
  /// The internal complex SOI transform has length n/2 split into p
  /// segments (the usual divisibility rules apply to n/2 and p).
  SoiRealFft(std::int64_t n, std::int64_t p, win::SoiProfile profile);

  [[nodiscard]] std::int64_t size() const { return n_; }

  /// out[k], k = 0..n/2, of the DFT of the real signal `in` (n values).
  void forward(std::span<const double> in, mspan out) const;

  /// Reconstruct the real signal from its n/2+1 spectrum bins.
  void inverse(cspan in, std::span<double> out) const;

  /// Structured per-stage trace of the most recent forward().
  [[nodiscard]] const exec::TraceLog& last_trace() const {
    return state_.trace;
  }
  /// The forward pipeline's preplanned workspace.
  [[nodiscard]] const WorkspaceArena& workspace() const {
    return state_.arena;
  }

 private:
  std::int64_t n_;
  win::SoiProfile profile_;
  SoiGeometry geom_;  // half-length complex geometry (n/2, p)
  ConvTable table_;
  std::unique_ptr<const fft::BatchTransform> batch_p_;
  std::unique_ptr<const fft::BatchTransform> batch_mp_;
  cvec twiddle_;  // exp(-i pi k / (n/2)) untangling factors
  ChainEnvT<double> env_;        // forward chain, z -> zf endpoints
  exec::PipelineT<double> fwd_;  // r2c_pack + chain + r2c_untangle
  mutable exec::ExecState state_;
  ChainEnvT<double> inv_env_;      // inverse helper chain, ctx.in -> ctx.out
  exec::PipelineT<double> chain_;  // chain only (conjugation identity)
  mutable exec::ExecState chain_state_;
  mutable cvec inv_in_, inv_out_;  // conjugation scratch (inverse)
};

}  // namespace soi::core
