// Umbrella header: the full public API of the SOI-FFT library.
//
// Quick tour:
//   win::make_profile(win::Accuracy::kFull)  -> algorithm configuration
//   core::SoiFftSerial(n, p, profile)        -> in-process transform
//   core::SegmentPlan(n, p, profile)         -> zoom: one spectrum band
//   core::SoiFftDist(comm, n, profile)       -> distributed, 1 all-to-all
//   baseline::SixStepFftDist(comm, n)        -> comparator, 3 all-to-alls
//   net::run_world / net::TransportRegistry  -> pluggable rank fabrics
//   fft::EngineRegistry                      -> pluggable FFT executors
//   perf::t_soi / perf::speedup              -> Section 7.4 analytic model
//   tune::autotune / tune::PlanRegistry      -> autotuning, plan cache,
//   tune::WisdomStore                           persisted tuned decisions
#pragma once

#include "baseline/fft2d_dist.hpp"
#include "baseline/sixstep.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "fft/dft.hpp"
#include "fft/engine.hpp"
#include "fft/plan.hpp"
#include "fft/multi.hpp"
#include "fft/real.hpp"
#include "net/costmodel.hpp"
#include "net/registry.hpp"
#include "net/transport.hpp"
#include "perfmodel/model.hpp"
#include "soi/dist.hpp"
#include "soi/real.hpp"
#include "soi/serial.hpp"
#include "tune/autotuner.hpp"
#include "tune/candidates.hpp"
#include "tune/registry.hpp"
#include "tune/wisdom.hpp"
#include "window/design.hpp"
#include "window/window.hpp"
