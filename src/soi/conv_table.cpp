#include "soi/conv_table.hpp"

#include <cmath>

#include "common/error.hpp"

namespace soi::core {

template <class Real>
ConvTableT<Real>::ConvTableT(const SoiGeometry& g, const win::Window& window) {
  const std::int64_t mu = g.mu();
  const std::int64_t nu = g.nu();
  const std::int64_t b = g.taps();
  const std::int64_t p = g.p();
  const std::int64_t m = g.m();
  row_width_ = b * p;

  // E[r][i]; see header for the derivation from w-hat via the inverse
  // Fourier transform of the translated/dilated/phase-shifted window.
  coeff_.resize(static_cast<std::size_t>(mu * row_width_));
  const double scale = static_cast<double>(nu) / static_cast<double>(mu);
  const double half_b_phase = kPi * 0.5 * static_cast<double>(b);
  const cplx phase_b{std::cos(half_b_phase), std::sin(half_b_phase)};
  for (std::int64_t r = 0; r < mu; ++r) {
    const double rshift =
        static_cast<double>(r) * static_cast<double>(nu) /
        static_cast<double>(mu);
    for (std::int64_t i = 0; i < row_width_; ++i) {
      const double t =
          rshift - static_cast<double>(i) / static_cast<double>(p);
      const double hval = window.h(t + 0.5 * static_cast<double>(b));
      const double ang = kPi * t;
      const cplx ph{std::cos(ang), std::sin(ang)};
      coeff_[static_cast<std::size_t>(r * row_width_ + i)] =
          static_cast<cplx_t<Real>>(scale * phase_b * ph * hval);
    }
  }

  // Split layout for the vectorised kernel.
  split_re_.resize(coeff_.size());
  split_im_.resize(coeff_.size());
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    split_re_[i] = coeff_[i].real();
    split_im_[i] = coeff_[i].imag();
  }

  // Demodulation: 1 / w-hat(k) on the segment band.
  demod_.resize(static_cast<std::size_t>(m));
  for (std::int64_t k = 0; k < m; ++k) {
    const double u =
        (static_cast<double>(k) - 0.5 * static_cast<double>(m)) /
        static_cast<double>(m);
    const double mag = window.hhat(u);
    SOI_CHECK(std::abs(mag) > 1e-300,
              "ConvTable: window vanishes inside the band at k=" << k);
    const double ang = kPi * static_cast<double>(b) *
                       static_cast<double>(k) / static_cast<double>(m);
    const cplx what = cplx{std::cos(ang), std::sin(ang)} * mag;
    const cplx inv = 1.0 / what;
    demod_[static_cast<std::size_t>(k)] = static_cast<cplx_t<Real>>(inv);
    max_demod_ = std::max(max_demod_, std::abs(inv));
  }
}

template <class Real>
ConvTableT<Real> ConvTableT<Real>::phased(cspan_t<Real> phases) const {
  const std::int64_t p = static_cast<std::int64_t>(phases.size());
  SOI_CHECK(p >= 1 && row_width_ % p == 0,
            "ConvTable::phased: phase count " << p
                                              << " does not divide row width "
                                              << row_width_);
  ConvTableT out;
  out.row_width_ = row_width_;
  out.demod_ = demod_;
  out.max_demod_ = max_demod_;
  out.coeff_.resize(coeff_.size());
  out.split_re_.resize(coeff_.size());
  out.split_im_.resize(coeff_.size());
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    const auto pp = static_cast<std::size_t>(
        static_cast<std::int64_t>(i) % row_width_ % p);
    const cplx_t<Real> v = coeff_[i] * phases[pp];
    out.coeff_[i] = v;
    out.split_re_[i] = v.real();
    out.split_im_[i] = v.imag();
  }
  return out;
}

template class ConvTableT<double>;
template class ConvTableT<float>;

}  // namespace soi::core
