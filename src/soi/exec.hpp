// soi::exec — the chunk-granular dataflow executor.
//
// A plan (serial, distributed, or real-input) is expressed as a Pipeline:
// a list of Stage objects sharing one WorkspaceArena, plus a dataflow
// graph of NODES. A node is one unit of work — (stage, chunk, phase) —
// and edges are its per-chunk dependencies (including write-after-read
// edges that serialise reuse of double-buffered arena slots). Stages
// declare everything expensive at plan time — workspace requirements (via
// the arena), the trace records they emit, and their nodes/edges — so
// run() is pure execution: no heap allocation, no string construction,
// just a ready-queue over preallocated arrays driving kernels and timed
// trace updates.
//
// Two schedules coexist on one graph: every node carries an in-order key
// (chunk-major, equivalent to the old run-to-completion stage list) and a
// pipelined key (chunk g+1's exchange posts while chunk g's f_mprime
// computes). ExecContext::overlap picks the key set at run time; both are
// topological orders of the same edges, so outputs are bit-identical.
// Stages that declare no nodes get one auto node with barrier edges to
// their neighbour stages — a plain ordered stage list is just the
// degenerate graph.
//
// Every execution fills a TraceLog: one StageRecord per stage event with
// wall seconds (and the subset spent blocked in communication waits),
// bytes moved (measured for communication stages, estimated for compute
// stages) and a flop estimate. Per-chunk node executions fold into their
// stage's record, so SoiPhaseTimes/SoiDistBreakdown are unchanged thin
// views over this log (soi/breakdown.hpp); the measured autotuner and
// `soifft --trace` consume it directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace soi::net {
class Transport;
}

namespace soi::exec {

/// One structured trace event of one stage execution. Chunked stages fold
/// every per-chunk node execution into the same record (`chunks` counts
/// them), so name-keyed consumers see one row per stage as before.
struct StageRecord {
  std::string name;            ///< fixed at plan time ("conv", "f_p", ...)
  double seconds = 0.0;        ///< measured wall time, reset per execution
  double wait_seconds = 0.0;   ///< subset of seconds blocked in comm waits
  std::int64_t bytes_moved = 0;  ///< payload bytes (measured for comm)
  std::int64_t flops = 0;        ///< plan-time flop estimate
  std::int64_t chunks = 1;       ///< node executions folded into this record
  std::int64_t retries = 0;      ///< bounded-wait retries this execution
  bool bytes_measured = false;   ///< bytes_moved measured vs plan estimate
};

/// Per-execution trace. The record vector is built once at plan time
/// (Pipeline::init_trace); each run only zeroes the timings (and the byte
/// counters of measured records, which re-accumulate), so tracing itself
/// allocates nothing in steady state.
class TraceLog {
 public:
  void plan(std::vector<StageRecord> records) { records_ = std::move(records); }
  void zero_seconds() {
    for (auto& r : records_) {
      r.seconds = 0.0;
      r.wait_seconds = 0.0;
      r.retries = 0;
      if (r.bytes_measured) r.bytes_moved = 0;
    }
  }
  [[nodiscard]] StageRecord* at(std::size_t i) { return &records_[i]; }
  [[nodiscard]] std::span<const StageRecord> records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  /// First record with this name, or nullptr.
  [[nodiscard]] const StageRecord* find(std::string_view name) const;
  [[nodiscard]] double total_seconds() const;

 private:
  std::vector<StageRecord> records_;
};

/// Fraction of trace wall time NOT spent blocked in communication waits:
/// 1 - sum(wait_seconds) / sum(seconds), clamped to [0, 1]. 1.0 for an
/// empty/zero trace (nothing waited).
[[nodiscard]] double overlap_efficiency(const TraceLog& trace);

/// What a node does, for schedulers and trace accounting.
enum class StageClass : std::uint8_t {
  kCompute,   ///< kernels; never blocks on communication
  kCommPost,  ///< posts sends / nonblocking collectives; returns immediately
  kCommWait,  ///< completes a posted operation; time counts as wait_seconds
};

/// One schedulable unit of work: (stage, chunk, phase). `rec` indexes the
/// record (within the owning stage's plan_records) its time folds into;
/// `phase` is a stage-private discriminator (post vs wait vs kernel
/// variant). The two keys are scheduling priorities among READY nodes for
/// the in-order and pipelined schedules; correctness comes from edges
/// alone, keys only pick which valid order materialises.
struct NodeSpec {
  int stage = 0;
  int rec = 0;
  int chunk = 0;
  int phase = 0;
  StageClass cls = StageClass::kCompute;
  int seq_key = 0;  ///< priority under the in-order (chunk-major) schedule
  int ovl_key = 0;  ///< priority under the pipelined schedule
  /// Co-scheduled (run_many) priority class. 0 = run as soon as ready,
  /// ordered across instances by key (communication posts: every
  /// instance's traffic goes on the wire before anyone blocks). 1 = the
  /// pre-exchange front, 2 = the wait..demod tail; both run depth-first
  /// per instance ((instance, key) order, all fronts before any tail) so
  /// one instance's working set streams through the cache instead of K
  /// interleaving stage-major. Ignored by single-instance runs.
  int many_phase = 1;
  /// Set by finalize_graph() on generated barrier nodes: the executor
  /// calls the stage's atomic run() instead of run_node().
  bool is_auto = false;
};

/// Per-execution scheduler scratch: the ready-queue arrays one pipeline
/// run drives its graph with, plus the reentrancy flag guarding them.
/// Plans own one (inside ExecState) for their built-in execution; callers
/// that execute ONE shared pipeline from several threads (the serving
/// layer) bind one RunScratch per concurrent execution instead — the
/// pipeline graph itself is immutable after init_trace(), so K executions
/// with distinct (scratch, arena, trace) triples never share mutable
/// state. Sized by Pipeline::bind_scratch(); run() never allocates.
struct RunScratch {
  std::vector<int> indegree;
  std::vector<int> heap;
  std::atomic<bool> running{false};
  /// Node slots this scratch was bound for (instances * node count).
  std::size_t capacity = 0;
  /// Epoch composition tables (run_epoch only; empty for run/run_many):
  /// per-member first global node id, and the member owning each global
  /// node id. Sized by bind_epoch_scratch() so steady-state epochs never
  /// grow them.
  std::vector<int> epoch_base;
  std::vector<std::int32_t> epoch_member;
};

/// Everything a stage needs at run time. in/out are the caller's spans;
/// stages bound to arena buffers ignore them. comm == nullptr means
/// single-process execution (the serial plan's "null comm").
///
/// The last three fields exist for co-scheduled execution (run_many):
/// `instance` selects the per-execution slot of stage-held communication
/// requests, `channel` is the transport collective channel (and halo tag
/// offset) keeping concurrent executions' messages from cross-matching,
/// and `scratch` overrides the pipeline's built-in ready-queue arrays so
/// independent executions of one shared plan never contend.
template <class Real>
struct ExecContextT {
  cspan_t<Real> in;
  mspan_t<Real> out;
  std::span<const Real> real_in;  ///< r2c wrapper input (real path only)
  net::Transport* comm = nullptr;
  bool overlap = false;
  WorkspaceArena* arena = nullptr;
  TraceLog* trace = nullptr;
  int instance = 0;   ///< execution slot (indexes stage request storage)
  int channel = 0;    ///< transport collective channel / halo tag offset
  RunScratch* scratch = nullptr;  ///< null = the pipeline's built-in scratch
};

/// Stage interface. plan_records() declares the trace events the stage
/// emits (most stages: one; halo+conv: two); run_node() executes one node
/// of the dataflow graph and must add its wall time to `rec` (StageTimer /
/// WaitTimer below). Stages that declare no nodes are atomic: they get one
/// auto node and only run() is called.
template <class Real>
class StageT {
 public:
  virtual ~StageT() = default;
  virtual void plan_records(std::vector<StageRecord>& out) const = 0;
  virtual void run(ExecContextT<Real>& ctx, StageRecord* rec) const = 0;
  /// Execute one declared node. `rec` already points at the record the
  /// node's NodeSpec::rec selected. Default: atomic stages ignore the node.
  virtual void run_node(ExecContextT<Real>& ctx, StageRecord* rec,
                        const NodeSpec& node) const {
    (void)node;
    run(ctx, rec);
  }
};

template <class Real>
class PipelineT;

/// One member of a cross-graph epoch (run_epoch): an independent chunk
/// graph — a finalised pipeline plus the execution context it runs under —
/// co-scheduled with the other members' graphs in one merged ready-queue.
/// `tier` is the member's priority class (0 = most urgent): among READY
/// compute/wait nodes, lower tiers run first, so an interactive member's
/// tail never queues behind a background member's. Communication posts
/// ignore the tier (every member's traffic goes on the wire before anyone
/// blocks — that interleaving IS the epoch's throughput win).
template <class Real>
struct EpochMemberT {
  const PipelineT<Real>* pipeline = nullptr;
  ExecContextT<Real>* ctx = nullptr;
  int tier = 0;
};

/// Largest epoch run_epoch accepts (bounds the tier/member priority
/// packing; transports cap concurrency far below this anyway).
inline constexpr int kMaxEpochMembers = 64;

/// Size `s` for epochs of heterogeneous graphs totalling up to
/// `total_nodes` node slots over at most `max_members` members. Call at
/// setup time (after the member pipelines' init_trace()) so steady-state
/// run_epoch() calls never allocate.
void bind_epoch_scratch(RunScratch& s, std::size_t total_nodes,
                        int max_members);

/// Co-scheduled execution of several INDEPENDENT chunk graphs — possibly
/// of different shapes/pipelines — in one deterministic merged schedule.
/// Each member's node ids live in their own namespace (member m's node v
/// is global id epoch_base[m] + v), every edge stays member-local (WAR
/// slot-cycle edges included), and the merged binary heap orders READY
/// nodes by (many_phase, key): communication posts of all members
/// interleave on the wire first, then compute/wait nodes run depth-first
/// per member, lower tiers first. Members must carry distinct transport
/// channels when a communicator is attached (their collective/halo
/// traffic must not cross-match) and, when they share one pipeline,
/// distinct instance numbers. Per-member node order is a topological
/// order of the member's own edges, so each member's output is
/// bit-identical to a solo run of its pipeline. Allocation-free once
/// `scratch` was bound via bind_epoch_scratch().
template <class Real>
void run_epoch(std::span<const EpochMemberT<Real>> members,
               RunScratch& scratch);

extern template void run_epoch<double>(
    std::span<const EpochMemberT<double>> members, RunScratch& scratch);
extern template void run_epoch<float>(
    std::span<const EpochMemberT<float>> members, RunScratch& scratch);

/// Stage list + dataflow graph over one arena. add() all stages, declare
/// nodes/edges for the chunked ones, then init_trace() once against the
/// plan's TraceLog (this finalises the graph); run() drives the
/// ready-queue. Stages without declared nodes receive one auto node with
/// full barrier edges to the nodes of their neighbouring stages, so a
/// graph-free pipeline executes exactly like the old ordered list.
template <class Real>
class PipelineT {
 public:
  void add(std::unique_ptr<StageT<Real>> stage);
  /// Pipeline position the next add() will occupy (arena lifetime index).
  [[nodiscard]] int next_index() const {
    return static_cast<int>(stages_.size());
  }
  /// Declare one node; returns its id for add_edge().
  int add_node(const NodeSpec& spec);
  /// Declare that `before` must complete before `after` becomes ready.
  void add_edge(int before, int after);
  /// Build the trace template from the stages' declared records and
  /// finalise the dataflow graph (auto nodes, CSR edges, scratch arrays).
  void init_trace(TraceLog& trace);
  void run(ExecContextT<Real>& ctx) const;

  /// Size `s` for `instances` concurrent executions of this pipeline
  /// (init_trace() must have run). A bound scratch serves run() via
  /// ExecContext::scratch (instances == 1) or run_many() (instances == K).
  void bind_scratch(RunScratch& s, int instances = 1) const;

  /// Co-scheduled execution of K independent instances of THIS graph in
  /// one deterministic interleaved schedule: the merged ready-queue orders
  /// nodes by their per-instance schedule key (each context's overlap flag
  /// picks its key set), ties broken instance-major — so every rank that
  /// executes the same K instances posts communication in the same order,
  /// and instance i's exchange pieces are in flight while instance j
  /// computes. Contexts must carry distinct (arena, trace) pairs, distinct
  /// `instance` numbers (the stage request slots) and distinct `channel`s
  /// when a communicator is attached; `scratch` must have been bound for
  /// at least K instances. Per-instance node order is a topological order
  /// of the instance's own edges, so each instance's output is
  /// bit-identical to a solo run().
  void run_many(std::span<ExecContextT<Real>* const> ctxs,
                RunScratch& scratch) const;

  /// Nodes in the finalised graph (init_trace() must have run).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  template <class R>
  friend void run_epoch(std::span<const EpochMemberT<R>> members,
                        RunScratch& scratch);

 private:
  void finalize_graph();
  void execute(std::span<ExecContextT<Real>* const> ctxs,
               RunScratch& scratch) const;

  std::vector<std::unique_ptr<StageT<Real>>> stages_;
  std::vector<std::size_t> rec_offset_;  // stage -> first record index
  // Declared nodes/edges first, then the auto nodes/barrier edges that
  // finalize_graph() appends (declared_* mark the boundary so the graph
  // can be re-finalised without duplicating them).
  std::vector<NodeSpec> nodes_;
  std::vector<std::pair<int, int>> edges_;
  std::size_t declared_nodes_ = 0;
  std::size_t declared_edges_ = 0;
  // Finalised graph: successor adjacency in CSR form + indegree template.
  std::vector<int> succ_off_;
  std::vector<int> succ_;
  std::vector<int> indegree0_;
  bool finalized_ = false;
  // Built-in run-time scratch, preallocated by finalize_graph() for one
  // execution. Guarded by its reentrancy flag — concurrent executions of
  // one plan must bind their own RunScratch (ExecContext::scratch) and
  // their own arena/trace; racing on the BUILT-IN state is corruption,
  // not parallelism, and fails loudly.
  mutable RunScratch scratch_;
};

/// Adds its lifetime to `rec.seconds` on destruction; scoped sections of
/// one stage may open several (e.g. overlap: send / poll separately).
class StageTimer {
 public:
  explicit StageTimer(StageRecord& rec) : rec_(rec) {}
  ~StageTimer() { rec_.seconds += t_.seconds(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageRecord& rec_;
  Timer t_;
};

/// StageTimer variant for kCommWait sections: the elapsed time counts
/// toward both `seconds` and `wait_seconds`, feeding overlap_efficiency().
class WaitTimer {
 public:
  explicit WaitTimer(StageRecord& rec) : rec_(rec) {}
  ~WaitTimer() {
    const double s = t_.seconds();
    rec_.seconds += s;
    rec_.wait_seconds += s;
  }
  WaitTimer(const WaitTimer&) = delete;
  WaitTimer& operator=(const WaitTimer&) = delete;

 private:
  StageRecord& rec_;
  Timer t_;
};

/// Mutable per-execution state: one workspace arena, one trace, one set
/// of scheduler scratch arrays. Plan objects keep one `mutable` so const
/// forward() stays allocation-free; callers that need parallel execution
/// of one shared plan initialise EXTRA states from the plan (the serial
/// plan's init_state()) and run each execution against its own — racing
/// concurrent forward() calls on ONE state is corruption, not
/// parallelism, and Pipeline::run fails loudly on it.
struct ExecState {
  WorkspaceArena arena;
  TraceLog trace;
  RunScratch scratch;
};

extern template class PipelineT<double>;
extern template class PipelineT<float>;

}  // namespace soi::exec
