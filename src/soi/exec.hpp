// soi::exec — the staged pipeline executor.
//
// A plan (serial, distributed, or real-input) is expressed as a Pipeline:
// an ordered list of Stage objects sharing one WorkspaceArena. Stages
// declare everything expensive at plan time — workspace requirements (via
// the arena) and the trace records they emit (name, plan-time byte-volume
// and flop estimates) — so run() is pure execution: no heap allocation,
// no string construction, just kernels and timed trace updates.
//
// Every execution fills a TraceLog: one StageRecord per stage event with
// wall seconds, bytes moved (measured for communication stages, estimated
// for compute stages) and a flop estimate. SoiPhaseTimes/SoiDistBreakdown
// are thin views over this log (soi/breakdown.hpp); the measured autotuner
// and `soifft --trace` consume it directly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace soi::net {
class Comm;
}

namespace soi::exec {

/// One structured trace event of one stage execution.
struct StageRecord {
  std::string name;            ///< fixed at plan time ("conv", "f_p", ...)
  double seconds = 0.0;        ///< measured wall time, reset per execution
  std::int64_t bytes_moved = 0;  ///< payload bytes (measured for comm)
  std::int64_t flops = 0;        ///< plan-time flop estimate
};

/// Per-execution trace. The record vector is built once at plan time
/// (Pipeline::init_trace); each run only zeroes the seconds, so tracing
/// itself allocates nothing in steady state.
class TraceLog {
 public:
  void plan(std::vector<StageRecord> records) { records_ = std::move(records); }
  void zero_seconds() {
    for (auto& r : records_) r.seconds = 0.0;
  }
  [[nodiscard]] StageRecord* at(std::size_t i) { return &records_[i]; }
  [[nodiscard]] std::span<const StageRecord> records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  /// First record with this name, or nullptr.
  [[nodiscard]] const StageRecord* find(std::string_view name) const;
  [[nodiscard]] double total_seconds() const;

 private:
  std::vector<StageRecord> records_;
};

/// Everything a stage needs at run time. in/out are the caller's spans;
/// stages bound to arena buffers ignore them. comm == nullptr means
/// single-process execution (the serial plan's "null comm").
template <class Real>
struct ExecContextT {
  cspan_t<Real> in;
  mspan_t<Real> out;
  std::span<const Real> real_in;  ///< r2c wrapper input (real path only)
  net::Comm* comm = nullptr;
  bool overlap = false;
  WorkspaceArena* arena = nullptr;
  TraceLog* trace = nullptr;
};

/// Stage interface. plan_records() declares the trace events the stage
/// emits (most stages: one; halo+conv: two); run() receives a pointer to
/// its first record in the execution's TraceLog and must add its wall
/// time there (StageTimer below).
template <class Real>
class StageT {
 public:
  virtual ~StageT() = default;
  virtual void plan_records(std::vector<StageRecord>& out) const = 0;
  virtual void run(ExecContextT<Real>& ctx, StageRecord* rec) const = 0;
};

/// Ordered stage list over one arena. add() all stages, then init_trace()
/// once against the plan's TraceLog; run() executes in order.
template <class Real>
class PipelineT {
 public:
  void add(std::unique_ptr<StageT<Real>> stage);
  /// Pipeline position the next add() will occupy (arena lifetime index).
  [[nodiscard]] int next_index() const {
    return static_cast<int>(stages_.size());
  }
  /// Build the trace template from the stages' declared records.
  void init_trace(TraceLog& trace);
  void run(ExecContextT<Real>& ctx) const;

 private:
  std::vector<std::unique_ptr<StageT<Real>>> stages_;
  std::vector<std::size_t> rec_offset_;  // stage -> first record index
};

/// Adds its lifetime to `rec.seconds` on destruction; scoped sections of
/// one stage may open several (e.g. overlap: send / poll separately).
class StageTimer {
 public:
  explicit StageTimer(StageRecord& rec) : rec_(rec) {}
  ~StageTimer() { rec_.seconds += t_.seconds(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageRecord& rec_;
  Timer t_;
};

/// Mutable per-plan execution state (the plan objects keep this `mutable`
/// so const forward() stays allocation-free; concurrent forward() calls on
/// ONE plan object are therefore not supported — share the plan, not the
/// execution).
struct ExecState {
  WorkspaceArena arena;
  TraceLog trace;
};

extern template class PipelineT<double>;
extern template class PipelineT<float>;

}  // namespace soi::exec
