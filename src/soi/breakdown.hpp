// Unified per-phase accounting: one StageRecord-backed view over the
// pipeline TraceLog, replacing the former SoiPhaseTimes/SoiDistBreakdown
// twin structs (those names remain as aliases so existing benches and
// examples compile unchanged).
#pragma once

#include <cstdint>

#include "soi/exec.hpp"

namespace soi::core {

/// Seconds per pipeline stage of one execution plus the communication
/// volumes, populated from the trace by name. Field names keep the
/// historical phase vocabulary (fp = "f_p" stage, pack = "unpack" stage,
/// alltoall = "exchange" stage).
struct SoiStageBreakdown {
  double halo = 0.0;      ///< halo sendrecv / wrap fill
  double conv = 0.0;      ///< W x (includes staging the input block)
  double fp = 0.0;        ///< I (x) F_P with the permutation fused
  double pack = 0.0;      ///< post-exchange segment assembly
  double alltoall = 0.0;  ///< the single global exchange
  double fm = 0.0;        ///< I (x) F_M'
  double demod = 0.0;     ///< demodulate + project
  std::int64_t halo_bytes = 0;      ///< bytes each rank sends for the halo
  std::int64_t alltoall_bytes = 0;  ///< bytes each rank sends in the exchange

  [[nodiscard]] double compute_total() const {
    return conv + fp + pack + fm + demod;
  }
  [[nodiscard]] double total() const {
    return compute_total() + halo + alltoall;
  }

  static SoiStageBreakdown from_trace(const exec::TraceLog& trace);
};

/// Historical names; both now view the same trace-backed struct.
using SoiPhaseTimes = SoiStageBreakdown;
using SoiDistBreakdown = SoiStageBreakdown;

}  // namespace soi::core
