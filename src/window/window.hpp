// Window functions (paper, Sections 3-4 and 8).
//
// A *reference* window Hhat(u) lives on the normalised frequency axis: it
// should be bounded away from zero on [-1/2, 1/2] (the segment band) and
// negligible for |u| >= 1/2 + beta (the alias region). Its inverse Fourier
// transform H(t) determines the convolution taps; fast decay of H is what
// makes the truncated convolution matrix sparse.
//
// Three families are provided:
//  * GaussSmoothedRect — the paper's two-parameter (tau, sigma) window
//    (Eq. 2): rectangle convolved with a Gaussian. Both Hhat (erf
//    difference) and H (sinc x Gaussian) have closed forms (footnote 5).
//  * GaussianWindow — the one-parameter window discussed in Section 8
//    (accuracy capped near 10 digits at beta = 1/4).
//  * KaiserBesselWindow — compactly supported Hhat (Section 8's
//    "compact-support windows eliminate aliasing completely"); implemented
//    as the classic Kaiser-Bessel pair.
#pragma once

#include <memory>
#include <string>

namespace soi::win {

/// Reference window interface on the normalised axis.
class Window {
 public:
  virtual ~Window() = default;

  /// Frequency-domain reference window Hhat(u); real and even.
  [[nodiscard]] virtual double hhat(double u) const = 0;

  /// Time-domain window H(t) = integral Hhat(u) exp(+i 2 pi u t) du;
  /// real and even for the families here.
  [[nodiscard]] virtual double h(double t) const = 0;

  /// Human-readable identification (appears in bench output).
  [[nodiscard]] virtual std::string name() const = 0;

  /// True when hhat(u) == 0 exactly for |u| >= support (no aliasing).
  [[nodiscard]] virtual bool compact_support() const { return false; }

  /// Half-width of hhat's support when compact_support() is true.
  [[nodiscard]] virtual double support_halfwidth() const { return 0.0; }
};

/// The paper's two-parameter reference window:
///   Hhat(u) = (1/tau) * integral_{-tau/2}^{tau/2} exp(-sigma (u-t)^2) dt
///   H(t)    = sinc(tau t) * sqrt(pi/sigma) * exp(-pi^2 t^2 / sigma)
class GaussSmoothedRect final : public Window {
 public:
  GaussSmoothedRect(double tau, double sigma);

  [[nodiscard]] double hhat(double u) const override;
  [[nodiscard]] double h(double t) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double tau() const { return tau_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double tau_;
  double sigma_;
};

/// One-parameter Gaussian window: Hhat(u) = exp(-sigma u^2).
class GaussianWindow final : public Window {
 public:
  explicit GaussianWindow(double sigma);

  [[nodiscard]] double hhat(double u) const override;
  [[nodiscard]] double h(double t) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double sigma_;
};

/// Kaiser-Bessel window with *compactly supported* Hhat:
///   Hhat(u) = I0(b sqrt(1 - (u/c)^2)) / I0(b)   for |u| <= c, else 0
///   H(t)    = (2c/I0(b)) * sinh(s)/s,  s = sqrt(b^2 - (2 pi c t)^2)
/// (s imaginary gives sin(|s|)/|s|). Choosing c = 1/2 + beta removes
/// aliasing exactly — the paper's Section 8 extension.
class KaiserBesselWindow final : public Window {
 public:
  KaiserBesselWindow(double b, double c);

  [[nodiscard]] double hhat(double u) const override;
  [[nodiscard]] double h(double t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool compact_support() const override { return true; }
  [[nodiscard]] double support_halfwidth() const override { return c_; }

  [[nodiscard]] double b() const { return b_; }
  [[nodiscard]] double c() const { return c_; }

 private:
  double b_;
  double c_;
  double i0b_;
};

/// Cardinal B-spline window of order m: H(t) is the centred B-spline
/// (COMPACT support [-m/2, m/2] — zero truncation error, exactly B = m
/// taps), and Hhat(u) = sinc(u)^m decays only polynomially (aliasing is
/// the limiting error). The exact dual of the Kaiser-Bessel tradeoff;
/// included to map the design space the paper's Section 8 sketches.
class BSplineWindow final : public Window {
 public:
  explicit BSplineWindow(int order);

  [[nodiscard]] double hhat(double u) const override;
  [[nodiscard]] double h(double t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int order() const { return order_; }

  /// Time-domain support is compact: |t| >= order/2 gives exactly 0.
  [[nodiscard]] double time_support_halfwidth() const {
    return 0.5 * static_cast<double>(order_);
  }

 private:
  int order_;
};

/// Modified Bessel function of the first kind, order zero (series +
/// asymptotic); exposed for tests.
double bessel_i0(double x);

}  // namespace soi::win
