#include "window/design.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace soi::win {

namespace {

// Dense-sampling helpers. Adaptive quadrature is fragile when the integrand
// is ~1e-16 of its peak (absolute tolerances); plain fine-grid Riemann sums
// in double are robust at any magnitude, and B is an integer anyway.

/// Riemann-sum of |f| over [a, b] with step dt.
template <class F>
double grid_mass(F&& f, double a, double b, double dt) {
  double sum = 0.0;
  for (double t = a + 0.5 * dt; t < b; t += dt) sum += std::abs(f(t));
  return sum * dt;
}

/// Smallest x >= start where |f| stays below cutoff for a whole unit
/// interval (scan with step dt); capped at start + max_extent.
template <class F>
double decay_horizon(F&& f, double start, double cutoff, double dt,
                     double max_extent) {
  double quiet_since = start;
  for (double t = start; t < start + max_extent; t += dt) {
    if (std::abs(f(t)) >= cutoff) {
      quiet_since = t + dt;
    } else if (t - quiet_since >= 1.0) {
      return t;
    }
  }
  return start + max_extent;
}

}  // namespace

WindowMetrics evaluate_window(const Window& w, double beta) {
  SOI_CHECK(beta > 0.0, "evaluate_window: beta must be positive");
  return evaluate_window_bands(w, 0.5, 0.5 + beta, 1.0 + 2.0 * beta);
}

WindowMetrics evaluate_window_bands(const Window& w, double band_half,
                                    double alias_start,
                                    double image_period) {
  SOI_CHECK(band_half > 0.0 && alias_start > band_half && image_period > 0.0,
            "evaluate_window_bands: inconsistent band geometry");
  WindowMetrics m;

  // kappa over the band [-band_half, band_half], dense sampling.
  const int kBandSamples = 4097;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (int i = 0; i < kBandSamples; ++i) {
    const double u = band_half * (-1.0 + 2.0 * static_cast<double>(i) /
                                             (kBandSamples - 1));
    const double v = std::abs(w.hhat(u));
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  m.kappa = (lo > 0.0) ? hi / lo : std::numeric_limits<double>::infinity();

  // Aliasing: what contaminates bin k after demodulation is the POINTWISE
  // window value at the alias images, summed over the periodisation shifts
  // (y-tilde_k = sum_l y_{k+l*M'} w-hat(k+l*M')). Normalise by the in-band
  // peak; the in-band dip is already accounted for by kappa.
  const double a = alias_start;
  if (w.compact_support() && w.support_halfwidth() <= a + 1e-12) {
    m.eps_alias = 0.0;
    return m;
  }
  const double peak = std::abs(w.hhat(0.0));
  const double horizon = decay_horizon(
      [&w](double u) { return w.hhat(u); }, a, peak * 1e-26, 0.01, 60.0);
  // Worst case over the first few periodisation images on both sides.
  double worst = 0.0;
  for (int img = 0; img < 8; ++img) {
    double local = 0.0;
    const double img_lo = a + img * image_period;
    if (img_lo > horizon) break;
    for (double u = img_lo; u <= std::min(img_lo + image_period, horizon);
         u += 1e-3) {
      local = std::max(local, std::abs(w.hhat(u)));
    }
    worst += local;  // contributions add across images
  }
  m.eps_alias = 2.0 * worst / peak;  // both spectral sides
  return m;
}

std::int64_t choose_taps(const Window& w, double eps_trunc) {
  SOI_CHECK(eps_trunc > 0.0, "choose_taps: eps_trunc must be positive");
  const double peak = std::abs(w.h(0.0));
  SOI_CHECK(peak > 0.0, "choose_taps: degenerate window (H(0) == 0)");
  const double dt = 1.0 / 64.0;
  const double horizon = decay_horizon(
      [&w](double t) { return w.h(t); }, 0.0, peak * 1e-26, 0.05, 4096.0);
  // Sample |H| once on [0, horizon); suffix sums answer every tail query.
  const auto samples = static_cast<std::size_t>(horizon / dt) + 1;
  std::vector<double> mass(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    mass[i] = std::abs(w.h((static_cast<double>(i) + 0.5) * dt)) * dt;
  }
  std::vector<double> suffix(samples + 1, 0.0);
  for (std::size_t i = samples; i-- > 0;) suffix[i] = suffix[i + 1] + mass[i];
  const double total = 2.0 * suffix[0];
  // Walk B upward until the symmetric tail fits under the budget.
  for (std::int64_t b = 2; b <= 8192; b += 2) {
    const double half = 0.5 * static_cast<double>(b);
    const auto idx = static_cast<std::size_t>(half / dt);
    if (idx >= samples) return b;
    const double tail = 2.0 * suffix[idx];
    if (tail <= eps_trunc * total) return b;
  }
  throw Error("choose_taps: window decays too slowly for eps_trunc=" +
              std::to_string(eps_trunc));
}

double target_snr_db(Accuracy acc) {
  switch (acc) {
    case Accuracy::kFull:
      return 290.0;
    case Accuracy::kHigh:
      return 250.0;
    case Accuracy::kMedium:
      return 210.0;
    case Accuracy::kLow:
      return 170.0;
  }
  throw Error("target_snr_db: bad accuracy enum");
}

SoiProfile design_gauss_rect(std::int64_t mu, std::int64_t nu,
                             double eps_target, double kappa_max,
                             const std::string& name) {
  SOI_CHECK(mu > nu && nu >= 1, "design_gauss_rect: need mu > nu >= 1");
  SOI_CHECK(eps_target > 0.0 && eps_target < 1.0,
            "design_gauss_rect: eps_target out of range");
  const double beta =
      static_cast<double>(mu) / static_cast<double>(nu) - 1.0;

  SoiProfile best;
  std::int64_t best_taps = std::numeric_limits<std::int64_t>::max();

  // For fixed tau, eps_alias falls monotonically with sigma while B grows
  // (H's Gaussian envelope widens as exp(-pi^2 t^2 / sigma)). So: for each
  // tau, binary-search the smallest sigma that meets eps_target, check
  // kappa, and take the tau giving the fewest taps.
  for (double tau = 0.70; tau <= 1.30 + 1e-9; tau += 0.05) {
    double lo = 1.0, hi = 1.0;
    // Grow hi until feasible (or give up on this tau).
    bool feasible = false;
    for (int it = 0; it < 40; ++it) {
      GaussSmoothedRect w(tau, hi);
      if (evaluate_window(w, beta).eps_alias <= eps_target) {
        feasible = true;
        break;
      }
      lo = hi;
      hi *= 2.0;
    }
    if (!feasible) continue;
    for (int it = 0; it < 30 && hi / lo > 1.01; ++it) {
      const double mid = std::sqrt(lo * hi);
      GaussSmoothedRect w(tau, mid);
      if (evaluate_window(w, beta).eps_alias <= eps_target) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    auto w = std::make_shared<GaussSmoothedRect>(tau, hi);
    const WindowMetrics m = evaluate_window(*w, beta);
    if (m.kappa > kappa_max) continue;
    const std::int64_t taps = choose_taps(*w, eps_target);
    if (taps < best_taps) {
      best_taps = taps;
      best.name = name;
      best.mu = mu;
      best.nu = nu;
      best.taps = taps;
      best.kappa = m.kappa;
      best.eps_alias = m.eps_alias;
      best.eps_trunc = eps_target;
      best.window = w;
    }
  }
  SOI_CHECK(best.window != nullptr,
            "design_gauss_rect: no feasible (tau, sigma) for eps="
                << eps_target << " kappa_max=" << kappa_max);
  best.target_snr = -20.0 * std::log10(eps_target);
  return best;
}

SoiProfile make_profile(Accuracy acc) {
  const double snr = target_snr_db(acc);
  const double eps = std::pow(10.0, -snr / 20.0);
  double kappa_max = 0.0;
  std::string name;
  switch (acc) {
    case Accuracy::kFull:
      kappa_max = 16.0;
      name = "soi-full(290dB)";
      break;
    case Accuracy::kHigh:
      kappa_max = 64.0;
      name = "soi-high(250dB)";
      break;
    case Accuracy::kMedium:
      kappa_max = 256.0;
      name = "soi-medium(210dB)";
      break;
    case Accuracy::kLow:
      kappa_max = 1000.0;
      name = "soi-low(170dB)";
      break;
  }
  return design_gauss_rect(5, 4, eps, kappa_max, name);
}

SoiProfile make_gaussian_profile(std::int64_t mu, std::int64_t nu) {
  SOI_CHECK(mu > nu && nu >= 1, "make_gaussian_profile: need mu > nu >= 1");
  const double beta =
      static_cast<double>(mu) / static_cast<double>(nu) - 1.0;
  // Scan sigma for the best achievable kappa*(eps_alias + eps_trunc)
  // estimate; Section 8: at beta = 1/4 this bottoms out near 10 digits.
  double best_err = std::numeric_limits<double>::infinity();
  double best_sigma = 0.0;
  for (double sigma = 4.0; sigma <= 4096.0; sigma *= 1.25) {
    GaussianWindow w(sigma);
    const WindowMetrics m = evaluate_window(w, beta);
    const double err = m.kappa * (m.eps_alias + 1e-17);
    if (err < best_err) {
      best_err = err;
      best_sigma = sigma;
    }
  }
  auto w = std::make_shared<GaussianWindow>(best_sigma);
  const WindowMetrics m = evaluate_window(*w, beta);
  SoiProfile p;
  p.name = "gaussian-window";
  p.mu = mu;
  p.nu = nu;
  // Truncate at the same level as the achievable aliasing error — going
  // finer cannot help (aliasing already dominates).
  p.eps_trunc = std::max(m.eps_alias * 0.1, 1e-16);
  p.taps = choose_taps(*w, p.eps_trunc);
  p.kappa = m.kappa;
  p.eps_alias = m.eps_alias;
  p.target_snr = -20.0 * std::log10(m.kappa * m.eps_alias + 1e-300);
  p.window = std::move(w);
  return p;
}

std::string serialize_profile(const SoiProfile& profile) {
  SOI_CHECK(profile.window != nullptr, "serialize_profile: empty profile");
  std::ostringstream os;
  os.precision(17);
  os << "soiprofile v1"
     << " name=" << (profile.name.empty() ? "unnamed" : profile.name)
     << " mu=" << profile.mu << " nu=" << profile.nu
     << " taps=" << profile.taps << " snr=" << profile.target_snr
     << " kappa=" << profile.kappa << " alias=" << profile.eps_alias
     << " trunc=" << profile.eps_trunc << " window=";
  if (const auto* gr =
          dynamic_cast<const GaussSmoothedRect*>(profile.window.get())) {
    os << "gauss-rect:" << gr->tau() << ":" << gr->sigma();
  } else if (const auto* ga =
                 dynamic_cast<const GaussianWindow*>(profile.window.get())) {
    os << "gaussian:" << ga->sigma();
  } else if (const auto* bs =
                 dynamic_cast<const BSplineWindow*>(profile.window.get())) {
    os << "bspline:" << bs->order();
  } else if (const auto* kb = dynamic_cast<const KaiserBesselWindow*>(
                 profile.window.get())) {
    os << "kaiser-bessel:" << kb->b() << ":" << kb->c();
  } else {
    throw Error("serialize_profile: unsupported window family " +
                profile.window->name());
  }
  return os.str();
}

SoiProfile parse_profile(const std::string& text) {
  std::istringstream is(text);
  std::string magic, version;
  is >> magic >> version;
  SOI_CHECK(magic == "soiprofile" && version == "v1",
            "parse_profile: bad header in '" << text << "'");
  SoiProfile p;
  std::string tok;
  std::string window_spec;
  while (is >> tok) {
    const auto eq = tok.find('=');
    SOI_CHECK(eq != std::string::npos, "parse_profile: bad token " << tok);
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "name") {
      p.name = val;
    } else if (key == "mu") {
      p.mu = std::stoll(val);
    } else if (key == "nu") {
      p.nu = std::stoll(val);
    } else if (key == "taps") {
      p.taps = std::stoll(val);
    } else if (key == "snr") {
      p.target_snr = std::stod(val);
    } else if (key == "kappa") {
      p.kappa = std::stod(val);
    } else if (key == "alias") {
      p.eps_alias = std::stod(val);
    } else if (key == "trunc") {
      p.eps_trunc = std::stod(val);
    } else if (key == "window") {
      window_spec = val;
    } else {
      throw Error("parse_profile: unknown key " + key);
    }
  }
  SOI_CHECK(!window_spec.empty(), "parse_profile: missing window spec");
  const auto c1 = window_spec.find(':');
  SOI_CHECK(c1 != std::string::npos, "parse_profile: bad window spec");
  const std::string family = window_spec.substr(0, c1);
  const std::string params = window_spec.substr(c1 + 1);
  if (family == "gauss-rect") {
    const auto c2 = params.find(':');
    SOI_CHECK(c2 != std::string::npos, "parse_profile: gauss-rect needs tau:sigma");
    p.window = std::make_shared<GaussSmoothedRect>(
        std::stod(params.substr(0, c2)), std::stod(params.substr(c2 + 1)));
  } else if (family == "gaussian") {
    p.window = std::make_shared<GaussianWindow>(std::stod(params));
  } else if (family == "bspline") {
    p.window = std::make_shared<BSplineWindow>(std::stoi(params));
  } else if (family == "kaiser-bessel") {
    const auto c2 = params.find(':');
    SOI_CHECK(c2 != std::string::npos,
              "parse_profile: kaiser-bessel needs b:c");
    p.window = std::make_shared<KaiserBesselWindow>(
        std::stod(params.substr(0, c2)), std::stod(params.substr(c2 + 1)));
  } else {
    throw Error("parse_profile: unknown window family " + family);
  }
  SOI_CHECK(p.mu > p.nu && p.nu >= 1 && p.taps >= 2,
            "parse_profile: inconsistent profile values");
  return p;
}

SoiProfile make_bspline_profile(std::int64_t mu, std::int64_t nu, int order) {
  SOI_CHECK(mu > nu && nu >= 1, "make_bspline_profile: need mu > nu >= 1");
  const double beta =
      static_cast<double>(mu) / static_cast<double>(nu) - 1.0;
  auto w = std::make_shared<BSplineWindow>(order);
  const WindowMetrics m = evaluate_window(*w, beta);
  SoiProfile p;
  p.name = "bspline-" + std::to_string(order);
  p.mu = mu;
  p.nu = nu;
  // Compact time support: B = order covers the spline exactly (keep even).
  p.taps = order + (order % 2);
  p.eps_trunc = 0.0;
  p.kappa = m.kappa;
  p.eps_alias = m.eps_alias;
  p.target_snr = -20.0 * std::log10(m.kappa * m.eps_alias + 1e-300);
  p.window = std::move(w);
  return p;
}

SoiProfile make_kaiser_profile(std::int64_t mu, std::int64_t nu, double b) {
  SOI_CHECK(mu > nu && nu >= 1, "make_kaiser_profile: need mu > nu >= 1");
  const double beta =
      static_cast<double>(mu) / static_cast<double>(nu) - 1.0;
  auto w = std::make_shared<KaiserBesselWindow>(b, 0.5 + beta);
  const WindowMetrics m = evaluate_window(*w, beta);
  SoiProfile p;
  p.name = "kaiser-bessel";
  p.mu = mu;
  p.nu = nu;
  // Polynomially decaying H: pick a pragmatic truncation level; the bench
  // reports the resulting (mediocre) SNR as the ablation result.
  p.eps_trunc = 1e-9;
  p.taps = choose_taps(*w, p.eps_trunc);
  p.kappa = m.kappa;
  p.eps_alias = m.eps_alias;  // exactly zero by construction
  p.target_snr = 180.0;
  p.window = std::move(w);
  return p;
}

}  // namespace soi::win
