#include "window/window.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/types.hpp"

namespace soi::win {

double bessel_i0(double x) {
  const double ax = std::abs(x);
  if (ax < 15.0) {
    // Power series: I0(x) = sum ((x/2)^k / k!)^2 — converges fast here.
    const double q = 0.25 * ax * ax;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < 200; ++k) {
      term *= q / (static_cast<double>(k) * static_cast<double>(k));
      sum += term;
      if (term < sum * 1e-17) break;
    }
    return sum;
  }
  // Asymptotic expansion: I0(x) ~ e^x / sqrt(2 pi x) * sum a_k / x^k with
  // a_k = ((2k)!)^2 / (k!^3 32^k ...) — six terms give ~1e-8 rel. at x=15.
  const double inv = 1.0 / ax;
  const double series =
      1.0 +
      inv * (0.125 +
             inv * (0.0703125 +
                    inv * (0.0732421875 +
                           inv * (0.112152099609375 +
                                  inv * 0.22710800170898438))));
  return std::exp(ax) / std::sqrt(kTwoPi * ax) * series;
}

// --- GaussSmoothedRect -------------------------------------------------------

GaussSmoothedRect::GaussSmoothedRect(double tau, double sigma)
    : tau_(tau), sigma_(sigma) {
  SOI_CHECK(tau > 0.0, "GaussSmoothedRect: tau must be positive");
  SOI_CHECK(sigma > 0.0, "GaussSmoothedRect: sigma must be positive");
}

double GaussSmoothedRect::hhat(double u) const {
  const double rs = std::sqrt(sigma_);
  // (1/tau) * sqrt(pi/sigma)/2 * [erf(rs(u+tau/2)) - erf(rs(u-tau/2))]
  const double a = rs * (u - 0.5 * tau_);
  const double b = rs * (u + 0.5 * tau_);
  return std::sqrt(kPi / sigma_) / (2.0 * tau_) * erf_diff(a, b);
}

double GaussSmoothedRect::h(double t) const {
  const double g = kPi * kPi * t * t / sigma_;
  if (g > 745.0) return 0.0;  // below double underflow anyway
  return sinc(tau_ * t) * std::sqrt(kPi / sigma_) * std::exp(-g);
}

std::string GaussSmoothedRect::name() const {
  return "gauss-rect(tau=" + std::to_string(tau_) +
         ",sigma=" + std::to_string(sigma_) + ")";
}

// --- GaussianWindow ----------------------------------------------------------

GaussianWindow::GaussianWindow(double sigma) : sigma_(sigma) {
  SOI_CHECK(sigma > 0.0, "GaussianWindow: sigma must be positive");
}

double GaussianWindow::hhat(double u) const {
  return std::exp(-sigma_ * u * u);
}

double GaussianWindow::h(double t) const {
  const double g = kPi * kPi * t * t / sigma_;
  if (g > 745.0) return 0.0;
  return std::sqrt(kPi / sigma_) * std::exp(-g);
}

std::string GaussianWindow::name() const {
  return "gaussian(sigma=" + std::to_string(sigma_) + ")";
}

// --- KaiserBesselWindow ------------------------------------------------------

KaiserBesselWindow::KaiserBesselWindow(double b, double c)
    : b_(b), c_(c), i0b_(bessel_i0(b)) {
  SOI_CHECK(b > 0.0, "KaiserBessel: shape b must be positive");
  SOI_CHECK(c > 0.0, "KaiserBessel: support half-width c must be positive");
}

double KaiserBesselWindow::hhat(double u) const {
  const double r = u / c_;
  if (std::abs(r) >= 1.0) return 0.0;
  return bessel_i0(b_ * std::sqrt(1.0 - r * r)) / i0b_;
}

double KaiserBesselWindow::h(double t) const {
  // FT of the compact Kaiser-Bessel bump: (2c/I0(b)) * sinh(s)/s with
  // s = sqrt(b^2 - (2 pi c t)^2); analytic continuation to sin for s^2 < 0.
  const double x = kTwoPi * c_ * t;
  const double s2 = b_ * b_ - x * x;
  double core;
  if (s2 > 0.0) {
    const double s = std::sqrt(s2);
    core = (s < 1e-8) ? 1.0 + s2 / 6.0 : std::sinh(s) / s;
  } else {
    const double s = std::sqrt(-s2);
    core = (s < 1e-8) ? 1.0 - s * s / 6.0 : std::sin(s) / s;
  }
  return 2.0 * c_ / i0b_ * core;
}

std::string KaiserBesselWindow::name() const {
  return "kaiser-bessel(b=" + std::to_string(b_) + ",c=" + std::to_string(c_) +
         ")";
}

// --- BSplineWindow -------------------------------------------------------------

BSplineWindow::BSplineWindow(int order) : order_(order) {
  SOI_CHECK(order >= 1 && order <= 60,
            "BSplineWindow: order must be in [1, 60], got " << order);
}

double BSplineWindow::hhat(double u) const {
  double v = 1.0;
  const double s = sinc(u);
  for (int i = 0; i < order_; ++i) v *= s;
  return v;
}

double BSplineWindow::h(double t) const {
  // Centred cardinal B-spline of order m via Cox-de Boor on knots
  // 0, 1, ..., m: N_m(x) with x = t + m/2; zero outside [0, m].
  const int m = order_;
  const double x = t + 0.5 * static_cast<double>(m);
  if (x <= 0.0 || x >= static_cast<double>(m)) return 0.0;
  // Degree-0 pieces: indicator of [i, i+1).
  std::vector<double> coef(static_cast<std::size_t>(m), 0.0);
  const int cell = static_cast<int>(x);
  coef[static_cast<std::size_t>(std::min(cell, m - 1))] = 1.0;
  // Elevate degree: N_{i,k}(x) combines N_{i,k-1} and N_{i+1,k-1}.
  for (int k = 1; k < m; ++k) {
    for (int i = 0; i + k < m; ++i) {
      const double a = (x - i) / static_cast<double>(k) *
                       coef[static_cast<std::size_t>(i)];
      const double b = (static_cast<double>(i + k + 1) - x) /
                       static_cast<double>(k) *
                       coef[static_cast<std::size_t>(i + 1)];
      coef[static_cast<std::size_t>(i)] = a + b;
    }
  }
  return coef[0];
}

std::string BSplineWindow::name() const {
  return "bspline(order=" + std::to_string(order_) + ")";
}

}  // namespace soi::win
