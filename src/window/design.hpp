// Window design (paper, Section 4): quantifies a reference window's
// condition number kappa and aliasing leak eps_alias, picks the truncation
// width B for a target eps_trunc, and searches the (tau, sigma) plane for
// profiles meeting an accuracy target — including the reduced-accuracy
// profiles behind the paper's accuracy/performance tradeoff (Fig. 7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "window/window.hpp"

namespace soi::win {

/// Quality metrics of a reference window at oversampling beta.
struct WindowMetrics {
  /// kappa = max / min of |Hhat| over the band [-1/2, 1/2] (condition
  /// number of the demodulation, Section 4 (b)).
  double kappa = 0.0;
  /// eps_alias = out-of-band mass / in-band mass:
  ///   integral_{|u| >= 1/2 + beta} |Hhat| / integral_{-1/2}^{1/2} |Hhat|.
  double eps_alias = 0.0;
};

/// Evaluate kappa and eps_alias by dense sampling (robust for every window
/// family, including compact support).
WindowMetrics evaluate_window(const Window& w, double beta);

/// Generalised band geometry: kappa over [-band_half, band_half], aliasing
/// as the worst pointwise |Hhat| beyond |u| >= alias_start (summed over
/// periodisation images spaced `image_period` apart), relative to the peak.
/// evaluate_window(w, beta) == evaluate_window_bands(w, 0.5, 0.5 + beta,
/// 1 + 2*beta). The NUFFT gridder uses a different geometry (band 1/4,
/// alias from 3/4 at 2x oversampling).
WindowMetrics evaluate_window_bands(const Window& w, double band_half,
                                    double alias_start, double image_period);

/// Smallest even B such that the tail mass of |H| beyond |t| >= B/2 is at
/// most eps_trunc of its total mass (Section 4's truncation rule).
std::int64_t choose_taps(const Window& w, double eps_trunc);

/// Accuracy presets for the Fig. 7 tradeoff. Target SNR in dB:
/// kFull ~ 290 (the paper's flagship setting), then progressively relaxed.
enum class Accuracy { kFull, kHigh, kMedium, kLow };

/// Target SNR in dB for a preset.
double target_snr_db(Accuracy acc);

/// A complete algorithm configuration: oversampling ratio mu/nu, taps B,
/// the reference window, and its quality numbers. Everything the SOI plans
/// need that does not depend on the transform size.
struct SoiProfile {
  std::string name;
  std::int64_t mu = 5;    ///< oversampling numerator
  std::int64_t nu = 4;    ///< oversampling denominator (1+beta = mu/nu)
  std::int64_t taps = 0;  ///< B: blocks of P taps per convolution row
  double target_snr = 0.0;   ///< design SNR target, dB
  double kappa = 0.0;
  double eps_alias = 0.0;
  double eps_trunc = 0.0;
  std::shared_ptr<const Window> window;

  [[nodiscard]] double beta() const {
    return static_cast<double>(mu) / static_cast<double>(nu) - 1.0;
  }
  [[nodiscard]] double oversampling() const {
    return static_cast<double>(mu) / static_cast<double>(nu);
  }
};

/// Design a (tau, sigma) profile: smallest B whose window satisfies
/// eps_alias <= eps_target and kappa <= kappa_max at beta = mu/nu - 1.
SoiProfile design_gauss_rect(std::int64_t mu, std::int64_t nu,
                             double eps_target, double kappa_max,
                             const std::string& name);

/// Preset profiles at the paper's beta = 1/4 (mu=5, nu=4). kFull lands in
/// the regime the paper reports: B in the ~70s, SNR ~ 290 dB.
SoiProfile make_profile(Accuracy acc);

/// Serialise a profile to a single text line ("wisdom"): skips the design
/// search on the next run. Round-trips every field including the window
/// family and its parameters. Supported families: gauss-rect, gaussian,
/// bspline, kaiser-bessel.
std::string serialize_profile(const SoiProfile& profile);

/// Parse a profile produced by serialize_profile(); throws soi::Error on
/// malformed input or an unknown window family.
SoiProfile parse_profile(const std::string& text);

/// One-parameter Gaussian profile (Section 8's discussion: accuracy capped
/// near 10 digits at beta = 1/4). Picks sigma minimising the estimated
/// error kappa * (eps_alias + eps_trunc).
SoiProfile make_gaussian_profile(std::int64_t mu, std::int64_t nu);

/// B-spline profile: compact TIME support, so eps_trunc is exactly zero
/// and B = order; the error budget is pure aliasing (sinc^order decay)
/// times a sizeable kappa. Mid-accuracy niche; the dual of Kaiser-Bessel.
SoiProfile make_bspline_profile(std::int64_t mu, std::int64_t nu, int order);

/// Kaiser-Bessel profile with compact support (zero aliasing). Included as
/// a documented *negative* ablation: the edge discontinuity of its Hhat
/// makes H decay only polynomially, so B explodes for high accuracy —
/// evidence for why the paper's smooth two-parameter family is preferred.
SoiProfile make_kaiser_profile(std::int64_t mu, std::int64_t nu, double b);

}  // namespace soi::win
