// FFT-engine ABI and registry: the pluggable counterpart of net::Transport
// for the compute side. The SOI pipeline's local FFT stages are written
// against the abstract BatchTransformT surface below; which concrete
// executor sits behind it is a named, registered choice:
//
//   * "batch"  — the SIMD batch executor (fft/batch.hpp): split-complex
//                SoA kernels vectorized ACROSS transforms, fused strided
//                load/store. The default.
//   * "scalar" — one FftPlan transform at a time (fft/plan.hpp), strided
//                layouts handled by gather/scatter staging. The portable
//                reference point the autotuner prices SIMD speedups
//                against.
//   * "fftw"   — thin wrapper over FFTW's plan_many interface, built only
//                with -DSOI_WITH_FFTW=ON. Absent from default builds;
//                asking for it then names the build flag in the error.
//
// PlanRegistry keys and wisdom records carry the engine name (wisdom v5),
// so a plan tuned against one executor is never silently replayed on
// another. Lookup of an unknown engine throws soi::InvalidArgumentError
// listing every registered engine; registration is exactly-once per name,
// lazily performed on first registry use (same lifecycle as the transport
// registry — no static-init-order or dead-TU-stripping hazards).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fft/batch.hpp"

namespace soi::fft {

/// Abstract batched-FFT surface — exactly what the SOI pipeline stages
/// consume. Immutable and thread-safe after construction (concurrent
/// execute calls own their scratch), like the executors behind it.
template <class Real>
class BatchTransformT {
 public:
  virtual ~BatchTransformT() = default;

  [[nodiscard]] virtual std::int64_t size() const = 0;
  /// Requested transforms-per-pass (the autotuner knob); 1 on engines that
  /// run transforms one at a time.
  [[nodiscard]] virtual std::int64_t batch_width() const = 0;
  /// Width a batch of `count` actually runs at after clamping.
  [[nodiscard]] virtual std::int64_t effective_width(
      std::int64_t count) const = 0;
  /// Per-thread scratch bytes one execute of `count` transforms needs —
  /// the workspace planner accounts for this when sizing arenas.
  [[nodiscard]] virtual std::int64_t scratch_bytes(
      std::int64_t count) const = 0;

  /// `count` transforms over contiguous length-n chunks, out-of-place.
  /// Forward uses exp(-i 2 pi jk/n); inverse includes the 1/n scaling.
  virtual void forward(cspan_t<Real> in, mspan_t<Real> out,
                       std::int64_t count) const = 0;
  virtual void inverse(cspan_t<Real> in, mspan_t<Real> out,
                       std::int64_t count) const = 0;

  /// Fully general layouts (see BatchLayout); `in`/`out` must not alias.
  virtual void forward_strided(cspan_t<Real> in, BatchLayout lin,
                               mspan_t<Real> out, BatchLayout lout,
                               std::int64_t count) const = 0;
  virtual void inverse_strided(cspan_t<Real> in, BatchLayout lin,
                               mspan_t<Real> out, BatchLayout lout,
                               std::int64_t count) const = 0;
};

using BatchTransform = BatchTransformT<double>;
using BatchTransformF = BatchTransformT<float>;

/// Static description of one registered engine — the modeled scorer reads
/// compute_scale to price candidates per engine without running them.
struct EngineInfo {
  /// Registered name ("batch", "scalar", "fftw").
  const char* name = "?";
  /// Kernels vectorize across transforms (SoA batch regime).
  bool simd_batched = false;
  /// Modeled per-point throughput relative to the "batch" engine (1.0);
  /// the autotuner's modeled scorer multiplies compute times by 1/scale.
  double compute_scale = 1.0;
};

template <class Real>
using EngineFactoryT =
    std::function<std::unique_ptr<const BatchTransformT<Real>>(
        std::int64_t n, std::int64_t batch_width)>;

/// Process-wide, thread-safe engine table; mirrors TransportRegistry's
/// contract (lazy built-ins, exactly-once registration, typed errors).
class EngineRegistry {
 public:
  static EngineRegistry& instance();

  /// Register an engine under info.name with factories for both
  /// precisions. Throws soi::InvalidArgumentError if the name is empty or
  /// already registered.
  void register_engine(EngineInfo info, EngineFactoryT<double> make_double,
                       EngineFactoryT<float> make_float);

  /// Static engine description; throws soi::InvalidArgumentError naming
  /// every registered engine when `name` is unknown.
  const EngineInfo& info(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registered engine names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Build a batched plan of size n on the named engine ("" = default).
  std::unique_ptr<const BatchTransform> make(const std::string& name,
                                             std::int64_t n,
                                             std::int64_t batch_width) const;
  std::unique_ptr<const BatchTransformF> make_f(const std::string& name,
                                                std::int64_t n,
                                                std::int64_t batch_width) const;

 private:
  EngineRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// The engine name an empty selection resolves to: $SOI_FFT_ENGINE when
/// set (and non-empty), else "batch".
std::string default_engine();

/// Convenience: EngineRegistry::instance().make(engine, n, batch_width).
std::unique_ptr<const BatchTransform> make_batch_plan(
    const std::string& engine, std::int64_t n, std::int64_t batch_width = 0);

/// Precision-dispatched convenience for templated plan owners.
template <class Real>
std::unique_ptr<const BatchTransformT<Real>> make_batch_plan_t(
    const std::string& engine, std::int64_t n, std::int64_t batch_width = 0);

template <>
inline std::unique_ptr<const BatchTransformT<double>> make_batch_plan_t<double>(
    const std::string& engine, std::int64_t n, std::int64_t batch_width) {
  return EngineRegistry::instance().make(engine, n, batch_width);
}

template <>
inline std::unique_ptr<const BatchTransformT<float>> make_batch_plan_t<float>(
    const std::string& engine, std::int64_t n, std::int64_t batch_width) {
  return EngineRegistry::instance().make_f(engine, n, batch_width);
}

}  // namespace soi::fft
