// Batch-vectorized FFT executor: runs V same-size transforms per pass in a
// split-complex (structure-of-arrays) layout so every radix butterfly
// operates on contiguous Real lanes — the "vector across transforms"
// regime the paper's local FFT stages (I_M' (x) F_P and I_P (x) F_M',
// Eq. 6) live in.
//
// Differences from the per-transform engine behind FftPlan:
//   * split-complex SoA working set: re/im of lane v, element j at
//     [j*V + v] in two separate Real arrays — unit-stride vector loads for
//     every butterfly leg, twiddles splat across lanes,
//   * explicitly vectorized kernels: compile-time width templates over
//     Real lanes, dispatched at runtime on the detected ISA
//     (scalar / SSE2 / AVX2 / AVX-512 — the convolve.cpp tile pattern),
//   * a radix-8 pass shortening power-of-two schedules by a third,
//   * fused strided data movement: the batch's input/output layouts are
//     parameters, so the stride-P permutation between the SOI pipeline's
//     two FFT stages (and NdFft's inter-axis transposes) become the
//     cache-blocked load/store phases of the batch pass instead of
//     separate sweeps over memory,
//   * OpenMP parallelism over batch chunks of V transforms.
//
// Non-smooth sizes run BATCHED Rader / Bluestein: the permutation, chirp
// and pointwise-kernel steps are uniform across a batch, so the inner
// smooth transforms execute through this same executor at full width.
//
// Thread-safe after construction: concurrent execute calls allocate their
// own scratch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "fft/simd.hpp"

namespace soi::fft {

/// Memory layout of a batch of transforms sharing one buffer: element j of
/// transform b lives at data[b*batch_stride + j*elem_stride].
///   contiguous batch (I_count (x) F_n): {n, 1}
///   interleaved batch (F_n (x) I_count): {1, count}
/// A store layout of {1, count} writes the transpose of a contiguous
/// input directly — this is how the SOI stride-P permutation and NdFft's
/// axis rotations fuse into the batch pass.
struct BatchLayout {
  std::int64_t batch_stride = 0;
  std::int64_t elem_stride = 1;
};

namespace detail {
template <class Real>
class BatchEngine;
}

/// Reusable, immutable batched FFT plan for a fixed size n.
template <class Real>
class BatchFftT {
 public:
  using C = cplx_t<Real>;

  /// `batch_width` = transforms per SoA pass (the autotuner knob); 0 picks
  /// a width from the detected SIMD tier and a scratch budget.
  explicit BatchFftT(std::int64_t n, std::int64_t batch_width = 0);
  ~BatchFftT();
  BatchFftT(BatchFftT&&) noexcept;
  BatchFftT& operator=(BatchFftT&&) noexcept;
  BatchFftT(const BatchFftT&) = delete;
  BatchFftT& operator=(const BatchFftT&) = delete;

  [[nodiscard]] std::int64_t size() const { return n_; }
  /// Requested width (0 = auto); effective_width() is what a batch of
  /// `count` actually runs at after clamping to count and the scratch cap.
  [[nodiscard]] std::int64_t batch_width() const { return width_; }
  [[nodiscard]] std::int64_t effective_width(std::int64_t count) const;
  /// Dispatch tier the kernels run at on this machine.
  [[nodiscard]] SimdTier simd_tier() const;

  /// Per-thread scratch bytes one execute of a batch of `count` needs
  /// (SoA ping-pong planes for smooth sizes; staging chunks plus the
  /// recursive sub-transform's scratch for Rader/Bluestein). Smooth sizes
  /// keep this in persistent per-thread storage — allocated on a thread's
  /// first execute, reused afterwards — which is what makes steady-state
  /// pipeline execution allocation-free; the workspace planner queries
  /// this to account for it.
  [[nodiscard]] std::int64_t scratch_bytes(std::int64_t count) const;

  /// `count` transforms over contiguous length-n chunks, out-of-place.
  /// Forward uses exp(-i 2 pi jk/n); inverse includes the 1/n scaling.
  void forward(cspan_t<Real> in, mspan_t<Real> out, std::int64_t count) const;
  void inverse(cspan_t<Real> in, mspan_t<Real> out, std::int64_t count) const;

  /// Fully general layouts: gather/scatter are fused into the SoA
  /// load/store phases (cache-blocked, vector-wide when a stride is 1).
  /// `in` and `out` must not alias. Spans must cover every addressed
  /// element (max index + 1).
  void forward_strided(cspan_t<Real> in, BatchLayout lin, mspan_t<Real> out,
                       BatchLayout lout, std::int64_t count) const;
  void inverse_strided(cspan_t<Real> in, BatchLayout lin, mspan_t<Real> out,
                       BatchLayout lout, std::int64_t count) const;

 private:
  std::int64_t n_;
  std::int64_t width_;
  std::unique_ptr<detail::BatchEngine<Real>> engine_;
};

extern template class BatchFftT<double>;
extern template class BatchFftT<float>;

using BatchFft = BatchFftT<double>;
using BatchFftF = BatchFftT<float>;

/// Contiguous layout helper for size n.
inline BatchLayout contiguous_layout(std::int64_t n) { return {n, 1}; }
/// Interleaved (Kronecker F_n (x) I_count) layout helper.
inline BatchLayout interleaved_layout(std::int64_t count) {
  return {1, count};
}

}  // namespace soi::fft
