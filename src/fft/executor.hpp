// Internal executor interface behind FftPlan. Not part of the public API.
#pragma once

#include <cstddef>
#include <memory>

#include "common/types.hpp"

namespace soi::fft::detail {

/// Strategy object: immutable after construction, thread-safe execution
/// provided each call gets its own workspace. Templated on the working
/// precision (double and float instantiations are compiled).
template <class Real>
class ExecutorT {
 public:
  using C = cplx_t<Real>;

  virtual ~ExecutorT() = default;

  /// Complex scratch elements required by forward()/inverse().
  [[nodiscard]] virtual std::size_t work_elems() const = 0;

  /// out[k] = sum_j in[j] exp(-2 pi i jk / n). No aliasing among args.
  virtual void forward(const C* in, C* out, C* work) const = 0;

  /// out[j] = (1/n) sum_k in[k] exp(+2 pi i jk / n). No aliasing among args.
  virtual void inverse(const C* in, C* out, C* work) const = 0;

  /// Optional fast path for `count` INTERLEAVED transforms (the Kronecker
  /// form F_n (x) I_count: element j of transform c lives at
  /// [j*count + c]). Buffers are n*count elements; `work` likewise.
  /// Returns false when the strategy has no native interleaved path (the
  /// plan then falls back to gather/scatter).
  virtual bool forward_interleaved(const C*, C*, C*, std::int64_t) const {
    return false;
  }
  virtual bool inverse_interleaved(const C*, C*, C*, std::int64_t) const {
    return false;
  }
};

using Executor = ExecutorT<double>;

/// Factories (defined in rader.cpp / bluestein.cpp, instantiated for
/// double and float).
template <class Real>
std::unique_ptr<ExecutorT<Real>> make_rader_executor(std::int64_t prime);
template <class Real>
std::unique_ptr<ExecutorT<Real>> make_bluestein_executor(std::int64_t n);

}  // namespace soi::fft::detail
