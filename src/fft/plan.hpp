// Plan-based 1-D complex FFT engine — the node-local building block the
// paper takes from Intel MKL (Fig. 2: "Intel MKL FFTs ... are used as
// building blocks"). Here it is implemented from scratch:
//   * iterative mixed-radix Stockham (autosort, no bit reversal) for sizes
//     whose prime factors are <= 13, with hard-coded radix 2/3/4/5 kernels,
//   * Rader's algorithm for prime sizes (length p-1 cyclic convolution),
//   * Bluestein's chirp-z fallback for any remaining size,
// with native inverse paths and batched execution (I_m (x) F_n).
//
// Precision: the engine is templated on the real scalar and instantiated
// for double (FftPlan) and float (FftPlanF), like FFTW's d/f libraries.
//
// Conventions: forward uses exp(-i 2 pi jk / n); inverse includes the 1/n
// scaling, so inverse(forward(x)) == x.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"

namespace soi::fft {

enum class Strategy {
  kIdentity,    ///< n == 1
  kMixedRadix,  ///< smooth n: Stockham with radix schedule
  kRader,       ///< prime n > 13
  kBluestein,   ///< everything else (non-smooth composite)
};

namespace detail {
template <class Real>
class ExecutorT;
}

template <class Real>
class BatchFftT;

/// Reusable, immutable, thread-safe FFT plan for a fixed size n.
/// Create once, execute many times; concurrent execute calls are safe as
/// long as each call supplies its own workspace (the convenience overloads
/// allocate one per call).
template <class Real>
class FftPlanT {
 public:
  using C = cplx_t<Real>;

  explicit FftPlanT(std::int64_t n);
  ~FftPlanT();
  FftPlanT(FftPlanT&&) noexcept;
  FftPlanT& operator=(FftPlanT&&) noexcept;
  FftPlanT(const FftPlanT&) = delete;
  FftPlanT& operator=(const FftPlanT&) = delete;

  [[nodiscard]] std::int64_t size() const { return n_; }
  [[nodiscard]] Strategy strategy() const { return strategy_; }

  /// Complex elements of scratch required by the workspace overloads.
  [[nodiscard]] std::size_t workspace_size() const;

  /// Scratch BYTES one execution needs beyond in/out: the per-call work
  /// buffer for count == 1, the batched executor's per-thread SoA planes
  /// for count > 1. The pipeline workspace planner (soi::WorkspaceArena
  /// callers) uses this to account for every transform's footprint at
  /// plan time.
  [[nodiscard]] std::int64_t workspace_bytes(std::int64_t count = 1) const;

  /// Forward DFT, out-of-place. `in` and `out` are n elements and must not
  /// alias each other or `work`; `work` needs workspace_size() elements.
  void forward(cspan_t<Real> in, mspan_t<Real> out, mspan_t<Real> work) const;

  /// Inverse DFT (scaled by 1/n), same buffer contract as forward().
  void inverse(cspan_t<Real> in, mspan_t<Real> out, mspan_t<Real> work) const;

  /// Convenience overloads that allocate the workspace internally.
  void forward(cspan_t<Real> in, mspan_t<Real> out) const;
  void inverse(cspan_t<Real> in, mspan_t<Real> out) const;

  /// `count` independent transforms over contiguous length-n chunks
  /// (the Kronecker product I_count (x) F_n). count > 1 routes through the
  /// batch-vectorized SoA executor (see fft/batch.hpp); OpenMP-parallel
  /// across chunks of its batch width.
  void forward_batch(cspan_t<Real> in, mspan_t<Real> out,
                     std::int64_t count) const;
  void inverse_batch(cspan_t<Real> in, mspan_t<Real> out,
                     std::int64_t count) const;

  /// `count` INTERLEAVED transforms (the Kronecker product F_n (x)
  /// I_count): element j of transform c lives at index j*count + c.
  /// count > 1 runs through the batched SoA executor with the interleave
  /// fused into its load/store phases (no transposes). Useful for
  /// transforming the non-contiguous axis of a multi-dimensional array in
  /// place of an explicit transpose.
  void forward_interleaved(cspan_t<Real> in, mspan_t<Real> out,
                           std::int64_t count) const;
  void inverse_interleaved(cspan_t<Real> in, mspan_t<Real> out,
                           std::int64_t count) const;

  /// Radix schedule (empty unless strategy is kMixedRadix).
  [[nodiscard]] const std::vector<std::int64_t>& radices() const {
    return radices_;
  }

 private:
  std::int64_t n_;
  Strategy strategy_;
  std::vector<std::int64_t> radices_;
  std::unique_ptr<detail::ExecutorT<Real>> exec_;
  std::unique_ptr<BatchFftT<Real>> batch_;
};

extern template class FftPlanT<double>;
extern template class FftPlanT<float>;

/// The double-precision plan used throughout the SOI pipeline.
using FftPlan = FftPlanT<double>;
/// Single-precision plan (the "6-digit" regime Section 7.3 refers to).
using FftPlanF = FftPlanT<float>;

/// Plan cache keyed by size: the SOI pipeline repeatedly needs F_P, F_M'
/// and Bluestein sub-transforms; this avoids re-planning in inner loops.
/// Not thread-safe for concurrent insertion; construct plans up-front.
template <class Real>
class PlanCacheT {
 public:
  /// Get (or create) the plan for size n. The reference stays valid for the
  /// lifetime of the cache.
  const FftPlanT<Real>& get(std::int64_t n) {
    for (const auto& p : plans_) {
      if (p->size() == n) return *p;
    }
    plans_.push_back(std::make_unique<FftPlanT<Real>>(n));
    return *plans_.back();
  }

  [[nodiscard]] std::size_t size() const { return plans_.size(); }

 private:
  std::vector<std::unique_ptr<FftPlanT<Real>>> plans_;
};

using PlanCache = PlanCacheT<double>;

}  // namespace soi::fft
