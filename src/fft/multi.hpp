// Multi-dimensional FFT on top of the batched 1-D engine (row-column
// method). The inter-axis transposes are not separate sweeps: each round
// is one batched transform whose strided store phase writes the rotated
// layout directly (fft/batch.hpp). Covers the paper's "generalize to
// higher-dimensional FFTs" direction at the substrate level and gives the
// examples a 2-D/3-D-capable transform.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "fft/batch.hpp"

namespace soi::fft {

/// N-dimensional complex FFT over a row-major dense array.
/// Axis order convention: dims = {d0, d1, ..., dk-1} with dk-1 contiguous.
class NdFft {
 public:
  explicit NdFft(std::vector<std::int64_t> dims);

  [[nodiscard]] std::int64_t size() const { return total_; }
  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Forward transform (exp(-i 2 pi ...) along every axis), out-of-place.
  void forward(cspan in, mspan out) const;

  /// Inverse transform, scaled by 1/size().
  void inverse(cspan in, mspan out) const;

 private:
  template <bool Inverse>
  void run(cspan in, mspan out) const;

  std::vector<std::int64_t> dims_;
  std::int64_t total_;
  std::vector<std::unique_ptr<BatchFft>> owned_;  // one per distinct size
  std::vector<const BatchFft*> plans_;            // one per axis
};

}  // namespace soi::fft
