#include "fft/dft.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace soi::fft {

void dft_direct(cspan in, mspan out) {
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  SOI_CHECK(out.size() >= in.size(), "dft_direct: output too small");
  SOI_CHECK(in.data() != out.data(), "dft_direct: in-place not supported");
  for (std::int64_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::int64_t j = 0; j < n; ++j) {
      // (j*k) mod n via 128-bit-safe mulmod: exact for any test size.
      const auto e = static_cast<std::int64_t>(
          mulmod(static_cast<std::uint64_t>(j), static_cast<std::uint64_t>(k),
                 static_cast<std::uint64_t>(n)));
      acc += in[static_cast<std::size_t>(j)] * omega(e, n);
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
}

void idft_direct(cspan in, mspan out) {
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  SOI_CHECK(out.size() >= in.size(), "idft_direct: output too small");
  SOI_CHECK(in.data() != out.data(), "idft_direct: in-place not supported");
  const double scale = 1.0 / static_cast<double>(n);
  for (std::int64_t j = 0; j < n; ++j) {
    cplx acc{0.0, 0.0};
    for (std::int64_t k = 0; k < n; ++k) {
      const auto e = static_cast<std::int64_t>(
          mulmod(static_cast<std::uint64_t>(j), static_cast<std::uint64_t>(k),
                 static_cast<std::uint64_t>(n)));
      acc += in[static_cast<std::size_t>(k)] * std::conj(omega(e, n));
    }
    out[static_cast<std::size_t>(j)] = acc * scale;
  }
}

cplx dft_bin(cspan in, std::int64_t k) {
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  cplx acc{0.0, 0.0};
  for (std::int64_t j = 0; j < n; ++j) {
    const auto e = static_cast<std::int64_t>(
        mulmod(static_cast<std::uint64_t>(j),
               static_cast<std::uint64_t>(pmod(k, n)),
               static_cast<std::uint64_t>(n)));
    acc += in[static_cast<std::size_t>(j)] * omega(e, n);
  }
  return acc;
}

}  // namespace soi::fft
