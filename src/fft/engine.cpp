#include "fft/engine.hpp"

#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/env.hpp"
#include "common/error.hpp"
#include "fft/plan.hpp"

#ifdef SOI_WITH_FFTW
#include <fftw3.h>
#endif

namespace soi::fft {

namespace {

// ---------------------------------------------------------------------------
// "batch" — the SIMD batch executor behind the abstract surface
// ---------------------------------------------------------------------------

template <class Real>
class BatchAdapterT final : public BatchTransformT<Real> {
 public:
  BatchAdapterT(std::int64_t n, std::int64_t batch_width)
      : fft_(n, batch_width) {}

  [[nodiscard]] std::int64_t size() const override { return fft_.size(); }
  [[nodiscard]] std::int64_t batch_width() const override {
    return fft_.batch_width();
  }
  [[nodiscard]] std::int64_t effective_width(
      std::int64_t count) const override {
    return fft_.effective_width(count);
  }
  [[nodiscard]] std::int64_t scratch_bytes(std::int64_t count) const override {
    return fft_.scratch_bytes(count);
  }
  void forward(cspan_t<Real> in, mspan_t<Real> out,
               std::int64_t count) const override {
    fft_.forward(in, out, count);
  }
  void inverse(cspan_t<Real> in, mspan_t<Real> out,
               std::int64_t count) const override {
    fft_.inverse(in, out, count);
  }
  void forward_strided(cspan_t<Real> in, BatchLayout lin, mspan_t<Real> out,
                       BatchLayout lout, std::int64_t count) const override {
    fft_.forward_strided(in, lin, out, lout, count);
  }
  void inverse_strided(cspan_t<Real> in, BatchLayout lin, mspan_t<Real> out,
                       BatchLayout lout, std::int64_t count) const override {
    fft_.inverse_strided(in, lin, out, lout, count);
  }

 private:
  BatchFftT<Real> fft_;
};

// ---------------------------------------------------------------------------
// "scalar" — one FftPlan transform at a time, strided via gather/scatter
// ---------------------------------------------------------------------------

template <class Real>
class ScalarBatchT final : public BatchTransformT<Real> {
 public:
  using C = cplx_t<Real>;

  explicit ScalarBatchT(std::int64_t n) : plan_(n) {}

  [[nodiscard]] std::int64_t size() const override { return plan_.size(); }
  [[nodiscard]] std::int64_t batch_width() const override { return 1; }
  [[nodiscard]] std::int64_t effective_width(std::int64_t) const override {
    return 1;
  }
  [[nodiscard]] std::int64_t scratch_bytes(std::int64_t) const override {
    // Plan workspace plus the two length-n staging chunks the strided
    // paths gather/scatter through.
    return plan_.workspace_bytes(1) +
           2 * plan_.size() * static_cast<std::int64_t>(sizeof(C));
  }

  void forward(cspan_t<Real> in, mspan_t<Real> out,
               std::int64_t count) const override {
    run_contiguous(in, out, count, /*fwd=*/true);
  }
  void inverse(cspan_t<Real> in, mspan_t<Real> out,
               std::int64_t count) const override {
    run_contiguous(in, out, count, /*fwd=*/false);
  }
  void forward_strided(cspan_t<Real> in, BatchLayout lin, mspan_t<Real> out,
                       BatchLayout lout, std::int64_t count) const override {
    run_strided(in, lin, out, lout, count, /*fwd=*/true);
  }
  void inverse_strided(cspan_t<Real> in, BatchLayout lin, mspan_t<Real> out,
                       BatchLayout lout, std::int64_t count) const override {
    run_strided(in, lin, out, lout, count, /*fwd=*/false);
  }

 private:
  void run_contiguous(cspan_t<Real> in, mspan_t<Real> out, std::int64_t count,
                      bool fwd) const {
    const auto n = static_cast<std::size_t>(plan_.size());
    std::vector<C> work(plan_.workspace_size());
    for (std::int64_t b = 0; b < count; ++b) {
      const auto off = static_cast<std::size_t>(b) * n;
      const auto src = in.subspan(off, n);
      const auto dst = out.subspan(off, n);
      if (fwd) {
        plan_.forward(src, dst, std::span<C>(work));
      } else {
        plan_.inverse(src, dst, std::span<C>(work));
      }
    }
  }

  void run_strided(cspan_t<Real> in, BatchLayout lin, mspan_t<Real> out,
                   BatchLayout lout, std::int64_t count, bool fwd) const {
    const std::int64_t n = plan_.size();
    std::vector<C> work(plan_.workspace_size());
    std::vector<C> src(static_cast<std::size_t>(n));
    std::vector<C> dst(static_cast<std::size_t>(n));
    for (std::int64_t b = 0; b < count; ++b) {
      for (std::int64_t j = 0; j < n; ++j) {
        src[static_cast<std::size_t>(j)] = in[static_cast<std::size_t>(
            b * lin.batch_stride + j * lin.elem_stride)];
      }
      if (fwd) {
        plan_.forward(std::span<const C>(src), std::span<C>(dst),
                      std::span<C>(work));
      } else {
        plan_.inverse(std::span<const C>(src), std::span<C>(dst),
                      std::span<C>(work));
      }
      for (std::int64_t j = 0; j < n; ++j) {
        out[static_cast<std::size_t>(b * lout.batch_stride +
                                     j * lout.elem_stride)] =
            dst[static_cast<std::size_t>(j)];
      }
    }
  }

  FftPlanT<Real> plan_;
};

#ifdef SOI_WITH_FFTW

// ---------------------------------------------------------------------------
// "fftw" — FFTW's plan_many interface (double precision; float via the
// fftwf API). Built only with -DSOI_WITH_FFTW=ON.
// ---------------------------------------------------------------------------

class FftwBatchD final : public BatchTransformT<double> {
 public:
  explicit FftwBatchD(std::int64_t n) : n_(n) {}

  [[nodiscard]] std::int64_t size() const override { return n_; }
  [[nodiscard]] std::int64_t batch_width() const override { return 1; }
  [[nodiscard]] std::int64_t effective_width(std::int64_t) const override {
    return 1;
  }
  [[nodiscard]] std::int64_t scratch_bytes(std::int64_t) const override {
    return 0;  // FFTW owns its scratch
  }

  void forward(cspan_t<double> in, mspan_t<double> out,
               std::int64_t count) const override {
    run(in.data(), out.data(), count, FFTW_FORWARD, /*scale=*/false);
  }
  void inverse(cspan_t<double> in, mspan_t<double> out,
               std::int64_t count) const override {
    run(in.data(), out.data(), count, FFTW_BACKWARD, /*scale=*/true);
    const double s = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n_ * count); ++i) {
      out[i] *= s;
    }
  }
  void forward_strided(cspan_t<double> in, BatchLayout lin,
                       mspan_t<double> out, BatchLayout lout,
                       std::int64_t count) const override {
    run_strided(in, lin, out, lout, count, FFTW_FORWARD, false);
  }
  void inverse_strided(cspan_t<double> in, BatchLayout lin,
                       mspan_t<double> out, BatchLayout lout,
                       std::int64_t count) const override {
    run_strided(in, lin, out, lout, count, FFTW_BACKWARD, true);
    const double s = 1.0 / static_cast<double>(n_);
    for (std::int64_t b = 0; b < count; ++b) {
      for (std::int64_t j = 0; j < n_; ++j) {
        out[static_cast<std::size_t>(b * lout.batch_stride +
                                     j * lout.elem_stride)] *= s;
      }
    }
  }

 private:
  void run(const cplx* in, cplx* out, std::int64_t count, int sign,
           bool) const {
    const int n = static_cast<int>(n_);
    // FFTW_ESTIMATE keeps planning cheap and the input untouched.
    fftw_plan p = fftw_plan_many_dft(
        1, &n, static_cast<int>(count),
        const_cast<fftw_complex*>(reinterpret_cast<const fftw_complex*>(in)),
        nullptr, 1, n, reinterpret_cast<fftw_complex*>(out), nullptr, 1, n,
        sign, FFTW_ESTIMATE | FFTW_PRESERVE_INPUT);
    fftw_execute(p);
    fftw_destroy_plan(p);
  }

  void run_strided(cspan_t<double> in, BatchLayout lin, mspan_t<double> out,
                   BatchLayout lout, std::int64_t count, int sign,
                   bool) const {
    const int n = static_cast<int>(n_);
    fftw_plan p = fftw_plan_many_dft(
        1, &n, static_cast<int>(count),
        const_cast<fftw_complex*>(
            reinterpret_cast<const fftw_complex*>(in.data())),
        nullptr, static_cast<int>(lin.elem_stride),
        static_cast<int>(lin.batch_stride),
        reinterpret_cast<fftw_complex*>(out.data()), nullptr,
        static_cast<int>(lout.elem_stride),
        static_cast<int>(lout.batch_stride), sign,
        FFTW_ESTIMATE | FFTW_PRESERVE_INPUT);
    fftw_execute(p);
    fftw_destroy_plan(p);
  }

  std::int64_t n_;
};

#endif  // SOI_WITH_FFTW

// ---------------------------------------------------------------------------
// Registry plumbing (mirrors TransportRegistry)
// ---------------------------------------------------------------------------

struct Entry {
  EngineInfo info;
  EngineFactoryT<double> make_d;
  EngineFactoryT<float> make_f;
};

void ensure_builtins();

}  // namespace

struct EngineRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, Entry> engines;
};

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

EngineRegistry::Impl& EngineRegistry::impl() const {
  static Impl impl;
  return impl;
}

void EngineRegistry::register_engine(EngineInfo info,
                                     EngineFactoryT<double> make_double,
                                     EngineFactoryT<float> make_float) {
  const std::string name = info.name != nullptr ? info.name : "";
  if (name.empty() || name == "?") {
    throw InvalidArgumentError(
        "engine registration: engine name must be non-empty");
  }
  if (!make_double || !make_float) {
    throw InvalidArgumentError("engine registration: engine '" + name +
                               "' is missing a precision factory");
  }
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.engines
           .emplace(name, Entry{info, std::move(make_double),
                                std::move(make_float)})
           .second) {
    throw InvalidArgumentError(
        "fft engine '" + name +
        "' is already registered (factories register exactly once)");
  }
}

namespace {

template <class ImplT>  // deduced so the private nested type is never named
const Entry& lookup_entry(ImplT& im, const std::string& name) {
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.engines.find(name);
  if (it == im.engines.end()) {
    std::ostringstream os;
    os << "unknown fft engine '" << name << "'; registered engines:";
    for (const auto& [n, e] : im.engines) os << " " << n;
    if (name == "fftw") {
      os << " (rebuild with -DSOI_WITH_FFTW=ON to enable 'fftw')";
    }
    throw InvalidArgumentError(os.str());
  }
  return it->second;
}

}  // namespace

const EngineInfo& EngineRegistry::info(const std::string& name) const {
  ensure_builtins();
  return lookup_entry(impl(), name).info;
}

bool EngineRegistry::contains(const std::string& name) const {
  ensure_builtins();
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.engines.count(name) != 0;
}

std::vector<std::string> EngineRegistry::names() const {
  ensure_builtins();
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::string> out;
  out.reserve(im.engines.size());
  for (const auto& [n, e] : im.engines) out.push_back(n);
  return out;  // std::map iteration is already sorted
}

std::unique_ptr<const BatchTransform> EngineRegistry::make(
    const std::string& name, std::int64_t n, std::int64_t batch_width) const {
  ensure_builtins();
  const std::string resolved = name.empty() ? default_engine() : name;
  return lookup_entry(impl(), resolved).make_d(n, batch_width);
}

std::unique_ptr<const BatchTransformF> EngineRegistry::make_f(
    const std::string& name, std::int64_t n, std::int64_t batch_width) const {
  ensure_builtins();
  const std::string resolved = name.empty() ? default_engine() : name;
  return lookup_entry(impl(), resolved).make_f(n, batch_width);
}

namespace {

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = EngineRegistry::instance();
    reg.register_engine(
        EngineInfo{"batch", /*simd_batched=*/true, /*compute_scale=*/1.0},
        [](std::int64_t n, std::int64_t w) {
          return std::unique_ptr<const BatchTransform>(
              new BatchAdapterT<double>(n, w));
        },
        [](std::int64_t n, std::int64_t w) {
          return std::unique_ptr<const BatchTransformF>(
              new BatchAdapterT<float>(n, w));
        });
    // The scalar engine runs one transform per pass: no cross-transform
    // vectorization and strided layouts pay a gather/scatter sweep. The
    // modeled scorer prices it at a conservative fraction of batch
    // throughput.
    reg.register_engine(
        EngineInfo{"scalar", /*simd_batched=*/false, /*compute_scale=*/0.5},
        [](std::int64_t n, std::int64_t) {
          return std::unique_ptr<const BatchTransform>(
              new ScalarBatchT<double>(n));
        },
        [](std::int64_t n, std::int64_t) {
          return std::unique_ptr<const BatchTransformF>(
              new ScalarBatchT<float>(n));
        });
#ifdef SOI_WITH_FFTW
    reg.register_engine(
        EngineInfo{"fftw", /*simd_batched=*/false, /*compute_scale=*/1.0},
        [](std::int64_t n, std::int64_t) {
          return std::unique_ptr<const BatchTransform>(new FftwBatchD(n));
        },
        [](std::int64_t n, std::int64_t) -> std::unique_ptr<
            const BatchTransformF> {
          throw InvalidArgumentError(
              "fft engine 'fftw': single precision is not wrapped yet — "
              "use engine 'batch' or 'scalar' for float transforms");
        });
#endif
  });
}

}  // namespace

std::string default_engine() {
  const std::string name = env_str("SOI_FFT_ENGINE", "batch");
  return name.empty() ? std::string("batch") : name;
}

std::unique_ptr<const BatchTransform> make_batch_plan(
    const std::string& engine, std::int64_t n, std::int64_t batch_width) {
  return EngineRegistry::instance().make(engine, n, batch_width);
}

}  // namespace soi::fft
