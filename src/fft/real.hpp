// Real-input transforms built on the complex engine: an even-length real
// signal is packed into a half-length complex FFT and untangled, matching
// how production libraries expose r2c/c2r paths.
#pragma once

#include <span>

#include "common/types.hpp"
#include "fft/plan.hpp"

namespace soi::fft {

/// r2c plan for even real length n: produces the n/2+1 non-redundant bins.
class RealFftPlan {
 public:
  explicit RealFftPlan(std::int64_t n);

  [[nodiscard]] std::int64_t size() const { return n_; }

  /// out[k], k = 0..n/2, of the DFT of the real signal `in` (n values).
  void forward(std::span<const double> in, mspan out) const;

  /// Reconstruct the real signal from its n/2+1 spectrum bins.
  void inverse(cspan in, std::span<double> out) const;

 private:
  std::int64_t n_;
  FftPlan half_;
  cvec twiddle_;  // exp(-i pi k / (n/2)) untangling factors
};

}  // namespace soi::fft
