// Direct O(n^2) DFT — the ground truth used by tests and accuracy benches.
#pragma once

#include "common/types.hpp"

namespace soi::fft {

/// out[k] = sum_j in[j] exp(-2 pi i jk / n). O(n^2); testing only.
void dft_direct(cspan in, mspan out);

/// out[j] = (1/n) sum_k in[k] exp(+2 pi i jk / n). O(n^2); testing only.
void idft_direct(cspan in, mspan out);

/// Direct evaluation of a single output bin y[k] (useful to spot-check huge
/// transforms without O(n^2) total cost).
cplx dft_bin(cspan in, std::int64_t k);

}  // namespace soi::fft
