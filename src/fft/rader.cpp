// Rader's algorithm for prime-length DFTs: reindexing by a primitive root g
// turns the nontrivial outputs into a length (p-1) cyclic convolution,
// computed here with a precomputed-kernel FFT of length p-1.
//
//   y[0]          = sum_j x[j]
//   y[g^{-m}]     = x[0] + (a (*) b)[m],   a[q] = x[g^q],  b[q] = w_p^{g^{-q}}
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "fft/executor.hpp"
#include "fft/plan.hpp"

namespace soi::fft::detail {

namespace {

template <class Real>
class RaderExecutor final : public ExecutorT<Real> {
 public:
  using C = cplx_t<Real>;

  explicit RaderExecutor(std::int64_t p) : p_(p), sub_(p - 1) {
    SOI_CHECK(is_prime(static_cast<std::uint64_t>(p)) && p > 2,
              "Rader requires an odd prime, got " << p);
    const auto g = primitive_root(static_cast<std::uint64_t>(p));
    const std::int64_t q = p - 1;
    perm_.resize(static_cast<std::size_t>(q));      // perm_[m] = g^m mod p
    inv_perm_.resize(static_cast<std::size_t>(q));  // inv_perm_[m] = g^{-m}
    std::uint64_t gm = 1;
    for (std::int64_t m = 0; m < q; ++m) {
      perm_[static_cast<std::size_t>(m)] = static_cast<std::int64_t>(gm);
      inv_perm_[static_cast<std::size_t>((q - m) % q)] =
          static_cast<std::int64_t>(gm);
      gm = mulmod(gm, g, static_cast<std::uint64_t>(p));
    }
    // Kernel b[m] = w_p^{g^{-m}}; store its forward FFT for fast convolution.
    cvec_t<Real> b(static_cast<std::size_t>(q));
    for (std::int64_t m = 0; m < q; ++m) {
      b[static_cast<std::size_t>(m)] =
          static_cast<C>(omega(inv_perm_[static_cast<std::size_t>(m)], p));
    }
    kernel_fft_.resize(static_cast<std::size_t>(q));
    sub_.forward(b, kernel_fft_);
  }

  [[nodiscard]] std::size_t work_elems() const override {
    // [a: q][conv: q][staging: p][sub workspace]
    return static_cast<std::size_t>(2 * (p_ - 1) + p_) + sub_.workspace_size();
  }

  void forward(const C* in, C* out, C* work) const override {
    run_forward(in, out, work);
  }

  void inverse(const C* in, C* out, C* work) const override {
    // inverse(x) = conj(forward(conj(x))) / p — staged through workspace.
    C* staged = work + 2 * (p_ - 1);
    for (std::int64_t j = 0; j < p_; ++j) staged[j] = std::conj(in[j]);
    run_forward(staged, out, work);
    const Real scale = Real(1) / static_cast<Real>(p_);
    for (std::int64_t j = 0; j < p_; ++j) out[j] = std::conj(out[j]) * scale;
  }

 private:
  void run_forward(const C* in, C* out, C* work) const {
    const std::int64_t q = p_ - 1;
    C* a = work;
    C* conv = work + q;
    C* sub_work = work + 2 * q + p_;
    const mspan_t<Real> sub_ws{sub_work, sub_.workspace_size()};

    // Gather a[m] = x[g^m]; also the plain sum for y[0].
    C total = in[0];
    for (std::int64_t m = 0; m < q; ++m) {
      a[m] = in[perm_[static_cast<std::size_t>(m)]];
      total += a[m];
    }
    // Cyclic convolution with the precomputed kernel.
    sub_.forward(cspan_t<Real>{a, static_cast<std::size_t>(q)},
                 mspan_t<Real>{conv, static_cast<std::size_t>(q)}, sub_ws);
    for (std::int64_t m = 0; m < q; ++m) {
      conv[m] *= kernel_fft_[static_cast<std::size_t>(m)];
    }
    sub_.inverse(cspan_t<Real>{conv, static_cast<std::size_t>(q)},
                 mspan_t<Real>{a, static_cast<std::size_t>(q)}, sub_ws);
    // Scatter: y[g^{-m}] = x[0] + conv[m].
    out[0] = total;
    for (std::int64_t m = 0; m < q; ++m) {
      out[inv_perm_[static_cast<std::size_t>(m)]] = in[0] + a[m];
    }
  }

  std::int64_t p_;
  FftPlanT<Real> sub_;  // size p-1 (even, never Rader again at this size)
  std::vector<std::int64_t> perm_;
  std::vector<std::int64_t> inv_perm_;
  cvec_t<Real> kernel_fft_;
};

}  // namespace

template <class Real>
std::unique_ptr<ExecutorT<Real>> make_rader_executor(std::int64_t prime) {
  return std::make_unique<RaderExecutor<Real>>(prime);
}

template std::unique_ptr<ExecutorT<double>> make_rader_executor<double>(
    std::int64_t);
template std::unique_ptr<ExecutorT<float>> make_rader_executor<float>(
    std::int64_t);

}  // namespace soi::fft::detail
