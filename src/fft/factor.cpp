#include "fft/factor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soi::fft {

std::vector<std::int64_t> prime_factors(std::int64_t n) {
  SOI_CHECK(n >= 1, "prime_factors: n must be >= 1, got " << n);
  std::vector<std::int64_t> f;
  for (std::int64_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
    while (n % p == 0) {
      f.push_back(p);
      n /= p;
    }
  }
  if (n > 1) f.push_back(n);
  return f;
}

bool is_smooth(std::int64_t n) {
  return largest_prime_factor(n) <= kMaxDirectRadix;
}

std::int64_t largest_prime_factor(std::int64_t n) {
  const auto f = prime_factors(n);
  return f.empty() ? 1 : f.back();
}

std::vector<std::int64_t> radix_schedule(std::int64_t n) {
  SOI_CHECK(n >= 1, "radix_schedule: n must be >= 1");
  SOI_CHECK(is_smooth(n), "radix_schedule: " << n << " has a prime factor > "
                                             << kMaxDirectRadix);
  auto primes = prime_factors(n);
  // Combine pairs of 2s into 4s (radix-4 does the work of two radix-2
  // stages with half the passes over memory).
  std::vector<std::int64_t> radices;
  std::int64_t twos = 0;
  for (std::int64_t p : primes) {
    if (p == 2) {
      ++twos;
    } else {
      radices.push_back(p);
    }
  }
  while (twos >= 2) {
    radices.push_back(4);
    twos -= 2;
  }
  if (twos == 1) radices.push_back(2);
  // Larger radices first: early stages have small strides, where the wider
  // butterflies stay cache-resident.
  std::sort(radices.begin(), radices.end(), std::greater<>());
  return radices;
}

std::vector<std::int64_t> radix_schedule_batch(std::int64_t n) {
  SOI_CHECK(n >= 1, "radix_schedule_batch: n must be >= 1");
  SOI_CHECK(is_smooth(n), "radix_schedule_batch: " << n
                              << " has a prime factor > " << kMaxDirectRadix);
  auto primes = prime_factors(n);
  std::vector<std::int64_t> radices;
  std::int64_t twos = 0;
  for (std::int64_t p : primes) {
    if (p == 2) {
      ++twos;
    } else {
      radices.push_back(p);
    }
  }
  while (twos >= 3) {
    radices.push_back(8);
    twos -= 3;
  }
  if (twos == 2) radices.push_back(4);
  if (twos == 1) radices.push_back(2);
  std::sort(radices.begin(), radices.end(), std::greater<>());
  return radices;
}

}  // namespace soi::fft
