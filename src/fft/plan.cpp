#include "fft/plan.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"
#include "common/math.hpp"
#include "fft/batch.hpp"
#include "fft/executor.hpp"
#include "fft/factor.hpp"

namespace soi::fft {
namespace detail {
namespace {

// ---------------------------------------------------------------------------
// Mixed-radix Stockham executor.
//
// The transform is decomposed as a sequence of decimation-in-frequency
// passes. At each stage the working sequence length is n_t = r * m; a pass
// maps (for every interleave offset c in [0, s) and every j2 in [0, m)):
//
//   a[j1] = src[c + s*(j2 + m*j1)] ,  j1 = 0..r-1
//   b[q1] = sum_j1 a[j1] * w_r^{j1*q1}              (radix butterfly)
//   dst[c + s*(q1 + r*j2)] = b[q1] * w_{n_t}^{j2*q1}  (stage twiddle)
//
// After all stages the output is in natural order (autosort) — no
// bit/digit-reversal pass, which keeps memory traffic at one read + one
// write per element per stage.
// ---------------------------------------------------------------------------

template <class Real>
struct Stage {
  std::int64_t r = 0;  // radix of this pass
  std::int64_t m = 0;  // n_t / r
  // Twiddles w_{n_t}^{j2*q1}, laid out [j2*r + q1]; forward and inverse.
  const cplx_t<Real>* tw_fwd = nullptr;
  const cplx_t<Real>* tw_inv = nullptr;
  // Butterfly constants w_r^{j1*q1}, laid out [j1*r + q1] (generic radix).
  const cplx_t<Real>* wr_fwd = nullptr;
  const cplx_t<Real>* wr_inv = nullptr;
};

constexpr double kSqrt3Over2 = 0.86602540378443864676;
constexpr double kCos2Pi5 = 0.30901699437494742410;   // cos(2*pi/5)
constexpr double kSin2Pi5 = 0.95105651629515357212;   // sin(2*pi/5)
constexpr double kCos4Pi5 = -0.80901699437494742410;  // cos(4*pi/5)
constexpr double kSin4Pi5 = 0.58778525229247312917;   // sin(4*pi/5)

// Multiplies b by +/- i depending on Sign (-1: forward convention uses -i).
template <int Sign, class Real>
inline cplx_t<Real> mul_pm_i(cplx_t<Real> v) {
  if constexpr (Sign < 0) {
    return {v.imag(), -v.real()};
  } else {
    return {-v.imag(), v.real()};
  }
}

template <int Sign, class Real>
void pass_radix2(std::int64_t m, std::int64_t s, const cplx_t<Real>* src,
                 cplx_t<Real>* dst, const cplx_t<Real>* tw) {
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const cplx_t<Real> t1 = tw[j2 * 2 + 1];
    const cplx_t<Real>* sp0 = src + s * j2;
    const cplx_t<Real>* sp1 = src + s * (j2 + m);
    cplx_t<Real>* dp = dst + s * (2 * j2);
    for (std::int64_t c = 0; c < s; ++c) {
      const cplx_t<Real> a0 = sp0[c];
      const cplx_t<Real> a1 = sp1[c];
      dp[c] = a0 + a1;
      dp[c + s] = (a0 - a1) * t1;
    }
  }
}

template <int Sign, class Real>
void pass_radix3(std::int64_t m, std::int64_t s, const cplx_t<Real>* src,
                 cplx_t<Real>* dst, const cplx_t<Real>* tw) {
  const Real half(0.5);
  const Real s32(kSqrt3Over2);
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const cplx_t<Real> t1 = tw[j2 * 3 + 1];
    const cplx_t<Real> t2 = tw[j2 * 3 + 2];
    const cplx_t<Real>* sp0 = src + s * j2;
    const cplx_t<Real>* sp1 = src + s * (j2 + m);
    const cplx_t<Real>* sp2 = src + s * (j2 + 2 * m);
    cplx_t<Real>* dp = dst + s * (3 * j2);
    for (std::int64_t c = 0; c < s; ++c) {
      const cplx_t<Real> a0 = sp0[c];
      const cplx_t<Real> a1 = sp1[c];
      const cplx_t<Real> a2 = sp2[c];
      const cplx_t<Real> sum = a1 + a2;
      const cplx_t<Real> diff = mul_pm_i<Sign, Real>(s32 * (a1 - a2));
      const cplx_t<Real> base = a0 - half * sum;
      dp[c] = a0 + sum;
      dp[c + s] = (base + diff) * t1;
      dp[c + 2 * s] = (base - diff) * t2;
    }
  }
}

template <int Sign, class Real>
void pass_radix4(std::int64_t m, std::int64_t s, const cplx_t<Real>* src,
                 cplx_t<Real>* dst, const cplx_t<Real>* tw) {
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const cplx_t<Real> t1 = tw[j2 * 4 + 1];
    const cplx_t<Real> t2 = tw[j2 * 4 + 2];
    const cplx_t<Real> t3 = tw[j2 * 4 + 3];
    const cplx_t<Real>* sp0 = src + s * j2;
    const cplx_t<Real>* sp1 = src + s * (j2 + m);
    const cplx_t<Real>* sp2 = src + s * (j2 + 2 * m);
    const cplx_t<Real>* sp3 = src + s * (j2 + 3 * m);
    cplx_t<Real>* dp = dst + s * (4 * j2);
    for (std::int64_t c = 0; c < s; ++c) {
      const cplx_t<Real> a0 = sp0[c];
      const cplx_t<Real> a1 = sp1[c];
      const cplx_t<Real> a2 = sp2[c];
      const cplx_t<Real> a3 = sp3[c];
      const cplx_t<Real> e0 = a0 + a2;
      const cplx_t<Real> e1 = a0 - a2;
      const cplx_t<Real> o0 = a1 + a3;
      const cplx_t<Real> o1 = mul_pm_i<Sign, Real>(a1 - a3);
      dp[c] = e0 + o0;
      dp[c + s] = (e1 + o1) * t1;
      dp[c + 2 * s] = (e0 - o0) * t2;
      dp[c + 3 * s] = (e1 - o1) * t3;
    }
  }
}

template <int Sign, class Real>
void pass_radix5(std::int64_t m, std::int64_t s, const cplx_t<Real>* src,
                 cplx_t<Real>* dst, const cplx_t<Real>* tw) {
  const Real c1(kCos2Pi5), c2(kCos4Pi5), s1(kSin2Pi5), s2(kSin4Pi5);
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const cplx_t<Real> t1 = tw[j2 * 5 + 1];
    const cplx_t<Real> t2 = tw[j2 * 5 + 2];
    const cplx_t<Real> t3 = tw[j2 * 5 + 3];
    const cplx_t<Real> t4 = tw[j2 * 5 + 4];
    const cplx_t<Real>* sp0 = src + s * j2;
    const cplx_t<Real>* sp1 = src + s * (j2 + m);
    const cplx_t<Real>* sp2 = src + s * (j2 + 2 * m);
    const cplx_t<Real>* sp3 = src + s * (j2 + 3 * m);
    const cplx_t<Real>* sp4 = src + s * (j2 + 4 * m);
    cplx_t<Real>* dp = dst + s * (5 * j2);
    for (std::int64_t c = 0; c < s; ++c) {
      const cplx_t<Real> a0 = sp0[c];
      const cplx_t<Real> a1 = sp1[c];
      const cplx_t<Real> a2 = sp2[c];
      const cplx_t<Real> a3 = sp3[c];
      const cplx_t<Real> a4 = sp4[c];
      const cplx_t<Real> su1 = a1 + a4;
      const cplx_t<Real> su2 = a2 + a3;
      const cplx_t<Real> d1 = a1 - a4;
      const cplx_t<Real> d2 = a2 - a3;
      const cplx_t<Real> m1 = a0 + c1 * su1 + c2 * su2;
      const cplx_t<Real> m2 = a0 + c2 * su1 + c1 * su2;
      const cplx_t<Real> m3 = mul_pm_i<Sign, Real>(s1 * d1 + s2 * d2);
      const cplx_t<Real> m4 = mul_pm_i<Sign, Real>(s2 * d1 - s1 * d2);
      dp[c] = a0 + su1 + su2;
      dp[c + s] = (m1 + m3) * t1;
      dp[c + 2 * s] = (m2 + m4) * t2;
      dp[c + 3 * s] = (m2 - m4) * t3;
      dp[c + 4 * s] = (m1 - m3) * t4;
    }
  }
}

// Generic radix: O(r^2) butterfly driven by the precomputed w_r table.
template <class Real>
void pass_generic(std::int64_t r, std::int64_t m, std::int64_t s,
                  const cplx_t<Real>* src, cplx_t<Real>* dst,
                  const cplx_t<Real>* tw, const cplx_t<Real>* wr) {
  constexpr std::int64_t kMaxR = kMaxDirectRadix;
  cplx_t<Real> a[kMaxR];
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const cplx_t<Real>* t = tw + j2 * r;
    for (std::int64_t c = 0; c < s; ++c) {
      for (std::int64_t j1 = 0; j1 < r; ++j1) {
        a[j1] = src[c + s * (j2 + m * j1)];
      }
      for (std::int64_t q1 = 0; q1 < r; ++q1) {
        cplx_t<Real> acc = a[0];
        for (std::int64_t j1 = 1; j1 < r; ++j1) {
          acc += a[j1] * wr[j1 * r + q1];
        }
        dst[c + s * (q1 + r * j2)] = acc * t[q1];
      }
    }
  }
}

template <class Real>
class MixedRadixExecutor final : public ExecutorT<Real> {
 public:
  using C = cplx_t<Real>;

  explicit MixedRadixExecutor(std::int64_t n) : n_(n) {
    const auto radices = radix_schedule(n);
    // Precompute stage twiddles (both signs) and per-radix butterfly tables.
    std::int64_t nt = n;
    std::size_t tw_total = 0;
    for (std::int64_t r : radices) {
      tw_total += static_cast<std::size_t>(nt);
      nt /= r;
    }
    tw_fwd_.resize(tw_total);
    tw_inv_.resize(tw_total);
    std::size_t off = 0;
    nt = n;
    for (std::int64_t r : radices) {
      const std::int64_t m = nt / r;
      Stage<Real> st;
      st.r = r;
      st.m = m;
      st.tw_fwd = tw_fwd_.data() + off;
      st.tw_inv = tw_inv_.data() + off;
      for (std::int64_t j2 = 0; j2 < m; ++j2) {
        for (std::int64_t q1 = 0; q1 < r; ++q1) {
          const C w = static_cast<C>(omega(j2 * q1, nt));
          tw_fwd_[off + static_cast<std::size_t>(j2 * r + q1)] = w;
          tw_inv_[off + static_cast<std::size_t>(j2 * r + q1)] = std::conj(w);
        }
      }
      off += static_cast<std::size_t>(nt);
      if (r != 2 && r != 3 && r != 4 && r != 5) {
        ensure_wr(r);
        st.wr_fwd = wr_fwd_.at(static_cast<std::size_t>(r)).data();
        st.wr_inv = wr_inv_.at(static_cast<std::size_t>(r)).data();
      }
      stages_.push_back(st);
      nt = m;
    }
  }

  [[nodiscard]] std::size_t work_elems() const override {
    return static_cast<std::size_t>(n_);
  }

  void forward(const C* in, C* out, C* work) const override {
    run</*Inverse=*/false>(in, out, work);
  }

  void inverse(const C* in, C* out, C* work) const override {
    run</*Inverse=*/true>(in, out, work);
    const Real scale = Real(1) / static_cast<Real>(n_);
    for (std::int64_t i = 0; i < n_; ++i) out[i] *= scale;
  }

  bool forward_interleaved(const C* in, C* out, C* work,
                           std::int64_t count) const override {
    run</*Inverse=*/false>(in, out, work, count);
    return true;
  }

  bool inverse_interleaved(const C* in, C* out, C* work,
                           std::int64_t count) const override {
    run</*Inverse=*/true>(in, out, work, count);
    const Real scale = Real(1) / static_cast<Real>(n_);
    for (std::int64_t i = 0; i < n_ * count; ++i) out[i] *= scale;
    return true;
  }

 private:
  void ensure_wr(std::int64_t r) {
    auto& fwd = wr_fwd_[static_cast<std::size_t>(r)];
    if (!fwd.empty()) return;
    auto& inv = wr_inv_[static_cast<std::size_t>(r)];
    fwd.resize(static_cast<std::size_t>(r * r));
    inv.resize(static_cast<std::size_t>(r * r));
    for (std::int64_t j = 0; j < r; ++j) {
      for (std::int64_t q = 0; q < r; ++q) {
        const C w = static_cast<C>(omega(j * q, r));
        fwd[static_cast<std::size_t>(j * r + q)] = w;
        inv[static_cast<std::size_t>(j * r + q)] = std::conj(w);
      }
    }
  }

  template <bool Inverse>
  void run(const C* in, C* out, C* work, std::int64_t s0 = 1) const {
    // Ping-pong between `out` and `work`, arranged so the last stage
    // writes into `out`. The Stockham passes operate on s interleaved
    // sub-sequences at every level, so an initial stride s0 > 1 computes
    // s0 interleaved transforms natively (F_n (x) I_s0).
    const std::size_t k = stages_.size();
    const C* src = in;
    std::int64_t s = s0;
    for (std::size_t t = 0; t < k; ++t) {
      const Stage<Real>& st = stages_[t];
      const bool last_to_out = ((k - 1 - t) % 2 == 0);
      C* dst = last_to_out ? out : work;
      const C* tw = Inverse ? st.tw_inv : st.tw_fwd;
      constexpr int sign = Inverse ? +1 : -1;
      switch (st.r) {
        case 2:
          pass_radix2<sign, Real>(st.m, s, src, dst, tw);
          break;
        case 3:
          pass_radix3<sign, Real>(st.m, s, src, dst, tw);
          break;
        case 4:
          pass_radix4<sign, Real>(st.m, s, src, dst, tw);
          break;
        case 5:
          pass_radix5<sign, Real>(st.m, s, src, dst, tw);
          break;
        default:
          pass_generic<Real>(st.r, st.m, s, src, dst, tw,
                             Inverse ? st.wr_inv : st.wr_fwd);
          break;
      }
      src = dst;
      s *= st.r;
    }
    if (k == 0) {
      for (std::int64_t c = 0; c < s0; ++c) out[c] = in[c];
    }
  }

  std::int64_t n_;
  std::vector<Stage<Real>> stages_;
  cvec_t<Real> tw_fwd_;
  cvec_t<Real> tw_inv_;
  // Butterfly tables per generic radix (index = radix value).
  std::array<cvec_t<Real>, kMaxDirectRadix + 1> wr_fwd_{};
  std::array<cvec_t<Real>, kMaxDirectRadix + 1> wr_inv_{};
};

template <class Real>
class IdentityExecutor final : public ExecutorT<Real> {
 public:
  using C = cplx_t<Real>;
  [[nodiscard]] std::size_t work_elems() const override { return 0; }
  void forward(const C* in, C* out, C*) const override { out[0] = in[0]; }
  void inverse(const C* in, C* out, C*) const override { out[0] = in[0]; }
};

}  // namespace
}  // namespace detail

template <class Real>
FftPlanT<Real>::FftPlanT(std::int64_t n) : n_(n) {
  SOI_CHECK(n >= 1, "FftPlan: size must be positive, got " << n);
  if (n == 1) {
    strategy_ = Strategy::kIdentity;
    exec_ = std::make_unique<detail::IdentityExecutor<Real>>();
  } else if (is_smooth(n)) {
    strategy_ = Strategy::kMixedRadix;
    radices_ = radix_schedule(n);
    exec_ = std::make_unique<detail::MixedRadixExecutor<Real>>(n);
  } else if (is_prime(static_cast<std::uint64_t>(n))) {
    strategy_ = Strategy::kRader;
    exec_ = detail::make_rader_executor<Real>(n);
  } else {
    strategy_ = Strategy::kBluestein;
    exec_ = detail::make_bluestein_executor<Real>(n);
  }
  batch_ = std::make_unique<BatchFftT<Real>>(n);
}

template <class Real>
FftPlanT<Real>::~FftPlanT() = default;
template <class Real>
FftPlanT<Real>::FftPlanT(FftPlanT&&) noexcept = default;
template <class Real>
FftPlanT<Real>& FftPlanT<Real>::operator=(FftPlanT&&) noexcept = default;

template <class Real>
std::size_t FftPlanT<Real>::workspace_size() const {
  return exec_->work_elems();
}

template <class Real>
std::int64_t FftPlanT<Real>::workspace_bytes(std::int64_t count) const {
  if (count <= 1) {
    return static_cast<std::int64_t>(workspace_size() * sizeof(C));
  }
  return batch_->scratch_bytes(count);
}

template <class Real>
void FftPlanT<Real>::forward(cspan_t<Real> in, mspan_t<Real> out,
                             mspan_t<Real> work) const {
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_),
            "forward: input size " << in.size() << " != plan size " << n_);
  SOI_CHECK(out.size() >= static_cast<std::size_t>(n_),
            "forward: output too small");
  SOI_CHECK(work.size() >= workspace_size(), "forward: workspace too small");
  exec_->forward(in.data(), out.data(), work.data());
}

template <class Real>
void FftPlanT<Real>::inverse(cspan_t<Real> in, mspan_t<Real> out,
                             mspan_t<Real> work) const {
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_),
            "inverse: input size " << in.size() << " != plan size " << n_);
  SOI_CHECK(out.size() >= static_cast<std::size_t>(n_),
            "inverse: output too small");
  SOI_CHECK(work.size() >= workspace_size(), "inverse: workspace too small");
  exec_->inverse(in.data(), out.data(), work.data());
}

template <class Real>
void FftPlanT<Real>::forward(cspan_t<Real> in, mspan_t<Real> out) const {
  cvec_t<Real> work(workspace_size());
  forward(in, out, work);
}

template <class Real>
void FftPlanT<Real>::inverse(cspan_t<Real> in, mspan_t<Real> out) const {
  cvec_t<Real> work(workspace_size());
  inverse(in, out, work);
}

namespace {
template <class Real, class Fn>
void run_batch(std::int64_t count, std::size_t work_elems, Fn&& fn) {
#ifdef _OPENMP
#pragma omp parallel
  {
    cvec_t<Real> work(work_elems);
#pragma omp for schedule(static)
    for (std::int64_t b = 0; b < count; ++b) fn(b, work.data());
  }
#else
  cvec_t<Real> work(work_elems);
  for (std::int64_t b = 0; b < count; ++b) fn(b, work.data());
#endif
}
}  // namespace

template <class Real>
void FftPlanT<Real>::forward_batch(cspan_t<Real> in, mspan_t<Real> out,
                                   std::int64_t count) const {
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_ * count),
            "forward_batch: input size mismatch");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(n_ * count),
            "forward_batch: output too small");
  if (count > 1) {
    batch_->forward(in, out, count);
    return;
  }
  run_batch<Real>(count, workspace_size(), [&](std::int64_t b, C* work) {
    exec_->forward(in.data() + b * n_, out.data() + b * n_, work);
  });
}

template <class Real>
void FftPlanT<Real>::inverse_batch(cspan_t<Real> in, mspan_t<Real> out,
                                   std::int64_t count) const {
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_ * count),
            "inverse_batch: input size mismatch");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(n_ * count),
            "inverse_batch: output too small");
  if (count > 1) {
    batch_->inverse(in, out, count);
    return;
  }
  run_batch<Real>(count, workspace_size(), [&](std::int64_t b, C* work) {
    exec_->inverse(in.data() + b * n_, out.data() + b * n_, work);
  });
}

namespace {
template <class Real, bool Inverse>
void interleaved_fallback(const detail::ExecutorT<Real>& exec, std::int64_t n,
                          cspan_t<Real> in, mspan_t<Real> out,
                          std::int64_t count) {
  // Gather/scatter per transform through contiguous staging buffers.
  cvec_t<Real> gathered(static_cast<std::size_t>(n));
  cvec_t<Real> result(static_cast<std::size_t>(n));
  cvec_t<Real> work(exec.work_elems());
  for (std::int64_t c = 0; c < count; ++c) {
    for (std::int64_t j = 0; j < n; ++j) {
      gathered[static_cast<std::size_t>(j)] = in[j * count + c];
    }
    if constexpr (Inverse) {
      exec.inverse(gathered.data(), result.data(), work.data());
    } else {
      exec.forward(gathered.data(), result.data(), work.data());
    }
    for (std::int64_t j = 0; j < n; ++j) {
      out[j * count + c] = result[static_cast<std::size_t>(j)];
    }
  }
}
}  // namespace

template <class Real>
void FftPlanT<Real>::forward_interleaved(cspan_t<Real> in, mspan_t<Real> out,
                                         std::int64_t count) const {
  SOI_CHECK(count >= 1, "forward_interleaved: count must be >= 1");
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_ * count),
            "forward_interleaved: input size mismatch");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(n_ * count),
            "forward_interleaved: output too small");
  if (count > 1) {
    batch_->forward_strided(in, interleaved_layout(count), out,
                            interleaved_layout(count), count);
    return;
  }
  cvec_t<Real> work(static_cast<std::size_t>(n_ * count));
  if (!exec_->forward_interleaved(in.data(), out.data(), work.data(), count)) {
    interleaved_fallback<Real, false>(*exec_, n_, in, out, count);
  }
}

template <class Real>
void FftPlanT<Real>::inverse_interleaved(cspan_t<Real> in, mspan_t<Real> out,
                                         std::int64_t count) const {
  SOI_CHECK(count >= 1, "inverse_interleaved: count must be >= 1");
  SOI_CHECK(in.size() == static_cast<std::size_t>(n_ * count),
            "inverse_interleaved: input size mismatch");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(n_ * count),
            "inverse_interleaved: output too small");
  if (count > 1) {
    batch_->inverse_strided(in, interleaved_layout(count), out,
                            interleaved_layout(count), count);
    return;
  }
  cvec_t<Real> work(static_cast<std::size_t>(n_ * count));
  if (!exec_->inverse_interleaved(in.data(), out.data(), work.data(), count)) {
    interleaved_fallback<Real, true>(*exec_, n_, in, out, count);
  }
}

template class FftPlanT<double>;
template class FftPlanT<float>;

}  // namespace soi::fft
