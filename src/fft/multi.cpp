#include "fft/multi.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soi::fft {

NdFft::NdFft(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  SOI_CHECK(!dims_.empty(), "NdFft: need at least one dimension");
  total_ = 1;
  for (std::int64_t d : dims_) {
    SOI_CHECK(d >= 1, "NdFft: dimensions must be positive");
    SOI_CHECK(total_ <= (std::int64_t{1} << 40) / d, "NdFft: size overflow");
    total_ *= d;
  }
  plans_.reserve(dims_.size());
  for (std::int64_t d : dims_) plans_.push_back(&cache_.get(d));
}

namespace {
/// Out-of-place transpose of an R x C row-major matrix into C x R.
void transpose(const cplx* in, cplx* out, std::int64_t r, std::int64_t c) {
  constexpr std::int64_t kBlock = 32;  // cache blocking
  for (std::int64_t i0 = 0; i0 < r; i0 += kBlock) {
    const std::int64_t i1 = std::min(i0 + kBlock, r);
    for (std::int64_t j0 = 0; j0 < c; j0 += kBlock) {
      const std::int64_t j1 = std::min(j0 + kBlock, c);
      for (std::int64_t i = i0; i < i1; ++i) {
        for (std::int64_t j = j0; j < j1; ++j) {
          out[j * r + i] = in[i * c + j];
        }
      }
    }
  }
}
}  // namespace

template <bool Inverse>
void NdFft::run(cspan in, mspan out) const {
  SOI_CHECK(in.size() == static_cast<std::size_t>(total_),
            "NdFft: input size mismatch");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(total_),
            "NdFft: output too small");
  // Each round: batched 1-D transforms along the (contiguous) last axis,
  // then a full transpose rotating that axis to the front. After `rank`
  // rounds every axis is transformed once and the layout is restored.
  //
  // Buffering: the batched transform must NOT read and write the same
  // buffer (the Stockham passes are not in-place safe), and neither may
  // the transpose — so rounds rotate through three slots: every batch
  // lands in slot0, every transpose alternates between slot1 and slot2.
  cvec tmp1(static_cast<std::size_t>(total_));
  cvec tmp2;  // only needed for rank >= 2
  const int rank = static_cast<int>(dims_.size());
  if (rank > 1) tmp2.resize(static_cast<std::size_t>(total_));
  const cplx* src = in.data();
  cplx* slot0 = out.data();
  cplx* slot_t[2] = {tmp1.data(), tmp2.data()};
  // Axis currently last: rank-1, then rank-2, ... (after each rotation).
  for (int round = 0; round < rank; ++round) {
    const int axis = rank - 1 - round;
    const FftPlan& plan = *plans_[static_cast<std::size_t>(axis)];
    const std::int64_t len = dims_[static_cast<std::size_t>(axis)];
    const std::int64_t count = total_ / len;
    if constexpr (Inverse) {
      plan.inverse_batch(cspan{src, static_cast<std::size_t>(total_)},
                         mspan{slot0, static_cast<std::size_t>(total_)},
                         count);
    } else {
      plan.forward_batch(cspan{src, static_cast<std::size_t>(total_)},
                         mspan{slot0, static_cast<std::size_t>(total_)},
                         count);
    }
    if (rank == 1) {
      src = slot0;
      break;
    }
    cplx* tdst = slot_t[round % 2];
    transpose(slot0, tdst, count, len);
    src = tdst;
  }
  if (src != out.data()) {
    std::copy_n(src, total_, out.data());
  }
}

void NdFft::forward(cspan in, mspan out) const { run<false>(in, out); }
void NdFft::inverse(cspan in, mspan out) const { run<true>(in, out); }

}  // namespace soi::fft
