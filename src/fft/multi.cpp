#include "fft/multi.hpp"

#include "common/error.hpp"

namespace soi::fft {

NdFft::NdFft(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  SOI_CHECK(!dims_.empty(), "NdFft: need at least one dimension");
  total_ = 1;
  for (std::int64_t d : dims_) {
    SOI_CHECK(d >= 1, "NdFft: dimensions must be positive");
    SOI_CHECK(total_ <= (std::int64_t{1} << 40) / d, "NdFft: size overflow");
    total_ *= d;
  }
  plans_.reserve(dims_.size());
  for (std::int64_t d : dims_) {
    const BatchFft* found = nullptr;
    for (const auto& b : owned_) {
      if (b->size() == d) {
        found = b.get();
        break;
      }
    }
    if (!found) {
      owned_.push_back(std::make_unique<BatchFft>(d));
      found = owned_.back().get();
    }
    plans_.push_back(found);
  }
}

template <bool Inverse>
void NdFft::run(cspan in, mspan out) const {
  SOI_CHECK(in.size() == static_cast<std::size_t>(total_),
            "NdFft: input size mismatch");
  SOI_CHECK(out.size() >= static_cast<std::size_t>(total_),
            "NdFft: output too small");
  const int rank = static_cast<int>(dims_.size());
  // Each round transforms the (contiguous) last axis AND rotates it to the
  // front in one batched pass: the contiguous-input / interleaved-output
  // layout pair makes the store phase write the transpose directly, so no
  // separate transpose sweep exists. After `rank` rounds every axis is
  // transformed once and the layout is restored.
  //
  // The fused pass is out-of-place, so rounds ping-pong between `out` and
  // one scratch buffer, phased so the last round lands in `out`.
  cvec tmp;
  if (rank > 1) tmp.resize(static_cast<std::size_t>(total_));
  const cplx* src = in.data();
  for (int round = 0; round < rank; ++round) {
    const int axis = rank - 1 - round;
    const BatchFft& plan = *plans_[static_cast<std::size_t>(axis)];
    const std::int64_t len = dims_[static_cast<std::size_t>(axis)];
    const std::int64_t count = total_ / len;
    cplx* dst = (round % 2 == (rank - 1) % 2) ? out.data() : tmp.data();
    const cspan s{src, static_cast<std::size_t>(total_)};
    const mspan d{dst, static_cast<std::size_t>(total_)};
    const BatchLayout lout =
        rank == 1 ? contiguous_layout(len) : interleaved_layout(count);
    if constexpr (Inverse) {
      plan.inverse_strided(s, contiguous_layout(len), d, lout, count);
    } else {
      plan.forward_strided(s, contiguous_layout(len), d, lout, count);
    }
    src = dst;
  }
}

void NdFft::forward(cspan in, mspan out) const { run<false>(in, out); }
void NdFft::inverse(cspan in, mspan out) const { run<true>(in, out); }

}  // namespace soi::fft
