// Transform-size factorisation: picks the radix schedule for the mixed-radix
// engine and decides when a size needs the Rader or Bluestein fallback.
#pragma once

#include <cstdint>
#include <vector>

namespace soi::fft {

/// Largest prime the generic mixed-radix butterfly handles directly; bigger
/// prime factors route the whole transform to Bluestein (or Rader when the
/// size itself is prime).
inline constexpr std::int64_t kMaxDirectRadix = 13;

/// Full prime factorisation of n (ascending, with multiplicity).
std::vector<std::int64_t> prime_factors(std::int64_t n);

/// Radix schedule for the Stockham engine: prefers radix 4 over 2x2,
/// orders larger radices first (better locality while strides are small).
/// Only valid when smooth(n) holds.
std::vector<std::int64_t> radix_schedule(std::int64_t n);

/// Radix schedule for the batched (SoA) engine: like radix_schedule() but
/// greedily merges 2s into radix-8 passes first, then 4, then 2 — a
/// length-2^k transform runs ~k/3 passes instead of ~k/2, and every pass
/// is one full read+write sweep over the batch. Only valid for smooth n.
std::vector<std::int64_t> radix_schedule_batch(std::int64_t n);

/// True iff all prime factors of n are <= kMaxDirectRadix.
bool is_smooth(std::int64_t n);

/// Largest prime factor of n.
std::int64_t largest_prime_factor(std::int64_t n);

}  // namespace soi::fft
