#include "fft/batch.hpp"

#include <algorithm>
#include <array>
#include <type_traits>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"
#include "common/math.hpp"
#include "fft/factor.hpp"

// The SIMD kernels below use GCC/Clang vector extensions: explicit
// fixed-width vector types with element-wise operators and
// __builtin_shufflevector. They lower to whatever the target ISA offers
// (a 8-double vector becomes one zmm op, two ymm ops, or four xmm ops),
// so one kernel body serves every dispatch tier. Other compilers fall
// back to the scalar blocked kernels.
#if defined(__GNUC__) || defined(__clang__)
#define SOI_BATCH_VECEXT 1
#endif

namespace soi::fft {
namespace detail {
namespace {

template <class Real>
using rvec = std::vector<Real, AlignedAllocator<Real, 64>>;

constexpr double kSqrt3Over2B = 0.86602540378443864676;
constexpr double kCos2Pi5B = 0.30901699437494742410;
constexpr double kSin2Pi5B = 0.95105651629515357212;
constexpr double kCos4Pi5B = -0.80901699437494742410;
constexpr double kSin4Pi5B = 0.58778525229247312917;
constexpr double kInvSqrt2B = 0.70710678118654752440;

// ---------------------------------------------------------------------------
// SoA Stockham passes.
//
// The working set is a pair of split Real arrays holding V interleaved
// transforms: re/im of (element e, lane v) at flat index e*V + v. This is
// the scalar engine's interleaved form (s0 = V), so each pass maps
//
//   a[j1] = src[c + s*(j2 + m*j1)] ,  c in [0, s), s a multiple of V
//   dst[c + s*(q1 + r*j2)] = butterfly(a)[q1] * tw[j2*r + q1]
//
// and the c loop — contiguous, twiddle-invariant — is the vector axis.
// Kernels are templated on the compile-time width W (Real lanes of one
// SIMD register at the dispatched ISA tier); the W-trip inner loops lower
// to single vector instructions at -O3. Sign: -1 forward, +1 inverse.
// ---------------------------------------------------------------------------

template <int Sign, class Real>
inline void mul_pm_i_split(Real vr, Real vi, Real& or_, Real& oi) {
  // (or_, oi) = v * (-Sign * i): forward (-i), inverse (+i).
  if constexpr (Sign < 0) {
    or_ = vi;
    oi = -vr;
  } else {
    or_ = -vi;
    oi = vr;
  }
}

// v * w8^1 and v * w8^3 for the radix-8 butterfly (w8 = exp(Sign*i*pi/4)).
template <int Sign, class Real>
inline void mul_w8_1(Real vr, Real vi, Real& or_, Real& oi) {
  const Real k(kInvSqrt2B);
  if constexpr (Sign < 0) {
    or_ = (vr + vi) * k;
    oi = (vi - vr) * k;
  } else {
    or_ = (vr - vi) * k;
    oi = (vr + vi) * k;
  }
}

template <int Sign, class Real>
inline void mul_w8_3(Real vr, Real vi, Real& or_, Real& oi) {
  const Real k(kInvSqrt2B);
  if constexpr (Sign < 0) {
    or_ = (vi - vr) * k;
    oi = -(vr + vi) * k;
  } else {
    or_ = -(vr + vi) * k;
    oi = (vr - vi) * k;
  }
}

template <int W, int Sign, class Real>
void pass2_soa(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real t1r = twr[j2 * 2 + 1], t1i = twi[j2 * 2 + 1];
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    Real* __restrict dr = dre + s * (2 * j2);
    Real* __restrict di = dim + s * (2 * j2);
    std::int64_t c = 0;
    for (; c + W <= s; c += W) {
      for (int k = 0; k < W; ++k) {
        const Real a0r = sr0[c + k], a0i = si0[c + k];
        const Real a1r = sr1[c + k], a1i = si1[c + k];
        dr[c + k] = a0r + a1r;
        di[c + k] = a0i + a1i;
        const Real br = a0r - a1r, bi = a0i - a1i;
        dr[c + s + k] = br * t1r - bi * t1i;
        di[c + s + k] = br * t1i + bi * t1r;
      }
    }
    for (; c < s; ++c) {
      const Real a0r = sr0[c], a0i = si0[c];
      const Real a1r = sr1[c], a1i = si1[c];
      dr[c] = a0r + a1r;
      di[c] = a0i + a1i;
      const Real br = a0r - a1r, bi = a0i - a1i;
      dr[c + s] = br * t1r - bi * t1i;
      di[c + s] = br * t1i + bi * t1r;
    }
  }
}

template <int W, int Sign, class Real>
void pass3_soa(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  const Real half(0.5), s32(kSqrt3Over2B);
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real t1r = twr[j2 * 3 + 1], t1i = twi[j2 * 3 + 1];
    const Real t2r = twr[j2 * 3 + 2], t2i = twi[j2 * 3 + 2];
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    const Real* __restrict sr2 = sre + s * (j2 + 2 * m);
    const Real* __restrict si2 = sim + s * (j2 + 2 * m);
    Real* __restrict dr = dre + s * (3 * j2);
    Real* __restrict di = dim + s * (3 * j2);
    auto body = [&](std::int64_t c) {
      const Real a0r = sr0[c], a0i = si0[c];
      const Real a1r = sr1[c], a1i = si1[c];
      const Real a2r = sr2[c], a2i = si2[c];
      const Real sumr = a1r + a2r, sumi = a1i + a2i;
      Real difr, difi;
      mul_pm_i_split<Sign, Real>(s32 * (a1r - a2r), s32 * (a1i - a2i), difr,
                                 difi);
      const Real baser = a0r - half * sumr, basei = a0i - half * sumi;
      dr[c] = a0r + sumr;
      di[c] = a0i + sumi;
      const Real x1r = baser + difr, x1i = basei + difi;
      dr[c + s] = x1r * t1r - x1i * t1i;
      di[c + s] = x1r * t1i + x1i * t1r;
      const Real x2r = baser - difr, x2i = basei - difi;
      dr[c + 2 * s] = x2r * t2r - x2i * t2i;
      di[c + 2 * s] = x2r * t2i + x2i * t2r;
    };
    std::int64_t c = 0;
    for (; c + W <= s; c += W) {
      for (int k = 0; k < W; ++k) body(c + k);
    }
    for (; c < s; ++c) body(c);
  }
}

template <int W, int Sign, class Real>
void pass4_soa(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real t1r = twr[j2 * 4 + 1], t1i = twi[j2 * 4 + 1];
    const Real t2r = twr[j2 * 4 + 2], t2i = twi[j2 * 4 + 2];
    const Real t3r = twr[j2 * 4 + 3], t3i = twi[j2 * 4 + 3];
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    const Real* __restrict sr2 = sre + s * (j2 + 2 * m);
    const Real* __restrict si2 = sim + s * (j2 + 2 * m);
    const Real* __restrict sr3 = sre + s * (j2 + 3 * m);
    const Real* __restrict si3 = sim + s * (j2 + 3 * m);
    Real* __restrict dr = dre + s * (4 * j2);
    Real* __restrict di = dim + s * (4 * j2);
    auto body = [&](std::int64_t c) {
      const Real a0r = sr0[c], a0i = si0[c];
      const Real a1r = sr1[c], a1i = si1[c];
      const Real a2r = sr2[c], a2i = si2[c];
      const Real a3r = sr3[c], a3i = si3[c];
      const Real e0r = a0r + a2r, e0i = a0i + a2i;
      const Real e1r = a0r - a2r, e1i = a0i - a2i;
      const Real o0r = a1r + a3r, o0i = a1i + a3i;
      Real o1r, o1i;
      mul_pm_i_split<Sign, Real>(a1r - a3r, a1i - a3i, o1r, o1i);
      dr[c] = e0r + o0r;
      di[c] = e0i + o0i;
      const Real x1r = e1r + o1r, x1i = e1i + o1i;
      dr[c + s] = x1r * t1r - x1i * t1i;
      di[c + s] = x1r * t1i + x1i * t1r;
      const Real x2r = e0r - o0r, x2i = e0i - o0i;
      dr[c + 2 * s] = x2r * t2r - x2i * t2i;
      di[c + 2 * s] = x2r * t2i + x2i * t2r;
      const Real x3r = e1r - o1r, x3i = e1i - o1i;
      dr[c + 3 * s] = x3r * t3r - x3i * t3i;
      di[c + 3 * s] = x3r * t3i + x3i * t3r;
    };
    std::int64_t c = 0;
    for (; c + W <= s; c += W) {
      for (int k = 0; k < W; ++k) body(c + k);
    }
    for (; c < s; ++c) body(c);
  }
}

template <int W, int Sign, class Real>
void pass5_soa(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  const Real c1(kCos2Pi5B), c2(kCos4Pi5B), s1(kSin2Pi5B), s2(kSin4Pi5B);
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real* t = twr + j2 * 5;
    const Real* ti = twi + j2 * 5;
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    const Real* __restrict sr2 = sre + s * (j2 + 2 * m);
    const Real* __restrict si2 = sim + s * (j2 + 2 * m);
    const Real* __restrict sr3 = sre + s * (j2 + 3 * m);
    const Real* __restrict si3 = sim + s * (j2 + 3 * m);
    const Real* __restrict sr4 = sre + s * (j2 + 4 * m);
    const Real* __restrict si4 = sim + s * (j2 + 4 * m);
    Real* __restrict dr = dre + s * (5 * j2);
    Real* __restrict di = dim + s * (5 * j2);
    auto body = [&](std::int64_t c) {
      const Real a0r = sr0[c], a0i = si0[c];
      const Real a1r = sr1[c], a1i = si1[c];
      const Real a2r = sr2[c], a2i = si2[c];
      const Real a3r = sr3[c], a3i = si3[c];
      const Real a4r = sr4[c], a4i = si4[c];
      const Real su1r = a1r + a4r, su1i = a1i + a4i;
      const Real su2r = a2r + a3r, su2i = a2i + a3i;
      const Real d1r = a1r - a4r, d1i = a1i - a4i;
      const Real d2r = a2r - a3r, d2i = a2i - a3i;
      const Real m1r = a0r + c1 * su1r + c2 * su2r;
      const Real m1i = a0i + c1 * su1i + c2 * su2i;
      const Real m2r = a0r + c2 * su1r + c1 * su2r;
      const Real m2i = a0i + c2 * su1i + c1 * su2i;
      Real m3r, m3i, m4r, m4i;
      mul_pm_i_split<Sign, Real>(s1 * d1r + s2 * d2r, s1 * d1i + s2 * d2i, m3r,
                                 m3i);
      mul_pm_i_split<Sign, Real>(s2 * d1r - s1 * d2r, s2 * d1i - s1 * d2i, m4r,
                                 m4i);
      dr[c] = a0r + su1r + su2r;
      di[c] = a0i + su1i + su2i;
      const Real x1r = m1r + m3r, x1i = m1i + m3i;
      dr[c + s] = x1r * t[1] - x1i * ti[1];
      di[c + s] = x1r * ti[1] + x1i * t[1];
      const Real x2r = m2r + m4r, x2i = m2i + m4i;
      dr[c + 2 * s] = x2r * t[2] - x2i * ti[2];
      di[c + 2 * s] = x2r * ti[2] + x2i * t[2];
      const Real x3r = m2r - m4r, x3i = m2i - m4i;
      dr[c + 3 * s] = x3r * t[3] - x3i * ti[3];
      di[c + 3 * s] = x3r * ti[3] + x3i * t[3];
      const Real x4r = m1r - m3r, x4i = m1i - m3i;
      dr[c + 4 * s] = x4r * t[4] - x4i * ti[4];
      di[c + 4 * s] = x4r * ti[4] + x4i * t[4];
    };
    std::int64_t c = 0;
    for (; c + W <= s; c += W) {
      for (int k = 0; k < W; ++k) body(c + k);
    }
    for (; c < s; ++c) body(c);
  }
}

// Radix-8 (two radix-4 sub-DFTs over even/odd legs + w8 recombination):
// three radix-2 levels in one read+write sweep over the batch.
template <int W, int Sign, class Real>
void pass8_soa(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real* t = twr + j2 * 8;
    const Real* ti = twi + j2 * 8;
    const Real* sr[8];
    const Real* si[8];
    for (int j1 = 0; j1 < 8; ++j1) {
      sr[j1] = sre + s * (j2 + m * j1);
      si[j1] = sim + s * (j2 + m * j1);
    }
    Real* __restrict dr = dre + s * (8 * j2);
    Real* __restrict di = dim + s * (8 * j2);
    auto body = [&](std::int64_t c) {
      // Even legs (a0, a2, a4, a6) -> E[0..3].
      const Real e0r = sr[0][c] + sr[4][c], e0i = si[0][c] + si[4][c];
      const Real e1r = sr[0][c] - sr[4][c], e1i = si[0][c] - si[4][c];
      const Real o0r = sr[2][c] + sr[6][c], o0i = si[2][c] + si[6][c];
      Real o1r, o1i;
      mul_pm_i_split<Sign, Real>(sr[2][c] - sr[6][c], si[2][c] - si[6][c], o1r,
                                 o1i);
      const Real E0r = e0r + o0r, E0i = e0i + o0i;
      const Real E1r = e1r + o1r, E1i = e1i + o1i;
      const Real E2r = e0r - o0r, E2i = e0i - o0i;
      const Real E3r = e1r - o1r, E3i = e1i - o1i;
      // Odd legs (a1, a3, a5, a7) -> O[0..3].
      const Real f0r = sr[1][c] + sr[5][c], f0i = si[1][c] + si[5][c];
      const Real f1r = sr[1][c] - sr[5][c], f1i = si[1][c] - si[5][c];
      const Real p0r = sr[3][c] + sr[7][c], p0i = si[3][c] + si[7][c];
      Real p1r, p1i;
      mul_pm_i_split<Sign, Real>(sr[3][c] - sr[7][c], si[3][c] - si[7][c], p1r,
                                 p1i);
      const Real O0r = f0r + p0r, O0i = f0i + p0i;
      Real O1r = f1r + p1r, O1i = f1i + p1i;
      Real O2r = f0r - p0r, O2i = f0i - p0i;
      Real O3r = f1r - p1r, O3i = f1i - p1i;
      // Recombine with w8^q.
      Real w1r, w1i, w2r, w2i, w3r, w3i;
      mul_w8_1<Sign, Real>(O1r, O1i, w1r, w1i);
      mul_pm_i_split<Sign, Real>(O2r, O2i, w2r, w2i);
      mul_w8_3<Sign, Real>(O3r, O3i, w3r, w3i);
      const Real xr[8] = {E0r + O0r, E1r + w1r, E2r + w2r, E3r + w3r,
                          E0r - O0r, E1r - w1r, E2r - w2r, E3r - w3r};
      const Real xi[8] = {E0i + O0i, E1i + w1i, E2i + w2i, E3i + w3i,
                          E0i - O0i, E1i - w1i, E2i - w2i, E3i - w3i};
      dr[c] = xr[0];
      di[c] = xi[0];
      for (int q = 1; q < 8; ++q) {
        dr[c + q * s] = xr[q] * t[q] - xi[q] * ti[q];
        di[c + q * s] = xr[q] * ti[q] + xi[q] * t[q];
      }
    };
    std::int64_t c = 0;
    for (; c + W <= s; c += W) {
      for (int k = 0; k < W; ++k) body(c + k);
    }
    for (; c < s; ++c) body(c);
  }
}

// Generic radix (7, 11, 13): O(r^2) butterfly over W-wide accumulators.
template <int W, class Real>
void passg_soa(std::int64_t r, std::int64_t m, std::int64_t s,
               const Real* __restrict sre, const Real* __restrict sim,
               Real* __restrict dre, Real* __restrict dim,
               const Real* __restrict twr, const Real* __restrict twi,
               const Real* __restrict wrr, const Real* __restrict wri) {
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real* t = twr + j2 * r;
    const Real* ti = twi + j2 * r;
    for (std::int64_t q1 = 0; q1 < r; ++q1) {
      Real* __restrict dr = dre + s * (q1 + r * j2);
      Real* __restrict di = dim + s * (q1 + r * j2);
      const Real tr = t[q1], tqi = ti[q1];
      std::int64_t c = 0;
      for (; c + W <= s; c += W) {
        Real accr[W], acci[W];
        const Real* __restrict s0r = sre + s * j2;
        const Real* __restrict s0i = sim + s * j2;
        for (int k = 0; k < W; ++k) {
          accr[k] = s0r[c + k];
          acci[k] = s0i[c + k];
        }
        for (std::int64_t j1 = 1; j1 < r; ++j1) {
          const Real wr = wrr[j1 * r + q1], wi = wri[j1 * r + q1];
          const Real* __restrict ar = sre + s * (j2 + m * j1);
          const Real* __restrict ai = sim + s * (j2 + m * j1);
          for (int k = 0; k < W; ++k) {
            accr[k] += ar[c + k] * wr - ai[c + k] * wi;
            acci[k] += ar[c + k] * wi + ai[c + k] * wr;
          }
        }
        for (int k = 0; k < W; ++k) {
          dr[c + k] = accr[k] * tr - acci[k] * tqi;
          di[c + k] = accr[k] * tqi + acci[k] * tr;
        }
      }
      for (; c < s; ++c) {
        Real accr = sre[c + s * j2], acci = sim[c + s * j2];
        for (std::int64_t j1 = 1; j1 < r; ++j1) {
          const Real wr = wrr[j1 * r + q1], wi = wri[j1 * r + q1];
          const Real ar = sre[c + s * (j2 + m * j1)];
          const Real ai = sim[c + s * (j2 + m * j1)];
          accr += ar * wr - ai * wi;
          acci += ar * wi + ai * wr;
        }
        dr[c] = accr * tr - acci * tqi;
        di[c] = accr * tqi + acci * tr;
      }
    }
  }
}

#ifdef SOI_BATCH_VECEXT

// ---------------------------------------------------------------------------
// Vector-extension kernels. Same pass algebra as the scalar kernels above,
// but with explicit W-lane vector loads/stores and splatted twiddles, so
// the strided q-leg stores need no alias analysis from the compiler (the
// scalar kernels' blocked loops defeat it — the q-leg store streams can't
// be proven disjoint, which serialises the whole butterfly).
// Callers guarantee s % W == 0; there are no tail loops.
// ---------------------------------------------------------------------------

// Compute vector types keep their natural alignment: every SoA scratch
// access is a whole-vector offset from a 64B-aligned plane base, and
// naturally-aligned types keep stack temporaries and reference binding
// well-formed under UBSan. AoS batch rows (caller-controlled stride) go
// through the relaxed-alignment twins below instead.
template <class Real, int W>
struct VecOf {
  typedef Real type __attribute__((vector_size(W * sizeof(Real))));
};
template <class Real, int W>
using vec_t = typename VecOf<Real, W>::type;

template <class Real, int W>
struct VecUOf {
  typedef Real type
      __attribute__((vector_size(W * sizeof(Real)), aligned(alignof(Real))));
};
template <class Real, int W>
using uvec_t = typename VecUOf<Real, W>::type;

// Vector counterparts of mul_w8_* (mul_pm_i_split is constant-free and
// instantiates directly on vector types; these need k as a scalar operand).
template <int Sign, class V, class Real>
inline void vmul_w8_1(V vr, V vi, Real k, V& or_, V& oi) {
  if constexpr (Sign < 0) {
    or_ = (vr + vi) * k;
    oi = (vi - vr) * k;
  } else {
    or_ = (vr - vi) * k;
    oi = (vr + vi) * k;
  }
}

template <int Sign, class V, class Real>
inline void vmul_w8_3(V vr, V vi, Real k, V& or_, V& oi) {
  if constexpr (Sign < 0) {
    or_ = (vi - vr) * k;
    oi = -(vr + vi) * k;
  } else {
    or_ = -(vr + vi) * k;
    oi = (vr - vi) * k;
  }
}

template <int W, int Sign, class Real>
void pass2_vec(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  using V = vec_t<Real, W>;
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const V t1r = V{} + twr[j2 * 2 + 1];
    const V t1i = V{} + twi[j2 * 2 + 1];
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    Real* __restrict dr = dre + s * (2 * j2);
    Real* __restrict di = dim + s * (2 * j2);
    for (std::int64_t c = 0; c < s; c += W) {
      const V a0r = *(const V*)(sr0 + c), a0i = *(const V*)(si0 + c);
      const V a1r = *(const V*)(sr1 + c), a1i = *(const V*)(si1 + c);
      *(V*)(dr + c) = a0r + a1r;
      *(V*)(di + c) = a0i + a1i;
      const V br = a0r - a1r, bi = a0i - a1i;
      *(V*)(dr + c + s) = br * t1r - bi * t1i;
      *(V*)(di + c + s) = br * t1i + bi * t1r;
    }
  }
}

template <int W, int Sign, class Real>
void pass3_vec(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  using V = vec_t<Real, W>;
  const Real half(0.5), s32(kSqrt3Over2B);
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const V t1r = V{} + twr[j2 * 3 + 1], t1i = V{} + twi[j2 * 3 + 1];
    const V t2r = V{} + twr[j2 * 3 + 2], t2i = V{} + twi[j2 * 3 + 2];
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    const Real* __restrict sr2 = sre + s * (j2 + 2 * m);
    const Real* __restrict si2 = sim + s * (j2 + 2 * m);
    Real* __restrict dr = dre + s * (3 * j2);
    Real* __restrict di = dim + s * (3 * j2);
    for (std::int64_t c = 0; c < s; c += W) {
      const V a0r = *(const V*)(sr0 + c), a0i = *(const V*)(si0 + c);
      const V a1r = *(const V*)(sr1 + c), a1i = *(const V*)(si1 + c);
      const V a2r = *(const V*)(sr2 + c), a2i = *(const V*)(si2 + c);
      const V sumr = a1r + a2r, sumi = a1i + a2i;
      V difr, difi;
      mul_pm_i_split<Sign, V>(s32 * (a1r - a2r), s32 * (a1i - a2i), difr,
                              difi);
      const V baser = a0r - half * sumr, basei = a0i - half * sumi;
      *(V*)(dr + c) = a0r + sumr;
      *(V*)(di + c) = a0i + sumi;
      const V x1r = baser + difr, x1i = basei + difi;
      *(V*)(dr + c + s) = x1r * t1r - x1i * t1i;
      *(V*)(di + c + s) = x1r * t1i + x1i * t1r;
      const V x2r = baser - difr, x2i = basei - difi;
      *(V*)(dr + c + 2 * s) = x2r * t2r - x2i * t2i;
      *(V*)(di + c + 2 * s) = x2r * t2i + x2i * t2r;
    }
  }
}

template <int W, int Sign, class Real>
void pass4_vec(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  using V = vec_t<Real, W>;
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const V t1r = V{} + twr[j2 * 4 + 1], t1i = V{} + twi[j2 * 4 + 1];
    const V t2r = V{} + twr[j2 * 4 + 2], t2i = V{} + twi[j2 * 4 + 2];
    const V t3r = V{} + twr[j2 * 4 + 3], t3i = V{} + twi[j2 * 4 + 3];
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    const Real* __restrict sr2 = sre + s * (j2 + 2 * m);
    const Real* __restrict si2 = sim + s * (j2 + 2 * m);
    const Real* __restrict sr3 = sre + s * (j2 + 3 * m);
    const Real* __restrict si3 = sim + s * (j2 + 3 * m);
    Real* __restrict dr = dre + s * (4 * j2);
    Real* __restrict di = dim + s * (4 * j2);
    for (std::int64_t c = 0; c < s; c += W) {
      const V a0r = *(const V*)(sr0 + c), a0i = *(const V*)(si0 + c);
      const V a1r = *(const V*)(sr1 + c), a1i = *(const V*)(si1 + c);
      const V a2r = *(const V*)(sr2 + c), a2i = *(const V*)(si2 + c);
      const V a3r = *(const V*)(sr3 + c), a3i = *(const V*)(si3 + c);
      const V e0r = a0r + a2r, e0i = a0i + a2i;
      const V e1r = a0r - a2r, e1i = a0i - a2i;
      const V o0r = a1r + a3r, o0i = a1i + a3i;
      V o1r, o1i;
      mul_pm_i_split<Sign, V>(a1r - a3r, a1i - a3i, o1r, o1i);
      *(V*)(dr + c) = e0r + o0r;
      *(V*)(di + c) = e0i + o0i;
      const V x1r = e1r + o1r, x1i = e1i + o1i;
      *(V*)(dr + c + s) = x1r * t1r - x1i * t1i;
      *(V*)(di + c + s) = x1r * t1i + x1i * t1r;
      const V x2r = e0r - o0r, x2i = e0i - o0i;
      *(V*)(dr + c + 2 * s) = x2r * t2r - x2i * t2i;
      *(V*)(di + c + 2 * s) = x2r * t2i + x2i * t2r;
      const V x3r = e1r - o1r, x3i = e1i - o1i;
      *(V*)(dr + c + 3 * s) = x3r * t3r - x3i * t3i;
      *(V*)(di + c + 3 * s) = x3r * t3i + x3i * t3r;
    }
  }
}

template <int W, int Sign, class Real>
void pass5_vec(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  using V = vec_t<Real, W>;
  const Real c1(kCos2Pi5B), c2(kCos4Pi5B), s1(kSin2Pi5B), s2(kSin4Pi5B);
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real* t = twr + j2 * 5;
    const Real* ti = twi + j2 * 5;
    V tr[5], tqi[5];
    for (int q = 1; q < 5; ++q) {
      tr[q] = V{} + t[q];
      tqi[q] = V{} + ti[q];
    }
    const Real* __restrict sr0 = sre + s * j2;
    const Real* __restrict si0 = sim + s * j2;
    const Real* __restrict sr1 = sre + s * (j2 + m);
    const Real* __restrict si1 = sim + s * (j2 + m);
    const Real* __restrict sr2 = sre + s * (j2 + 2 * m);
    const Real* __restrict si2 = sim + s * (j2 + 2 * m);
    const Real* __restrict sr3 = sre + s * (j2 + 3 * m);
    const Real* __restrict si3 = sim + s * (j2 + 3 * m);
    const Real* __restrict sr4 = sre + s * (j2 + 4 * m);
    const Real* __restrict si4 = sim + s * (j2 + 4 * m);
    Real* __restrict dr = dre + s * (5 * j2);
    Real* __restrict di = dim + s * (5 * j2);
    for (std::int64_t c = 0; c < s; c += W) {
      const V a0r = *(const V*)(sr0 + c), a0i = *(const V*)(si0 + c);
      const V a1r = *(const V*)(sr1 + c), a1i = *(const V*)(si1 + c);
      const V a2r = *(const V*)(sr2 + c), a2i = *(const V*)(si2 + c);
      const V a3r = *(const V*)(sr3 + c), a3i = *(const V*)(si3 + c);
      const V a4r = *(const V*)(sr4 + c), a4i = *(const V*)(si4 + c);
      const V su1r = a1r + a4r, su1i = a1i + a4i;
      const V su2r = a2r + a3r, su2i = a2i + a3i;
      const V d1r = a1r - a4r, d1i = a1i - a4i;
      const V d2r = a2r - a3r, d2i = a2i - a3i;
      const V m1r = a0r + c1 * su1r + c2 * su2r;
      const V m1i = a0i + c1 * su1i + c2 * su2i;
      const V m2r = a0r + c2 * su1r + c1 * su2r;
      const V m2i = a0i + c2 * su1i + c1 * su2i;
      V m3r, m3i, m4r, m4i;
      mul_pm_i_split<Sign, V>(s1 * d1r + s2 * d2r, s1 * d1i + s2 * d2i, m3r,
                              m3i);
      mul_pm_i_split<Sign, V>(s2 * d1r - s1 * d2r, s2 * d1i - s1 * d2i, m4r,
                              m4i);
      *(V*)(dr + c) = a0r + su1r + su2r;
      *(V*)(di + c) = a0i + su1i + su2i;
      const V x1r = m1r + m3r, x1i = m1i + m3i;
      *(V*)(dr + c + s) = x1r * tr[1] - x1i * tqi[1];
      *(V*)(di + c + s) = x1r * tqi[1] + x1i * tr[1];
      const V x2r = m2r + m4r, x2i = m2i + m4i;
      *(V*)(dr + c + 2 * s) = x2r * tr[2] - x2i * tqi[2];
      *(V*)(di + c + 2 * s) = x2r * tqi[2] + x2i * tr[2];
      const V x3r = m2r - m4r, x3i = m2i - m4i;
      *(V*)(dr + c + 3 * s) = x3r * tr[3] - x3i * tqi[3];
      *(V*)(di + c + 3 * s) = x3r * tqi[3] + x3i * tr[3];
      const V x4r = m1r - m3r, x4i = m1i - m3i;
      *(V*)(dr + c + 4 * s) = x4r * tr[4] - x4i * tqi[4];
      *(V*)(di + c + 4 * s) = x4r * tqi[4] + x4i * tr[4];
    }
  }
}

template <int W, int Sign, class Real>
void pass8_vec(std::int64_t m, std::int64_t s, const Real* __restrict sre,
               const Real* __restrict sim, Real* __restrict dre,
               Real* __restrict dim, const Real* __restrict twr,
               const Real* __restrict twi) {
  using V = vec_t<Real, W>;
  const Real k(kInvSqrt2B);
  for (std::int64_t j2 = 0; j2 < m; ++j2) {
    const Real* sr[8];
    const Real* si[8];
    for (int l = 0; l < 8; ++l) {
      sr[l] = sre + s * (j2 + l * m);
      si[l] = sim + s * (j2 + l * m);
    }
    Real* __restrict dr = dre + s * (8 * j2);
    Real* __restrict di = dim + s * (8 * j2);
    const Real* t = twr + j2 * 8;
    const Real* ti = twi + j2 * 8;
    for (std::int64_t c = 0; c < s; c += W) {
      V xr[8], xi[8];
      for (int l = 0; l < 8; ++l) {
        xr[l] = *(const V*)(sr[l] + c);
        xi[l] = *(const V*)(si[l] + c);
      }
      V er[4], ei[4], orr[4], oi[4];
      {
        const V e0r = xr[0] + xr[4], e0i = xi[0] + xi[4];
        const V e1r = xr[0] - xr[4], e1i = xi[0] - xi[4];
        const V o0r = xr[2] + xr[6], o0i = xi[2] + xi[6];
        V o1r, o1i;
        mul_pm_i_split<Sign, V>(xr[2] - xr[6], xi[2] - xi[6], o1r, o1i);
        er[0] = e0r + o0r; ei[0] = e0i + o0i;
        er[1] = e1r + o1r; ei[1] = e1i + o1i;
        er[2] = e0r - o0r; ei[2] = e0i - o0i;
        er[3] = e1r - o1r; ei[3] = e1i - o1i;
      }
      {
        const V e0r = xr[1] + xr[5], e0i = xi[1] + xi[5];
        const V e1r = xr[1] - xr[5], e1i = xi[1] - xi[5];
        const V o0r = xr[3] + xr[7], o0i = xi[3] + xi[7];
        V o1r, o1i;
        mul_pm_i_split<Sign, V>(xr[3] - xr[7], xi[3] - xi[7], o1r, o1i);
        orr[0] = e0r + o0r; oi[0] = e0i + o0i;
        orr[1] = e1r + o1r; oi[1] = e1i + o1i;
        orr[2] = e0r - o0r; oi[2] = e0i - o0i;
        orr[3] = e1r - o1r; oi[3] = e1i - o1i;
      }
      V wr[4], wi[4];
      wr[0] = orr[0]; wi[0] = oi[0];
      vmul_w8_1<Sign, V, Real>(orr[1], oi[1], k, wr[1], wi[1]);
      mul_pm_i_split<Sign, V>(orr[2], oi[2], wr[2], wi[2]);
      vmul_w8_3<Sign, V, Real>(orr[3], oi[3], k, wr[3], wi[3]);
      *(V*)(dr + c) = er[0] + wr[0];
      *(V*)(di + c) = ei[0] + wi[0];
      for (int q = 1; q < 4; ++q) {
        const V ar = er[q] + wr[q], ai = ei[q] + wi[q];
        const V tr = V{} + t[q], tq = V{} + ti[q];
        *(V*)(dr + c + q * s) = ar * tr - ai * tq;
        *(V*)(di + c + q * s) = ar * tq + ai * tr;
      }
      for (int q = 0; q < 4; ++q) {
        const V br = er[q] - wr[q], bi = ei[q] - wi[q];
        const V tr = V{} + t[q + 4], tq = V{} + ti[q + 4];
        *(V*)(dr + c + (q + 4) * s) = br * tr - bi * tq;
        *(V*)(di + c + (q + 4) * s) = br * tq + bi * tr;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Double-precision v=4 fast path: shuffle-network transposes between the
// interleaved (AoS) batch rows and the SoA working set, a paired radix-8
// first pass, and a fused unity-twiddle radix-4 last pass that writes the
// transposed output directly. These are the fixed-shape stages where the
// generic kernels lose to data movement; everything else in the schedule
// runs through the pass*_vec kernels above.
// ---------------------------------------------------------------------------

using dv8 = vec_t<double, 8>;
using dv4 = vec_t<double, 4>;
using duv8 = uvec_t<double, 8>;
using duv4 = uvec_t<double, 4>;

// Unaligned (8B-aligned) loads/stores for the AoS batch rows.
inline dv8 loadu8(const double* p) { return (dv8)*(const duv8*)p; }
inline dv4 loadu4(const double* p) { return (dv4)*(const duv4*)p; }
inline void storeu8(double* p, dv8 v) { *(duv8*)p = (duv8)v; }

// AoS -> SoA: 4 transform rows (stride bs complex), elements contiguous.
// Tiles of 4 elements x 4 lanes: 4 vector loads + 8 shuffles + 4 stores.
inline void load_shuf4(const cplx_t<double>* in, std::int64_t bs,
                       std::int64_t n, double* __restrict re,
                       double* __restrict im) {
  const double* raw = reinterpret_cast<const double*>(in);
  for (std::int64_t e0 = 0; e0 < n; e0 += 4) {
    const dv8 L0 = loadu8(raw + 2 * (0 * bs + e0));
    const dv8 L1 = loadu8(raw + 2 * (1 * bs + e0));
    const dv8 L2 = loadu8(raw + 2 * (2 * bs + e0));
    const dv8 L3 = loadu8(raw + 2 * (3 * bs + e0));
    const dv8 R01 = __builtin_shufflevector(L0, L1, 0, 8, 2, 10, 4, 12, 6, 14);
    const dv8 I01 = __builtin_shufflevector(L0, L1, 1, 9, 3, 11, 5, 13, 7, 15);
    const dv8 R23 = __builtin_shufflevector(L2, L3, 0, 8, 2, 10, 4, 12, 6, 14);
    const dv8 I23 = __builtin_shufflevector(L2, L3, 1, 9, 3, 11, 5, 13, 7, 15);
    *(dv8*)(re + e0 * 4) =
        __builtin_shufflevector(R01, R23, 0, 1, 8, 9, 2, 3, 10, 11);
    *(dv8*)(re + e0 * 4 + 8) =
        __builtin_shufflevector(R01, R23, 4, 5, 12, 13, 6, 7, 14, 15);
    *(dv8*)(im + e0 * 4) =
        __builtin_shufflevector(I01, I23, 0, 1, 8, 9, 2, 3, 10, 11);
    *(dv8*)(im + e0 * 4 + 8) =
        __builtin_shufflevector(I01, I23, 4, 5, 12, 13, 6, 7, 14, 15);
  }
}

// SoA -> AoS, inverse shuffle network, optional output scaling.
template <bool kScaled>
inline void store_shuf4(const double* __restrict re,
                        const double* __restrict im, std::int64_t n,
                        std::int64_t bs, double scale, cplx_t<double>* out) {
  double* raw = reinterpret_cast<double*>(out);
  for (std::int64_t e0 = 0; e0 < n; e0 += 4) {
    const dv8 RE01 = *(const dv8*)(re + e0 * 4);
    const dv8 RE23 = *(const dv8*)(re + e0 * 4 + 8);
    const dv8 IM01 = *(const dv8*)(im + e0 * 4);
    const dv8 IM23 = *(const dv8*)(im + e0 * 4 + 8);
    const dv8 R01 =
        __builtin_shufflevector(RE01, RE23, 0, 1, 4, 5, 8, 9, 12, 13);
    const dv8 R23 =
        __builtin_shufflevector(RE01, RE23, 2, 3, 6, 7, 10, 11, 14, 15);
    const dv8 I01 =
        __builtin_shufflevector(IM01, IM23, 0, 1, 4, 5, 8, 9, 12, 13);
    const dv8 I23 =
        __builtin_shufflevector(IM01, IM23, 2, 3, 6, 7, 10, 11, 14, 15);
    dv8 o0 = __builtin_shufflevector(R01, I01, 0, 8, 2, 10, 4, 12, 6, 14);
    dv8 o1 = __builtin_shufflevector(R01, I01, 1, 9, 3, 11, 5, 13, 7, 15);
    dv8 o2 = __builtin_shufflevector(R23, I23, 0, 8, 2, 10, 4, 12, 6, 14);
    dv8 o3 = __builtin_shufflevector(R23, I23, 1, 9, 3, 11, 5, 13, 7, 15);
    if constexpr (kScaled) {
      o0 *= scale;
      o1 *= scale;
      o2 *= scale;
      o3 *= scale;
    }
    storeu8(raw + 2 * (0 * bs + e0), o0);
    storeu8(raw + 2 * (1 * bs + e0), o1);
    storeu8(raw + 2 * (2 * bs + e0), o2);
    storeu8(raw + 2 * (3 * bs + e0), o3);
  }
}

// Paired radix-8 first pass reading AoS input directly: each leg l needs
// elements (j2 + l*m, j2 + l*m + 1) of all 4 lanes, i.e. four 32B loads at
// lane stride, transposed in registers. Fusing the transpose here skips the
// load_shuf4 round trip through the SoA scratch planes (64KB of L1 traffic
// per chunk), which is the difference between the chunk being load-bound
// and compute-bound once the batch streams past L2.
template <int Sign>
void pass8_first_pair4_fused(const cplx_t<double>* in, std::int64_t ibs,
                             std::int64_t m, double* __restrict dre,
                             double* __restrict dim,
                             const double* __restrict twr,
                             const double* __restrict twi) {
  using V = dv8;
  using H = dv4;
  const double* raw = reinterpret_cast<const double*>(in);
  const double k = kInvSqrt2B;
  const std::int64_t s = 4;
  for (std::int64_t jp = 0; jp < m / 2; ++jp) {
    const std::int64_t j2 = 2 * jp;
    V xr[8], xi[8];
    for (int l = 0; l < 8; ++l) {
      const double* p = raw + 2 * (j2 + l * m);
      const H h0 = loadu4(p);
      const H h1 = loadu4(p + 2 * ibs);
      const H h2 = loadu4(p + 4 * ibs);
      const H h3 = loadu4(p + 6 * ibs);
      const V v01 = __builtin_shufflevector(h0, h1, 0, 1, 2, 3, 4, 5, 6, 7);
      const V v23 = __builtin_shufflevector(h2, h3, 0, 1, 2, 3, 4, 5, 6, 7);
      xr[l] = __builtin_shufflevector(v01, v23, 0, 4, 8, 12, 2, 6, 10, 14);
      xi[l] = __builtin_shufflevector(v01, v23, 1, 5, 9, 13, 3, 7, 11, 15);
    }
    V er[4], ei[4], orr[4], oi[4];
    {
      const V e0r = xr[0] + xr[4], e0i = xi[0] + xi[4];
      const V e1r = xr[0] - xr[4], e1i = xi[0] - xi[4];
      const V o0r = xr[2] + xr[6], o0i = xi[2] + xi[6];
      V o1r, o1i;
      mul_pm_i_split<Sign, V>(xr[2] - xr[6], xi[2] - xi[6], o1r, o1i);
      er[0] = e0r + o0r; ei[0] = e0i + o0i;
      er[1] = e1r + o1r; ei[1] = e1i + o1i;
      er[2] = e0r - o0r; ei[2] = e0i - o0i;
      er[3] = e1r - o1r; ei[3] = e1i - o1i;
    }
    {
      const V e0r = xr[1] + xr[5], e0i = xi[1] + xi[5];
      const V e1r = xr[1] - xr[5], e1i = xi[1] - xi[5];
      const V o0r = xr[3] + xr[7], o0i = xi[3] + xi[7];
      V o1r, o1i;
      mul_pm_i_split<Sign, V>(xr[3] - xr[7], xi[3] - xi[7], o1r, o1i);
      orr[0] = e0r + o0r; oi[0] = e0i + o0i;
      orr[1] = e1r + o1r; oi[1] = e1i + o1i;
      orr[2] = e0r - o0r; oi[2] = e0i - o0i;
      orr[3] = e1r - o1r; oi[3] = e1i - o1i;
    }
    V wr[4], wi[4];
    wr[0] = orr[0]; wi[0] = oi[0];
    vmul_w8_1<Sign, V, double>(orr[1], oi[1], k, wr[1], wi[1]);
    mul_pm_i_split<Sign, V>(orr[2], oi[2], wr[2], wi[2]);
    vmul_w8_3<Sign, V, double>(orr[3], oi[3], k, wr[3], wi[3]);
    // Outputs of legs q, q+1 for element j2 are contiguous (as are those of
    // j2+1, 32 doubles later), so adjacent legs combine into full 64B
    // stores instead of four half-width ones.
    double* __restrict dr0 = dre + s * (8 * j2);
    double* __restrict di0 = dim + s * (8 * j2);
    double* __restrict dr1 = dre + s * (8 * j2 + 8);
    double* __restrict di1 = dim + s * (8 * j2 + 8);
    const double* twp = twr + jp * 64;
    const double* twq = twi + jp * 64;
    for (int q = 0; q < 4; q += 2) {
      const V ar = er[q] + wr[q], ai = ei[q] + wi[q];
      const V t0r = *(const V*)(twp + q * 8), t0i = *(const V*)(twq + q * 8);
      const V p0r = ar * t0r - ai * t0i, p0i = ar * t0i + ai * t0r;
      const V cr = er[q + 1] + wr[q + 1], ci = ei[q + 1] + wi[q + 1];
      const V t1r = *(const V*)(twp + (q + 1) * 8),
              t1i = *(const V*)(twq + (q + 1) * 8);
      const V p1r = cr * t1r - ci * t1i, p1i = cr * t1i + ci * t1r;
      *(V*)(dr0 + q * s) =
          __builtin_shufflevector(p0r, p1r, 0, 1, 2, 3, 8, 9, 10, 11);
      *(V*)(dr1 + q * s) =
          __builtin_shufflevector(p0r, p1r, 4, 5, 6, 7, 12, 13, 14, 15);
      *(V*)(di0 + q * s) =
          __builtin_shufflevector(p0i, p1i, 0, 1, 2, 3, 8, 9, 10, 11);
      *(V*)(di1 + q * s) =
          __builtin_shufflevector(p0i, p1i, 4, 5, 6, 7, 12, 13, 14, 15);
    }
    for (int q = 4; q < 8; q += 2) {
      const V ar = er[q - 4] - wr[q - 4], ai = ei[q - 4] - wi[q - 4];
      const V t0r = *(const V*)(twp + q * 8), t0i = *(const V*)(twq + q * 8);
      const V p0r = ar * t0r - ai * t0i, p0i = ar * t0i + ai * t0r;
      const V cr = er[q - 3] - wr[q - 3], ci = ei[q - 3] - wi[q - 3];
      const V t1r = *(const V*)(twp + (q + 1) * 8),
              t1i = *(const V*)(twq + (q + 1) * 8);
      const V p1r = cr * t1r - ci * t1i, p1i = cr * t1i + ci * t1r;
      *(V*)(dr0 + q * s) =
          __builtin_shufflevector(p0r, p1r, 0, 1, 2, 3, 8, 9, 10, 11);
      *(V*)(dr1 + q * s) =
          __builtin_shufflevector(p0r, p1r, 4, 5, 6, 7, 12, 13, 14, 15);
      *(V*)(di0 + q * s) =
          __builtin_shufflevector(p0i, p1i, 0, 1, 2, 3, 8, 9, 10, 11);
      *(V*)(di1 + q * s) =
          __builtin_shufflevector(p0i, p1i, 4, 5, 6, 7, 12, 13, 14, 15);
    }
  }
}

// Fused last pass + store: radix-4 with m == 1 (all twiddles unity) feeding
// the SoA->AoS shuffle network directly, so the final pass result never
// round-trips through the scratch buffers. Requires s % 16 == 0, v == 4.
// Leg q of the butterfly lands at output elements q*(s/4) + c/4.
template <int Sign, bool kScaled>
void pass4_last_store4(std::int64_t s, const double* __restrict sre,
                       const double* __restrict sim, std::int64_t bs,
                       double scale, cplx_t<double>* out) {
  using V = dv8;
  double* raw = reinterpret_cast<double*>(out);
  const double* __restrict sr0 = sre;
  const double* __restrict si0 = sim;
  const double* __restrict sr1 = sre + s;
  const double* __restrict si1 = sim + s;
  const double* __restrict sr2 = sre + 2 * s;
  const double* __restrict si2 = sim + 2 * s;
  const double* __restrict sr3 = sre + 3 * s;
  const double* __restrict si3 = sim + 3 * s;
  for (std::int64_t c = 0; c < s; c += 16) {
    V yr[4][2], yi[4][2];
    for (int h = 0; h < 2; ++h) {
      const std::int64_t cc = c + 8 * h;
      const V a0r = *(const V*)(sr0 + cc), a0i = *(const V*)(si0 + cc);
      const V a1r = *(const V*)(sr1 + cc), a1i = *(const V*)(si1 + cc);
      const V a2r = *(const V*)(sr2 + cc), a2i = *(const V*)(si2 + cc);
      const V a3r = *(const V*)(sr3 + cc), a3i = *(const V*)(si3 + cc);
      const V e0r = a0r + a2r, e0i = a0i + a2i;
      const V e1r = a0r - a2r, e1i = a0i - a2i;
      const V o0r = a1r + a3r, o0i = a1i + a3i;
      V o1r, o1i;
      mul_pm_i_split<Sign, V>(a1r - a3r, a1i - a3i, o1r, o1i);
      yr[0][h] = e0r + o0r; yi[0][h] = e0i + o0i;
      yr[1][h] = e1r + o1r; yi[1][h] = e1i + o1i;
      yr[2][h] = e0r - o0r; yi[2][h] = e0i - o0i;
      yr[3][h] = e1r - o1r; yi[3][h] = e1i - o1i;
    }
    for (int q = 0; q < 4; ++q) {
      const V RE01 = yr[q][0], RE23 = yr[q][1];
      const V IM01 = yi[q][0], IM23 = yi[q][1];
      const V R01 =
          __builtin_shufflevector(RE01, RE23, 0, 1, 4, 5, 8, 9, 12, 13);
      const V R23 =
          __builtin_shufflevector(RE01, RE23, 2, 3, 6, 7, 10, 11, 14, 15);
      const V I01 =
          __builtin_shufflevector(IM01, IM23, 0, 1, 4, 5, 8, 9, 12, 13);
      const V I23 =
          __builtin_shufflevector(IM01, IM23, 2, 3, 6, 7, 10, 11, 14, 15);
      V o0 = __builtin_shufflevector(R01, I01, 0, 8, 2, 10, 4, 12, 6, 14);
      V o1 = __builtin_shufflevector(R01, I01, 1, 9, 3, 11, 5, 13, 7, 15);
      V o2 = __builtin_shufflevector(R23, I23, 0, 8, 2, 10, 4, 12, 6, 14);
      V o3 = __builtin_shufflevector(R23, I23, 1, 9, 3, 11, 5, 13, 7, 15);
      if constexpr (kScaled) {
        o0 *= scale;
        o1 *= scale;
        o2 *= scale;
        o3 *= scale;
      }
      const std::int64_t e0 = q * (s / 4) + c / 4;
      storeu8(raw + 2 * (0 * bs + e0), o0);
      storeu8(raw + 2 * (1 * bs + e0), o1);
      storeu8(raw + 2 * (2 * bs + e0), o2);
      storeu8(raw + 2 * (3 * bs + e0), o3);
    }
  }
}

#endif  // SOI_BATCH_VECEXT

// ---------------------------------------------------------------------------
// Stage descriptors and the per-chunk driver.
// ---------------------------------------------------------------------------

template <class Real>
struct BStage {
  std::int64_t r = 0;
  std::int64_t m = 0;
  // Split twiddles [j2*r + q1], both signs.
  const Real* twr_f = nullptr;
  const Real* twi_f = nullptr;
  const Real* twr_i = nullptr;
  const Real* twi_i = nullptr;
  // Generic-radix butterfly tables [j1*r + q1] (null for 2/3/4/5/8).
  const Real* wrr_f = nullptr;
  const Real* wri_f = nullptr;
  const Real* wrr_i = nullptr;
  const Real* wri_i = nullptr;
};

// One pass through the scalar blocked kernels (portable fallback).
template <int W, int Sign, class Real>
void run_stage_scalar(const BStage<Real>& st, std::int64_t s, const Real* sre,
                      const Real* sim, Real* dre, Real* dim) {
  const Real* twr = Sign < 0 ? st.twr_f : st.twr_i;
  const Real* twi = Sign < 0 ? st.twi_f : st.twi_i;
  switch (st.r) {
    case 2:
      pass2_soa<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 3:
      pass3_soa<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 4:
      pass4_soa<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 5:
      pass5_soa<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 8:
      pass8_soa<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    default:
      passg_soa<W, Real>(st.r, st.m, s, sre, sim, dre, dim, twr, twi,
                         Sign < 0 ? st.wrr_f : st.wrr_i,
                         Sign < 0 ? st.wri_f : st.wri_i);
      break;
  }
}

#ifdef SOI_BATCH_VECEXT
// One pass through the vector kernels; caller guarantees s % W == 0.
template <int W, int Sign, class Real>
void run_stage_vec(const BStage<Real>& st, std::int64_t s, const Real* sre,
                   const Real* sim, Real* dre, Real* dim) {
  const Real* twr = Sign < 0 ? st.twr_f : st.twr_i;
  const Real* twi = Sign < 0 ? st.twi_f : st.twi_i;
  switch (st.r) {
    case 2:
      pass2_vec<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 3:
      pass3_vec<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 4:
      pass4_vec<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 5:
      pass5_vec<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    case 8:
      pass8_vec<W, Sign, Real>(st.m, s, sre, sim, dre, dim, twr, twi);
      break;
    default:
      passg_soa<4, Real>(st.r, st.m, s, sre, sim, dre, dim, twr, twi,
                         Sign < 0 ? st.wrr_f : st.wrr_i,
                         Sign < 0 ? st.wri_f : st.wri_i);
      break;
  }
}
#endif  // SOI_BATCH_VECEXT

// One pass at the widest vector width that divides the butterfly span s
// (capped by the dispatched tier width max_w). The span starts at v and
// multiplies by each radix, so early passes may run narrower than the
// machine width while later passes always fill it.
template <int Sign, class Real>
void run_stage_any(int max_w, const BStage<Real>& st, std::int64_t s,
                   const Real* sre, const Real* sim, Real* dre, Real* dim) {
#ifdef SOI_BATCH_VECEXT
  int w = max_w;
  while (w > 1 && s % w != 0) w /= 2;
  switch (w) {
    case 16:
      run_stage_vec<16, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    case 8:
      run_stage_vec<8, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    case 4:
      run_stage_vec<4, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    case 2:
      run_stage_vec<2, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    default:
      run_stage_scalar<1, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
  }
#else
  switch (max_w) {
    case 16:
      run_stage_scalar<16, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    case 8:
      run_stage_scalar<8, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    case 4:
      run_stage_scalar<4, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    case 2:
      run_stage_scalar<2, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
    default:
      run_stage_scalar<1, Sign, Real>(st, s, sre, sim, dre, dim);
      return;
  }
#endif
}

// Runs every stage over one SoA chunk of V lanes, ping-ponging between the
// A (holding the loaded input) and B buffers. Returns true when the final
// result sits in B.
template <int Sign, class Real>
bool run_stages(const std::vector<BStage<Real>>& stages, int max_w,
                std::int64_t v, Real* are, Real* aim, Real* bre, Real* bim) {
  const Real* sre = are;
  const Real* sim = aim;
  std::int64_t s = v;
  bool into_b = true;
  for (const BStage<Real>& st : stages) {
    Real* dre = into_b ? bre : are;
    Real* dim = into_b ? bim : aim;
    run_stage_any<Sign, Real>(max_w, st, s, sre, sim, dre, dim);
    sre = dre;
    sim = dim;
    into_b = !into_b;
    s *= st.r;
  }
  return !into_b;  // flipped after the last pass
}

// ---------------------------------------------------------------------------
// Fused load/store phases: AoS (std::complex) <-> SoA lanes, with the
// batch's memory layout folded in. Three cases, fastest first:
//   elem_stride == 1  — per-lane contiguous reads, cache-blocked over
//                       elements so the stride-V SoA writes stay resident,
//   batch_stride == 1 — lane-contiguous rows: one deinterleave per row,
//   generic           — strided gather/scatter.
// ---------------------------------------------------------------------------

constexpr std::int64_t kMoveBlock = 32;  // elements per cache block

template <class Real>
void load_soa(const cplx_t<Real>* in, BatchLayout l, std::int64_t n,
              std::int64_t b0, std::int64_t lanes, std::int64_t v, Real* re,
              Real* im) {
  const auto* raw = reinterpret_cast<const Real*>(in);
  if (l.elem_stride == 1) {
    for (std::int64_t e0 = 0; e0 < n; e0 += kMoveBlock) {
      const std::int64_t e1 = std::min(e0 + kMoveBlock, n);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const Real* src = raw + 2 * ((b0 + lv) * l.batch_stride + e0);
        for (std::int64_t e = e0; e < e1; ++e) {
          re[e * v + lv] = src[0];
          im[e * v + lv] = src[1];
          src += 2;
        }
      }
    }
  } else if (l.batch_stride == 1) {
    for (std::int64_t e = 0; e < n; ++e) {
      const Real* src = raw + 2 * (b0 + e * l.elem_stride);
      Real* rr = re + e * v;
      Real* ri = im + e * v;
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        rr[lv] = src[2 * lv];
        ri[lv] = src[2 * lv + 1];
      }
    }
  } else {
    for (std::int64_t e = 0; e < n; ++e) {
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const Real* src =
            raw + 2 * ((b0 + lv) * l.batch_stride + e * l.elem_stride);
        re[e * v + lv] = src[0];
        im[e * v + lv] = src[1];
      }
    }
  }
  if (lanes < v) {
    for (std::int64_t e = 0; e < n; ++e) {
      for (std::int64_t lv = lanes; lv < v; ++lv) {
        re[e * v + lv] = Real(0);
        im[e * v + lv] = Real(0);
      }
    }
  }
}

template <class Real>
void store_soa(const Real* re, const Real* im, std::int64_t n, std::int64_t b0,
               std::int64_t lanes, std::int64_t v, Real scale,
               cplx_t<Real>* out, BatchLayout l) {
  auto* raw = reinterpret_cast<Real*>(out);
  if (l.elem_stride == 1) {
    for (std::int64_t e0 = 0; e0 < n; e0 += kMoveBlock) {
      const std::int64_t e1 = std::min(e0 + kMoveBlock, n);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        Real* dst = raw + 2 * ((b0 + lv) * l.batch_stride + e0);
        for (std::int64_t e = e0; e < e1; ++e) {
          dst[0] = re[e * v + lv] * scale;
          dst[1] = im[e * v + lv] * scale;
          dst += 2;
        }
      }
    }
  } else if (l.batch_stride == 1) {
    for (std::int64_t e = 0; e < n; ++e) {
      Real* dst = raw + 2 * (b0 + e * l.elem_stride);
      const Real* rr = re + e * v;
      const Real* ri = im + e * v;
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        dst[2 * lv] = rr[lv] * scale;
        dst[2 * lv + 1] = ri[lv] * scale;
      }
    }
  } else {
    for (std::int64_t e = 0; e < n; ++e) {
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        Real* dst = raw + 2 * ((b0 + lv) * l.batch_stride + e * l.elem_stride);
        dst[0] = re[e * v + lv] * scale;
        dst[1] = im[e * v + lv] * scale;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchEngine: one of four strategies behind BatchFftT.
// ---------------------------------------------------------------------------

template <class Real>
class BatchEngine {
 public:
  using C = cplx_t<Real>;

  BatchEngine(std::int64_t n, std::int64_t width)
      : n_(n), width_(width), tier_(detect_simd_tier()) {
    if (n == 1) {
      kind_ = Kind::kIdentity;
    } else if (is_smooth(n)) {
      kind_ = Kind::kSmooth;
      build_smooth();
    } else if (is_prime(static_cast<std::uint64_t>(n))) {
      kind_ = Kind::kRader;
      build_rader();
    } else {
      kind_ = Kind::kBluestein;
      build_bluestein();
    }
  }

  [[nodiscard]] SimdTier tier() const { return tier_; }

  [[nodiscard]] std::int64_t effective_width(std::int64_t count) const {
    // Auto width: the kernels vectorise along the butterfly span s, which
    // starts at v and multiplies by each radix, so v only needs to cover
    // the first pass and the transpose tiles — and a narrow chunk keeps
    // the whole ping-pong working set (4 planes of n*v Reals) inside L1
    // for the sizes the SOI pipeline batches. Capped so one chunk's SoA
    // scratch stays memory friendly for huge n.
    constexpr std::int64_t kScratchBudget = std::int64_t{32} << 20;
    const std::int64_t cap = std::max<std::int64_t>(
        1, kScratchBudget / (4 * n_ * static_cast<std::int64_t>(sizeof(Real))));
    std::int64_t v = width_;
    if (v <= 0) {
#ifdef SOI_BATCH_VECEXT
      v = std::is_same_v<Real, double> ? 4 : 8;
#else
      v = std::max<std::int64_t>(2 * simd_width<Real>(tier_), 8);
#endif
    }
    return std::clamp<std::int64_t>(std::min(v, count), 1, cap);
  }

  [[nodiscard]] std::int64_t scratch_bytes(std::int64_t count) const {
    switch (kind_) {
      case Kind::kIdentity:
        return 0;
      case Kind::kSmooth: {
        // Mirror execute_smooth: 4 SoA planes of n*v Reals, 64B-rounded
        // plus the 128B anti-conflict stagger.
        const std::int64_t v = effective_width(count);
        const std::int64_t plane = ((n_ * v + 15) & ~std::int64_t{15}) + 16;
        return 4 * plane * static_cast<std::int64_t>(sizeof(Real));
      }
      case Kind::kRader: {
        const std::int64_t chunk = std::min<std::int64_t>(count, 64);
        const std::int64_t q = n_ - 1;
        const std::int64_t elems = 2 * chunk * n_ + 2 * chunk * q + chunk;
        return elems * static_cast<std::int64_t>(sizeof(C)) +
               sub_->scratch_bytes(chunk);
      }
      case Kind::kBluestein: {
        const std::int64_t chunk = std::min<std::int64_t>(count, 64);
        return 2 * chunk * blen_ * static_cast<std::int64_t>(sizeof(C)) +
               bsub_->scratch_bytes(chunk);
      }
    }
    return 0;
  }

  void execute(const C* in, BatchLayout lin, C* out, BatchLayout lout,
               std::int64_t count, bool inverse) const {
    switch (kind_) {
      case Kind::kIdentity: {
        for (std::int64_t b = 0; b < count; ++b) {
          out[b * lout.batch_stride] = in[b * lin.batch_stride];
        }
        return;
      }
      case Kind::kSmooth:
        execute_smooth(in, lin, out, lout, count, inverse);
        return;
      case Kind::kRader:
        execute_rader(in, lin, out, lout, count, inverse);
        return;
      case Kind::kBluestein:
        execute_bluestein(in, lin, out, lout, count, inverse);
        return;
    }
  }

 private:
  enum class Kind { kIdentity, kSmooth, kRader, kBluestein };

  // --- smooth: native SoA Stockham -----------------------------------------

  void build_smooth() {
    const auto radices = radix_schedule_batch(n_);
    std::int64_t nt = n_;
    std::size_t tw_total = 0;
    for (std::int64_t r : radices) {
      tw_total += static_cast<std::size_t>(nt);
      nt /= r;
    }
    twr_f_.resize(tw_total);
    twi_f_.resize(tw_total);
    twr_i_.resize(tw_total);
    twi_i_.resize(tw_total);
    std::size_t off = 0;
    nt = n_;
    for (std::int64_t r : radices) {
      const std::int64_t m = nt / r;
      BStage<Real> st;
      st.r = r;
      st.m = m;
      st.twr_f = twr_f_.data() + off;
      st.twi_f = twi_f_.data() + off;
      st.twr_i = twr_i_.data() + off;
      st.twi_i = twi_i_.data() + off;
      for (std::int64_t j2 = 0; j2 < m; ++j2) {
        for (std::int64_t q1 = 0; q1 < r; ++q1) {
          const cplx w = omega(j2 * q1, nt);
          const auto idx = off + static_cast<std::size_t>(j2 * r + q1);
          twr_f_[idx] = static_cast<Real>(w.real());
          twi_f_[idx] = static_cast<Real>(w.imag());
          twr_i_[idx] = static_cast<Real>(w.real());
          twi_i_[idx] = static_cast<Real>(-w.imag());
        }
      }
      off += static_cast<std::size_t>(nt);
      if (r != 2 && r != 3 && r != 4 && r != 5 && r != 8) {
        auto& wf = wr_split_[static_cast<std::size_t>(r)];
        if (wf.rr_f.empty()) {
          wf.rr_f.resize(static_cast<std::size_t>(r * r));
          wf.ri_f.resize(static_cast<std::size_t>(r * r));
          wf.rr_i.resize(static_cast<std::size_t>(r * r));
          wf.ri_i.resize(static_cast<std::size_t>(r * r));
          for (std::int64_t j = 0; j < r; ++j) {
            for (std::int64_t q = 0; q < r; ++q) {
              const cplx w = omega(j * q, r);
              const auto idx = static_cast<std::size_t>(j * r + q);
              wf.rr_f[idx] = static_cast<Real>(w.real());
              wf.ri_f[idx] = static_cast<Real>(w.imag());
              wf.rr_i[idx] = static_cast<Real>(w.real());
              wf.ri_i[idx] = static_cast<Real>(-w.imag());
            }
          }
        }
        st.wrr_f = wf.rr_f.data();
        st.wri_f = wf.ri_f.data();
        st.wrr_i = wf.rr_i.data();
        st.wri_i = wf.ri_i.data();
      }
      stages_.push_back(st);
      nt = m;
    }
#ifdef SOI_BATCH_VECEXT
    // Double/v=4 fast-path eligibility, decided once per plan. The shuffle
    // transposes need 4-element tiles (n % 4); the paired first pass needs
    // a radix-8 head with an even butterfly count; the fused last pass
    // needs a radix-4 tail and 16-column groups (s = n at the last stage).
    if constexpr (std::is_same_v<Real, double>) {
      fast_ok_ =
          tier_ >= SimdTier::kAvx2 && n_ % 4 == 0 && !stages_.empty();
      pair_ok_ =
          fast_ok_ && stages_.front().r == 8 && stages_.front().m % 2 == 0;
      fused_ok_ = fast_ok_ && stages_.back().r == 4 && n_ % 16 == 0;
      if (pair_ok_) {
        // tw[(jp*8+q)*8 + l] = twiddle(j2 = 2*jp + l/4, q) — each vector
        // holds one twiddle replicated across the 4 lanes of two adjacent
        // butterflies, so the paired kernel loads it in one op.
        const std::int64_t m = stages_.front().m;
        const auto sz = static_cast<std::size_t>((m / 2) * 64);
        tw8p_r_f_.resize(sz);
        tw8p_i_f_.resize(sz);
        tw8p_r_i_.resize(sz);
        tw8p_i_i_.resize(sz);
        for (std::int64_t jp = 0; jp < m / 2; ++jp) {
          for (std::int64_t q = 0; q < 8; ++q) {
            for (int l = 0; l < 8; ++l) {
              const std::int64_t j2 = 2 * jp + l / 4;
              const cplx w = omega(j2 * q, n_);
              const auto idx = static_cast<std::size_t>((jp * 8 + q) * 8 + l);
              tw8p_r_f_[idx] = static_cast<Real>(w.real());
              tw8p_i_f_[idx] = static_cast<Real>(w.imag());
              tw8p_r_i_[idx] = static_cast<Real>(w.real());
              tw8p_i_i_[idx] = static_cast<Real>(-w.imag());
            }
          }
        }
      }
    }
#endif
  }

  template <int Sign>
  void run_chunk_dispatch(std::int64_t v, Real* are, Real* aim, Real* bre,
                          Real* bim, bool* in_b) const {
    *in_b = run_stages<Sign, Real>(stages_, simd_width<Real>(tier_), v, are,
                                   aim, bre, bim);
  }

  // Double/v=4 fast chunk: shuffle-network load, paired radix-8 first pass
  // (when the schedule starts with radix 8 and m is even), vector middle
  // passes, and either the fused radix-4 last pass + store or the shuffle
  // store. Caller guarantees fast_ok_, full lanes and unit element strides.
  template <int Sign>
  void run_chunk_fast(const C* inb, std::int64_t ibs, C* outb,
                      std::int64_t obs, Real scale, Real* are, Real* aim,
                      Real* bre, Real* bim) const {
#ifdef SOI_BATCH_VECEXT
    if constexpr (std::is_same_v<Real, double>) {
      const Real* sre = are;
      const Real* sim = aim;
      std::int64_t s = 4;
      bool into_b = true;
      std::size_t si = 0;
      if (pair_ok_) {
        pass8_first_pair4_fused<Sign>(
            inb, ibs, stages_[0].m, bre, bim,
            Sign < 0 ? tw8p_r_f_.data() : tw8p_r_i_.data(),
            Sign < 0 ? tw8p_i_f_.data() : tw8p_i_i_.data());
        sre = bre;
        sim = bim;
        into_b = false;
        s *= 8;
        si = 1;
      } else {
        load_shuf4(inb, ibs, n_, are, aim);
      }
      const int max_w = simd_width<Real>(tier_);
      for (; si < stages_.size(); ++si) {
        if (si + 1 == stages_.size() && fused_ok_) {
          if (scale != Real(1)) {
            pass4_last_store4<Sign, true>(s, sre, sim, obs, scale, outb);
          } else {
            pass4_last_store4<Sign, false>(s, sre, sim, obs, scale, outb);
          }
          return;
        }
        Real* dre = into_b ? bre : are;
        Real* dim = into_b ? bim : aim;
        run_stage_any<Sign, Real>(max_w, stages_[si], s, sre, sim, dre, dim);
        sre = dre;
        sim = dim;
        into_b = !into_b;
        s *= stages_[si].r;
      }
      if (scale != Real(1)) {
        store_shuf4<true>(sre, sim, n_, obs, scale, outb);
      } else {
        store_shuf4<false>(sre, sim, n_, obs, scale, outb);
      }
      return;
    }
#endif
    (void)inb;
    (void)ibs;
    (void)outb;
    (void)obs;
    (void)scale;
    (void)are;
    (void)aim;
    (void)bre;
    (void)bim;
  }

  void execute_smooth(const C* in, BatchLayout lin, C* out, BatchLayout lout,
                      std::int64_t count, bool inverse) const {
    const std::int64_t v = effective_width(count);
    const std::int64_t chunks = (count + v - 1) / v;
    const Real scale =
        inverse ? Real(1) / static_cast<Real>(n_) : Real(1);
    // Four SoA planes per thread, rounded so each plane stays 64B-aligned,
    // plus a 128B stagger so same-index lines of the ping-pong planes do
    // not all land in the same L1 set.
    const std::size_t plane =
        ((static_cast<std::size_t>(n_ * v) + 15) & ~std::size_t{15}) + 16;
    const bool fast =
        fast_ok_ && v == 4 && lin.elem_stride == 1 && lout.elem_stride == 1;
    auto chunk_body = [&](std::int64_t ch, Real* are, Real* aim, Real* bre,
                          Real* bim) {
      const std::int64_t b0 = ch * v;
      const std::int64_t lanes = std::min(v, count - b0);
      if (fast && lanes == v) {
        const C* inb = in + b0 * lin.batch_stride;
        C* outb = out + b0 * lout.batch_stride;
        if (inverse) {
          run_chunk_fast<+1>(inb, lin.batch_stride, outb, lout.batch_stride,
                             scale, are, aim, bre, bim);
        } else {
          run_chunk_fast<-1>(inb, lin.batch_stride, outb, lout.batch_stride,
                             scale, are, aim, bre, bim);
        }
        return;
      }
      load_soa<Real>(in, lin, n_, b0, lanes, v, are, aim);
      bool in_b = false;
      if (inverse) {
        run_chunk_dispatch<+1>(v, are, aim, bre, bim, &in_b);
      } else {
        run_chunk_dispatch<-1>(v, are, aim, bre, bim, &in_b);
      }
      const Real* fre = in_b ? bre : are;
      const Real* fim = in_b ? bim : aim;
      store_soa<Real>(fre, fim, n_, b0, lanes, v, scale, out, lout);
    };
    // Persistent per-thread scratch: repeated batched calls (the SOI
    // pipeline's segment loops) reuse the same planes instead of paying an
    // allocation per execute.
    auto scratch = [plane]() -> Real* {
      static thread_local rvec<Real> buf;
      if (buf.size() < 4 * plane) buf.resize(4 * plane);
      return buf.data();
    };
#ifdef _OPENMP
#pragma omp parallel if (chunks > 1)
    {
      Real* p = scratch();
#pragma omp for schedule(static)
      for (std::int64_t ch = 0; ch < chunks; ++ch) {
        chunk_body(ch, p, p + plane, p + 2 * plane, p + 3 * plane);
      }
    }
#else
    Real* p = scratch();
    for (std::int64_t ch = 0; ch < chunks; ++ch) {
      chunk_body(ch, p, p + plane, p + 2 * plane, p + 3 * plane);
    }
#endif
  }

  // --- batched Rader --------------------------------------------------------
  //
  // The g^m permutation, the pointwise kernel multiply and the x[0]
  // correction are uniform across a batch, so a batch of prime-size
  // transforms becomes two batched smooth transforms of length p-1 through
  // a recursive BatchFftT (p-1 is even, so the recursion terminates at
  // smooth or Bluestein, never Rader again).

  void build_rader() {
    const auto g = primitive_root(static_cast<std::uint64_t>(n_));
    const std::int64_t q = n_ - 1;
    perm_.resize(static_cast<std::size_t>(q));
    inv_perm_.resize(static_cast<std::size_t>(q));
    std::uint64_t gm = 1;
    for (std::int64_t m = 0; m < q; ++m) {
      perm_[static_cast<std::size_t>(m)] = static_cast<std::int64_t>(gm);
      inv_perm_[static_cast<std::size_t>((q - m) % q)] =
          static_cast<std::int64_t>(gm);
      gm = mulmod(gm, g, static_cast<std::uint64_t>(n_));
    }
    sub_ = std::make_unique<BatchFftT<Real>>(q, width_);
    cvec_t<Real> b(static_cast<std::size_t>(q));
    for (std::int64_t m = 0; m < q; ++m) {
      b[static_cast<std::size_t>(m)] = static_cast<C>(
          omega(inv_perm_[static_cast<std::size_t>(m)], n_));
    }
    kernel_fft_.resize(static_cast<std::size_t>(q));
    sub_->forward(b, kernel_fft_, 1);
  }

  void execute_rader(const C* in, BatchLayout lin, C* out, BatchLayout lout,
                     std::int64_t count, bool inverse) const {
    const std::int64_t p = n_;
    const std::int64_t q = p - 1;
    const std::int64_t chunk = std::min<std::int64_t>(count, 64);
    cvec_t<Real> in_c(static_cast<std::size_t>(chunk * p));
    cvec_t<Real> out_c(static_cast<std::size_t>(chunk * p));
    cvec_t<Real> a(static_cast<std::size_t>(chunk * q));
    cvec_t<Real> b(static_cast<std::size_t>(chunk * q));
    std::vector<C> tot(static_cast<std::size_t>(chunk));
    for (std::int64_t b0 = 0; b0 < count; b0 += chunk) {
      const std::int64_t lanes = std::min(chunk, count - b0);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const C* src = in + (b0 + lv) * lin.batch_stride;
        C* dst = in_c.data() + lv * p;
        if (inverse) {
          for (std::int64_t j = 0; j < p; ++j) {
            dst[j] = std::conj(src[j * lin.elem_stride]);
          }
        } else {
          for (std::int64_t j = 0; j < p; ++j) dst[j] = src[j * lin.elem_stride];
        }
      }
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const C* x = in_c.data() + lv * p;
        C* al = a.data() + lv * q;
        C total = x[0];
        for (std::int64_t m = 0; m < q; ++m) {
          al[m] = x[perm_[static_cast<std::size_t>(m)]];
          total += al[m];
        }
        tot[static_cast<std::size_t>(lv)] = total;
      }
      sub_->forward(cspan_t<Real>{a.data(), static_cast<std::size_t>(lanes * q)},
                    mspan_t<Real>{b.data(), static_cast<std::size_t>(lanes * q)},
                    lanes);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        C* bl = b.data() + lv * q;
        for (std::int64_t m = 0; m < q; ++m) {
          bl[m] *= kernel_fft_[static_cast<std::size_t>(m)];
        }
      }
      sub_->inverse(cspan_t<Real>{b.data(), static_cast<std::size_t>(lanes * q)},
                    mspan_t<Real>{a.data(), static_cast<std::size_t>(lanes * q)},
                    lanes);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const C* x = in_c.data() + lv * p;
        const C* al = a.data() + lv * q;
        C* y = out_c.data() + lv * p;
        y[0] = tot[static_cast<std::size_t>(lv)];
        for (std::int64_t m = 0; m < q; ++m) {
          y[inv_perm_[static_cast<std::size_t>(m)]] = x[0] + al[m];
        }
      }
      const Real scale = Real(1) / static_cast<Real>(p);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const C* y = out_c.data() + lv * p;
        C* dst = out + (b0 + lv) * lout.batch_stride;
        if (inverse) {
          for (std::int64_t j = 0; j < p; ++j) {
            dst[j * lout.elem_stride] = std::conj(y[j]) * scale;
          }
        } else {
          for (std::int64_t j = 0; j < p; ++j) dst[j * lout.elem_stride] = y[j];
        }
      }
    }
  }

  // --- batched Bluestein ----------------------------------------------------

  void build_bluestein() {
    blen_ = next_pow2(2 * n_ - 1);
    bsub_ = std::make_unique<BatchFftT<Real>>(blen_, width_);
    chirp_f_.resize(static_cast<std::size_t>(n_));
    chirp_i_.resize(static_cast<std::size_t>(n_));
    for (std::int64_t j = 0; j < n_; ++j) {
      const std::int64_t jj = (j * j) % (2 * n_);
      const double ang = -kPi * static_cast<double>(jj) /
                         static_cast<double>(n_);
      chirp_f_[static_cast<std::size_t>(j)] =
          static_cast<C>(cplx{std::cos(ang), std::sin(ang)});
      chirp_i_[static_cast<std::size_t>(j)] =
          std::conj(chirp_f_[static_cast<std::size_t>(j)]);
    }
    kfft_f_ = build_bluestein_kernel(chirp_f_);
    kfft_i_ = build_bluestein_kernel(chirp_i_);
  }

  cvec_t<Real> build_bluestein_kernel(const cvec_t<Real>& chirp) const {
    cvec_t<Real> k(static_cast<std::size_t>(blen_), C{0, 0});
    for (std::int64_t j = 0; j < n_; ++j) {
      const C v = std::conj(chirp[static_cast<std::size_t>(j)]);
      k[static_cast<std::size_t>(j)] = v;
      if (j != 0) k[static_cast<std::size_t>(blen_ - j)] = v;
    }
    cvec_t<Real> kf(static_cast<std::size_t>(blen_));
    bsub_->forward(k, kf, 1);
    return kf;
  }

  void execute_bluestein(const C* in, BatchLayout lin, C* out,
                         BatchLayout lout, std::int64_t count,
                         bool inverse) const {
    const cvec_t<Real>& chirp = inverse ? chirp_i_ : chirp_f_;
    const cvec_t<Real>& kfft = inverse ? kfft_i_ : kfft_f_;
    const Real scale =
        inverse ? Real(1) / static_cast<Real>(n_) : Real(1);
    const std::int64_t chunk = std::min<std::int64_t>(count, 64);
    cvec_t<Real> a(static_cast<std::size_t>(chunk * blen_));
    cvec_t<Real> b(static_cast<std::size_t>(chunk * blen_));
    for (std::int64_t b0 = 0; b0 < count; b0 += chunk) {
      const std::int64_t lanes = std::min(chunk, count - b0);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const C* src = in + (b0 + lv) * lin.batch_stride;
        C* al = a.data() + lv * blen_;
        for (std::int64_t j = 0; j < n_; ++j) {
          al[j] = src[j * lin.elem_stride] * chirp[static_cast<std::size_t>(j)];
        }
        for (std::int64_t j = n_; j < blen_; ++j) al[j] = C{0, 0};
      }
      bsub_->forward(
          cspan_t<Real>{a.data(), static_cast<std::size_t>(lanes * blen_)},
          mspan_t<Real>{b.data(), static_cast<std::size_t>(lanes * blen_)},
          lanes);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        C* bl = b.data() + lv * blen_;
        for (std::int64_t j = 0; j < blen_; ++j) {
          bl[j] *= kfft[static_cast<std::size_t>(j)];
        }
      }
      bsub_->inverse(
          cspan_t<Real>{b.data(), static_cast<std::size_t>(lanes * blen_)},
          mspan_t<Real>{a.data(), static_cast<std::size_t>(lanes * blen_)},
          lanes);
      for (std::int64_t lv = 0; lv < lanes; ++lv) {
        const C* al = a.data() + lv * blen_;
        C* dst = out + (b0 + lv) * lout.batch_stride;
        for (std::int64_t k = 0; k < n_; ++k) {
          dst[k * lout.elem_stride] =
              al[k] * chirp[static_cast<std::size_t>(k)] * scale;
        }
      }
    }
  }

  std::int64_t n_;
  std::int64_t width_;
  SimdTier tier_;
  Kind kind_ = Kind::kIdentity;

  // Smooth state.
  std::vector<BStage<Real>> stages_;
  rvec<Real> twr_f_, twi_f_, twr_i_, twi_i_;
  // Double/v=4 fast path (see build_smooth): flags and the pair-expanded
  // first-stage twiddles.
  bool fast_ok_ = false;
  bool pair_ok_ = false;
  bool fused_ok_ = false;
  rvec<Real> tw8p_r_f_, tw8p_i_f_, tw8p_r_i_, tw8p_i_i_;
  struct WrSplit {
    rvec<Real> rr_f, ri_f, rr_i, ri_i;
  };
  std::array<WrSplit, kMaxDirectRadix + 1> wr_split_{};

  // Rader state.
  std::vector<std::int64_t> perm_, inv_perm_;
  std::unique_ptr<BatchFftT<Real>> sub_;
  cvec_t<Real> kernel_fft_;

  // Bluestein state.
  std::int64_t blen_ = 0;
  std::unique_ptr<BatchFftT<Real>> bsub_;
  cvec_t<Real> chirp_f_, chirp_i_, kfft_f_, kfft_i_;
};

}  // namespace detail

template <class Real>
BatchFftT<Real>::BatchFftT(std::int64_t n, std::int64_t batch_width)
    : n_(n), width_(batch_width) {
  SOI_CHECK(n >= 1, "BatchFft: size must be positive, got " << n);
  SOI_CHECK(batch_width >= 0,
            "BatchFft: batch_width must be >= 0, got " << batch_width);
  engine_ = std::make_unique<detail::BatchEngine<Real>>(n, batch_width);
}

template <class Real>
BatchFftT<Real>::~BatchFftT() = default;
template <class Real>
BatchFftT<Real>::BatchFftT(BatchFftT&&) noexcept = default;
template <class Real>
BatchFftT<Real>& BatchFftT<Real>::operator=(BatchFftT&&) noexcept = default;

template <class Real>
std::int64_t BatchFftT<Real>::effective_width(std::int64_t count) const {
  return engine_->effective_width(std::max<std::int64_t>(count, 1));
}

template <class Real>
SimdTier BatchFftT<Real>::simd_tier() const {
  return engine_->tier();
}

template <class Real>
std::int64_t BatchFftT<Real>::scratch_bytes(std::int64_t count) const {
  return engine_->scratch_bytes(std::max<std::int64_t>(count, 1));
}

namespace {
void check_span(std::size_t have, std::int64_t n, BatchLayout l,
                std::int64_t count, const char* what) {
  const std::int64_t max_index =
      (count - 1) * l.batch_stride + (n - 1) * l.elem_stride;
  SOI_CHECK(l.batch_stride >= 0 && l.elem_stride >= 0,
            what << ": negative strides are not supported");
  SOI_CHECK(have > static_cast<std::size_t>(max_index),
            what << ": buffer of " << have << " elements too small for batch "
                 << "(needs " << (max_index + 1) << ")");
}
}  // namespace

template <class Real>
void BatchFftT<Real>::forward_strided(cspan_t<Real> in, BatchLayout lin,
                                      mspan_t<Real> out, BatchLayout lout,
                                      std::int64_t count) const {
  SOI_CHECK(count >= 1, "BatchFft::forward: count must be >= 1");
  check_span(in.size(), n_, lin, count, "BatchFft::forward(in)");
  check_span(out.size(), n_, lout, count, "BatchFft::forward(out)");
  engine_->execute(in.data(), lin, out.data(), lout, count, /*inverse=*/false);
}

template <class Real>
void BatchFftT<Real>::inverse_strided(cspan_t<Real> in, BatchLayout lin,
                                      mspan_t<Real> out, BatchLayout lout,
                                      std::int64_t count) const {
  SOI_CHECK(count >= 1, "BatchFft::inverse: count must be >= 1");
  check_span(in.size(), n_, lin, count, "BatchFft::inverse(in)");
  check_span(out.size(), n_, lout, count, "BatchFft::inverse(out)");
  engine_->execute(in.data(), lin, out.data(), lout, count, /*inverse=*/true);
}

template <class Real>
void BatchFftT<Real>::forward(cspan_t<Real> in, mspan_t<Real> out,
                              std::int64_t count) const {
  forward_strided(in, contiguous_layout(n_), out, contiguous_layout(n_),
                  count);
}

template <class Real>
void BatchFftT<Real>::inverse(cspan_t<Real> in, mspan_t<Real> out,
                              std::int64_t count) const {
  inverse_strided(in, contiguous_layout(n_), out, contiguous_layout(n_),
                  count);
}

template class BatchFftT<double>;
template class BatchFftT<float>;

}  // namespace soi::fft
