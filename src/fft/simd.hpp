// Runtime SIMD capability detection for the batched FFT executor's kernel
// dispatch. The kernels themselves are compile-time width templates (plain
// fixed-trip-count loops the compiler lowers to vector code); this header
// only decides WHICH width to run at on the current machine, mirroring the
// tile-width dispatch of the convolution kernel in src/soi/convolve.cpp.
//
// The tier can be forced with the SOI_SIMD environment variable
// (scalar | sse2 | avx2 | avx512) — used by the parity tests to exercise
// every dispatch path on one machine, and as an escape hatch.
#pragma once

#include <cstdlib>
#include <cstring>

namespace soi::fft {

enum class SimdTier {
  kScalar,   ///< no vector units assumed (1 Real lane)
  kSse2,     ///< 128-bit (2 doubles / 4 floats)
  kAvx2,     ///< 256-bit (4 doubles / 8 floats)
  kAvx512,   ///< 512-bit (8 doubles / 16 floats)
};

inline const char* simd_tier_name(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "?";
}

/// Highest tier the host supports (clamped by SOI_SIMD when set).
inline SimdTier detect_simd_tier() {
  SimdTier best = SimdTier::kScalar;
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse2")) best = SimdTier::kSse2;
  if (__builtin_cpu_supports("avx2")) best = SimdTier::kAvx2;
  if (__builtin_cpu_supports("avx512f")) best = SimdTier::kAvx512;
#elif defined(__aarch64__)
  best = SimdTier::kSse2;  // NEON: 128-bit lanes, same width class as SSE2
#endif
  if (const char* env = std::getenv("SOI_SIMD")) {
    SimdTier forced = best;
    if (std::strcmp(env, "scalar") == 0) forced = SimdTier::kScalar;
    else if (std::strcmp(env, "sse2") == 0) forced = SimdTier::kSse2;
    else if (std::strcmp(env, "avx2") == 0) forced = SimdTier::kAvx2;
    else if (std::strcmp(env, "avx512") == 0) forced = SimdTier::kAvx512;
    if (forced < best) best = forced;  // can only clamp down, never lie up
  }
  return best;
}

/// Vector width in Real lanes at a tier (1 for scalar).
template <class Real>
constexpr int simd_width(SimdTier t) {
  const int bytes = t == SimdTier::kSse2    ? 16
                    : t == SimdTier::kAvx2  ? 32
                    : t == SimdTier::kAvx512 ? 64
                                             : static_cast<int>(sizeof(Real));
  return bytes / static_cast<int>(sizeof(Real));
}

}  // namespace soi::fft
