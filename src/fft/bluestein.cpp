// Bluestein chirp-z transform: turns an arbitrary-length DFT into a cyclic
// convolution of a power-of-two length, enabling O(n log n) for any n
// (including large primes, used as the catch-all strategy).
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "fft/executor.hpp"
#include "fft/plan.hpp"

namespace soi::fft::detail {

namespace {

template <class Real>
class BluesteinExecutor final : public ExecutorT<Real> {
 public:
  using C = cplx_t<Real>;

  explicit BluesteinExecutor(std::int64_t n)
      : n_(n), len_(next_pow2(2 * n - 1)), sub_(len_) {
    chirp_fwd_.resize(static_cast<std::size_t>(n));
    chirp_inv_.resize(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j) {
      // exp(-i pi j^2 / n); exponent reduced mod 2n (the chirp's period).
      // Chirps are computed in double regardless of Real to keep the
      // quadratic phase accurate at large n.
      const std::int64_t jj = (j * j) % (2 * n);
      const double ang =
          -kPi * static_cast<double>(jj) / static_cast<double>(n);
      chirp_fwd_[static_cast<std::size_t>(j)] =
          static_cast<C>(cplx{std::cos(ang), std::sin(ang)});
      chirp_inv_[static_cast<std::size_t>(j)] =
          std::conj(chirp_fwd_[static_cast<std::size_t>(j)]);
    }
    kernel_fft_fwd_ = build_kernel(chirp_fwd_);
    kernel_fft_inv_ = build_kernel(chirp_inv_);
  }

  [[nodiscard]] std::size_t work_elems() const override {
    // Layout: [A: len][B: len][sub-plan workspace].
    return static_cast<std::size_t>(2 * len_) + sub_.workspace_size();
  }

  void forward(const C* in, C* out, C* work) const override {
    run(in, out, work, chirp_fwd_, kernel_fft_fwd_, /*scale=*/Real(1));
  }

  void inverse(const C* in, C* out, C* work) const override {
    run(in, out, work, chirp_inv_, kernel_fft_inv_,
        /*scale=*/Real(1) / static_cast<Real>(n_));
  }

 private:
  cvec_t<Real> build_kernel(const cvec_t<Real>& chirp) const {
    // Kernel k[j] = conj(chirp[j]) placed circularly: k[0], k[j] = k[len-j].
    cvec_t<Real> k(static_cast<std::size_t>(len_), C{0, 0});
    for (std::int64_t j = 0; j < n_; ++j) {
      const C v = std::conj(chirp[static_cast<std::size_t>(j)]);
      k[static_cast<std::size_t>(j)] = v;
      if (j != 0) k[static_cast<std::size_t>(len_ - j)] = v;
    }
    cvec_t<Real> kf(static_cast<std::size_t>(len_));
    sub_.forward(k, kf);
    return kf;
  }

  void run(const C* in, C* out, C* work, const cvec_t<Real>& chirp,
           const cvec_t<Real>& kernel_fft, Real scale) const {
    C* a = work;
    C* b = work + len_;
    C* sub_work = work + 2 * len_;
    const mspan_t<Real> sub_ws{sub_work, sub_.workspace_size()};
    // a := chirped input, zero padded to len.
    for (std::int64_t j = 0; j < n_; ++j) {
      a[j] = in[j] * chirp[static_cast<std::size_t>(j)];
    }
    for (std::int64_t j = n_; j < len_; ++j) a[j] = C{0, 0};
    sub_.forward(cspan_t<Real>{a, static_cast<std::size_t>(len_)},
                 mspan_t<Real>{b, static_cast<std::size_t>(len_)}, sub_ws);
    for (std::int64_t j = 0; j < len_; ++j) {
      b[j] *= kernel_fft[static_cast<std::size_t>(j)];
    }
    sub_.inverse(cspan_t<Real>{b, static_cast<std::size_t>(len_)},
                 mspan_t<Real>{a, static_cast<std::size_t>(len_)}, sub_ws);
    for (std::int64_t k = 0; k < n_; ++k) {
      out[k] = a[k] * chirp[static_cast<std::size_t>(k)] * scale;
    }
  }

  std::int64_t n_;
  std::int64_t len_;
  FftPlanT<Real> sub_;  // power-of-two: always mixed radix, never recurses
  cvec_t<Real> chirp_fwd_;
  cvec_t<Real> chirp_inv_;
  cvec_t<Real> kernel_fft_fwd_;
  cvec_t<Real> kernel_fft_inv_;
};

}  // namespace

template <class Real>
std::unique_ptr<ExecutorT<Real>> make_bluestein_executor(std::int64_t n) {
  SOI_CHECK(n >= 2, "Bluestein requires n >= 2");
  return std::make_unique<BluesteinExecutor<Real>>(n);
}

template std::unique_ptr<ExecutorT<double>> make_bluestein_executor<double>(
    std::int64_t);
template std::unique_ptr<ExecutorT<float>> make_bluestein_executor<float>(
    std::int64_t);

}  // namespace soi::fft::detail
