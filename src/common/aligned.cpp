#include "common/aligned.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace soi {

namespace {
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<std::int64_t> g_alloc_bytes{0};
}  // namespace

void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) bytes = alignment;  // avoid zero-size allocation pitfalls
  // std::aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<std::int64_t>(rounded),
                          std::memory_order_relaxed);
  return p;
}

AllocStats alloc_stats() noexcept {
  AllocStats s;
  s.count = g_alloc_count.load(std::memory_order_relaxed);
  s.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  return s;
}

void aligned_free(void* p) noexcept { std::free(p); }

}  // namespace soi
