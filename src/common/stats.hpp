// Accuracy and run-statistics helpers: SNR in dB (the paper's accuracy
// metric, Section 7.2), relative errors, and the best-of-many / confidence
// interval reporting used in Figures 5 and 6.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace soi {

/// ||a - b||_2.
double l2_diff(cspan a, cspan b);

/// ||a||_2.
double l2_norm(cspan a);

/// Relative L2 error ||got - ref|| / ||ref||. Returns 0 when both are zero.
double rel_error(cspan got, cspan ref);

/// Signal-to-noise ratio in dB: 10*log10(||ref||^2 / ||got-ref||^2).
/// Returns +inf (represented as 1e9) for an exact match.
double snr_db(cspan got, cspan ref);

/// Convert an SNR in dB to equivalent decimal digits of accuracy
/// (the paper speaks of "14.5 digits" for 290 dB: digits = dB / 20).
double snr_digits(double snr_db_value);

/// Maximum elementwise absolute difference.
double max_abs_diff(cspan a, cspan b);

/// Summary statistics for repeated timing runs.
struct RunStats {
  double best = 0.0;    ///< minimum (paper reports max GFLOPS == min time)
  double worst = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci90_half = 0.0;  ///< half-width of 90% CI (normal approx, Fig. 6)
  std::size_t n = 0;
};

/// Compute RunStats from a sample of measurements (seconds, GFLOPS, ...).
RunStats summarize(const std::vector<double>& samples);

/// The paper's performance metric: 5*N*log2(N) / seconds, in GFLOPS.
double fft_gflops(std::size_t n, double seconds);

}  // namespace soi
