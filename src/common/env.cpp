#include "common/env.hpp"

#include <cstdlib>

namespace soi {

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

}  // namespace soi
