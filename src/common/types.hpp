// Core scalar and vector types shared by every SOI-FFT module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.hpp"

namespace soi {

/// Precision-generic aliases (the FFT engine is instantiated for both
/// double and float, FFTW-style).
template <class Real>
using cplx_t = std::complex<Real>;
template <class Real>
using cvec_t = std::vector<cplx_t<Real>, AlignedAllocator<cplx_t<Real>, 64>>;
template <class Real>
using cspan_t = std::span<const cplx_t<Real>>;
template <class Real>
using mspan_t = std::span<cplx_t<Real>>;

/// Double-precision complex — the working precision of the library,
/// matching the paper's double-precision evaluation (Section 7).
using cplx = cplx_t<double>;

/// Single-precision complex, used by the reduced-precision experiments.
using cplxf = cplx_t<float>;

/// Cache-line aligned complex vector. All transform buffers use this so
/// kernels may assume 64-byte alignment.
using cvec = cvec_t<double>;
using cvecf = cvec_t<float>;

/// Cache-line aligned double vector.
using dvec = std::vector<double, AlignedAllocator<double, 64>>;

/// Read-only / mutable complex views used across public APIs.
using cspan = cspan_t<double>;
using mspan = mspan_t<double>;
using cspanf = cspan_t<float>;
using mspanf = mspan_t<float>;

inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kTwoPi = 2.0 * kPi;

/// exp(-i*2*pi*k/n): the DFT root of unity convention used throughout
/// (forward transform has the negative exponent, as in the paper).
inline cplx omega(std::int64_t k, std::int64_t n) {
  const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
  return {std::cos(ang), std::sin(ang)};
}

}  // namespace soi
