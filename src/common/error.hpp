// Error reporting: precondition checks throw soi::Error with context.
//
// Errors carry a Status code so callers can tell recoverable conditions
// (a communication timeout that a retry may clear) from fatal ones (bad
// arguments, corrupted payloads that exhausted recovery, numerically
// poisoned output). SOI_CHECK failures are kInvalidArgument; the typed
// subclasses below are thrown by the transport and pipeline resilience
// paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace soi {

/// Error taxonomy of the library. Every thrown soi::Error carries one.
enum class Status {
  kOk = 0,
  kInvalidArgument,     ///< violated precondition (SOI_CHECK, bad sizes)
  kCommTimeout,         ///< a bounded wait exhausted its retries
  kPayloadCorruption,   ///< checksum/size mismatch that recovery couldn't fix
  kAccuracyFault,       ///< residual guard: output outside the error bound
  kResourceExhausted,   ///< admission rejected: queue/capacity full
  kDeadlineExceeded,    ///< request shed: cannot finish before its deadline
};

/// Stable name for a status code ("CommTimeout", ...).
[[nodiscard]] constexpr const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "Ok";
    case Status::kInvalidArgument: return "InvalidArgument";
    case Status::kCommTimeout: return "CommTimeout";
    case Status::kPayloadCorruption: return "PayloadCorruption";
    case Status::kAccuracyFault: return "AccuracyFault";
    case Status::kResourceExhausted: return "ResourceExhausted";
    case Status::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

/// Library-wide exception type. Thrown on violated preconditions
/// (bad transform sizes, mismatched buffers, invalid window parameters)
/// and by the resilience layer with the matching Status code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 Status status = Status::kInvalidArgument)
      : std::runtime_error(what), status_(status) {}

  [[nodiscard]] Status status() const { return status_; }

 private:
  Status status_;
};

/// A deadline-bounded wait ran out of retries (net::Comm::wait /
/// the executor's chunk-retry loop).
class CommTimeoutError : public Error {
 public:
  explicit CommTimeoutError(const std::string& what)
      : Error(what, Status::kCommTimeout) {}
};

/// A message failed its CRC32 / size verification and the retained-copy
/// recovery path was disabled or exhausted.
class PayloadCorruptionError : public Error {
 public:
  explicit PayloadCorruptionError(const std::string& what)
      : Error(what, Status::kPayloadCorruption) {}
};

/// Post-demodulation residual guard tripped: the output's energy residual
/// exceeds the window-conditioned bound kappa*(eps_fft+eps_alias+eps_trunc).
class AccuracyFaultError : public Error {
 public:
  explicit AccuracyFaultError(const std::string& what)
      : Error(what, Status::kAccuracyFault) {}
};

/// The serving layer's bounded admission queue (or slot pool) is full and
/// the request was rejected — backpressure, not failure; retry later.
class AdmissionRejectedError : public Error {
 public:
  explicit AdmissionRejectedError(const std::string& what)
      : Error(what, Status::kResourceExhausted) {}
};

/// The serving scheduler shed the request: its deadline cannot be met
/// (already past, or the modeled execution cost exceeds the remaining
/// budget), so it was failed BEFORE any segment FFTs ran — wasted-work
/// avoidance, not an execution fault.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : Error(what, Status::kDeadlineExceeded) {}
};

/// Explicit alias for the default taxonomy entry (NaN/Inf input pre-scan).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what)
      : Error(what, Status::kInvalidArgument) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "SOI_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace soi

/// Precondition/invariant check; always active (library correctness must not
/// depend on NDEBUG). Usage: SOI_CHECK(n > 0, "n must be positive");
#define SOI_CHECK(expr, msg)                                                  \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream soi_check_os_;                                       \
      soi_check_os_ << msg; /* allows streaming-style messages */             \
      ::soi::detail::throw_check_failure(#expr, __FILE__, __LINE__,           \
                                         soi_check_os_.str());                \
    }                                                                         \
  } while (false)
