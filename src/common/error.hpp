// Error reporting: precondition checks throw soi::Error with context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace soi {

/// Library-wide exception type. Thrown on violated preconditions
/// (bad transform sizes, mismatched buffers, invalid window parameters).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "SOI_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace soi

/// Precondition/invariant check; always active (library correctness must not
/// depend on NDEBUG). Usage: SOI_CHECK(n > 0, "n must be positive");
#define SOI_CHECK(expr, msg)                                                  \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream soi_check_os_;                                       \
      soi_check_os_ << msg; /* allows streaming-style messages */             \
      ::soi::detail::throw_check_failure(#expr, __FILE__, __LINE__,           \
                                         soi_check_os_.str());                \
    }                                                                         \
  } while (false)
