#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace soi {

void Table::header(std::vector<std::string> cols) { header_ = std::move(cols); }

void Table::row(std::vector<std::string> cols) {
  SOI_CHECK(header_.empty() || cols.size() == header_.size(),
            "Table row width " << cols.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(cols));
}

std::string Table::str() const {
  // Column widths.
  std::vector<std::size_t> w(header_.size(), 0);
  auto grow = [&w](const std::vector<std::string>& r) {
    if (w.size() < r.size()) w.resize(r.size(), 0);
    for (std::size_t i = 0; i < r.size(); ++i) {
      w[i] = std::max(w[i], r[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&os, &w](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << r[i];
      os << std::string(w[i] - r[i].size(), ' ');
    }
    os << " |\n";
  };
  std::size_t total = 1;
  for (std::size_t x : w) total += x + 3;
  const std::string rule(total, '-');
  if (!header_.empty()) {
    emit(header_);
    os << rule << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
  return buf;
}

}  // namespace soi
