#include "common/quadrature.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace soi {

namespace {

struct SimpsonState {
  const std::function<double(double)>* f;
  double tol;
  int max_depth;
};

double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const SimpsonState& st, double a, double b, double fa,
                double fm, double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = (*st.f)(lm);
  const double frm = (*st.f)(rm);
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth >= st.max_depth || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(st, a, m, fa, flm, fm, left, 0.5 * tol, depth + 1) +
         adaptive(st, m, b, fm, frm, fb, right, 0.5 * tol, depth + 1);
}

// 16-point Gauss-Legendre nodes/weights on [-1, 1] (symmetric halves).
constexpr std::array<double, 8> kGlNodes = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr std::array<double, 8> kGlWeights = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  SOI_CHECK(b >= a, "integrate: reversed interval");
  if (a == b) return 0.0;
  SimpsonState st{&f, tol, max_depth};
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = simpson(fa, fm, fb, a, b);
  return adaptive(st, a, b, fa, fm, fb, whole, tol, 0);
}

double integrate_tail(const std::function<double(double)>& f, double a,
                      double tol) {
  double total = 0.0;
  double lo = a;
  double width = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double hi = lo + width;
    const double part = integrate(f, lo, hi, tol * 0.01);
    total += part;
    if (std::abs(part) < tol && iter > 2) break;
    lo = hi;
    width *= 2.0;  // geometric windows: fine near a, coarse in the far tail
  }
  return total;
}

double gauss_legendre(const std::function<double(double)>& f, double a,
                      double b) {
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double sum = 0.0;
  for (std::size_t i = 0; i < kGlNodes.size(); ++i) {
    sum += kGlWeights[i] * (f(c - h * kGlNodes[i]) + f(c + h * kGlNodes[i]));
  }
  return h * sum;
}

}  // namespace soi
