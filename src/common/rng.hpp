// Deterministic random number generation for tests, examples and workload
// generators. xoshiro256++ core (public-domain algorithm by Blackman/Vigna)
// so results are reproducible across standard libraries.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace soi {

/// xoshiro256++ PRNG. Deterministic across platforms (unlike std::mt19937's
/// distribution wrappers, whose outputs are implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (uses an internal cache).
  double gaussian();

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Complex with independent standard-normal real/imag parts.
  cplx gaussian_cplx();

  /// Complex uniform on the unit circle.
  cplx unit_cplx();

 private:
  std::uint64_t s_[4];
  bool have_cached_gauss_ = false;
  double cached_gauss_ = 0.0;
};

/// Fill `out` with deterministic complex Gaussian noise from `seed`.
void fill_gaussian(mspan out, std::uint64_t seed);

/// Fill `out` with a deterministic sum-of-tones signal plus low-level noise:
/// a realistic spectrum for examples (peaks at `tones` bin positions).
void fill_tones(mspan out, std::span<const std::size_t> tone_bins,
                std::span<const double> tone_amps, double noise_amp,
                std::uint64_t seed);

}  // namespace soi
