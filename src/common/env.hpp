// Environment-variable configuration for benches (scale knobs), so the same
// binaries can run quick smoke sweeps or paper-scale sweeps.
#pragma once

#include <cstdint>
#include <string>

namespace soi {

/// Read an integer from the environment, or `fallback` when unset/invalid.
std::int64_t env_i64(const char* name, std::int64_t fallback);

/// Read a double from the environment, or `fallback` when unset/invalid.
double env_f64(const char* name, double fallback);

/// Read a string from the environment, or `fallback` when unset.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace soi
