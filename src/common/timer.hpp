// Monotonic wall-clock timing helpers used by benches and the
// measured-compute / modeled-communication harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace soi {

/// Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop sections (e.g. summing the
/// per-phase compute time of one simulated rank).
class PhaseTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      ++count_;
      running_ = false;
    }
  }
  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] std::int64_t count() const { return count_; }
  void reset() { total_ = 0; count_ = 0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0;
  std::int64_t count_ = 0;
  bool running_ = false;
};

}  // namespace soi
