#include "common/arena.hpp"

#include <algorithm>
#include <numeric>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace soi {

namespace {
constexpr std::size_t kAlign = 64;  // cache-line, matches AlignedAllocator

std::size_t align_up(std::size_t x) { return (x + kAlign - 1) / kAlign * kAlign; }

bool lifetimes_overlap(const WorkspaceArena::PlannedBuffer& a,
                       const WorkspaceArena::PlannedBuffer& b) {
  return a.first_stage <= b.last_stage && b.first_stage <= a.last_stage;
}
}  // namespace

WorkspaceArena::~WorkspaceArena() {
  if (block_ != nullptr) aligned_free(block_);
}

WorkspaceArena::BufferId WorkspaceArena::reserve(std::string name,
                                                 std::size_t bytes,
                                                 int first_stage,
                                                 int last_stage) {
  SOI_CHECK(first_stage <= last_stage,
            "WorkspaceArena::reserve(" << name << "): bad lifetime ["
                                       << first_stage << ", " << last_stage
                                       << "]");
  PlannedBuffer b;
  b.name = std::move(name);
  b.bytes = align_up(std::max<std::size_t>(bytes, 1));
  b.first_stage = first_stage;
  b.last_stage = last_stage;
  bufs_.push_back(std::move(b));
  committed_ = false;
  return BufferId{static_cast<std::int32_t>(bufs_.size() - 1)};
}

WorkspaceArena::BufferId WorkspaceArena::reserve_slots(const std::string& name,
                                                       std::size_t bytes,
                                                       int slots,
                                                       int first_stage,
                                                       int last_stage) {
  SOI_CHECK(slots >= 1,
            "WorkspaceArena::reserve_slots(" << name << "): need >= 1 slot");
  BufferId first;
  for (int k = 0; k < slots; ++k) {
    const BufferId id = reserve(name + "#" + std::to_string(k), bytes,
                                first_stage, last_stage);
    if (k == 0) first = id;
  }
  return first;
}

void WorkspaceArena::commit() {
  // Place large buffers first (first-fit decreasing): each buffer takes the
  // lowest offset that collides with no already-placed buffer whose live
  // interval overlaps its own. Buffers with disjoint lifetimes may alias.
  std::vector<std::size_t> order(bufs_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return bufs_[a].bytes > bufs_[b].bytes;
                   });
  std::vector<std::size_t> placed;  // indices into bufs_, by offset
  placed.reserve(bufs_.size());
  std::size_t peak = 0;
  for (const std::size_t i : order) {
    PlannedBuffer& b = bufs_[i];
    std::size_t off = 0;
    for (const std::size_t j : placed) {
      const PlannedBuffer& o = bufs_[j];
      if (!lifetimes_overlap(b, o)) continue;
      if (o.offset < off + b.bytes && off < o.offset + o.bytes) {
        off = align_up(o.offset + o.bytes);
      }
    }
    b.offset = off;
    peak = std::max(peak, off + b.bytes);
    // Keep the placed list sorted by offset so the single forward sweep
    // above finds the final resting offset in one pass.
    placed.insert(std::upper_bound(placed.begin(), placed.end(), i,
                                   [this](std::size_t a, std::size_t c) {
                                     return bufs_[a].offset < bufs_[c].offset;
                                   }),
                  i);
  }
  committed_bytes_ = peak;
  if (peak > capacity_) {
    if (block_ != nullptr) {
      aligned_free(block_);
      block_ = nullptr;
      ++growths_;
    }
    block_ = static_cast<std::byte*>(aligned_alloc_bytes(peak, kAlign));
    capacity_ = peak;
  }
  committed_ = true;
}

void WorkspaceArena::adopt_layout(const WorkspaceArena& src) {
  SOI_CHECK(src.committed_,
            "WorkspaceArena::adopt_layout: source not committed");
  SOI_CHECK(this != &src, "WorkspaceArena::adopt_layout: self-adoption");
  bufs_ = src.bufs_;
  committed_bytes_ = src.committed_bytes_;
  if (committed_bytes_ > capacity_) {
    if (block_ != nullptr) {
      aligned_free(block_);
      block_ = nullptr;
      ++growths_;
    }
    block_ = static_cast<std::byte*>(
        aligned_alloc_bytes(committed_bytes_, kAlign));
    capacity_ = committed_bytes_;
  }
  committed_ = true;
}

void* WorkspaceArena::data(BufferId id) const {
  SOI_CHECK(committed_, "WorkspaceArena::data: commit() not called");
  SOI_CHECK(id.valid() && static_cast<std::size_t>(id.index) < bufs_.size(),
            "WorkspaceArena::data: invalid buffer id");
  return block_ + bufs_[static_cast<std::size_t>(id.index)].offset;
}

std::size_t WorkspaceArena::size_bytes(BufferId id) const {
  SOI_CHECK(id.valid() && static_cast<std::size_t>(id.index) < bufs_.size(),
            "WorkspaceArena::size_bytes: invalid buffer id");
  return bufs_[static_cast<std::size_t>(id.index)].bytes;
}

std::size_t WorkspaceArena::total_reserved_bytes() const {
  std::size_t total = 0;
  for (const auto& b : bufs_) total += b.bytes;
  return total;
}

}  // namespace soi
