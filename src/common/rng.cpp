#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace soi {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (have_cached_gauss_) {
    have_cached_gauss_ = false;
    return cached_gauss_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double th = kTwoPi * u2;
  cached_gauss_ = r * std::sin(th);
  have_cached_gauss_ = true;
  return r * std::cos(th);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SOI_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

cplx Rng::gaussian_cplx() {
  const double re = gaussian();
  const double im = gaussian();
  return {re, im};
}

cplx Rng::unit_cplx() {
  const double th = kTwoPi * uniform();
  return {std::cos(th), std::sin(th)};
}

void fill_gaussian(mspan out, std::uint64_t seed) {
  Rng rng(seed);
  for (auto& v : out) v = rng.gaussian_cplx();
}

void fill_tones(mspan out, std::span<const std::size_t> tone_bins,
                std::span<const double> tone_amps, double noise_amp,
                std::uint64_t seed) {
  SOI_CHECK(tone_bins.size() == tone_amps.size(),
            "one amplitude per tone required");
  const std::size_t n = out.size();
  Rng rng(seed);
  for (std::size_t j = 0; j < n; ++j) {
    cplx v = noise_amp * rng.gaussian_cplx();
    for (std::size_t t = 0; t < tone_bins.size(); ++t) {
      const double ang =
          kTwoPi * static_cast<double>(tone_bins[t] % n) *
          static_cast<double>(j) / static_cast<double>(n);
      v += tone_amps[t] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[j] = v;
  }
}

}  // namespace soi
