// Plain-text table rendering for bench output: every figure/table bench
// prints paper-style rows through this, so EXPERIMENTS.md and bench output
// stay directly comparable.
#pragma once

#include <string>
#include <vector>

namespace soi {

/// Column-aligned ASCII table with a title, header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row (defines the column count).
  void header(std::vector<std::string> cols);

  /// Append a data row; must match the header width.
  void row(std::vector<std::string> cols);

  /// Render with box-drawing-free ASCII (| and -), suitable for logs.
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

  /// Format helper: fixed-point double with `prec` decimals.
  static std::string num(double v, int prec = 2);

  /// Format helper: scientific notation with `prec` significant decimals.
  static std::string sci(double v, int prec = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soi
