// Numerical integration used by the window designer: kappa, eps_alias and
// eps_trunc are defined as integrals of |H-hat| / |H| (paper, Section 4).
#pragma once

#include <functional>

namespace soi {

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance tol.
/// Robust for the smooth, fast-decaying window integrands used here.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-12, int max_depth = 40);

/// Integral of f over [a, +inf) for exponentially decaying f: integrates
/// doubling windows until a window's contribution falls below tol.
double integrate_tail(const std::function<double(double)>& f, double a,
                      double tol = 1e-16);

/// Fixed-order Gauss-Legendre on [a, b] (order 32); used inside the adaptive
/// routine's leaf panels for speed in the design search.
double gauss_legendre(const std::function<double(double)>& f, double a,
                      double b);

}  // namespace soi
