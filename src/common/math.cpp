#include "common/math.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace soi {

double sinc(double x) {
  const double px = kPi * x;
  if (std::abs(px) < 1e-8) {
    // Series: sin(t)/t = 1 - t^2/6 + t^4/120 ...
    const double t2 = px * px;
    return 1.0 - t2 / 6.0 + t2 * t2 / 120.0;
  }
  return std::sin(px) / px;
}

double erf_diff(double a, double b) {
  // erf(b) - erf(a). When both arguments share a sign and are large, use
  // erfc to avoid subtracting two values that are both ~ +-1.
  if (a > 0.0 && b > 0.0) return std::erfc(a) - std::erfc(b);
  if (a < 0.0 && b < 0.0) return std::erfc(-b) - std::erfc(-a);
  return std::erf(b) - std::erf(a);
}

bool is_pow2(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

int ilog2(std::int64_t n) {
  SOI_CHECK(n > 0, "ilog2 requires positive argument");
  int k = 0;
  while ((std::int64_t{1} << (k + 1)) <= n) ++k;
  return k;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t r = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1) r = mulmod(r, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return r;
}

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                          19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller-Rabin bases for 64-bit range.
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                          19ull, 23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int r = 1; r < s; ++r) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t primitive_root(std::uint64_t p) {
  SOI_CHECK(is_prime(p), "primitive_root requires a prime modulus");
  if (p == 2) return 1;
  // Factor p-1.
  std::uint64_t phi = p - 1;
  std::uint64_t m = phi;
  std::uint64_t factors[64];
  int nf = 0;
  for (std::uint64_t f = 2; f * f <= m; ++f) {
    if (m % f == 0) {
      factors[nf++] = f;
      while (m % f == 0) m /= f;
    }
  }
  if (m > 1) factors[nf++] = m;
  for (std::uint64_t g = 2; g < p; ++g) {
    bool ok = true;
    for (int i = 0; i < nf; ++i) {
      if (powmod(g, phi / factors[i], p) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw Error("primitive_root: no root found (should be impossible)");
}

std::int64_t next_pow2(std::int64_t n) {
  std::int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace soi
