// Small numeric helpers shared across modules: sinc, integer utilities,
// and the special functions appearing in the (tau, sigma) window closed forms.
#pragma once

#include <cstdint>

namespace soi {

/// Normalised sinc: sin(pi x)/(pi x), sinc(0) = 1.
double sinc(double x);

/// erf difference erf(b) - erf(a) computed to avoid catastrophic
/// cancellation when a and b are close and large.
double erf_diff(double a, double b);

/// true iff n is a power of two (n > 0).
bool is_pow2(std::int64_t n);

/// floor(log2(n)) for n > 0.
int ilog2(std::int64_t n);

/// Greatest common divisor (non-negative inputs).
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// a*b mod m without overflow for m < 2^62.
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// a^e mod m.
std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m);

/// Deterministic Miller-Rabin primality for 64-bit integers.
bool is_prime(std::uint64_t n);

/// Smallest primitive root modulo prime p (p must be prime).
std::uint64_t primitive_root(std::uint64_t p);

/// Next power of two >= n.
std::int64_t next_pow2(std::int64_t n);

/// Positive modulus: ((a % m) + m) % m.
inline std::int64_t pmod(std::int64_t a, std::int64_t m) {
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace soi
