#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace soi {

double l2_diff(cspan a, cspan b) {
  SOI_CHECK(a.size() == b.size(), "l2_diff: size mismatch " << a.size()
                                                            << " vs " << b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const cplx d = a[i] - b[i];
    s += std::norm(d);
  }
  return std::sqrt(s);
}

double l2_norm(cspan a) {
  double s = 0.0;
  for (const auto& v : a) s += std::norm(v);
  return std::sqrt(s);
}

double rel_error(cspan got, cspan ref) {
  const double nref = l2_norm(ref);
  const double diff = l2_diff(got, ref);
  if (nref == 0.0) return diff == 0.0 ? 0.0 : 1e9;
  return diff / nref;
}

double snr_db(cspan got, cspan ref) {
  const double e = rel_error(got, ref);
  if (e == 0.0) return 1e9;
  return -20.0 * std::log10(e);
}

double snr_digits(double snr_db_value) { return snr_db_value / 20.0; }

double max_abs_diff(cspan a, cspan b) {
  SOI_CHECK(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

RunStats summarize(const std::vector<double>& samples) {
  RunStats st;
  st.n = samples.size();
  if (samples.empty()) return st;
  st.best = *std::min_element(samples.begin(), samples.end());
  st.worst = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  st.mean = sum / static_cast<double>(st.n);
  double ss = 0.0;
  for (double v : samples) ss += (v - st.mean) * (v - st.mean);
  st.stddev = st.n > 1 ? std::sqrt(ss / static_cast<double>(st.n - 1)) : 0.0;
  // 90% two-sided normal CI half-width: z_{0.95} * s / sqrt(n).
  const double z95 = 1.6448536269514722;
  st.ci90_half =
      st.n > 1 ? z95 * st.stddev / std::sqrt(static_cast<double>(st.n)) : 0.0;
  return st;
}

double fft_gflops(std::size_t n, double seconds) {
  SOI_CHECK(seconds > 0.0, "fft_gflops: non-positive time");
  const double nn = static_cast<double>(n);
  return 5.0 * nn * std::log2(nn) / seconds / 1e9;
}

}  // namespace soi
