// Preplanned workspace arena for allocation-free steady-state execution.
//
// A pipeline declares every intermediate buffer it will need at *plan*
// time — name, byte size, and the [first_stage, last_stage] interval of
// pipeline positions during which the buffer is live. commit() then packs
// the declarations into one aligned block, letting buffers whose live
// intervals are disjoint alias the same offsets, and performs the single
// allocation. At *run* time data()/span() are pure pointer arithmetic, so
// a committed arena guarantees zero heap allocations per execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace soi {

class WorkspaceArena {
 public:
  /// Opaque plan-time handle; default-constructed ids are invalid (used
  /// by pipelines to mean "no buffer here — use the caller's span").
  struct BufferId {
    std::int32_t index = -1;
    [[nodiscard]] bool valid() const { return index >= 0; }
  };

  /// One declared buffer; offsets are filled in by commit().
  struct PlannedBuffer {
    std::string name;
    std::size_t bytes = 0;
    std::size_t offset = 0;
    int first_stage = 0;
    int last_stage = 0;
  };

  WorkspaceArena() = default;
  ~WorkspaceArena();
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// Declare a buffer live over pipeline stages [first_stage, last_stage].
  /// Plan-time only; invalidates previous commit() placement.
  BufferId reserve(std::string name, std::size_t bytes, int first_stage,
                   int last_stage);

  /// Declare `slots` same-sized buffers ("name#0", "name#1", ...) sharing
  /// one live interval — the double-buffer form used by chunked pipeline
  /// stages, where slot (g mod slots) serves chunk g. Slots never alias
  /// each other (their intervals coincide); slot k's id is the returned
  /// id with `index + k`.
  BufferId reserve_slots(const std::string& name, std::size_t bytes,
                         int slots, int first_stage, int last_stage);

  /// The id of slot `k` of a reserve_slots() family.
  [[nodiscard]] static BufferId slot(BufferId first, int k) {
    return BufferId{first.index + k};
  }

  /// Pack all declared buffers (disjoint-lifetime aliasing, first-fit by
  /// decreasing size) and allocate the backing block. Recommitting after
  /// further reserve() calls is allowed; a larger block counts one growth.
  void commit();

  /// Become an independent committed clone of `src`'s layout: same
  /// BufferId -> (offset, size) mapping over a freshly allocated block.
  /// This is how K concurrent executions of one shared plan each get
  /// their own workspace without re-running placement — every slot arena
  /// resolves the plan's ids identically. `src` must be committed;
  /// any previous declarations here are discarded.
  void adopt_layout(const WorkspaceArena& src);

  [[nodiscard]] void* data(BufferId id) const;
  [[nodiscard]] std::size_t size_bytes(BufferId id) const;

  /// Typed view of a committed buffer (count = bytes / sizeof(T)).
  template <class T>
  [[nodiscard]] std::span<T> span(BufferId id) const {
    return {static_cast<T*>(data(id)), size_bytes(id) / sizeof(T)};
  }

  /// Bytes of the committed block — the peak of the aliased plan.
  [[nodiscard]] std::size_t peak_bytes() const { return committed_bytes_; }
  /// Sum of all declared sizes (what a no-aliasing plan would cost).
  [[nodiscard]] std::size_t total_reserved_bytes() const;
  /// Times commit() had to enlarge an existing block. Stays 0 across
  /// steady-state executions — asserted by the zero-allocation test.
  [[nodiscard]] std::int64_t growths() const { return growths_; }
  [[nodiscard]] const std::vector<PlannedBuffer>& buffers() const {
    return bufs_;
  }

 private:
  std::vector<PlannedBuffer> bufs_;
  std::byte* block_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t committed_bytes_ = 0;
  std::int64_t growths_ = 0;
  bool committed_ = false;
};

}  // namespace soi
