// Aligned allocation support for SIMD/cache-friendly buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>

namespace soi {

/// Allocate `bytes` with the given power-of-two alignment. Throws
/// std::bad_alloc on failure. Pair with aligned_free().
void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment);

/// Free memory obtained from aligned_alloc_bytes().
void aligned_free(void* p) noexcept;

/// Process-wide tally of aligned_alloc_bytes() calls. Every transform
/// buffer in the library (cvec/dvec, arena blocks, FFT scratch) funnels
/// through that one choke point, so a delta of this counter across a
/// steady-state forward() proves the zero-allocation property the
/// pipeline arena exists to provide.
struct AllocStats {
  std::int64_t count = 0;  ///< allocations since process start
  std::int64_t bytes = 0;  ///< total bytes handed out (rounded)
};

/// Snapshot of the counters (monotonic; frees are not subtracted).
AllocStats alloc_stats() noexcept;

/// Minimal standard-conforming allocator delivering Align-byte aligned
/// storage; used for all transform buffers (cvec/dvec in types.hpp).
template <class T, std::size_t Align = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::size_t alignment = Align;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(aligned_alloc_bytes(n * sizeof(T), Align));
  }
  void deallocate(T* p, std::size_t) noexcept { aligned_free(p); }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace soi
