#include "baseline/sixstep.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace soi::baseline {

SixStepFftDist::SixStepFftDist(net::Transport& comm, std::int64_t n)
    : SixStepFftDist(comm, n, SixStepOptions{}) {}

SixStepFftDist::SixStepFftDist(net::Transport& comm, std::int64_t n,
                               SixStepOptions options)
    : comm_(comm),
      opts_(std::move(options)),
      n_(n),
      m_(n / comm.size()),
      rows_(m_ / comm.size()),
      plan_p_(comm.size()),
      plan_m_(m_) {
  const std::int64_t p = comm.size();
  SOI_CHECK(n % p == 0, "SixStepFftDist: P must divide N");
  SOI_CHECK(m_ % p == 0,
            "SixStepFftDist: P^2 must divide N (got N=" << n << ", P=" << p
                                                        << ")");
  // Twiddles w_N^{j2*k1} for this rank's j2 in [rank*rows, (rank+1)*rows).
  twiddle_.resize(static_cast<std::size_t>(rows_ * p));
  const std::int64_t j2_base = static_cast<std::int64_t>(comm.rank()) * rows_;
  for (std::int64_t jl = 0; jl < rows_; ++jl) {
    for (std::int64_t k1 = 0; k1 < p; ++k1) {
      twiddle_[static_cast<std::size_t>(jl * p + k1)] =
          omega((j2_base + jl) * k1, n_);
    }
  }
  a_.resize(static_cast<std::size_t>(m_));
  b_.resize(static_cast<std::size_t>(m_));
  c_.resize(static_cast<std::size_t>(m_));
  d_.resize(static_cast<std::size_t>(m_));
  SOI_CHECK(opts_.max_retries >= 0, "SixStepFftDist: max_retries must be >= 0");
  SOI_CHECK(opts_.timeout_ms >= 0, "SixStepFftDist: timeout_ms must be >= 0");
  // Install the plan's resilience configuration into the shared world,
  // exactly as SoiFftDist does: every rank constructs with identical
  // options, the first configure wins and the rest are no-ops.
  if (opts_.faults.any() || opts_.timeout_ms > 0) {
    net::NetOptions nopts;
    nopts.faults = opts_.faults;
    nopts.timeout_ms = opts_.timeout_ms;
    nopts.max_retries = opts_.max_retries;
    comm_.configure_resilience(nopts);
  }
}

void SixStepFftDist::guard_output(cspan y_local) const {
  if (!opts_.output_guard) return;
  for (std::size_t i = 0; i < static_cast<std::size_t>(m_); ++i) {
    const cplx v = y_local[i];
    if (std::isfinite(v.real()) && std::isfinite(v.imag())) continue;
    std::ostringstream os;
    os << "SixStepFftDist: rank " << comm_.rank()
       << " output contains a non-finite value at local index " << i;
    throw AccuracyFaultError(os.str());
  }
}

void SixStepFftDist::forward(cspan x_local, mspan y_local) {
  const std::int64_t p = comm_.size();
  SOI_CHECK(x_local.size() == static_cast<std::size_t>(m_),
            "SixStepFftDist::forward: expected M=" << m_ << " local points");
  SOI_CHECK(y_local.size() >= static_cast<std::size_t>(m_),
            "SixStepFftDist::forward: local output too small");
  breakdown_ = SixStepBreakdown{};
  breakdown_.alltoall_bytes_each =
      static_cast<std::int64_t>(sizeof(cplx)) * rows_ * (p - 1);
  Timer t;

  // --- 1. transpose #1: block j2-ranges to their owners -------------------
  // x_local is row j1 = rank of X[P][M]; destination t needs columns
  // [t*rows, (t+1)*rows) — already contiguous in x_local.
  t.reset();
  comm_.alltoall(x_local, a_, rows_);
  breakdown_.alltoall += t.seconds();
  // a_ = P source-blocks of `rows_` values: a_[s*rows + jl] = X[s][j2l].
  // Local transpose to rows of j1: b_[jl*P + s].
  t.reset();
  for (std::int64_t s = 0; s < p; ++s) {
    for (std::int64_t jl = 0; jl < rows_; ++jl) {
      b_[static_cast<std::size_t>(jl * p + s)] =
          a_[static_cast<std::size_t>(s * rows_ + jl)];
    }
  }
  breakdown_.pack += t.seconds();

  // --- 2. M/P local F_P transforms over j1 ---------------------------------
  t.reset();
  plan_p_.forward_batch(b_, a_, rows_);
  breakdown_.fp = t.seconds();

  // --- 3. twiddle multiply --------------------------------------------------
  t.reset();
  for (std::int64_t i = 0; i < m_; ++i) {
    a_[static_cast<std::size_t>(i)] *= twiddle_[static_cast<std::size_t>(i)];
  }
  breakdown_.twiddle = t.seconds();

  // --- 4. transpose #2: rank k1 assembles its full j2 row ------------------
  // Send to rank k1 the local values A[k1][j2l]: local transpose first.
  t.reset();
  for (std::int64_t jl = 0; jl < rows_; ++jl) {
    for (std::int64_t k1 = 0; k1 < p; ++k1) {
      b_[static_cast<std::size_t>(k1 * rows_ + jl)] =
          a_[static_cast<std::size_t>(jl * p + k1)];
    }
  }
  breakdown_.pack += t.seconds();
  t.reset();
  comm_.alltoall(b_, c_, rows_);
  breakdown_.alltoall += t.seconds();
  // c_[t*rows + jl] = A[rank][t*rows + jl]: already the natural j2 order.

  // --- 5. one local F_M over j2 ---------------------------------------------
  t.reset();
  plan_m_.forward(c_, d_);
  breakdown_.fm = t.seconds();
  // d_[k2] = y[rank + P*k2].

  // --- 6. transpose #3: strided slices back to natural-order blocks --------
  // Destination t needs k2 in [t*rows, (t+1)*rows) — contiguous in d_.
  t.reset();
  comm_.alltoall(d_, a_, rows_);
  breakdown_.alltoall += t.seconds();
  // a_[s*rows + k2l] = y[s + P*(rank*rows + k2l)] -> local scatter.
  t.reset();
  for (std::int64_t s = 0; s < p; ++s) {
    for (std::int64_t k2l = 0; k2l < rows_; ++k2l) {
      y_local[static_cast<std::size_t>(k2l * p + s)] =
          a_[static_cast<std::size_t>(s * rows_ + k2l)];
    }
  }
  breakdown_.pack += t.seconds();
  guard_output(cspan(y_local.data(), static_cast<std::size_t>(m_)));
}

void SixStepFftDist::inverse(cspan y_local, mspan x_local) {
  SOI_CHECK(y_local.size() == static_cast<std::size_t>(m_),
            "SixStepFftDist::inverse: local input size mismatch");
  SOI_CHECK(x_local.size() >= static_cast<std::size_t>(m_),
            "SixStepFftDist::inverse: local output too small");
  conj_in_.resize(static_cast<std::size_t>(m_));
  conj_out_.resize(static_cast<std::size_t>(m_));
  for (std::int64_t i = 0; i < m_; ++i) {
    conj_in_[static_cast<std::size_t>(i)] =
        std::conj(y_local[static_cast<std::size_t>(i)]);
  }
  forward(conj_in_, conj_out_);
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::int64_t i = 0; i < m_; ++i) {
    x_local[static_cast<std::size_t>(i)] =
        std::conj(conj_out_[static_cast<std::size_t>(i)]) * scale;
  }
}

}  // namespace soi::baseline
