// Distributed 2-D FFT with slab decomposition over SimMPI — the
// higher-dimensional generalisation the paper's conclusion points to, and
// a concrete illustration of its Section 1 observation that "the numbers
// of global transposes can be reduced if out-of-order data can be
// accommodated":
//
//   kNatural    — row FFTs, transpose, column FFTs, transpose back:
//                 in-order result, TWO all-to-alls.
//   kTransposed — row FFTs, transpose, column FFTs: the result stays
//                 column-major (transposed), ONE all-to-all — fine for
//                 convolution-style use where a matching inverse eats the
//                 transposition.
//
// Layout: the R0 x R1 array is distributed by rows; rank s of P holds rows
// [s*R0/P, (s+1)*R0/P). Requires P | R0 and P | R1.
#pragma once

#include "common/types.hpp"
#include "fft/plan.hpp"
#include "net/transport.hpp"

namespace soi::baseline {

enum class Ordering2D {
  kNatural,     ///< in-order output, two global transposes
  kTransposed,  ///< transposed output, one global transpose
};

/// Distributed 2-D complex FFT plan (P = comm.size()).
class Fft2DDist {
 public:
  Fft2DDist(net::Transport& comm, std::int64_t rows, std::int64_t cols,
            Ordering2D ordering);

  [[nodiscard]] std::int64_t rows() const { return r0_; }
  [[nodiscard]] std::int64_t cols() const { return r1_; }
  [[nodiscard]] Ordering2D ordering() const { return ordering_; }
  /// Local slab: rows()/P rows of cols() values (row-major).
  [[nodiscard]] std::int64_t local_elems() const {
    return r0_ / comm_.size() * r1_;
  }

  /// Forward transform of the local slab. With kNatural the output is this
  /// rank's slab of the row-major spectrum; with kTransposed it is this
  /// rank's slab of the TRANSPOSED spectrum (cols()/P rows of rows()
  /// values).
  void forward(cspan x_local, mspan y_local);

 private:
  /// Global transpose: local slab of an (a x b) row-major matrix
  /// (a/P rows each) becomes local slab of the (b x a) transpose.
  void global_transpose(cspan in, mspan out, std::int64_t a, std::int64_t b);

  net::Transport& comm_;
  std::int64_t r0_;
  std::int64_t r1_;
  Ordering2D ordering_;
  fft::FftPlan plan_rows_;  // F_{r1} along rows
  fft::FftPlan plan_cols_;  // F_{r0} along columns (post transpose)
  cvec a_, b_;
};

}  // namespace soi::baseline
