#include "baseline/fft2d_dist.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soi::baseline {

Fft2DDist::Fft2DDist(net::Transport& comm, std::int64_t rows, std::int64_t cols,
                     Ordering2D ordering)
    : comm_(comm),
      r0_(rows),
      r1_(cols),
      ordering_(ordering),
      plan_rows_(cols),
      plan_cols_(rows) {
  const int p = comm.size();
  SOI_CHECK(rows >= p && rows % p == 0,
            "Fft2DDist: P=" << p << " must divide rows=" << rows);
  SOI_CHECK(cols >= p && cols % p == 0,
            "Fft2DDist: P=" << p << " must divide cols=" << cols);
  a_.resize(static_cast<std::size_t>(local_elems()));
  b_.resize(a_.size());
}

void Fft2DDist::global_transpose(cspan in, mspan out, std::int64_t a,
                                 std::int64_t b) {
  const int p = comm_.size();
  const std::int64_t ra = a / p;  // local rows before
  const std::int64_t rb = b / p;  // local rows after (columns owned)
  // Pack per-destination blocks: dest t takes my rows x its column range.
  cvec send(static_cast<std::size_t>(ra * b));
  for (int t = 0; t < p; ++t) {
    cplx* blk = send.data() + t * ra * rb;
    for (std::int64_t i = 0; i < ra; ++i) {
      const cplx* src = in.data() + i * b + t * rb;
      std::copy_n(src, rb, blk + i * rb);
    }
  }
  cvec recv(send.size());
  comm_.alltoall(send, recv, ra * rb);
  // Unpack with the local transpose: out[j][s*ra + i] = recv[s][i][j].
  for (int s = 0; s < p; ++s) {
    const cplx* blk = recv.data() + s * ra * rb;
    for (std::int64_t i = 0; i < ra; ++i) {
      for (std::int64_t j = 0; j < rb; ++j) {
        out[static_cast<std::size_t>(j * a + s * ra + i)] =
            blk[i * rb + j];
      }
    }
  }
}

void Fft2DDist::forward(cspan x_local, mspan y_local) {
  const int p = comm_.size();
  const std::int64_t lr0 = r0_ / p;  // local rows
  const std::int64_t lr1 = r1_ / p;  // local rows after transpose
  SOI_CHECK(x_local.size() == static_cast<std::size_t>(local_elems()),
            "Fft2DDist::forward: local slab size mismatch");
  const std::size_t out_elems = static_cast<std::size_t>(
      ordering_ == Ordering2D::kNatural ? lr0 * r1_ : lr1 * r0_);
  SOI_CHECK(y_local.size() >= out_elems,
            "Fft2DDist::forward: local output too small");

  // 1. FFT along rows (contiguous, local).
  plan_rows_.forward_batch(x_local, a_, lr0);
  // 2. Global transpose #1: (r0 x r1) -> (r1 x r0).
  b_.resize(static_cast<std::size_t>(lr1 * r0_));
  global_transpose(a_, b_, r0_, r1_);
  // 3. FFT along the former columns (now contiguous rows of length r0).
  if (ordering_ == Ordering2D::kTransposed) {
    plan_cols_.forward_batch(b_, y_local, lr1);
    return;
  }
  cvec c(b_.size());
  plan_cols_.forward_batch(b_, c, lr1);
  // 4. Global transpose #2 restores natural (row-major spectrum) order.
  global_transpose(c, y_local, r1_, r0_);
}

}  // namespace soi::baseline
