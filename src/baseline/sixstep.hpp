// Baseline: the industry-standard in-order distributed 1-D FFT with THREE
// all-to-all exchanges (the decomposition sketched in the paper's Section 2
// overview — what Intel MKL / FFTW / FFTE implement).
//
// With N = P * M on P ranks (block distribution, natural order in and out):
//   view x as X[P][M] (rank j1 owns row j1); for k = k1 + P_dim... with
//   j = j1*M + j2 and k = k1 + P*k2:
//     1. all-to-all transpose: rank t gathers X[.][j2] for its j2 range,
//     2. M/P local F_P transforms over j1,
//     3. twiddle multiply by w_N^{j2*k1},
//     4. all-to-all transpose back: rank k1 assembles its row over j2,
//     5. one local F_M over j2,
//     6. all-to-all to convert the stride-P output slices to natural-order
//        blocks.
// Requires P | M (i.e. P^2 | N).
#pragma once

#include "common/types.hpp"
#include "fft/plan.hpp"
#include "net/transport.hpp"

namespace soi::baseline {

/// Per-phase seconds + communication volume of one execution on this rank.
struct SixStepBreakdown {
  double fp = 0.0;        ///< step 2: M/P transforms of size P
  double twiddle = 0.0;   ///< step 3
  double fm = 0.0;        ///< step 5: one transform of size M
  double pack = 0.0;      ///< all local transposes
  double alltoall = 0.0;  ///< the three exchanges (in-process wall time)
  std::int64_t alltoall_bytes_each = 0;  ///< bytes per rank per exchange
  int alltoall_count = 3;
  [[nodiscard]] double compute_total() const { return fp + twiddle + fm + pack; }
};

/// Resilience knobs for the baseline comparator — the same chaos plumbing
/// SoiFftDist exposes, so fault-injection experiments can compare the
/// six-step path against the SOI path under identical scenarios.
struct SixStepOptions {
  /// Chaos scenario installed into the communicator's world at plan
  /// construction (first configurer wins; every rank passes the same
  /// options). Empty = no injected faults.
  net::FaultSpec faults;
  /// Base deadline of one communication wait attempt in ms; 0 keeps waits
  /// unbounded (a default deadline is applied when faults are active).
  double timeout_ms = 0.0;
  /// Retry budget before a wait surfaces soi::CommTimeoutError; 0 disables
  /// recovery (first detected fault is fatal with its typed error).
  int max_retries = 8;
  /// Scan the output for NaN/Inf after every forward(); violations throw
  /// soi::AccuracyFaultError (a corrupted exchange that slipped past the
  /// checksum layer must not return silently wrong spectra).
  bool output_guard = true;
};

/// Triple-all-to-all in-order distributed FFT plan (P = comm.size()).
class SixStepFftDist {
 public:
  SixStepFftDist(net::Transport& comm, std::int64_t n);
  SixStepFftDist(net::Transport& comm, std::int64_t n, SixStepOptions options);

  [[nodiscard]] const SixStepOptions& options() const { return opts_; }

  [[nodiscard]] std::int64_t size() const { return n_; }
  [[nodiscard]] std::int64_t local_size() const { return m_; }

  /// Forward transform; x_local/y_local are this rank's M points.
  void forward(cspan x_local, mspan y_local);

  /// Inverse transform (scaled by 1/N) via the conjugation identity;
  /// same block layout and the same three exchanges.
  void inverse(cspan y_local, mspan x_local);

  [[nodiscard]] const SixStepBreakdown& last_breakdown() const {
    return breakdown_;
  }

 private:
  void guard_output(cspan y_local) const;

  net::Transport& comm_;
  SixStepOptions opts_;
  std::int64_t n_;
  std::int64_t m_;       // N / P
  std::int64_t rows_;    // M / P (local j2 rows after the first transpose)
  fft::FftPlan plan_p_;  // F_P
  fft::FftPlan plan_m_;  // F_M
  cvec twiddle_;         // w_N^{j2*k1} for local j2, all k1
  SixStepBreakdown breakdown_;
  cvec a_, b_, c_, d_;   // persistent working buffers (M each)
  cvec conj_in_, conj_out_;
};

}  // namespace soi::baseline
