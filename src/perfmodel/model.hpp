// The paper's Section 7.4 execution-time model, used twice:
//  * to generate Fig. 9 (speedup projection on a hypothetical 3-D torus),
//  * to compose "cluster time" for Figs. 5/6/8 from per-rank compute that
//    *is* measured here and communication that is modeled (the substitute
//    for fabrics this build cannot access).
//
//   T_soi(n)  ~= T_fft((1+beta) n) + c * T_conv + (1+beta) * T_mpi(n)
//   T_base(n) ~= T_fft(n) + 3 * T_mpi(n)
//
// with weak scaling at S points per node: T_fft(n) = alpha (log2 S + log2 n),
// T_conv constant in n, and T_mpi(n) the fabric's all-to-all time for the
// 16 S bytes per node of one global transpose.
#pragma once

#include <cstdint>

#include "net/costmodel.hpp"

namespace soi::perf {

/// Calibration of the compute side of the model.
struct ComputeCalib {
  double points_per_node = 0.0;  ///< S (the paper uses 2^28)
  /// Seconds per point per log2-factor of the node-local FFT work:
  /// T_fft = fft_sec_per_point_log * S * (log2(S) + log2(n)).
  double fft_sec_per_point_log = 0.0;
  /// Seconds of the SOI convolution for S points (constant under weak
  /// scaling; Section 7.4).
  double conv_seconds = 0.0;
  double beta = 0.25;            ///< oversampling
  double conv_scale_c = 1.0;     ///< the paper's c in [0.75, 1.25]
};

/// Node-local FFT time at n nodes (weak scaling).
double t_fft(const ComputeCalib& c, double nodes);

/// One all-to-all global transpose of the per-node payload on the fabric.
double t_mpi(const net::NetworkModel& net, int nodes, double bytes_per_node);

/// Modeled SOI execution time at n nodes.
double t_soi(const ComputeCalib& c, const net::NetworkModel& net, int nodes);

/// Modeled triple-all-to-all baseline execution time at n nodes.
double t_baseline(const ComputeCalib& c, const net::NetworkModel& net,
                  int nodes);

/// speedup(n) = T_baseline / T_soi (the paper's headline metric).
double speedup(const ComputeCalib& c, const net::NetworkModel& net,
               int nodes);

/// GFLOPS the paper reports: 5 N log2 N / seconds with N = S * nodes.
double gflops(double points_per_node, int nodes, double seconds);

/// Communication-dominated limit of the speedup: 3 / (1 + beta)
/// (Fig. 8's theoretical 2.4x at beta = 1/4).
double comm_bound_speedup(double beta);

}  // namespace soi::perf
