#include "perfmodel/model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace soi::perf {

double t_fft(const ComputeCalib& c, double nodes) {
  SOI_CHECK(nodes >= 1.0, "t_fft: bad node count");
  SOI_CHECK(c.points_per_node > 0 && c.fft_sec_per_point_log > 0,
            "t_fft: calibration not set");
  return c.fft_sec_per_point_log * c.points_per_node *
         (std::log2(c.points_per_node) + std::log2(nodes));
}

double t_mpi(const net::NetworkModel& net, int nodes, double bytes_per_node) {
  return net.alltoall_seconds(nodes,
                              static_cast<std::int64_t>(bytes_per_node));
}

double t_soi(const ComputeCalib& c, const net::NetworkModel& net, int nodes) {
  const double oversample = 1.0 + c.beta;
  const double bytes_per_node = 16.0 * c.points_per_node;  // complex double
  // T_fft((1+beta) n): the same per-node point count, but the SOI pipeline
  // transforms N' = (1+beta) N points in total.
  return t_fft(c, oversample * nodes) * oversample +
         c.conv_scale_c * c.conv_seconds +
         oversample * t_mpi(net, nodes, bytes_per_node);
}

double t_baseline(const ComputeCalib& c, const net::NetworkModel& net,
                  int nodes) {
  const double bytes_per_node = 16.0 * c.points_per_node;
  return t_fft(c, nodes) + 3.0 * t_mpi(net, nodes, bytes_per_node);
}

double speedup(const ComputeCalib& c, const net::NetworkModel& net,
               int nodes) {
  return t_baseline(c, net, nodes) / t_soi(c, net, nodes);
}

double gflops(double points_per_node, int nodes, double seconds) {
  SOI_CHECK(seconds > 0.0, "gflops: non-positive time");
  const double n = points_per_node * nodes;
  return 5.0 * n * std::log2(n) / seconds / 1e9;
}

double comm_bound_speedup(double beta) { return 3.0 / (1.0 + beta); }

}  // namespace soi::perf
