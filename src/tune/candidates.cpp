#include "tune/candidates.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "net/erasure.hpp"
#include "net/topology.hpp"
#include "soi/params.hpp"
#include "tune/registry.hpp"

namespace soi::tune {

std::string accuracy_name(win::Accuracy acc) {
  switch (acc) {
    case win::Accuracy::kFull: return "full";
    case win::Accuracy::kHigh: return "high";
    case win::Accuracy::kMedium: return "medium";
    case win::Accuracy::kLow: return "low";
  }
  throw Error("accuracy_name: bad accuracy enum");
}

win::Accuracy accuracy_from_name(const std::string& name) {
  if (name == "full") return win::Accuracy::kFull;
  if (name == "high") return win::Accuracy::kHigh;
  if (name == "medium") return win::Accuracy::kMedium;
  if (name == "low") return win::Accuracy::kLow;
  throw Error("unknown accuracy '" + name + "' (full|high|medium|low)");
}

std::vector<win::Accuracy> tiers_at_or_above(win::Accuracy floor) {
  const win::Accuracy all[] = {win::Accuracy::kFull, win::Accuracy::kHigh,
                               win::Accuracy::kMedium, win::Accuracy::kLow};
  std::vector<win::Accuracy> out;
  for (const auto acc : all) {
    if (win::target_snr_db(acc) >= win::target_snr_db(floor)) out.push_back(acc);
  }
  return out;
}

std::string TuneKey::str() const {
  std::ostringstream os;
  os << "n=" << n << " ranks=" << ranks << " acc=" << accuracy_name(accuracy);
  return os.str();
}

namespace {

/// Split "k=v k=v ..." into pairs; throws on malformed tokens.
std::vector<std::pair<std::string, std::string>> kv_pairs(
    const std::string& text, const char* what) {
  std::istringstream is(text);
  std::vector<std::pair<std::string, std::string>> out;
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    SOI_CHECK(eq != std::string::npos && eq > 0,
              what << ": bad token '" << tok << "' in '" << text << "'");
    out.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return out;
}

}  // namespace

TuneKey parse_tune_key(const std::string& text) {
  TuneKey key;
  bool have_n = false, have_ranks = false, have_acc = false;
  for (const auto& [k, v] : kv_pairs(text, "parse_tune_key")) {
    if (k == "n") {
      key.n = std::stoll(v);
      have_n = true;
    } else if (k == "ranks") {
      key.ranks = std::stoi(v);
      have_ranks = true;
    } else if (k == "acc") {
      key.accuracy = accuracy_from_name(v);
      have_acc = true;
    } else {
      throw Error("parse_tune_key: unknown field '" + k + "'");
    }
  }
  SOI_CHECK(have_n && have_ranks && have_acc,
            "parse_tune_key: missing field in '" << text << "'");
  SOI_CHECK(key.n > 0 && key.ranks > 0,
            "parse_tune_key: non-positive n/ranks in '" << text << "'");
  return key;
}

std::string Candidate::describe() const {
  std::ostringstream os;
  os << "tier=" << accuracy_name(accuracy) << " spr=" << segments_per_rank
     << " algo="
     << (alltoall_algo == net::AlltoallAlgo::kPairwise ? "pairwise" : "direct")
     << " overlap=" << (overlap ? 1 : 0) << " bw=" << batch_width
     << " cd=" << chunk_depth;
  // The topo token is emitted only for non-flat schedules, so flat
  // candidates keep the exact pre-v4 text (older readers and tests see
  // unchanged lines). Likewise the v5 backend tokens appear only when a
  // decision is pinned to a named transport / engine.
  if (!topology.empty() && topology != "flat") os << " topo=" << topology;
  if (!transport.empty()) os << " transport=" << transport;
  if (!engine.empty()) os << " engine=" << engine;
  // v6 token, emitted only when the exchange is coded — uncoded lines stay
  // byte-identical to v5 output.
  if (!coding.empty()) os << " code=" << coding;
  return os.str();
}

Candidate parse_candidate(const std::string& text) {
  Candidate c;
  bool have_tier = false, have_spr = false, have_algo = false,
       have_overlap = false;
  for (const auto& [k, v] : kv_pairs(text, "parse_candidate")) {
    if (k == "tier") {
      c.accuracy = accuracy_from_name(v);
      have_tier = true;
    } else if (k == "spr") {
      c.segments_per_rank = std::stoll(v);
      have_spr = true;
    } else if (k == "algo") {
      if (v == "pairwise") {
        c.alltoall_algo = net::AlltoallAlgo::kPairwise;
      } else if (v == "direct") {
        c.alltoall_algo = net::AlltoallAlgo::kDirect;
      } else {
        throw Error("parse_candidate: unknown algo '" + v + "'");
      }
      have_algo = true;
    } else if (k == "overlap") {
      c.overlap = v != "0";
      have_overlap = true;
    } else if (k == "bw") {
      // Optional (absent in v1 wisdom lines; defaults to 0 = auto).
      c.batch_width = std::stoll(v);
    } else if (k == "cd") {
      // Optional (absent before v3 wisdom; defaults to 1 = unchunked).
      c.chunk_depth = std::stoll(v);
    } else if (k == "topo") {
      // Optional (absent before v4 wisdom and for flat candidates).
      // Syntactic validation only — the rank count is not known here; a
      // shape that cannot factor the communicator fails at plan time.
      SOI_CHECK(v == "flat" || v.rfind("two-level", 0) == 0 ||
                    v.rfind("torus", 0) == 0,
                "parse_candidate: unknown topology '" << v << "' in '"
                                                      << text << "'");
      c.topology = v == "flat" ? std::string{} : v;
    } else if (k == "transport") {
      // Optional (absent before v5 wisdom and for unpinned decisions).
      // Name-level validation only: the registry is consulted where the
      // decision is replayed, so wisdom written by a build with extra
      // backends still parses everywhere.
      c.transport = v;
    } else if (k == "engine") {
      // Optional (absent before v5 wisdom and for unpinned decisions).
      c.engine = v;
    } else if (k == "code") {
      // Optional (absent before v6 wisdom and for uncoded candidates).
      net::Coding code;
      SOI_CHECK(net::Coding::parse(v, &code),
                "parse_candidate: bad coding '" << v << "' in '" << text
                                                << "' (want k+r, e.g. 4+1)");
      c.coding = v;
    } else {
      throw Error("parse_candidate: unknown field '" + k + "'");
    }
  }
  SOI_CHECK(have_tier && have_spr && have_algo && have_overlap,
            "parse_candidate: missing field in '" << text << "'");
  SOI_CHECK(c.segments_per_rank >= 1,
            "parse_candidate: bad segments_per_rank in '" << text << "'");
  SOI_CHECK(c.batch_width >= 0,
            "parse_candidate: bad batch_width in '" << text << "'");
  SOI_CHECK(c.chunk_depth >= 1 && c.segments_per_rank % c.chunk_depth == 0,
            "parse_candidate: chunk_depth must divide segments_per_rank in '"
                << text << "'");
  return c;
}

std::vector<Candidate> candidate_space(const TuneKey& key,
                                       std::int64_t max_segments_per_rank) {
  SOI_CHECK(key.n > 0 && key.ranks > 0,
            "candidate_space: need positive n and ranks");
  SOI_CHECK(max_segments_per_rank >= 1,
            "candidate_space: max_segments_per_rank must be >= 1");
  std::vector<Candidate> out;
  // Staged topology schedules worth enumerating on this rank count, flat
  // ("") always first so the default configuration keeps the lead. Shapes
  // are canonicalised (explicit group size / dims) and only emitted when
  // non-degenerate: a two-level split needs a proper divisor strictly
  // between 1 and ranks, a torus at least two dimensions > 1.
  std::vector<std::string> topos{std::string{}};
  if (key.ranks >= 4) {
    const net::Topology tl = net::Topology::two_level(key.ranks);
    if (tl.group_size() > 1 && tl.groups() > 1) topos.push_back(tl.str());
    const net::Topology tr = net::Topology::torus(key.ranks);
    int fat_dims = 0;
    for (const int k : tr.dims()) fat_dims += k > 1 ? 1 : 0;
    if (fat_dims >= 2) topos.push_back(tr.str());
  }
  // Requested tier first so the seed's hard-coded configuration leads the
  // enumeration (the tuner's tie-break is "first wins").
  auto tiers = tiers_at_or_above(key.accuracy);
  std::reverse(tiers.begin(), tiers.end());  // requested tier leads
  for (const auto tier : tiers) {
    // Registry-cached: the design search runs once per tier per process.
    const win::SoiProfile& profile = *PlanRegistry::global().profile(tier);
    for (std::int64_t spr = 1; spr <= max_segments_per_rank; spr *= 2) {
      const std::int64_t p = key.ranks * spr;
      bool feasible = true;
      try {
        const core::SoiGeometry g(key.n, p, profile);
        // One-neighbour halo invariant of the distributed pipeline.
        feasible = g.halo() <= g.m();
      } catch (const Error&) {
        feasible = false;
      }
      if (!feasible) continue;
      for (const auto algo :
           {net::AlltoallAlgo::kPairwise, net::AlltoallAlgo::kDirect}) {
        for (const bool overlap : {false, true}) {
          if (overlap && key.ranks == 1) continue;  // nothing to hide
          // Batch width of the SoA FFT stages: auto (SIMD-derived) first,
          // then one narrow and one wide explicit setting.
          for (const std::int64_t bw : {std::int64_t{0}, std::int64_t{8},
                                        std::int64_t{32}}) {
            // Chunk depth matters only under the pipelined schedule; the
            // in-order executor posts and waits each piece back to back.
            const std::int64_t max_cd =
                overlap ? std::min<std::int64_t>(spr, 4) : 1;
            for (std::int64_t cd = 1; cd <= max_cd; cd *= 2) {
              // Topology variants ride only the pairwise/auto-width axis:
              // the staged schedules are latency plays, and crossing them
              // with every algo x bw combination would inflate the space
              // without adding signal (the exchange volume is identical).
              const bool topo_axis =
                  algo == net::AlltoallAlgo::kPairwise && bw == 0;
              for (const std::string& topo : topos) {
                if (!topo.empty() && !topo_axis) continue;
                // The coded-exchange variant rides the same restricted
                // axis: it trades wire volume for loss absorption, which
                // is orthogonal to algo/bw, and doubling only this axis
                // keeps the space bounded. Uncoded first, so the default
                // still wins exact ties.
                for (const char* code : {"", "4+1"}) {
                  if (*code != '\0' && (!topo_axis || key.ranks < 2)) {
                    continue;
                  }
                  out.push_back(Candidate{tier, spr, algo, overlap, bw, cd,
                                          topo, {}, {}, code});
                }
              }
            }
          }
        }
      }
    }
  }
  SOI_CHECK(!out.empty(),
            "candidate_space: no feasible candidate for " << key.str());
  return out;
}

}  // namespace soi::tune
