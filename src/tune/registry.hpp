// Thread-safe, LRU-evicting registry of constructed plan artifacts.
//
// Constructing an SOI plan is far more expensive than executing one
// transform with it: the profile design search samples windows densely,
// and the convolution table evaluates mu * B * P window points. A service
// that transforms many signals of a few recurring shapes should pay those
// costs once per shape, not once per call — the registry memoises
//
//   * accuracy-preset profiles        (the Section 4 design search),
//   * convolution tables              (shared by ALL ranks of a
//                                      distributed plan: the R per-rank
//                                      tables of one SoiFftDist world are
//                                      identical, so R threads asking for
//                                      the same key build exactly one),
//   * whole serial plans              (construction — window design,
//                                      tables, FFT planning — is the
//                                      expensive part; sharing amortises
//                                      it. forward() runs through the
//                                      plan's own preplanned workspace, so
//                                      concurrent forward() calls on ONE
//                                      shared instance are not supported —
//                                      but the stage chain is stateless:
//                                      callers that need parallel
//                                      execution of one shared plan give
//                                      each thread its own exec::ExecState
//                                      via init_state()/forward_on(), the
//                                      serving layer's pattern).
//
// Concurrency contract: lookups of the same key from any number of
// threads construct the value exactly once; the non-constructing threads
// block until it is ready. Construction happens outside the registry
// lock, so slow builds of different keys proceed in parallel.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fft/batch.hpp"
#include "fft/engine.hpp"
#include "soi/conv_table.hpp"
#include "soi/serial.hpp"
#include "window/design.hpp"

namespace soi::tune {

class PlanRegistry {
 public:
  /// `capacity`: maximum resident entries; least-recently-used completed
  /// entries are evicted first (handed-out shared_ptrs stay valid — the
  /// registry only drops its own reference).
  explicit PlanRegistry(std::size_t capacity = 64);

  /// Accuracy-preset profile (make_profile) — cached design search.
  std::shared_ptr<const win::SoiProfile> profile(win::Accuracy acc);

  /// Convolution table for the (n, p, profile) geometry.
  std::shared_ptr<const core::ConvTable> conv_table(
      std::int64_t n, std::int64_t p, const win::SoiProfile& prof);

  /// Complete serial plan for (n, p, profile) on the named FFT engine
  /// ("" = the session default, fft::default_engine()). The resolved
  /// engine name is part of the cache key, so a plan built on one
  /// executor is never handed to a caller asking for another.
  std::shared_ptr<const core::SoiFftSerial> serial_plan(
      std::int64_t n, std::int64_t p, const win::SoiProfile& prof,
      const std::string& engine = "");

  /// Batched SoA FFT executor for length-`n` transforms at the given batch
  /// width (0 = auto from the SIMD tier). The executor owns the SoA twiddle
  /// layout for every pass, which dominates its construction cost — sharing
  /// one instance across plans of the same shape memoises that layout.
  std::shared_ptr<const fft::BatchFft> batch_plan(std::int64_t n,
                                                  std::int64_t width = 0);

  /// Engine-generic counterpart of batch_plan(): a batched transform built
  /// through fft::EngineRegistry, keyed by the resolved engine name
  /// ("" = default) alongside the shape.
  std::shared_ptr<const fft::BatchTransform> batch_transform(
      const std::string& engine, std::int64_t n, std::int64_t width = 0);

  /// Generic memoisation used by the typed getters: returns the cached
  /// value for `key` or runs `build` (exactly once per key, outside the
  /// registry lock). A throwing build is not cached; the exception
  /// propagates to every waiter of that construction.
  template <class T>
  std::shared_ptr<const T> get_or_build(
      const std::string& key,
      const std::function<std::shared_ptr<const T>()>& build) {
    return std::static_pointer_cast<const T>(get_or_build_erased(
        key, [&build]() -> std::shared_ptr<const void> { return build(); }));
  }

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;     ///< == number of constructions started
    std::int64_t evictions = 0;
    std::size_t size = 0;        ///< resident entries right now
  };
  [[nodiscard]] Stats stats() const;

  /// Drop every entry (handed-out pointers stay valid).
  void clear();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Process-wide instance used by the CLI, examples and benches.
  static PlanRegistry& global();

 private:
  std::shared_ptr<const void> get_or_build_erased(
      const std::string& key,
      const std::function<std::shared_ptr<const void>()>& build);
  void evict_lru_locked();

  struct Entry {
    std::shared_future<std::shared_ptr<const void>> value;
    std::uint64_t last_use = 0;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  Stats stats_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Registry cache key of a profile: every field that changes the numerics
/// (window family/parameters via serialisation when supported, otherwise
/// name + design numbers).
std::string profile_cache_key(const win::SoiProfile& prof);

}  // namespace soi::tune
