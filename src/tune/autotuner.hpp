// The autotuner: scores every feasible candidate of a (N, ranks, accuracy)
// key and picks the fastest, in one of two modes.
//
//   kModeled  — fully deterministic. Per-rank compute is counted from the
//               geometry's flop accounting (Section 7.4) at a fixed nominal
//               node rate; communication comes from the fabric cost models
//               plus a per-message schedule term that separates the two
//               all-to-all algorithms. Same key + options => same winner,
//               bit for bit. This is the default: wisdom produced on one
//               run reproduces on the next.
//
//   kMeasured — per-rank compute is MEASURED by executing each candidate's
//               SoiFftDist pipeline on an in-process rank team (any
//               registered transport with threaded_world capability;
//               cross-process fabrics are rejected with a typed error)
//               against a deterministic
//               Gaussian input (fixed RNG seed) and taking the best of
//               `reps` repetitions of SoiDistBreakdown::compute_total();
//               communication is still modeled from the recorded volumes
//               (the harness's measured-compute / modeled-comm
//               methodology). Winner may vary with machine noise.
//
// Either way the seed's hard-coded default configuration is in the
// candidate set, so the tuned choice is never worse than the default
// under the scoring used.
#pragma once

#include <cstdint>
#include <vector>

#include "net/costmodel.hpp"
#include "tune/candidates.hpp"
#include "tune/registry.hpp"
#include "tune/wisdom.hpp"

namespace soi::tune {

enum class TuneMode {
  kModeled,   ///< deterministic analytic scoring (default)
  kMeasured,  ///< wall-clock compute via in-process execution
};

struct TuneOptions {
  TuneMode mode = TuneMode::kModeled;
  /// Transport backend the decision targets ("" = unpinned: score for the
  /// session default and record no pin). Pinned sweeps stamp every
  /// candidate, so the wisdom line replays only on that backend; the
  /// modeled scorer prices the node-local "shm" fabric at memory-bus
  /// bandwidth instead of the cluster model, and the measured scorer runs
  /// the rank team on the named transport (which must report
  /// threaded_world — cross-process fabrics throw InvalidArgumentError).
  std::string transport;
  /// FFT-engine backend ("" = unpinned). The modeled scorer scales all
  /// compute by the engine's EngineInfo::compute_scale; the measured
  /// scorer builds each candidate's plans on this engine.
  std::string engine;
  /// Repetitions per candidate in kMeasured mode (best-of).
  int reps = 3;
  /// kMeasured + priors: gate the measurement budget by stage priors.
  /// When the nearest tuned neighbour carries per-stage seconds (wisdom
  /// v3+), the sweep first prices every candidate with the modeled
  /// scorer at a node rate CALIBRATED against the neighbour's measured
  /// compute; candidates priced more than rep_gate_factor x the modeled
  /// front run a single repetition instead of `reps` (per-stage minima
  /// can only stay >= with fewer reps, so a far-off candidate cannot
  /// sneak past the front — winners are unchanged, wall time shrinks).
  /// TuneResult::gated_candidates reports how many were demoted.
  bool rep_gating = true;
  /// Modeled-price multiple of the front beyond which a candidate's
  /// measurement budget drops to one rep.
  double rep_gate_factor = 2.0;
  /// RNG seed of the deterministic test signal (kMeasured input).
  std::uint64_t seed = 1;
  /// Nominal node compute rate for kModeled scoring, GFLOPS. Any fixed
  /// value yields a deterministic tuner; this one approximates the class
  /// of node this build targets.
  double node_gflops = 4.0;
  /// Fabric whose cost model prices the communication; null = the
  /// Endeavor fat tree (the paper's primary testbed).
  const net::NetworkModel* fabric = nullptr;
  /// Expected per-message loss probability of the target fabric, folded
  /// into the modeled score: an uncoded exchange pays
  /// messages x p/(1-p) x (retry_timeout_s + 2 x latency) for detection +
  /// retransmit round trips, a coded one inflates the wire volume by
  /// (k+r)/k but only pays the p^(r+1) residual (> r shards of one
  /// codeword lost). 0 (the default) prices a clean fabric, where the
  /// parity overhead makes retransmit-only win.
  double loss_rate = 0.0;
  /// Modeled detection deadline of one lost-message retry, seconds —
  /// the bounded-wait timeout the resilient exchange arms (NetOptions
  /// timeout tier, 50 ms by default).
  double retry_timeout_s = 0.05;
  /// Cap on the segments-per-rank knob (the paper uses up to 8).
  std::int64_t max_segments_per_rank = 8;
  /// Registry the sweep draws profiles/tables from; null = the global one.
  PlanRegistry* registry = nullptr;
  /// Optional wisdom store consulted for PRIORS: per-stage seconds of
  /// previously tuned neighbouring shapes reorder the candidate
  /// evaluation (comm-bound neighbours promote overlapping/chunked
  /// candidates). Ordering only — every candidate is still scored, and
  /// the default configuration still wins exact ties it partakes in
  /// first. tuned_config() passes its own store automatically.
  const WisdomStore* priors = nullptr;
};

/// One scored candidate.
struct CandidateScore {
  Candidate candidate;
  double compute_seconds = 0.0;  ///< per-rank compute critical path
  double comm_seconds = 0.0;     ///< modeled halo + all-to-all
  /// Measured per-stage seconds (kMeasured mode only; empty when
  /// modeled). Becomes the wisdom entry's stage priors.
  std::vector<std::pair<std::string, double>> stage_seconds;
  [[nodiscard]] double total_seconds() const {
    return compute_seconds + comm_seconds;
  }
};

/// Sweep outcome: the winner plus every score (enumeration order).
struct TuneResult {
  TuneKey key;
  CandidateScore best;
  win::SoiProfile profile;  ///< profile of the winning tier
  std::vector<CandidateScore> scores;
  /// kMeasured sweeps: candidates whose measurement budget was gated to
  /// one rep because stage priors priced them far off the front
  /// (TuneOptions::rep_gating); 0 in modeled mode or without priors.
  int gated_candidates = 0;

  /// The winner as a wisdom entry (measured stage timings ride along as
  /// the priors of later sweeps).
  [[nodiscard]] TunedConfig config() const {
    return TunedConfig{best.candidate, profile, best.total_seconds(),
                       best.stage_seconds};
  }
};

/// Score one candidate (exposed for benches; autotune() loops over this).
CandidateScore score_candidate(const TuneKey& key, const Candidate& cand,
                               const TuneOptions& opts = {});

/// Stable-reorder `candidates` using stage priors from `priors`: when the
/// nearest previously tuned shape (same ranks and accuracy, smallest
/// |log2(n ratio)|) spent more than 40% of its stage time in
/// communication (halo + exchange), overlapping/chunked candidates move
/// to the front. No candidate is added or removed; without a usable
/// neighbour the order is untouched. Exposed for tests; autotune() calls
/// this when TuneOptions::priors is set.
void order_candidates_with_priors(std::vector<Candidate>& candidates,
                                  const TuneKey& key,
                                  const WisdomStore& priors);

/// Sweep the candidate space of `key` and return the fastest candidate
/// (ties break toward the earliest enumerated, i.e. the default config).
TuneResult autotune(const TuneKey& key, const TuneOptions& opts = {});

/// Tune-or-reuse: return wisdom's decision for `key` when present (a cache
/// hit — no sweep runs), otherwise autotune and record the result in
/// `wisdom`. `was_hit` (optional) reports which path was taken.
TunedConfig tuned_config(const TuneKey& key, WisdomStore& wisdom,
                         const TuneOptions& opts = {},
                         bool* was_hit = nullptr);

}  // namespace soi::tune
