// The autotuner: scores every feasible candidate of a (N, ranks, accuracy)
// key and picks the fastest, in one of two modes.
//
//   kModeled  — fully deterministic. Per-rank compute is counted from the
//               geometry's flop accounting (Section 7.4) at a fixed nominal
//               node rate; communication comes from the fabric cost models
//               plus a per-message schedule term that separates the two
//               all-to-all algorithms. Same key + options => same winner,
//               bit for bit. This is the default: wisdom produced on one
//               run reproduces on the next.
//
//   kMeasured — per-rank compute is MEASURED by executing each candidate's
//               SoiFftDist pipeline on SimMPI against a deterministic
//               Gaussian input (fixed RNG seed) and taking the best of
//               `reps` repetitions of SoiDistBreakdown::compute_total();
//               communication is still modeled from the recorded volumes
//               (the harness's measured-compute / modeled-comm
//               methodology). Winner may vary with machine noise.
//
// Either way the seed's hard-coded default configuration is in the
// candidate set, so the tuned choice is never worse than the default
// under the scoring used.
#pragma once

#include <cstdint>
#include <vector>

#include "net/costmodel.hpp"
#include "tune/candidates.hpp"
#include "tune/registry.hpp"
#include "tune/wisdom.hpp"

namespace soi::tune {

enum class TuneMode {
  kModeled,   ///< deterministic analytic scoring (default)
  kMeasured,  ///< wall-clock compute via SimMPI execution
};

struct TuneOptions {
  TuneMode mode = TuneMode::kModeled;
  /// Repetitions per candidate in kMeasured mode (best-of).
  int reps = 3;
  /// RNG seed of the deterministic test signal (kMeasured input).
  std::uint64_t seed = 1;
  /// Nominal node compute rate for kModeled scoring, GFLOPS. Any fixed
  /// value yields a deterministic tuner; this one approximates the class
  /// of node this build targets.
  double node_gflops = 4.0;
  /// Fabric whose cost model prices the communication; null = the
  /// Endeavor fat tree (the paper's primary testbed).
  const net::NetworkModel* fabric = nullptr;
  /// Cap on the segments-per-rank knob (the paper uses up to 8).
  std::int64_t max_segments_per_rank = 8;
  /// Registry the sweep draws profiles/tables from; null = the global one.
  PlanRegistry* registry = nullptr;
};

/// One scored candidate.
struct CandidateScore {
  Candidate candidate;
  double compute_seconds = 0.0;  ///< per-rank critical-path compute
  double comm_seconds = 0.0;     ///< modeled halo + all-to-all
  [[nodiscard]] double total_seconds() const {
    return compute_seconds + comm_seconds;
  }
};

/// Sweep outcome: the winner plus every score (enumeration order).
struct TuneResult {
  TuneKey key;
  CandidateScore best;
  win::SoiProfile profile;  ///< profile of the winning tier
  std::vector<CandidateScore> scores;

  /// The winner as a wisdom entry.
  [[nodiscard]] TunedConfig config() const {
    return TunedConfig{best.candidate, profile, best.total_seconds()};
  }
};

/// Score one candidate (exposed for benches; autotune() loops over this).
CandidateScore score_candidate(const TuneKey& key, const Candidate& cand,
                               const TuneOptions& opts = {});

/// Sweep the candidate space of `key` and return the fastest candidate
/// (ties break toward the earliest enumerated, i.e. the default config).
TuneResult autotune(const TuneKey& key, const TuneOptions& opts = {});

/// Tune-or-reuse: return wisdom's decision for `key` when present (a cache
/// hit — no sweep runs), otherwise autotune and record the result in
/// `wisdom`. `was_hit` (optional) reports which path was taken.
TunedConfig tuned_config(const TuneKey& key, WisdomStore& wisdom,
                         const TuneOptions& opts = {},
                         bool* was_hit = nullptr);

}  // namespace soi::tune
