// Wisdom: tuned plan decisions persisted across runs (FFTW's term for the
// same idea). A wisdom file is versioned, line-oriented text:
//
//   soiwisdom v6
//   # optional comments
//   <key> | <candidate> | <score> | <profile> [| <stages>]
//
// with <key> = TuneKey::str() ("n=65536 ranks=8 acc=full"), <candidate> =
// Candidate::describe() ("tier=full spr=2 algo=direct overlap=1 bw=0
// cd=1"), <score> = "score=<seconds>" (the tuner's winning estimate),
// <profile> = win::serialize_profile() of the winning tier's profile (so a
// reload skips the design search as well as the tuning sweep), and the
// optional <stages> = "stages=halo:1.2e-05,conv:3.4e-04,..." — the
// measured tuner's per-stage seconds of the winning run. Later sweeps read
// these back as PRIORS that reorder candidate evaluation (comm-bound
// shapes try overlapping/chunked candidates first); they never prune.
//
// v6 added the candidate's optional code (erasure-coded exchange, "k+r")
// field — emitted only for coded decisions, so uncoded lines are
// byte-identical to v5's. v5 added the candidate's optional transport /
// engine backend fields — emitted only for decisions pinned to a named
// backend, so unpinned lines are byte-identical to v4's. v4 added the
// candidate's optional topo (exchange topology) field — emitted only for
// non-flat schedules, so flat lines are byte-identical to v3's. v3 added
// the candidate's cd (chunk depth) field and the optional stages field.
// v2 added bw (SoA batch width). v1–v5 files are still READ (their
// candidates default to bw=0 / cd=1 / flat topology / unpinned backends /
// coding off); files are always WRITTEN at the current version.
//
// This subsumes the old single-line `--profile` files of tools/soifft:
// those stored only a window profile; wisdom stores the full tuned
// decision keyed by problem shape.
//
// A file whose first line is not an accepted version header is rejected
// with a clear error — never silently misparsed.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tune/candidates.hpp"
#include "window/design.hpp"

namespace soi::tune {

/// One tuned decision: the winning candidate, its profile (design-search
/// output) and the tuner's score for it. `stage_seconds` (may be empty)
/// carries the measured tuner's per-stage timings of the winning run, in
/// pipeline order — the priors later sweeps use to order their candidate
/// evaluation.
struct TunedConfig {
  Candidate candidate;
  win::SoiProfile profile;
  double score_seconds = 0.0;
  std::vector<std::pair<std::string, double>> stage_seconds;
};

/// In-memory wisdom collection with text (de)serialisation. Not
/// thread-safe; the thread-safe component of the subsystem is
/// PlanRegistry — guard shared WisdomStore access externally.
class WisdomStore {
 public:
  static constexpr const char* kHeader = "soiwisdom v6";
  /// Older headers still accepted by parse() (read-compat).
  static constexpr const char* kHeaderV5 = "soiwisdom v5";
  static constexpr const char* kHeaderV4 = "soiwisdom v4";
  static constexpr const char* kHeaderV3 = "soiwisdom v3";
  static constexpr const char* kHeaderV2 = "soiwisdom v2";
  static constexpr const char* kHeaderV1 = "soiwisdom v1";

  /// Insert or replace the decision for `key`.
  void put(const TuneKey& key, const TunedConfig& config);

  /// Look up a decision; nullopt when this shape was never tuned.
  [[nodiscard]] std::optional<TunedConfig> find(const TuneKey& key) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// All decisions, keyed by TuneKey::str() (the prior-ordering scan).
  [[nodiscard]] const std::map<std::string, TunedConfig>& entries() const {
    return entries_;
  }

  /// Full text form (header + one line per entry, key-sorted).
  [[nodiscard]] std::string serialize() const;

  /// Parse text produced by serialize() — current or any legacy (v1–v4)
  /// format. Throws soi::Error on a missing or unknown version header or
  /// any malformed line.
  static WisdomStore parse(const std::string& text);

  /// Write to / read from a file. load() throws soi::Error when the file
  /// cannot be opened or fails to parse.
  void save(const std::string& path) const;
  static WisdomStore load(const std::string& path);

  /// load() if `path` exists, otherwise an empty store (the tune
  /// subcommand's append-to-existing-file behaviour).
  static WisdomStore load_or_empty(const std::string& path);

 private:
  std::map<std::string, TunedConfig> entries_;  // keyed by TuneKey::str()
};

}  // namespace soi::tune
