#include "tune/wisdom.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace soi::tune {

void WisdomStore::put(const TuneKey& key, const TunedConfig& config) {
  SOI_CHECK(config.profile.window != nullptr,
            "WisdomStore::put: config has no window profile");
  entries_[key.str()] = config;
}

std::optional<TunedConfig> WisdomStore::find(const TuneKey& key) const {
  const auto it = entries_.find(key.str());
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string WisdomStore::serialize() const {
  std::ostringstream os;
  os << kHeader << "\n";
  os << "# SOI-FFT tuned plan decisions — regenerate with `soifft tune`\n";
  os.precision(17);
  for (const auto& [key, cfg] : entries_) {
    os << key << " | " << cfg.candidate.describe() << " | score="
       << cfg.score_seconds << " | " << win::serialize_profile(cfg.profile);
    if (!cfg.stage_seconds.empty()) {
      os << " | stages=";
      bool first = true;
      for (const auto& [name, sec] : cfg.stage_seconds) {
        if (!first) os << ",";
        first = false;
        os << name << ":" << sec;
      }
    }
    os << "\n";
  }
  return os.str();
}

namespace {

/// Split a wisdom line on " | " into exactly `n` fields.
std::vector<std::string> split_fields(const std::string& line, std::size_t n) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (fields.size() + 1 < n) {
    const auto bar = line.find(" | ", pos);
    SOI_CHECK(bar != std::string::npos,
              "wisdom: malformed line '" << line << "'");
    fields.push_back(line.substr(pos, bar - pos));
    pos = bar + 3;
  }
  fields.push_back(line.substr(pos));
  return fields;
}

/// Parse "halo:1.2e-05,conv:3.4e-04,..." (the v3 stages field payload).
std::vector<std::pair<std::string, double>> parse_stage_seconds(
    const std::string& text, const std::string& line) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    const auto colon = item.find(':');
    SOI_CHECK(colon != std::string::npos && colon > 0,
              "wisdom: malformed stages field in '" << line << "'");
    out.emplace_back(item.substr(0, colon),
                     std::stod(item.substr(colon + 1)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

WisdomStore WisdomStore::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  SOI_CHECK(std::getline(is, line),
            "wisdom: empty input (expected header '" << kHeader << "')");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  SOI_CHECK(line == kHeader || line == kHeaderV5 || line == kHeaderV4 ||
                line == kHeaderV3 || line == kHeaderV2 || line == kHeaderV1,
            "wisdom: version mismatch — expected header '"
                << kHeader << "' (or legacy '" << kHeaderV5 << "' / '"
                << kHeaderV4 << "' / '" << kHeaderV3 << "' / '" << kHeaderV2
                << "' / '" << kHeaderV1 << "'), got '" << line
                << "'; re-run `soifft tune` to regenerate");
  WisdomStore store;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_fields(line, 4);
    const TuneKey key = parse_tune_key(fields[0]);
    TunedConfig cfg;
    cfg.candidate = parse_candidate(fields[1]);
    SOI_CHECK(fields[2].rfind("score=", 0) == 0,
              "wisdom: expected score field, got '" << fields[2] << "'");
    cfg.score_seconds = std::stod(fields[2].substr(6));
    // fields[3] holds the line's remainder: the profile, optionally
    // followed by the v3 " | stages=..." field.
    std::string profile_text = fields[3];
    const auto bar = profile_text.find(" | stages=");
    if (bar != std::string::npos) {
      cfg.stage_seconds = parse_stage_seconds(
          profile_text.substr(bar + 3 + 7), line);
      profile_text.resize(bar);
    }
    cfg.profile = win::parse_profile(profile_text);
    store.put(key, cfg);
  }
  return store;
}

void WisdomStore::save(const std::string& path) const {
  // Write-then-rename so readers (and concurrent servers sharing a
  // wisdom file) never observe a truncated store; rename(2) on the same
  // filesystem replaces the destination atomically.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    SOI_CHECK(f.good(), "wisdom: cannot open '" << tmp << "' for writing");
    f << serialize();
    f.flush();
    SOI_CHECK(f.good(), "wisdom: write to '" << tmp << "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    SOI_CHECK(false, "wisdom: atomic rename to '" << path << "' failed");
  }
}

WisdomStore WisdomStore::load(const std::string& path) {
  std::ifstream f(path);
  SOI_CHECK(f.good(), "wisdom: cannot open '" << path << "'");
  std::ostringstream text;
  text << f.rdbuf();
  return parse(text.str());
}

WisdomStore WisdomStore::load_or_empty(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) return WisdomStore{};
  std::ostringstream text;
  text << f.rdbuf();
  return parse(text.str());
}

}  // namespace soi::tune
