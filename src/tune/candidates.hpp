// The tuning candidate space: every knob the SOI factorisation exposes
// that changes execution time without changing the answer below the
// requested accuracy floor.
//
// Knobs per (N, ranks, accuracy) key:
//   * window profile tier — the Fig. 7 B/kappa trade-off: any preset at
//     least as accurate as the requested one is admissible,
//   * segments_per_rank — Section 6's granularity (P = g * ranks),
//   * all-to-all schedule — net::AlltoallAlgo (pairwise vs direct),
//   * halo overlap — in-order vs pipelined dataflow schedule,
//   * batch_width — SoA transforms per pass of the batched FFT stages
//     (fft/batch.hpp); 0 lets the executor derive it from the SIMD tier,
//   * chunk_depth — groups the exchange..demod stages are cut into under
//     the pipelined schedule (the dataflow executor's double-buffer
//     depth); only enumerated for overlapping candidates, must divide
//     segments_per_rank.
//
// candidate_space() enumerates only FEASIBLE points: every candidate's
// SoiGeometry constructs (divisibility) and its halo fits inside one
// segment (the distributed pipeline's one-neighbour invariant).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "window/design.hpp"

namespace soi::tune {

/// Identity of one tuning problem. Two runs with equal keys may share a
/// tuned decision (via WisdomStore) and constructed plans (PlanRegistry).
struct TuneKey {
  std::int64_t n = 0;                            ///< transform size
  int ranks = 1;                                 ///< communicator size
  win::Accuracy accuracy = win::Accuracy::kFull; ///< requested floor

  /// Canonical text form, e.g. "n=65536 ranks=8 acc=full"; used as the
  /// wisdom-file key and the registry key prefix.
  [[nodiscard]] std::string str() const;

  bool operator==(const TuneKey& o) const {
    return n == o.n && ranks == o.ranks && accuracy == o.accuracy;
  }
};

/// Parse the output of TuneKey::str(); throws soi::Error on malformed text.
TuneKey parse_tune_key(const std::string& text);

/// One point in the tuning space.
struct Candidate {
  win::Accuracy accuracy = win::Accuracy::kFull; ///< profile tier used
  std::int64_t segments_per_rank = 1;
  net::AlltoallAlgo alltoall_algo = net::AlltoallAlgo::kPairwise;
  bool overlap = false;
  std::int64_t batch_width = 0;  ///< SoA batch width (0 = auto from SIMD tier)
  /// Chunk groups of the pipelined exchange (DistOptions::chunk_depth);
  /// 1 = the classic whole-rank all-to-all.
  std::int64_t chunk_depth = 1;
  /// Exchange topology schedule (DistOptions::topology / net::Topology
  /// syntax): "" = the native flat all-to-all; "two-level[:G]" /
  /// "torus[:k0xk1xk2]" select the staged store-and-forward schedules.
  std::string topology;
  /// Transport backend the decision was scored on ("" = unpinned / the
  /// session default). Recorded so a wisdom line tuned against one fabric
  /// is never silently replayed on another; new fields stay trailing —
  /// candidate_space() aggregate-initialises the prefix.
  std::string transport;
  /// FFT-engine backend (fft::EngineRegistry name; "" = unpinned).
  std::string engine;
  /// Erasure-coded exchange redundancy ("k+r", DistOptions::coding /
  /// net::Coding syntax; "" = coding off, retransmit-only). Trailing field
  /// of wisdom v6; prior-version lines parse with it defaulted off.
  std::string coding;

  /// Canonical text form, e.g.
  /// "tier=full spr=2 algo=direct overlap=1 bw=0 cd=1"; a non-flat
  /// topology appends " topo=<shape>", pinned backends append
  /// " transport=<name>" / " engine=<name>" (wisdom v5), and a coded
  /// exchange appends " code=<k+r>" (wisdom v6). Round-trips through
  /// parse_candidate().
  [[nodiscard]] std::string describe() const;

  bool operator==(const Candidate& o) const {
    return accuracy == o.accuracy &&
           segments_per_rank == o.segments_per_rank &&
           alltoall_algo == o.alltoall_algo && overlap == o.overlap &&
           batch_width == o.batch_width && chunk_depth == o.chunk_depth &&
           topology == o.topology && transport == o.transport &&
           engine == o.engine && coding == o.coding;
  }
};

/// Parse the output of Candidate::describe(); throws soi::Error. Accepts
/// older wisdom lines that predate the bw / cd fields (both default — 0
/// auto width, depth 1).
Candidate parse_candidate(const std::string& text);

/// Lowercase preset name ("full", "high", "medium", "low").
std::string accuracy_name(win::Accuracy acc);

/// Inverse of accuracy_name(); throws soi::Error on an unknown name.
win::Accuracy accuracy_from_name(const std::string& name);

/// Presets at least as accurate as `floor`, most accurate first.
std::vector<win::Accuracy> tiers_at_or_above(win::Accuracy floor);

/// Enumerate every feasible candidate for `key`, in a deterministic order
/// (tier-major, then segments_per_rank in {1,2,4,...,max_segments_per_rank},
/// then schedule, then overlap, then batch width in {0, 8, 32}, then — for
/// overlapping candidates only — chunk depth in {1, 2, 4} capped by
/// segments_per_rank, then topology). Topology variants (two-level, torus)
/// are enumerated only for pairwise/auto-width candidates on rank counts
/// where the shape is non-degenerate, flat always first, so the candidate
/// count stays bounded. The seed's hard-coded configuration — requested
/// tier, one segment per rank, pairwise, no overlap, auto width, depth 1,
/// flat — is always the first entry when feasible. Throws soi::Error if no
/// candidate is feasible at all.
std::vector<Candidate> candidate_space(const TuneKey& key,
                                       std::int64_t max_segments_per_rank = 8);

}  // namespace soi::tune
